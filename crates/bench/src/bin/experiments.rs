//! The experiment runner.
//!
//! ```text
//! experiments [--markdown] [--list] [ids...]
//! ```
//!
//! With no ids, runs every experiment. `--markdown` renders GitHub tables
//! (used to regenerate the measured sections of `EXPERIMENTS.md`).

use sfc_bench::{all_experiments, render_tables};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let list = args.iter().any(|a| a == "--list");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let experiments = all_experiments();

    if list {
        for e in &experiments {
            println!("{:14} {}  [{}]", e.id, e.title, e.paper_ref);
        }
        return;
    }

    let selected: Vec<_> = if ids.is_empty() {
        experiments.iter().collect()
    } else {
        let mut chosen = Vec::new();
        for id in &ids {
            match experiments.iter().find(|e| e.id == id.as_str()) {
                Some(e) => chosen.push(e),
                None => {
                    eprintln!("unknown experiment id: {id}");
                    eprintln!("known ids:");
                    for e in &experiments {
                        eprintln!("  {}", e.id);
                    }
                    std::process::exit(1);
                }
            }
        }
        chosen
    };

    for e in selected {
        let header = format!("{} — {} [{}]", e.id, e.title, e.paper_ref);
        if markdown {
            println!("## {header}\n");
        } else {
            println!("{}", "=".repeat(header.chars().count().min(100)));
            println!("{header}");
            println!("{}", "=".repeat(header.chars().count().min(100)));
        }
        let started = std::time::Instant::now();
        let tables = (e.run)();
        println!("{}", render_tables(&tables, markdown));
        if !markdown {
            println!("[{} completed in {:.2?}]\n", e.id, started.elapsed());
        }
    }
}
