//! Numerical validation of every theorem, lemma and proposition.

use rand::SeedableRng;
use sfc_core::{CurveKind, Grid, PermutationCurve, SimpleCurve, SpaceFillingCurve, ZCurve};
use sfc_metrics::all_pairs::all_pairs_exact_par;
use sfc_metrics::bounds;
use sfc_metrics::nn_stretch::{summarize_par, NnStretchSummary};
use sfc_metrics::report::{fmt_f64, fmt_ratio, fmt_u128, Table};

fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
    rand_chacha::ChaCha8Rng::seed_from_u64(seed)
}

/// Summaries for all five analytic curve families in dimension `D`.
fn curve_summaries<const D: usize>(k: u32) -> Vec<NnStretchSummary> {
    CurveKind::ALL
        .iter()
        .map(|kind| {
            let c = kind.build::<D>(k).expect("valid grid");
            summarize_par(&c)
        })
        .collect()
}

/// **Theorem 1.** For every analytic curve family, several random
/// bijections, and d = 1..4, verify `D^avg ≥ (2/3d)(n^{1−1/d} − n^{−1−1/d})`.
pub fn thm1() -> Vec<Table> {
    let mut table = Table::new(
        "Theorem 1: measured D^avg vs the universal lower bound",
        &["d", "k", "n", "curve", "D^avg", "lower bound", "ratio"],
    );
    fn rows<const D: usize>(table: &mut Table, ks: &[u32]) {
        for &k in ks {
            let bound = bounds::thm1_nn_stretch_lower_bound(k, D);
            for s in curve_summaries::<D>(k) {
                assert!(
                    s.d_avg() >= bound - 1e-9,
                    "violation: {} d={D} k={k}",
                    s.curve
                );
                table.push_row(vec![
                    D.to_string(),
                    k.to_string(),
                    fmt_u128(s.n),
                    s.curve.clone(),
                    fmt_f64(s.d_avg(), 4),
                    fmt_f64(bound, 4),
                    fmt_ratio(s.d_avg() / bound),
                ]);
            }
        }
    }
    rows::<1>(&mut table, &[6]);
    rows::<2>(&mut table, &[2, 4]);
    rows::<3>(&mut table, &[2]);
    rows::<4>(&mut table, &[1, 2]);
    rows::<5>(&mut table, &[1]);
    rows::<6>(&mut table, &[1]);

    // Random bijections probe the full class the bound quantifies over.
    let mut random = Table::new(
        "Theorem 1 on uniformly random bijections (d=2, k=3; 10 draws)",
        &["draw", "D^avg", "lower bound", "ratio"],
    );
    let grid = Grid::<2>::new(3).unwrap();
    let bound = bounds::thm1_nn_stretch_lower_bound(3, 2);
    let mut r = rng(2024);
    for draw in 0..10 {
        let c = PermutationCurve::random(grid, &mut r).unwrap();
        let s = sfc_metrics::nn_stretch::summarize(&c);
        assert!(s.d_avg() >= bound - 1e-9);
        random.push_row(vec![
            draw.to_string(),
            fmt_f64(s.d_avg(), 4),
            fmt_f64(bound, 4),
            fmt_ratio(s.d_avg() / bound),
        ]);
    }
    vec![table, random]
}

/// **Lemma 2.** `S_{A'}(π)` is the same for every bijection:
/// `(n−1)n(n+1)/3`.
pub fn lem2() -> Vec<Table> {
    let mut table = Table::new(
        "Lemma 2: measured S_A' vs (n−1)n(n+1)/3 (d=2, k=2, n=16)",
        &["curve", "measured", "formula", "equal"],
    );
    let formula = bounds::lemma2_sa_prime(16);
    let mut r = rng(7);
    let grid = Grid::<2>::new(2).unwrap();
    let mut curves: Vec<(String, Box<dyn SpaceFillingCurve<2>>)> = CurveKind::ALL
        .iter()
        .map(|kind| {
            (
                kind.name().to_string(),
                kind.build::<2>(2).unwrap() as Box<dyn SpaceFillingCurve<2>>,
            )
        })
        .collect();
    for i in 0..3 {
        curves.push((
            format!("random-{i}"),
            Box::new(PermutationCurve::random(grid, &mut r).unwrap()),
        ));
    }
    for (name, curve) in &curves {
        let measured = sfc_metrics::all_pairs::sa_prime_sum(&curve.as_ref());
        table.push_row(vec![
            name.clone(),
            fmt_u128(measured),
            fmt_u128(formula),
            (measured == formula).to_string(),
        ]);
        assert_eq!(measured, formula, "{name}");
    }
    vec![table]
}

/// **Lemma 4.** Census the multiplicity of every NN edge over all ordered
/// pairs; compare the maximum to the bound `½·n^{(d+1)/d}`.
pub fn lem4() -> Vec<Table> {
    let mut table = Table::new(
        "Lemma 4: max edge multiplicity in the NN decomposition vs bound",
        &[
            "d",
            "k",
            "max multiplicity (census)",
            "closed-form max",
            "bound ½·n^{(d+1)/d}",
        ],
    );
    fn row<const D: usize>(table: &mut Table, k: u32) {
        let grid = Grid::<D>::new(k).unwrap();
        let census = sfc_metrics::decomposition::edge_multiplicity_census(grid);
        let max_census = census.values().copied().max().unwrap_or(0);
        let max_closed = census
            .keys()
            .map(|e| sfc_metrics::decomposition::edge_multiplicity_closed_form(grid, e))
            .max()
            .unwrap_or(0);
        assert_eq!(max_census, max_closed);
        let bound = bounds::lemma4_multiplicity_bound(k, D);
        assert!(max_census <= bound);
        table.push_row(vec![
            D.to_string(),
            k.to_string(),
            fmt_u128(max_census),
            fmt_u128(max_closed),
            fmt_u128(bound),
        ]);
    }
    row::<2>(&mut table, 1);
    row::<2>(&mut table, 2);
    row::<2>(&mut table, 3);
    row::<3>(&mut table, 1);
    vec![table]
}

/// **Theorem 2.** Convergence of `d·D^avg(Z)/n^{1−1/d}` to 1.
pub fn thm2() -> Vec<Table> {
    let mut table = Table::new(
        "Theorem 2: D^avg(Z) vs the asymptote (1/d)·n^{1−1/d}",
        &["d", "k", "n", "D^avg(Z)", "asymptote", "normalized (→1)"],
    );
    fn rows<const D: usize>(table: &mut Table, ks: &[u32]) {
        for &k in ks {
            let z = ZCurve::<D>::new(k).unwrap();
            let s = summarize_par(&z);
            let asym = bounds::nn_stretch_asymptote(k, D);
            table.push_row(vec![
                D.to_string(),
                k.to_string(),
                fmt_u128(s.n),
                fmt_f64(s.d_avg(), 4),
                fmt_f64(asym, 4),
                fmt_ratio(s.d_avg() / asym),
            ]);
        }
    }
    rows::<2>(&mut table, &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
    rows::<3>(&mut table, &[1, 2, 3, 4, 5]);
    rows::<4>(&mut table, &[1, 2, 3]);
    vec![table]
}

/// **Lemma 5.** `Λ_i(Z)/n^{2−1/d}` against its limit `2^{d−i}/(2^d−1)`,
/// with the measured, aggregated and closed-form values cross-checked.
pub fn lem5() -> Vec<Table> {
    let mut table = Table::new(
        "Lemma 5: normalized Λ_i(Z) vs limit 2^{d−i}/(2^d−1)",
        &["d", "i", "k", "Λ_i (closed form)", "normalized", "limit"],
    );
    fn rows<const D: usize>(table: &mut Table, ks: &[u32]) {
        for &k in ks {
            let z = ZCurve::<D>::new(k).unwrap();
            for i in 1..=D {
                let measured = sfc_metrics::lambda::lambda_measured(&z, i - 1);
                let closed = sfc_metrics::lambda::lambda_closed_form(k, D, i);
                assert_eq!(measured, closed, "d={D} k={k} i={i}");
                table.push_row(vec![
                    D.to_string(),
                    i.to_string(),
                    k.to_string(),
                    fmt_u128(closed),
                    fmt_f64(sfc_metrics::lambda::lambda_normalized(k, D, i), 6),
                    fmt_f64(bounds::lemma5_lambda_limit(D, i), 6),
                ]);
            }
        }
    }
    rows::<2>(&mut table, &[2, 4, 8, 12]);
    rows::<3>(&mut table, &[2, 4, 8]);
    vec![table]
}

/// **Theorem 3.** The simple curve's convergence to the same asymptote,
/// plus the exact interior-cell value from the proof.
pub fn thm3() -> Vec<Table> {
    let mut table = Table::new(
        "Theorem 3: D^avg(simple) vs the asymptote (1/d)·n^{1−1/d}",
        &[
            "d",
            "k",
            "D^avg(S)",
            "asymptote",
            "normalized (→1)",
            "interior δ^avg (exact)",
        ],
    );
    fn rows<const D: usize>(table: &mut Table, ks: &[u32]) {
        for &k in ks {
            let s = summarize_par(&SimpleCurve::<D>::new(k).unwrap());
            let asym = bounds::nn_stretch_asymptote(k, D);
            let (num, den) = bounds::thm3_simple_interior_delta_avg(k, D);
            table.push_row(vec![
                D.to_string(),
                k.to_string(),
                fmt_f64(s.d_avg(), 4),
                fmt_f64(asym, 4),
                fmt_ratio(s.d_avg() / asym),
                format!("{}/{}", fmt_u128(num), den),
            ]);
        }
    }
    rows::<2>(&mut table, &[1, 2, 4, 6, 8, 9]);
    rows::<3>(&mut table, &[1, 2, 3, 4, 5]);
    vec![table]
}

/// The 1.5× headline: `D^avg(Z)` over the Theorem 1 bound converges to 3/2.
pub fn ratio15() -> Vec<Table> {
    let mut table = Table::new(
        "Z-curve optimality gap: D^avg(Z) / Thm-1 bound (→ 1.5)",
        &["d", "k", "ratio"],
    );
    fn rows<const D: usize>(table: &mut Table, ks: &[u32]) {
        for &k in ks {
            let s = summarize_par(&ZCurve::<D>::new(k).unwrap());
            let bound = bounds::thm1_nn_stretch_lower_bound(k, D);
            table.push_row(vec![
                D.to_string(),
                k.to_string(),
                fmt_ratio(s.d_avg() / bound),
            ]);
        }
    }
    rows::<2>(&mut table, &[2, 4, 6, 8, 9]);
    rows::<3>(&mut table, &[2, 3, 4, 5]);
    rows::<4>(&mut table, &[1, 2, 3]);
    vec![table]
}

/// **Proposition 1.** `D^max ≥ D^avg ≥ bound` for every curve family.
pub fn prop1() -> Vec<Table> {
    let mut table = Table::new(
        "Proposition 1: D^max vs the Theorem-1 lower bound (d=2)",
        &["k", "curve", "D^max", "D^avg", "lower bound"],
    );
    for k in [2u32, 3, 4] {
        let bound = bounds::thm1_nn_stretch_lower_bound(k, 2);
        for s in curve_summaries::<2>(k) {
            assert!(s.d_max() >= s.d_avg() - 1e-9);
            assert!(s.d_max() >= bound - 1e-9);
            table.push_row(vec![
                k.to_string(),
                s.curve.clone(),
                fmt_f64(s.d_max(), 4),
                fmt_f64(s.d_avg(), 4),
                fmt_f64(bound, 4),
            ]);
        }
    }
    vec![table]
}

/// **Proposition 2.** `D^max(S) = n^{1−1/d}` exactly.
pub fn prop2() -> Vec<Table> {
    let mut table = Table::new(
        "Proposition 2: D^max(simple) = n^{1−1/d}, exactly",
        &["d", "k", "D^max(S) (exact ratio)", "n^{1−1/d}", "equal"],
    );
    fn rows<const D: usize>(table: &mut Table, ks: &[u32]) {
        for &k in ks {
            let s = summarize_par(&SimpleCurve::<D>::new(k).unwrap());
            let expected = bounds::prop2_dmax_simple_exact(k, D);
            let equal = s.d_max_equals_ratio(expected, 1);
            assert!(equal, "d={D} k={k}");
            table.push_row(vec![
                D.to_string(),
                k.to_string(),
                format!("{}/{}", fmt_u128(s.dmax_sum), fmt_u128(s.n)),
                fmt_u128(expected),
                equal.to_string(),
            ]);
        }
    }
    rows::<2>(&mut table, &[1, 2, 3, 4, 6]);
    rows::<3>(&mut table, &[1, 2, 3]);
    rows::<4>(&mut table, &[1, 2]);
    vec![table]
}

/// **Propositions 3 & 4.** All-pairs stretch of every curve vs the
/// universal lower bounds, and the simple curve vs its upper bounds.
pub fn prop34() -> Vec<Table> {
    let mut table = Table::new(
        "Propositions 3 & 4: all-pairs stretch (d=2)",
        &["k", "curve", "str M", "lower M", "str E", "lower E"],
    );
    for k in [2u32, 3, 4] {
        let lower_m = bounds::prop3_all_pairs_lower_manhattan(k, 2);
        let lower_e = bounds::prop3_all_pairs_lower_euclidean(k, 2);
        for kind in CurveKind::ALL {
            let c = kind.build::<2>(k).unwrap();
            let s = all_pairs_exact_par(&c);
            assert!(s.manhattan >= lower_m - 1e-9, "{kind} k={k}");
            assert!(s.euclidean >= lower_e - 1e-9, "{kind} k={k}");
            table.push_row(vec![
                k.to_string(),
                kind.name().to_string(),
                fmt_f64(s.manhattan, 4),
                fmt_f64(lower_m, 4),
                fmt_f64(s.euclidean, 4),
                fmt_f64(lower_e, 4),
            ]);
        }
    }
    let mut upper = Table::new(
        "Proposition 4: simple curve vs its upper bounds (d=2)",
        &["k", "str M", "upper M", "str E", "upper E"],
    );
    for k in [2u32, 3, 4, 5] {
        let s = all_pairs_exact_par(&SimpleCurve::<2>::new(k).unwrap());
        let um = bounds::prop4_all_pairs_upper_manhattan(k, 2);
        let ue = bounds::prop4_all_pairs_upper_euclidean(k, 2);
        assert!(s.manhattan <= um + 1e-9);
        assert!(s.euclidean <= ue + 1e-9);
        upper.push_row(vec![
            k.to_string(),
            fmt_f64(s.manhattan, 4),
            fmt_f64(um, 4),
            fmt_f64(s.euclidean, 4),
            fmt_f64(ue, 4),
        ]);
    }
    vec![table, upper]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thm2_normalized_values_approach_one_from_below_region() {
        let tables = thm2();
        let rows = &tables[0].rows;
        // d=2 rows: normalized ratio at the largest k should be close to 1.
        let last_d2 = rows.iter().rfind(|r| r[0] == "2").unwrap();
        let ratio: f64 = last_d2[5].parse().unwrap();
        assert!((ratio - 1.0).abs() < 0.05, "d=2 normalized {ratio}");
    }

    #[test]
    fn ratio15_converges() {
        let tables = ratio15();
        let rows = &tables[0].rows;
        let last_d2 = rows.iter().rfind(|r| r[0] == "2").unwrap();
        let ratio: f64 = last_d2[2].parse().unwrap();
        assert!((ratio - 1.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn lem5_normalized_near_limits_at_high_k() {
        let tables = lem5();
        for row in &tables[0].rows {
            if row[0] == "2" && row[2] == "12" {
                let normalized: f64 = row[4].parse().unwrap();
                let limit: f64 = row[5].parse().unwrap();
                assert!((normalized - limit).abs() < 1e-3, "{row:?}");
            }
        }
    }

    #[test]
    fn all_validating_experiments_run_clean() {
        // These assert internally; running them is the test.
        thm1();
        lem2();
        lem4();
        prop1();
        prop2();
    }

    #[test]
    fn thm3_interior_value_matches_davg_direction() {
        let tables = thm3();
        assert!(!tables[0].rows.is_empty());
    }

    #[test]
    fn prop34_runs_clean() {
        let tables = prop34();
        assert_eq!(tables.len(), 2);
    }
}
