//! Experiments on the paper's open questions (Section VI).

use rand::SeedableRng;
use sfc_core::{CurveKind, Grid, PermutationCurve};
use sfc_metrics::bounds;
use sfc_metrics::nn_stretch::summarize_par;
use sfc_metrics::optimal::{anneal, exhaustive_optimal, AnnealConfig};
use sfc_metrics::report::{fmt_f64, fmt_ratio, Table};

/// Open question 1: the average NN-stretch of the Hilbert curve, measured.
///
/// The paper proves Z and simple are `~ (1/d)·n^{1−1/d}` and asks about
/// Hilbert. The measurement shows Hilbert (and Gray, and snake) sit in the
/// same `Θ(n^{1−1/d})` regime — normalized values converge to constants of
/// the same order, so no curve in the family escapes the Theorem 1 bound
/// by more than a constant.
pub fn hilbert() -> Vec<Table> {
    let mut table = Table::new(
        "Measured D^avg of every family, normalized by n^{1−1/d}/d (d=2)",
        &["k", "Z", "simple", "snake", "gray", "hilbert"],
    );
    for k in [2u32, 3, 4, 5, 6, 7, 8] {
        let asym = bounds::nn_stretch_asymptote(k, 2);
        let mut row = vec![k.to_string()];
        for kind in CurveKind::ALL {
            let s = summarize_par(&kind.build::<2>(k).unwrap());
            row.push(fmt_ratio(s.d_avg() / asym));
        }
        table.push_row(row);
    }
    let mut table3 = Table::new(
        "Same in d = 3",
        &["k", "Z", "simple", "snake", "gray", "hilbert"],
    );
    for k in [1u32, 2, 3, 4] {
        let asym = bounds::nn_stretch_asymptote(k, 3);
        let mut row = vec![k.to_string()];
        for kind in CurveKind::ALL {
            let s = summarize_par(&kind.build::<3>(k).unwrap());
            row.push(fmt_ratio(s.d_avg() / asym));
        }
        table3.push_row(row);
    }
    vec![table, table3]
}

/// Open question 2: how much slack does Theorem 1 leave? Exhaustive search
/// on the 2×2 grid; simulated annealing on 4×4 and 8×8.
pub fn optsearch() -> Vec<Table> {
    let mut table = Table::new(
        "Best curves found vs the Theorem-1 bound and the Z curve (d=2)",
        &[
            "grid",
            "method",
            "best D^avg",
            "Z D^avg",
            "Thm-1 bound",
            "best/bound",
        ],
    );

    // 2×2: exhaustive ground truth.
    {
        let grid = Grid::<2>::new(1).unwrap();
        let opt = exhaustive_optimal(grid);
        let z = summarize_par(&sfc_core::ZCurve::<2>::new(1).unwrap());
        let bound = bounds::thm1_nn_stretch_lower_bound(1, 2);
        table.push_row(vec![
            "2×2".into(),
            "exhaustive (24 perms)".into(),
            fmt_f64(opt.d_avg(), 4),
            fmt_f64(z.d_avg(), 4),
            fmt_f64(bound, 4),
            fmt_ratio(opt.d_avg() / bound),
        ]);
    }

    // 4×4 and 8×8: annealing.
    for (k, label, iters) in [(2u32, "4×4", 300_000u64), (3, "8×8", 600_000)] {
        let grid = Grid::<2>::new(k).unwrap();
        let mut r = rand_chacha::ChaCha8Rng::seed_from_u64(1234);
        let start = PermutationCurve::identity(grid).unwrap();
        let result = anneal(
            &start,
            AnnealConfig {
                iterations: iters,
                ..Default::default()
            },
            &mut r,
        );
        let z = summarize_par(&sfc_core::ZCurve::<2>::new(k).unwrap());
        let bound = bounds::thm1_nn_stretch_lower_bound(k, 2);
        table.push_row(vec![
            label.into(),
            format!("annealing ({iters} proposals)"),
            fmt_f64(result.d_avg(), 4),
            fmt_f64(z.d_avg(), 4),
            fmt_f64(bound, 4),
            fmt_ratio(result.d_avg() / bound),
        ]);
    }
    vec![table]
}

/// New analysis: the exact closed-form `D^max(Z)` and its limit 2·n^{1−1/d}.
///
/// The paper leaves the `D^max` gap open (Section VI). The closed form in
/// `sfc_metrics::dmax_z` shows `D^max(Z)/n^{1−1/d} → 2` — exactly twice
/// Proposition 2's simple-curve constant.
pub fn dmax_z() -> Vec<Table> {
    let mut table = Table::new(
        "D^max(Z)/n^{1−1/d}: exact closed form, far beyond enumerable sizes",
        &[
            "d",
            "k",
            "n",
            "normalized D^max(Z)",
            "simple curve (Prop. 2)",
        ],
    );
    for (d, ks) in [
        (2usize, vec![2u32, 4, 8, 16, 24, 28]),
        (3, vec![2, 4, 8, 12, 16]),
    ] {
        for k in ks {
            let v = sfc_metrics::dmax_z::dmax_z_normalized(k, d);
            table.push_row(vec![
                d.to_string(),
                k.to_string(),
                format!("2^{}", k as usize * d),
                fmt_f64(v, 6),
                "1.000000".into(),
            ]);
        }
    }
    // Cross-check the closed form against enumeration on a small grid.
    let mut check = Table::new(
        "Closed form vs brute-force enumeration",
        &["d", "k", "closed-form Σδ^max", "enumerated Σδ^max", "equal"],
    );
    let z2 = sfc_core::ZCurve::<2>::new(4).unwrap();
    let enum2 = summarize_par(&z2).dmax_sum;
    let closed2 = sfc_metrics::dmax_z::dmax_z_sum(4, 2);
    check.push_row(vec![
        "2".into(),
        "4".into(),
        closed2.to_string(),
        enum2.to_string(),
        (closed2 == enum2).to_string(),
    ]);
    let z3 = sfc_core::ZCurve::<3>::new(3).unwrap();
    let enum3 = summarize_par(&z3).dmax_sum;
    let closed3 = sfc_metrics::dmax_z::dmax_z_sum(3, 3);
    check.push_row(vec![
        "3".into(),
        "3".into(),
        closed3.to_string(),
        enum3.to_string(),
        (closed3 == enum3).to_string(),
    ]);
    assert_eq!(closed2, enum2);
    assert_eq!(closed3, enum3);
    vec![table, check]
}

/// Torus variant: periodic boundaries make Lemma 3 an equality and give
/// the simple curve an exact closed form at twice its open-grid stretch.
pub fn torus() -> Vec<Table> {
    use sfc_metrics::torus::{summarize_torus, torus_simple_davg_exact};
    let mut table = Table::new(
        "Torus vs open-grid D^avg (d=2)",
        &["k", "curve", "open D^avg", "torus D^avg", "torus/open"],
    );
    for k in [3u32, 5, 7] {
        for kind in CurveKind::ALL {
            let c = kind.build::<2>(k).unwrap();
            let open = summarize_par(&c).d_avg();
            let tor = summarize_torus(&c).d_avg(2);
            table.push_row(vec![
                k.to_string(),
                kind.name().to_string(),
                fmt_f64(open, 3),
                fmt_f64(tor, 3),
                fmt_ratio(tor / open),
            ]);
        }
    }
    let mut closed = Table::new(
        "Simple-curve torus closed form: D^avg_T(S) = 2(n−1)·n^{1−1/d}/(dn)",
        &["d", "k", "measured", "closed form", "equal (exact)"],
    );
    for (d2k, dd) in [(4u32, 2usize), (2, 3)] {
        let (num, den) = torus_simple_davg_exact(d2k, dd);
        let (measured, eq) = if dd == 2 {
            let s = summarize_torus(&sfc_core::SimpleCurve::<2>::new(d2k).unwrap());
            (s.d_avg(2), s.d_avg_equals_ratio(2, num, den))
        } else {
            let s = summarize_torus(&sfc_core::SimpleCurve::<3>::new(d2k).unwrap());
            (s.d_avg(3), s.d_avg_equals_ratio(3, num, den))
        };
        assert!(eq);
        closed.push_row(vec![
            dd.to_string(),
            d2k.to_string(),
            fmt_f64(measured, 4),
            format!("{num}/{den}"),
            eq.to_string(),
        ]);
    }
    vec![table, closed]
}

/// Contrast metric: the clustering number of Moon et al. ranks curves
/// differently from the stretch (Hilbert wins clustering; nobody
/// meaningfully wins average NN-stretch).
pub fn cluster() -> Vec<Table> {
    let mut table = Table::new(
        "Average clusters per q×q box query (8×8 grid, exact over all placements)",
        &["curve", "q=2", "q=3", "q=4", "D^avg (for contrast)"],
    );
    for kind in CurveKind::ALL {
        let c = kind.build::<2>(3).unwrap();
        let mut row = vec![kind.name().to_string()];
        for q in [2u64, 3, 4] {
            row.push(fmt_f64(
                sfc_metrics::clustering::average_clusters_exact(&c, q),
                3,
            ));
        }
        row.push(fmt_f64(summarize_par(&c).d_avg(), 3));
        table.push_row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_normalized_values_are_bounded_constants() {
        let tables = hilbert();
        // Every normalized value is within [2/3 · (1 − ε), ~4]: the 2/3
        // floor is Theorem 1 (bound/asymptote = 2/3), and a small constant
        // cap shows everyone is Θ(n^{1−1/d}).
        for table in &tables {
            for row in &table.rows {
                for cell in &row[1..] {
                    let v: f64 = cell.parse().unwrap();
                    assert!(v > 0.6 && v < 4.0, "normalized stretch {v} out of range");
                }
            }
        }
    }

    #[test]
    fn torus_ratios_are_at_least_one() {
        let tables = torus();
        for row in &tables[0].rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio >= 1.0 - 1e-9, "{row:?}");
        }
    }

    #[test]
    fn optsearch_beats_nothing_below_the_bound() {
        let tables = optsearch();
        for row in &tables[0].rows {
            let ratio: f64 = row[5].parse().unwrap();
            assert!(ratio >= 1.0 - 1e-9, "search went below the bound: {ratio}");
        }
    }

    #[test]
    fn cluster_table_shows_hilbert_best_at_clustering() {
        let tables = cluster();
        let rows = &tables[0].rows;
        let get = |name: &str, col: usize| -> f64 {
            rows.iter()
                .find(|r| r[0] == name)
                .map(|r| r[col].parse().unwrap())
                .unwrap()
        };
        // Hilbert clusters at least as well as Z for q=2 and q=4.
        assert!(get("hilbert", 1) <= get("Z", 1) + 1e-9);
        assert!(get("hilbert", 3) <= get("Z", 3) + 1e-9);
    }
}
