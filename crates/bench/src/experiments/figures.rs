//! Regeneration of the paper's four figures.

use sfc_core::{Point, SpaceFillingCurve, ZCurve};
use sfc_metrics::decomposition::nn_decomposition;
use sfc_metrics::nn_stretch::{per_cell_delta_avg, summarize};
use sfc_metrics::report::{fmt_f64, Table};

/// Figure 1: the curves `π₁` (order C,A,B,D) and `π₂` (order A,B,C,D) on
/// the 2×2 grid, their worked stretch values, and the exhaustive optimum
/// over all 24 bijections.
pub fn fig1() -> Vec<Table> {
    let pi1 = sfc_core::PermutationCurve::figure1_pi1();
    let pi2 = sfc_core::PermutationCurve::figure1_pi2();

    let mut per_cell = Table::new(
        "Figure 1 per-cell δ^avg (grid layout: A=(0,1) C=(1,1) / D=(0,0) B=(1,0))",
        &["cell", "δ^avg under π₁", "δ^avg under π₂"],
    );
    let labels = [
        ("A", Point::new([0, 1])),
        ("B", Point::new([1, 0])),
        ("C", Point::new([1, 1])),
        ("D", Point::new([0, 0])),
    ];
    let grid = pi1.grid();
    let deltas1 = per_cell_delta_avg(&pi1);
    let deltas2 = per_cell_delta_avg(&pi2);
    for (name, cell) in labels {
        let rank = grid.row_major_rank(&cell) as usize;
        per_cell.push_row(vec![
            name.to_string(),
            fmt_f64(deltas1[rank], 2),
            fmt_f64(deltas2[rank], 2),
        ]);
    }

    let mut summary = Table::new(
        "Figure 1 summary (paper: D^avg(π₁)=1.5, D^avg(π₂)=2, D^max(π₁)=2, D^max(π₂)=2.5)",
        &["curve", "order", "D^avg", "D^max"],
    );
    for (curve, order) in [(&pi1, "C,A,B,D"), (&pi2, "A,B,C,D")] {
        let s = summarize(curve);
        summary.push_row(vec![
            curve.name(),
            order.to_string(),
            fmt_f64(s.d_avg(), 3),
            fmt_f64(s.d_max(), 3),
        ]);
    }

    let opt = sfc_metrics::optimal::exhaustive_optimal(grid);
    let mut optimum = Table::new(
        "Exhaustive optimum over all 24 bijections of the 2×2 grid",
        &["quantity", "value"],
    );
    optimum.push_row(vec!["optimal D^avg".into(), fmt_f64(opt.d_avg(), 3)]);
    optimum.push_row(vec![
        "bijections evaluated".into(),
        opt.evaluated.to_string(),
    ]);
    optimum.push_row(vec![
        "optimal bijections".into(),
        opt.optima_count.to_string(),
    ]);
    optimum.push_row(vec![
        "π₁ achieves the optimum".into(),
        (summarize(&pi1).d_avg() == opt.d_avg()).to_string(),
    ]);

    vec![per_cell, summary, optimum]
}

/// Figure 2: the decomposition paths `p(α, β)` and `p(β, α)` for
/// `α = (1,1), β = (3,5)`.
pub fn fig2() -> Vec<Table> {
    let alpha = Point::new([1, 1]);
    let beta = Point::new([3, 5]);
    let mut table = Table::new(
        "Figure 2: nearest-neighbor decompositions of α=(1,1), β=(3,5)",
        &["step", "p(α,β) edge", "p(β,α) edge"],
    );
    let fwd = nn_decomposition(alpha, beta);
    let bwd = nn_decomposition(beta, alpha);
    for (i, (f, b)) in fwd.iter().zip(bwd.iter()).enumerate() {
        table.push_row(vec![
            (i + 1).to_string(),
            format!("{}–{}", f.lo, f.hi),
            format!("{}–{}", b.lo, b.hi),
        ]);
    }
    let mut props = Table::new("Decomposition properties", &["property", "value"]);
    props.push_row(vec![
        "path length = Δ(α,β)".into(),
        format!("{} = {}", fwd.len(), alpha.manhattan(&beta)),
    ]);
    let fset: std::collections::HashSet<_> = fwd.iter().collect();
    let bset: std::collections::HashSet<_> = bwd.iter().collect();
    props.push_row(vec!["p(α,β) ≠ p(β,α)".into(), (fset != bset).to_string()]);
    vec![table, props]
}

/// Figure 3: the Z-curve key of every cell of the 8×8 grid, in the paper's
/// visual layout (dimension 2 upward, dimension 1 rightward).
pub fn fig3() -> Vec<Table> {
    let z = ZCurve::<2>::new(3).unwrap();
    let mut layout = Table::new(
        "Figure 3: Z keys on the 8×8 grid (binary, row x2=7 at top)",
        &[
            "x2\\x1", "000", "001", "010", "011", "100", "101", "110", "111",
        ],
    );
    for x2 in (0..8u32).rev() {
        let mut row = vec![format!("{x2:03b}")];
        for x1 in 0..8u32 {
            row.push(format!("{:06b}", z.index_of(Point::new([x1, x2]))));
        }
        layout.push_row(row);
    }
    let mut checks = Table::new("Worked-example checks", &["check", "value"]);
    let p = Point::new([0b101, 0b010, 0b011]);
    let z3 = ZCurve::<3>::new(3).unwrap();
    checks.push_row(vec![
        "Z(101,010,011) (paper: 100011101)".into(),
        format!("{:09b}", z3.index_of(p)),
    ]);
    checks.push_row(vec![
        "bijective on 8×8".into(),
        z.validate_bijection().is_ok().to_string(),
    ]);
    vec![layout, checks]
}

/// Figure 4: the simple curve's traversal of the 8×8 grid.
pub fn fig4() -> Vec<Table> {
    let s = sfc_core::SimpleCurve::<2>::new(3).unwrap();
    let mut layout = Table::new(
        "Figure 4: simple-curve indices on the 8×8 grid (row x2=7 at top)",
        &["x2\\x1", "0", "1", "2", "3", "4", "5", "6", "7"],
    );
    for x2 in (0..8u32).rev() {
        let mut row = vec![x2.to_string()];
        for x1 in 0..8u32 {
            row.push(s.index_of(Point::new([x1, x2])).to_string());
        }
        layout.push_row(row);
    }
    let mut checks = Table::new("Eq. 8 checks", &["check", "value"]);
    checks.push_row(vec![
        "S((3,5)) = 3 + 8·5".into(),
        s.index_of(Point::new([3, 5])).to_string(),
    ]);
    checks.push_row(vec![
        "bijective on 8×8".into(),
        s.validate_bijection().is_ok().to_string(),
    ]);
    vec![layout, checks]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_paper_values() {
        let tables = fig1();
        assert_eq!(tables.len(), 3);
        let summary = &tables[1];
        assert_eq!(summary.rows[0][2], "1.500"); // D^avg(π₁)
        assert_eq!(summary.rows[0][3], "2.000"); // D^max(π₁)
        assert_eq!(summary.rows[1][2], "2.000"); // D^avg(π₂)
        assert_eq!(summary.rows[1][3], "2.500"); // D^max(π₂)
                                                 // π₁ is optimal.
        assert_eq!(tables[2].rows[3][1], "true");
    }

    #[test]
    fn fig2_paths_have_six_steps() {
        let tables = fig2();
        assert_eq!(tables[0].rows.len(), 6);
        assert_eq!(tables[1].rows[1][1], "true");
    }

    #[test]
    fn fig3_layout_matches_paper_cells() {
        let tables = fig3();
        let layout = &tables[0];
        // Top-left cell of the figure is (x1=000, x2=111) → key 010101.
        assert_eq!(layout.rows[0][1], "010101");
        // Bottom-left is (000,000) → 000000; bottom-right (111,000) →
        // 101010.
        assert_eq!(layout.rows[7][1], "000000");
        assert_eq!(layout.rows[7][8], "101010");
        // Top-right (111,111) → 111111.
        assert_eq!(layout.rows[0][8], "111111");
        // The d=3 worked example.
        assert_eq!(tables[1].rows[0][1], "100011101");
    }

    #[test]
    fn fig4_layout_is_row_major() {
        let tables = fig4();
        let layout = &tables[0];
        // Bottom row (x2=0) is 0..7 left to right.
        assert_eq!(layout.rows[7][1], "0");
        assert_eq!(layout.rows[7][8], "7");
        // Top row (x2=7) is 56..63.
        assert_eq!(layout.rows[0][1], "56");
        assert_eq!(layout.rows[0][8], "63");
        assert_eq!(tables[1].rows[0][1], "43");
    }
}
