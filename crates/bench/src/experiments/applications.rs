//! Application-level experiments: the paper's motivating workloads.

use rand::{Rng, SeedableRng};
use sfc_core::{CurveKind, Grid, Point, ZCurve};
use sfc_index::{BoxRegion, SfcIndex};
use sfc_metrics::report::{fmt_f64, Table};
use sfc_nbody::body::{sample_bodies, Distribution};
use sfc_partition::{partition_greedy, quality, WeightedGrid, Workload};

fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
    rand_chacha::ChaCha8Rng::seed_from_u64(seed)
}

/// Domain decomposition quality per curve: load imbalance, edge cut and
/// communication volume, under uniform and clustered workloads.
pub fn app_partition() -> Vec<Table> {
    let grid = Grid::<2>::new(4).unwrap(); // 16×16
    let mut tables = Vec::new();
    for (wname, workload) in [
        ("uniform", Workload::Uniform),
        (
            "clustered",
            Workload::GaussianClusters {
                count: 4,
                sigma: 2.0,
            },
        ),
    ] {
        let weights = WeightedGrid::generate(grid, workload, &mut rng(55));
        let mut table = Table::new(
            format!("Partition quality, 16×16 grid, {wname} load"),
            &["curve", "p", "imbalance", "edge cut", "comm volume"],
        );
        for kind in CurveKind::ALL {
            let curve = kind.build::<2>(4).unwrap();
            for p in [4usize, 16] {
                let part = partition_greedy(&curve, &weights, p);
                let q = quality::evaluate_par(&curve, &weights, &part);
                table.push_row(vec![
                    kind.name().to_string(),
                    p.to_string(),
                    fmt_f64(q.imbalance, 4),
                    q.edge_cut.to_string(),
                    q.comm_volume.to_string(),
                ]);
            }
        }
        tables.push(table);
    }
    tables
}

/// Range-query and kNN cost per curve on a random record set.
pub fn app_index() -> Vec<Table> {
    let grid = Grid::<2>::new(5).unwrap(); // 32×32
    let mut r = rng(66);
    let records: Vec<(Point<2>, usize)> =
        (0..2_000).map(|i| (grid.random_cell(&mut r), i)).collect();
    let queries: Vec<BoxRegion<2>> = (0..100)
        .map(|_| {
            let corner = grid.random_cell(&mut r);
            let size = r.gen_range(2..8u32);
            let max = (grid.side() - 1) as u32;
            let hi = Point::new([
                (corner.coord(0) + size).min(max),
                (corner.coord(1) + size).min(max),
            ]);
            BoxRegion::new(corner, hi)
        })
        .collect();
    let knn_queries: Vec<Point<2>> = (0..60).map(|_| grid.random_cell(&mut r)).collect();

    let mut table = Table::new(
        "Box-query cost via interval decomposition (100 random boxes, 2000 records)",
        &[
            "curve",
            "avg seeks (intervals)",
            "avg reported",
            "kNN avg scanned (k=5)",
        ],
    );
    for kind in CurveKind::ALL {
        let curve = kind.build::<2>(5).unwrap();
        let index = SfcIndex::build(&curve, records.clone());
        let mut seeks = 0u64;
        let mut reported = 0u64;
        for q in &queries {
            let (_, stats) = index.query_box_intervals(q);
            seeks += stats.seeks;
            reported += stats.reported;
        }
        let mut knn_scanned = 0u64;
        for q in &knn_queries {
            knn_scanned += index.knn(*q, 5, 8).1.scanned;
        }
        table.push_row(vec![
            kind.name().to_string(),
            fmt_f64(seeks as f64 / queries.len() as f64, 2),
            fmt_f64(reported as f64 / queries.len() as f64, 2),
            fmt_f64(knn_scanned as f64 / knn_queries.len() as f64, 2),
        ]);
    }

    // BIGMIN vs full scan for the Z curve specifically.
    let z = ZCurve::<2>::over(grid);
    let zindex = SfcIndex::build(z, records.clone());
    let mut bigmin_scanned = 0u64;
    let mut bigmin_seeks = 0u64;
    let mut full_scanned = 0u64;
    for q in &queries {
        let (_, b) = zindex.query_box_bigmin(q);
        bigmin_scanned += b.scanned;
        bigmin_seeks += b.seeks;
        let (_, f) = zindex.query_box_full_scan(q);
        full_scanned += f.scanned;
    }
    let mut zt = Table::new(
        "Z curve: BIGMIN jumping vs full scan (same 100 boxes)",
        &["strategy", "avg scanned", "avg seeks"],
    );
    zt.push_row(vec![
        "full scan".into(),
        fmt_f64(full_scanned as f64 / 100.0, 1),
        "1.00".into(),
    ]);
    zt.push_row(vec![
        "bigmin".into(),
        fmt_f64(bigmin_scanned as f64 / 100.0, 1),
        fmt_f64(bigmin_seeks as f64 / 100.0, 2),
    ]);
    vec![table, zt]
}

/// N-body decomposition locality per curve, plus Barnes–Hut work/accuracy.
pub fn app_nbody() -> Vec<Table> {
    let mut tables = Vec::new();
    for (dname, dist) in [
        ("uniform", Distribution::Uniform),
        (
            "clustered",
            Distribution::Clustered {
                clusters: 4,
                sigma: 0.05,
            },
        ),
    ] {
        let bodies: Vec<sfc_nbody::Body<2>> = sample_bodies(dist, 600, &mut rng(77));
        let mut table = Table::new(
            format!("SFC body-ordering quality, 600 bodies, {dname}"),
            &[
                "curve",
                "seq. locality",
                "mean chunk bbox vol (p=8)",
                "empirical NN stretch",
            ],
        );
        for kind in CurveKind::ALL {
            let curve = kind.build::<2>(6).unwrap();
            let mut b = bodies.clone();
            let summary = sfc_nbody::decomp::summarize(&curve, &mut b, 8);
            table.push_row(vec![
                kind.name().to_string(),
                fmt_f64(summary.sequential_locality, 5),
                fmt_f64(summary.mean_chunk_volume, 5),
                fmt_f64(summary.empirical_nn_stretch, 2),
            ]);
        }
        tables.push(table);
    }

    // Barnes–Hut sanity: work and accuracy vs direct summation.
    let bodies: Vec<sfc_nbody::Body<2>> = sample_bodies(Distribution::Uniform, 800, &mut rng(88));
    let tree = sfc_nbody::Tree::build(bodies, 8, 4);
    let direct = sfc_nbody::gravity::direct_forces_par(tree.bodies(), 1e-3);
    let mut bh_table = Table::new(
        "Barnes–Hut vs direct (800 bodies, Morton tree)",
        &[
            "θ",
            "interactions",
            "vs direct n(n−1)",
            "mean rel. force error",
        ],
    );
    for theta in [0.3f64, 0.5, 0.8, 1.2] {
        let (forces, stats) = sfc_nbody::gravity::barnes_hut_forces_par(&tree, theta, 1e-3);
        let err = sfc_nbody::gravity::mean_relative_error(&forces, &direct);
        bh_table.push_row(vec![
            fmt_f64(theta, 1),
            stats.total().to_string(),
            fmt_f64(stats.total() as f64 / (800.0 * 799.0), 4),
            format!("{err:.2e}"),
        ]);
    }
    tables.push(bh_table);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_partition_tables_are_complete() {
        let tables = app_partition();
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.rows.len(), CurveKind::ALL.len() * 2);
        }
        // At p=16 on uniform load the simple curve's slab cut (15·16=240)
        // must exceed Hilbert's blocky cut.
        let uniform = &tables[0];
        let cut = |name: &str| -> u64 {
            uniform
                .rows
                .iter()
                .find(|r| r[0] == name && r[1] == "16")
                .map(|r| r[3].parse().unwrap())
                .unwrap()
        };
        assert!(cut("hilbert") < cut("simple"));
    }

    #[test]
    fn app_index_interval_seeks_track_clustering() {
        let tables = app_index();
        let t = &tables[0];
        let seeks = |name: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .map(|r| r[1].parse().unwrap())
                .unwrap()
        };
        // Hilbert needs no more interval seeks than the simple curve on
        // square-ish boxes.
        assert!(seeks("hilbert") <= seeks("simple") + 1e-9);
        // BIGMIN scans far fewer entries than a full scan.
        let zt = &tables[1];
        let full: f64 = zt.rows[0][1].parse().unwrap();
        let bigmin: f64 = zt.rows[1][1].parse().unwrap();
        assert!(bigmin < full / 3.0, "bigmin {bigmin} vs full {full}");
    }

    #[test]
    fn app_nbody_bh_error_decreases_with_theta() {
        let tables = app_nbody();
        let bh = tables.last().unwrap();
        let errs: Vec<f64> = bh.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        // Rows are ordered θ = 0.3, 0.5, 0.8, 1.2: error non-decreasing.
        for w in errs.windows(2) {
            assert!(w[0] <= w[1] * 1.5, "{errs:?}");
        }
        // Interaction counts decrease as θ grows.
        let work: Vec<u64> = bh.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for w in work.windows(2) {
            assert!(w[0] > w[1], "{work:?}");
        }
    }
}
