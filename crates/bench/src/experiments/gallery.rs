//! Extended curve gallery: the two extra classical 2-D curves (spiral,
//! diagonal) measured against the paper's bounds, plus ASCII renderings
//! of every family, plus the stratified estimator demonstration.

use rand::SeedableRng;
use sfc_core::viz::render_traversal;
use sfc_core::{BoxedCurve, CurveKind, DiagonalCurve, SpiralCurve};
use sfc_metrics::bounds;
use sfc_metrics::nn_stretch::summarize_par;
use sfc_metrics::report::{fmt_f64, fmt_ratio, Table};
use sfc_metrics::sampling::{estimate_d_avg, estimate_edge_mean_stratified, exact_edge_mean};

/// All seven 2-D curves at the given order.
pub fn all_2d_curves(k: u32) -> Vec<BoxedCurve<2>> {
    let mut curves: Vec<BoxedCurve<2>> = CurveKind::ALL
        .iter()
        .map(|kind| kind.build::<2>(k).expect("valid grid"))
        .collect();
    curves.push(Box::new(SpiralCurve::new(k).expect("valid grid")));
    curves.push(Box::new(DiagonalCurve::new(k).expect("valid grid")));
    curves
}

/// Stretch survey over all seven 2-D curves, including the classical
/// spiral and diagonal orders the comparative literature uses.
pub fn more_curves() -> Vec<Table> {
    let mut table = Table::new(
        "All seven 2-D curves: D^avg and D^max vs the paper's references",
        &["k", "curve", "D^avg", "·d/n^{1−1/d}", "D^max", "Thm1 bound"],
    );
    for k in [3u32, 5, 7] {
        let asym = bounds::nn_stretch_asymptote(k, 2);
        let bound = bounds::thm1_nn_stretch_lower_bound(k, 2);
        for curve in all_2d_curves(k) {
            let s = summarize_par(&curve);
            assert!(s.d_avg() >= bound - 1e-9, "{} violates Thm 1!", s.curve);
            table.push_row(vec![
                k.to_string(),
                s.curve.clone(),
                fmt_f64(s.d_avg(), 3),
                fmt_ratio(s.d_avg() / asym),
                fmt_f64(s.d_max(), 3),
                fmt_f64(bound, 3),
            ]);
        }
    }
    vec![table]
}

/// ASCII renderings of every curve family on the 8×8 grid, with jump
/// statistics — the visual counterpart of Figures 3 and 4.
pub fn gallery() -> Vec<Table> {
    let mut table = Table::new(
        "Traversal gallery (8×8): continuity at a glance",
        &["curve", "continuous", "jumps", "longest jump"],
    );
    let mut drawings = Table::new("Drawings", &["curve", "traversal"]);
    for curve in all_2d_curves(3) {
        let r = render_traversal(&curve);
        table.push_row(vec![
            curve.name(),
            (r.jumps == 0).to_string(),
            r.jumps.to_string(),
            r.longest_jump.to_string(),
        ]);
        drawings.push_row(vec![curve.name(), format!("\n{r}")]);
    }
    vec![table, drawings]
}

/// The stratified estimator vs naive sampling on a grid far beyond
/// enumeration (n = 2^52) — repairing the heavy-tail caveat.
pub fn stratified() -> Vec<Table> {
    let k = 26u32; // n = 2^52
    let z = sfc_core::ZCurve::<2>::new(k).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let naive = estimate_d_avg(&z, 2_080, &mut rng); // same budget: 2·26·40
    let strat = estimate_edge_mean_stratified(&z, 40, &mut rng);
    let asym = bounds::nn_stretch_asymptote(k, 2);

    let mut table = Table::new(
        "Estimating the Z curve's stretch on n = 2^52 (asymptote = 2^25/2)",
        &[
            "estimator",
            "estimate",
            "std. error",
            "target",
            "rel. error",
        ],
    );
    table.push_row(vec![
        "naive cell sampling (2080 cells)".into(),
        fmt_f64(naive.mean, 1),
        fmt_f64(naive.std_error, 1),
        fmt_f64(asym, 1),
        format!("{:.1e}", (naive.mean - asym).abs() / asym),
    ]);
    table.push_row(vec![
        "stratified by G_{i,j} (40/stratum)".into(),
        fmt_f64(strat.mean, 1),
        format!("{:.1e}", strat.std_error),
        fmt_f64(asym, 1),
        format!("{:.1e}", (strat.mean - asym).abs() / asym),
    ]);

    // Small-grid ground-truth check table.
    let mut check = Table::new(
        "Sanity on an enumerable grid (k = 6): stratified vs exact edge mean",
        &["curve", "exact", "stratified", "abs. error"],
    );
    for curve in all_2d_curves(6) {
        let exact = exact_edge_mean(&curve);
        let est = estimate_edge_mean_stratified(&curve, 200, &mut rng);
        check.push_row(vec![
            curve.name(),
            fmt_f64(exact, 4),
            fmt_f64(est.mean, 4),
            format!("{:.2e}", (est.mean - exact).abs()),
        ]);
    }
    vec![table, check]
}

/// Distribution shapes: log2 histograms of per-edge curve distance,
/// explaining *why* the averages behave as they do (heavy tail for Z,
/// spikes for simple, concentration for Hilbert).
pub fn distribution() -> Vec<Table> {
    use sfc_metrics::histogram::edge_distance_histogram;
    let k = 6u32;
    let mut table = Table::new(
        "Per-edge Δπ distribution, 64×64 grid (counts per log2 bucket)",
        &[
            "curve",
            "occupied buckets",
            "median bucket",
            "mean Δπ",
            "max Δπ",
            "mass in Δ ≥ 2^6",
        ],
    );
    for curve in all_2d_curves(k) {
        let h = edge_distance_histogram(&curve);
        table.push_row(vec![
            curve.name(),
            h.buckets.iter().filter(|&&c| c > 0).count().to_string(),
            h.median_bucket().map(|b| b.to_string()).unwrap_or_default(),
            fmt_f64(h.mean(), 2),
            h.max.to_string(),
            fmt_f64(h.tail_mass(6), 3),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_curves_are_bijections() {
        use sfc_core::SpaceFillingCurve;
        for curve in all_2d_curves(3) {
            curve
                .validate_bijection()
                .unwrap_or_else(|e| panic!("{}: {e}", curve.name()));
        }
        assert_eq!(all_2d_curves(2).len(), 7);
    }

    #[test]
    fn more_curves_spiral_and_diagonal_are_theta_sqrt_n() {
        let tables = more_curves();
        for row in &tables[0].rows {
            if row[0] == "7" && (row[1] == "spiral" || row[1] == "diagonal") {
                let normalized: f64 = row[3].parse().unwrap();
                // Both are Θ(n^{1/2}) with constants in (2/3, 4).
                assert!((0.66..4.0).contains(&normalized), "{row:?}");
            }
        }
    }

    #[test]
    fn gallery_jump_classification() {
        let tables = gallery();
        let continuity = &tables[0];
        let get = |name: &str| -> bool {
            continuity
                .rows
                .iter()
                .find(|r| r[0] == name)
                .map(|r| r[1] == "true")
                .unwrap()
        };
        assert!(get("snake") && get("hilbert") && get("spiral"));
        assert!(!get("Z") && !get("simple") && !get("gray") && !get("diagonal"));
    }

    #[test]
    fn distribution_table_contrasts_shapes() {
        let tables = distribution();
        let rows = &tables[0].rows;
        let get = |name: &str, col: usize| -> String {
            rows.iter()
                .find(|r| r[0] == name)
                .map(|r| r[col].clone())
                .unwrap()
        };
        // Simple: exactly two spikes (1 and side).
        assert_eq!(get("simple", 1), "2");
        // Snake: horizontal edges are distance 1; vertical edges take odd
        // values up to 2·side − 1 → buckets 0..=log2(2·side), median still
        // 0 (unit steps dominate).
        let snake_buckets: usize = get("snake", 1).parse().unwrap();
        assert!(snake_buckets <= 8, "{snake_buckets}");
        assert_eq!(get("snake", 2), "0");
        // Z: one bucket per class, 2k-ish.
        let z_buckets: usize = get("Z", 1).parse().unwrap();
        assert!(z_buckets >= 10);
        // Z's tail carries most of the mass.
        let z_tail: f64 = get("Z", 5).parse().unwrap();
        assert!(z_tail > 0.5);
    }

    #[test]
    fn stratified_tables_show_the_repair() {
        let tables = stratified();
        let big = &tables[0];
        let naive_err: f64 = big.rows[0][4].parse().unwrap();
        let strat_err: f64 = big.rows[1][4].parse().unwrap();
        assert!(
            strat_err < 1e-6,
            "stratified should be near-exact: {strat_err}"
        );
        assert!(naive_err > 0.1, "naive should miss badly: {naive_err}");
    }
}
