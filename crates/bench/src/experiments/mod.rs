//! The experiment registry: one entry per paper artifact.
//!
//! Each experiment regenerates a figure or numerically validates a theorem,
//! lemma or proposition of the paper, returning its results as tables. The
//! mapping from experiment id to paper artifact and implementing modules is
//! documented in `DESIGN.md` §3; measured-vs-paper numbers are recorded in
//! `EXPERIMENTS.md`.

pub mod applications;
pub mod extensions;
pub mod figures;
pub mod gallery;
pub mod theorems;

use sfc_metrics::report::Table;

/// A registered experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Stable id used on the command line (e.g. `thm2`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// The paper artifact this reproduces (e.g. "Theorem 2").
    pub paper_ref: &'static str,
    /// Runs the experiment and returns its result tables.
    pub run: fn() -> Vec<Table>,
}

/// All experiments, in presentation order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            title: "Figure 1: the two worked curves on the 2×2 grid, and the true optimum",
            paper_ref: "Figure 1 + Section III worked values",
            run: figures::fig1,
        },
        Experiment {
            id: "fig2",
            title: "Figure 2: the nearest-neighbor decomposition p(α,β) vs p(β,α)",
            paper_ref: "Figure 2 + Section IV.A",
            run: figures::fig2,
        },
        Experiment {
            id: "fig3",
            title: "Figure 3: the 2-D Z curve key layout on the 8×8 grid",
            paper_ref: "Figure 3 + Section IV.B worked example",
            run: figures::fig3,
        },
        Experiment {
            id: "fig4",
            title: "Figure 4: the simple curve on the 8×8 grid",
            paper_ref: "Figure 4 + Eq. 8",
            run: figures::fig4,
        },
        Experiment {
            id: "thm1",
            title: "Theorem 1: the universal NN-stretch lower bound, across curves and dimensions",
            paper_ref: "Theorem 1",
            run: theorems::thm1,
        },
        Experiment {
            id: "lem2",
            title: "Lemma 2: S_A'(π) = (n−1)n(n+1)/3 for every bijection",
            paper_ref: "Lemma 2",
            run: theorems::lem2,
        },
        Experiment {
            id: "lem4",
            title: "Lemma 4: edge multiplicity of the NN decomposition",
            paper_ref: "Lemma 4",
            run: theorems::lem4,
        },
        Experiment {
            id: "thm2",
            title: "Theorem 2: D^avg(Z) ~ (1/d)·n^{1−1/d} (convergence)",
            paper_ref: "Theorem 2",
            run: theorems::thm2,
        },
        Experiment {
            id: "lem5",
            title: "Lemma 5: Λ_i(Z)/n^{2−1/d} → 2^{d−i}/(2^d−1)",
            paper_ref: "Lemma 5",
            run: theorems::lem5,
        },
        Experiment {
            id: "thm3",
            title: "Theorem 3: the simple curve matches the Z curve's stretch",
            paper_ref: "Theorem 3",
            run: theorems::thm3,
        },
        Experiment {
            id: "ratio15",
            title: "The 1.5× optimality gap of the Z curve",
            paper_ref: "Section I headline (Theorems 1+2)",
            run: theorems::ratio15,
        },
        Experiment {
            id: "prop1",
            title: "Proposition 1: D^max obeys the same lower bound",
            paper_ref: "Proposition 1",
            run: theorems::prop1,
        },
        Experiment {
            id: "prop2",
            title: "Proposition 2: D^max(S) = n^{1−1/d}, exactly",
            paper_ref: "Proposition 2",
            run: theorems::prop2,
        },
        Experiment {
            id: "prop34",
            title: "Propositions 3 & 4: all-pairs stretch bounds (Manhattan & Euclidean)",
            paper_ref: "Propositions 3 and 4",
            run: theorems::prop34,
        },
        Experiment {
            id: "hilbert",
            title: "Open question: measured NN-stretch of the Hilbert (and Gray) curves",
            paper_ref: "Section VI, first open question",
            run: extensions::hilbert,
        },
        Experiment {
            id: "optsearch",
            title: "Open question: searching for better-than-Z curves (exhaustive + annealing)",
            paper_ref: "Section VI (gap between bounds)",
            run: extensions::optsearch,
        },
        Experiment {
            id: "dmax-z",
            title: "New analysis: D^max(Z) in closed form converges to 2·n^{1−1/d}",
            paper_ref: "Section VI open question on the D^max gap",
            run: extensions::dmax_z,
        },
        Experiment {
            id: "torus",
            title: "Torus variant: periodic boundaries, Lemma 3 as equality, exact closed forms",
            paper_ref: "Section VI (model extensions)",
            run: extensions::torus,
        },
        Experiment {
            id: "cluster",
            title: "Contrast metric: Moon et al. clustering vs the stretch",
            paper_ref: "Section II (related work, ref [18])",
            run: extensions::cluster,
        },
        Experiment {
            id: "more-curves",
            title: "Extended survey: spiral and diagonal curves vs the bounds",
            paper_ref: "Section II (comparative studies, ref [1])",
            run: gallery::more_curves,
        },
        Experiment {
            id: "gallery",
            title: "Traversal gallery: continuity and jumps of all seven curves",
            paper_ref: "Figures 3-4 (visual counterpart)",
            run: gallery::gallery,
        },
        Experiment {
            id: "distribution",
            title: "Distribution shapes: per-edge stretch histograms per curve",
            paper_ref: "Lemma 5 class structure, visualized",
            run: gallery::distribution,
        },
        Experiment {
            id: "stratified",
            title: "Stratified estimation of Z-curve stretch beyond enumerable sizes",
            paper_ref: "Lemma 5 strata, applied to estimation",
            run: gallery::stratified,
        },
        Experiment {
            id: "app-partition",
            title: "Application: SFC domain decomposition quality per curve",
            paper_ref: "Section I (refs [3], [22], [23])",
            run: applications::app_partition,
        },
        Experiment {
            id: "app-index",
            title: "Application: range & kNN query cost per curve",
            paper_ref: "Section I (refs [9], [21]) + ref [5]",
            run: applications::app_index,
        },
        Experiment {
            id: "app-nbody",
            title: "Application: N-body decomposition locality per curve",
            paper_ref: "Section I (ref [26])",
            run: applications::app_nbody,
        },
    ]
}
