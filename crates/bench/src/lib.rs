//! # sfc-bench — the reproduction harness
//!
//! One experiment per paper artifact (figure, theorem, lemma, proposition)
//! plus the application-level experiments motivated by the paper's
//! introduction. Run them all:
//!
//! ```text
//! cargo run -p sfc-bench --release --bin experiments
//! ```
//!
//! or a single one by id (see [`all_experiments`]):
//!
//! ```text
//! cargo run -p sfc-bench --release --bin experiments -- thm2
//! cargo run -p sfc-bench --release --bin experiments -- --markdown fig1 lem5
//! ```
//!
//! Criterion micro-benchmarks (curve throughput, metric scaling, query
//! strategies, partitioning, tree building) live under `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;

pub use experiments::{all_experiments, Experiment};

use sfc_metrics::report::Table;

/// Renders a slice of tables either as plain text or Markdown.
pub fn render_tables(tables: &[Table], markdown: bool) -> String {
    tables
        .iter()
        .map(|t| {
            if markdown {
                t.render_markdown()
            } else {
                t.render_text()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_has_unique_id_and_title() {
        let experiments = all_experiments();
        assert!(experiments.len() >= 18, "got {}", experiments.len());
        let mut ids: Vec<&str> = experiments.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), experiments.len(), "duplicate experiment ids");
        for e in &experiments {
            assert!(!e.title.is_empty());
            assert!(!e.paper_ref.is_empty());
        }
    }

    #[test]
    fn render_tables_produces_both_formats() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec!["1".into()]);
        let text = render_tables(&[t.clone()], false);
        assert!(text.contains("== x =="));
        let md = render_tables(&[t], true);
        assert!(md.contains("### x"));
    }
}
