//! Curve encode/decode throughput: the raw cost of `π` and `π⁻¹` per
//! family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use sfc_core::{CurveKind, Grid, Point, SpaceFillingCurve};
use std::hint::black_box;

fn bench_encode_decode(c: &mut Criterion) {
    let grid = Grid::<2>::new(10).unwrap(); // 1024×1024
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let points: Vec<Point<2>> = (0..1024).map(|_| grid.random_cell(&mut rng)).collect();

    let mut group = c.benchmark_group("encode_d2_k10");
    for kind in CurveKind::ALL {
        let curve = kind.build::<2>(10).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &curve,
            |b, curve| {
                b.iter(|| {
                    let mut acc = 0u128;
                    for p in &points {
                        acc ^= curve.index_of(black_box(*p));
                    }
                    acc
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("decode_d2_k10");
    let indices: Vec<u128> = (0..1024).map(|_| rng.gen_range(0..grid.n())).collect();
    for kind in CurveKind::ALL {
        let curve = kind.build::<2>(10).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &curve,
            |b, curve| {
                b.iter(|| {
                    let mut acc = 0u32;
                    for &i in &indices {
                        acc ^= curve.point_of(black_box(i)).coord(0);
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

fn bench_dimensions(c: &mut Criterion) {
    // Morton encode across dimensions (fast paths for d=2,3; generic above).
    let mut group = c.benchmark_group("morton_encode_by_dimension");
    macro_rules! bench_d {
        ($d:literal, $k:expr) => {{
            let grid = Grid::<$d>::new($k).unwrap();
            let z = sfc_core::ZCurve::<$d>::over(grid);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
            let points: Vec<Point<$d>> = (0..1024).map(|_| grid.random_cell(&mut rng)).collect();
            group.bench_function(format!("d{}", $d), |b| {
                b.iter(|| {
                    let mut acc = 0u128;
                    for p in &points {
                        acc ^= z.encode(black_box(*p));
                    }
                    acc
                })
            });
        }};
    }
    bench_d!(2, 16);
    bench_d!(3, 10);
    bench_d!(4, 8);
    bench_d!(6, 5);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encode_decode, bench_dimensions
}
criterion_main!(benches);
