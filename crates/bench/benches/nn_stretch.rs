//! Exact NN-stretch computation: scaling in `n` and sequential vs Rayon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfc_core::{CurveKind, ZCurve};
use sfc_metrics::nn_stretch::{summarize, summarize_par};
use std::hint::black_box;

fn bench_summarize_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_stretch_summarize_z_d2");
    for k in [4u32, 6, 8] {
        let z = ZCurve::<2>::new(k).unwrap();
        group.bench_with_input(BenchmarkId::new("seq", format!("k{k}")), &z, |b, z| {
            b.iter(|| black_box(summarize(z)))
        });
        group.bench_with_input(BenchmarkId::new("par", format!("k{k}")), &z, |b, z| {
            b.iter(|| black_box(summarize_par(z)))
        });
    }
    group.finish();
}

fn bench_summarize_by_curve(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_stretch_by_curve_k6");
    for kind in CurveKind::ALL {
        let curve = kind.build::<2>(6).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &curve,
            |b, curve| b.iter(|| black_box(summarize(curve))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_summarize_scaling, bench_summarize_by_curve
}
criterion_main!(benches);
