//! N-body: tree build, Barnes–Hut vs direct, sequential vs parallel.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use sfc_nbody::body::{sample_bodies, Distribution};
use sfc_nbody::gravity::{barnes_hut_forces, barnes_hut_forces_par, direct_forces};
use sfc_nbody::{Body, Tree};
use std::hint::black_box;

fn bench_tree_build(c: &mut Criterion) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
    let bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 10_000, &mut rng);
    c.bench_function("tree_build_10k", |b| {
        b.iter(|| black_box(Tree::build(bodies.clone(), 10, 8)))
    });
}

fn bench_forces(c: &mut Criterion) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
    let bodies: Vec<Body<2>> = sample_bodies(
        Distribution::Clustered {
            clusters: 5,
            sigma: 0.04,
        },
        2_000,
        &mut rng,
    );
    let tree = Tree::build(bodies, 10, 8);

    let mut group = c.benchmark_group("forces_2k_bodies");
    group.bench_function("direct", |b| {
        b.iter(|| black_box(direct_forces(tree.bodies(), 1e-3)))
    });
    group.bench_function("barnes_hut_theta0.5", |b| {
        b.iter(|| black_box(barnes_hut_forces(&tree, 0.5, 1e-3)))
    });
    group.bench_function("barnes_hut_theta0.5_par", |b| {
        b.iter(|| black_box(barnes_hut_forces_par(&tree, 0.5, 1e-3)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tree_build, bench_forces
}
criterion_main!(benches);
