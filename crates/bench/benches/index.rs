//! Spatial-index query strategies: full scan vs intervals vs BIGMIN.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use sfc_core::{Grid, HilbertCurve, Point, ZCurve};
use sfc_index::{BoxRegion, SfcIndex};
use std::hint::black_box;

fn setup(k: u32, records: usize) -> (Grid<2>, Vec<(Point<2>, usize)>, Vec<BoxRegion<2>>) {
    let grid = Grid::<2>::new(k).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    let recs: Vec<(Point<2>, usize)> = (0..records)
        .map(|i| (grid.random_cell(&mut rng), i))
        .collect();
    let max = (grid.side() - 1) as u32;
    let boxes: Vec<BoxRegion<2>> = (0..64)
        .map(|_| {
            let corner = grid.random_cell(&mut rng);
            let size = rng.gen_range(2..10u32);
            BoxRegion::new(
                corner,
                Point::new([
                    (corner.coord(0) + size).min(max),
                    (corner.coord(1) + size).min(max),
                ]),
            )
        })
        .collect();
    (grid, recs, boxes)
}

fn bench_box_queries(c: &mut Criterion) {
    let (grid, recs, boxes) = setup(7, 20_000); // 128×128, 20k records
    let zindex = SfcIndex::build(ZCurve::over(grid), recs.clone());
    let hindex = SfcIndex::build(HilbertCurve::over(grid), recs);

    let mut group = c.benchmark_group("box_query_128x128_20k");
    group.bench_function("z_full_scan", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &boxes {
                total += black_box(zindex.query_box_full_scan(q).0.len());
            }
            total
        })
    });
    group.bench_function("z_bigmin", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &boxes {
                total += black_box(zindex.query_box_bigmin(q).0.len());
            }
            total
        })
    });
    group.bench_function("z_intervals", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &boxes {
                total += black_box(zindex.query_box_intervals(q).0.len());
            }
            total
        })
    });
    group.bench_function("hilbert_intervals", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &boxes {
                total += black_box(hindex.query_box_intervals(q).0.len());
            }
            total
        })
    });
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let (grid, recs, _) = setup(7, 20_000);
    let zindex = SfcIndex::build(ZCurve::over(grid), recs);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(10);
    let queries: Vec<Point<2>> = (0..32).map(|_| grid.random_cell(&mut rng)).collect();
    c.bench_function("knn_k10_z_20k", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for q in &queries {
                total += black_box(zindex.knn(*q, 10, 16).1.scanned);
            }
            total
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_box_queries, bench_knn
}
criterion_main!(benches);
