//! Partitioning: greedy vs min-bottleneck, and quality evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use sfc_core::{Grid, ZCurve};
use sfc_partition::{
    partition_greedy, partitioner::partition_min_bottleneck, quality, WeightedGrid, Workload,
};
use std::hint::black_box;

fn bench_partition(c: &mut Criterion) {
    let grid = Grid::<2>::new(7).unwrap(); // 128×128 = 16384 cells
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let weights = WeightedGrid::generate(
        grid,
        Workload::GaussianClusters {
            count: 6,
            sigma: 9.0,
        },
        &mut rng,
    );
    let z = ZCurve::<2>::over(grid);

    let mut group = c.benchmark_group("partition_128x128_p32");
    group.bench_function("greedy", |b| {
        b.iter(|| black_box(partition_greedy(&z, &weights, 32)))
    });
    group.bench_function("min_bottleneck", |b| {
        b.iter(|| black_box(partition_min_bottleneck(&z, &weights, 32, 1e-6)))
    });
    group.finish();

    let part = partition_greedy(&z, &weights, 32);
    let mut group = c.benchmark_group("partition_quality_128x128");
    group.bench_function("evaluate_seq", |b| {
        b.iter(|| black_box(quality::evaluate(&z, &weights, &part)))
    });
    group.bench_function("evaluate_par", |b| {
        b.iter(|| black_box(quality::evaluate_par(&z, &weights, &part)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partition
}
criterion_main!(benches);
