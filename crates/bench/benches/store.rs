//! Streaming ingest through `SfcStore` vs repeated `SfcIndex::build`
//! rebuilds — the dynamic-workload scenario the store exists for.
//!
//! Scenario (per curve family): a 1M-record base set on a 2048×2048 grid
//! absorbs 100k upserts in 10 rounds of 10k, with a batch of box queries
//! after every round.
//!
//! * `rebuild_*` — the static path: an authoritative `BTreeMap` takes the
//!   updates and the **whole** `SfcIndex` is rebuilt from it each round.
//! * `store_*` — the LSM path: updates stream into the store's memtable,
//!   flush/compaction amortises the sort work, queries span the levels.
//!
//! Before timing anything, the harness asserts that the store's query
//! results are **byte-identical** (key, point, payload) to a fresh static
//! index built over the same live set — for BIGMIN on Z, intervals on
//! Hilbert, and kNN.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use sfc_core::{CurveIndex, Grid, HilbertCurve, Point, SpaceFillingCurve, ZCurve};
use sfc_index::{BoxRegion, QueryStats, SfcIndex};
use sfc_store::{SfcStore, ShardedSfcStore};
use std::collections::BTreeMap;
use std::hint::black_box;

const BASE: usize = 1_000_000;
const ROUNDS: usize = 10;
const UPDATES_PER_ROUND: usize = 10_000;
const GRID_K: u32 = 11; // 2048×2048
const QUERIES_PER_ROUND: usize = 8;

struct Scenario {
    grid: Grid<2>,
    base: Vec<(Point<2>, u64)>,
    rounds: Vec<Vec<(Point<2>, u64)>>,
    boxes: Vec<BoxRegion<2>>,
}

fn scenario() -> Scenario {
    let grid = Grid::<2>::new(GRID_K).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    let base: Vec<(Point<2>, u64)> = (0..BASE)
        .map(|i| (grid.random_cell(&mut rng), i as u64))
        .collect();
    let rounds: Vec<Vec<(Point<2>, u64)>> = (0..ROUNDS)
        .map(|r| {
            (0..UPDATES_PER_ROUND)
                .map(|i| {
                    (
                        grid.random_cell(&mut rng),
                        (BASE + r * UPDATES_PER_ROUND + i) as u64,
                    )
                })
                .collect()
        })
        .collect();
    let max = (grid.side() - 1) as u32;
    let boxes: Vec<BoxRegion<2>> = (0..QUERIES_PER_ROUND)
        .map(|_| {
            let corner = grid.random_cell(&mut rng);
            let size = rng.gen_range(8..24u32);
            BoxRegion::new(
                corner,
                Point::new([
                    (corner.coord(0) + size).min(max),
                    (corner.coord(1) + size).min(max),
                ]),
            )
        })
        .collect();
    Scenario {
        grid,
        base,
        rounds,
        boxes,
    }
}

type Authority = BTreeMap<CurveIndex, (Point<2>, u64)>;

fn authority_of<C: SpaceFillingCurve<2>>(curve: &C, records: &[(Point<2>, u64)]) -> Authority {
    records
        .iter()
        .map(|&(p, v)| (curve.index_of(p), (p, v)))
        .collect()
}

fn apply_round<C: SpaceFillingCurve<2>>(
    curve: &C,
    authority: &mut Authority,
    updates: &[(Point<2>, u64)],
) {
    for &(p, v) in updates {
        authority.insert(curve.index_of(p), (p, v));
    }
}

/// Asserts the store's merged query results are byte-identical to a fresh
/// static index over the same live set.
fn assert_equivalence(sc: &Scenario) {
    let triple = |key: CurveIndex, point: Point<2>, payload: u64| (key, point, payload);

    // Z: BIGMIN both sides, plus kNN.
    let z = ZCurve::over(sc.grid);
    let mut store = SfcStore::bulk_load(z, sc.base.iter().copied());
    let mut authority = authority_of(&z, &sc.base);
    for updates in &sc.rounds {
        apply_round(&z, &mut authority, updates);
        for &(p, v) in updates {
            store.insert(p, v);
        }
    }
    let index = SfcIndex::build(z, authority.values().copied());
    assert_eq!(store.len(), index.len(), "live set size");
    for b in &sc.boxes {
        let (got, _) = store.query_box_bigmin(b);
        let (want, _) = index.query_box_bigmin(b);
        let got: Vec<_> = got
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        let want: Vec<_> = want
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        assert_eq!(got, want, "Z bigmin mismatch on {b:?}");
        let q = b.lo();
        let (gk, _) = store.knn(q, 10, 16);
        let (wk, _) = index.knn(q, 10, 16);
        let gk: Vec<_> = gk
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        let wk: Vec<_> = wk
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        assert_eq!(gk, wk, "Z knn mismatch at {q}");
    }

    // Hilbert: interval strategy both sides.
    let h = HilbertCurve::over(sc.grid);
    let mut store = SfcStore::bulk_load(h, sc.base.iter().copied());
    let mut authority = authority_of(&h, &sc.base);
    for updates in &sc.rounds {
        apply_round(&h, &mut authority, updates);
        for &(p, v) in updates {
            store.insert(p, v);
        }
    }
    let index = SfcIndex::build(h, authority.values().copied());
    for b in &sc.boxes {
        let (got, _) = store.query_box_intervals(b);
        let (want, _) = index.query_box_intervals(b);
        let got: Vec<_> = got
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        let want: Vec<_> = want
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        assert_eq!(got, want, "Hilbert intervals mismatch on {b:?}");
    }
    println!("equivalence: store query results byte-identical to static index (Z + Hilbert)");
}

/// Per-shard BIGMIN fan-out: the `*_par` hook. The vendored rayon
/// stand-in runs the closure sequentially; with the real rayon patched
/// back in (see ROADMAP), the same line fans the shards out across a
/// thread pool unchanged — each shard is an independent `&SfcStore`.
fn sharded_query_bigmin_par<'a>(
    store: &'a ShardedSfcStore<2, u64, ZCurve<2>>,
    b: &BoxRegion<2>,
) -> (Vec<sfc_store::StoreEntryRef<'a, 2, u64>>, QueryStats) {
    let per_shard: Vec<_> = store
        .shards()
        .par_iter()
        .map(|shard| shard.query_box_bigmin(b))
        .collect();
    let mut out = Vec::new();
    let mut stats = QueryStats::default();
    for (hits, shard_stats) in per_shard {
        out.extend(hits);
        stats.seeks += shard_stats.seeks;
        stats.scanned += shard_stats.scanned;
        stats.reported += shard_stats.reported;
    }
    (out, stats)
}

/// Asserts the sharded store's query results are byte-identical to the
/// single store's (router + fan-out must be invisible to readers), and
/// reports per-shard shape and query work.
fn assert_sharded_equivalence(
    sc: &Scenario,
    parts: usize,
) -> (
    ShardedSfcStore<2, u64, ZCurve<2>>,
    SfcStore<2, u64, ZCurve<2>>,
) {
    let z = ZCurve::over(sc.grid);
    let mut sharded = ShardedSfcStore::bulk_load(z, parts, sc.base.iter().copied());
    // Sample the write-weight feedback (1 in 64, weight 64): unbiased for
    // rebalancing, and the accumulator's bookkeeping stays off the
    // per-upsert hot path.
    sharded.set_traffic_sampling(64);
    let mut single = SfcStore::bulk_load(z, sc.base.iter().copied());
    for updates in &sc.rounds {
        for &(p, v) in updates {
            sharded.insert(p, v);
            single.insert(p, v);
        }
    }
    assert_eq!(sharded.len(), single.len(), "live set size");
    let triple = |key: CurveIndex, point: Point<2>, payload: u64| (key, point, payload);
    let mut per_shard_work = vec![QueryStats::default(); parts];
    for b in &sc.boxes {
        let (got, _) = sharded.query_box_bigmin(b);
        let (par, _) = sharded_query_bigmin_par(&sharded, b);
        let (want, _) = single.query_box_bigmin(b);
        let got: Vec<_> = got
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        let par: Vec<_> = par
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        let want: Vec<_> = want
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        assert_eq!(got, want, "sharded bigmin mismatch on {b:?}");
        assert_eq!(par, want, "par fan-out bigmin mismatch on {b:?}");
        let q = b.lo();
        let (gk, _) = sharded.knn(q, 10, 16);
        let (wk, _) = single.knn(q, 10, 16);
        let gk: Vec<_> = gk
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        let wk: Vec<_> = wk
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        assert_eq!(gk, wk, "sharded knn mismatch at {q}");
        for (j, shard) in sharded.shards().iter().enumerate() {
            let (_, s) = shard.query_box_bigmin(b);
            per_shard_work[j].seeks += s.seeks;
            per_shard_work[j].scanned += s.scanned;
            per_shard_work[j].reported += s.reported;
        }
    }
    println!("sharded equivalence: {parts}-shard results byte-identical to single store");
    for (j, (len, work)) in sharded.shard_lens().iter().zip(&per_shard_work).enumerate() {
        println!(
            "  shard {j}: {len} live | runs {:?} | box-query work: seeks {} scanned {} reported {}",
            sharded.shards()[j].run_lens(),
            work.seeks,
            work.scanned,
            work.reported
        );
    }
    (sharded, single)
}

fn bench_sharded_ingest(c: &mut Criterion) {
    const PARTS: usize = 4;
    let sc = scenario();
    let (mut sharded, mut single) = assert_sharded_equivalence(&sc, PARTS);

    let mut group = c.benchmark_group("sharded_ingest_100k_into_1m");
    group.bench_function("z_single_store", |bencher| {
        bencher.iter(|| {
            let mut total = 0usize;
            for updates in &sc.rounds {
                for &(p, v) in updates {
                    single.insert(p, v);
                }
                for b in &sc.boxes {
                    total += black_box(single.query_box_bigmin(b).0.len());
                }
            }
            total
        })
    });
    group.bench_function("z_sharded_store", |bencher| {
        bencher.iter(|| {
            let mut total = 0usize;
            for updates in &sc.rounds {
                for &(p, v) in updates {
                    sharded.insert(p, v);
                }
                for b in &sc.boxes {
                    total += black_box(sharded.query_box_bigmin(b).0.len());
                }
            }
            total
        })
    });
    group.bench_function("z_sharded_store_query_par", |bencher| {
        bencher.iter(|| {
            let mut total = 0usize;
            for updates in &sc.rounds {
                for &(p, v) in updates {
                    sharded.insert(p, v);
                }
                for b in &sc.boxes {
                    total += black_box(sharded_query_bigmin_par(&sharded, b).0.len());
                }
            }
            total
        })
    });
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let sc = scenario();
    assert_equivalence(&sc);

    let mut group = c.benchmark_group("ingest_100k_into_1m");

    macro_rules! bench_curve {
        ($name:literal, $curve:expr, $query:ident) => {
            let curve = $curve;
            // Rebuild baseline: authority map + full rebuild per round.
            let mut authority = authority_of(&curve, &sc.base);
            group.bench_function(concat!($name, "_rebuild"), |bencher| {
                bencher.iter(|| {
                    let mut total = 0usize;
                    for updates in &sc.rounds {
                        apply_round(&curve, &mut authority, updates);
                        let index = SfcIndex::build(curve, authority.values().copied());
                        for b in &sc.boxes {
                            total += black_box(index.$query(b).0.len());
                        }
                    }
                    total
                })
            });
            // Streaming path: updates land in the memtable, flushes and
            // size-tiered merges amortise the sort.
            let mut store = SfcStore::bulk_load(curve, sc.base.iter().copied());
            group.bench_function(concat!($name, "_store_streaming"), |bencher| {
                bencher.iter(|| {
                    let mut total = 0usize;
                    for updates in &sc.rounds {
                        for &(p, v) in updates {
                            store.insert(p, v);
                        }
                        for b in &sc.boxes {
                            total += black_box(store.$query(b).0.len());
                        }
                    }
                    total
                })
            });
        };
    }

    bench_curve!("z", ZCurve::over(sc.grid), query_box_bigmin);
    bench_curve!("hilbert", HilbertCurve::over(sc.grid), query_box_intervals);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ingest, bench_sharded_ingest
}
criterion_main!(benches);
