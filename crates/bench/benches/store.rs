//! Streaming ingest through `SfcStore` vs repeated `SfcIndex::build`
//! rebuilds — the dynamic-workload scenario the store exists for.
//!
//! Scenario (per curve family): a 1M-record base set on a 2048×2048 grid
//! absorbs 100k upserts in 10 rounds of 10k, with a batch of box queries
//! after every round.
//!
//! * `rebuild_*` — the static path: an authoritative `BTreeMap` takes the
//!   updates and the **whole** `SfcIndex` is rebuilt from it each round.
//! * `store_*` — the LSM path: updates stream into the store's memtable,
//!   flush/compaction amortises the sort work, queries span the levels.
//!
//! Before timing anything, the harness asserts that the store's query
//! results are **byte-identical** (key, point, payload) to a fresh static
//! index built over the same live set — for BIGMIN on Z, intervals on
//! Hilbert, and kNN.

use criterion::{criterion_group, Criterion};
use rand::{Rng, SeedableRng};
use sfc_core::{CurveIndex, Grid, HilbertCurve, Point, SpaceFillingCurve, ZCurve};
use sfc_index::{BoxRegion, QueryStats, SfcIndex};
use sfc_obs::MetricsRegistry;
use sfc_store::memtable::bptree::BPlusTreeMap;
use sfc_store::{BatchOp, EngineMetrics, SfcStore, ShardedSfcStore, WalConfig};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::io::Write as _;
use std::sync::Arc;

const BASE: usize = 1_000_000;
const ROUNDS: usize = 10;
const UPDATES_PER_ROUND: usize = 10_000;
const GRID_K: u32 = 11; // 2048×2048
const QUERIES_PER_ROUND: usize = 8;

struct Scenario {
    grid: Grid<2>,
    base: Vec<(Point<2>, u64)>,
    rounds: Vec<Vec<(Point<2>, u64)>>,
    boxes: Vec<BoxRegion<2>>,
}

fn scenario() -> Scenario {
    let grid = Grid::<2>::new(GRID_K).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    let base: Vec<(Point<2>, u64)> = (0..BASE)
        .map(|i| (grid.random_cell(&mut rng), i as u64))
        .collect();
    let rounds: Vec<Vec<(Point<2>, u64)>> = (0..ROUNDS)
        .map(|r| {
            (0..UPDATES_PER_ROUND)
                .map(|i| {
                    (
                        grid.random_cell(&mut rng),
                        (BASE + r * UPDATES_PER_ROUND + i) as u64,
                    )
                })
                .collect()
        })
        .collect();
    let max = (grid.side() - 1) as u32;
    let boxes: Vec<BoxRegion<2>> = (0..QUERIES_PER_ROUND)
        .map(|_| {
            let corner = grid.random_cell(&mut rng);
            let size = rng.gen_range(8..24u32);
            BoxRegion::new(
                corner,
                Point::new([
                    (corner.coord(0) + size).min(max),
                    (corner.coord(1) + size).min(max),
                ]),
            )
        })
        .collect();
    Scenario {
        grid,
        base,
        rounds,
        boxes,
    }
}

type Authority = BTreeMap<CurveIndex, (Point<2>, u64)>;

fn authority_of<C: SpaceFillingCurve<2>>(curve: &C, records: &[(Point<2>, u64)]) -> Authority {
    records
        .iter()
        .map(|&(p, v)| (curve.index_of(p), (p, v)))
        .collect()
}

fn apply_round<C: SpaceFillingCurve<2>>(
    curve: &C,
    authority: &mut Authority,
    updates: &[(Point<2>, u64)],
) {
    for &(p, v) in updates {
        authority.insert(curve.index_of(p), (p, v));
    }
}

/// Asserts the store's merged query results are byte-identical to a fresh
/// static index over the same live set.
fn assert_equivalence(sc: &Scenario) {
    let triple = |key: CurveIndex, point: Point<2>, payload: u64| (key, point, payload);

    // Z: BIGMIN both sides, plus kNN.
    let z = ZCurve::over(sc.grid);
    let mut store = SfcStore::bulk_load(z, sc.base.iter().copied());
    let mut authority = authority_of(&z, &sc.base);
    for updates in &sc.rounds {
        apply_round(&z, &mut authority, updates);
        for &(p, v) in updates {
            store.insert(p, v);
        }
    }
    let index = SfcIndex::build(z, authority.values().copied());
    assert_eq!(store.len(), index.len(), "live set size");
    for b in &sc.boxes {
        let (got, _) = store.query_box_bigmin(b);
        let (want, _) = index.query_box_bigmin(b);
        let got: Vec<_> = got
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        let want: Vec<_> = want
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        assert_eq!(got, want, "Z bigmin mismatch on {b:?}");
        let q = b.lo();
        let (gk, _) = store.knn(q, 10, 16);
        let (wk, _) = index.knn(q, 10, 16);
        let gk: Vec<_> = gk
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        let wk: Vec<_> = wk
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        assert_eq!(gk, wk, "Z knn mismatch at {q}");
    }

    // Hilbert: interval strategy both sides.
    let h = HilbertCurve::over(sc.grid);
    let mut store = SfcStore::bulk_load(h, sc.base.iter().copied());
    let mut authority = authority_of(&h, &sc.base);
    for updates in &sc.rounds {
        apply_round(&h, &mut authority, updates);
        for &(p, v) in updates {
            store.insert(p, v);
        }
    }
    let index = SfcIndex::build(h, authority.values().copied());
    for b in &sc.boxes {
        let (got, _) = store.query_box_intervals(b);
        let (want, _) = index.query_box_intervals(b);
        let got: Vec<_> = got
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        let want: Vec<_> = want
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        assert_eq!(got, want, "Hilbert intervals mismatch on {b:?}");
    }
    println!("equivalence: store query results byte-identical to static index (Z + Hilbert)");
}

/// Asserts the sharded store's query results are byte-identical to the
/// single store's (router + fan-out must be invisible to readers) — for
/// the sequential fan-out AND the scoped-thread parallel one, which now
/// really distributes the per-shard scans — and reports per-shard shape
/// and query work.
fn assert_sharded_equivalence(
    sc: &Scenario,
    parts: usize,
) -> (
    ShardedSfcStore<2, u64, ZCurve<2>>,
    SfcStore<2, u64, ZCurve<2>>,
) {
    let z = ZCurve::over(sc.grid);
    let sharded = ShardedSfcStore::bulk_load(z, parts, sc.base.iter().copied());
    // Sample the write-weight feedback (1 in 64 per shard, weight 64):
    // unbiased for rebalancing, and the accumulator's bookkeeping stays
    // off the per-upsert hot path.
    sharded.set_traffic_sampling(64);
    let mut single = SfcStore::bulk_load(z, sc.base.iter().copied());
    for updates in &sc.rounds {
        for &(p, v) in updates {
            sharded.insert(p, v);
            single.insert(p, v);
        }
    }
    assert_eq!(sharded.len(), single.len(), "live set size");
    let triple = |key: CurveIndex, point: Point<2>, payload: u64| (key, point, payload);
    let mut per_shard_work = vec![QueryStats::default(); parts];
    let frozen = sharded.snapshot();
    for b in &sc.boxes {
        let (got, _) = sharded.query_box_bigmin(b);
        let (par, _) = sharded.query_box_bigmin_par(b);
        let (want, _) = single.query_box_bigmin(b);
        let got: Vec<_> = got
            .iter()
            .map(|e| triple(e.key, e.point, e.payload))
            .collect();
        let par: Vec<_> = par
            .iter()
            .map(|e| triple(e.key, e.point, e.payload))
            .collect();
        let want: Vec<_> = want
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        assert_eq!(got, want, "sharded bigmin mismatch on {b:?}");
        assert_eq!(par, want, "par fan-out bigmin mismatch on {b:?}");
        let q = b.lo();
        let (gk, _) = sharded.knn(q, 10, 16);
        let (gkp, _) = sharded.knn_par(q, 10, 16);
        let (wk, _) = single.knn(q, 10, 16);
        let gk: Vec<_> = gk
            .iter()
            .map(|e| triple(e.key, e.point, e.payload))
            .collect();
        let gkp: Vec<_> = gkp
            .iter()
            .map(|e| triple(e.key, e.point, e.payload))
            .collect();
        let wk: Vec<_> = wk
            .iter()
            .map(|e| triple(e.key, e.point, *e.payload))
            .collect();
        assert_eq!(gk, wk, "sharded knn mismatch at {q}");
        assert_eq!(gkp, wk, "par knn mismatch at {q}");
        for (j, shard) in frozen.shards().iter().enumerate() {
            let (_, s) = shard.query_box_bigmin(b);
            per_shard_work[j].seeks += s.seeks;
            per_shard_work[j].scanned += s.scanned;
            per_shard_work[j].reported += s.reported;
        }
    }
    println!(
        "sharded equivalence: {parts}-shard results byte-identical to single store (seq + par)"
    );
    for (j, (len, work)) in sharded.shard_lens().iter().zip(&per_shard_work).enumerate() {
        println!(
            "  shard {j}: {len} live | runs {:?} | box-query work: seeks {} scanned {} reported {}",
            sharded.shard_run_lens()[j],
            work.seeks,
            work.scanned,
            work.reported
        );
    }
    (sharded, single)
}

fn bench_sharded_ingest(c: &mut Criterion) {
    const PARTS: usize = 4;
    let sc = scenario();
    let (sharded, mut single) = assert_sharded_equivalence(&sc, PARTS);

    let mut group = c.benchmark_group("sharded_ingest_100k_into_1m");
    group.bench_function("z_single_store", |bencher| {
        bencher.iter(|| {
            let mut total = 0usize;
            for updates in &sc.rounds {
                for &(p, v) in updates {
                    single.insert(p, v);
                }
                for b in &sc.boxes {
                    total += black_box(single.query_box_bigmin(b).0.len());
                }
            }
            total
        })
    });
    group.bench_function("z_sharded_store", |bencher| {
        bencher.iter(|| {
            let mut total = 0usize;
            for updates in &sc.rounds {
                for &(p, v) in updates {
                    sharded.insert(p, v);
                }
                for b in &sc.boxes {
                    total += black_box(sharded.query_box_bigmin(b).0.len());
                }
            }
            total
        })
    });
    group.bench_function("z_sharded_store_query_par", |bencher| {
        bencher.iter(|| {
            let mut total = 0usize;
            for updates in &sc.rounds {
                for &(p, v) in updates {
                    sharded.insert(p, v);
                }
                for b in &sc.boxes {
                    total += black_box(sharded.query_box_bigmin_par(b).0.len());
                }
            }
            total
        })
    });
    group.finish();
}

/// Multi-writer ingest throughput: the same total op count split across
/// 1/2/4/8 writer threads driving the `&self` API of an 8-shard store.
/// Writers own disjoint shard subsets, so the per-shard locks never
/// contend — wall-clock scaling above one writer is bounded only by the
/// machine's cores (single-core containers will show ≈1×).
fn bench_concurrent_throughput(c: &mut Criterion) {
    const SHARDS: usize = 8;
    const TOTAL_OPS: usize = 200_000;
    let grid = Grid::<2>::new(GRID_K).unwrap();
    let z = ZCurve::over(grid);
    let partition = sfc_partition::Partition::uniform(grid.n(), SHARDS);
    // Pre-bucket a fixed op stream by owning shard so each writer thread
    // can take whole shards (disjoint ranges, deterministic content).
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(777);
    let mut buckets: Vec<Vec<(Point<2>, u64)>> = vec![Vec::new(); SHARDS];
    for i in 0..TOTAL_OPS {
        let p = grid.random_cell(&mut rng);
        buckets[partition.part_of(z.index_of(p))].push((p, i as u64));
    }
    let mut group = c.benchmark_group("concurrent_throughput");
    for writers in [1usize, 2, 4, 8] {
        group.bench_function(format!("writers_{writers}"), |bencher| {
            bencher.iter(|| {
                let store = ShardedSfcStore::with_memtable_capacity(z, SHARDS, 2048);
                store.set_traffic_sampling(64);
                std::thread::scope(|scope| {
                    for w in 0..writers {
                        let store = &store;
                        let buckets = &buckets;
                        scope.spawn(move || {
                            for bucket in buckets.iter().skip(w).step_by(writers) {
                                for &(p, v) in bucket {
                                    store.insert(p, v);
                                }
                            }
                        });
                    }
                });
                black_box(store.len())
            })
        });
    }
    group.finish();
}

/// The memtable swap's gate bench: raw insert+drain cycles through the
/// B+tree memtable vs the old `std::collections::BTreeMap`, under the
/// two key orders that bracket real ingest — a curve-local sweep
/// (ascending keys with small random gaps, the order a router or
/// curve-sorted batch produces; consecutive upserts land in the same
/// leaf, so the last-accessed-leaf hint short-circuits the root descent)
/// and uniform-random keys (every insert descends from the root; the
/// hint never helps). Each iteration replays the same 200k-key stream
/// into a 4096-entry table, draining it in curve order whenever it fills
/// — the store's flush cycle, minus the run build, so the map itself is
/// the only thing timed.
///
/// The `engine_local_writers_{1,4}` variants run the same curve-local
/// order through the full sharded engine (seq protocol, epoch publish,
/// real flushes) with one and four writer threads.
fn bench_memtable_ingest(c: &mut Criterion) {
    let grid = Grid::<2>::new(GRID_K).unwrap();
    let universe = grid.n();
    let mut streams: Vec<(&str, Vec<CurveIndex>)> = Vec::new();
    for (tag, local) in [("local", true), ("random", false)] {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(if local { 7 } else { 8 });
        let mut cur = universe / 2;
        let keys = (0..MEMTABLE_OPS)
            .map(|_| {
                if local {
                    cur = (cur + rng.gen_range(1..32u32) as u128) % universe;
                    cur
                } else {
                    rng.gen_range(0..universe)
                }
            })
            .collect();
        streams.push((tag, keys));
    }

    let mut group = c.benchmark_group("memtable_ingest");
    for (tag, keys) in &streams {
        group.bench_function(format!("bptree_{tag}"), |bencher| {
            bencher.iter(|| {
                let mut tree = BPlusTreeMap::new();
                let mut drained = 0usize;
                for (i, &k) in keys.iter().enumerate() {
                    tree.insert(k, i as u64);
                    if tree.len() >= MEMTABLE_CAP {
                        for entry in std::mem::take(&mut tree) {
                            black_box(entry);
                            drained += 1;
                        }
                    }
                }
                black_box(drained + tree.len())
            })
        });
        group.bench_function(format!("btreemap_{tag}"), |bencher| {
            bencher.iter(|| {
                let mut tree: BTreeMap<CurveIndex, u64> = BTreeMap::new();
                let mut drained = 0usize;
                for (i, &k) in keys.iter().enumerate() {
                    tree.insert(k, i as u64);
                    if tree.len() >= MEMTABLE_CAP {
                        for entry in std::mem::take(&mut tree) {
                            black_box(entry);
                            drained += 1;
                        }
                    }
                }
                black_box(drained + tree.len())
            })
        });
    }

    // Engine-level curve-local ingest: a random live set streamed in
    // curve order (the most hint-friendly upsert order a router can
    // produce), through the concurrent sharded store's `&self` API.
    const PARTS: usize = 4;
    let z = ZCurve::over(grid);
    let partition = sfc_partition::Partition::uniform(grid.n(), PARTS);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    let mut pts: Vec<(Point<2>, u64)> = (0..MEMTABLE_ENGINE_OPS)
        .map(|i| (grid.random_cell(&mut rng), i as u64))
        .collect();
    pts.sort_by_key(|&(p, _)| z.index_of(p));
    let mut buckets: Vec<Vec<(Point<2>, u64)>> = vec![Vec::new(); PARTS];
    for &(p, v) in &pts {
        buckets[partition.part_of(z.index_of(p))].push((p, v));
    }
    for writers in [1usize, 4] {
        group.bench_function(format!("engine_local_writers_{writers}"), |bencher| {
            bencher.iter(|| {
                let store = ShardedSfcStore::with_memtable_capacity(z, PARTS, MEMTABLE_CAP);
                store.set_traffic_sampling(64);
                std::thread::scope(|scope| {
                    for w in 0..writers {
                        let store = &store;
                        let buckets = &buckets;
                        scope.spawn(move || {
                            for bucket in buckets.iter().skip(w).step_by(writers) {
                                for &(p, v) in bucket {
                                    store.insert(p, v);
                                }
                            }
                        });
                    }
                });
                black_box(store.len())
            })
        });
    }
    group.finish();
}

const MEMTABLE_OPS: usize = 200_000;
const MEMTABLE_CAP: usize = 4096;
const MEMTABLE_ENGINE_OPS: usize = 100_000;

const WAL_OPS: usize = 50_000;
const WAL_SHARDS: usize = 4;

/// The committed durability budget: group-committed WAL ingest
/// (`insert_nosync` + one closing `sync()` barrier, `fsync_every` 512)
/// must stay within this factor of the identical in-memory workload on
/// tmpfs. `min_ns`-based like the other gates.
const DURABLE_INGEST_RATIO_GATE: f64 = 2.0;

/// Scratch directory for the WAL benches: `/dev/shm` (tmpfs) when the
/// host has it, so the gates measure the logging machinery — framing,
/// queue handoff, group fsync — rather than disk hardware.
fn wal_bench_dir(tag: &str) -> std::path::PathBuf {
    let shm = std::path::Path::new("/dev/shm");
    let base = if shm.is_dir() {
        shm.to_path_buf()
    } else {
        std::env::temp_dir()
    };
    base.join(format!("sfc-bench-{tag}-{}", std::process::id()))
}

/// Durable vs in-memory ingest: the same 50k-upsert stream through an
/// identical sharded store, once purely in memory and once with every
/// record framed, CRC'd, group-committed, and fsynced (writers ride the
/// queue without waiting; the closing `sync()` barrier makes the whole
/// stream durable before the iteration ends).
fn bench_wal_ingest(c: &mut Criterion) {
    let grid = Grid::<2>::new(GRID_K).unwrap();
    let z = ZCurve::over(grid);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1212);
    let ops: Vec<(Point<2>, u64)> = (0..WAL_OPS)
        .map(|i| (grid.random_cell(&mut rng), i as u64))
        .collect();
    let dir = wal_bench_dir("wal");

    let mut group = c.benchmark_group("wal_ingest");
    group.bench_function("in_memory", |bencher| {
        bencher.iter(|| {
            let store = ShardedSfcStore::with_memtable_capacity(z, WAL_SHARDS, 2048);
            for &(p, v) in &ops {
                store.insert(p, v);
            }
            black_box(store.len())
        })
    });
    group.bench_function("durable_group_commit", |bencher| {
        bencher.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let store = ShardedSfcStore::open_durable(
                z,
                WAL_SHARDS,
                2048,
                WalConfig::new(&dir).fsync_every(512),
            )
            .expect("open durable store");
            for &(p, v) in &ops {
                store.insert_nosync(p, v);
            }
            store.sync().expect("durability barrier");
            black_box(store.len())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The ≤2x durability gate CI runs on every release bench.
fn assert_wal_gate(all_records: &[criterion::BenchRecord]) -> f64 {
    let min = |name: &str| {
        all_records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.min_ns)
            .expect("wal bench recorded")
    };
    let ratio = min("wal_ingest/durable_group_commit") / min("wal_ingest/in_memory");
    assert!(
        ratio <= DURABLE_INGEST_RATIO_GATE,
        "durable ingest is {ratio:.3}x the in-memory baseline — over the \
         {DURABLE_INGEST_RATIO_GATE} budget; the group-commit batching has \
         stopped amortising the log"
    );
    println!("durable ingest overhead: {ratio:.3}x (budget {DURABLE_INGEST_RATIO_GATE})");
    ratio
}

const BATCH_OPS: usize = 50_000;
/// Bulk-ingest sized: big enough that each shard slice coalesces into a
/// couple of near-`MAX_BODY` frames, so the durable comparison measures
/// frame amortisation rather than the shared fsync floor.
const BATCH_SIZE: usize = 4_096;
/// Above `BATCH_OPS / WAL_SHARDS`: no shard flushes mid-benchmark, so
/// the timing isolates the paths batching amortises (routing, memtable
/// locking, WAL framing) instead of drowning them in identical
/// flush-persist work on both sides.
const BATCH_CAP: usize = 16_384;

/// The committed batched-write budget: on the durable store, applying
/// the stream as `BATCH_SIZE`-record batches (one routing pass per
/// batch, one memtable-lock hold per shard slice, coalesced WAL frames
/// with one checksum and one commit-queue ticket each) must beat the
/// identical per-record stream by at least this factor. `min_ns`-based
/// like the other gates.
const BATCH_INGEST_RATIO_GATE: f64 = 1.5;

/// Batched vs per-record ingest, in memory and durable: the same
/// 50k-upsert stream applied one `insert` at a time vs as
/// `BATCH_SIZE`-record `apply_batch` calls. The durable pair is the
/// headline — frame coalescing turns 50k frames/tickets/CRCs into ~50.
fn bench_batch_ingest(c: &mut Criterion) {
    let grid = Grid::<2>::new(GRID_K).unwrap();
    let z = ZCurve::over(grid);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3434);
    let ops: Vec<(Point<2>, u64)> = (0..BATCH_OPS)
        .map(|i| (grid.random_cell(&mut rng), i as u64))
        .collect();
    let batches: Vec<Vec<BatchOp<2, u64>>> = ops
        .chunks(BATCH_SIZE)
        .map(|chunk| chunk.iter().map(|&(p, v)| BatchOp::Insert(p, v)).collect())
        .collect();
    let dir = wal_bench_dir("batch");

    let mut group = c.benchmark_group("batch_ingest");
    group.bench_function("in_memory_per_record", |bencher| {
        bencher.iter(|| {
            let store = ShardedSfcStore::with_memtable_capacity(z, WAL_SHARDS, BATCH_CAP);
            for &(p, v) in &ops {
                store.insert(p, v);
            }
            black_box(store.len())
        })
    });
    group.bench_function("in_memory_batched", |bencher| {
        bencher.iter(|| {
            let store = ShardedSfcStore::with_memtable_capacity(z, WAL_SHARDS, BATCH_CAP);
            for batch in &batches {
                store.apply_batch(batch);
            }
            black_box(store.len())
        })
    });
    group.bench_function("durable_per_record", |bencher| {
        bencher.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let store = ShardedSfcStore::open_durable(
                z,
                WAL_SHARDS,
                BATCH_CAP,
                WalConfig::new(&dir).fsync_every(512),
            )
            .expect("open durable store");
            for &(p, v) in &ops {
                store.insert_nosync(p, v);
            }
            store.sync().expect("durability barrier");
            black_box(store.len())
        })
    });
    group.bench_function("durable_batched", |bencher| {
        bencher.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let store = ShardedSfcStore::open_durable(
                z,
                WAL_SHARDS,
                BATCH_CAP,
                WalConfig::new(&dir).fsync_every(512),
            )
            .expect("open durable store");
            for batch in &batches {
                store.apply_batch_nosync(batch);
            }
            store.sync().expect("durability barrier");
            black_box(store.len())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The batched-ingest ratios: durable (gated ≥ 1.5x) and in-memory
/// (recorded only — without the log the batch API amortises just the
/// routing and lock traffic).
fn assert_batch_gate(all_records: &[criterion::BenchRecord]) -> (f64, f64) {
    let min = |name: &str| {
        all_records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.min_ns)
            .expect("batch bench recorded")
    };
    let durable = min("batch_ingest/durable_per_record") / min("batch_ingest/durable_batched");
    let in_memory =
        min("batch_ingest/in_memory_per_record") / min("batch_ingest/in_memory_batched");
    assert!(
        durable >= BATCH_INGEST_RATIO_GATE,
        "durable batched ingest is only {durable:.3}x the per-record stream — \
         below the {BATCH_INGEST_RATIO_GATE} gate; frame coalescing has \
         stopped amortising the log"
    );
    println!(
        "batched ingest speedup: durable {durable:.3}x (gate {BATCH_INGEST_RATIO_GATE}), \
         in-memory {in_memory:.3}x"
    );
    (durable, in_memory)
}

const RECOVERY_OPS: usize = 200_000;

/// Serial vs parallel WAL recovery replay: a crashed 4-shard store whose
/// whole 200k-record stream lives only in the log (synced, never
/// flushed) is reopened with `recovery_threads(1)` vs the auto fan-out.
/// Recorded, not gated — the ratio is machine-dependent (≈1x on a
/// single-core host, approaching `min(shards, cores)`x otherwise).
fn bench_recovery_replay(c: &mut Criterion) {
    let grid = Grid::<2>::new(GRID_K).unwrap();
    let z = ZCurve::over(grid);
    let dir = wal_bench_dir("recovery");
    let _ = std::fs::remove_dir_all(&dir);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2323);
    {
        let store = ShardedSfcStore::open_durable(
            z,
            WAL_SHARDS,
            RECOVERY_OPS, // capacity above the record count: replay stays WAL-bound
            WalConfig::new(&dir).fsync_every(4096),
        )
        .expect("open durable store");
        for i in 0..RECOVERY_OPS {
            store.insert_nosync(grid.random_cell(&mut rng), i as u64);
        }
        store.sync().expect("durability barrier");
        store.simulate_crash();
    }

    let mut group = c.benchmark_group("recovery_replay");
    for (tag, threads) in [("serial", 1usize), ("parallel", 0usize)] {
        group.bench_function(tag, |bencher| {
            bencher.iter(|| {
                let store: ShardedSfcStore<2, u64, _> = ShardedSfcStore::open_durable(
                    z,
                    WAL_SHARDS,
                    RECOVERY_OPS,
                    WalConfig::new(&dir).recovery_threads(threads),
                )
                .expect("reopen crashed store");
                let replayed = store
                    .recovery_stats()
                    .expect("recovered store has stats")
                    .replayed_records;
                // The fixture must not drift across iterations: every
                // reopen replays the full logged stream and nothing may
                // flush or prune it behind our back.
                assert_eq!(replayed, RECOVERY_OPS, "recovery fixture drifted");
                store.simulate_crash(); // never a clean close: the WAL must survive
                black_box(replayed)
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Serial / parallel recovery `min_ns` ratio for the report (ungated).
fn recovery_replay_ratio(all_records: &[criterion::BenchRecord]) -> f64 {
    let min = |name: &str| {
        all_records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.min_ns)
            .expect("recovery bench recorded")
    };
    let ratio = min("recovery_replay/serial") / min("recovery_replay/parallel");
    println!("parallel recovery speedup: {ratio:.3}x serial (recorded, not gated)");
    ratio
}

/// The committed memtable gate: on the curve-local stream the B+tree
/// must at least match the `BTreeMap` it replaced (`min_ns`-based, the
/// most noise-robust summary at `sample_size(10)`). The random-order
/// ratio is reported but not gated — the hint can't help there, and
/// parity is all the design claims.
const MEMTABLE_LOCAL_RATIO_GATE: f64 = 1.0;

/// The three headline ratios of the memtable swap, for the JSON report.
struct MemtableRatios {
    /// `BTreeMap` / B+tree ingest time, curve-local stream (gated ≥ 1.0).
    local: f64,
    /// `BTreeMap` / B+tree ingest time, uniform-random stream.
    random: f64,
    /// B+tree random / B+tree local — how much the hint path buys.
    local_vs_random: f64,
}

/// The locality gate CI runs on every release bench.
fn assert_memtable_gate(all_records: &[criterion::BenchRecord]) -> MemtableRatios {
    let min = |name: &str| {
        all_records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.min_ns)
            .expect("memtable bench recorded")
    };
    let ratios = MemtableRatios {
        local: min("memtable_ingest/btreemap_local") / min("memtable_ingest/bptree_local"),
        random: min("memtable_ingest/btreemap_random") / min("memtable_ingest/bptree_random"),
        local_vs_random: min("memtable_ingest/bptree_random") / min("memtable_ingest/bptree_local"),
    };
    assert!(
        ratios.local >= MEMTABLE_LOCAL_RATIO_GATE,
        "B+tree memtable is {:.3}x the BTreeMap baseline on the curve-local \
         stream — below the {MEMTABLE_LOCAL_RATIO_GATE} gate; the hint fast \
         path has regressed",
        ratios.local
    );
    println!(
        "memtable ingest: btreemap/bptree local {:.3}x (gate {MEMTABLE_LOCAL_RATIO_GATE}), random {:.3}x, bptree local vs random {:.3}x",
        ratios.local, ratios.random, ratios.local_vs_random
    );
    ratios
}

fn bench_ingest(c: &mut Criterion) {
    let sc = scenario();
    assert_equivalence(&sc);

    let mut group = c.benchmark_group("ingest_100k_into_1m");

    macro_rules! bench_curve {
        ($name:literal, $curve:expr, $query:ident) => {
            let curve = $curve;
            // Rebuild baseline: authority map + full rebuild per round.
            let mut authority = authority_of(&curve, &sc.base);
            group.bench_function(concat!($name, "_rebuild"), |bencher| {
                bencher.iter(|| {
                    let mut total = 0usize;
                    for updates in &sc.rounds {
                        apply_round(&curve, &mut authority, updates);
                        let index = SfcIndex::build(curve, authority.values().copied());
                        for b in &sc.boxes {
                            total += black_box(index.$query(b).0.len());
                        }
                    }
                    total
                })
            });
            // Streaming path: updates land in the memtable, flushes and
            // size-tiered merges amortise the sort.
            let mut store = SfcStore::bulk_load(curve, sc.base.iter().copied());
            group.bench_function(concat!($name, "_store_streaming"), |bencher| {
                bencher.iter(|| {
                    let mut total = 0usize;
                    for updates in &sc.rounds {
                        for &(p, v) in updates {
                            store.insert(p, v);
                        }
                        for b in &sc.boxes {
                            total += black_box(store.$query(b).0.len());
                        }
                    }
                    total
                })
            });
        };
    }

    bench_curve!("z", ZCurve::over(sc.grid), query_box_bigmin);
    bench_curve!("hilbert", HilbertCurve::over(sc.grid), query_box_intervals);
    group.finish();
}

/// The zone-map / planner headline: query latency against a *multi-run*
/// million-record store, pre-change plain scans vs the zone-mapped paths
/// and the adaptive planner. Byte-identical results are asserted for
/// every query before anything is timed, and the per-path [`QueryStats`]
/// are collected for the JSON report.
struct QueryBench {
    records: Vec<criterion::BenchRecord>,
    stats: Vec<(&'static str, QueryStats)>,
    footprint: Footprint,
}

/// The query store's measured memory footprint, for the
/// `bytes_per_record` report section and the CI budget gate.
struct Footprint {
    /// Heap bytes held by the store (compressed runs + memtable estimate).
    heap_bytes: usize,
    /// Heap bytes held by the memtable alone — exact `O(1)` node-slab
    /// accounting from the B+tree backing.
    memtable_heap_bytes: usize,
    /// Total slots stored across runs and memtable (tombstones included).
    slots: usize,
    /// What a naive structure-of-arrays layout would charge per slot
    /// (uncompressed key + point + `Option` payload).
    naive_slot_bytes: usize,
}

impl Footprint {
    fn bytes_per_record(&self) -> f64 {
        self.heap_bytes as f64 / self.slots as f64
    }

    fn compression_ratio(&self) -> f64 {
        self.naive_slot_bytes as f64 / self.bytes_per_record()
    }
}

/// The committed memory budget: the compressed store must stay under this
/// many heap bytes per stored slot at the 1M-record bench scale. The CI
/// bench step fails if the packed format regresses past it (the naive
/// layout costs `naive_slot_bytes` = 40).
const BYTES_PER_RECORD_BUDGET: f64 = 20.0;

const QUERY_BOXES: usize = 24;
const KNN_QUERIES: usize = 24;
const KNN_K: usize = 10;
const KNN_WINDOW: usize = 16;

/// Builds the benchmark store: 1M bulk-loaded records plus 100k streamed
/// updates (1 in 10 a delete), left un-compacted so queries span a big
/// bottom run, several mid-size runs, and a warm memtable.
fn query_store(sc: &Scenario) -> SfcStore<2, u64, ZCurve<2>> {
    let z = ZCurve::over(sc.grid);
    let mut store = SfcStore::bulk_load(z, sc.base.iter().copied());
    for updates in &sc.rounds {
        for (i, &(p, v)) in updates.iter().enumerate() {
            if i % 10 == 9 {
                store.delete(p);
            } else {
                store.insert(p, v);
            }
        }
    }
    store
}

/// Selective query boxes (side 16–40 cells: inside the planner's
/// decomposition cutoff) plus kNN query points.
fn selective_boxes(sc: &Scenario) -> (Vec<BoxRegion<2>>, Vec<Point<2>>) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4242);
    let max = (sc.grid.side() - 1) as u32;
    let boxes = (0..QUERY_BOXES)
        .map(|_| {
            let corner = sc.grid.random_cell(&mut rng);
            let size = rng.gen_range(16..40u32);
            BoxRegion::new(
                corner,
                Point::new([
                    (corner.coord(0) + size).min(max),
                    (corner.coord(1) + size).min(max),
                ]),
            )
        })
        .collect();
    let queries = (0..KNN_QUERIES)
        .map(|_| sc.grid.random_cell(&mut rng))
        .collect();
    (boxes, queries)
}

fn bench_query_paths(c: &mut Criterion, sc: &Scenario) -> QueryBench {
    let store = query_store(sc);
    let (boxes, knn_queries) = selective_boxes(sc);
    println!(
        "query benchmark store: {} live, runs {:?}, memtable {}",
        store.len(),
        store.run_lens(),
        store.memtable_len()
    );

    // Byte-identical results across every path, asserted before timing.
    // Summed per-path counters are recorded by name so paths can be added
    // or reordered without silently misattributing stats in the report.
    let triple = |e: &sfc_store::StoreEntryRef<'_, 2, u64>| (e.key, e.point, *e.payload);
    let mut stats: Vec<(&'static str, QueryStats)> = Vec::new();
    let record =
        |stats: &mut Vec<(&'static str, QueryStats)>, name: &'static str, s: &QueryStats| {
            match stats.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => total.add(s),
                None => {
                    let mut total = QueryStats::default();
                    total.add(s);
                    stats.push((name, total));
                }
            }
        };
    for b in &boxes {
        let (want, s) = store.query_box_intervals_plain(b);
        let want: Vec<_> = want.iter().map(triple).collect();
        record(&mut stats, "box_plain_intervals", &s);
        let (got, s) = store.query_box_bigmin_plain(b);
        assert_eq!(
            want,
            got.iter().map(triple).collect::<Vec<_>>(),
            "plain bigmin {b:?}"
        );
        record(&mut stats, "box_plain_bigmin", &s);
        let (got, s) = store.query_box_intervals(b);
        assert_eq!(
            want,
            got.iter().map(triple).collect::<Vec<_>>(),
            "zone intervals {b:?}"
        );
        record(&mut stats, "box_zone_intervals", &s);
        let (got, s) = store.query_box_bigmin(b);
        assert_eq!(
            want,
            got.iter().map(triple).collect::<Vec<_>>(),
            "zone bigmin {b:?}"
        );
        record(&mut stats, "box_zone_bigmin", &s);
        let (got, s) = store.query_box(b);
        assert_eq!(
            want,
            got.iter().map(triple).collect::<Vec<_>>(),
            "planner {b:?}"
        );
        record(&mut stats, "box_planner", &s);
    }
    for &q in &knn_queries {
        let (want, s) = store.knn_plain(q, KNN_K, KNN_WINDOW);
        let want: Vec<_> = want.iter().map(triple).collect();
        record(&mut stats, "knn_plain", &s);
        let (got, s) = store.knn(q, KNN_K, KNN_WINDOW);
        assert_eq!(
            want,
            got.iter().map(triple).collect::<Vec<_>>(),
            "knn at {q}"
        );
        record(&mut stats, "knn_zone", &s);
    }
    println!("equivalence: all box paths and kNN byte-identical across {QUERY_BOXES} boxes / {KNN_QUERIES} queries");

    // Regression gate for the kNN side-walk fix: the block-summary walk
    // must not scan more slots than the plain fixed-window walk (it
    // prunes blocks the plain walk reads; it never reads more).
    let scanned_of = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s.scanned)
            .expect("path recorded")
    };
    assert!(
        scanned_of("knn_zone") <= scanned_of("knn_plain"),
        "knn_zone scanned {} > knn_plain scanned {} — block-skip walk is over-admitting",
        scanned_of("knn_zone"),
        scanned_of("knn_plain")
    );

    // Memory footprint of the compressed store vs the naive layout.
    let slots: usize = store.run_lens().iter().sum::<usize>() + store.memtable_len();
    let footprint = Footprint {
        heap_bytes: store.heap_bytes(),
        memtable_heap_bytes: store.memtable_heap_bytes(),
        slots,
        naive_slot_bytes: std::mem::size_of::<CurveIndex>()
            + std::mem::size_of::<Point<2>>()
            + std::mem::size_of::<Option<u64>>(),
    };
    println!(
        "footprint: {} slots in {} heap bytes = {:.2} B/record ({:.2}x under the naive {} B/record); memtable holds {} of those bytes for {} entries",
        footprint.slots,
        footprint.heap_bytes,
        footprint.bytes_per_record(),
        footprint.compression_ratio(),
        footprint.naive_slot_bytes,
        footprint.memtable_heap_bytes,
        store.memtable_len()
    );
    assert!(
        footprint.compression_ratio() >= 2.0,
        "compressed blocks must at least halve the naive footprint, got {:.2}x",
        footprint.compression_ratio()
    );
    assert!(
        footprint.bytes_per_record() <= BYTES_PER_RECORD_BUDGET,
        "bytes per record {:.2} exceeds the committed budget {BYTES_PER_RECORD_BUDGET}",
        footprint.bytes_per_record()
    );

    let mut group = c.benchmark_group("box_query_1m_selective");
    group.bench_function("plain_intervals", |bencher| {
        bencher.iter(|| {
            boxes
                .iter()
                .map(|b| black_box(store.query_box_intervals_plain(b).0.len()))
                .sum::<usize>()
        })
    });
    group.bench_function("plain_bigmin", |bencher| {
        bencher.iter(|| {
            boxes
                .iter()
                .map(|b| black_box(store.query_box_bigmin_plain(b).0.len()))
                .sum::<usize>()
        })
    });
    group.bench_function("zone_intervals", |bencher| {
        bencher.iter(|| {
            boxes
                .iter()
                .map(|b| black_box(store.query_box_intervals(b).0.len()))
                .sum::<usize>()
        })
    });
    group.bench_function("zone_bigmin", |bencher| {
        bencher.iter(|| {
            boxes
                .iter()
                .map(|b| black_box(store.query_box_bigmin(b).0.len()))
                .sum::<usize>()
        })
    });
    group.bench_function("planner", |bencher| {
        bencher.iter(|| {
            boxes
                .iter()
                .map(|b| black_box(store.query_box(b).0.len()))
                .sum::<usize>()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("knn_1m");
    group.bench_function("plain", |bencher| {
        bencher.iter(|| {
            knn_queries
                .iter()
                .map(|&q| black_box(store.knn_plain(q, KNN_K, KNN_WINDOW).0.len()))
                .sum::<usize>()
        })
    });
    group.bench_function("zone", |bencher| {
        bencher.iter(|| {
            knn_queries
                .iter()
                .map(|&q| black_box(store.knn(q, KNN_K, KNN_WINDOW).0.len()))
                .sum::<usize>()
        })
    });
    group.finish();

    // Decode-kernel scan throughput: a full k-way iteration touches every
    // block of every run through the unpack kernels. Throughput is
    // reported in *logical* bytes — the uncompressed key + point +
    // payload each visited slot represents — so the number is comparable
    // across format changes.
    let logical_slot_bytes = (std::mem::size_of::<CurveIndex>()
        + std::mem::size_of::<Point<2>>()
        + std::mem::size_of::<u64>()) as u64;
    let mut group = c.benchmark_group("scan_throughput_1m");
    group.throughput(criterion::Throughput::Bytes(
        slots as u64 * logical_slot_bytes,
    ));
    group.bench_function("full_iter", |bencher| {
        bencher.iter(|| black_box(store.iter().count()))
    });
    group.finish();

    QueryBench {
        records: criterion::take_records(),
        stats,
        footprint,
    }
}

/// The committed instrumentation budget: attaching an [`EngineMetrics`]
/// to a store must not slow ingest by more than this factor. The gate
/// compares `min_ns` (the most noise-robust summary at `sample_size(10)`)
/// of the instrumented and uninstrumented runs of an identical workload.
const INSTRUMENTATION_OVERHEAD_BUDGET: f64 = 1.05;

const OVERHEAD_OPS: usize = 50_000;

/// Ingest-overhead A/B: the same fresh-store workload (50k upserts
/// through memtable flushes and compactions) with and without metrics
/// attached. Returns the instrumented run's [`EngineMetrics`] so the
/// report can embed a real registry snapshot; counters accumulate across
/// criterion iterations, which is exactly the multi-run stress the JSON
/// dump should show.
fn bench_metrics_overhead(c: &mut Criterion, sc: &Scenario) -> Arc<EngineMetrics> {
    let z = ZCurve::over(sc.grid);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let ops: Vec<(Point<2>, u64)> = (0..OVERHEAD_OPS)
        .map(|i| (sc.grid.random_cell(&mut rng), i as u64))
        .collect();
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = EngineMetrics::for_store(registry);

    let mut group = c.benchmark_group("metrics_overhead");
    group.bench_function("ingest_uninstrumented", |bencher| {
        bencher.iter(|| {
            let mut store = SfcStore::with_memtable_capacity(z, 4096);
            for &(p, v) in &ops {
                store.insert(p, v);
            }
            black_box(store.len())
        })
    });
    group.bench_function("ingest_instrumented", |bencher| {
        bencher.iter(|| {
            let mut store = SfcStore::with_memtable_capacity(z, 4096);
            store.attach_metrics(metrics.clone());
            for &(p, v) in &ops {
                store.insert(p, v);
            }
            black_box(store.len())
        })
    });
    group.finish();

    // Run the query paths once through an instrumented store so the
    // registry snapshot in the report carries real query metrics (and a
    // slow-query trace or two) alongside the ingest counters.
    let mut store = SfcStore::bulk_load(z, ops.iter().copied());
    store.attach_metrics(metrics.clone());
    metrics.set_slow_query_threshold(std::time::Duration::from_micros(100));
    let (boxes, knn_queries) = selective_boxes(sc);
    for b in &boxes {
        black_box(store.query_box(b).0.len());
    }
    for &q in &knn_queries {
        black_box(store.knn(q, KNN_K, KNN_WINDOW).0.len());
    }
    metrics
}

/// The ≤5% instrumentation gate CI runs on every release bench.
fn assert_overhead_gate(all_records: &[criterion::BenchRecord]) -> f64 {
    let min = |name: &str| {
        all_records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.min_ns)
            .expect("overhead bench recorded")
    };
    let ratio =
        min("metrics_overhead/ingest_instrumented") / min("metrics_overhead/ingest_uninstrumented");
    assert!(
        ratio <= INSTRUMENTATION_OVERHEAD_BUDGET,
        "instrumented ingest is {ratio:.3}x the uninstrumented baseline — \
         over the {INSTRUMENTATION_OVERHEAD_BUDGET} budget; a metrics-path \
         change has leaked onto the hot path"
    );
    println!("instrumentation overhead: {ratio:.3}x (budget {INSTRUMENTATION_OVERHEAD_BUDGET})");
    ratio
}

criterion_group! {
    name = ingest_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ingest, bench_sharded_ingest, bench_concurrent_throughput, bench_memtable_ingest, bench_wal_ingest, bench_batch_ingest, bench_recovery_replay
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn stats_json(s: &QueryStats) -> String {
    format!(
        "{{\"seeks\": {}, \"scanned\": {}, \"reported\": {}, \"blocks_scanned\": {}, \"blocks_pruned\": {}, \"blocks_decoded\": {}, \"overscan\": {:.4}}}",
        s.seeks, s.scanned, s.reported, s.blocks_scanned, s.blocks_pruned, s.blocks_decoded, s.overscan()
    )
}

/// Writes `BENCH_store.json` at the workspace root: every benchmark's
/// median/min/max **and p50/p95/p99** nanoseconds, the summed per-path
/// `QueryStats` counters, a metrics-registry snapshot from the
/// instrumented run, the instrumentation-overhead ratio, and the headline
/// plain-vs-zone speedups. CI uploads the file so the perf trajectory is
/// tracked per commit.
/// The durable-pipeline ratios `main` threads into the report: WAL
/// overhead, batched-vs-per-record ingest (durable + in-memory), and
/// the parallel-recovery speedup.
struct PipelineRatios {
    wal: f64,
    batch_durable: f64,
    batch_in_memory: f64,
    recovery: f64,
}

fn write_report(
    all_records: &[criterion::BenchRecord],
    qb: &QueryBench,
    metrics: &EngineMetrics,
    overhead_ratio: f64,
    memtable: &MemtableRatios,
    pipeline: &PipelineRatios,
) {
    let median = |name: &str| {
        all_records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
    };
    let speedup = |plain: &str, new: &str| -> Option<f64> { Some(median(plain)? / median(new)?) };
    let mut out = String::from("{\n  \"schema\": 1,\n  \"bench\": \"store\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"base_records\": {BASE}, \"updates\": {}, \"grid_k\": {GRID_K}, \"query_boxes\": {QUERY_BOXES}, \"knn_queries\": {KNN_QUERIES}, \"knn_k\": {KNN_K}}},\n",
        ROUNDS * UPDATES_PER_ROUND
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in all_records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"p50_ns\": {:.1}, \"p95_ns\": {:.1}, \"p99_ns\": {:.1}}}{}\n",
            json_escape(&r.name),
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            if i + 1 == all_records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"query_stats\": {\n");
    for (i, (name, s)) in qb.stats.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            name,
            stats_json(s),
            if i + 1 == qb.stats.len() { "" } else { "," }
        ));
    }
    out.push_str("  },\n");
    let fp = &qb.footprint;
    out.push_str(&format!(
        "  \"bytes_per_record\": {{\"heap_bytes\": {}, \"memtable_heap_bytes\": {}, \"slots\": {}, \"compressed\": {:.3}, \"uncompressed\": {}, \"compression_ratio\": {:.3}, \"budget\": {BYTES_PER_RECORD_BUDGET}}},\n",
        fp.heap_bytes,
        fp.memtable_heap_bytes,
        fp.slots,
        fp.bytes_per_record(),
        fp.naive_slot_bytes,
        fp.compression_ratio()
    ));
    // Registry snapshot from the instrumented overhead run: op counters,
    // latency percentiles, gauges — plus the engine-level overscan the
    // accumulated scanned/reported counters imply.
    let snap = metrics.registry().snapshot();
    let engine_overscan = QueryStats::overscan_ratio(
        snap.counter("engine.query.scanned").unwrap_or(0),
        snap.counter("engine.query.reported").unwrap_or(0),
    );
    out.push_str(&format!(
        "  \"instrumentation\": {{\"overhead_ratio\": {overhead_ratio:.4}, \"budget\": {INSTRUMENTATION_OVERHEAD_BUDGET}, \"engine_overscan\": {engine_overscan:.4}, \"slow_queries\": {}}},\n",
        metrics.slow_queries_admitted()
    ));
    let registry_json = snap.to_json();
    out.push_str("  \"metrics\": ");
    out.push_str(registry_json.trim_end());
    out.push_str(",\n");
    out.push_str("  \"scan_throughput_gbps\": {\n");
    let thrpt: Vec<&criterion::BenchRecord> = all_records
        .iter()
        .filter(|r| r.gb_per_sec().is_some())
        .collect();
    for (i, r) in thrpt.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {:.4}{}\n",
            json_escape(&r.name),
            r.gb_per_sec().expect("filtered on Some"),
            if i + 1 == thrpt.len() { "" } else { "," }
        ));
    }
    out.push_str("  },\n  \"speedups\": {\n");
    let pairs = [
        (
            "selective_box_planner_vs_plain_intervals",
            speedup(
                "box_query_1m_selective/plain_intervals",
                "box_query_1m_selective/planner",
            ),
        ),
        (
            "selective_box_planner_vs_plain_bigmin",
            speedup(
                "box_query_1m_selective/plain_bigmin",
                "box_query_1m_selective/planner",
            ),
        ),
        (
            "selective_box_zone_intervals_vs_plain",
            speedup(
                "box_query_1m_selective/plain_intervals",
                "box_query_1m_selective/zone_intervals",
            ),
        ),
        (
            "selective_box_zone_bigmin_vs_plain",
            speedup(
                "box_query_1m_selective/plain_bigmin",
                "box_query_1m_selective/zone_bigmin",
            ),
        ),
        ("knn_zone_vs_plain", speedup("knn_1m/plain", "knn_1m/zone")),
        (
            "multi_writer_scaling_2_vs_1",
            speedup(
                "concurrent_throughput/writers_1",
                "concurrent_throughput/writers_2",
            ),
        ),
        (
            "multi_writer_scaling_4_vs_1",
            speedup(
                "concurrent_throughput/writers_1",
                "concurrent_throughput/writers_4",
            ),
        ),
        (
            "multi_writer_scaling_8_vs_1",
            speedup(
                "concurrent_throughput/writers_1",
                "concurrent_throughput/writers_8",
            ),
        ),
        // Memtable-swap ratios are min_ns-based (see the gate) so the
        // recorded value is the gated value.
        ("btree_vs_bptree_local_ratio", Some(memtable.local)),
        ("btree_vs_bptree_random_ratio", Some(memtable.random)),
        (
            "bptree_local_vs_random_ratio",
            Some(memtable.local_vs_random),
        ),
        (
            "memtable_engine_local_4_vs_1_writers",
            speedup(
                "memtable_ingest/engine_local_writers_1",
                "memtable_ingest/engine_local_writers_4",
            ),
        ),
        // min_ns-based, same as the ≤2x CI gate.
        ("durable_vs_in_memory_ingest_ratio", Some(pipeline.wal)),
        // min_ns-based, same as the ≥1.5x CI gate.
        ("batch_vs_record_ingest_ratio", Some(pipeline.batch_durable)),
        (
            "batch_vs_record_in_memory_ratio",
            Some(pipeline.batch_in_memory),
        ),
        // min_ns-based, recorded but not gated (machine-dependent).
        ("recovery_parallel_vs_serial", Some(pipeline.recovery)),
    ];
    for (i, (name, ratio)) in pairs.iter().enumerate() {
        match ratio {
            Some(r) => out.push_str(&format!("    \"{name}\": {r:.3}")),
            None => out.push_str(&format!("    \"{name}\": null")),
        }
        out.push_str(if i + 1 == pairs.len() { "\n" } else { ",\n" });
    }
    out.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    let mut file = std::fs::File::create(path).expect("create BENCH_store.json");
    file.write_all(out.as_bytes())
        .expect("write BENCH_store.json");
    println!("wrote {path}");
    for (name, ratio) in pairs {
        if let Some(r) = ratio {
            println!("speedup {name}: {r:.2}x");
        }
    }
}

fn main() {
    let mut criterion = Criterion::default().sample_size(10);
    let sc = scenario();
    let qb = bench_query_paths(&mut criterion, &sc);
    let metrics = bench_metrics_overhead(&mut criterion, &sc);
    ingest_benches();
    let mut all_records = qb.records.clone();
    all_records.extend(criterion::take_records());
    let overhead_ratio = assert_overhead_gate(&all_records);
    let memtable = assert_memtable_gate(&all_records);
    let wal = assert_wal_gate(&all_records);
    let (batch_durable, batch_in_memory) = assert_batch_gate(&all_records);
    let recovery = recovery_replay_ratio(&all_records);
    let pipeline = PipelineRatios {
        wal,
        batch_durable,
        batch_in_memory,
        recovery,
    };
    write_report(
        &all_records,
        &qb,
        &metrics,
        overhead_ratio,
        &memtable,
        &pipeline,
    );
}
