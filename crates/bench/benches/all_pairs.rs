//! Exact all-pairs stretch (`O(n²)`) and Monte-Carlo estimation costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use sfc_core::ZCurve;
use sfc_metrics::all_pairs::{all_pairs_exact, all_pairs_exact_par};
use sfc_metrics::sampling::estimate_all_pairs_manhattan;
use std::hint::black_box;

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_pairs_exact_z_d2");
    for k in [3u32, 4, 5] {
        let z = ZCurve::<2>::new(k).unwrap();
        group.bench_with_input(BenchmarkId::new("seq", format!("k{k}")), &z, |b, z| {
            b.iter(|| black_box(all_pairs_exact(z)))
        });
        group.bench_with_input(BenchmarkId::new("par", format!("k{k}")), &z, |b, z| {
            b.iter(|| black_box(all_pairs_exact_par(z)))
        });
    }
    group.finish();
}

fn bench_sampled(c: &mut Criterion) {
    // Sampling cost is independent of n: demonstrate on a 2^40-cell grid.
    let z = ZCurve::<2>::new(20).unwrap();
    c.bench_function("all_pairs_sampled_10k_n2pow40", |b| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        b.iter(|| black_box(estimate_all_pairs_manhattan(&z, 10_000, &mut rng)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_exact, bench_sampled
}
criterion_main!(benches);
