//! Batch-encoding and bulk-load throughput: the PR's acceptance numbers.
//!
//! * `encode_*`: points/sec for the scalar `index_of` loop vs. the
//!   LUT-dilation scalar path (Z only) vs. `index_of_batch`, for the 2-D /
//!   3-D Hilbert and Z curves at k ∈ {10, 16, 21}.
//! * `index_build_1m`: `SfcIndex` bulk load (batch encode + radix sort)
//!   vs. the seed's array-of-structs `sort_by_key` build, on 1M uniform
//!   random points.
//!
//! Each benchmark iteration processes [`N_POINTS`] points (or builds one
//! 1M-record index), so points/sec = N / (reported time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use sfc_core::{CurveIndex, Grid, HilbertCurve, Point, SpaceFillingCurve, ZCurve};
use sfc_index::SfcIndex;
use std::hint::black_box;

const N_POINTS: usize = 8192;

fn points_for<const D: usize>(grid: Grid<D>, seed: u64) -> Vec<Point<D>> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..N_POINTS).map(|_| grid.random_cell(&mut rng)).collect()
}

fn bench_encode_2d(c: &mut Criterion) {
    for k in [10u32, 16, 21] {
        let grid = Grid::<2>::new(k).unwrap();
        let points = points_for(grid, u64::from(k));
        let z = ZCurve::over(grid);
        let h = HilbertCurve::over(grid);
        let mut group = c.benchmark_group(format!("encode_d2_k{k}"));
        group.bench_with_input(BenchmarkId::new("z", "scalar"), &z, |b, z| {
            b.iter(|| {
                let mut acc = 0u128;
                for p in &points {
                    acc ^= z.index_of(black_box(*p));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("z", "lut_scalar"), &z, |b, z| {
            b.iter(|| {
                let mut acc = 0u128;
                for p in &points {
                    acc ^= z.encode_lut(black_box(*p));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("z", "batch"), &z, |b, z| {
            let mut out = Vec::with_capacity(N_POINTS);
            b.iter(|| {
                z.index_of_batch(black_box(&points), &mut out);
                out.last().copied()
            })
        });
        group.bench_with_input(BenchmarkId::new("hilbert", "scalar"), &h, |b, h| {
            b.iter(|| {
                let mut acc = 0u128;
                for p in &points {
                    acc ^= h.index_of(black_box(*p));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("hilbert", "batch"), &h, |b, h| {
            let mut out = Vec::with_capacity(N_POINTS);
            b.iter(|| {
                h.index_of_batch(black_box(&points), &mut out);
                out.last().copied()
            })
        });
        group.finish();
    }
}

fn bench_encode_3d(c: &mut Criterion) {
    for k in [10u32, 16, 21] {
        let grid = Grid::<3>::new(k).unwrap();
        let points = points_for(grid, 100 + u64::from(k));
        let z = ZCurve::over(grid);
        let h = HilbertCurve::over(grid);
        let mut group = c.benchmark_group(format!("encode_d3_k{k}"));
        group.bench_with_input(BenchmarkId::new("z", "scalar"), &z, |b, z| {
            b.iter(|| {
                let mut acc = 0u128;
                for p in &points {
                    acc ^= z.index_of(black_box(*p));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("z", "batch"), &z, |b, z| {
            let mut out = Vec::with_capacity(N_POINTS);
            b.iter(|| {
                z.index_of_batch(black_box(&points), &mut out);
                out.last().copied()
            })
        });
        group.bench_with_input(BenchmarkId::new("hilbert", "scalar"), &h, |b, h| {
            b.iter(|| {
                let mut acc = 0u128;
                for p in &points {
                    acc ^= h.index_of(black_box(*p));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("hilbert", "batch"), &h, |b, h| {
            let mut out = Vec::with_capacity(N_POINTS);
            b.iter(|| {
                h.index_of_batch(black_box(&points), &mut out);
                out.last().copied()
            })
        });
        group.finish();
    }
}

fn bench_decode_batch(c: &mut Criterion) {
    let k = 16u32;
    let grid = Grid::<2>::new(k).unwrap();
    let points = points_for(grid, 7);
    let h = HilbertCurve::over(grid);
    let mut keys = Vec::new();
    h.index_of_batch(&points, &mut keys);
    let mut group = c.benchmark_group("decode_d2_k16");
    group.bench_function("hilbert_scalar", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &i in &keys {
                acc ^= h.point_of(black_box(i)).coord(0);
            }
            acc
        })
    });
    group.bench_function("hilbert_batch", |b| {
        let mut out = Vec::with_capacity(N_POINTS);
        b.iter(|| {
            h.point_of_batch(black_box(&keys), &mut out);
            out.last().copied()
        })
    });
    group.finish();
}

/// The seed's build strategy, kept as the baseline: array-of-structs with
/// scalar encoding and a stable comparison sort.
fn aos_comparison_build<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    records: &[(Point<D>, u64)],
) -> Vec<(CurveIndex, Point<D>, u64)> {
    let mut entries: Vec<(CurveIndex, Point<D>, u64)> = records
        .iter()
        .map(|&(p, payload)| (curve.index_of(p), p, payload))
        .collect();
    entries.sort_by_key(|e| e.0);
    entries
}

fn bench_index_build(c: &mut Criterion) {
    let k = 16u32;
    let grid = Grid::<2>::new(k).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let records: Vec<(Point<2>, u64)> = (0..1_000_000)
        .map(|i| (grid.random_cell(&mut rng), i))
        .collect();
    let z = ZCurve::over(grid);
    let h = HilbertCurve::over(grid);
    let mut group = c.benchmark_group("index_build_1m_d2_k16");
    group.sample_size(10);
    group.bench_function("z_aos_sort_by_key", |b| {
        b.iter(|| black_box(aos_comparison_build(&z, &records)).len())
    });
    group.bench_function("z_soa_radix_bulk_load", |b| {
        b.iter(|| black_box(SfcIndex::build(z, records.iter().copied())).len())
    });
    group.bench_function("hilbert_aos_sort_by_key", |b| {
        b.iter(|| black_box(aos_comparison_build(&h, &records)).len())
    });
    group.bench_function("hilbert_soa_radix_bulk_load", |b| {
        b.iter(|| black_box(SfcIndex::build(h, records.iter().copied())).len())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encode_2d, bench_encode_3d, bench_decode_batch, bench_index_build
}
criterion_main!(benches);
