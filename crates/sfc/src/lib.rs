//! # sfc — space filling curves and their proximity-preservation limits
//!
//! A faithful, production-grade implementation of
//! *Pan Xu & Srikanta Tirthapura, "A Lower Bound on Proximity Preservation
//! by Space Filling Curves", IEEE IPDPS 2012* — the curves, the stretch
//! metrics, the lower/upper bounds, and the application substrates the
//! paper motivates.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `sfc-core` | grids, points, Z/simple/snake/Gray/Hilbert curves, permutation curves |
//! | [`metrics`] | `sfc-metrics` | `D^avg`, `D^max`, all-pairs stretch, `Λ_i`, bounds, optimal-curve search |
//! | [`partition`] | `sfc-partition` | weighted SFC domain decomposition and quality metrics |
//! | [`index`] | `sfc-index` | sorted-key spatial index, BIGMIN range queries, verified kNN |
//! | [`store`] | `sfc-store` | mutable LSM-style spatial store over SFC-sorted runs |
//! | [`nbody`] | `sfc-nbody` | Morton-tree Barnes–Hut, leapfrog, SFC work decomposition |
//! | [`obs`] | `sfc-obs` | lock-free metrics registry, latency histograms, slow-query log |
//!
//! ## Quickstart
//!
//! ```
//! use sfc::prelude::*;
//!
//! // The 2-D Z curve on a 256×256 grid.
//! let z = ZCurve::<2>::new(8).unwrap();
//!
//! // Exact average nearest-neighbor stretch (Definition 2 of the paper) …
//! let summary = sfc::metrics::nn_stretch::summarize(&z);
//!
//! // … versus the paper's universal lower bound (Theorem 1):
//! let bound = sfc::metrics::bounds::thm1_nn_stretch_lower_bound(8, 2);
//! assert!(summary.d_avg() >= bound);
//!
//! // The Z curve is within 1.5× of optimal (Theorems 1+2); at finite n the
//! // ratio approaches 1.5 from above:
//! assert!(summary.d_avg() / bound < 1.51);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use sfc_core as core;
pub use sfc_index as index;
pub use sfc_metrics as metrics;
pub use sfc_nbody as nbody;
pub use sfc_obs as obs;
pub use sfc_partition as partition;
pub use sfc_store as store;

/// The most commonly used types, one `use` away.
pub mod prelude {
    pub use sfc_core::{
        CurveIndex, CurveKind, DiagonalCurve, GrayCurve, Grid, HilbertCurve, PermutationCurve,
        Point, SimpleCurve, SnakeCurve, SpaceFillingCurve, SpiralCurve, ZCurve,
    };
    pub use sfc_index::{BlockStore, BoxRegion, QueryStats, SfcIndex};
    pub use sfc_metrics::nn_stretch::NnStretchSummary;
    pub use sfc_partition::{ConcurrentTraffic, Partition, TrafficWeights, WeightedGrid, Workload};
    pub use sfc_store::{
        LevelStrategy, QueryPlan, SfcStore, ShardedSfcStore, ShardedSnapshot, StoreEntry,
        StoreSnapshot,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let z = ZCurve::<2>::new(3).unwrap();
        let s = crate::metrics::nn_stretch::summarize(&z);
        assert_eq!(s.n, 64);
        let grid = Grid::<2>::new(3).unwrap();
        let idx = SfcIndex::build(ZCurve::over(grid), vec![(Point::new([1, 1]), ())]);
        assert_eq!(idx.len(), 1);
    }
}
