//! Log₂-bucket distribution analysis of the stretch.
//!
//! The paper's averages hide *shape*: for the Z curve the per-edge curve
//! distance `Δ_Z` is a power-law-like mixture (`Δ ≈ 2^{jd−i}` with
//! probability `2^{−j}`, Lemma 5), while the simple curve's distances are
//! concentrated on `d` spikes (`side^{i−1}`). These histograms make that
//! concrete, explain the naive-sampling failure documented in
//! [`crate::sampling`], and quantify tail mass for application modelling.

use sfc_core::{CurveIndex, SpaceFillingCurve};

/// A histogram over log₂ buckets: bucket `b` counts values `v` with
/// `⌊log₂ v⌋ = b` (bucket 0 holds `v = 1`; zeros are counted separately).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Log2Histogram {
    /// `buckets[b]` = number of values in `[2^b, 2^{b+1})`.
    pub buckets: Vec<u64>,
    /// Number of zero values observed.
    pub zeros: u64,
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observations.
    pub sum: u128,
    /// Largest observation.
    pub max: u128,
}

impl Log2Histogram {
    /// Adds one observation.
    pub fn push(&mut self, v: CurveIndex) {
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        if v == 0 {
            self.zeros += 1;
            return;
        }
        let b = (127 - v.leading_zeros()) as usize;
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
    }

    /// Mean of the observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fraction of the *sum* carried by values `≥ 2^b` — the "tail mass".
    /// For heavy-tailed curves this stays near 1 even for large `b`.
    pub fn tail_mass(&self, b: usize) -> f64 {
        if self.sum == 0 {
            return 0.0;
        }
        // Recompute per-bucket sums approximately from counts is lossy;
        // instead callers who need exactness should build two histograms.
        // Here we bound the tail: bucket i contributes between
        // count·2^i and count·2^{i+1}. We return the midpoint estimate.
        let mut tail = 0.0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if i >= b {
                tail += c as f64 * 1.5 * (1u128 << i) as f64;
            }
        }
        (tail / self.sum as f64).min(1.0)
    }

    /// The median bucket (bucket containing the median observation), or
    /// `None` if empty.
    pub fn median_bucket(&self) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let mut seen = self.zeros;
        let half = self.count.div_ceil(2);
        if seen >= half {
            return Some(0);
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= half {
                return Some(i);
            }
        }
        None
    }
}

/// Histogram of `Δπ` over **all nearest-neighbor edges** of the grid.
pub fn edge_distance_histogram<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
) -> Log2Histogram {
    let mut h = Log2Histogram::default();
    for (a, b, _) in curve.grid().nn_edges() {
        h.push(curve.curve_distance(a, b));
    }
    h
}

/// Histogram of `δ^max_π(α)` over all cells.
pub fn delta_max_histogram<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> Log2Histogram {
    let mut h = Log2Histogram::default();
    for cell in curve.grid().cells() {
        h.push(crate::nn_stretch::delta_max(curve, cell));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{SimpleCurve, ZCurve};

    #[test]
    fn histogram_accounting() {
        let mut h = Log2Histogram::default();
        for v in [0u128, 1, 1, 2, 3, 4, 1024] {
            h.push(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.zeros, 1);
        assert_eq!(h.sum, 1035);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 2); // the two 1s
        assert_eq!(h.buckets[1], 2); // 2 and 3
        assert_eq!(h.buckets[2], 1); // 4
        assert_eq!(h.buckets[10], 1); // 1024
        assert!((h.mean() - 1035.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn median_bucket_positions() {
        let mut h = Log2Histogram::default();
        for v in [1u128, 1, 1, 8, 8] {
            h.push(v);
        }
        assert_eq!(h.median_bucket(), Some(0));
        let empty = Log2Histogram::default();
        assert_eq!(empty.median_bucket(), None);
    }

    #[test]
    fn z_edges_are_heavy_tailed_simple_edges_are_spikes() {
        let z = ZCurve::<2>::new(6).unwrap();
        let s = SimpleCurve::<2>::new(6).unwrap();
        let hz = edge_distance_histogram(&z);
        let hs = edge_distance_histogram(&s);
        // The simple curve's edge distances are exactly {1, side}: two
        // occupied buckets.
        let occupied = hs.buckets.iter().filter(|&&c| c > 0).count();
        assert_eq!(occupied, 2);
        // The Z curve occupies a bucket for every class: 2k buckets.
        let occupied_z = hz.buckets.iter().filter(|&&c| c > 0).count();
        assert!(occupied_z >= 10, "{occupied_z}");
        // Identical totals (same edge set) and equal sums? Not equal sums —
        // but Lemma 3 says the sums govern D^avg; here they are close:
        assert_eq!(hz.count, hs.count);
        // Median Z edge is short (bucket ≤ 2) even though the mean is huge:
        // the textbook heavy-tail signature.
        assert!(hz.median_bucket().unwrap() <= 2);
        assert!(hz.mean() > 16.0);
    }

    #[test]
    fn z_tail_mass_dominates_the_sum() {
        let z = ZCurve::<2>::new(8).unwrap();
        let h = edge_distance_histogram(&z);
        // More than half the total edge-distance mass sits in values
        // ≥ 2^6, carried by a small minority of edges (classes j ≥ 4 have
        // total frequency ~2^{−3}).
        let tail = h.tail_mass(6);
        assert!(tail > 0.5, "tail mass {tail}");
        let big_edges: u64 = h.buckets.iter().skip(6).sum();
        assert!(
            (big_edges as f64) < 0.15 * h.count as f64,
            "{big_edges} of {}",
            h.count
        );
    }

    #[test]
    fn delta_max_histogram_matches_summary_sum() {
        let z = ZCurve::<2>::new(4).unwrap();
        let h = delta_max_histogram(&z);
        let s = crate::nn_stretch::summarize(&z);
        assert_eq!(h.sum, s.dmax_sum);
        assert_eq!(h.count as u128, s.n);
        assert_eq!(h.max, s.max_delta);
    }
}
