//! Nearest-neighbor stretch metrics (paper, Definitions 1–4).
//!
//! * `δ^avg_π(α)` — average curve distance from `α` to its grid neighbors
//!   ([`delta_avg`]).
//! * `δ^max_π(α)` — maximum curve distance to a neighbor ([`delta_max`]).
//! * `D^avg(π)` — average-average NN-stretch: the mean of `δ^avg` over all
//!   cells.
//! * `D^max(π)` — average-maximum NN-stretch: the mean of `δ^max`.
//!
//! [`summarize`] / [`summarize_par`] compute all of these **exactly** in one
//! pass: the rational sum `Σ_α δ^avg_π(α)` is accumulated as the integer
//! `Σ_α (L/|N(α)|)·Σ_β Δπ(α,β)` with `L = lcm(d,…,2d)`, so the result is a
//! ratio of two `u128`s. Sequential and parallel drivers agree bit-for-bit
//! (integer addition is associative), which the tests assert.

use rayon::prelude::*;
use sfc_core::{CurveIndex, Point, SpaceFillingCurve};

/// Greatest common divisor (Euclid).
fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple of `d, d+1, …, 2d` — every possible `|N(α)|`
/// divides this, so `L/|N(α)|` is an integer.
pub(crate) fn neighbor_count_lcm(d: usize) -> u128 {
    let mut l = 1u128;
    for m in d..=2 * d {
        let m = m as u128;
        l = l / gcd(l, m) * m;
    }
    l
}

/// The paper's `δ^avg_π(α)`: the average curve distance from `α` to its
/// nearest neighbors `N(α)`.
pub fn delta_avg<const D: usize, C: SpaceFillingCurve<D>>(curve: &C, cell: Point<D>) -> f64 {
    let (sum, count) = delta_sum(curve, cell);
    sum as f64 / count as f64
}

/// The exact numerator/denominator of `δ^avg_π(α)`:
/// `(Σ_{β∈N(α)} Δπ(α,β), |N(α)|)`.
pub fn delta_sum<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    cell: Point<D>,
) -> (u128, usize) {
    let grid = curve.grid();
    let idx = curve.index_of(cell);
    let mut sum = 0u128;
    let mut count = 0usize;
    for nb in grid.neighbors(cell) {
        sum += idx.abs_diff(curve.index_of(nb));
        count += 1;
    }
    (sum, count)
}

/// The paper's `δ^max_π(α)`: the maximum curve distance from `α` to a
/// nearest neighbor.
pub fn delta_max<const D: usize, C: SpaceFillingCurve<D>>(curve: &C, cell: Point<D>) -> CurveIndex {
    let grid = curve.grid();
    let idx = curve.index_of(cell);
    grid.neighbors(cell)
        .map(|nb| idx.abs_diff(curve.index_of(nb)))
        .max()
        .unwrap_or(0)
}

/// Exact one-pass summary of all NN-stretch metrics of a curve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NnStretchSummary {
    /// Curve name (for reports).
    pub curve: String,
    /// Dimension `d`.
    pub d: usize,
    /// Bits per coordinate `k`.
    pub k: u32,
    /// Number of cells `n = 2^{kd}`.
    pub n: u128,
    /// Exact numerator of `D^avg`: `Σ_α (L/|N(α)|)·Σ_β Δπ(α,β)`.
    pub davg_numerator: u128,
    /// Exact denominator of `D^avg`: `L · n`.
    pub davg_denominator: u128,
    /// `Σ_α δ^max_π(α)` (so `D^max = dmax_sum / n`).
    pub dmax_sum: u128,
    /// `Σ_{(α,β) ∈ NN_d} Δπ(α,β)` — the Lemma 3 / Lemma 5 edge sum.
    pub edge_sum: u128,
    /// `max_α δ^max_π(α)`: the worst single neighbor separation.
    pub max_delta: CurveIndex,
}

impl NnStretchSummary {
    /// `D^avg(π)` as a float (the underlying value is exact).
    pub fn d_avg(&self) -> f64 {
        self.davg_numerator as f64 / self.davg_denominator as f64
    }

    /// `D^max(π)` as a float (the underlying value is exact).
    pub fn d_max(&self) -> f64 {
        self.dmax_sum as f64 / self.n as f64
    }

    /// `true` iff `D^avg` equals `num/den` exactly (cross-multiplication,
    /// no floating point). Used to assert the paper's hand-worked values.
    pub fn d_avg_equals_ratio(&self, num: u128, den: u128) -> bool {
        // davg_numerator / davg_denominator == num / den
        self.davg_numerator * den == num * self.davg_denominator
    }

    /// `true` iff `D^max` equals `num/den` exactly.
    pub fn d_max_equals_ratio(&self, num: u128, den: u128) -> bool {
        self.dmax_sum * den == num * self.n
    }

    /// Ratio of the measured `D^avg` to a reference value (a bound or an
    /// asymptote).
    pub fn ratio_to(&self, reference: f64) -> f64 {
        self.d_avg() / reference
    }
}

/// Per-cell contribution, accumulated exactly.
#[derive(Debug, Clone, Copy, Default)]
struct Accum {
    davg_scaled: u128,
    dmax_sum: u128,
    double_edge_sum: u128,
    max_delta: u128,
}

impl Accum {
    fn merge(self, other: Self) -> Self {
        Accum {
            davg_scaled: self.davg_scaled + other.davg_scaled,
            dmax_sum: self.dmax_sum + other.dmax_sum,
            double_edge_sum: self.double_edge_sum + other.double_edge_sum,
            max_delta: self.max_delta.max(other.max_delta),
        }
    }
}

fn cell_accum<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    lcm: u128,
    cell: Point<D>,
) -> Accum {
    let grid = curve.grid();
    let idx = curve.index_of(cell);
    let mut sum = 0u128;
    let mut max = 0u128;
    let mut count = 0u128;
    for nb in grid.neighbors(cell) {
        let dist = idx.abs_diff(curve.index_of(nb));
        sum += dist;
        max = max.max(dist);
        count += 1;
    }
    Accum {
        davg_scaled: sum * (lcm / count),
        dmax_sum: max,
        double_edge_sum: sum,
        max_delta: max,
    }
}

fn finish<const D: usize, C: SpaceFillingCurve<D>>(curve: &C, acc: Accum) -> NnStretchSummary {
    let grid = curve.grid();
    let lcm = neighbor_count_lcm(D);
    NnStretchSummary {
        curve: curve.name(),
        d: D,
        k: grid.k(),
        n: grid.n(),
        davg_numerator: acc.davg_scaled,
        davg_denominator: lcm * grid.n(),
        dmax_sum: acc.dmax_sum,
        // Each unordered NN edge was visited from both endpoints.
        edge_sum: acc.double_edge_sum / 2,
        max_delta: acc.max_delta,
    }
}

/// Computes all NN-stretch metrics exactly, sequentially.
///
/// Cost: `O(n·d)` curve evaluations.
pub fn summarize<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> NnStretchSummary {
    let lcm = neighbor_count_lcm(D);
    let acc = curve
        .grid()
        .cells()
        .map(|cell| cell_accum(curve, lcm, cell))
        .fold(Accum::default(), Accum::merge);
    finish(curve, acc)
}

/// Computes all NN-stretch metrics exactly, in parallel with Rayon.
///
/// Returns bit-identical results to [`summarize`] (integer accumulation is
/// order-independent).
pub fn summarize_par<const D: usize, C: SpaceFillingCurve<D> + Sync>(
    curve: &C,
) -> NnStretchSummary {
    let grid = curve.grid();
    let lcm = neighbor_count_lcm(D);
    let n = u64::try_from(grid.n()).expect("grid too large for exact enumeration");
    let acc = (0..n)
        .into_par_iter()
        .map(|rank| {
            let cell = grid.point_from_row_major(u128::from(rank));
            cell_accum(curve, lcm, cell)
        })
        .reduce(Accum::default, Accum::merge);
    finish(curve, acc)
}

/// The per-cell `δ^avg` values in row-major cell order (for distribution
/// plots and the Figure 1 worked example).
pub fn per_cell_delta_avg<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> Vec<f64> {
    curve
        .grid()
        .cells()
        .map(|cell| delta_avg(curve, cell))
        .collect()
}

/// A measured value paired with a reference (bound or asymptote), as
/// reported by the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchRatio {
    /// The measured metric value.
    pub measured: f64,
    /// The reference value it is compared against.
    pub reference: f64,
}

impl StretchRatio {
    /// `measured / reference`.
    pub fn ratio(&self) -> f64 {
        self.measured / self.reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sfc_core::transform::Reversed;
    use sfc_core::{CurveKind, Grid, PermutationCurve, SimpleCurve, ZCurve};

    #[test]
    fn lcm_of_neighbor_counts() {
        assert_eq!(neighbor_count_lcm(1), 2); // lcm(1, 2)
        assert_eq!(neighbor_count_lcm(2), 12); // lcm(2, 3, 4)
        assert_eq!(neighbor_count_lcm(3), 60); // lcm(3, 4, 5, 6)
        assert_eq!(neighbor_count_lcm(4), 840); // lcm(4..=8)
    }

    #[test]
    fn figure1_pi1_worked_values() {
        // Paper, Section III: D^avg(π₁) = 1.5, D^max(π₁) = 2, and every
        // per-cell δ^avg is 1.5.
        let pi1 = PermutationCurve::figure1_pi1();
        let s = summarize(&pi1);
        assert!(s.d_avg_equals_ratio(3, 2), "D^avg(π₁) = {}", s.d_avg());
        assert!(s.d_max_equals_ratio(2, 1), "D^max(π₁) = {}", s.d_max());
        for v in per_cell_delta_avg(&pi1) {
            assert_eq!(v, 1.5);
        }
    }

    #[test]
    fn figure1_pi2_worked_values() {
        // Paper: D^avg(π₂) = 2 and D^max(π₂) = 2.5.
        let pi2 = PermutationCurve::figure1_pi2();
        let s = summarize(&pi2);
        assert!(s.d_avg_equals_ratio(2, 1), "D^avg(π₂) = {}", s.d_avg());
        assert!(s.d_max_equals_ratio(5, 2), "D^max(π₂) = {}", s.d_max());
    }

    #[test]
    fn dmax_dominates_davg_everywhere() {
        // Proposition 1's driving fact: δ^max ≥ δ^avg, hence D^max ≥ D^avg.
        for kind in CurveKind::ALL {
            let c = kind.build::<2>(3).unwrap();
            let s = summarize(&c);
            assert!(
                s.d_max() >= s.d_avg() - 1e-12,
                "{kind}: {} < {}",
                s.d_max(),
                s.d_avg()
            );
        }
    }

    #[test]
    fn parallel_equals_sequential_bitwise() {
        for kind in CurveKind::ALL {
            let c = kind.build::<2>(3).unwrap();
            assert_eq!(summarize(&c), summarize_par(&c), "{kind}");
            let c3 = kind.build::<3>(2).unwrap();
            assert_eq!(summarize(&c3), summarize_par(&c3), "{kind} d=3");
        }
    }

    #[test]
    fn lemma3_brackets_davg() {
        use crate::bounds::{lemma3_lower, lemma3_upper};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let grid = Grid::<2>::new(2).unwrap();
        for _ in 0..5 {
            let c = PermutationCurve::random(grid, &mut rng).unwrap();
            let s = summarize(&c);
            let lo = lemma3_lower(s.edge_sum, s.n, 2);
            let hi = lemma3_upper(s.edge_sum, s.n, 2);
            assert!(lo <= s.d_avg() + 1e-12 && s.d_avg() <= hi + 1e-12);
        }
    }

    #[test]
    fn reversal_preserves_all_metrics() {
        let z = ZCurve::<2>::new(3).unwrap();
        let s = summarize(&z);
        let r = summarize(&Reversed::new(z));
        assert_eq!(s.davg_numerator, r.davg_numerator);
        assert_eq!(s.dmax_sum, r.dmax_sum);
        assert_eq!(s.edge_sum, r.edge_sum);
        assert_eq!(s.max_delta, r.max_delta);
    }

    #[test]
    fn one_dimensional_monotone_curve_has_stretch_one() {
        // In d = 1 the simple curve is the identity: every neighbor pair is
        // at curve distance 1, so D^avg = D^max = 1.
        let s = summarize(&SimpleCurve::<1>::new(5).unwrap());
        assert!(s.d_avg_equals_ratio(1, 1));
        assert!(s.d_max_equals_ratio(1, 1));
        assert_eq!(s.max_delta, 1);
    }

    #[test]
    fn simple_curve_dmax_is_exactly_n_pow() {
        // Proposition 2: D^max(S) = n^{1−1/d}, exactly, for every cell.
        for k in 1..=3u32 {
            let s2 = summarize(&SimpleCurve::<2>::new(k).unwrap());
            let expected = crate::bounds::prop2_dmax_simple_exact(k, 2);
            assert!(s2.d_max_equals_ratio(expected, 1), "d=2 k={k}");
        }
        let s3 = summarize(&SimpleCurve::<3>::new(2).unwrap());
        assert!(s3.d_max_equals_ratio(crate::bounds::prop2_dmax_simple_exact(2, 3), 1));
    }

    #[test]
    fn edge_sum_matches_direct_enumeration() {
        let z = ZCurve::<2>::new(2).unwrap();
        let s = summarize(&z);
        let direct: u128 = z
            .grid()
            .nn_edges()
            .map(|(a, b, _)| z.curve_distance(a, b))
            .sum();
        assert_eq!(s.edge_sum, direct);
    }

    #[test]
    fn delta_helpers_agree_with_summary() {
        let z = ZCurve::<2>::new(2).unwrap();
        let cell = Point::new([1, 2]);
        let (sum, count) = delta_sum(&z, cell);
        assert_eq!(count, 4);
        assert!((delta_avg(&z, cell) - sum as f64 / 4.0).abs() < 1e-12);
        assert!(delta_max(&z, cell) >= sum / 4);
    }

    #[test]
    fn thm1_lower_bound_holds_for_every_curve_and_random_bijections() {
        use crate::bounds::thm1_nn_stretch_lower_bound;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        for kind in CurveKind::ALL {
            for k in 1..=3u32 {
                let c = kind.build::<2>(k).unwrap();
                let s = summarize(&c);
                let bound = thm1_nn_stretch_lower_bound(k, 2);
                assert!(
                    s.d_avg() >= bound - 1e-12,
                    "{kind} d=2 k={k}: {} < {bound}",
                    s.d_avg()
                );
            }
        }
        let grid = Grid::<2>::new(2).unwrap();
        for _ in 0..20 {
            let c = PermutationCurve::random(grid, &mut rng).unwrap();
            let s = summarize(&c);
            assert!(s.d_avg() >= thm1_nn_stretch_lower_bound(2, 2) - 1e-12);
        }
    }
}
