//! Closed-form bounds and asymptotics from the paper.
//!
//! Every theorem, lemma and proposition with a numeric content gets a
//! function here; the experiment harness compares *measured* metric values
//! against these targets. Wherever the paper's quantity is an exact integer
//! (e.g. `S_{A'}` or `D^max(S)`) the function returns exact integer
//! arithmetic; asymptotic targets are `f64`.
//!
//! All functions take the grid parameters `(k, d)` — side `2^k`,
//! `n = 2^{kd}` — so that powers like `n^{1−1/d} = side^{d−1}` are computed
//! exactly instead of through floating-point roots.

/// Number of cells `n = 2^{kd}`.
#[inline]
pub fn n_cells(k: u32, d: usize) -> u128 {
    1u128 << (k as usize * d)
}

/// `n^{1−1/d} = side^{d−1} = 2^{k(d−1)}`, exactly.
#[inline]
pub fn n_pow_1_minus_1_over_d(k: u32, d: usize) -> u128 {
    1u128 << (k as usize * (d - 1))
}

/// **Theorem 1**: for any SFC `π` on the `d`-dimensional universe with `n`
/// cells, `D^avg(π) ≥ (2/3d)(n^{1−1/d} − n^{−1−1/d})`.
pub fn thm1_nn_stretch_lower_bound(k: u32, d: usize) -> f64 {
    let n = n_cells(k, d) as f64;
    let d_f = d as f64;
    (2.0 / (3.0 * d_f)) * (n.powf(1.0 - 1.0 / d_f) - n.powf(-1.0 - 1.0 / d_f))
}

/// **Theorems 2 & 3**: the asymptotic average-average NN-stretch of both
/// the Z curve and the simple curve, `(1/d)·n^{1−1/d}`.
pub fn nn_stretch_asymptote(k: u32, d: usize) -> f64 {
    n_pow_1_minus_1_over_d(k, d) as f64 / d as f64
}

/// The ratio between the asymptotic stretch of the Z curve (Theorem 2) and
/// the Theorem 1 lower bound, in the limit `n → ∞`:
/// `(1/d) / (2/3d) = 3/2`. This is the paper's headline "within a factor
/// of 1.5 of optimal" claim.
pub const Z_OPTIMALITY_RATIO: f64 = 1.5;

/// **Proposition 2**: the average-maximum NN-stretch of the simple curve is
/// exactly `n^{1−1/d}` (an exact integer).
#[inline]
pub fn prop2_dmax_simple_exact(k: u32, d: usize) -> u128 {
    n_pow_1_minus_1_over_d(k, d)
}

/// **Lemma 2**: for *any* SFC, the ordered-pair curve-distance sum is
/// `S_{A'}(π) = (n−1)·n·(n+1)/3`, independent of the curve.
///
/// # Panics
/// Panics if the product overflows `u128` (requires roughly `n < 2^42`).
pub fn lemma2_sa_prime(n: u128) -> u128 {
    // n³ grows fast; stay exact and loud rather than silently wrapping.
    let prod = (n - 1)
        .checked_mul(n)
        .and_then(|x| x.checked_mul(n + 1))
        .expect("S_A' overflows u128; use a smaller grid");
    prod / 3
}

/// **Lemma 4**: each nearest-neighbor edge `(ζ, η)` differing along the
/// paper's dimension `i` with lower coordinate `c = ζ_i` appears in exactly
/// `2 · side^{d−1} · (c+1) · (side−1−c)` decompositions `p(α, β)` of ordered
/// pairs. (The paper rounds this to `2·side^{d−1}·ζ_i·(side−ζ_i)` before
/// bounding; the exact count is what brute-force enumeration measures.)
pub fn lemma4_edge_multiplicity_exact(k: u32, d: usize, c: u64) -> u128 {
    let side = 1u128 << k;
    let c = c as u128;
    debug_assert!(c + 1 < side);
    2 * (1u128 << (k as usize * (d - 1))) * (c + 1) * (side - 1 - c)
}

/// **Lemma 4** (bound form): the maximum multiplicity is at most
/// `½·n^{(d+1)/d} = side^{d+1}/2`, exactly.
pub fn lemma4_multiplicity_bound(k: u32, d: usize) -> u128 {
    1u128 << (k as usize * (d + 1)).saturating_sub(1)
}

/// **Proposition 3** (Manhattan): for any SFC,
/// `str^{avg,M}(π) ≥ (1/3d)·(n+1)/(n^{1/d}−1)`.
pub fn prop3_all_pairs_lower_manhattan(k: u32, d: usize) -> f64 {
    let n = n_cells(k, d) as f64;
    let side = (1u128 << k) as f64;
    (n + 1.0) / (3.0 * d as f64 * (side - 1.0))
}

/// **Proposition 3** (Euclidean): for any SFC,
/// `str^{avg,E}(π) ≥ (1/3√d)·(n+1)/(n^{1/d}−1)`.
pub fn prop3_all_pairs_lower_euclidean(k: u32, d: usize) -> f64 {
    let n = n_cells(k, d) as f64;
    let side = (1u128 << k) as f64;
    (n + 1.0) / (3.0 * (d as f64).sqrt() * (side - 1.0))
}

/// **Proposition 4** (Manhattan): the simple curve satisfies
/// `str^{avg,M}(S) ≤ n^{1−1/d}`.
pub fn prop4_all_pairs_upper_manhattan(k: u32, d: usize) -> f64 {
    n_pow_1_minus_1_over_d(k, d) as f64
}

/// **Proposition 4** (Euclidean): the simple curve satisfies
/// `str^{avg,E}(S) ≤ √2·n^{1−1/d}`.
pub fn prop4_all_pairs_upper_euclidean(k: u32, d: usize) -> f64 {
    std::f64::consts::SQRT_2 * n_pow_1_minus_1_over_d(k, d) as f64
}

/// **Theorem 3** (proof): the exact `δ^avg_S(α)` of every *interior* cell of
/// the simple curve: `(1/d)·(n−1)/(n^{1/d}−1) = (1/d)·Σ_{ℓ=0}^{d−1} side^ℓ`.
///
/// Returned as an exact pair `(numerator, denominator)` with
/// `numerator = Σ_ℓ side^ℓ` and `denominator = d`.
pub fn thm3_simple_interior_delta_avg(k: u32, d: usize) -> (u128, u128) {
    let mut sum = 0u128;
    for l in 0..d {
        sum += 1u128 << (k as usize * l);
    }
    (sum, d as u128)
}

/// **Lemma 5** (limit): `lim_{n→∞} Λ_i(Z)/n^{2−1/d} = 2^{d−i}/(2^d − 1)`
/// for the paper's dimension index `1 ≤ i ≤ d`.
pub fn lemma5_lambda_limit(d: usize, i: usize) -> f64 {
    debug_assert!((1..=d).contains(&i));
    (1u128 << (d - i)) as f64 / ((1u128 << d) - 1) as f64
}

/// Lower bound of **Lemma 3**: `D^avg(π) ≥ (1/nd)·Σ_{NN_d} Δπ`.
pub fn lemma3_lower(edge_sum: u128, n: u128, d: usize) -> f64 {
    edge_sum as f64 / (n as f64 * d as f64)
}

/// Upper bound of **Lemma 3**: `D^avg(π) ≤ (2/nd)·Σ_{NN_d} Δπ`.
pub fn lemma3_upper(edge_sum: u128, n: u128, d: usize) -> f64 {
    2.0 * edge_sum as f64 / (n as f64 * d as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_cells_and_powers() {
        assert_eq!(n_cells(3, 2), 64);
        assert_eq!(n_cells(2, 3), 64);
        assert_eq!(n_pow_1_minus_1_over_d(3, 2), 8); // 64^{1/2}
        assert_eq!(n_pow_1_minus_1_over_d(2, 3), 16); // 64^{2/3}
        assert_eq!(n_pow_1_minus_1_over_d(5, 1), 1); // d = 1: n^0
    }

    #[test]
    fn thm1_bound_matches_hand_computation() {
        // d = 2, k = 3: n = 64. Bound = (2/6)(64^{1/2} − 64^{−3/2})
        //             = (1/3)(8 − 1/512).
        let expected = (8.0 - 1.0 / 512.0) / 3.0;
        assert!((thm1_nn_stretch_lower_bound(3, 2) - expected).abs() < 1e-12);
        // d = 1: bound = (2/3)(1 − n^{−2}); with k = 4, n = 16.
        let expected1 = (2.0 / 3.0) * (1.0 - 1.0 / 256.0);
        assert!((thm1_nn_stretch_lower_bound(4, 1) - expected1).abs() < 1e-12);
    }

    #[test]
    fn asymptote_is_1point5_times_limit_bound() {
        // As n → ∞ the Thm 1 bound tends to (2/3d)·n^{1−1/d} and the Z/simple
        // stretch to (1/d)·n^{1−1/d}; the ratio is exactly 1.5.
        for d in 1..=4usize {
            let k = 20 / d as u32;
            let asym = nn_stretch_asymptote(k, d);
            let limit_bound = (2.0 / (3.0 * d as f64)) * n_pow_1_minus_1_over_d(k, d) as f64;
            assert!(((asym / limit_bound) - Z_OPTIMALITY_RATIO).abs() < 1e-12);
        }
    }

    #[test]
    fn lemma2_small_values() {
        // n = 4: Σ over ordered pairs of |i − j| for i,j in 0..4 is 20·... by
        // formula (3·4·5)/3 = 20.
        assert_eq!(lemma2_sa_prime(4), 20);
        // Brute force for several n.
        for n in 1u128..=32 {
            let mut brute = 0u128;
            for i in 0..n {
                for j in 0..n {
                    brute += i.abs_diff(j);
                }
            }
            assert_eq!(lemma2_sa_prime(n), brute, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn lemma2_overflow_is_loud() {
        lemma2_sa_prime(1u128 << 60);
    }

    #[test]
    fn lemma4_multiplicity_peaks_at_center_and_respects_bound() {
        let k = 3; // side 8
        let d = 2;
        let bound = lemma4_multiplicity_bound(k, d); // 8³/2 = 256
        assert_eq!(bound, 256);
        let mut max_seen = 0;
        for c in 0..7u64 {
            let m = lemma4_edge_multiplicity_exact(k, d, c);
            assert!(m <= bound, "c = {c}: {m} > {bound}");
            max_seen = max_seen.max(m);
        }
        // Peak at c = 3: 2·8·4·4 = 256 — the bound is tight on this grid.
        assert_eq!(max_seen, 256);
        assert_eq!(lemma4_edge_multiplicity_exact(k, d, 3), 256);
    }

    #[test]
    fn prop3_bounds_euclidean_ge_manhattan() {
        // 1/(3√d) ≥ 1/(3d) for d ≥ 1, so the Euclidean lower bound is the
        // larger of the two.
        for d in 1..=4usize {
            let k = 2;
            assert!(
                prop3_all_pairs_lower_euclidean(k, d)
                    >= prop3_all_pairs_lower_manhattan(k, d) - 1e-12
            );
        }
    }

    #[test]
    fn prop4_euclidean_is_sqrt2_times_manhattan() {
        let m = prop4_all_pairs_upper_manhattan(3, 2);
        let e = prop4_all_pairs_upper_euclidean(3, 2);
        assert!((e / m - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn thm3_interior_delta_avg_geometric_sum() {
        // d = 3, side = 4: Σ_ℓ 4^ℓ = 1 + 4 + 16 = 21, denominator 3.
        assert_eq!(thm3_simple_interior_delta_avg(2, 3), (21, 3));
        // Equals (n−1)/(side−1): (64−1)/(4−1) = 21. Cross-check.
        assert_eq!((n_cells(2, 3) - 1) / ((1 << 2) - 1), 21);
    }

    #[test]
    fn lemma5_limits_sum_to_one() {
        // Σ_{i=1}^{d} 2^{d−i}/(2^d−1) = (2^d−1)/(2^d−1) = 1 — used in the
        // proof of Theorem 2 (h₁ limit).
        for d in 1..=6usize {
            let sum: f64 = (1..=d).map(|i| lemma5_lambda_limit(d, i)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "d = {d}: {sum}");
        }
    }

    #[test]
    fn lemma3_bounds_bracket() {
        let edge_sum = 1000u128;
        let lo = lemma3_lower(edge_sum, 64, 2);
        let hi = lemma3_upper(edge_sum, 64, 2);
        assert!((hi / lo - 2.0).abs() < 1e-12);
    }
}
