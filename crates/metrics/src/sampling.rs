//! Monte-Carlo estimators for stretch metrics on grids too large to
//! enumerate.
//!
//! The exact drivers in [`crate::nn_stretch`] and [`crate::all_pairs`] are
//! `O(n·d)` and `O(n²)` respectively; these estimators sample cells /
//! pairs uniformly and report a mean with a normal-approximation standard
//! error, so the experiment harness can probe grids up to `n = 2^{60}` and
//! beyond (curve evaluation itself is `O(d·k)` bit work regardless of `n`).
//!
//! ## Heavy-tail caveat
//!
//! For bit-interleaving curves (Z, Gray) the per-cell `δ^avg` distribution
//! is heavy-tailed: a neighbor step across a `2^j`-aligned boundary costs
//! `~2^{jd}` and occurs with probability `~2^{−j}`, so the *mean* is carried
//! by rare cells. A naive sample of `m ≪ 2^k` cells therefore almost surely
//! under-estimates `D^avg(Z)` (while remaining unbiased). For the Z curve
//! use the exact closed form ([`crate::lambda`]) instead; sampling is
//! reliable for curves with concentrated per-cell values (simple, snake,
//! Hilbert) and for the all-pairs metrics, whose ratios are bounded.

use rand::Rng;
use sfc_core::SpaceFillingCurve;

/// A Monte-Carlo estimate: sample mean with standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean (`s/√m`).
    pub std_error: f64,
    /// Number of samples drawn.
    pub samples: u64,
}

impl Estimate {
    /// The 95% confidence interval under the normal approximation.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error;
        (self.mean - half, self.mean + half)
    }

    /// `true` iff `value` lies within `sigmas` standard errors of the mean.
    pub fn within(&self, value: f64, sigmas: f64) -> bool {
        (value - self.mean).abs() <= sigmas * self.std_error.max(f64::EPSILON)
    }
}

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    fn estimate(&self) -> Estimate {
        let variance = if self.count > 1 {
            self.m2 / (self.count - 1) as f64
        } else {
            0.0
        };
        Estimate {
            mean: self.mean,
            std_error: (variance / self.count.max(1) as f64).sqrt(),
            samples: self.count,
        }
    }
}

/// Estimates `D^avg(π)` by sampling cells uniformly and averaging
/// `δ^avg_π`.
pub fn estimate_d_avg<const D: usize, C: SpaceFillingCurve<D>, R: Rng + ?Sized>(
    curve: &C,
    samples: u64,
    rng: &mut R,
) -> Estimate {
    let grid = curve.grid();
    let mut acc = Welford::default();
    for _ in 0..samples {
        let cell = grid.random_cell(rng);
        acc.push(crate::nn_stretch::delta_avg(curve, cell));
    }
    acc.estimate()
}

/// Estimates `D^max(π)` by sampling cells uniformly and averaging
/// `δ^max_π`.
pub fn estimate_d_max<const D: usize, C: SpaceFillingCurve<D>, R: Rng + ?Sized>(
    curve: &C,
    samples: u64,
    rng: &mut R,
) -> Estimate {
    let grid = curve.grid();
    let mut acc = Welford::default();
    for _ in 0..samples {
        let cell = grid.random_cell(rng);
        acc.push(crate::nn_stretch::delta_max(curve, cell) as f64);
    }
    acc.estimate()
}

/// Pairs per encoding batch in the all-pairs estimators: big enough to
/// amortize the batch kernel's setup, small enough to stay cache-resident.
const PAIR_BATCH: usize = 1024;

/// Shared driver for the all-pairs estimators: samples pairs, encodes
/// them in chunks through the curve's batch kernel
/// ([`SpaceFillingCurve::index_of_batch`]), and accumulates
/// `Δπ / denominator(a, b)`. Sample order (and therefore the estimate for
/// a given RNG stream) is identical to the old one-pair-at-a-time loop.
fn estimate_all_pairs_with<const D: usize, C, R, F>(
    curve: &C,
    samples: u64,
    rng: &mut R,
    denominator: F,
) -> Estimate
where
    C: SpaceFillingCurve<D>,
    R: Rng + ?Sized,
    F: Fn(&sfc_core::Point<D>, &sfc_core::Point<D>) -> f64,
{
    let grid = curve.grid();
    let mut acc = Welford::default();
    let mut points = Vec::with_capacity(2 * PAIR_BATCH);
    let mut keys = Vec::with_capacity(2 * PAIR_BATCH);
    let mut remaining = samples;
    while remaining > 0 {
        let chunk = (remaining as usize).min(PAIR_BATCH);
        points.clear();
        for _ in 0..chunk {
            let (a, b) = grid.random_distinct_pair(rng);
            points.push(a);
            points.push(b);
        }
        curve.index_of_batch(&points, &mut keys);
        for i in 0..chunk {
            let (a, b) = (points[2 * i], points[2 * i + 1]);
            let curve_dist = sfc_core::index_distance(keys[2 * i], keys[2 * i + 1]);
            acc.push(curve_dist as f64 / denominator(&a, &b));
        }
        remaining -= chunk as u64;
    }
    acc.estimate()
}

/// Estimates the all-pairs Manhattan stretch `str^{avg,M}(π)` by sampling
/// unordered pairs of distinct cells uniformly.
pub fn estimate_all_pairs_manhattan<const D: usize, C: SpaceFillingCurve<D>, R: Rng + ?Sized>(
    curve: &C,
    samples: u64,
    rng: &mut R,
) -> Estimate {
    estimate_all_pairs_with(curve, samples, rng, |a, b| a.manhattan(b) as f64)
}

/// Estimates the all-pairs Euclidean stretch `str^{avg,E}(π)`.
pub fn estimate_all_pairs_euclidean<const D: usize, C: SpaceFillingCurve<D>, R: Rng + ?Sized>(
    curve: &C,
    samples: u64,
    rng: &mut R,
) -> Estimate {
    estimate_all_pairs_with(curve, samples, rng, |a, b| a.euclidean(b))
}

/// Stratified estimator of the **mean nearest-neighbor edge distance**
/// `Σ_{NN_d} Δπ / |NN_d|` — the quantity that brackets `D^avg` through
/// Lemma 3 and equals it asymptotically (`|NN_d|/(n·d) = (side−1)/side`).
///
/// Strata are the paper's groups `G_{i,j}` (Lemma 5): axis `i` × the
/// trailing-ones class `j` of the lower coordinate. For bit-interleaving
/// curves (Z, Gray) the edge distance is **constant within a stratum**, so
/// a handful of samples per stratum recovers the exact mean — repairing
/// the heavy-tail failure of naive sampling documented above. For other
/// curves the estimator remains unbiased with reduced variance.
pub fn estimate_edge_mean_stratified<const D: usize, C: SpaceFillingCurve<D>, R: Rng + ?Sized>(
    curve: &C,
    samples_per_stratum: u64,
    rng: &mut R,
) -> Estimate {
    assert!(
        samples_per_stratum >= 2,
        "need ≥ 2 samples per stratum for a variance estimate"
    );
    let grid = curve.grid();
    let k = grid.k();
    assert!(k >= 1, "a single-cell grid has no edges");
    let side = grid.side();

    let mut mean = 0.0f64;
    let mut var = 0.0f64;
    for axis in 0..D {
        for j in 1..=k {
            // Stratum weight: |G_{i,j}| / |NN_d| = 2^{k−j} / (d·(side−1)).
            let weight = (1u64 << (k - j)) as f64 / (D as f64 * (side - 1) as f64);
            let mut acc = Welford::default();
            for _ in 0..samples_per_stratum {
                // Lower coordinate with exactly j−1 trailing ones then a 0:
                // c = u·2^j + (2^{j−1} − 1).
                let u = rng.gen_range(0..(1u64 << (k - j)));
                let c = (u << j) + ((1u64 << (j - 1)) - 1);
                let mut coords = [0u32; D];
                for (a, slot) in coords.iter_mut().enumerate() {
                    *slot = if a == axis {
                        c as u32
                    } else {
                        rng.gen_range(0..side) as u32
                    };
                }
                let p = sfc_core::Point::new(coords);
                let q = p.step_up(axis).expect("in bounds by construction");
                acc.push(curve.curve_distance(p, q) as f64);
            }
            let e = acc.estimate();
            mean += weight * e.mean;
            // Variance of the weighted stratum mean: w²·(s/√m)².
            var += weight * weight * e.std_error * e.std_error;
        }
    }
    Estimate {
        mean,
        std_error: var.sqrt(),
        samples: samples_per_stratum * (D as u64) * u64::from(k),
    }
}

/// The exact mean NN-edge distance `Σ_{NN_d} Δπ / |NN_d|`, by enumeration
/// (ground truth for the stratified estimator).
pub fn exact_edge_mean<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> f64 {
    let s = crate::nn_stretch::summarize(curve);
    let grid = curve.grid();
    s.edge_sum as f64 / grid.nn_edge_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{all_pairs, nn_stretch};
    use rand::SeedableRng;
    use sfc_core::{CurveKind, ZCurve};

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn welford_matches_closed_form() {
        let mut w = Welford::default();
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        let e = w.estimate();
        assert!((e.mean - 2.5).abs() < 1e-12);
        // Sample variance of 1..4 is 5/3; SE = sqrt(5/3/4).
        assert!((e.std_error - (5.0 / 3.0 / 4.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(e.samples, 4);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut w = Welford::default();
        w.push(7.0);
        let e = w.estimate();
        assert_eq!(e.mean, 7.0);
        assert_eq!(e.std_error, 0.0);
        assert!(e.within(7.0, 1.0));
    }

    #[test]
    fn d_avg_estimate_converges_to_exact() {
        let z = ZCurve::<2>::new(4).unwrap();
        let exact = nn_stretch::summarize(&z).d_avg();
        let est = estimate_d_avg(&z, 20_000, &mut rng(1));
        assert!(
            est.within(exact, 5.0),
            "exact {exact} not within 5σ of {est:?}"
        );
    }

    #[test]
    fn d_max_estimate_converges_to_exact() {
        let z = ZCurve::<2>::new(4).unwrap();
        let exact = nn_stretch::summarize(&z).d_max();
        let est = estimate_d_max(&z, 20_000, &mut rng(2));
        assert!(est.within(exact, 5.0), "exact {exact} vs {est:?}");
    }

    #[test]
    fn all_pairs_estimates_converge_to_exact() {
        let z = ZCurve::<2>::new(3).unwrap();
        let exact = all_pairs::all_pairs_exact(&z);
        let est_m = estimate_all_pairs_manhattan(&z, 30_000, &mut rng(3));
        let est_e = estimate_all_pairs_euclidean(&z, 30_000, &mut rng(4));
        assert!(est_m.within(exact.manhattan, 5.0), "{est_m:?} vs {exact:?}");
        assert!(est_e.within(exact.euclidean, 5.0), "{est_e:?} vs {exact:?}");
    }

    #[test]
    fn estimators_scale_to_huge_grids_simple_curve() {
        // n = 2^52 — far beyond enumeration. The simple curve's δ^avg is
        // *constant* on interior cells ((n−1)/(d(side−1)), Theorem 3 proof),
        // and boundary cells are a 2^{−25}-fraction of the universe, so a
        // modest sample nails D^avg(S) to high accuracy.
        use sfc_core::SimpleCurve;
        let s = SimpleCurve::<2>::new(26).unwrap();
        let est = estimate_d_avg(&s, 4_000, &mut rng(5));
        let (num, den) = crate::bounds::thm3_simple_interior_delta_avg(26, 2);
        let interior = num as f64 / den as f64;
        assert!(
            (est.mean - interior).abs() / interior < 1e-3,
            "est {} vs interior value {interior}",
            est.mean
        );
    }

    #[test]
    fn z_curve_sampling_underestimates_heavy_tail() {
        // Cautionary behaviour, documented for users: the per-cell δ^avg of
        // the Z curve is heavy-tailed (the mean is carried by coordinates
        // with long carry chains, probability ~2^{−j} for contribution
        // ~2^{jd−i}), so a naive cell sample of m ≪ 2^k cells almost surely
        // *under*-estimates D^avg. The estimator stays unbiased — its
        // variance is the problem.
        let z = ZCurve::<2>::new(26).unwrap();
        let est = estimate_d_avg(&z, 2_000, &mut rng(5));
        let asym = crate::bounds::nn_stretch_asymptote(26, 2);
        assert!(
            est.mean < 0.5 * asym,
            "with 2k samples the heavy tail should be missed: {} vs {asym}",
            est.mean
        );
    }

    #[test]
    fn ci95_is_symmetric_and_ordered() {
        let est = Estimate {
            mean: 10.0,
            std_error: 1.0,
            samples: 100,
        };
        let (lo, hi) = est.ci95();
        assert!(lo < 10.0 && 10.0 < hi);
        assert!((10.0 - lo - (hi - 10.0)).abs() < 1e-12);
    }

    #[test]
    fn every_curve_kind_is_estimable() {
        for kind in CurveKind::ALL {
            let c = kind.build::<3>(4).unwrap();
            let est = estimate_d_avg(&c, 500, &mut rng(6));
            assert!(est.mean >= 1.0, "{kind}: mean {}", est.mean);
            assert_eq!(est.samples, 500);
        }
    }

    #[test]
    fn stratified_estimator_is_exact_for_z() {
        // Within every stratum the Z curve's edge distance is constant, so
        // the stratified mean equals the exact mean with zero variance.
        for k in [3u32, 6, 10] {
            let z = ZCurve::<2>::new(k).unwrap();
            let est = estimate_edge_mean_stratified(&z, 4, &mut rng(31));
            if k <= 6 {
                let exact = exact_edge_mean(&z);
                assert!(
                    (est.mean - exact).abs() < 1e-9,
                    "k={k}: {} vs {exact}",
                    est.mean
                );
            }
            assert!(est.std_error < 1e-9, "k={k}: σ = {}", est.std_error);
        }
        let z3 = ZCurve::<3>::new(4).unwrap();
        let est = estimate_edge_mean_stratified(&z3, 4, &mut rng(32));
        assert!((est.mean - exact_edge_mean(&z3)).abs() < 1e-9);
    }

    #[test]
    fn stratified_beats_naive_on_huge_z_grids() {
        // The failure mode documented in `z_curve_sampling_underestimates_
        // heavy_tail`, repaired: on n = 2^52 the stratified estimate hits
        // the Theorem-2 asymptote; naive sampling with the same budget is
        // off by orders of magnitude.
        let z = ZCurve::<2>::new(26).unwrap();
        let est = estimate_edge_mean_stratified(&z, 40, &mut rng(33));
        let asym = crate::bounds::nn_stretch_asymptote(26, 2);
        assert!(
            (est.mean - asym).abs() / asym < 1e-6,
            "stratified {} vs asymptote {asym}",
            est.mean
        );
    }

    #[test]
    fn stratified_estimator_is_consistent_for_other_curves() {
        for kind in CurveKind::ALL {
            let c = kind.build::<2>(5).unwrap();
            let exact = exact_edge_mean(&c);
            let est = estimate_edge_mean_stratified(&c, 400, &mut rng(34));
            assert!(
                est.within(exact, 6.0) || (est.mean - exact).abs() / exact < 0.05,
                "{kind}: est {:?} vs exact {exact}",
                est
            );
        }
    }

    #[test]
    #[should_panic(expected = "samples per stratum")]
    fn stratified_requires_two_samples() {
        let z = ZCurve::<2>::new(3).unwrap();
        estimate_edge_mean_stratified(&z, 1, &mut rng(35));
    }
}
