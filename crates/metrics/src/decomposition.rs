//! The nearest-neighbor decomposition `p(α, β)` (paper, Section IV.A).
//!
//! `p(α, β)` turns an ordered pair of cells into a concrete staircase path
//! of unit edges: the coordinates of `α` are "corrected" one dimension at a
//! time, dimension 1 first, until `β` is reached. The decomposition is the
//! engine of the Theorem 1 lower bound: combined with the generalized
//! triangle inequality (Lemma 1) and the multiplicity count (Lemma 4), it
//! converts the universal pair-sum `S_{A'}` (Lemma 2) into a bound on the
//! nearest-neighbor edge sum.
//!
//! This module materialises the decomposition, verifies the paper's Figure 2
//! example, and counts edge multiplicities both in closed form and by brute
//! force.

use sfc_core::{Grid, Point, SpaceFillingCurve};
use std::collections::HashMap;

/// A unit edge of the universe, normalized so that the second endpoint is
/// the first plus one along `axis`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NnEdge<const D: usize> {
    /// The endpoint with the smaller coordinate along `axis`.
    pub lo: Point<D>,
    /// `lo + e_axis`.
    pub hi: Point<D>,
    /// The axis along which the endpoints differ (paper dimension
    /// `axis + 1`).
    pub axis: usize,
}

impl<const D: usize> NnEdge<D> {
    /// Creates a normalized edge from two nearest-neighbor cells (in either
    /// order).
    ///
    /// # Panics
    /// Panics if the points are not nearest neighbors.
    pub fn new(a: Point<D>, b: Point<D>) -> Self {
        let axis = a
            .differing_axis(&b)
            .expect("edge endpoints must differ along exactly one axis");
        assert_eq!(
            a.coord(axis).abs_diff(b.coord(axis)),
            1,
            "edge endpoints must be at Manhattan distance 1"
        );
        if a.coord(axis) < b.coord(axis) {
            Self { lo: a, hi: b, axis }
        } else {
            Self { lo: b, hi: a, axis }
        }
    }
}

/// The nearest-neighbor decomposition `p(α, β)`: the ordered list of unit
/// edges of the staircase path from `α` to `β` that corrects coordinates
/// dimension 1 first (paper, Section IV.A).
///
/// The number of edges equals the Manhattan distance `Δ(α, β)`.
pub fn nn_decomposition<const D: usize>(alpha: Point<D>, beta: Point<D>) -> Vec<NnEdge<D>> {
    let mut edges = Vec::with_capacity(alpha.manhattan(&beta) as usize);
    // Intermediate corner points α = α₀, α₁, …, α_d = β, where α_i has the
    // first i coordinates of β and the rest of α.
    let mut current = alpha;
    for axis in 0..D {
        let from = current.coord(axis);
        let to = beta.coord(axis);
        if from == to {
            continue;
        }
        let (lo, hi) = (from.min(to), from.max(to));
        for c in lo..hi {
            let a = current.with_coord(axis, c);
            let b = current.with_coord(axis, c + 1);
            edges.push(NnEdge::new(a, b));
        }
        current = current.with_coord(axis, to);
    }
    debug_assert_eq!(current, beta);
    edges
}

/// Verifies the generalized triangle inequality (Lemma 1) along the
/// decomposition: `Δπ(α, β) ≤ Σ_{(α',β') ∈ p(α,β)} Δπ(α', β')`
/// (inequality (2) in the paper). Returns `(lhs, rhs)`.
pub fn triangle_inequality_along_path<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    alpha: Point<D>,
    beta: Point<D>,
) -> (u128, u128) {
    let lhs = curve.curve_distance(alpha, beta);
    let rhs = nn_decomposition(alpha, beta)
        .iter()
        .map(|e| curve.curve_distance(e.lo, e.hi))
        .sum();
    (lhs, rhs)
}

/// Brute-force edge-multiplicity census: for every ordered pair
/// `(α, β) ∈ A'`, generates `p(α, β)` and counts how many times each unit
/// edge appears. Cost `O(n² · d · side)` — for tests on small grids.
pub fn edge_multiplicity_census<const D: usize>(grid: Grid<D>) -> HashMap<NnEdge<D>, u128> {
    let mut census: HashMap<NnEdge<D>, u128> = HashMap::new();
    for alpha in grid.cells() {
        for beta in grid.cells() {
            if alpha == beta {
                continue;
            }
            for edge in nn_decomposition(alpha, beta) {
                *census.entry(edge).or_insert(0) += 1;
            }
        }
    }
    census
}

/// The closed-form multiplicity of a single edge (see
/// [`lemma4_edge_multiplicity_exact`](crate::bounds::lemma4_edge_multiplicity_exact)):
/// an edge along `axis` with lower coordinate `c` appears in
/// `2 · side^{d−1} · (c+1) · (side−1−c)` decompositions.
pub fn edge_multiplicity_closed_form<const D: usize>(grid: Grid<D>, edge: &NnEdge<D>) -> u128 {
    crate::bounds::lemma4_edge_multiplicity_exact(grid.k(), D, u64::from(edge.lo.coord(edge.axis)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::PermutationCurve;

    #[test]
    fn figure2_path_alpha_to_beta() {
        // Paper, Figure 2: α = (1,1), β = (3,5). p(α, β) first corrects
        // dimension 1 (1→3), then dimension 2 (1→5):
        // (1,1)-(2,1), (2,1)-(3,1), (3,1)-(3,2), (3,2)-(3,3), (3,3)-(3,4),
        // (3,4)-(3,5).
        let alpha = Point::new([1, 1]);
        let beta = Point::new([3, 5]);
        let path = nn_decomposition(alpha, beta);
        let expected = vec![
            NnEdge::new(Point::new([1, 1]), Point::new([2, 1])),
            NnEdge::new(Point::new([2, 1]), Point::new([3, 1])),
            NnEdge::new(Point::new([3, 1]), Point::new([3, 2])),
            NnEdge::new(Point::new([3, 2]), Point::new([3, 3])),
            NnEdge::new(Point::new([3, 3]), Point::new([3, 4])),
            NnEdge::new(Point::new([3, 4]), Point::new([3, 5])),
        ];
        assert_eq!(path, expected);
    }

    #[test]
    fn figure2_path_beta_to_alpha_differs() {
        // p(β, α) corrects dimension 1 first from β's corner: it passes
        // through (1,5), not (3,1). The two decompositions are different
        // edge sets — exactly the paper's point.
        let alpha = Point::new([1, 1]);
        let beta = Point::new([3, 5]);
        let forward: std::collections::HashSet<_> =
            nn_decomposition(alpha, beta).into_iter().collect();
        let backward: std::collections::HashSet<_> =
            nn_decomposition(beta, alpha).into_iter().collect();
        assert_ne!(forward, backward);
        // Both have length Δ(α, β) = 6.
        assert_eq!(forward.len(), 6);
        assert_eq!(backward.len(), 6);
        // The paper lists (1,5)-(2,5) and (2,5)-(3,5) among p(β, α)'s edges.
        assert!(backward.contains(&NnEdge::new(Point::new([1, 5]), Point::new([2, 5]))));
        assert!(backward.contains(&NnEdge::new(Point::new([2, 5]), Point::new([3, 5]))));
    }

    #[test]
    fn single_axis_decomposition_is_symmetric() {
        // When α and β differ along one dimension only, p(α,β) = p(β,α).
        let a = Point::new([6, 4, 5]);
        let b = Point::new([3, 4, 5]);
        let fwd: std::collections::HashSet<_> = nn_decomposition(a, b).into_iter().collect();
        let bwd: std::collections::HashSet<_> = nn_decomposition(b, a).into_iter().collect();
        assert_eq!(fwd, bwd);
        // The paper's example: p((6,4,5),(3,4,5)) = {(3..6 steps)}.
        assert_eq!(fwd.len(), 3);
        assert!(fwd.contains(&NnEdge::new(Point::new([3, 4, 5]), Point::new([4, 4, 5]))));
        assert!(fwd.contains(&NnEdge::new(Point::new([4, 4, 5]), Point::new([5, 4, 5]))));
        assert!(fwd.contains(&NnEdge::new(Point::new([5, 4, 5]), Point::new([6, 4, 5]))));
    }

    #[test]
    fn path_length_equals_manhattan_distance() {
        let grid = Grid::<3>::new(1).unwrap();
        for a in grid.cells() {
            for b in grid.cells() {
                let path = nn_decomposition(a, b);
                assert_eq!(path.len() as u64, a.manhattan(&b));
                // Every edge is a unit edge.
                for e in &path {
                    assert_eq!(e.lo.manhattan(&e.hi), 1);
                }
            }
        }
    }

    #[test]
    fn triangle_inequality_holds_for_random_bijections() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let grid = Grid::<2>::new(2).unwrap();
        for _ in 0..5 {
            let curve = PermutationCurve::random(grid, &mut rng).unwrap();
            for a in grid.cells() {
                for b in grid.cells() {
                    if a == b {
                        continue;
                    }
                    let (lhs, rhs) = triangle_inequality_along_path(&curve, a, b);
                    assert!(lhs <= rhs, "Δπ({a},{b}) = {lhs} > path sum {rhs}");
                }
            }
        }
    }

    #[test]
    fn census_matches_closed_form_2d() {
        let grid = Grid::<2>::new(2).unwrap(); // 4×4
        let census = edge_multiplicity_census(grid);
        // Every unit edge of the grid must appear in the census.
        assert_eq!(census.len() as u128, grid.nn_edge_count());
        for (edge, &count) in &census {
            let expected = edge_multiplicity_closed_form(grid, edge);
            assert_eq!(count, expected, "edge {edge:?}");
        }
    }

    #[test]
    fn census_matches_closed_form_3d() {
        let grid = Grid::<3>::new(1).unwrap(); // 2×2×2
        let census = edge_multiplicity_census(grid);
        for (edge, &count) in &census {
            assert_eq!(count, edge_multiplicity_closed_form(grid, edge), "{edge:?}");
        }
    }

    #[test]
    fn lemma4_bound_holds_over_census() {
        let grid = Grid::<2>::new(2).unwrap();
        let bound = crate::bounds::lemma4_multiplicity_bound(2, 2); // 4³/2 = 32
        let census = edge_multiplicity_census(grid);
        let max = census.values().copied().max().unwrap();
        assert!(max <= bound, "max multiplicity {max} > bound {bound}");
        // The bound is within a factor 2 of tight on this grid.
        assert!(max * 2 >= bound, "bound is very loose: {max} vs {bound}");
    }

    #[test]
    fn total_census_mass_equals_total_manhattan_distance() {
        // Σ_edges multiplicity = Σ_{(α,β)∈A'} |p(α,β)| = Σ_{A'} Δ(α,β).
        let grid = Grid::<2>::new(1).unwrap();
        let census = edge_multiplicity_census(grid);
        let mass: u128 = census.values().sum();
        let mut manhattan_total = 0u128;
        for a in grid.cells() {
            for b in grid.cells() {
                manhattan_total += u128::from(a.manhattan(&b));
            }
        }
        assert_eq!(mass, manhattan_total);
    }

    #[test]
    #[should_panic(expected = "Manhattan distance 1")]
    fn nn_edge_rejects_distant_points() {
        NnEdge::new(Point::new([0, 0]), Point::new([2, 0]));
    }

    #[test]
    #[should_panic(expected = "exactly one axis")]
    fn nn_edge_rejects_diagonal_points() {
        NnEdge::new(Point::new([0, 0]), Point::new([1, 1]));
    }
}
