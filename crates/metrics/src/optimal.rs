//! Searching for *optimal* curves: how close to the Theorem 1 lower bound
//! can any bijection get?
//!
//! The paper leaves the exact optimum open (Section VI). Two probes:
//!
//! * [`exhaustive_optimal`] — enumerates **all** `n!` bijections for tiny
//!   universes (the 2×2 grid of Figure 1 and the 2×2×2 cube), establishing
//!   the true optimum by brute force. For the 2×2 grid this proves
//!   Figure 1's `π₁` (with `D^avg = 1.5`) is optimal.
//! * [`anneal`] — simulated annealing over the permutation space with an
//!   incremental `O(d)` move evaluation, for grids where enumeration is
//!   hopeless. The annealer probes how much slack Theorem 1 leaves on
//!   small-but-nontrivial universes.
//!
//! Both optimize the *exact* scaled objective
//! `T(π) = Σ_α (L/|N(α)|)·Σ_{β∈N(α)} Δπ(α,β)` (so `D^avg = T/(L·n)`),
//! keeping search decisions free of floating-point noise.

use crate::nn_stretch::neighbor_count_lcm;
use rand::Rng;
use sfc_core::{Grid, PermutationCurve, SpaceFillingCurve};

/// A weighted nearest-neighbor edge of the grid, with endpoints as
/// row-major ranks and weight `L/|N(a)| + L/|N(b)|`.
#[derive(Debug, Clone, Copy)]
struct WeightedEdge {
    a: u32,
    b: u32,
    weight: u64,
}

/// Precomputes the weighted edge list of the grid: the exact objective is
/// `T(π) = Σ_e weight(e) · |π(a_e) − π(b_e)|`.
fn weighted_edges<const D: usize>(grid: Grid<D>) -> Vec<WeightedEdge> {
    let lcm = neighbor_count_lcm(D) as u64;
    grid.nn_edges()
        .map(|(p, q, _)| WeightedEdge {
            a: grid.row_major_rank(&p) as u32,
            b: grid.row_major_rank(&q) as u32,
            weight: lcm / grid.neighbor_count(&p) as u64 + lcm / grid.neighbor_count(&q) as u64,
        })
        .collect()
}

/// The exact scaled objective for a permutation `perm[rank] = index`.
fn objective(edges: &[WeightedEdge], perm: &[u64]) -> u128 {
    edges
        .iter()
        .map(|e| u128::from(e.weight) * u128::from(perm[e.a as usize].abs_diff(perm[e.b as usize])))
        .sum()
}

/// Result of an optimal-curve search.
#[derive(Debug, Clone)]
pub struct SearchResult<const D: usize> {
    /// The best curve found.
    pub best: PermutationCurve<D>,
    /// Exact numerator of the best `D^avg` (same scaling as
    /// [`NnStretchSummary`](crate::nn_stretch::NnStretchSummary)).
    pub davg_numerator: u128,
    /// Exact denominator (`L·n`).
    pub davg_denominator: u128,
    /// Number of permutations achieving the optimum (exhaustive search
    /// only; `0` for annealing).
    pub optima_count: u64,
    /// Number of candidate evaluations performed.
    pub evaluated: u64,
}

impl<const D: usize> SearchResult<D> {
    /// The best `D^avg` as a float.
    pub fn d_avg(&self) -> f64 {
        self.davg_numerator as f64 / self.davg_denominator as f64
    }

    /// `true` iff the best `D^avg` equals `num/den` exactly.
    pub fn d_avg_equals_ratio(&self, num: u128, den: u128) -> bool {
        self.davg_numerator * den == num * self.davg_denominator
    }
}

fn perm_to_curve<const D: usize>(grid: Grid<D>, perm: &[u64]) -> PermutationCurve<D> {
    PermutationCurve::from_index_fn(grid, "search-best", |p| {
        u128::from(perm[grid.row_major_rank(&p) as usize])
    })
    .expect("a permutation is always a bijection")
}

/// Exhaustively enumerates all `n!` bijections and returns the true optimum
/// of `D^avg`.
///
/// # Panics
/// Panics if `n > 8` (`8! = 40320` is the practical limit; `9!` grids do
/// not exist since `n` is a power of two, and `16!` is out of reach).
pub fn exhaustive_optimal<const D: usize>(grid: Grid<D>) -> SearchResult<D> {
    let n = grid.n();
    assert!(n <= 8, "exhaustive search requires n ≤ 8 (got {n})");
    let n = n as usize;
    let edges = weighted_edges(grid);
    let lcm = neighbor_count_lcm(D);

    let mut perm: Vec<u64> = (0..n as u64).collect();
    let mut best_cost = u128::MAX;
    let mut best_perm = perm.clone();
    let mut optima = 0u64;
    let mut evaluated = 0u64;

    // Heap's algorithm, iterative.
    let mut c = vec![0usize; n];
    let mut consider = |perm: &[u64], best_cost: &mut u128, best_perm: &mut Vec<u64>| {
        let cost = objective(&edges, perm);
        evaluated += 1;
        match cost.cmp(best_cost) {
            std::cmp::Ordering::Less => {
                *best_cost = cost;
                *best_perm = perm.to_vec();
                optima = 1;
            }
            std::cmp::Ordering::Equal => optima += 1,
            std::cmp::Ordering::Greater => {}
        }
    };
    consider(&perm, &mut best_cost, &mut best_perm);
    let mut i = 1usize;
    while i < n {
        if c[i] < i {
            if i.is_multiple_of(2) {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            consider(&perm, &mut best_cost, &mut best_perm);
            c[i] += 1;
            i = 1;
        } else {
            c[i] = 0;
            i += 1;
        }
    }

    SearchResult {
        best: perm_to_curve(grid, &best_perm),
        davg_numerator: best_cost,
        davg_denominator: lcm * grid.n(),
        optima_count: optima,
        evaluated,
    }
}

/// Configuration for the simulated-annealing search.
#[derive(Debug, Clone, Copy)]
pub struct AnnealConfig {
    /// Total number of proposed swaps.
    pub iterations: u64,
    /// Initial temperature, in units of the *scaled* objective (a good
    /// default is a few percent of the starting objective).
    pub initial_temp: f64,
    /// Multiplicative cooling applied every
    /// [`cooling_interval`](Self::cooling_interval) proposals.
    pub cooling: f64,
    /// Proposals between cooling steps.
    pub cooling_interval: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        Self {
            iterations: 200_000,
            initial_temp: 0.0, // 0 → auto: 5% of the starting objective
            cooling: 0.97,
            cooling_interval: 1_000,
        }
    }
}

/// Simulated annealing over the permutation space, starting from `start`.
///
/// The move set is "swap the cells at two curve positions"; each proposal
/// is evaluated incrementally by re-summing only the edges incident to the
/// two affected cells (`O(d)` work instead of `O(n·d)`).
pub fn anneal<const D: usize, R: Rng + ?Sized>(
    start: &PermutationCurve<D>,
    config: AnnealConfig,
    rng: &mut R,
) -> SearchResult<D> {
    let grid = start.grid();
    let n = usize::try_from(grid.n()).expect("grid too large");
    assert!(n >= 2, "annealing needs at least two cells");
    let lcm = neighbor_count_lcm(D);
    let edges = weighted_edges(grid);

    // Per-rank incident edge lists for incremental evaluation.
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (ei, e) in edges.iter().enumerate() {
        incident[e.a as usize].push(ei as u32);
        incident[e.b as usize].push(ei as u32);
    }

    // perm[rank] = index; pos[index] = rank.
    let mut perm: Vec<u64> = (0..n as u64)
        .map(|rank| start.index_of(grid.point_from_row_major(u128::from(rank))) as u64)
        .collect();
    let mut pos: Vec<u64> = vec![0; n];
    for (rank, &idx) in perm.iter().enumerate() {
        pos[idx as usize] = rank as u64;
    }

    let mut cost = objective(&edges, &perm);
    let mut best_cost = cost;
    let mut best_perm = perm.clone();
    let mut temp = if config.initial_temp > 0.0 {
        config.initial_temp
    } else {
        cost as f64 * 0.05
    };

    // Sum over edges incident to `rank_a` or `rank_b` (deduplicated).
    let local = |perm: &[u64], rank_a: usize, rank_b: usize| -> u128 {
        let mut sum = 0u128;
        for &ei in &incident[rank_a] {
            let e = edges[ei as usize];
            sum +=
                u128::from(e.weight) * u128::from(perm[e.a as usize].abs_diff(perm[e.b as usize]));
        }
        for &ei in &incident[rank_b] {
            let e = edges[ei as usize];
            // Skip edges already counted from rank_a's side.
            if e.a as usize == rank_a || e.b as usize == rank_a {
                continue;
            }
            sum +=
                u128::from(e.weight) * u128::from(perm[e.a as usize].abs_diff(perm[e.b as usize]));
        }
        sum
    };

    for it in 0..config.iterations {
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        let rank_a = pos[i] as usize;
        let rank_b = pos[j] as usize;

        let before = local(&perm, rank_a, rank_b);
        perm.swap(rank_a, rank_b);
        let after = local(&perm, rank_a, rank_b);

        let accept = if after <= before {
            true
        } else {
            let delta = (after - before) as f64;
            rng.gen::<f64>() < (-delta / temp.max(f64::MIN_POSITIVE)).exp()
        };

        if accept {
            pos.swap(i, j);
            cost = cost + after - before;
            if cost < best_cost {
                best_cost = cost;
                best_perm.clone_from(&perm);
            }
        } else {
            perm.swap(rank_a, rank_b); // undo
        }

        if (it + 1) % config.cooling_interval == 0 {
            temp *= config.cooling;
        }
    }

    SearchResult {
        best: perm_to_curve(grid, &best_perm),
        davg_numerator: best_cost,
        davg_denominator: lcm * grid.n(),
        optima_count: 0,
        evaluated: config.iterations + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn_stretch::summarize;
    use rand::SeedableRng;
    use sfc_core::ZCurve;

    #[test]
    fn exhaustive_2x2_optimum_is_figure1_pi1_value() {
        // All 24 bijections of the 2×2 grid: the optimum D^avg is 1.5 —
        // Figure 1's π₁ achieves it.
        let grid = Grid::<2>::new(1).unwrap();
        let result = exhaustive_optimal(grid);
        assert_eq!(result.evaluated, 24);
        assert!(
            result.d_avg_equals_ratio(3, 2),
            "optimum = {}",
            result.d_avg()
        );
        // The 2×2 universe is a 4-cycle; of the 6 cyclic label orders, 4
        // reach the minimum cycle cost 6 (= D^avg 1.5), each in 4 rotations:
        // 16 optimal permutations out of 24.
        assert_eq!(result.optima_count, 16);
        // And the Thm 1 lower bound is respected (it is loose at n = 4).
        let bound = crate::bounds::thm1_nn_stretch_lower_bound(1, 2);
        assert!(result.d_avg() >= bound);
    }

    #[test]
    fn exhaustive_1d_optimum_is_monotone_order() {
        // In one dimension (n = 8) the identity order is optimal with
        // D^avg = 1.
        let grid = Grid::<1>::new(3).unwrap();
        let result = exhaustive_optimal(grid);
        assert!(
            result.d_avg_equals_ratio(1, 1),
            "optimum = {}",
            result.d_avg()
        );
        // Exactly 2 optima: ascending and descending.
        assert_eq!(result.optima_count, 2);
        assert_eq!(result.evaluated, 40320);
    }

    #[test]
    fn exhaustive_matches_summarize_on_its_winner() {
        let grid = Grid::<2>::new(1).unwrap();
        let result = exhaustive_optimal(grid);
        let s = summarize(&result.best);
        assert_eq!(
            s.davg_numerator * result.davg_denominator,
            result.davg_numerator * s.davg_denominator
        );
    }

    #[test]
    #[should_panic(expected = "n ≤ 8")]
    fn exhaustive_rejects_large_grids() {
        exhaustive_optimal(Grid::<2>::new(2).unwrap());
    }

    #[test]
    fn anneal_finds_the_2x2_optimum() {
        let grid = Grid::<2>::new(1).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let start = PermutationCurve::random(grid, &mut rng).unwrap();
        let result = anneal(
            &start,
            AnnealConfig {
                iterations: 5_000,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(result.d_avg_equals_ratio(3, 2), "got {}", result.d_avg());
        result.best.validate_bijection().unwrap();
    }

    #[test]
    fn anneal_beats_or_matches_random_start_on_4x4() {
        let grid = Grid::<2>::new(2).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let start = PermutationCurve::random(grid, &mut rng).unwrap();
        let start_cost = summarize(&start).d_avg();
        let result = anneal(&start, AnnealConfig::default(), &mut rng);
        assert!(result.d_avg() <= start_cost + 1e-12);
        result.best.validate_bijection().unwrap();
        // The incremental cost bookkeeping must agree with a full recompute.
        let s = summarize(&result.best);
        assert_eq!(
            s.davg_numerator * result.davg_denominator,
            result.davg_numerator * s.davg_denominator,
            "incremental cost drifted from ground truth"
        );
    }

    #[test]
    fn anneal_result_respects_thm1_bound_and_comes_close_to_z() {
        // On the 4×4 grid the annealer should land between the Thm 1 bound
        // and the Z curve's stretch (Z is provably within 1.5× of optimal
        // asymptotically, and empirically near-optimal even at n = 16).
        let grid = Grid::<2>::new(2).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let start = PermutationCurve::identity(grid).unwrap();
        let result = anneal(&start, AnnealConfig::default(), &mut rng);
        let bound = crate::bounds::thm1_nn_stretch_lower_bound(2, 2);
        let z = summarize(&ZCurve::<2>::new(2).unwrap()).d_avg();
        assert!(result.d_avg() >= bound - 1e-12);
        assert!(
            result.d_avg() <= z + 1e-12,
            "annealer ({}) should not lose to Z ({z}) on a 4×4 grid",
            result.d_avg()
        );
    }
}
