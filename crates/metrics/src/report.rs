//! Lightweight tabular reports for the experiment harness.
//!
//! The harness regenerates every figure and validates every theorem of the
//! paper; its output is a sequence of [`Table`]s rendered either as aligned
//! plain text (for terminals) or GitHub-flavoured Markdown (for
//! `EXPERIMENTS.md`).

use std::fmt::Write as _;

/// A titled table with a header row.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Table title, shown above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row should have `headers.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Column widths for aligned rendering.
    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }

    /// Renders the table as aligned plain text.
    pub fn render_text(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths.iter()) {
                let pad = w - cell.chars().count();
                s.push_str("  ");
                s.push_str(cell);
                s.extend(std::iter::repeat_n(' ', pad));
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float with `prec` significant decimal places, trimming noise.
pub fn fmt_f64(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a ratio (e.g. measured / bound), flagging the interesting
/// magnitude range.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a `u128` with thousands separators for readability.
pub fn fmt_u128(v: u128) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    let chars: Vec<char> = digits.chars().collect();
    for (i, c) in chars.iter().enumerate() {
        if i > 0 && (chars.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_text() {
        let mut t = Table::new("demo", &["curve", "D^avg"]);
        t.push_row(vec!["Z".into(), "1.5".into()]);
        t.push_row(vec!["hilbert".into(), "1.25".into()]);
        let text = t.render_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("curve"));
        assert!(text.contains("hilbert"));
        // Aligned: both data rows start at the same column.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("md", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("### md"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_is_rejected() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_f64(1.23456, 3), "1.235");
        assert_eq!(fmt_ratio(1.5), "1.5000");
        assert_eq!(fmt_u128(0), "0");
        assert_eq!(fmt_u128(999), "999");
        assert_eq!(fmt_u128(1000), "1,000");
        assert_eq!(fmt_u128(1234567), "1,234,567");
    }
}
