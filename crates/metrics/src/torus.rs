//! Stretch metrics on the **torus** (periodic boundaries) — an extension
//! the paper's analysis makes natural.
//!
//! On the torus every cell has exactly `2d` nearest neighbors, which
//! removes the paper's boundary bookkeeping (`U₂`, `H₂`, `K₁`, `K₂` in the
//! Theorem 2/3 proofs) entirely:
//!
//! * `|N(α)| = 2d` for all `α`, so Lemma 3 collapses to the **equality**
//!   `D^avg_T(π) = (1/nd)·Σ_{NN_T} Δπ` — the metric *is* the edge sum.
//! * The simple curve's torus stretch has a clean exact closed form,
//!   `D^avg_T(S) = 2·(n−1)·n^{1−1/d}/(d·n)` — asymptotically **twice** its
//!   open-grid value: each axis gains `side^{d−1}` wraparound edges of
//!   curve length `(side−1)·side^{i−1}`.
//!
//! Periodic domains are the standard setting in the scientific-computing
//! applications the paper cites (particle simulations with periodic
//! boundary conditions), so the torus variant is also the more faithful
//! model for the `app-nbody` workloads.

use sfc_core::{Grid, Point, SpaceFillingCurve};

/// The `2d` torus neighbors of a cell (wraparound included; for `side = 2`
/// the up/down neighbors coincide and are both yielded, preserving the
/// `2d`-regular multigraph structure the equality above needs).
pub fn torus_neighbors<const D: usize>(
    grid: Grid<D>,
    p: Point<D>,
) -> impl Iterator<Item = Point<D>> {
    let side = grid.side() as u32;
    (0..D).flat_map(move |axis| {
        let c = p.coord(axis);
        let up = p.with_coord(axis, if c + 1 == side { 0 } else { c + 1 });
        let down = p.with_coord(axis, if c == 0 { side - 1 } else { c - 1 });
        [down, up]
    })
}

/// Exact torus stretch summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TorusStretchSummary {
    /// Curve name.
    pub curve: String,
    /// Number of cells.
    pub n: u128,
    /// `Σ` over the `d·n` unordered torus NN edges of `Δπ`.
    pub edge_sum: u128,
    /// `Σ_α δ^max_T(α)`.
    pub dmax_sum: u128,
}

impl TorusStretchSummary {
    /// `D^avg_T(π) = edge_sum / (n·d)` — exact (Lemma 3 is an equality on
    /// the torus).
    pub fn d_avg(&self, d: usize) -> f64 {
        self.edge_sum as f64 / (self.n as f64 * d as f64)
    }

    /// `D^max_T(π) = dmax_sum / n`.
    pub fn d_max(&self) -> f64 {
        self.dmax_sum as f64 / self.n as f64
    }

    /// Exact rational check for `D^avg_T` (cross-multiplied).
    pub fn d_avg_equals_ratio(&self, d: usize, num: u128, den: u128) -> bool {
        self.edge_sum * den == num * self.n * d as u128
    }
}

/// Computes the exact torus stretch metrics of a curve (`O(n·d)`).
pub fn summarize_torus<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> TorusStretchSummary {
    let grid = curve.grid();
    let mut double_edge_sum = 0u128;
    let mut dmax_sum = 0u128;
    for cell in grid.cells() {
        let idx = curve.index_of(cell);
        let mut max = 0u128;
        for nb in torus_neighbors(grid, cell) {
            let dist = idx.abs_diff(curve.index_of(nb));
            double_edge_sum += dist;
            max = max.max(dist);
        }
        dmax_sum += max;
    }
    TorusStretchSummary {
        curve: curve.name(),
        n: grid.n(),
        edge_sum: double_edge_sum / 2,
        dmax_sum,
    }
}

/// Exact closed form for the simple curve's torus stretch:
/// `D^avg_T(S) = 2·(n−1)·n^{1−1/d} / (d·n)`, returned as
/// `(numerator, denominator)`.
pub fn torus_simple_davg_exact(k: u32, d: usize) -> (u128, u128) {
    let n = crate::bounds::n_cells(k, d);
    let pow = crate::bounds::n_pow_1_minus_1_over_d(k, d);
    (2 * (n - 1) * pow, d as u128 * n)
}

/// A curve is **fiber-monotone** if its index is monotone along every
/// axis-parallel line of cells. The Z, simple and snake curves all are;
/// Gray and Hilbert are not.
///
/// For any fiber-monotone curve the cyclic sum of `|Δπ|` along a fiber
/// telescopes to `2·(max − min)` over that fiber, and summing over all
/// fibers of all axes gives the *same* torus edge sum for every such
/// curve: `Σ_{NN_T} Δπ = 2·side^{d−1}·(n−1)` (the Z curve's per-fiber
/// range is `dilate(side−1)·2^{d−i}` and `Σ_i 2^{d−i}·(n−1)/(2^d−1) =
/// n−1`, matching the simple curve's `Σ_i (side−1)·side^{i−1}` exactly).
///
/// Consequence: **all fiber-monotone curves have identical average torus
/// stretch** `D^avg_T = 2·side^{d−1}·(n−1)/(d·n)` — an exact equality the
/// tests verify for Z, simple and snake.
pub fn torus_fiber_monotone_edge_sum(k: u32, d: usize) -> u128 {
    let n = crate::bounds::n_cells(k, d);
    let pow = crate::bounds::n_pow_1_minus_1_over_d(k, d); // side^{d−1}
    2 * pow * (n - 1)
}

/// `true` iff the curve's index is monotone along every axis fiber
/// (exhaustive check, `O(n·d)`).
pub fn is_fiber_monotone<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> bool {
    let grid = curve.grid();
    let side = grid.side() as u32;
    for axis in 0..D {
        // Walk each fiber: cells with the axis coordinate 0, extended.
        for base in grid.cells().filter(|c| c.coord(axis) == 0) {
            let mut increasing = true;
            let mut decreasing = true;
            let mut prev = curve.index_of(base);
            for c in 1..side {
                let idx = curve.index_of(base.with_coord(axis, c));
                increasing &= idx > prev;
                decreasing &= idx < prev;
                prev = idx;
            }
            if !increasing && !decreasing {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{CurveKind, SimpleCurve, ZCurve};

    #[test]
    fn torus_neighbors_are_2d_regular() {
        let grid = Grid::<3>::new(2).unwrap();
        for cell in grid.cells() {
            let nbs: Vec<_> = torus_neighbors(grid, cell).collect();
            assert_eq!(nbs.len(), 6);
            for nb in nbs {
                // Torus distance 1: differ along one axis by 1 or side−1.
                let axis = cell.differing_axis(&nb).expect("one axis");
                let diff = cell.coord(axis).abs_diff(nb.coord(axis));
                assert!(diff == 1 || diff == 3);
            }
        }
    }

    #[test]
    fn wraparound_pairs() {
        let grid = Grid::<2>::new(2).unwrap();
        let corner = Point::new([0, 0]);
        let nbs: Vec<_> = torus_neighbors(grid, corner).collect();
        assert!(nbs.contains(&Point::new([3, 0])));
        assert!(nbs.contains(&Point::new([0, 3])));
        assert!(nbs.contains(&Point::new([1, 0])));
        assert!(nbs.contains(&Point::new([0, 1])));
    }

    #[test]
    fn side_two_torus_doubles_each_neighbor() {
        let grid = Grid::<2>::new(1).unwrap();
        let nbs: Vec<_> = torus_neighbors(grid, Point::new([0, 0])).collect();
        assert_eq!(nbs.len(), 4);
        // Up and down wrap to the same cell.
        assert_eq!(nbs[0], nbs[1]);
        assert_eq!(nbs[2], nbs[3]);
    }

    #[test]
    fn simple_curve_matches_closed_form() {
        for k in 1..=4u32 {
            let s = summarize_torus(&SimpleCurve::<2>::new(k).unwrap());
            let (num, den) = torus_simple_davg_exact(k, 2);
            assert!(
                s.d_avg_equals_ratio(2, num, den),
                "k={k}: {} vs {num}/{den}",
                s.d_avg(2)
            );
        }
        let s3 = summarize_torus(&SimpleCurve::<3>::new(2).unwrap());
        let (num, den) = torus_simple_davg_exact(2, 3);
        assert!(s3.d_avg_equals_ratio(3, num, den));
    }

    #[test]
    fn torus_stretch_dominates_open_grid_stretch_for_analytic_curves() {
        // Wraparound edges add long-range pairs for every analytic family
        // (their boundary cells map to distant curve positions).
        for kind in CurveKind::ALL {
            let c = kind.build::<2>(3).unwrap();
            let open = crate::nn_stretch::summarize(&c);
            let torus = summarize_torus(&c);
            assert!(
                torus.d_avg(2) >= open.d_avg() - 1e-9,
                "{kind}: torus {} < open {}",
                torus.d_avg(2),
                open.d_avg()
            );
        }
    }

    #[test]
    fn torus_simple_is_asymptotically_twice_open_simple() {
        let k = 8u32;
        let open = crate::nn_stretch::summarize_par(&SimpleCurve::<2>::new(k).unwrap());
        let torus = summarize_torus(&SimpleCurve::<2>::new(k).unwrap());
        let ratio = torus.d_avg(2) / open.d_avg();
        assert!((ratio - 2.0).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn fiber_monotone_classification() {
        assert!(is_fiber_monotone(&ZCurve::<2>::new(3).unwrap()));
        assert!(is_fiber_monotone(&SimpleCurve::<2>::new(3).unwrap()));
        assert!(is_fiber_monotone(
            &sfc_core::SnakeCurve::<2>::new(3).unwrap()
        ));
        assert!(is_fiber_monotone(&ZCurve::<3>::new(2).unwrap()));
        assert!(!is_fiber_monotone(
            &sfc_core::GrayCurve::<2>::new(3).unwrap()
        ));
        assert!(!is_fiber_monotone(
            &sfc_core::HilbertCurve::<2>::new(3).unwrap()
        ));
    }

    #[test]
    fn fiber_monotone_curves_share_the_exact_torus_edge_sum() {
        // The emergent identity: Z, simple and snake have identical torus
        // edge sums, equal to the closed form 2·side^{d−1}·(n−1).
        for k in 1..=4u32 {
            let expected = torus_fiber_monotone_edge_sum(k, 2);
            for kind in [CurveKind::Z, CurveKind::Simple, CurveKind::Snake] {
                let c = kind.build::<2>(k).unwrap();
                let s = summarize_torus(&c);
                assert_eq!(s.edge_sum, expected, "{kind} k={k}");
            }
            // And the non-fiber-monotone curves exceed it.
            for kind in [CurveKind::Gray, CurveKind::Hilbert] {
                let c = kind.build::<2>(k).unwrap();
                let s = summarize_torus(&c);
                assert!(s.edge_sum >= expected, "{kind} k={k}");
            }
        }
        let expected3 = torus_fiber_monotone_edge_sum(2, 3);
        for kind in [CurveKind::Z, CurveKind::Simple, CurveKind::Snake] {
            let c = kind.build::<3>(2).unwrap();
            assert_eq!(summarize_torus(&c).edge_sum, expected3, "{kind} d=3");
        }
    }

    #[test]
    fn torus_dmax_at_least_davg() {
        let z = ZCurve::<2>::new(3).unwrap();
        let s = summarize_torus(&z);
        assert!(s.d_max() >= s.d_avg(2));
    }

    #[test]
    fn lemma3_is_an_equality_on_the_torus() {
        // D^avg_T literally equals edge_sum/(n·d): check via independent
        // per-cell averaging.
        let z = ZCurve::<2>::new(2).unwrap();
        let grid = z.grid();
        let mut total = 0.0;
        for cell in grid.cells() {
            let idx = z.index_of(cell);
            let sum: u128 = torus_neighbors(grid, cell)
                .map(|nb| idx.abs_diff(z.index_of(nb)))
                .sum();
            total += sum as f64 / 4.0;
        }
        let per_cell = total / 16.0;
        let s = summarize_torus(&z);
        assert!((per_cell - s.d_avg(2)).abs() < 1e-12);
    }
}
