//! Exact closed-form computation of `D^max(Z)` — new analysis beyond the
//! paper.
//!
//! The paper proves `D^max(S) = n^{1−1/d}` exactly (Proposition 2) and
//! notes a "larger gap between the lower bound and the upper bound for the
//! average-maximum NN-stretch" as an open question (Section VI). This
//! module closes the measurement side of that question for the Z curve
//! with an `O((k·d)²)` exact formula, validated against brute-force
//! enumeration.
//!
//! ## Derivation
//!
//! For the Z curve, the distance of the nearest-neighbor edge along the
//! paper's dimension `i` whose lower coordinate ends in `j−1` one-bits is
//! `F_i(j) = 2^{jd−i} − Σ_{ℓ=1}^{j−1} 2^{ℓd−i}` (Lemma 5), strictly
//! increasing in `jd − i`. A cell `α` with coordinate `c` along dimension
//! `i` has an *up*-edge of class `to(c)+1` (trailing ones) and a
//! *down*-edge of class `tz(c)+1` (trailing zeros of `c` = trailing ones
//! of `c−1`), so its largest edge along dimension `i` is
//! `M_i(c) = F_i(max(to(c), tz(c)) + 1)`, except at the two boundary
//! coordinates where only one edge exists and the class is 1.
//!
//! Counting coordinates per class: `N(1) = 2` (the boundaries) and
//! `N(j) = 2^{k−j+1}` for `2 ≤ j ≤ k`. Since coordinates are independent
//! across axes, `Σ_α δ^max_Z(α) = Σ_α max_i M_i(c_i)` follows from the
//! product of per-axis CDFs over the sorted distinct values `F_i(j)`.

use crate::bounds::n_cells;

/// The Z-curve edge distance `F_i(j)` for the paper's dimension `i` and
/// trailing-ones class `j` (same value as
/// [`ZCurve::nn_edge_distance`](sfc_core::ZCurve::nn_edge_distance), as a
/// pure function of `(d, i, j)`).
pub fn edge_distance_class(d: usize, i: usize, j: usize) -> u128 {
    debug_assert!((1..=d).contains(&i));
    debug_assert!(j >= 1);
    let mut dist: u128 = 1u128 << (j * d - i);
    for l in 1..j {
        dist -= 1u128 << (l * d - i);
    }
    dist
}

/// Number of coordinates `c ∈ [0, 2^k)` whose largest incident edge along
/// a fixed axis has class `j`: `N(1) = 2`, `N(j) = 2^{k−j+1}` for
/// `2 ≤ j ≤ k`. (For `k = 0` the single cell has no edges.)
pub fn class_count(k: u32, j: usize) -> u128 {
    debug_assert!((1..=k as usize).contains(&j));
    if j == 1 {
        if k == 1 {
            // Side 2: both coordinates are boundaries.
            2
        } else {
            2
        }
    } else {
        1u128 << (k as usize - j + 1)
    }
}

/// Exact `Σ_α δ^max_Z(α)` over the whole universe, in closed form.
///
/// `D^max(Z) = dmax_z_sum(k, d) / n`.
///
/// # Panics
/// Panics if `k·d > 60` (the sum would overflow `u128`); use
/// [`dmax_z_normalized`] for larger grids.
pub fn dmax_z_sum(k: u32, d: usize) -> u128 {
    assert!(k >= 1, "a single-cell universe has no neighbors");
    assert!(
        (k as usize) * d <= 60,
        "dmax_z_sum is exact up to k·d = 60; use dmax_z_normalized beyond"
    );
    // Distinct per-axis values with their per-axis counts, sorted
    // ascending by value. Value F_i(j) is monotone in (j·d − i), so
    // sorting by that exponent sorts by value.
    let mut entries: Vec<(u128, usize, u128)> = Vec::new(); // (value, axis0, count)
    for axis in 0..d {
        let i = axis + 1;
        for j in 1..=k as usize {
            entries.push((edge_distance_class(d, i, j), axis, class_count(k, j)));
        }
    }
    entries.sort_unstable_by_key(|&(v, _, _)| v);

    let side = 1u128 << k;
    // cdf[axis] = number of coordinates whose M_i value is ≤ current value.
    let mut cdf = vec![0u128; d];
    let mut total = 0u128;
    let mut prev_cells_leq = 0u128; // Π cdf at the previous value
    for (value, axis, count) in entries {
        cdf[axis] += count;
        debug_assert!(cdf[axis] <= side);
        let cells_leq: u128 = cdf.iter().product();
        // Cells whose maximum is exactly `value`.
        let exactly = cells_leq - prev_cells_leq;
        total += value * exactly;
        prev_cells_leq = cells_leq;
    }
    debug_assert_eq!(prev_cells_leq, n_cells(k, d));
    total
}

/// `D^max(Z) / n^{1−1/d}` in `f64`, exact for `k·d ≤ 60`.
///
/// Empirically this converges — monotonically from below — to exactly
/// **2** in every dimension `d ≥ 2` (verified to 7 decimals at `k = 28`,
/// d = 2 and `k = 18`, d = 3): `D^max(Z) ~ 2·n^{1−1/d}`. Compare
/// Proposition 2's exact `D^max(S) = n^{1−1/d}`: the Z curve is
/// asymptotically exactly **2× worse than the trivial curve** on the
/// average-maximum metric, while matching it on the average-average
/// metric (Theorems 2–3) — new quantitative input to the paper's
/// Section VI open question on the `D^max` gap.
pub fn dmax_z_normalized(k: u32, d: usize) -> f64 {
    let sum = dmax_z_sum(k, d);
    let n = n_cells(k, d) as f64;
    let pow = crate::bounds::n_pow_1_minus_1_over_d(k, d) as f64;
    sum as f64 / n / pow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn_stretch::summarize;
    use sfc_core::ZCurve;

    #[test]
    fn edge_distance_class_matches_core() {
        let z2 = ZCurve::<2>::new(5).unwrap();
        for axis in 0..2 {
            for c in 0..31u32 {
                let j = (c.trailing_ones() + 1) as usize;
                assert_eq!(
                    z2.nn_edge_distance(axis, c),
                    edge_distance_class(2, axis + 1, j),
                    "axis {axis} c {c}"
                );
            }
        }
    }

    #[test]
    fn class_counts_partition_the_side() {
        for k in 1..=8u32 {
            let total: u128 = (1..=k as usize).map(|j| class_count(k, j)).sum();
            assert_eq!(total, 1u128 << k, "k = {k}");
        }
        assert_eq!(class_count(4, 1), 2);
        assert_eq!(class_count(4, 2), 8);
        assert_eq!(class_count(4, 4), 2);
    }

    #[test]
    fn closed_form_matches_enumeration() {
        macro_rules! check {
            ($d:literal, $k:expr) => {
                let z = ZCurve::<$d>::new($k).unwrap();
                let measured = summarize(&z).dmax_sum;
                let closed = dmax_z_sum($k, $d);
                assert_eq!(measured, closed, "d={} k={}", $d, $k);
            };
        }
        check!(1, 1);
        check!(1, 4);
        check!(2, 1);
        check!(2, 2);
        check!(2, 3);
        check!(2, 4);
        check!(2, 5);
        check!(3, 1);
        check!(3, 2);
        check!(3, 3);
        check!(4, 1);
        check!(4, 2);
    }

    #[test]
    fn one_dimensional_z_has_dmax_one() {
        // d = 1: every edge distance is 1, so Σ δ^max = n.
        for k in 1..=6u32 {
            assert_eq!(dmax_z_sum(k, 1), 1u128 << k);
            assert!((dmax_z_normalized(k, 1) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_value_converges_to_two() {
        // The new result: D^max(Z)/n^{1−1/d} increases monotonically to
        // exactly 2 — in both two and three dimensions.
        let mut prev = 0.0;
        let mut last = 0.0;
        for k in 1..=28u32 {
            let v = dmax_z_normalized(k, 2);
            assert!(v >= prev - 1e-12, "d=2 k={k}: {v} < {prev}");
            prev = v;
            last = v;
        }
        assert!((last - 2.0).abs() < 1e-6, "d=2 limit: {last}");

        let mut prev = 0.0;
        let mut last = 0.0;
        for k in 1..=18u32 {
            let v = dmax_z_normalized(k, 3);
            assert!(v >= prev - 1e-12, "d=3 k={k}: {v} < {prev}");
            prev = v;
            last = v;
        }
        assert!((last - 2.0).abs() < 1e-4, "d=3 limit: {last}");
        // Z is asymptotically exactly 2× worse than the simple curve
        // (Proposition 2: constant 1) on the maximum metric.
    }

    #[test]
    #[should_panic(expected = "k·d = 60")]
    fn oversized_exact_sum_is_loud() {
        dmax_z_sum(31, 2);
    }
}
