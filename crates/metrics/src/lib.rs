//! # sfc-metrics — proximity-preservation metrics for space filling curves
//!
//! This crate implements every metric, bound and analysis of
//! *Xu & Tirthapura, "A Lower Bound on Proximity Preservation by Space
//! Filling Curves", IEEE IPDPS 2012*:
//!
//! * [`nn_stretch`] — the nearest-neighbor stretch metrics
//!   `δ^avg_π(α)`, `δ^max_π(α)`, `D^avg(π)`, `D^max(π)`
//!   (Definitions 1–4), computed **exactly** (integer arithmetic, no
//!   floating-point accumulation error) with sequential and Rayon-parallel
//!   drivers.
//! * [`all_pairs`] — the all-pairs stretch `str^{avg,M}` and `str^{avg,E}`
//!   (Section V.B), plus the universal pair-distance sum `S_{A'}(π)`
//!   (Lemma 2).
//! * [`lambda`] — the `Λ_i(Z)` / `G_{i,j}` decomposition driving the exact
//!   analysis of the Z curve (Lemma 5).
//! * [`decomposition`] — the nearest-neighbor decomposition `p(α, β)` and
//!   the edge-multiplicity count of Lemma 4.
//! * [`bounds`] — closed forms for every theorem, lemma and proposition in
//!   the paper, used as the comparison targets of the experiment harness.
//! * [`sampling`] — Monte-Carlo estimators (with normal-approximation
//!   confidence intervals) for grids too large to enumerate.
//! * [`clustering`] — the clustering metric of Moon et al. (discussed in
//!   the paper's related work) for contrast with the stretch.
//! * [`optimal`] — exhaustive and simulated-annealing searches for
//!   low-stretch curves, probing the gap between the paper's lower and
//!   upper bounds.
//! * [`report`] — small table/report rendering used by the experiment
//!   harness.
//!
//! ## Exact arithmetic
//!
//! `D^avg(π) = (1/n) Σ_α δ^avg_π(α)` is a sum of rationals whose
//! denominators `|N(α)|` all divide `L = lcm(d, …, 2d)`. The exact drivers
//! accumulate `Σ_α (L / |N(α)|) · Σ_β Δπ(α, β)` in `u128`, so
//! `D^avg = total / (L·n)` is exact, parallel and sequential runs agree
//! bit-for-bit, and the paper's hand-worked values (e.g. Figure 1's
//! `D^avg(π₁) = 1.5`) are reproduced without tolerance fudging.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod all_pairs;
pub mod bounds;
pub mod clustering;
pub mod decomposition;
pub mod dmax_z;
pub mod histogram;
pub mod lambda;
pub mod nn_stretch;
pub mod optimal;
pub mod report;
pub mod sampling;
pub mod torus;

pub use nn_stretch::{NnStretchSummary, StretchRatio};
pub use report::Table;
