//! The clustering metric of Moon, Jagadish, Faloutsos & Saltz (paper's
//! related work, reference [18]).
//!
//! For an axis-aligned box query, the **cluster count** is the number of
//! maximal runs of consecutive curve indices needed to cover the box —
//! i.e. the number of disk seeks a linear storage layout would pay. The
//! paper contrasts this metric with the stretch; implementing both lets the
//! experiment harness show that they rank curves differently (Hilbert wins
//! on clustering, while Theorem 2 shows Z is already near-optimal for
//! NN-stretch).

use rand::Rng;
use sfc_core::{CurveIndex, Point, SpaceFillingCurve};

/// The number of maximal consecutive index runs covering the box
/// `[corner, corner + size)` (all axes the same extent).
///
/// # Panics
/// Panics if the box does not fit in the grid.
pub fn clusters_for_box<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    corner: Point<D>,
    size: u64,
) -> u64 {
    let indices = box_indices(curve, corner, size);
    count_runs(&indices)
}

/// The sorted curve indices of all cells in the box `[corner, corner+size)`.
pub fn box_indices<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    corner: Point<D>,
    size: u64,
) -> Vec<CurveIndex> {
    let grid = curve.grid();
    assert!(size >= 1, "box size must be at least 1");
    for axis in 0..D {
        assert!(
            u64::from(corner.coord(axis)) + size <= grid.side(),
            "box exceeds grid along axis {axis}"
        );
    }
    let volume = (size as usize).pow(D as u32);
    let mut indices = Vec::with_capacity(volume);
    // Odometer over the box.
    let mut offsets = [0u64; D];
    loop {
        let mut coords = corner.coords();
        for (c, off) in coords.iter_mut().zip(offsets.iter()) {
            *c += *off as u32;
        }
        indices.push(curve.index_of(Point::new(coords)));
        // Increment odometer.
        let mut done = true;
        for off in offsets.iter_mut() {
            *off += 1;
            if *off < size {
                done = false;
                break;
            }
            *off = 0;
        }
        if done {
            break;
        }
    }
    indices.sort_unstable();
    indices
}

/// Counts maximal runs of consecutive values in a sorted slice.
fn count_runs(sorted: &[CurveIndex]) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let mut runs = 1u64;
    for w in sorted.windows(2) {
        if w[1] != w[0] + 1 {
            runs += 1;
        }
    }
    runs
}

/// The exact average cluster count over **all** placements of a `size^d`
/// box. Cost: `O((side−size+1)^d · size^d)` curve evaluations.
pub fn average_clusters_exact<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    size: u64,
) -> f64 {
    let grid = curve.grid();
    let positions_per_axis = grid.side() - size + 1;
    let mut total = 0u128;
    let mut count = 0u128;
    // Odometer over corner positions.
    let mut corner = [0u64; D];
    loop {
        let mut coords = [0u32; D];
        for (c, v) in coords.iter_mut().zip(corner.iter()) {
            *c = *v as u32;
        }
        total += u128::from(clusters_for_box(curve, Point::new(coords), size));
        count += 1;
        let mut done = true;
        for c in corner.iter_mut() {
            *c += 1;
            if *c < positions_per_axis {
                done = false;
                break;
            }
            *c = 0;
        }
        if done {
            break;
        }
    }
    total as f64 / count as f64
}

/// Monte-Carlo average cluster count over uniformly random box placements.
pub fn average_clusters_sampled<const D: usize, C: SpaceFillingCurve<D>, R: Rng + ?Sized>(
    curve: &C,
    size: u64,
    samples: u64,
    rng: &mut R,
) -> crate::sampling::Estimate {
    let grid = curve.grid();
    let positions_per_axis = grid.side() - size + 1;
    let mut acc = 0.0f64;
    let mut acc_sq = 0.0f64;
    for _ in 0..samples {
        let mut coords = [0u32; D];
        for c in coords.iter_mut() {
            *c = rng.gen_range(0..positions_per_axis) as u32;
        }
        let v = clusters_for_box(curve, Point::new(coords), size) as f64;
        acc += v;
        acc_sq += v * v;
    }
    let mean = acc / samples as f64;
    let var = (acc_sq / samples as f64 - mean * mean).max(0.0) * samples as f64
        / (samples.saturating_sub(1).max(1)) as f64;
    crate::sampling::Estimate {
        mean,
        std_error: (var / samples as f64).sqrt(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sfc_core::{CurveKind, HilbertCurve, SnakeCurve, ZCurve};

    #[test]
    fn single_cell_box_is_one_cluster() {
        let z = ZCurve::<2>::new(3).unwrap();
        for p in z.grid().cells() {
            assert_eq!(clusters_for_box(&z, p, 1), 1);
        }
    }

    #[test]
    fn whole_grid_box_is_one_cluster() {
        for kind in CurveKind::ALL {
            let c = kind.build::<2>(2).unwrap();
            assert_eq!(
                clusters_for_box(&c, Point::new([0, 0]), 4),
                1,
                "{kind}: the whole universe is one contiguous index range"
            );
        }
    }

    #[test]
    fn cluster_count_bounded_by_box_volume() {
        let z = ZCurve::<2>::new(3).unwrap();
        for corner in [[0u32, 0], [2, 3], [4, 4]] {
            let c = clusters_for_box(&z, Point::new(corner), 3);
            assert!((1..=9).contains(&c));
        }
    }

    #[test]
    fn snake_rows_cluster_perfectly() {
        // A 1-row-high box aligned with the snake's sweep direction is
        // always a single run.
        let s = SnakeCurve::<2>::new(3).unwrap();
        for x in 0..5u32 {
            for y in 0..8u32 {
                // width 4, height 1 box: cells (x..x+4, y).
                let indices: Vec<_> = (0..4)
                    .map(|dx| s.index_of(Point::new([x + dx, y])))
                    .collect();
                let mut sorted = indices.clone();
                sorted.sort_unstable();
                assert_eq!(count_runs(&sorted), 1, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn z_quadrant_aligned_boxes_are_single_clusters() {
        // A 2^j-aligned box of side 2^j is exactly one Z-order subtree.
        let z = ZCurve::<2>::new(3).unwrap();
        for qx in 0..4u32 {
            for qy in 0..4u32 {
                let corner = Point::new([qx * 2, qy * 2]);
                assert_eq!(clusters_for_box(&z, corner, 2), 1);
            }
        }
    }

    #[test]
    fn hilbert_clusters_no_worse_than_z_on_average() {
        // Moon et al.'s empirical/analytic finding: Hilbert clusters better
        // than Z for square range queries.
        let z = ZCurve::<2>::new(3).unwrap();
        let h = HilbertCurve::<2>::new(3).unwrap();
        for q in [2u64, 3, 4] {
            let az = average_clusters_exact(&z, q);
            let ah = average_clusters_exact(&h, q);
            assert!(ah <= az + 1e-12, "q={q}: hilbert {ah} > z {az}");
        }
    }

    #[test]
    fn sampled_average_matches_exact() {
        let z = ZCurve::<2>::new(3).unwrap();
        let exact = average_clusters_exact(&z, 2);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let est = average_clusters_sampled(&z, 2, 5_000, &mut rng);
        assert!(est.within(exact, 5.0), "exact {exact} vs {est:?}");
    }

    #[test]
    #[should_panic(expected = "exceeds grid")]
    fn out_of_bounds_box_is_rejected() {
        let z = ZCurve::<2>::new(2).unwrap();
        clusters_for_box(&z, Point::new([3, 0]), 2);
    }
}
