//! All-pairs stretch metrics (paper, Section V.B) and the universal pair
//! sum `S_{A'}` (Lemma 2).
//!
//! * `str^{avg,M}(π) = (2/n(n−1)) Σ_{(α,β)∈A} Δπ(α,β)/Δ(α,β)` — Manhattan.
//! * `str^{avg,E}(π)` — the same with the Euclidean metric in the
//!   denominator.
//! * `S_{A'}(π) = Σ_{(α,β)∈A'} Δπ(α,β)` — Lemma 2 proves this equals
//!   `(n−1)n(n+1)/3` for **every** bijection; measuring it is therefore a
//!   strong self-test of any curve implementation.
//!
//! Exact computation is `O(n²)`; [`all_pairs_exact_par`] parallelises over
//! the first element of the pair with Rayon. For larger grids use the
//! Monte-Carlo estimators in [`crate::sampling`].

use rayon::prelude::*;
use sfc_core::{Point, SpaceFillingCurve};

/// Exact all-pairs stretch values of a curve.
#[derive(Debug, Clone, PartialEq)]
pub struct AllPairsStretch {
    /// Curve name (for reports).
    pub curve: String,
    /// Number of cells.
    pub n: u128,
    /// `str^{avg,M}(π)`: average stretch under the Manhattan metric.
    pub manhattan: f64,
    /// `str^{avg,E}(π)`: average stretch under the Euclidean metric.
    pub euclidean: f64,
    /// `max_{(α,β)} Δπ/Δ` — the per-pair Manhattan ratio bounded by
    /// Lemma 7 for the simple curve.
    pub max_ratio_manhattan: f64,
    /// `max_{(α,β)} Δπ/Δ_E` — the per-pair Euclidean ratio.
    pub max_ratio_euclidean: f64,
    /// Measured `S_{A'}(π) = Σ_{ordered pairs} Δπ` (Lemma 2 says this is
    /// `(n−1)n(n+1)/3` regardless of the curve).
    pub sa_prime: u128,
}

/// Caches each cell's curve index and coordinates in row-major rank order,
/// so the `O(n²)` pair loop performs no curve evaluations. Encoding goes
/// through the curve's batch kernel
/// ([`SpaceFillingCurve::index_of_batch`]), which is substantially faster
/// than per-cell `index_of` for the table-driven curves.
fn materialize<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> Vec<(Point<D>, u128)> {
    let cells: Vec<Point<D>> = curve.grid().cells().collect();
    let mut keys = Vec::new();
    curve.index_of_batch(&cells, &mut keys);
    cells.into_iter().zip(keys).collect()
}

#[derive(Debug, Clone, Copy, Default)]
struct PairAccum {
    manhattan_sum: f64,
    euclidean_sum: f64,
    max_ratio_m: f64,
    max_ratio_e: f64,
    curve_dist_sum: u128,
}

impl PairAccum {
    fn merge(self, o: Self) -> Self {
        PairAccum {
            manhattan_sum: self.manhattan_sum + o.manhattan_sum,
            euclidean_sum: self.euclidean_sum + o.euclidean_sum,
            max_ratio_m: self.max_ratio_m.max(o.max_ratio_m),
            max_ratio_e: self.max_ratio_e.max(o.max_ratio_e),
            curve_dist_sum: self.curve_dist_sum + o.curve_dist_sum,
        }
    }
}

fn row_accum<const D: usize>(cells: &[(Point<D>, u128)], i: usize) -> PairAccum {
    let (pi, idx_i) = cells[i];
    let mut acc = PairAccum::default();
    for &(pj, idx_j) in &cells[i + 1..] {
        let curve_dist = idx_i.abs_diff(idx_j);
        let man = pi.manhattan(&pj);
        let euc = pi.euclidean(&pj);
        let cd = curve_dist as f64;
        let rm = cd / man as f64;
        let re = cd / euc;
        acc.manhattan_sum += rm;
        acc.euclidean_sum += re;
        acc.max_ratio_m = acc.max_ratio_m.max(rm);
        acc.max_ratio_e = acc.max_ratio_e.max(re);
        acc.curve_dist_sum += curve_dist;
    }
    acc
}

fn finish<const D: usize, C: SpaceFillingCurve<D>>(curve: &C, acc: PairAccum) -> AllPairsStretch {
    let n = curve.grid().n();
    let pairs = (n * (n - 1) / 2) as f64;
    AllPairsStretch {
        curve: curve.name(),
        n,
        manhattan: acc.manhattan_sum / pairs,
        euclidean: acc.euclidean_sum / pairs,
        max_ratio_manhattan: acc.max_ratio_m,
        max_ratio_euclidean: acc.max_ratio_e,
        // Unordered sum doubled = ordered sum.
        sa_prime: acc.curve_dist_sum * 2,
    }
}

/// Guard: exact all-pairs work is `O(n²)`; refuse absurd sizes loudly.
fn check_enumerable(n: u128) -> usize {
    assert!(
        n <= 1 << 17,
        "exact all-pairs stretch is O(n²); n = {n} is too large — use sampling::estimate_all_pairs"
    );
    n as usize
}

/// Exact all-pairs stretch, sequential. Cost `O(n²)`.
pub fn all_pairs_exact<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> AllPairsStretch {
    let n = check_enumerable(curve.grid().n());
    let cells = materialize(curve);
    let acc = (0..n)
        .map(|i| row_accum(&cells, i))
        .fold(PairAccum::default(), PairAccum::merge);
    finish(curve, acc)
}

/// Exact all-pairs stretch, Rayon-parallel over the first pair element.
///
/// The integer field `sa_prime` matches [`all_pairs_exact`] exactly; the
/// floating-point averages agree up to summation-order rounding.
pub fn all_pairs_exact_par<const D: usize, C: SpaceFillingCurve<D> + Sync>(
    curve: &C,
) -> AllPairsStretch {
    let n = check_enumerable(curve.grid().n());
    let cells = materialize(curve);
    let acc = (0..n)
        .into_par_iter()
        .map(|i| row_accum(&cells, i))
        .reduce(PairAccum::default, PairAccum::merge);
    finish(curve, acc)
}

/// Measured `S_{A'}(π) = Σ_{(α,β)∈A'} Δπ(α,β)` alone (cheaper than the full
/// stretch pass, still `O(n²)`).
pub fn sa_prime_sum<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> u128 {
    let n = check_enumerable(curve.grid().n());
    let cells: Vec<Point<D>> = curve.grid().cells().collect();
    let mut indices = Vec::new();
    curve.index_of_batch(&cells, &mut indices);
    let mut sum = 0u128;
    for i in 0..n {
        for j in i + 1..n {
            sum += indices[i].abs_diff(indices[j]);
        }
    }
    sum * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use rand::SeedableRng;
    use sfc_core::{CurveKind, Grid, PermutationCurve, SimpleCurve};

    #[test]
    fn lemma2_sa_prime_is_curve_independent() {
        // Every curve family and random bijections all produce exactly
        // (n−1)n(n+1)/3.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for kind in CurveKind::ALL {
            let c = kind.build::<2>(2).unwrap();
            let expected = bounds::lemma2_sa_prime(16);
            assert_eq!(sa_prime_sum(&c), expected, "{kind}");
            assert_eq!(all_pairs_exact(&c).sa_prime, expected, "{kind}");
        }
        let grid = Grid::<2>::new(2).unwrap();
        for _ in 0..5 {
            let c = PermutationCurve::random(grid, &mut rng).unwrap();
            assert_eq!(sa_prime_sum(&c), bounds::lemma2_sa_prime(16));
        }
    }

    #[test]
    fn prop3_lower_bounds_hold_for_all_curves() {
        for kind in CurveKind::ALL {
            for k in 1..=2u32 {
                let c = kind.build::<2>(k).unwrap();
                let s = all_pairs_exact(&c);
                let lower_m = bounds::prop3_all_pairs_lower_manhattan(k, 2);
                let lower_e = bounds::prop3_all_pairs_lower_euclidean(k, 2);
                assert!(
                    s.manhattan >= lower_m - 1e-9,
                    "{kind} k={k}: str_M {} < {lower_m}",
                    s.manhattan
                );
                assert!(
                    s.euclidean >= lower_e - 1e-9,
                    "{kind} k={k}: str_E {} < {lower_e}",
                    s.euclidean
                );
            }
        }
    }

    #[test]
    fn prop4_upper_bounds_hold_for_simple_curve() {
        for k in 1..=3u32 {
            let s2 = all_pairs_exact(&SimpleCurve::<2>::new(k).unwrap());
            assert!(s2.manhattan <= bounds::prop4_all_pairs_upper_manhattan(k, 2) + 1e-9);
            assert!(s2.euclidean <= bounds::prop4_all_pairs_upper_euclidean(k, 2) + 1e-9);
        }
        let s3 = all_pairs_exact(&SimpleCurve::<3>::new(1).unwrap());
        assert!(s3.manhattan <= bounds::prop4_all_pairs_upper_manhattan(1, 3) + 1e-9);
        assert!(s3.euclidean <= bounds::prop4_all_pairs_upper_euclidean(1, 3) + 1e-9);
    }

    #[test]
    fn lemma7_per_pair_ratio_bound_for_simple_curve() {
        // Lemma 7: Δ_S/Δ ≤ n^{1−1/d} and Δ_S/Δ_E ≤ √2·n^{1−1/d} for every
        // pair — so the maxima obey the same bounds.
        for k in 1..=3u32 {
            let s = all_pairs_exact(&SimpleCurve::<2>::new(k).unwrap());
            let cap = bounds::n_pow_1_minus_1_over_d(k, 2) as f64;
            assert!(s.max_ratio_manhattan <= cap + 1e-9, "k={k}");
            assert!(
                s.max_ratio_euclidean <= std::f64::consts::SQRT_2 * cap + 1e-9,
                "k={k}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let c = CurveKind::Z.build::<2>(3).unwrap();
        let seq = all_pairs_exact(&c);
        let par = all_pairs_exact_par(&c);
        assert_eq!(seq.sa_prime, par.sa_prime);
        assert!((seq.manhattan - par.manhattan).abs() < 1e-9);
        assert!((seq.euclidean - par.euclidean).abs() < 1e-9);
        assert_eq!(seq.max_ratio_manhattan, par.max_ratio_manhattan);
        assert_eq!(seq.max_ratio_euclidean, par.max_ratio_euclidean);
    }

    #[test]
    fn euclidean_stretch_at_least_manhattan_stretch() {
        // Δ_E ≤ Δ pointwise, so Δπ/Δ_E ≥ Δπ/Δ and the averages order the
        // same way.
        for kind in CurveKind::ALL {
            let c = kind.build::<2>(2).unwrap();
            let s = all_pairs_exact(&c);
            assert!(s.euclidean >= s.manhattan - 1e-12, "{kind}");
        }
    }

    #[test]
    fn two_by_two_hand_computation() {
        // On the 2×2 grid with π₁ (order C,A,B,D): pairs and their Δπ/Δ:
        // A-C: |1-0|/1 = 1;  A-D: |1-3|/1 = 2;  A-B: |1-2|/2 = 0.5
        // C-D: |0-3|/2 = 1.5; C-B: |0-2|/1 = 2;  B-D: |2-3|/1 = 1
        // mean = (1 + 2 + 0.5 + 1.5 + 2 + 1)/6 = 8/6.
        let pi1 = PermutationCurve::figure1_pi1();
        let s = all_pairs_exact(&pi1);
        assert!((s.manhattan - 8.0 / 6.0).abs() < 1e-12, "{}", s.manhattan);
        // Euclidean: diagonal pairs have Δ_E = √2:
        // (1 + 2 + 1/√2 + 3/√2 + 2 + 1)/6.
        let expected_e = (1.0 + 2.0 + 1.0 / 2f64.sqrt() + 3.0 / 2f64.sqrt() + 2.0 + 1.0) / 6.0;
        assert!((s.euclidean - expected_e).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_exact_computation_is_rejected() {
        let c = CurveKind::Z.build::<2>(10).unwrap(); // n = 2^20
        let _ = all_pairs_exact(&c);
    }
}
