//! The `Λ_i(Z)` decomposition of the Z curve's edge sum (paper, Lemma 5).
//!
//! The paper partitions the nearest-neighbor edge set `NN_d` into groups
//! `G_i` (pairs differing along dimension `i`), and further into `G_{i,j}`
//! (pairs whose lower coordinate along dimension `i` ends in `j−1` one-bits
//! followed by a zero). Within `G_{i,j}` every edge has the *same* curve
//! distance, which makes `Λ_i(Z) = Σ_{G_i} Δ_Z` computable in closed form:
//!
//! `Λ_i(Z) = Σ_{j=1}^{k} |G_{i,j}| · (2^{jd−i} − Σ_{ℓ=1}^{j−1} 2^{ℓd−i})`
//! with `|G_{i,j}| = 2^{k−j} · n^{1−1/d}`,
//!
//! and Lemma 5 states `Λ_i(Z)/n^{2−1/d} → 2^{d−i}/(2^d − 1)`.
//!
//! This module computes `Λ_i` three independent ways — brute-force
//! enumeration, per-coordinate aggregation, and the closed form above — and
//! the tests pin them against each other.

use sfc_core::{SpaceFillingCurve, ZCurve};

/// `Λ_i(Z)` by brute-force enumeration of every edge in `G_i`
/// (`i = axis + 1` in the paper's 1-based dimension numbering).
///
/// Cost: `O(n)` curve evaluations. Intended for tests and small grids.
pub fn lambda_measured_brute<const D: usize>(z: &ZCurve<D>, axis: usize) -> u128 {
    let grid = z.grid();
    grid.nn_edges()
        .filter(|&(_, _, a)| a == axis)
        .map(|(p, q, _)| z.curve_distance(p, q))
        .sum()
}

/// `Λ_i(Z)` by per-coordinate aggregation: the curve distance of a
/// `G_i`-edge depends only on its lower coordinate `c` along the axis, and
/// each `c` occurs `side^{d−1}` times.
///
/// Cost: `O(side)` — usable far beyond enumerable grids.
pub fn lambda_measured<const D: usize>(z: &ZCurve<D>, axis: usize) -> u128 {
    let grid = z.grid();
    let multiplicity = grid.n() / u128::from(grid.side()); // side^{d−1}
    let mut sum = 0u128;
    for c in 0..(grid.side() - 1) as u32 {
        sum += z.nn_edge_distance(axis, c);
    }
    sum * multiplicity
}

/// `Λ_i(Z)` by the closed form in the proof of Lemma 5.
///
/// `i` is the paper's 1-based dimension (`i = axis + 1`).
pub fn lambda_closed_form(k: u32, d: usize, i: usize) -> u128 {
    assert!((1..=d).contains(&i), "dimension index i must be in 1..=d");
    let k = k as usize;
    let mut total = 0u128;
    for j in 1..=k {
        // |G_{i,j}| = 2^{k−j} · 2^{k(d−1)}.
        let group_size = 1u128 << (k - j + k * (d - 1));
        // Δ_Z on the group: 2^{jd−i} − Σ_{ℓ=1}^{j−1} 2^{ℓd−i}.
        let mut dist = 1u128 << (j * d - i);
        for l in 1..j {
            dist -= 1u128 << (l * d - i);
        }
        total += group_size * dist;
    }
    total
}

/// The size of the group `G_{i,j}`: `2^{k−j} · n^{1−1/d}` (independent of
/// `i`).
pub fn group_size(k: u32, d: usize, j: usize) -> u128 {
    assert!((1..=k as usize).contains(&j));
    1u128 << (k as usize - j + k as usize * (d - 1))
}

/// The normalized ratio `Λ_i(Z) / n^{2−1/d}`, which Lemma 5 proves
/// converges to [`lemma5_lambda_limit`](crate::bounds::lemma5_lambda_limit)
/// `= 2^{d−i}/(2^d−1)`.
pub fn lambda_normalized(k: u32, d: usize, i: usize) -> f64 {
    let lambda = lambda_closed_form(k, d, i);
    // n^{2−1/d} = 2^{k(2d−1)}.
    let norm = 1u128 << (k as usize * (2 * d - 1));
    lambda as f64 / norm as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::lemma5_lambda_limit;
    use crate::nn_stretch::summarize;

    #[test]
    fn three_computations_of_lambda_agree() {
        let z2 = ZCurve::<2>::new(3).unwrap();
        for axis in 0..2 {
            let brute = lambda_measured_brute(&z2, axis);
            let fast = lambda_measured(&z2, axis);
            let closed = lambda_closed_form(3, 2, axis + 1);
            assert_eq!(brute, fast, "d=2 axis={axis}");
            assert_eq!(brute, closed, "d=2 axis={axis}");
        }
        let z3 = ZCurve::<3>::new(2).unwrap();
        for axis in 0..3 {
            let brute = lambda_measured_brute(&z3, axis);
            assert_eq!(brute, lambda_measured(&z3, axis), "d=3 axis={axis}");
            assert_eq!(brute, lambda_closed_form(2, 3, axis + 1), "d=3 axis={axis}");
        }
        let z4 = ZCurve::<4>::new(1).unwrap();
        for axis in 0..4 {
            assert_eq!(
                lambda_measured_brute(&z4, axis),
                lambda_closed_form(1, 4, axis + 1)
            );
        }
    }

    #[test]
    fn lambda_sums_to_z_edge_sum() {
        // Σ_i Λ_i(Z) = Σ_{NN_d} Δ_Z — ties this module to nn_stretch.
        let z = ZCurve::<2>::new(3).unwrap();
        let total: u128 = (0..2).map(|a| lambda_measured(&z, a)).sum();
        assert_eq!(total, summarize(&z).edge_sum);

        let z3 = ZCurve::<3>::new(2).unwrap();
        let total3: u128 = (0..3).map(|a| lambda_measured(&z3, a)).sum();
        assert_eq!(total3, summarize(&z3).edge_sum);
    }

    #[test]
    fn lambda_decreases_with_dimension_index() {
        // Lemma 5: Λ_i ∝ 2^{d−i} asymptotically — lower-numbered dimensions
        // (more significant interleave positions) carry larger stretch.
        for k in 2..=4u32 {
            for i in 1..3usize {
                assert!(
                    lambda_closed_form(k, 3, i) > lambda_closed_form(k, 3, i + 1),
                    "k={k} i={i}"
                );
            }
        }
    }

    #[test]
    fn normalized_lambda_converges_to_lemma5_limit() {
        // d = 2: limits are 2/3 (i=1) and 1/3 (i=2). Convergence in k.
        for i in 1..=2usize {
            let limit = lemma5_lambda_limit(2, i);
            let mut prev_err = f64::INFINITY;
            for k in 2..=10u32 {
                let err = (lambda_normalized(k, 2, i) - limit).abs();
                assert!(err <= prev_err + 1e-15, "k={k} i={i}: {err} > {prev_err}");
                prev_err = err;
            }
            assert!(prev_err < 1e-3, "i={i}: final error {prev_err}");
        }
        // d = 3, generous k: limits 4/7, 2/7, 1/7.
        for i in 1..=3usize {
            let err = (lambda_normalized(10, 3, i) - lemma5_lambda_limit(3, i)).abs();
            assert!(err < 1e-3, "d=3 i={i}: {err}");
        }
    }

    #[test]
    fn group_sizes_partition_the_axis_edge_count() {
        // Σ_j |G_{i,j}| = (side − 1) · side^{d−1} = |G_i|.
        let k = 4u32;
        let d = 2usize;
        let total: u128 = (1..=k as usize).map(|j| group_size(k, d, j)).sum();
        let side = 1u128 << k;
        let expected = (side - 1) * (1u128 << (k as usize * (d - 1)));
        assert_eq!(total, expected);
    }

    #[test]
    #[should_panic(expected = "dimension index")]
    fn closed_form_rejects_out_of_range_dimension() {
        lambda_closed_form(3, 2, 3);
    }
}
