//! Quality metrics for SFC partitions: load imbalance and communication
//! cost.
//!
//! The link back to the paper: a partition's **edge cut** (nearest-neighbor
//! edges crossing part boundaries) is precisely the number of NN pairs whose
//! curve distance straddles a cut point — curves with low NN-stretch keep
//! neighbors close along the order, so fewer edges straddle cuts and
//! communication is cheaper. The `app-partition` experiment quantifies this
//! correlation across curve families.

use rayon::prelude::*;
use sfc_core::SpaceFillingCurve;

use crate::partitioner::Partition;
use crate::weights::WeightedGrid;

/// Quality summary of a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Number of parts.
    pub parts: usize,
    /// `max_j weight_j / (total/p)` — 1.0 is perfect balance.
    pub imbalance: f64,
    /// Number of grid NN edges whose endpoints lie in different parts.
    pub edge_cut: u64,
    /// Number of cells with at least one neighbor in another part (the
    /// total communication volume under a halo-exchange model).
    pub comm_volume: u64,
    /// Maximum part weight.
    pub max_part_weight: f64,
    /// Mean part weight (`total / p`).
    pub mean_part_weight: f64,
}

/// Evaluates a partition's quality sequentially.
pub fn evaluate<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    weights: &WeightedGrid<D>,
    partition: &Partition,
) -> PartitionQuality {
    let grid = curve.grid();
    let order = weights.in_curve_order(curve);
    let part_weights = partition.part_weights(&order);

    let mut edge_cut = 0u64;
    for (a, b, _) in grid.nn_edges() {
        if partition.part_of(curve.index_of(a)) != partition.part_of(curve.index_of(b)) {
            edge_cut += 1;
        }
    }
    let mut comm_volume = 0u64;
    for cell in grid.cells() {
        let own = partition.part_of(curve.index_of(cell));
        if grid
            .neighbors(cell)
            .any(|nb| partition.part_of(curve.index_of(nb)) != own)
        {
            comm_volume += 1;
        }
    }
    finish(partition, part_weights, edge_cut, comm_volume)
}

/// Evaluates a partition's quality with Rayon-parallel edge/cell scans.
/// Produces identical results to [`evaluate`].
pub fn evaluate_par<const D: usize, C: SpaceFillingCurve<D> + Sync>(
    curve: &C,
    weights: &WeightedGrid<D>,
    partition: &Partition,
) -> PartitionQuality {
    let grid = curve.grid();
    let order = weights.in_curve_order(curve);
    let part_weights = partition.part_weights(&order);
    let n = u64::try_from(grid.n()).expect("grid too large");

    let (edge_cut, comm_volume) = (0..n)
        .into_par_iter()
        .map(|rank| {
            let cell = grid.point_from_row_major(u128::from(rank));
            let own = partition.part_of(curve.index_of(cell));
            let mut cut = 0u64;
            let mut boundary = false;
            // Count each edge once from its lower endpoint (step_up only).
            for axis in 0..D {
                if let Some(up) = cell.step_up(axis) {
                    if grid.contains(&up) && partition.part_of(curve.index_of(up)) != own {
                        cut += 1;
                    }
                }
            }
            if grid
                .neighbors(cell)
                .any(|nb| partition.part_of(curve.index_of(nb)) != own)
            {
                boundary = true;
            }
            (cut, u64::from(boundary))
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));

    finish(partition, part_weights, edge_cut, comm_volume)
}

fn finish(
    partition: &Partition,
    part_weights: Vec<f64>,
    edge_cut: u64,
    comm_volume: u64,
) -> PartitionQuality {
    let p = partition.parts();
    let total: f64 = part_weights.iter().sum();
    let mean = total / p as f64;
    let max = part_weights.iter().cloned().fold(0.0, f64::max);
    PartitionQuality {
        parts: p,
        imbalance: if mean > 0.0 { max / mean } else { 1.0 },
        edge_cut,
        comm_volume,
        max_part_weight: max,
        mean_part_weight: mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{partition_greedy, Partition};
    use crate::weights::{WeightedGrid, Workload};
    use rand::SeedableRng;
    use sfc_core::{CurveKind, Grid, HilbertCurve, SimpleCurve, ZCurve};

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(12)
    }

    #[test]
    fn single_part_has_no_cut() {
        let grid = Grid::<2>::new(2).unwrap();
        let w = WeightedGrid::generate(grid, Workload::Uniform, &mut rng());
        let z = ZCurve::<2>::over(grid);
        let part = partition_greedy(&z, &w, 1);
        let q = evaluate(&z, &w, &part);
        assert_eq!(q.edge_cut, 0);
        assert_eq!(q.comm_volume, 0);
        assert_eq!(q.imbalance, 1.0);
    }

    #[test]
    fn hand_checked_cut_on_4x4_simple_curve() {
        // Simple curve on 4×4 split in half: parts are the bottom two rows
        // and the top two rows. Cut edges: the 4 vertical edges between
        // rows 1 and 2; comm volume: the 8 cells of those rows.
        let grid = Grid::<2>::new(2).unwrap();
        let w = WeightedGrid::generate(grid, Workload::Uniform, &mut rng());
        let s = SimpleCurve::<2>::over(grid);
        let part = Partition::from_boundaries(vec![0, 8, 16]);
        let q = evaluate(&s, &w, &part);
        assert_eq!(q.edge_cut, 4);
        assert_eq!(q.comm_volume, 8);
        assert_eq!(q.imbalance, 1.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let grid = Grid::<2>::new(3).unwrap();
        let mut r = rng();
        let w = WeightedGrid::generate(
            grid,
            Workload::GaussianClusters {
                count: 3,
                sigma: 2.0,
            },
            &mut r,
        );
        for kind in CurveKind::ALL {
            let c = kind.build::<2>(3).unwrap();
            let part = partition_greedy(&c, &w, 5);
            assert_eq!(
                evaluate(&c, &w, &part),
                evaluate_par(&c, &w, &part),
                "{kind}"
            );
        }
    }

    #[test]
    fn compact_curves_cut_less_than_slabs_at_high_part_count() {
        // With p = 8 on an 8×8 uniform grid, the simple curve produces
        // 8×1 slabs (cut = 7 rows × 8 = 56 edges); Hilbert/Z produce
        // blocky parts with smaller perimeter.
        let grid = Grid::<2>::new(3).unwrap();
        let w = WeightedGrid::generate(grid, Workload::Uniform, &mut rng());
        let simple = SimpleCurve::<2>::over(grid);
        let hilbert = HilbertCurve::<2>::over(grid);
        let z = ZCurve::<2>::over(grid);
        let q_simple = evaluate(&simple, &w, &partition_greedy(&simple, &w, 8));
        let q_hilbert = evaluate(&hilbert, &w, &partition_greedy(&hilbert, &w, 8));
        let q_z = evaluate(&z, &w, &partition_greedy(&z, &w, 8));
        assert_eq!(q_simple.edge_cut, 56);
        assert!(q_hilbert.edge_cut < q_simple.edge_cut);
        assert!(q_z.edge_cut < q_simple.edge_cut);
        // Hilbert's 8-cell parts on an 8×8 grid are 4×2 blocks: perimeter
        // cut strictly better than or equal to Z's.
        assert!(q_hilbert.edge_cut <= q_z.edge_cut);
    }

    #[test]
    fn comm_volume_bounded_by_twice_edge_cut() {
        // Each cut edge exposes at most 2 cells.
        let grid = Grid::<2>::new(3).unwrap();
        let mut r = rng();
        let w = WeightedGrid::generate(grid, Workload::CornerExponential { scale: 3.0 }, &mut r);
        for kind in CurveKind::ALL {
            let c = kind.build::<2>(3).unwrap();
            let part = partition_greedy(&c, &w, 6);
            let q = evaluate(&c, &w, &part);
            assert!(q.comm_volume <= 2 * q.edge_cut, "{kind}");
            assert!(q.comm_volume >= 1, "{kind}: p=6 must expose boundaries");
        }
    }

    #[test]
    fn imbalance_is_at_least_one() {
        let grid = Grid::<2>::new(2).unwrap();
        let mut r = rng();
        let w = WeightedGrid::generate(
            grid,
            Workload::GaussianClusters {
                count: 2,
                sigma: 0.8,
            },
            &mut r,
        );
        let z = ZCurve::<2>::over(grid);
        for p in [2usize, 3, 4, 7] {
            let q = evaluate(&z, &w, &partition_greedy(&z, &w, p));
            assert!(q.imbalance >= 1.0 - 1e-12, "p={p}: {}", q.imbalance);
        }
    }
}
