//! Cutting a weighted curve order into `p` contiguous chunks.
//!
//! This is the core operation of SFC-based domain decomposition
//! (Aluru & Sevilgen [3], Pilkington & Baden [23] in the paper's
//! bibliography): the multi-dimensional load-balancing problem reduces to
//! the one-dimensional *chains-on-a-line* problem along the curve.
//!
//! Two algorithms:
//!
//! * [`partition_greedy`] — single pass, fills each part to the ideal
//!   average; `O(n)`; the classic online heuristic.
//! * [`partition_min_bottleneck`] — minimizes the maximum part weight
//!   exactly (up to floating-point bisection tolerance) via parametric
//!   search with a greedy feasibility oracle; `O(n log(total/ε))`.

use sfc_core::{CurveIndex, SpaceFillingCurve};

use crate::weights::WeightedGrid;

/// A partition of the curve order `{0, …, n−1}` into `p` contiguous parts.
///
/// `boundaries` has `p + 1` entries with `boundaries[0] = 0` and
/// `boundaries[p] = n`; part `j` owns the **half-open** curve-index range
/// `boundaries[j] .. boundaries[j+1]` (the start is owned, the end is the
/// next part's start). The half-open convention makes the parts a
/// partition in the mathematical sense: every index in `0..n` belongs to
/// exactly one part, adjacent parts never share an index, and a part with
/// `boundaries[j] == boundaries[j+1]` is *empty* — it owns no indices and
/// is never returned by [`part_of`](Self::part_of).
///
/// Indices outside `0..n` belong to no part: [`part_of`](Self::part_of)
/// panics on them and [`try_part_of`](Self::try_part_of) returns `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    boundaries: Vec<CurveIndex>,
}

impl Partition {
    /// Creates a partition from explicit boundaries.
    ///
    /// # Panics
    /// Panics unless boundaries are non-decreasing, start at 0, and the
    /// partition has at least one part.
    pub fn from_boundaries(boundaries: Vec<CurveIndex>) -> Self {
        assert!(boundaries.len() >= 2, "need at least one part");
        assert_eq!(boundaries[0], 0, "first boundary must be 0");
        assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "boundaries must be non-decreasing"
        );
        Self { boundaries }
    }

    /// The partition of `{0, …, n−1}` into `p` parts of (near-)equal cell
    /// count: the first `n mod p` parts own `⌈n/p⌉` indices, the rest
    /// `⌊n/p⌋`. The keyspace-uniform starting point when no weights have
    /// been observed yet.
    pub fn uniform(n: u128, p: usize) -> Self {
        assert!(p >= 1, "need at least one part");
        let base = n / p as u128;
        let rem = n % p as u128;
        let boundaries = (0..=p as u128)
            .map(|j| j * base + j.min(rem))
            .collect::<Vec<_>>();
        Self::from_boundaries(boundaries)
    }

    /// Number of parts `p`.
    pub fn parts(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// The boundary list (length `p + 1`).
    pub fn boundaries(&self) -> &[CurveIndex] {
        &self.boundaries
    }

    /// The size `n` of the partitioned domain `{0, …, n−1}` (the last
    /// boundary).
    pub fn n(&self) -> CurveIndex {
        *self.boundaries.last().expect("at least one part")
    }

    /// The half-open curve-index range `boundaries[j] .. boundaries[j+1]`
    /// of part `j`; empty when the two boundaries coincide.
    ///
    /// # Panics
    /// Panics if `j >= parts()`.
    pub fn range(&self, j: usize) -> std::ops::Range<CurveIndex> {
        assert!(
            j < self.parts(),
            "part {j} out of range (p = {})",
            self.parts()
        );
        self.boundaries[j]..self.boundaries[j + 1]
    }

    /// The part owning curve index `idx` (binary search, `O(log p)`). The
    /// returned part always satisfies `range(j).contains(&idx)`; in
    /// particular an empty part is never returned.
    ///
    /// # Panics
    /// Panics if `idx` lies outside the partitioned domain `0..n` — an
    /// out-of-range index belongs to no part (it must **not** silently map
    /// to a nonexistent or wrong part).
    pub fn part_of(&self, idx: CurveIndex) -> usize {
        match self.try_part_of(idx) {
            Some(j) => j,
            None => panic!(
                "curve index {idx} outside the partitioned domain 0..{}",
                self.n()
            ),
        }
    }

    /// The part owning curve index `idx`, or `None` if `idx ≥ n` (outside
    /// the partitioned domain).
    pub fn try_part_of(&self, idx: CurveIndex) -> Option<usize> {
        if idx >= self.n() {
            return None;
        }
        // partition_point returns the count of boundaries ≤ idx; the cell
        // belongs to that boundary's part. With idx < n, boundary 0 (= 0)
        // is always ≤ idx and the last boundary is > idx, so the result is
        // a valid part whose half-open range contains idx.
        Some(self.boundaries.partition_point(|&b| b <= idx) - 1)
    }

    /// Weight of each part under `weights` given in curve order.
    pub fn part_weights(&self, curve_order_weights: &[f64]) -> Vec<f64> {
        (0..self.parts())
            .map(|j| {
                let r = self.range(j);
                curve_order_weights[r.start as usize..r.end as usize]
                    .iter()
                    .sum()
            })
            .collect()
    }

    /// The maximum part weight (the bottleneck).
    pub fn bottleneck(&self, curve_order_weights: &[f64]) -> f64 {
        self.part_weights(curve_order_weights)
            .into_iter()
            .fold(0.0, f64::max)
    }
}

/// Greedy prefix partition: walk the curve order, closing a part as soon as
/// its weight reaches the running ideal average of the *remaining* work.
///
/// Cost `O(n)`; the bottleneck is at most `ideal + max cell weight`.
pub fn partition_greedy<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    weights: &WeightedGrid<D>,
    p: usize,
) -> Partition {
    assert!(p >= 1, "need at least one part");
    let order = weights.in_curve_order(curve);
    let n = order.len();
    let mut boundaries = Vec::with_capacity(p + 1);
    boundaries.push(0u128);

    let mut remaining: f64 = order.iter().sum();
    let mut i = 0usize;
    for part in 0..p {
        let parts_left = (p - part) as f64;
        let target = remaining / parts_left;
        let mut acc = 0.0;
        // Leave enough cells for the remaining parts to be non-empty when
        // possible.
        let must_stop_by = n - (p - part - 1).min(n);
        while i < must_stop_by && (acc < target || acc == 0.0) {
            acc += order[i];
            i += 1;
        }
        remaining -= acc;
        boundaries.push(i as u128);
    }
    *boundaries.last_mut().unwrap() = n as u128;
    Partition::from_boundaries(boundaries)
}

/// Feasibility oracle: can the order be cut into at most `p` contiguous
/// parts of weight ≤ `cap`? Greedy filling is optimal for this check.
fn feasible(order: &[f64], p: usize, cap: f64) -> bool {
    let mut parts = 1usize;
    let mut acc = 0.0f64;
    for &w in order {
        if w > cap {
            return false;
        }
        if acc + w > cap {
            parts += 1;
            if parts > p {
                return false;
            }
            acc = w;
        } else {
            acc += w;
        }
    }
    true
}

/// Minimum-bottleneck partition: minimizes `max_j weight(part j)` over all
/// contiguous `p`-way partitions, by bisection on the bottleneck with the
/// greedy feasibility oracle.
///
/// The returned partition's bottleneck is within `rel_tol · total` of the
/// true optimum.
pub fn partition_min_bottleneck<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    weights: &WeightedGrid<D>,
    p: usize,
    rel_tol: f64,
) -> Partition {
    let order = weights.in_curve_order(curve);
    let n = order.len() as u128;
    min_bottleneck_cut(&order, |i| i as u128, n, p, rel_tol)
}

/// Minimum-bottleneck partition over a **sparse** weight sequence: only
/// the curve indices that carried weight are listed; every other index has
/// weight zero and is free to land on either side of a cut. This is the
/// form live-traffic feedback arrives in
/// ([`TrafficWeights`](crate::TrafficWeights)): a serving system observes
/// weights for the cells it actually touched, out of a keyspace far too
/// large to materialise densely.
///
/// `entries` must be sorted by strictly increasing curve index, every
/// index `< n`, and every weight non-negative and finite. The cut points
/// of the returned partition coincide with observed indices (a boundary
/// between two observed cells may be placed at the second cell's index;
/// the zero-weight gap in between belongs to the earlier part). With no
/// entries at all the keyspace-uniform partition of `0..n` is returned.
pub fn partition_min_bottleneck_sparse(
    entries: &[(CurveIndex, f64)],
    n: u128,
    p: usize,
    rel_tol: f64,
) -> Partition {
    assert!(p >= 1, "need at least one part");
    assert!(rel_tol > 0.0, "tolerance must be positive");
    assert!(
        entries.windows(2).all(|w| w[0].0 < w[1].0),
        "entries must have strictly increasing curve indices"
    );
    assert!(
        entries.last().is_none_or(|&(idx, _)| idx < n),
        "entry index outside the domain 0..{n}"
    );
    assert!(
        entries.iter().all(|&(_, w)| w.is_finite() && w >= 0.0),
        "weights must be non-negative and finite"
    );
    if entries.is_empty() {
        return Partition::uniform(n, p);
    }
    let order: Vec<f64> = entries.iter().map(|&(_, w)| w).collect();
    min_bottleneck_cut(&order, |i| entries[i].0, n, p, rel_tol)
}

/// The shared min-bottleneck engine: bisection on the bottleneck over the
/// weight sequence `order`, then the greedy cut materialised at the
/// feasible capacity. `key_of(i)` maps a sequence position to its curve
/// index (the identity for a dense order, the observed index for a sparse
/// one), so the dense path never materialises an `(index, weight)` pair
/// table.
fn min_bottleneck_cut(
    order: &[f64],
    key_of: impl Fn(usize) -> CurveIndex,
    n: u128,
    p: usize,
    rel_tol: f64,
) -> Partition {
    let total: f64 = order.iter().sum();
    let max_w = order.iter().cloned().fold(0.0, f64::max);

    let mut lo = (total / p as f64).max(max_w); // optimum is ≥ both
    let mut hi = total;
    let tol = rel_tol * total.max(f64::MIN_POSITIVE);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if feasible(order, p, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }

    // Materialise the greedy cut at the feasible capacity `hi`; a part
    // opens at the first weighted index that would overflow the previous
    // part. The first entry never opens a new part (its weight is ≤ the
    // capacity), so boundaries stay strictly increasing until padding.
    let mut boundaries = vec![0u128];
    let mut acc = 0.0f64;
    for (i, &w) in order.iter().enumerate() {
        if acc + w > hi && boundaries.len() < p {
            boundaries.push(key_of(i));
            acc = w;
        } else {
            acc += w;
        }
    }
    while boundaries.len() < p {
        boundaries.push(n); // degenerate empty tail parts
    }
    boundaries.push(n);
    Partition::from_boundaries(boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{WeightedGrid, Workload};
    use rand::SeedableRng;
    use sfc_core::{CurveKind, Grid, HilbertCurve, ZCurve};

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(4)
    }

    #[test]
    fn partition_accessors() {
        let p = Partition::from_boundaries(vec![0, 4, 8, 16]);
        assert_eq!(p.parts(), 3);
        assert_eq!(p.n(), 16);
        assert_eq!(p.range(0), 0..4);
        assert_eq!(p.range(2), 8..16);
        assert_eq!(p.part_of(0), 0);
        assert_eq!(p.part_of(3), 0);
        assert_eq!(p.part_of(4), 1);
        assert_eq!(p.part_of(15), 2);
    }

    #[test]
    fn part_of_is_half_open_at_exact_boundaries() {
        let p = Partition::from_boundaries(vec![0, 4, 8, 16]);
        // A boundary index belongs to the part it *starts*, never to the
        // part it ends.
        for (idx, want) in [(0u128, 0usize), (3, 0), (4, 1), (7, 1), (8, 2), (15, 2)] {
            let j = p.part_of(idx);
            assert_eq!(j, want, "part_of({idx})");
            assert!(p.range(j).contains(&idx), "range({j}) must own {idx}");
            assert_eq!(p.try_part_of(idx), Some(want));
        }
    }

    #[test]
    fn part_of_skips_empty_parts() {
        // Part 1 is empty ([4, 4)): it owns no indices, and the boundary
        // index 4 belongs to part 2, which starts there.
        let p = Partition::from_boundaries(vec![0, 4, 4, 8]);
        assert_eq!(p.part_of(3), 0);
        assert_eq!(p.part_of(4), 2);
        assert!(p.range(1).is_empty());
        for idx in 0..8u128 {
            let j = p.part_of(idx);
            assert!(p.range(j).contains(&idx));
        }
    }

    #[test]
    #[should_panic(expected = "outside the partitioned domain")]
    fn part_of_rejects_indices_past_the_last_boundary() {
        let p = Partition::from_boundaries(vec![0, 4, 8, 16]);
        p.part_of(16);
    }

    #[test]
    fn try_part_of_returns_none_out_of_domain() {
        let p = Partition::from_boundaries(vec![0, 4, 8, 16]);
        assert_eq!(p.try_part_of(15), Some(2));
        assert_eq!(p.try_part_of(16), None);
        assert_eq!(p.try_part_of(u128::MAX), None);
        // Empty domain: no index belongs anywhere.
        let empty = Partition::from_boundaries(vec![0, 0]);
        assert_eq!(empty.n(), 0);
        assert_eq!(empty.try_part_of(0), None);
    }

    #[test]
    fn uniform_partition_covers_the_domain_evenly() {
        let p = Partition::uniform(10, 3);
        assert_eq!(p.boundaries(), &[0, 4, 7, 10]);
        for idx in 0..10u128 {
            assert!(p.range(p.part_of(idx)).contains(&idx));
        }
        // More parts than indices: empty tails, every index still owned.
        let p = Partition::uniform(2, 4);
        assert_eq!(p.boundaries(), &[0, 1, 2, 2, 2]);
        assert_eq!(p.part_of(0), 0);
        assert_eq!(p.part_of(1), 1);
        // Huge domains must not overflow the boundary arithmetic.
        let p = Partition::uniform(1u128 << 126, 3);
        assert_eq!(p.parts(), 3);
        assert_eq!(p.n(), 1u128 << 126);
    }

    #[test]
    fn sparse_min_bottleneck_matches_dense_positions() {
        // Dense weights presented sparsely (every index observed) must
        // reproduce the dense algorithm's cuts exactly.
        let weights = [5.0, 1.0, 1.0, 1.0, 6.0, 1.0, 1.0, 2.0];
        let entries: Vec<(CurveIndex, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u128, w))
            .collect();
        let grid = sfc_core::Grid::<1>::new(3).unwrap();
        let curve = sfc_core::SimpleCurve::<1>::over(grid);
        let dense = partition_min_bottleneck(
            &curve,
            &WeightedGrid::from_weights(grid, weights.to_vec()),
            3,
            1e-12,
        );
        let sparse = partition_min_bottleneck_sparse(&entries, 8, 3, 1e-12);
        assert_eq!(sparse.boundaries(), dense.boundaries());
    }

    #[test]
    fn sparse_min_bottleneck_with_gaps_balances_observed_load() {
        // Three hot cells far apart in a huge domain; 3 parts isolate
        // them.
        let entries = [(10u128, 4.0), (1_000_000, 4.0), (2_000_000, 4.0)];
        let part = partition_min_bottleneck_sparse(&entries, 1 << 40, 3, 1e-9);
        let parts: Vec<usize> = entries.iter().map(|&(i, _)| part.part_of(i)).collect();
        assert_eq!(parts, vec![0, 1, 2]);
    }

    #[test]
    fn sparse_min_bottleneck_empty_is_uniform() {
        let part = partition_min_bottleneck_sparse(&[], 9, 3, 1e-9);
        assert_eq!(part.boundaries(), Partition::uniform(9, 3).boundaries());
    }

    #[test]
    fn uniform_load_divides_evenly() {
        let grid = Grid::<2>::new(3).unwrap();
        let w = WeightedGrid::generate(grid, Workload::Uniform, &mut rng());
        let z = ZCurve::<2>::over(grid);
        for p in [1usize, 2, 4, 8] {
            let part = partition_greedy(&z, &w, p);
            assert_eq!(part.parts(), p);
            let weights = part.part_weights(&w.in_curve_order(&z));
            for pw in &weights {
                assert_eq!(*pw, 64.0 / p as f64, "p={p}");
            }
        }
    }

    #[test]
    fn greedy_covers_all_cells_exactly_once() {
        let grid = Grid::<2>::new(2).unwrap();
        let w =
            WeightedGrid::generate(grid, Workload::CornerExponential { scale: 1.5 }, &mut rng());
        let z = ZCurve::<2>::over(grid);
        let part = partition_greedy(&z, &w, 5);
        assert_eq!(part.boundaries().first(), Some(&0));
        assert_eq!(part.boundaries().last(), Some(&16));
        // Every index belongs to exactly one part.
        for idx in 0..16u128 {
            let j = part.part_of(idx);
            assert!(part.range(j).contains(&idx));
        }
    }

    #[test]
    fn min_bottleneck_never_worse_than_greedy() {
        let grid = Grid::<2>::new(3).unwrap();
        let mut r = rng();
        for workload in [
            Workload::Uniform,
            Workload::CornerExponential { scale: 2.0 },
            Workload::GaussianClusters {
                count: 3,
                sigma: 2.0,
            },
        ] {
            let w = WeightedGrid::generate(grid, workload, &mut r);
            let z = ZCurve::<2>::over(grid);
            let order = w.in_curve_order(&z);
            for p in [2usize, 3, 7] {
                let g = partition_greedy(&z, &w, p).bottleneck(&order);
                let m = partition_min_bottleneck(&z, &w, p, 1e-9).bottleneck(&order);
                assert!(m <= g + 1e-6, "{workload:?} p={p}: {m} > {g}");
            }
        }
    }

    #[test]
    fn min_bottleneck_matches_exhaustive_on_small_input() {
        // 1-D grid with 8 cells: exhaustively try all 2-cut placements.
        let grid = Grid::<1>::new(3).unwrap();
        let weights = vec![5.0, 1.0, 1.0, 1.0, 6.0, 1.0, 1.0, 2.0];
        let w = WeightedGrid::from_weights(grid, weights.clone());
        let curve = sfc_core::SimpleCurve::<1>::over(grid);
        let result = partition_min_bottleneck(&curve, &w, 3, 1e-12);
        let measured = result.bottleneck(&weights);
        // Brute force all cut pairs (c1 ≤ c2).
        let mut best = f64::INFINITY;
        for c1 in 0..=8usize {
            for c2 in c1..=8usize {
                let s1: f64 = weights[..c1].iter().sum();
                let s2: f64 = weights[c1..c2].iter().sum();
                let s3: f64 = weights[c2..].iter().sum();
                best = best.min(s1.max(s2).max(s3));
            }
        }
        assert!((measured - best).abs() < 1e-6, "{measured} vs {best}");
    }

    #[test]
    fn single_part_partition_is_everything() {
        let grid = Grid::<2>::new(2).unwrap();
        let w = WeightedGrid::generate(grid, Workload::Uniform, &mut rng());
        let z = ZCurve::<2>::over(grid);
        let part = partition_greedy(&z, &w, 1);
        assert_eq!(part.parts(), 1);
        assert_eq!(part.range(0), 0..16);
    }

    #[test]
    fn more_parts_than_cells_yields_empty_tails() {
        let grid = Grid::<1>::new(1).unwrap(); // 2 cells
        let w = WeightedGrid::generate(grid, Workload::Uniform, &mut rng());
        let c = sfc_core::SimpleCurve::<1>::over(grid);
        let part = partition_greedy(&c, &w, 4);
        assert_eq!(part.parts(), 4);
        let weights = part.part_weights(&w.in_curve_order(&c));
        let nonzero = weights.iter().filter(|&&x| x > 0.0).count();
        assert_eq!(nonzero, 2);
    }

    #[test]
    fn every_curve_kind_partitions_cleanly() {
        let grid = Grid::<2>::new(3).unwrap();
        let mut r = rng();
        let w = WeightedGrid::generate(
            grid,
            Workload::GaussianClusters {
                count: 4,
                sigma: 1.0,
            },
            &mut r,
        );
        for kind in CurveKind::ALL {
            let c = kind.build::<2>(3).unwrap();
            let part = partition_greedy(&c, &w, 4);
            assert_eq!(part.parts(), 4);
            assert_eq!(*part.boundaries().last().unwrap(), 64);
        }
    }

    #[test]
    fn bottleneck_lower_bound_is_respected() {
        // The optimum is ≥ max(total/p, max single weight); bisection must
        // not report below it.
        let grid = Grid::<2>::new(2).unwrap();
        let mut r = rng();
        let w = WeightedGrid::generate(
            grid,
            Workload::GaussianClusters {
                count: 2,
                sigma: 1.0,
            },
            &mut r,
        );
        let h = HilbertCurve::<2>::over(grid);
        let order = w.in_curve_order(&h);
        let total: f64 = order.iter().sum();
        let max_w = order.iter().cloned().fold(0.0, f64::max);
        for p in [2usize, 4] {
            let b = partition_min_bottleneck(&h, &w, p, 1e-9).bottleneck(&order);
            assert!(b >= (total / p as f64).max(max_w) - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_rejected() {
        let grid = Grid::<1>::new(1).unwrap();
        let w = WeightedGrid::generate(grid, Workload::Uniform, &mut rng());
        let c = sfc_core::SimpleCurve::<1>::over(grid);
        partition_greedy(&c, &w, 0);
    }
}
