//! Synthetic weighted workloads over a grid.
//!
//! The cited applications (adaptive mesh refinement [22], N-body [26],
//! non-uniform structured workloads [23]) attach a *work weight* to each
//! cell. These generators produce the standard synthetic stand-ins: uniform
//! load, an exponentially corner-concentrated load (mimicking a refined
//! region), and a mixture of Gaussian blobs (mimicking particle clusters).

use rand::Rng;
use sfc_core::{Grid, Point, SpaceFillingCurve};

/// A grid with a non-negative work weight per cell (indexed by row-major
/// rank).
#[derive(Debug, Clone)]
pub struct WeightedGrid<const D: usize> {
    grid: Grid<D>,
    weights: Vec<f64>,
}

/// Workload families for [`WeightedGrid::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Every cell has weight 1.
    Uniform,
    /// Weight decays exponentially with Manhattan distance from the origin
    /// corner: `w(α) = exp(−Δ(α, 0)/scale)`. Models a locally refined
    /// region.
    CornerExponential {
        /// Decay length in cells.
        scale: f64,
    },
    /// A sum of `count` Gaussian blobs at random centers with the given
    /// standard deviation (in cells), plus a small uniform floor so no cell
    /// has zero weight. Models clustered particles.
    GaussianClusters {
        /// Number of blobs.
        count: usize,
        /// Standard deviation of each blob, in cells.
        sigma: f64,
    },
}

impl<const D: usize> WeightedGrid<D> {
    /// Builds a workload over `grid`.
    pub fn generate<R: Rng + ?Sized>(grid: Grid<D>, workload: Workload, rng: &mut R) -> Self {
        let n = usize::try_from(grid.n()).expect("grid too large to materialise weights");
        let mut weights = vec![0.0f64; n];
        match workload {
            Workload::Uniform => weights.fill(1.0),
            Workload::CornerExponential { scale } => {
                for cell in grid.cells() {
                    let rank = grid.row_major_rank(&cell) as usize;
                    let dist = cell.manhattan(&Point::origin()) as f64;
                    weights[rank] = (-dist / scale).exp();
                }
            }
            Workload::GaussianClusters { count, sigma } => {
                let centers: Vec<Point<D>> = (0..count).map(|_| grid.random_cell(rng)).collect();
                let inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);
                for cell in grid.cells() {
                    let rank = grid.row_major_rank(&cell) as usize;
                    let mut w = 1e-3; // uniform floor
                    for c in &centers {
                        let d2 = cell.euclidean_sq(c) as f64;
                        w += (-d2 * inv_two_sigma_sq).exp();
                    }
                    weights[rank] = w;
                }
            }
        }
        Self { grid, weights }
    }

    /// Builds a workload from explicit per-cell weights in row-major order.
    ///
    /// # Panics
    /// Panics if the length does not match the cell count or any weight is
    /// negative / non-finite.
    pub fn from_weights(grid: Grid<D>, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len() as u128, grid.n(), "one weight per cell");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        Self { grid, weights }
    }

    /// The underlying grid.
    pub fn grid(&self) -> Grid<D> {
        self.grid
    }

    /// The weight of a cell.
    #[inline]
    pub fn weight(&self, cell: &Point<D>) -> f64 {
        self.weights[self.grid.row_major_rank(cell) as usize]
    }

    /// Total weight of the workload.
    pub fn total(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// The weights rearranged into the traversal order of `curve`
    /// (`result[i]` is the weight of the cell at curve index `i`).
    pub fn in_curve_order<C: SpaceFillingCurve<D>>(&self, curve: &C) -> Vec<f64> {
        assert_eq!(curve.grid(), self.grid, "curve must fill the same grid");
        curve.traverse().map(|cell| self.weight(&cell)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sfc_core::ZCurve;

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(99)
    }

    #[test]
    fn uniform_workload_weights_every_cell_one() {
        let grid = Grid::<2>::new(2).unwrap();
        let w = WeightedGrid::generate(grid, Workload::Uniform, &mut rng());
        assert_eq!(w.total(), 16.0);
        for cell in grid.cells() {
            assert_eq!(w.weight(&cell), 1.0);
        }
    }

    #[test]
    fn corner_exponential_decays_monotonically_from_origin() {
        let grid = Grid::<2>::new(3).unwrap();
        let w =
            WeightedGrid::generate(grid, Workload::CornerExponential { scale: 2.0 }, &mut rng());
        assert!(w.weight(&Point::new([0, 0])) > w.weight(&Point::new([1, 0])));
        assert!(w.weight(&Point::new([1, 1])) > w.weight(&Point::new([7, 7])));
        // Equal Manhattan distance → equal weight.
        assert_eq!(w.weight(&Point::new([2, 1])), w.weight(&Point::new([1, 2])));
    }

    #[test]
    fn gaussian_clusters_have_positive_floor_everywhere() {
        let grid = Grid::<2>::new(3).unwrap();
        let w = WeightedGrid::generate(
            grid,
            Workload::GaussianClusters {
                count: 3,
                sigma: 1.5,
            },
            &mut rng(),
        );
        for cell in grid.cells() {
            assert!(w.weight(&cell) >= 1e-3);
        }
        // Clusters make the load non-uniform.
        let weights: Vec<f64> = grid.cells().map(|c| w.weight(&c)).collect();
        let min = weights.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = weights.iter().cloned().fold(0.0, f64::max);
        assert!(max > 10.0 * min);
    }

    #[test]
    fn in_curve_order_permutes_weights() {
        let grid = Grid::<2>::new(2).unwrap();
        let mut r = rng();
        let w = WeightedGrid::generate(grid, Workload::CornerExponential { scale: 1.0 }, &mut r);
        let z = ZCurve::<2>::over(grid);
        let ordered = w.in_curve_order(&z);
        assert_eq!(ordered.len(), 16);
        // Same multiset, total preserved.
        let total: f64 = ordered.iter().sum();
        assert!((total - w.total()).abs() < 1e-12);
        // Cell at curve index 0 is the origin for the Z curve.
        assert_eq!(ordered[0], w.weight(&Point::new([0, 0])));
    }

    #[test]
    fn from_weights_roundtrips() {
        let grid = Grid::<1>::new(2).unwrap();
        let w = WeightedGrid::from_weights(grid, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(w.weight(&Point::new([2])), 3.0);
        assert_eq!(w.total(), 10.0);
    }

    #[test]
    #[should_panic(expected = "one weight per cell")]
    fn from_weights_rejects_wrong_length() {
        let grid = Grid::<1>::new(2).unwrap();
        WeightedGrid::from_weights(grid, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_weights_rejects_negative() {
        let grid = Grid::<1>::new(1).unwrap();
        WeightedGrid::from_weights(grid, vec![1.0, -1.0]);
    }
}
