//! Live-traffic weight feedback for repartitioning.
//!
//! The synthetic workloads in [`weights`](crate::weights) materialise a
//! weight for *every* cell of the grid — fine for the paper's experiments,
//! impossible for a serving system whose keyspace has `2^{kd}` cells. A
//! running store instead **observes** weight where traffic actually lands:
//! each write (or any other costed operation) reports its curve index, and
//! the accumulated sparse histogram feeds
//! [`partition_min_bottleneck_sparse`] to recompute shard boundaries that
//! balance the *observed* load.

use std::collections::BTreeMap;

use sfc_core::CurveIndex;

use crate::partitioner::{partition_min_bottleneck_sparse, Partition};

/// A sparse per-cell weight accumulator over the curve order `0..n`,
/// recording live traffic as it happens.
///
/// Only touched cells take memory; iteration is in curve order (the form
/// the chains-on-a-line partitioners consume).
#[derive(Debug, Clone)]
pub struct TrafficWeights {
    /// Size of the curve-index domain `{0, …, n−1}`.
    n: u128,
    /// Accumulated weight per touched curve index.
    weights: BTreeMap<CurveIndex, f64>,
}

impl TrafficWeights {
    /// An empty accumulator over the curve-index domain `0..n`.
    pub fn new(n: u128) -> Self {
        Self {
            n,
            weights: BTreeMap::new(),
        }
    }

    /// The size of the curve-index domain.
    pub fn n(&self) -> u128 {
        self.n
    }

    /// Adds `weight` to the observed load of curve index `key`.
    ///
    /// # Panics
    /// Panics if `key ≥ n` or `weight` is negative or non-finite.
    pub fn record(&mut self, key: CurveIndex, weight: f64) {
        assert!(key < self.n, "curve index {key} outside 0..{}", self.n);
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be non-negative and finite"
        );
        *self.weights.entry(key).or_insert(0.0) += weight;
    }

    /// Number of distinct cells with observed weight.
    pub fn observed(&self) -> usize {
        self.weights.len()
    }

    /// `true` iff no weight has been recorded since the last
    /// [`clear`](Self::clear).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Total observed weight.
    pub fn total(&self) -> f64 {
        self.weights.values().sum()
    }

    /// The observed `(curve index, weight)` pairs in curve order.
    pub fn entries(&self) -> impl Iterator<Item = (CurveIndex, f64)> + '_ {
        self.weights.iter().map(|(&k, &w)| (k, w))
    }

    /// Forgets all observed weight (e.g. after a rebalance consumed it).
    pub fn clear(&mut self) {
        self.weights.clear();
    }

    /// Scales every observed weight by `factor` (an exponential-decay
    /// step: old traffic fades instead of vanishing outright), dropping
    /// cells whose weight underflows to noise.
    ///
    /// # Panics
    /// Panics if `factor` is negative or non-finite.
    pub fn decay(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "decay factor must be non-negative and finite"
        );
        self.weights.retain(|_, w| {
            *w *= factor;
            *w > 1e-12
        });
    }

    /// The min-bottleneck partition of `0..n` into `p` parts under the
    /// observed weights (see [`partition_min_bottleneck_sparse`]); the
    /// keyspace-uniform partition when nothing has been observed.
    pub fn partition_min_bottleneck(&self, p: usize, rel_tol: f64) -> Partition {
        let entries: Vec<(CurveIndex, f64)> = self.entries().collect();
        partition_min_bottleneck_sparse(&entries, self.n, p, rel_tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightedGrid;
    use sfc_core::{Grid, SpaceFillingCurve, ZCurve};

    #[test]
    fn record_accumulates_and_iterates_in_curve_order() {
        let mut t = TrafficWeights::new(64);
        t.record(9, 2.0);
        t.record(3, 1.0);
        t.record(9, 0.5);
        assert_eq!(t.observed(), 2);
        assert_eq!(t.entries().collect::<Vec<_>>(), vec![(3, 1.0), (9, 2.5)]);
        assert!((t.total() - 3.5).abs() < 1e-12);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn decay_fades_and_drops_noise() {
        let mut t = TrafficWeights::new(16);
        t.record(1, 1.0);
        t.record(2, 1e-12);
        t.decay(0.5);
        assert_eq!(t.entries().collect::<Vec<_>>(), vec![(1, 0.5)]);
        t.decay(0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn empty_traffic_partitions_uniformly() {
        let t = TrafficWeights::new(10);
        let part = t.partition_min_bottleneck(3, 1e-9);
        assert_eq!(part.boundaries(), &[0, 4, 7, 10]);
    }

    #[test]
    fn sparse_partition_matches_dense_on_materialised_weights() {
        // Observing every cell's weight must reproduce the dense
        // min-bottleneck result: same bottleneck on the same weight
        // vector.
        let grid = Grid::<2>::new(3).unwrap();
        let z = ZCurve::<2>::over(grid);
        let dense_weights: Vec<f64> = (0..64u32)
            .map(|i| f64::from((i * 37) % 11) + 0.25)
            .collect();
        // `WeightedGrid` weights are row-major; permute ours back so the
        // curve order matches `dense_weights`.
        let mut row_major = vec![0.0f64; 64];
        for (idx, &w) in dense_weights.iter().enumerate() {
            let cell = z.point_of(idx as u128);
            row_major[grid.row_major_rank(&cell) as usize] = w;
        }
        let dense = crate::partition_min_bottleneck(
            &z,
            &WeightedGrid::from_weights(grid, row_major),
            4,
            1e-12,
        );
        let mut t = TrafficWeights::new(64);
        for (idx, &w) in dense_weights.iter().enumerate() {
            t.record(idx as u128, w);
        }
        let sparse = t.partition_min_bottleneck(4, 1e-12);
        assert_eq!(sparse.boundaries(), dense.boundaries());
        assert!(
            (sparse.bottleneck(&dense_weights) - dense.bottleneck(&dense_weights)).abs() < 1e-9
        );
    }

    #[test]
    fn sparse_partition_balances_skewed_observations() {
        // All weight on two distant hot cells: with 2 parts each hot cell
        // must land in its own part.
        let mut t = TrafficWeights::new(1 << 20);
        t.record(100, 50.0);
        t.record(900_000, 50.0);
        let part = t.partition_min_bottleneck(2, 1e-9);
        assert_eq!(part.parts(), 2);
        assert_ne!(part.part_of(100), part.part_of(900_000));
        // The cut lands at an observed index.
        assert_eq!(part.boundaries()[1], 900_000);
    }

    #[test]
    #[should_panic(expected = "outside 0..")]
    fn record_rejects_out_of_domain_keys() {
        let mut t = TrafficWeights::new(8);
        t.record(8, 1.0);
    }
}
