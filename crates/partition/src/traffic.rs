//! Live-traffic weight feedback for repartitioning.
//!
//! The synthetic workloads in [`weights`](crate::weights) materialise a
//! weight for *every* cell of the grid — fine for the paper's experiments,
//! impossible for a serving system whose keyspace has `2^{kd}` cells. A
//! running store instead **observes** weight where traffic actually lands:
//! each write (or any other costed operation) reports its curve index, and
//! the accumulated sparse histogram feeds
//! [`partition_min_bottleneck_sparse`] to recompute shard boundaries that
//! balance the *observed* load.
//!
//! Two accumulators are provided. [`TrafficWeights`] is the
//! single-threaded original: one sparse map, `&mut self` recording.
//! [`ConcurrentTraffic`] is its concurrent counterpart for multi-writer
//! engines: the map is **striped** (one stripe per shard, matching the
//! writers' natural partition), each stripe samples its own write stream
//! through a per-stripe atomic counter, and only sampled writes touch the
//! stripe's mutex — so concurrent writers to different shards never
//! contend, a hot shard can never be under-sampled by other shards
//! advancing a shared stride counter, and draining merges the stripes
//! back into a plain [`TrafficWeights`] for the partitioner.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sfc_core::CurveIndex;

use crate::partitioner::{partition_min_bottleneck_sparse, Partition};

/// A sparse per-cell weight accumulator over the curve order `0..n`,
/// recording live traffic as it happens.
///
/// Only touched cells take memory; iteration is in curve order (the form
/// the chains-on-a-line partitioners consume).
#[derive(Debug, Clone)]
pub struct TrafficWeights {
    /// Size of the curve-index domain `{0, …, n−1}`.
    n: u128,
    /// Accumulated weight per touched curve index.
    weights: BTreeMap<CurveIndex, f64>,
}

impl TrafficWeights {
    /// An empty accumulator over the curve-index domain `0..n`.
    pub fn new(n: u128) -> Self {
        Self {
            n,
            weights: BTreeMap::new(),
        }
    }

    /// The size of the curve-index domain.
    pub fn n(&self) -> u128 {
        self.n
    }

    /// Adds `weight` to the observed load of curve index `key`.
    ///
    /// # Panics
    /// Panics if `key ≥ n` or `weight` is negative or non-finite.
    pub fn record(&mut self, key: CurveIndex, weight: f64) {
        assert!(key < self.n, "curve index {key} outside 0..{}", self.n);
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be non-negative and finite"
        );
        *self.weights.entry(key).or_insert(0.0) += weight;
    }

    /// Number of distinct cells with observed weight.
    pub fn observed(&self) -> usize {
        self.weights.len()
    }

    /// `true` iff no weight has been recorded since the last
    /// [`clear`](Self::clear).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Total observed weight.
    pub fn total(&self) -> f64 {
        self.weights.values().sum()
    }

    /// The observed `(curve index, weight)` pairs in curve order.
    pub fn entries(&self) -> impl Iterator<Item = (CurveIndex, f64)> + '_ {
        self.weights.iter().map(|(&k, &w)| (k, w))
    }

    /// Forgets all observed weight (e.g. after a rebalance consumed it).
    pub fn clear(&mut self) {
        self.weights.clear();
    }

    /// Scales every observed weight by `factor` (an exponential-decay
    /// step: old traffic fades instead of vanishing outright), dropping
    /// cells whose weight underflows to noise.
    ///
    /// # Panics
    /// Panics if `factor` is negative or non-finite.
    pub fn decay(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "decay factor must be non-negative and finite"
        );
        self.weights.retain(|_, w| {
            *w *= factor;
            *w > 1e-12
        });
    }

    /// The min-bottleneck partition of `0..n` into `p` parts under the
    /// observed weights (see [`partition_min_bottleneck_sparse`]); the
    /// keyspace-uniform partition when nothing has been observed.
    pub fn partition_min_bottleneck(&self, p: usize, rel_tol: f64) -> Partition {
        let entries: Vec<(CurveIndex, f64)> = self.entries().collect();
        partition_min_bottleneck_sparse(&entries, self.n, p, rel_tol)
    }
}

/// One contention domain of a [`ConcurrentTraffic`] accumulator: the
/// stripe's own write counter (driving its sampler) plus its share of the
/// sparse weight map.
#[derive(Debug, Default)]
struct TrafficStripe {
    /// Writes observed by this stripe since construction (sampled or
    /// not) — the deterministic per-stripe sampling stride walks this.
    writes: AtomicU64,
    /// Accumulated weight per touched curve index, this stripe only.
    weights: Mutex<BTreeMap<CurveIndex, f64>>,
}

/// A striped, `&self` traffic accumulator for concurrent writers.
///
/// Each stripe is an independent contention domain — callers route a
/// write to the stripe of the shard that absorbed it, so writers to
/// different shards touch disjoint atomics and mutexes. Sampling
/// ([`set_sample_every`](Self::set_sample_every)) is **per stripe**: every
/// stripe counts its own writes and records 1 in `every` of them with
/// weight `every`, which keeps the estimator unbiased per shard. A single
/// global stride counter (the previous design) shared its phase across
/// shards: under parallel writers the interleaving decided which shard's
/// writes landed on the sampled ticks, systematically under-counting hot
/// shards. A per-stripe counter cannot — each shard's sample rate depends
/// only on that shard's own write count.
#[derive(Debug)]
pub struct ConcurrentTraffic {
    /// Size of the curve-index domain `{0, …, n−1}`.
    n: u128,
    /// Record 1 in `sample_every` writes, each carrying weight
    /// `sample_every`.
    sample_every: AtomicU64,
    stripes: Box<[TrafficStripe]>,
}

impl ConcurrentTraffic {
    /// An empty accumulator over the curve-index domain `0..n` with
    /// `stripes` independent contention domains (typically one per
    /// shard). Sampling starts at 1 (record every write exactly).
    pub fn new(n: u128, stripes: usize) -> Self {
        Self {
            n,
            sample_every: AtomicU64::new(1),
            stripes: (0..stripes.max(1))
                .map(|_| TrafficStripe::default())
                .collect(),
        }
    }

    /// The size of the curve-index domain.
    pub fn n(&self) -> u128 {
        self.n
    }

    /// Number of stripes (contention domains).
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Samples write-weight recording down to 1 in `every` writes per
    /// stripe, each carrying weight `every` (`1` records every write
    /// exactly). Takes effect for subsequent writes on every stripe.
    pub fn set_sample_every(&self, every: u64) {
        self.sample_every.store(every.max(1), Ordering::Relaxed);
    }

    /// The current sampling stride.
    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// One write happened at `key`, absorbed by the shard behind
    /// `stripe`: count it, touching the stripe's weight map only on
    /// sampled ticks.
    ///
    /// # Panics
    /// Panics if `stripe` is out of range or `key ≥ n`.
    pub fn record_write(&self, stripe: usize, key: CurveIndex) {
        assert!(key < self.n, "curve index {key} outside 0..{}", self.n);
        let s = &self.stripes[stripe];
        let count = s.writes.fetch_add(1, Ordering::Relaxed);
        let every = self.sample_every.load(Ordering::Relaxed);
        if count.is_multiple_of(every) {
            let mut weights = s.weights.lock().expect("traffic stripe poisoned");
            *weights.entry(key).or_insert(0.0) += every as f64;
        }
    }

    /// Adds explicit (unsampled) `weight` for `key` to the given stripe —
    /// e.g. to make read-heavy cells count toward the next rebalance.
    ///
    /// # Panics
    /// Panics if `stripe` is out of range, `key ≥ n`, or `weight` is
    /// negative or non-finite.
    pub fn record(&self, stripe: usize, key: CurveIndex, weight: f64) {
        assert!(key < self.n, "curve index {key} outside 0..{}", self.n);
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be non-negative and finite"
        );
        let mut weights = self.stripes[stripe]
            .weights
            .lock()
            .expect("traffic stripe poisoned");
        *weights.entry(key).or_insert(0.0) += weight;
    }

    /// Total writes observed by `stripe` (sampled and unsampled alike).
    pub fn stripe_writes(&self, stripe: usize) -> u64 {
        self.stripes[stripe].writes.load(Ordering::Relaxed)
    }

    /// Merges every stripe into a plain [`TrafficWeights`] without
    /// clearing anything — a consistent *copy* of the observed load.
    pub fn merged(&self) -> TrafficWeights {
        let mut out = TrafficWeights::new(self.n);
        for stripe in self.stripes.iter() {
            let weights = stripe.weights.lock().expect("traffic stripe poisoned");
            for (&k, &w) in weights.iter() {
                out.record(k, w);
            }
        }
        out
    }

    /// Drains every stripe into a plain [`TrafficWeights`] and forgets
    /// the observed load (each rebalance consumes its own epoch of
    /// traffic). Write counters keep running — they drive the sampling
    /// phase, not the weights.
    pub fn drain(&self) -> TrafficWeights {
        let mut out = TrafficWeights::new(self.n);
        for stripe in self.stripes.iter() {
            let mut weights = stripe.weights.lock().expect("traffic stripe poisoned");
            for (k, w) in std::mem::take(&mut *weights) {
                out.record(k, w);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightedGrid;
    use sfc_core::{Grid, SpaceFillingCurve, ZCurve};

    #[test]
    fn record_accumulates_and_iterates_in_curve_order() {
        let mut t = TrafficWeights::new(64);
        t.record(9, 2.0);
        t.record(3, 1.0);
        t.record(9, 0.5);
        assert_eq!(t.observed(), 2);
        assert_eq!(t.entries().collect::<Vec<_>>(), vec![(3, 1.0), (9, 2.5)]);
        assert!((t.total() - 3.5).abs() < 1e-12);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn decay_fades_and_drops_noise() {
        let mut t = TrafficWeights::new(16);
        t.record(1, 1.0);
        t.record(2, 1e-12);
        t.decay(0.5);
        assert_eq!(t.entries().collect::<Vec<_>>(), vec![(1, 0.5)]);
        t.decay(0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn empty_traffic_partitions_uniformly() {
        let t = TrafficWeights::new(10);
        let part = t.partition_min_bottleneck(3, 1e-9);
        assert_eq!(part.boundaries(), &[0, 4, 7, 10]);
    }

    #[test]
    fn sparse_partition_matches_dense_on_materialised_weights() {
        // Observing every cell's weight must reproduce the dense
        // min-bottleneck result: same bottleneck on the same weight
        // vector.
        let grid = Grid::<2>::new(3).unwrap();
        let z = ZCurve::<2>::over(grid);
        let dense_weights: Vec<f64> = (0..64u32)
            .map(|i| f64::from((i * 37) % 11) + 0.25)
            .collect();
        // `WeightedGrid` weights are row-major; permute ours back so the
        // curve order matches `dense_weights`.
        let mut row_major = vec![0.0f64; 64];
        for (idx, &w) in dense_weights.iter().enumerate() {
            let cell = z.point_of(idx as u128);
            row_major[grid.row_major_rank(&cell) as usize] = w;
        }
        let dense = crate::partition_min_bottleneck(
            &z,
            &WeightedGrid::from_weights(grid, row_major),
            4,
            1e-12,
        );
        let mut t = TrafficWeights::new(64);
        for (idx, &w) in dense_weights.iter().enumerate() {
            t.record(idx as u128, w);
        }
        let sparse = t.partition_min_bottleneck(4, 1e-12);
        assert_eq!(sparse.boundaries(), dense.boundaries());
        assert!(
            (sparse.bottleneck(&dense_weights) - dense.bottleneck(&dense_weights)).abs() < 1e-9
        );
    }

    #[test]
    fn sparse_partition_balances_skewed_observations() {
        // All weight on two distant hot cells: with 2 parts each hot cell
        // must land in its own part.
        let mut t = TrafficWeights::new(1 << 20);
        t.record(100, 50.0);
        t.record(900_000, 50.0);
        let part = t.partition_min_bottleneck(2, 1e-9);
        assert_eq!(part.parts(), 2);
        assert_ne!(part.part_of(100), part.part_of(900_000));
        // The cut lands at an observed index.
        assert_eq!(part.boundaries()[1], 900_000);
    }

    #[test]
    #[should_panic(expected = "outside 0..")]
    fn record_rejects_out_of_domain_keys() {
        let mut t = TrafficWeights::new(8);
        t.record(8, 1.0);
    }

    #[test]
    fn concurrent_unsampled_recording_is_exact() {
        let t = ConcurrentTraffic::new(1 << 10, 4);
        for i in 0..100u64 {
            t.record_write((i % 4) as usize, u128::from(i));
        }
        let merged = t.merged();
        assert_eq!(merged.observed(), 100);
        assert!((merged.total() - 100.0).abs() < 1e-9);
        // Drain consumes; a second drain sees nothing.
        let drained = t.drain();
        assert!((drained.total() - 100.0).abs() < 1e-9);
        assert!(t.drain().is_empty());
        // Write counters keep running across drains.
        assert_eq!(t.stripe_writes(0), 25);
    }

    #[test]
    fn per_stripe_sampling_cannot_undersample_a_hot_stripe() {
        // Regression for the global-stride design: stripe 0 takes 400
        // writes, stripe 1 takes 4, interleaved. A single shared counter
        // with stride 4 could phase-lock so that (depending on the
        // interleaving) stripe 1's writes land on every sampled tick and
        // stripe 0 is under-counted. Per-stripe counters make each
        // stripe's recorded total depend only on its own write count.
        let t = ConcurrentTraffic::new(1 << 10, 2);
        t.set_sample_every(4);
        for i in 0..400u64 {
            t.record_write(0, u128::from(i % 64));
            if i % 100 == 0 {
                t.record_write(1, 512 + u128::from(i));
            }
        }
        let merged = t.merged();
        // Stripe 0: 400 writes at stride 4 → exactly 100 samples × 4.
        let hot: f64 = merged
            .entries()
            .filter(|&(k, _)| k < 512)
            .map(|(_, w)| w)
            .sum();
        assert!(
            (hot - 400.0).abs() < 1e-9,
            "hot stripe under-sampled: {hot}"
        );
        // Stripe 1: 4 writes at stride 4 → at least the first sampled.
        let cold: f64 = merged
            .entries()
            .filter(|&(k, _)| k >= 512)
            .map(|(_, w)| w)
            .sum();
        assert!(cold >= 4.0, "cold stripe lost its traffic: {cold}");
    }

    #[test]
    fn concurrent_recording_is_race_free_across_threads() {
        // 4 writer threads × 2 stripes, sampling 1 (exact): every write
        // must be counted exactly once — fetch_add and the stripe mutex
        // may lose nothing.
        let t = ConcurrentTraffic::new(1 << 20, 2);
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for thread in 0..4u64 {
                let t = &t;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let stripe = (thread % 2) as usize;
                        t.record_write(stripe, u128::from(thread * per_thread + i));
                    }
                });
            }
        });
        let merged = t.merged();
        assert!((merged.total() - 20_000.0).abs() < 1e-9);
        assert_eq!(merged.observed(), 20_000);
        assert_eq!(t.stripe_writes(0) + t.stripe_writes(1), 20_000);
    }

    #[test]
    fn sampled_weight_total_tracks_true_write_count() {
        let t = ConcurrentTraffic::new(1 << 12, 3);
        t.set_sample_every(8);
        let writes = 4_000u64;
        for i in 0..writes {
            t.record_write((i % 3) as usize, u128::from(i % 1024));
        }
        let total = t.merged().total();
        // Each stripe records ceil(writes_j / 8) samples of weight 8: the
        // total can overshoot by at most (every − 1) per stripe.
        let slack = 8.0 * 3.0;
        assert!(
            (total - writes as f64).abs() <= slack,
            "sampled total {total} drifted from {writes}"
        );
    }
}
