//! # sfc-partition — SFC-based parallel domain decomposition
//!
//! The paper's opening motivation (Section I) is data partitioning for
//! parallel and scientific computing: order the cells of a domain along a
//! space filling curve, then cut the 1-D order into `p` contiguous chunks.
//! Proximity preservation is what makes the resulting parts *compact*: a
//! curve with low stretch keeps each part's cells close together in space,
//! which bounds the communication surface between parts.
//!
//! This crate is the application substrate for the `app-partition`
//! experiments:
//!
//! * [`weights`] — synthetic weighted workloads (uniform, corner-heavy
//!   exponential, Gaussian clusters) standing in for the adaptive-mesh /
//!   N-body cell loads of the cited applications.
//! * [`partitioner`] — cutting a curve order into `p` weighted chunks:
//!   greedy prefix filling and an optimal min-bottleneck partition
//!   (parametric search over the classic "chains-on-a-line" problem),
//!   dense or sparse. [`Partition`] ranges are **half-open**
//!   (`boundaries[j] .. boundaries[j+1]`), so every curve index belongs
//!   to exactly one part.
//! * [`traffic`] — sparse live-traffic weight feedback: a running system
//!   records observed per-cell load ([`TrafficWeights`]) and derives
//!   fresh min-bottleneck boundaries from it, which is how the
//!   `sfc-store` sharded store rebalances its shards.
//! * [`quality`] — load imbalance, edge cut and communication volume of a
//!   partition, computable sequentially or Rayon-parallel.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod partitioner;
pub mod quality;
pub mod traffic;
pub mod weights;

pub use partitioner::{
    partition_greedy, partition_min_bottleneck, partition_min_bottleneck_sparse, Partition,
};
pub use quality::{evaluate, PartitionQuality};
pub use traffic::{ConcurrentTraffic, TrafficWeights};
pub use weights::{WeightedGrid, Workload};
