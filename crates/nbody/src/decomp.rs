//! SFC work decomposition of the body array and spatial-compactness
//! metrics.
//!
//! Sorting bodies along a curve and cutting the order into `p` contiguous
//! chunks is exactly the Warren–Salmon / Aluru–Sevilgen decomposition. How
//! *compact* the chunks are in space is governed by the curve's proximity
//! preservation — the `app-nbody` experiment reports the metrics below per
//! curve family, connecting the paper's stretch theory to an end-to-end
//! N-body quantity.

use crate::body::{body_keys, quantize, Body};
use sfc_core::{CurveIndex, Point, SpaceFillingCurve};
use sfc_store::SfcStore;
use std::collections::BTreeMap;
use std::fmt;

/// One chunk of an SFC decomposition of the sorted body array.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Range of body indices (into the curve-sorted array).
    pub range: std::ops::Range<usize>,
    /// Axis-aligned bounding-box volume of the chunk's bodies.
    pub bbox_volume: f64,
    /// Largest bounding-box side length.
    pub bbox_longest_side: f64,
}

/// Sorts bodies by `curve` key and splits them into `p` near-equal-count
/// contiguous chunks, reporting each chunk's spatial compactness.
pub fn decompose<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    bodies: &mut [Body<D>],
    p: usize,
) -> Vec<Chunk> {
    crate::body::sort_by_curve(curve, bodies);
    chunks_of(bodies, p)
}

/// Splits a body array **already in curve order** into `p` near-equal
/// contiguous chunks with their compactness metrics.
fn chunks_of<const D: usize>(sorted: &[Body<D>], p: usize) -> Vec<Chunk> {
    assert!(p >= 1, "need at least one chunk");
    let n = sorted.len();
    let mut chunks = Vec::with_capacity(p);
    for j in 0..p {
        let start = j * n / p;
        let end = (j + 1) * n / p;
        let slice = &sorted[start..end];
        let (volume, longest) = bbox(slice);
        chunks.push(Chunk {
            range: start..end,
            bbox_volume: volume,
            bbox_longest_side: longest,
        });
    }
    chunks
}

/// Maintains the curve order of a moving body set across simulation steps.
///
/// The constructor is the policy choice:
///
/// * [`Orderer::rebuild`] — the static path: every call batch-encodes all
///   bodies and re-sorts from scratch (exactly what the experiments do).
/// * [`Orderer::incremental`] — bodies are registered in an [`SfcStore`]
///   keyed by their quantised grid cell (payload: the body slots in that
///   cell); each call re-ingests **only the bodies whose cell changed**
///   since the previous call, then reads the order back from the store's
///   snapshot iterator. With a small time step, most bodies stay in their
///   cell, so the per-step cost is driven by cell crossings instead of
///   `n log n`.
///
/// Bodies are identified by their slot in the caller's array, which must
/// be stable across calls (don't reorder the array between calls in
/// incremental mode — gather through the returned permutation instead).
pub struct Orderer<const D: usize, C: SpaceFillingCurve<D> + Clone> {
    curve: C,
    mode: Mode<D, C>,
}

// One `Mode` lives per `Orderer`; boxing the store would buy nothing
// but an extra indirection on the per-step hot path.
#[allow(clippy::large_enum_variant)]
enum Mode<const D: usize, C: SpaceFillingCurve<D> + Clone> {
    Rebuild,
    Incremental {
        /// Cell → slots of the bodies currently in it.
        store: SfcStore<D, Vec<u32>, C>,
        /// Last known cell per body slot.
        cells: Vec<Point<D>>,
    },
}

impl<const D: usize, C: SpaceFillingCurve<D> + Clone> fmt::Debug for Orderer<D, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match &self.mode {
            Mode::Rebuild => "rebuild",
            Mode::Incremental { .. } => "incremental",
        };
        f.debug_struct("Orderer")
            .field("curve", &self.curve.name())
            .field("mode", &mode)
            .finish()
    }
}

impl<const D: usize, C: SpaceFillingCurve<D> + Clone> Orderer<D, C> {
    /// An orderer that re-sorts from scratch on every call (static path).
    pub fn rebuild(curve: C) -> Self {
        Self {
            curve,
            mode: Mode::Rebuild,
        }
    }

    /// An orderer that keeps bodies registered in an [`SfcStore`] and
    /// re-ingests only bodies whose grid cell changed.
    pub fn incremental(curve: C) -> Self {
        let store = SfcStore::new(curve.clone());
        Self {
            curve,
            mode: Mode::Incremental {
                store,
                cells: Vec::new(),
            },
        }
    }

    /// The permutation placing `bodies` in curve order: `perm[s]` is the
    /// slot of the body ranked `s`-th. Bodies sharing a cell keep a
    /// deterministic (mode-specific) relative order.
    pub fn permutation(&mut self, bodies: &[Body<D>]) -> Vec<u32> {
        self.permutation_with_keys(bodies).0
    }

    /// [`permutation`](Self::permutation) plus the curve key of each
    /// ranked body (`keys[s]` belongs to body `perm[s]`; non-decreasing).
    /// The keys fall out of the ordering work in both modes, so callers
    /// that need them — per-step tree builds — avoid a second batch
    /// encode.
    pub fn permutation_with_keys(&mut self, bodies: &[Body<D>]) -> (Vec<u32>, Vec<CurveIndex>) {
        assert!(
            u32::try_from(bodies.len()).is_ok(),
            "at most u32::MAX bodies"
        );
        match &mut self.mode {
            Mode::Rebuild => {
                let mut keys = Vec::new();
                body_keys(&self.curve, bodies, &mut keys);
                let mut perm: Vec<u32> = (0..bodies.len() as u32).collect();
                perm.sort_by_key(|&i| keys[i as usize]);
                let sorted_keys = perm.iter().map(|&i| keys[i as usize]).collect();
                (perm, sorted_keys)
            }
            Mode::Incremental { store, cells } => {
                let grid = self.curve.grid();
                if cells.len() != bodies.len() {
                    // (Re)register the whole set in one bulk load.
                    *cells = bodies.iter().map(|b| quantize(grid, &b.pos)).collect();
                    let mut groups: BTreeMap<Point<D>, Vec<u32>> = BTreeMap::new();
                    for (slot, &cell) in cells.iter().enumerate() {
                        groups.entry(cell).or_default().push(slot as u32);
                    }
                    *store = SfcStore::bulk_load(self.curve.clone(), groups);
                } else {
                    for (slot, body) in bodies.iter().enumerate() {
                        let cell = quantize(grid, &body.pos);
                        if cell != cells[slot] {
                            move_slot(store, cells[slot], cell, slot as u32);
                            cells[slot] = cell;
                        }
                    }
                }
                let mut perm = Vec::with_capacity(bodies.len());
                let mut keys = Vec::with_capacity(bodies.len());
                for entry in store.iter() {
                    for &slot in entry.payload {
                        perm.push(slot);
                        keys.push(entry.key);
                    }
                }
                (perm, keys)
            }
        }
    }

    /// [`permutation`](Self::permutation), then chunking of the ordered
    /// view — the incremental-friendly face of [`decompose`] (the caller's
    /// array is left untouched).
    pub fn decompose(&mut self, bodies: &[Body<D>], p: usize) -> (Vec<u32>, Vec<Chunk>) {
        let perm = self.permutation(bodies);
        let sorted: Vec<Body<D>> = perm.iter().map(|&i| bodies[i as usize]).collect();
        let chunks = chunks_of(&sorted, p);
        (perm, chunks)
    }
}

/// Moves body `slot` from cell `from` to cell `to` in the registry.
fn move_slot<const D: usize, C: SpaceFillingCurve<D> + Clone>(
    store: &mut SfcStore<D, Vec<u32>, C>,
    from: Point<D>,
    to: Point<D>,
    slot: u32,
) {
    let mut old = store.get(from).cloned().unwrap_or_default();
    old.retain(|&s| s != slot);
    if old.is_empty() {
        store.delete(from);
    } else {
        store.insert(from, old);
    }
    let mut new = store.get(to).cloned().unwrap_or_default();
    new.push(slot);
    store.insert(to, new);
}

fn bbox<const D: usize>(bodies: &[Body<D>]) -> (f64, f64) {
    if bodies.is_empty() {
        return (0.0, 0.0);
    }
    let mut lo = [f64::INFINITY; D];
    let mut hi = [f64::NEG_INFINITY; D];
    for b in bodies {
        for a in 0..D {
            lo[a] = lo[a].min(b.pos[a]);
            hi[a] = hi[a].max(b.pos[a]);
        }
    }
    let mut volume = 1.0;
    let mut longest = 0.0f64;
    for a in 0..D {
        let side = hi[a] - lo[a];
        volume *= side;
        longest = longest.max(side);
    }
    (volume, longest)
}

/// Aggregate compactness of a decomposition: the mean bounding-box volume
/// per chunk (lower = more compact parts = less halo communication).
pub fn mean_chunk_volume(chunks: &[Chunk]) -> f64 {
    if chunks.is_empty() {
        return 0.0;
    }
    chunks.iter().map(|c| c.bbox_volume).sum::<f64>() / chunks.len() as f64
}

/// The average over consecutive (sorted) body pairs of their Euclidean
/// distance — a memory-locality proxy: low values mean neighboring array
/// entries are spatial neighbors, so force kernels walk coherent data.
pub fn sequential_locality<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    bodies: &mut [Body<D>],
) -> f64 {
    crate::body::sort_by_curve(curve, bodies);
    if bodies.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for w in bodies.windows(2) {
        total += w[0].dist_sq(&w[1]).sqrt();
    }
    total / (bodies.len() - 1) as f64
}

/// Mean key-rank distance between each body and its spatially nearest
/// other bodies — the *empirical nearest-neighbor stretch of the point
/// set* under this curve, the direct analogue of the paper's `D^avg` for
/// continuous data: per body, the rank distance is averaged over **all**
/// bodies tied at the minimum spatial distance (mirroring the paper's
/// average over the whole neighbor set `N(α)`), then averaged over bodies.
///
/// `O(n²)`; intended for experiment-scale inputs.
pub fn empirical_nn_stretch<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    bodies: &mut [Body<D>],
) -> f64 {
    crate::body::sort_by_curve(curve, bodies);
    let n = bodies.len();
    assert!(n >= 2, "need at least two bodies");
    let mut total = 0.0f64;
    for i in 0..n {
        let mut best = f64::INFINITY;
        for j in 0..n {
            if i != j {
                best = best.min(bodies[i].dist_sq(&bodies[j]));
            }
        }
        let mut rank_sum = 0.0f64;
        let mut ties = 0u64;
        for j in 0..n {
            if i != j && bodies[i].dist_sq(&bodies[j]) <= best * (1.0 + 1e-12) {
                rank_sum += (i as f64 - j as f64).abs();
                ties += 1;
            }
        }
        total += rank_sum / ties as f64;
    }
    total / n as f64
}

/// Per-curve summary for the `app-nbody` experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct DecompSummary {
    /// Curve name.
    pub curve: String,
    /// Mean chunk bounding-box volume for the given `p`.
    pub mean_chunk_volume: f64,
    /// Mean consecutive-body distance after sorting.
    pub sequential_locality: f64,
    /// Mean rank distance to the spatial nearest neighbor.
    pub empirical_nn_stretch: f64,
}

/// Computes the full summary for one curve (sorts `bodies` as a side
/// effect).
pub fn summarize<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    bodies: &mut [Body<D>],
    p: usize,
) -> DecompSummary {
    let chunks = decompose(curve, bodies, p);
    DecompSummary {
        curve: curve.name(),
        mean_chunk_volume: mean_chunk_volume(&chunks),
        sequential_locality: sequential_locality(curve, bodies),
        empirical_nn_stretch: empirical_nn_stretch(curve, bodies),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{sample_bodies, Distribution};
    use rand::{Rng, SeedableRng};
    use sfc_core::{HilbertCurve, SimpleCurve, ZCurve};

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(77)
    }

    #[test]
    fn decompose_covers_all_bodies() {
        let mut bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 100, &mut rng());
        let z = ZCurve::<2>::new(6).unwrap();
        let chunks = decompose(&z, &mut bodies, 7);
        assert_eq!(chunks.len(), 7);
        assert_eq!(chunks[0].range.start, 0);
        assert_eq!(chunks.last().unwrap().range.end, 100);
        for w in chunks.windows(2) {
            assert_eq!(w[0].range.end, w[1].range.start);
        }
        // Near-equal counts.
        for c in &chunks {
            assert!(c.range.len() == 14 || c.range.len() == 15);
        }
    }

    #[test]
    fn compact_curves_make_smaller_chunks_than_slabs() {
        let mut b1: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 1_000, &mut rng());
        let mut b2 = b1.clone();
        let hilbert = HilbertCurve::<2>::new(6).unwrap();
        let simple = SimpleCurve::<2>::new(6).unwrap();
        // Simple-curve chunks are 1/16-high full-width slabs: their
        // longest bbox side is ≈ 1.0. Hilbert chunks are blocky: their
        // longest side is ≈ 1/4. (Bounding-box *volume* is not
        // discriminative here — an unaligned Hilbert segment can have a
        // slightly larger sloppy bbox than a tight slab — so the metric of
        // record is the longest side.)
        let lh = decompose(&hilbert, &mut b1, 16)
            .iter()
            .map(|c| c.bbox_longest_side)
            .sum::<f64>()
            / 16.0;
        let ls = decompose(&simple, &mut b2, 16)
            .iter()
            .map(|c| c.bbox_longest_side)
            .sum::<f64>()
            / 16.0;
        assert!(lh < 0.75 * ls, "hilbert longest side {lh} vs simple {ls}");
    }

    #[test]
    fn sequential_locality_ranks_curves_sensibly() {
        let base: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 2_000, &mut rng());
        let hilbert = HilbertCurve::<2>::new(7).unwrap();
        let simple = SimpleCurve::<2>::new(7).unwrap();
        let z = ZCurve::<2>::new(7).unwrap();
        let mut b = base.clone();
        let sl_h = sequential_locality(&hilbert, &mut b);
        let mut b = base.clone();
        let sl_z = sequential_locality(&z, &mut b);
        let mut b = base.clone();
        let sl_s = sequential_locality(&simple, &mut b);
        // Hilbert (continuous) beats Z (jumps), which beats row-major
        // slabs for consecutive-body distance.
        assert!(sl_h < sl_z, "hilbert {sl_h} vs z {sl_z}");
        assert!(sl_z < sl_s, "z {sl_z} vs simple {sl_s}");
    }

    #[test]
    fn empirical_nn_stretch_mirrors_the_papers_surprise() {
        // Place bodies exactly on an 8×8 sub-grid: the empirical NN stretch
        // then mirrors the paper's cell-based D^avg. The paper's surprising
        // finding (Theorems 2 & 3, Section VI open question) is that the
        // *average* NN-stretch cannot be much improved by curve
        // sophistication: the trivial simple curve already matches the Z
        // curve, and the measured Hilbert value is in the same Θ(n^{1−1/d})
        // ballpark — NOT asymptotically better. Measured on this grid:
        // hilbert ≈ 4.84, simple = 4.5.
        let mut bodies = Vec::new();
        for x in 0..8 {
            for y in 0..8 {
                bodies.push(Body::<2>::at_rest(
                    [x as f64 / 8.0 + 0.01, y as f64 / 8.0 + 0.01],
                    1.0,
                ));
            }
        }
        let hilbert = HilbertCurve::<2>::new(3).unwrap();
        let simple = SimpleCurve::<2>::new(3).unwrap();
        let eh = empirical_nn_stretch(&hilbert, &mut bodies.clone());
        let es = empirical_nn_stretch(&simple, &mut bodies.clone());
        assert!(eh >= 1.0 && es >= 1.0, "rank distance to NN is at least 1");
        // Same ballpark: neither curve beats the other by more than 25%.
        let ratio = eh / es;
        assert!(
            (0.8..1.25).contains(&ratio),
            "hilbert {eh} vs simple {es} (ratio {ratio})"
        );
        // The simple curve hits exactly the interior value 4.5 from the
        // Theorem 3 proof (boundary ties average out on this torus-free
        // layout).
        assert!((es - 4.5).abs() < 0.01, "simple measured {es}");
    }

    #[test]
    fn summarize_produces_consistent_fields() {
        let mut bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 200, &mut rng());
        let z = ZCurve::<2>::new(5).unwrap();
        let s = summarize(&z, &mut bodies, 4);
        assert_eq!(s.curve, "Z");
        assert!(s.mean_chunk_volume > 0.0 && s.mean_chunk_volume <= 1.0);
        assert!(s.sequential_locality > 0.0);
        assert!(s.empirical_nn_stretch >= 1.0);
    }

    #[test]
    fn incremental_orderer_tracks_moving_bodies() {
        let z = ZCurve::<2>::new(5).unwrap();
        let mut bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 400, &mut rng());
        let mut inc = Orderer::incremental(z);
        let mut reb = Orderer::rebuild(z);
        let mut step_rng = rng();
        for step in 0..10 {
            let pi = inc.permutation(&bodies);
            let pr = reb.permutation(&bodies);
            // Both are valid permutations …
            let mut seen = vec![false; bodies.len()];
            for &i in &pi {
                assert!(!seen[i as usize], "duplicate slot {i}");
                seen[i as usize] = true;
            }
            // … and order the bodies by identical key sequences.
            let keys = |perm: &[u32]| -> Vec<u128> {
                perm.iter()
                    .map(|&i| crate::body::body_key(&z, &bodies[i as usize]))
                    .collect()
            };
            let ki = keys(&pi);
            assert_eq!(ki, keys(&pr), "step {step}");
            for w in ki.windows(2) {
                assert!(w[0] <= w[1]);
            }
            // Drift a subset of bodies (some crossing cells).
            for body in bodies.iter_mut().take(80) {
                for axis in 0..2 {
                    let delta: f64 = step_rng.gen::<f64>() * 0.06 - 0.03;
                    body.pos[axis] = (body.pos[axis] + delta).rem_euclid(1.0).min(1.0 - 1e-12);
                }
            }
        }
    }

    #[test]
    fn orderer_decompose_matches_static_decompose() {
        let z = ZCurve::<2>::new(6).unwrap();
        let bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 500, &mut rng());
        let mut inc = Orderer::incremental(z);
        let (perm, chunks) = inc.decompose(&bodies, 8);
        let mut sorted = bodies.clone();
        let static_chunks = decompose(&z, &mut sorted, 8);
        assert_eq!(chunks.len(), static_chunks.len());
        for (a, b) in chunks.iter().zip(&static_chunks) {
            assert_eq!(a.range, b.range);
        }
        // The gathered view and the statically sorted view carry the same
        // key sequence.
        let gathered_keys: Vec<u128> = perm
            .iter()
            .map(|&i| crate::body::body_key(&z, &bodies[i as usize]))
            .collect();
        let static_keys: Vec<u128> = sorted
            .iter()
            .map(|b| crate::body::body_key(&z, b))
            .collect();
        assert_eq!(gathered_keys, static_keys);
    }

    #[test]
    fn incremental_orderer_reregisters_on_size_change() {
        let z = ZCurve::<2>::new(4).unwrap();
        let mut inc = Orderer::incremental(z);
        let mut bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 50, &mut rng());
        assert_eq!(inc.permutation(&bodies).len(), 50);
        bodies.extend(sample_bodies::<2, _>(Distribution::Uniform, 25, &mut rng()));
        let perm = inc.permutation(&bodies);
        assert_eq!(perm.len(), 75);
        let mut seen = [false; 75];
        for &i in &perm {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
    }

    #[test]
    fn permutation_with_keys_returns_the_ranked_keys() {
        let z = ZCurve::<2>::new(5).unwrap();
        let bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 200, &mut rng());
        for mut orderer in [Orderer::rebuild(z), Orderer::incremental(z)] {
            let (perm, keys) = orderer.permutation_with_keys(&bodies);
            assert_eq!(perm.len(), keys.len());
            for (s, &slot) in perm.iter().enumerate() {
                assert_eq!(
                    keys[s],
                    crate::body::body_key(&z, &bodies[slot as usize]),
                    "key of rank {s}"
                );
            }
            for w in keys.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn bbox_of_empty_and_single() {
        let chunks = decompose(
            &ZCurve::<2>::new(3).unwrap(),
            &mut Vec::<Body<2>>::new()[..],
            1,
        );
        assert_eq!(chunks[0].bbox_volume, 0.0);
        let mut one = vec![Body::<2>::at_rest([0.5, 0.5], 1.0)];
        let chunks = decompose(&ZCurve::<2>::new(3).unwrap(), &mut one, 1);
        assert_eq!(chunks[0].bbox_volume, 0.0);
    }
}
