//! SFC work decomposition of the body array and spatial-compactness
//! metrics.
//!
//! Sorting bodies along a curve and cutting the order into `p` contiguous
//! chunks is exactly the Warren–Salmon / Aluru–Sevilgen decomposition. How
//! *compact* the chunks are in space is governed by the curve's proximity
//! preservation — the `app-nbody` experiment reports the metrics below per
//! curve family, connecting the paper's stretch theory to an end-to-end
//! N-body quantity.

use crate::body::Body;
use sfc_core::SpaceFillingCurve;

/// One chunk of an SFC decomposition of the sorted body array.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Range of body indices (into the curve-sorted array).
    pub range: std::ops::Range<usize>,
    /// Axis-aligned bounding-box volume of the chunk's bodies.
    pub bbox_volume: f64,
    /// Largest bounding-box side length.
    pub bbox_longest_side: f64,
}

/// Sorts bodies by `curve` key and splits them into `p` near-equal-count
/// contiguous chunks, reporting each chunk's spatial compactness.
pub fn decompose<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    bodies: &mut [Body<D>],
    p: usize,
) -> Vec<Chunk> {
    assert!(p >= 1, "need at least one chunk");
    crate::body::sort_by_curve(curve, bodies);
    let n = bodies.len();
    let mut chunks = Vec::with_capacity(p);
    for j in 0..p {
        let start = j * n / p;
        let end = (j + 1) * n / p;
        let slice = &bodies[start..end];
        let (volume, longest) = bbox(slice);
        chunks.push(Chunk {
            range: start..end,
            bbox_volume: volume,
            bbox_longest_side: longest,
        });
    }
    chunks
}

fn bbox<const D: usize>(bodies: &[Body<D>]) -> (f64, f64) {
    if bodies.is_empty() {
        return (0.0, 0.0);
    }
    let mut lo = [f64::INFINITY; D];
    let mut hi = [f64::NEG_INFINITY; D];
    for b in bodies {
        for a in 0..D {
            lo[a] = lo[a].min(b.pos[a]);
            hi[a] = hi[a].max(b.pos[a]);
        }
    }
    let mut volume = 1.0;
    let mut longest = 0.0f64;
    for a in 0..D {
        let side = hi[a] - lo[a];
        volume *= side;
        longest = longest.max(side);
    }
    (volume, longest)
}

/// Aggregate compactness of a decomposition: the mean bounding-box volume
/// per chunk (lower = more compact parts = less halo communication).
pub fn mean_chunk_volume(chunks: &[Chunk]) -> f64 {
    if chunks.is_empty() {
        return 0.0;
    }
    chunks.iter().map(|c| c.bbox_volume).sum::<f64>() / chunks.len() as f64
}

/// The average over consecutive (sorted) body pairs of their Euclidean
/// distance — a memory-locality proxy: low values mean neighboring array
/// entries are spatial neighbors, so force kernels walk coherent data.
pub fn sequential_locality<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    bodies: &mut [Body<D>],
) -> f64 {
    crate::body::sort_by_curve(curve, bodies);
    if bodies.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for w in bodies.windows(2) {
        total += w[0].dist_sq(&w[1]).sqrt();
    }
    total / (bodies.len() - 1) as f64
}

/// Mean key-rank distance between each body and its spatially nearest
/// other bodies — the *empirical nearest-neighbor stretch of the point
/// set* under this curve, the direct analogue of the paper's `D^avg` for
/// continuous data: per body, the rank distance is averaged over **all**
/// bodies tied at the minimum spatial distance (mirroring the paper's
/// average over the whole neighbor set `N(α)`), then averaged over bodies.
///
/// `O(n²)`; intended for experiment-scale inputs.
pub fn empirical_nn_stretch<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    bodies: &mut [Body<D>],
) -> f64 {
    crate::body::sort_by_curve(curve, bodies);
    let n = bodies.len();
    assert!(n >= 2, "need at least two bodies");
    let mut total = 0.0f64;
    for i in 0..n {
        let mut best = f64::INFINITY;
        for j in 0..n {
            if i != j {
                best = best.min(bodies[i].dist_sq(&bodies[j]));
            }
        }
        let mut rank_sum = 0.0f64;
        let mut ties = 0u64;
        for j in 0..n {
            if i != j && bodies[i].dist_sq(&bodies[j]) <= best * (1.0 + 1e-12) {
                rank_sum += (i as f64 - j as f64).abs();
                ties += 1;
            }
        }
        total += rank_sum / ties as f64;
    }
    total / n as f64
}

/// Per-curve summary for the `app-nbody` experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct DecompSummary {
    /// Curve name.
    pub curve: String,
    /// Mean chunk bounding-box volume for the given `p`.
    pub mean_chunk_volume: f64,
    /// Mean consecutive-body distance after sorting.
    pub sequential_locality: f64,
    /// Mean rank distance to the spatial nearest neighbor.
    pub empirical_nn_stretch: f64,
}

/// Computes the full summary for one curve (sorts `bodies` as a side
/// effect).
pub fn summarize<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    bodies: &mut [Body<D>],
    p: usize,
) -> DecompSummary {
    let chunks = decompose(curve, bodies, p);
    DecompSummary {
        curve: curve.name(),
        mean_chunk_volume: mean_chunk_volume(&chunks),
        sequential_locality: sequential_locality(curve, bodies),
        empirical_nn_stretch: empirical_nn_stretch(curve, bodies),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{sample_bodies, Distribution};
    use rand::SeedableRng;
    use sfc_core::{HilbertCurve, SimpleCurve, ZCurve};

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(77)
    }

    #[test]
    fn decompose_covers_all_bodies() {
        let mut bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 100, &mut rng());
        let z = ZCurve::<2>::new(6).unwrap();
        let chunks = decompose(&z, &mut bodies, 7);
        assert_eq!(chunks.len(), 7);
        assert_eq!(chunks[0].range.start, 0);
        assert_eq!(chunks.last().unwrap().range.end, 100);
        for w in chunks.windows(2) {
            assert_eq!(w[0].range.end, w[1].range.start);
        }
        // Near-equal counts.
        for c in &chunks {
            assert!(c.range.len() == 14 || c.range.len() == 15);
        }
    }

    #[test]
    fn compact_curves_make_smaller_chunks_than_slabs() {
        let mut b1: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 1_000, &mut rng());
        let mut b2 = b1.clone();
        let hilbert = HilbertCurve::<2>::new(6).unwrap();
        let simple = SimpleCurve::<2>::new(6).unwrap();
        // Simple-curve chunks are 1/16-high full-width slabs: their
        // longest bbox side is ≈ 1.0. Hilbert chunks are blocky: their
        // longest side is ≈ 1/4. (Bounding-box *volume* is not
        // discriminative here — an unaligned Hilbert segment can have a
        // slightly larger sloppy bbox than a tight slab — so the metric of
        // record is the longest side.)
        let lh = decompose(&hilbert, &mut b1, 16)
            .iter()
            .map(|c| c.bbox_longest_side)
            .sum::<f64>()
            / 16.0;
        let ls = decompose(&simple, &mut b2, 16)
            .iter()
            .map(|c| c.bbox_longest_side)
            .sum::<f64>()
            / 16.0;
        assert!(lh < 0.75 * ls, "hilbert longest side {lh} vs simple {ls}");
    }

    #[test]
    fn sequential_locality_ranks_curves_sensibly() {
        let base: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 2_000, &mut rng());
        let hilbert = HilbertCurve::<2>::new(7).unwrap();
        let simple = SimpleCurve::<2>::new(7).unwrap();
        let z = ZCurve::<2>::new(7).unwrap();
        let mut b = base.clone();
        let sl_h = sequential_locality(&hilbert, &mut b);
        let mut b = base.clone();
        let sl_z = sequential_locality(&z, &mut b);
        let mut b = base.clone();
        let sl_s = sequential_locality(&simple, &mut b);
        // Hilbert (continuous) beats Z (jumps), which beats row-major
        // slabs for consecutive-body distance.
        assert!(sl_h < sl_z, "hilbert {sl_h} vs z {sl_z}");
        assert!(sl_z < sl_s, "z {sl_z} vs simple {sl_s}");
    }

    #[test]
    fn empirical_nn_stretch_mirrors_the_papers_surprise() {
        // Place bodies exactly on an 8×8 sub-grid: the empirical NN stretch
        // then mirrors the paper's cell-based D^avg. The paper's surprising
        // finding (Theorems 2 & 3, Section VI open question) is that the
        // *average* NN-stretch cannot be much improved by curve
        // sophistication: the trivial simple curve already matches the Z
        // curve, and the measured Hilbert value is in the same Θ(n^{1−1/d})
        // ballpark — NOT asymptotically better. Measured on this grid:
        // hilbert ≈ 4.84, simple = 4.5.
        let mut bodies = Vec::new();
        for x in 0..8 {
            for y in 0..8 {
                bodies.push(Body::<2>::at_rest(
                    [x as f64 / 8.0 + 0.01, y as f64 / 8.0 + 0.01],
                    1.0,
                ));
            }
        }
        let hilbert = HilbertCurve::<2>::new(3).unwrap();
        let simple = SimpleCurve::<2>::new(3).unwrap();
        let eh = empirical_nn_stretch(&hilbert, &mut bodies.clone());
        let es = empirical_nn_stretch(&simple, &mut bodies.clone());
        assert!(eh >= 1.0 && es >= 1.0, "rank distance to NN is at least 1");
        // Same ballpark: neither curve beats the other by more than 25%.
        let ratio = eh / es;
        assert!(
            (0.8..1.25).contains(&ratio),
            "hilbert {eh} vs simple {es} (ratio {ratio})"
        );
        // The simple curve hits exactly the interior value 4.5 from the
        // Theorem 3 proof (boundary ties average out on this torus-free
        // layout).
        assert!((es - 4.5).abs() < 0.01, "simple measured {es}");
    }

    #[test]
    fn summarize_produces_consistent_fields() {
        let mut bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 200, &mut rng());
        let z = ZCurve::<2>::new(5).unwrap();
        let s = summarize(&z, &mut bodies, 4);
        assert_eq!(s.curve, "Z");
        assert!(s.mean_chunk_volume > 0.0 && s.mean_chunk_volume <= 1.0);
        assert!(s.sequential_locality > 0.0);
        assert!(s.empirical_nn_stretch >= 1.0);
    }

    #[test]
    fn bbox_of_empty_and_single() {
        let chunks = decompose(
            &ZCurve::<2>::new(3).unwrap(),
            &mut Vec::<Body<2>>::new()[..],
            1,
        );
        assert_eq!(chunks[0].bbox_volume, 0.0);
        let mut one = vec![Body::<2>::at_rest([0.5, 0.5], 1.0)];
        let chunks = decompose(&ZCurve::<2>::new(3).unwrap(), &mut one, 1);
        assert_eq!(chunks[0].bbox_volume, 0.0);
    }
}
