//! The Morton-keyed tree over a sorted body array (Warren–Salmon style).
//!
//! Because bodies are sorted by Morton key, every tree node's bodies form a
//! **contiguous range** of the array — the in-memory equivalent of
//! Warren & Salmon's hashed oct-tree keys. Construction is a recursive
//! split of the sorted range on successive `d`-bit key digits; no hashing
//! or per-body pointers are needed.

use crate::body::{body_key, sort_by_curve, Body};
use sfc_core::{CurveIndex, ZCurve};
use std::ops::Range;

/// A node of the tree: a `2^{-level}`-sided cube owning a contiguous body
/// range.
#[derive(Debug, Clone)]
pub struct Node<const D: usize> {
    /// Geometric center of the node's cube in `[0,1)^d`.
    pub center: [f64; D],
    /// Half the side length of the node's cube.
    pub half_size: f64,
    /// Center of mass of the bodies in the node.
    pub com: [f64; D],
    /// Total mass.
    pub mass: f64,
    /// The bodies owned, as a range into the sorted array.
    pub bodies: Range<usize>,
    /// Child node ids (empty for leaves).
    pub children: Vec<usize>,
    /// Tree depth of this node (root = 0).
    pub level: u32,
}

impl<const D: usize> Node<D> {
    /// Side length of the node's cube.
    pub fn size(&self) -> f64 {
        2.0 * self.half_size
    }

    /// `true` for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The Barnes–Hut tree: sorted bodies plus the node arena.
#[derive(Debug, Clone)]
pub struct Tree<const D: usize> {
    bodies: Vec<Body<D>>,
    nodes: Vec<Node<D>>,
    leaf_cap: usize,
    max_level: u32,
}

impl<const D: usize> Tree<D> {
    /// Builds the tree: sorts `bodies` by Morton key at resolution `2^k`,
    /// then splits ranges until each leaf holds at most `leaf_cap` bodies
    /// or the key resolution is exhausted.
    pub fn build(mut bodies: Vec<Body<D>>, k: u32, leaf_cap: usize) -> Self {
        assert!(leaf_cap >= 1, "leaf capacity must be at least 1");
        let z = ZCurve::<D>::new(k).expect("valid resolution");
        sort_by_curve(&z, &mut bodies);
        let keys: Vec<CurveIndex> = bodies.iter().map(|b| body_key(&z, b)).collect();
        Self::from_sorted(bodies, &keys, k, leaf_cap)
    }

    /// Builds the tree while reporting the sort permutation:
    /// `order[s]` is the original index of the body now at sorted position
    /// `s`. Needed when force results must be mapped back to an external
    /// body order (e.g. inside an integrator step).
    pub fn build_tracked(bodies: &[Body<D>], k: u32, leaf_cap: usize) -> (Self, Vec<usize>) {
        assert!(leaf_cap >= 1, "leaf capacity must be at least 1");
        let z = ZCurve::<D>::new(k).expect("valid resolution");
        let keys: Vec<CurveIndex> = bodies.iter().map(|b| body_key(&z, b)).collect();
        let mut order: Vec<usize> = (0..bodies.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        let sorted: Vec<Body<D>> = order.iter().map(|&i| bodies[i]).collect();
        let sorted_keys: Vec<CurveIndex> = order.iter().map(|&i| keys[i]).collect();
        (Self::from_sorted(sorted, &sorted_keys, k, leaf_cap), order)
    }

    /// Builds the tree from bodies **already in Morton order** at
    /// resolution `2^k`, with their keys supplied — skips quantisation and
    /// sorting entirely. This is the entry point for callers that maintain
    /// the curve order incrementally across steps
    /// (see [`Orderer`](crate::decomp::Orderer)).
    ///
    /// # Panics
    /// Panics if `keys` and `bodies` differ in length or `keys` is not
    /// non-decreasing.
    pub fn build_presorted(
        bodies: Vec<Body<D>>,
        keys: &[CurveIndex],
        k: u32,
        leaf_cap: usize,
    ) -> Self {
        assert!(leaf_cap >= 1, "leaf capacity must be at least 1");
        assert_eq!(bodies.len(), keys.len(), "one key per body");
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "build_presorted requires keys in non-decreasing order"
        );
        Self::from_sorted(bodies, keys, k, leaf_cap)
    }

    fn from_sorted(bodies: Vec<Body<D>>, keys: &[CurveIndex], k: u32, leaf_cap: usize) -> Self {
        let mut tree = Self {
            bodies,
            nodes: Vec::new(),
            leaf_cap,
            max_level: k,
        };
        if tree.bodies.is_empty() {
            return tree;
        }
        let n = tree.bodies.len();
        tree.split(keys, 0..n, 0, [0.5; D], 0.5, k);
        tree
    }

    /// Recursively creates the node for `range` at `level`; returns its id.
    fn split(
        &mut self,
        keys: &[CurveIndex],
        range: Range<usize>,
        level: u32,
        center: [f64; D],
        half_size: f64,
        k: u32,
    ) -> usize {
        let id = self.nodes.len();
        let (com, mass) = self.center_of_mass(&range);
        self.nodes.push(Node {
            center,
            half_size,
            com,
            mass,
            bodies: range.clone(),
            children: Vec::new(),
            level,
        });

        if range.len() > self.leaf_cap && level < k {
            // Split by the d-bit digit at this level. The digit of key `key`
            // is bits [shift, shift + d), where shift counts from the top.
            let shift = (k - level - 1) as usize * D;
            let digit = |key: CurveIndex| -> u32 { ((key >> shift) & ((1 << D) - 1)) as u32 };
            let mut children = Vec::new();
            let mut start = range.start;
            while start < range.end {
                let dg = digit(keys[start]);
                let mut end = start + 1;
                while end < range.end && digit(keys[end]) == dg {
                    end += 1;
                }
                // Child cube geometry: bit (D−1−axis) of the digit selects
                // the upper half along `axis` (the paper's interleave order).
                let mut child_center = center;
                let quarter = half_size * 0.5;
                for (axis, cc) in child_center.iter_mut().enumerate() {
                    if dg >> (D - 1 - axis) & 1 == 1 {
                        *cc += quarter;
                    } else {
                        *cc -= quarter;
                    }
                }
                let child = self.split(keys, start..end, level + 1, child_center, quarter, k);
                children.push(child);
                start = end;
            }
            self.nodes[id].children = children;
        }
        id
    }

    fn center_of_mass(&self, range: &Range<usize>) -> ([f64; D], f64) {
        let mut com = [0.0; D];
        let mut mass = 0.0;
        for b in &self.bodies[range.clone()] {
            mass += b.mass;
            for (c, p) in com.iter_mut().zip(b.pos.iter()) {
                *c += b.mass * p;
            }
        }
        if mass > 0.0 {
            for c in com.iter_mut() {
                *c /= mass;
            }
        }
        (com, mass)
    }

    /// The sorted body array.
    pub fn bodies(&self) -> &[Body<D>] {
        &self.bodies
    }

    /// All nodes; index 0 is the root (when non-empty).
    pub fn nodes(&self) -> &[Node<D>] {
        &self.nodes
    }

    /// The root node, if any bodies exist.
    pub fn root(&self) -> Option<&Node<D>> {
        self.nodes.first()
    }

    /// Maximum key resolution (tree depth bound).
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Leaf capacity used at construction.
    pub fn leaf_cap(&self) -> usize {
        self.leaf_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{sample_bodies, Distribution};
    use rand::SeedableRng;

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(23)
    }

    fn build_test_tree() -> Tree<2> {
        let bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 500, &mut rng());
        Tree::build(bodies, 8, 8)
    }

    #[test]
    fn root_owns_everything_with_total_mass() {
        let tree = build_test_tree();
        let root = tree.root().unwrap();
        assert_eq!(root.bodies, 0..500);
        assert!((root.mass - 500.0).abs() < 1e-9);
        assert_eq!(root.level, 0);
        assert_eq!(root.size(), 1.0);
    }

    #[test]
    fn children_partition_parent_ranges() {
        let tree = build_test_tree();
        for node in tree.nodes() {
            if node.is_leaf() {
                assert!(
                    node.bodies.len() <= tree.leaf_cap() || node.level == tree.max_level(),
                    "leaf too big: {:?} at level {}",
                    node.bodies,
                    node.level
                );
                continue;
            }
            // Children cover the parent range contiguously, in order.
            let mut cursor = node.bodies.start;
            for &c in &node.children {
                let child = &tree.nodes()[c];
                assert_eq!(child.bodies.start, cursor);
                assert_eq!(child.level, node.level + 1);
                cursor = child.bodies.end;
            }
            assert_eq!(cursor, node.bodies.end);
            // Mass is conserved across the split.
            let child_mass: f64 = node.children.iter().map(|&c| tree.nodes()[c].mass).sum();
            assert!((child_mass - node.mass).abs() < 1e-9);
        }
    }

    #[test]
    fn bodies_lie_inside_their_nodes() {
        let tree = build_test_tree();
        for node in tree.nodes() {
            for b in &tree.bodies()[node.bodies.clone()] {
                for a in 0..2 {
                    let lo = node.center[a] - node.half_size - 1e-9;
                    let hi = node.center[a] + node.half_size + 1e-9;
                    assert!(
                        (lo..=hi).contains(&b.pos[a]),
                        "body {:?} outside node at {:?} ± {}",
                        b.pos,
                        node.center,
                        node.half_size
                    );
                }
            }
        }
    }

    #[test]
    fn com_lies_inside_node_cube() {
        let tree = build_test_tree();
        for node in tree.nodes() {
            for a in 0..2 {
                assert!(node.com[a] >= node.center[a] - node.half_size - 1e-9);
                assert!(node.com[a] <= node.center[a] + node.half_size + 1e-9);
            }
        }
    }

    #[test]
    fn empty_and_single_body_trees() {
        let empty: Tree<2> = Tree::build(vec![], 4, 4);
        assert!(empty.root().is_none());
        let one = Tree::build(vec![Body::<2>::at_rest([0.25, 0.75], 2.0)], 4, 4);
        let root = one.root().unwrap();
        assert!(root.is_leaf());
        assert_eq!(root.mass, 2.0);
        assert_eq!(root.com, [0.25, 0.75]);
    }

    #[test]
    fn identical_positions_do_not_recurse_forever() {
        // 20 bodies in the same cell: depth is capped at k even though the
        // leaf cap is exceeded.
        let bodies: Vec<Body<2>> = (0..20)
            .map(|_| Body::at_rest([0.123, 0.456], 1.0))
            .collect();
        let tree = Tree::build(bodies, 5, 2);
        let max_level = tree.nodes().iter().map(|n| n.level).max().unwrap();
        assert!(max_level <= 5);
        // The deepest node holds all 20 bodies as an (oversized) leaf.
        let deepest = tree.nodes().iter().find(|n| n.level == max_level).unwrap();
        assert!(deepest.is_leaf());
        assert_eq!(deepest.bodies.len(), 20);
    }

    #[test]
    fn three_dimensional_tree_builds() {
        let bodies: Vec<Body<3>> = sample_bodies(Distribution::Uniform, 300, &mut rng());
        let tree = Tree::build(bodies, 6, 4);
        assert_eq!(tree.root().unwrap().bodies, 0..300);
        // Every non-leaf has between 1 and 2^3 = 8 children in 3-D (a
        // single child happens when all bodies share the next key digit).
        for node in tree.nodes() {
            if !node.is_leaf() {
                assert!(!node.children.is_empty() && node.children.len() <= 8);
            }
        }
    }
}
