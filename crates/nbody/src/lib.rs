//! # sfc-nbody — an SFC-ordered Barnes-Hut N-body substrate
//!
//! The paper's first motivating application (Section I) is N-body
//! simulation, citing Warren & Salmon's parallel hashed oct-tree [26],
//! which keys particles by their Morton code, sorts them, and builds the
//! tree from the sorted key sequence. Nearest-neighbor proximity along the
//! curve is exactly what makes the sorted order useful: dominant
//! interactions are between nearby particles, so a low-stretch curve keeps
//! interaction partners close in memory and in the work partition.
//!
//! Components:
//!
//! * [`body`] — particles in the unit cube, synthetic distributions
//!   (uniform, clustered), and curve-key quantisation.
//! * [`tree`] — the Morton-keyed tree built from a sorted body array
//!   (Warren–Salmon style, no hashing needed in-memory).
//! * [`gravity`] — direct `O(n²)` reference forces and Barnes–Hut with the
//!   opening-angle criterion, sequential and Rayon-parallel.
//! * [`sim`] — leapfrog (kick-drift-kick) integration and energy
//!   accounting.
//! * [`decomp`] — SFC-based work decomposition of the sorted body array and
//!   the compactness metrics the `app-nbody` experiment reports per curve.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod body;
pub mod decomp;
pub mod gravity;
pub mod sim;
pub mod tree;

pub use body::{Body, Distribution};
pub use decomp::Orderer;
pub use gravity::{barnes_hut_forces, direct_forces, BhStats};
pub use sim::OrderingMode;
pub use tree::Tree;
