//! Gravitational force evaluation: direct summation and Barnes–Hut.
//!
//! Units: `G = 1`; Plummer softening `ε` avoids singularities for
//! coincident bodies. The Barnes–Hut walker applies the standard opening
//! criterion `size/dist < θ`: nodes that look small from the target body
//! are approximated by their center of mass.

use crate::body::Body;
use crate::tree::Tree;
use rayon::prelude::*;

/// Work counters for a Barnes–Hut force evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BhStats {
    /// Body–body interactions evaluated (leaf visits).
    pub direct_interactions: u64,
    /// Body–node (center of mass) interactions evaluated.
    pub node_interactions: u64,
}

impl BhStats {
    /// Total interactions of either kind.
    pub fn total(&self) -> u64 {
        self.direct_interactions + self.node_interactions
    }
}

#[inline]
fn accumulate_kernel<const D: usize>(
    acc: &mut [f64; D],
    from: &[f64; D],
    to: &[f64; D],
    mass: f64,
    softening_sq: f64,
) {
    let mut r2 = softening_sq;
    let mut delta = [0.0; D];
    for a in 0..D {
        delta[a] = to[a] - from[a];
        r2 += delta[a] * delta[a];
    }
    let inv_r = 1.0 / r2.sqrt();
    let inv_r3 = inv_r * inv_r * inv_r;
    for a in 0..D {
        acc[a] += mass * delta[a] * inv_r3;
    }
}

/// Direct `O(n²)` accelerations — the accuracy reference.
pub fn direct_forces<const D: usize>(bodies: &[Body<D>], softening: f64) -> Vec<[f64; D]> {
    let eps2 = softening * softening;
    bodies
        .iter()
        .map(|bi| {
            let mut acc = [0.0; D];
            for bj in bodies {
                if std::ptr::eq(bi, bj) {
                    continue;
                }
                accumulate_kernel(&mut acc, &bi.pos, &bj.pos, bj.mass, eps2);
            }
            acc
        })
        .collect()
}

/// Direct `O(n²)` accelerations, Rayon-parallel over target bodies.
pub fn direct_forces_par<const D: usize>(bodies: &[Body<D>], softening: f64) -> Vec<[f64; D]> {
    let eps2 = softening * softening;
    bodies
        .par_iter()
        .enumerate()
        .map(|(i, bi)| {
            let mut acc = [0.0; D];
            for (j, bj) in bodies.iter().enumerate() {
                if i == j {
                    continue;
                }
                accumulate_kernel(&mut acc, &bi.pos, &bj.pos, bj.mass, eps2);
            }
            acc
        })
        .collect()
}

fn bh_one<const D: usize>(
    tree: &Tree<D>,
    target: usize,
    theta: f64,
    eps2: f64,
    stats: &mut BhStats,
) -> [f64; D] {
    let bodies = tree.bodies();
    let bi = &bodies[target];
    let mut acc = [0.0; D];
    // Explicit stack walk of node ids.
    let mut stack = vec![0usize];
    while let Some(id) = stack.pop() {
        let node = &tree.nodes()[id];
        if node.mass == 0.0 {
            continue;
        }
        let mut r2 = 0.0;
        for a in 0..D {
            let d = node.com[a] - bi.pos[a];
            r2 += d * d;
        }
        let accept = node.is_leaf() || node.size() * node.size() < theta * theta * r2;
        if accept {
            if node.is_leaf() {
                for (j, bj) in bodies[node.bodies.clone()].iter().enumerate() {
                    if node.bodies.start + j == target {
                        continue;
                    }
                    accumulate_kernel(&mut acc, &bi.pos, &bj.pos, bj.mass, eps2);
                    stats.direct_interactions += 1;
                }
            } else if node.bodies.contains(&target) {
                // A far-field approximation must not include the target
                // itself; descend instead.
                stack.extend_from_slice(&node.children);
            } else {
                accumulate_kernel(&mut acc, &bi.pos, &node.com, node.mass, eps2);
                stats.node_interactions += 1;
            }
        } else {
            stack.extend_from_slice(&node.children);
        }
    }
    acc
}

/// Barnes–Hut accelerations with opening angle `theta`, sequential.
/// Returns one acceleration per (sorted) body, plus work counters.
pub fn barnes_hut_forces<const D: usize>(
    tree: &Tree<D>,
    theta: f64,
    softening: f64,
) -> (Vec<[f64; D]>, BhStats) {
    let eps2 = softening * softening;
    let mut stats = BhStats::default();
    let forces = (0..tree.bodies().len())
        .map(|i| bh_one(tree, i, theta, eps2, &mut stats))
        .collect();
    (forces, stats)
}

/// Barnes–Hut accelerations, Rayon-parallel over target bodies. Forces are
/// identical to the sequential walker; stats are summed across workers.
pub fn barnes_hut_forces_par<const D: usize>(
    tree: &Tree<D>,
    theta: f64,
    softening: f64,
) -> (Vec<[f64; D]>, BhStats) {
    let eps2 = softening * softening;
    let results: Vec<([f64; D], BhStats)> = (0..tree.bodies().len())
        .into_par_iter()
        .map(|i| {
            let mut stats = BhStats::default();
            let f = bh_one(tree, i, theta, eps2, &mut stats);
            (f, stats)
        })
        .collect();
    let mut stats = BhStats::default();
    let mut forces = Vec::with_capacity(results.len());
    for (f, s) in results {
        forces.push(f);
        stats.direct_interactions += s.direct_interactions;
        stats.node_interactions += s.node_interactions;
    }
    (forces, stats)
}

/// Mean relative error of `approx` against `reference` (L2 per body).
pub fn mean_relative_error<const D: usize>(approx: &[[f64; D]], reference: &[[f64; D]]) -> f64 {
    assert_eq!(approx.len(), reference.len());
    let mut total = 0.0;
    for (a, r) in approx.iter().zip(reference.iter()) {
        let mut diff2 = 0.0;
        let mut ref2 = 0.0;
        for axis in 0..D {
            let d = a[axis] - r[axis];
            diff2 += d * d;
            ref2 += r[axis] * r[axis];
        }
        total += (diff2 / ref2.max(1e-30)).sqrt();
    }
    total / approx.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{sample_bodies, Distribution};
    use rand::SeedableRng;

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(41)
    }

    #[test]
    fn two_body_force_is_newtons_law() {
        let bodies = vec![
            Body::<2>::at_rest([0.25, 0.5], 2.0),
            Body::<2>::at_rest([0.75, 0.5], 1.0),
        ];
        let f = direct_forces(&bodies, 0.0);
        // |a1| = m2/r² = 1/0.25 = 4, pointing +x.
        assert!((f[0][0] - 4.0).abs() < 1e-12);
        assert!(f[0][1].abs() < 1e-12);
        // |a2| = m1/r² = 8, pointing −x.
        assert!((f[1][0] + 8.0).abs() < 1e-12);
    }

    #[test]
    fn forces_obey_newtons_third_law_in_aggregate() {
        let bodies: Vec<Body<3>> = sample_bodies(Distribution::Uniform, 50, &mut rng());
        let f = direct_forces(&bodies, 1e-3);
        // Total momentum change: Σ m_i a_i = 0 (pairwise cancellation).
        for axis in 0..3 {
            let total: f64 = bodies
                .iter()
                .zip(f.iter())
                .map(|(b, a)| b.mass * a[axis])
                .sum();
            assert!(total.abs() < 1e-9, "axis {axis}: {total}");
        }
    }

    #[test]
    fn parallel_direct_matches_sequential() {
        let bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 100, &mut rng());
        let seq = direct_forces(&bodies, 1e-3);
        let par = direct_forces_par(&bodies, 1e-3);
        assert_eq!(seq, par);
    }

    #[test]
    fn barnes_hut_theta_zero_equals_direct() {
        // θ = 0 never accepts an internal node: BH degenerates to exact
        // summation (leaf-by-leaf).
        let bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 80, &mut rng());
        let tree = Tree::build(bodies, 8, 1);
        let (bh, stats) = barnes_hut_forces(&tree, 0.0, 1e-3);
        let direct = direct_forces(tree.bodies(), 1e-3);
        let err = mean_relative_error(&bh, &direct);
        assert!(err < 1e-12, "θ=0 error {err}");
        assert_eq!(stats.node_interactions, 0);
        assert_eq!(stats.direct_interactions as usize, 80 * 79);
    }

    #[test]
    fn barnes_hut_accuracy_improves_as_theta_shrinks() {
        let bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 300, &mut rng());
        let tree = Tree::build(bodies, 8, 4);
        let direct = direct_forces(tree.bodies(), 1e-3);
        let mut prev_err = f64::INFINITY;
        for theta in [1.2, 0.8, 0.4, 0.2] {
            let (bh, _) = barnes_hut_forces(&tree, theta, 1e-3);
            let err = mean_relative_error(&bh, &direct);
            assert!(err <= prev_err + 1e-6, "θ={theta}: {err} > {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 0.01, "θ=0.2 error too large: {prev_err}");
    }

    #[test]
    fn barnes_hut_does_less_work_than_direct() {
        let bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 500, &mut rng());
        let tree = Tree::build(bodies, 8, 4);
        let (_, stats) = barnes_hut_forces(&tree, 0.7, 1e-3);
        let direct_work = 500u64 * 499;
        assert!(
            stats.total() < direct_work / 2,
            "BH did {} vs direct {direct_work}",
            stats.total()
        );
    }

    #[test]
    fn parallel_bh_matches_sequential() {
        let bodies: Vec<Body<2>> = sample_bodies(
            Distribution::Clustered {
                clusters: 3,
                sigma: 0.05,
            },
            200,
            &mut rng(),
        );
        let tree = Tree::build(bodies, 8, 4);
        let (seq, seq_stats) = barnes_hut_forces(&tree, 0.6, 1e-3);
        let (par, par_stats) = barnes_hut_forces_par(&tree, 0.6, 1e-3);
        assert_eq!(seq, par);
        assert_eq!(seq_stats, par_stats);
    }
}
