//! Leapfrog (kick–drift–kick) time integration and energy accounting.

use crate::body::Body;
use crate::decomp::Orderer;
use crate::gravity::direct_forces;
use crate::tree::Tree;
use sfc_core::{CurveIndex, ZCurve};

/// How the per-step Morton resort of the Barnes–Hut cycle is performed —
/// the constructor choice for [`run_barnes_hut_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingMode {
    /// Re-sort all bodies from scratch every step (the static path used by
    /// the experiments).
    Rebuild,
    /// Maintain the order incrementally through an
    /// [`SfcStore`](sfc_store::SfcStore)-backed [`Orderer`]: only bodies
    /// that crossed a grid-cell boundary are re-ingested.
    Incremental,
}

/// One kick–drift–kick leapfrog step with accelerations recomputed by the
/// supplied force function. Positions are wrapped back into the unit cube
/// (periodic in presentation only — forces are not periodic).
pub fn leapfrog_step<const D: usize>(
    bodies: &mut [Body<D>],
    dt: f64,
    mut forces: impl FnMut(&[Body<D>]) -> Vec<[f64; D]>,
) {
    let acc0 = forces(bodies);
    // Half kick + drift.
    for (b, a) in bodies.iter_mut().zip(acc0.iter()) {
        for (axis, acc) in a.iter().enumerate() {
            b.vel[axis] += 0.5 * dt * acc;
            b.pos[axis] += dt * b.vel[axis];
            // Keep positions inside [0,1) so curve keys stay valid.
            b.pos[axis] = b.pos[axis].rem_euclid(1.0).min(1.0 - 1e-12);
        }
    }
    // Second half kick with fresh accelerations.
    let acc1 = forces(bodies);
    for (b, a) in bodies.iter_mut().zip(acc1.iter()) {
        for (axis, acc) in a.iter().enumerate() {
            b.vel[axis] += 0.5 * dt * acc;
        }
    }
}

/// Total kinetic energy `Σ ½ m v²`.
pub fn kinetic_energy<const D: usize>(bodies: &[Body<D>]) -> f64 {
    bodies
        .iter()
        .map(|b| {
            let v2: f64 = b.vel.iter().map(|v| v * v).sum();
            0.5 * b.mass * v2
        })
        .sum()
}

/// Total (softened) potential energy `−Σ_{i<j} m_i m_j / √(r² + ε²)`.
pub fn potential_energy<const D: usize>(bodies: &[Body<D>], softening: f64) -> f64 {
    let eps2 = softening * softening;
    let mut total = 0.0;
    for i in 0..bodies.len() {
        for j in (i + 1)..bodies.len() {
            let r2 = bodies[i].dist_sq(&bodies[j]) + eps2;
            total -= bodies[i].mass * bodies[j].mass / r2.sqrt();
        }
    }
    total
}

/// Total energy.
pub fn total_energy<const D: usize>(bodies: &[Body<D>], softening: f64) -> f64 {
    kinetic_energy(bodies) + potential_energy(bodies, softening)
}

/// Convenience driver: `steps` leapfrog steps under direct-summation
/// gravity. Returns the relative energy drift `|E_end − E_0| / |E_0|`.
pub fn run_direct<const D: usize>(
    bodies: &mut [Body<D>],
    dt: f64,
    steps: usize,
    softening: f64,
) -> f64 {
    let e0 = total_energy(bodies, softening);
    for _ in 0..steps {
        leapfrog_step(bodies, dt, |b| direct_forces(b, softening));
    }
    let e1 = total_energy(bodies, softening);
    (e1 - e0).abs() / e0.abs().max(1e-30)
}

/// Convenience driver: `steps` leapfrog steps under Barnes–Hut gravity with
/// the tree rebuilt every step (the standard SFC-resort-and-rebuild cycle
/// of Warren–Salmon). Returns the relative energy drift.
pub fn run_barnes_hut<const D: usize>(
    bodies: &mut [Body<D>],
    dt: f64,
    steps: usize,
    softening: f64,
    theta: f64,
    k: u32,
    leaf_cap: usize,
) -> f64 {
    run_barnes_hut_with(
        bodies,
        dt,
        steps,
        softening,
        theta,
        k,
        leaf_cap,
        OrderingMode::Rebuild,
    )
}

/// [`run_barnes_hut`] with an explicit [`OrderingMode`]: the Morton order
/// feeding each step's tree build is either recomputed from scratch or
/// maintained incrementally across steps (only cell-crossing bodies are
/// re-ingested). Bodies stay in their caller-visible slots; the tree is
/// built from a gathered copy and forces are scattered back through the
/// step's permutation. Returns the relative energy drift.
#[allow(clippy::too_many_arguments)]
pub fn run_barnes_hut_with<const D: usize>(
    bodies: &mut [Body<D>],
    dt: f64,
    steps: usize,
    softening: f64,
    theta: f64,
    k: u32,
    leaf_cap: usize,
    mode: OrderingMode,
) -> f64 {
    let z = ZCurve::<D>::new(k).expect("valid resolution");
    let mut orderer = match mode {
        OrderingMode::Rebuild => Orderer::rebuild(z),
        OrderingMode::Incremental => Orderer::incremental(z),
    };
    let e0 = total_energy(bodies, softening);
    for _ in 0..steps {
        leapfrog_step(bodies, dt, |b| {
            let (perm, sorted_keys): (Vec<u32>, Vec<CurveIndex>) = orderer.permutation_with_keys(b);
            let sorted: Vec<Body<D>> = perm.iter().map(|&i| b[i as usize]).collect();
            let tree = Tree::build_presorted(sorted, &sorted_keys, k, leaf_cap);
            let sorted_forces = crate::gravity::barnes_hut_forces(&tree, theta, softening).0;
            let mut forces = vec![[0.0; D]; b.len()];
            for (s, &orig) in perm.iter().enumerate() {
                forces[orig as usize] = sorted_forces[s];
            }
            forces
        });
    }
    let e1 = total_energy(bodies, softening);
    (e1 - e0).abs() / e0.abs().max(1e-30)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{sample_bodies, Distribution};
    use rand::SeedableRng;

    #[test]
    fn kinetic_energy_hand_value() {
        let mut b = Body::<2>::at_rest([0.5, 0.5], 2.0);
        b.vel = [3.0, 4.0];
        assert!((kinetic_energy(&[b]) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn potential_energy_two_bodies() {
        let bodies = vec![
            Body::<2>::at_rest([0.25, 0.5], 2.0),
            Body::<2>::at_rest([0.75, 0.5], 1.0),
        ];
        // −m1 m2 / r = −2/0.5 = −4.
        assert!((potential_energy(&bodies, 0.0) + 4.0).abs() < 1e-12);
    }

    #[test]
    fn circular_orbit_conserves_energy() {
        // Two equal masses in mutual circular orbit: separation r, each at
        // radius r/2; circular speed v with v² = m/(2r) for G=1 equal mass m
        // (a = m/r² toward partner = v²/(r/2)).
        let m = 1.0;
        let r = 0.2f64;
        let v = (m / (2.0 * r)).sqrt();
        let mut bodies = vec![
            Body::<2> {
                pos: [0.5 - r / 2.0, 0.5],
                vel: [0.0, v],
                mass: m,
            },
            Body::<2> {
                pos: [0.5 + r / 2.0, 0.5],
                vel: [0.0, -v],
                mass: m,
            },
        ];
        let drift = run_direct(&mut bodies, 1e-4, 2_000, 0.0);
        assert!(drift < 1e-5, "energy drift {drift}");
    }

    #[test]
    fn leapfrog_is_time_reversible() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let start: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 20, &mut rng);
        let mut fwd = start.clone();
        let steps = 50;
        let dt = 1e-4;
        for _ in 0..steps {
            leapfrog_step(&mut fwd, dt, |b| direct_forces(b, 1e-2));
        }
        // Reverse velocities, integrate the same number of steps, reverse
        // again: should recover the initial state.
        for b in fwd.iter_mut() {
            for v in b.vel.iter_mut() {
                *v = -*v;
            }
        }
        for _ in 0..steps {
            leapfrog_step(&mut fwd, dt, |b| direct_forces(b, 1e-2));
        }
        for (a, b) in fwd.iter().zip(start.iter()) {
            for axis in 0..2 {
                assert!(
                    (a.pos[axis] - b.pos[axis]).abs() < 1e-8,
                    "{} vs {}",
                    a.pos[axis],
                    b.pos[axis]
                );
            }
        }
    }

    #[test]
    fn incremental_ordering_matches_rebuild_physics() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(10);
        let base: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 120, &mut rng);
        let mut a = base.clone();
        let mut b = base.clone();
        for body in a.iter_mut().chain(b.iter_mut()) {
            body.mass = 1.0 / 120.0;
        }
        let drift_rebuild =
            run_barnes_hut_with(&mut a, 1e-4, 15, 1e-2, 0.5, 8, 4, OrderingMode::Rebuild);
        let drift_incremental =
            run_barnes_hut_with(&mut b, 1e-4, 15, 1e-2, 0.5, 8, 4, OrderingMode::Incremental);
        assert!(drift_rebuild < 1e-2, "rebuild drift {drift_rebuild}");
        assert!(
            drift_incremental < 1e-2,
            "incremental drift {drift_incremental}"
        );
        // Same physics: the two orderings differ at most in within-cell tie
        // order, which only reshuffles float summation.
        for (x, y) in a.iter().zip(&b) {
            for axis in 0..2 {
                assert!(
                    (x.pos[axis] - y.pos[axis]).abs() < 1e-9,
                    "positions diverged: {} vs {}",
                    x.pos[axis],
                    y.pos[axis]
                );
            }
        }
    }

    #[test]
    fn barnes_hut_driver_has_bounded_drift() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let mut bodies: Vec<Body<2>> = sample_bodies(
            Distribution::Clustered {
                clusters: 2,
                sigma: 0.05,
            },
            100,
            &mut rng,
        );
        // Give total mass 1 so the dynamics are gentle at dt = 1e-4.
        for b in bodies.iter_mut() {
            b.mass = 1.0 / 100.0;
        }
        let drift = run_barnes_hut(&mut bodies, 1e-4, 20, 1e-2, 0.5, 8, 4);
        assert!(drift < 1e-2, "drift {drift}");
    }
}
