//! Particles, synthetic distributions, and curve-key quantisation.

use rand::Rng;
use sfc_core::{CurveIndex, Grid, Point, SpaceFillingCurve};

/// A point mass in the unit cube `[0, 1)^d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body<const D: usize> {
    /// Position in `[0, 1)^d`.
    pub pos: [f64; D],
    /// Velocity.
    pub vel: [f64; D],
    /// Mass (positive).
    pub mass: f64,
}

impl<const D: usize> Body<D> {
    /// A body at rest.
    pub fn at_rest(pos: [f64; D], mass: f64) -> Self {
        Self {
            pos,
            vel: [0.0; D],
            mass,
        }
    }

    /// Squared Euclidean distance between two bodies.
    pub fn dist_sq(&self, other: &Self) -> f64 {
        let mut s = 0.0;
        for a in 0..D {
            let d = self.pos[a] - other.pos[a];
            s += d * d;
        }
        s
    }
}

/// Synthetic particle distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniform in the unit cube.
    Uniform,
    /// A mixture of isotropic Gaussian clusters (positions clamped to the
    /// cube) — the standard stand-in for clustered astrophysical data.
    Clustered {
        /// Number of clusters.
        clusters: usize,
        /// Standard deviation of each cluster.
        sigma: f64,
    },
}

/// Samples `count` unit-mass bodies at rest from a distribution.
pub fn sample_bodies<const D: usize, R: Rng + ?Sized>(
    dist: Distribution,
    count: usize,
    rng: &mut R,
) -> Vec<Body<D>> {
    match dist {
        Distribution::Uniform => (0..count)
            .map(|_| {
                let mut pos = [0.0; D];
                for p in pos.iter_mut() {
                    *p = rng.gen::<f64>();
                }
                Body::at_rest(pos, 1.0)
            })
            .collect(),
        Distribution::Clustered { clusters, sigma } => {
            let centers: Vec<[f64; D]> = (0..clusters.max(1))
                .map(|_| {
                    let mut c = [0.0; D];
                    for x in c.iter_mut() {
                        *x = rng.gen::<f64>();
                    }
                    c
                })
                .collect();
            (0..count)
                .map(|i| {
                    let c = centers[i % centers.len()];
                    let mut pos = [0.0; D];
                    for (p, center) in pos.iter_mut().zip(c.iter()) {
                        // Box-Muller normal sample.
                        let u1: f64 = rng.gen::<f64>().max(1e-12);
                        let u2: f64 = rng.gen();
                        let normal =
                            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        *p = (center + sigma * normal).clamp(0.0, 1.0 - 1e-9);
                    }
                    Body::at_rest(pos, 1.0)
                })
                .collect()
        }
    }
}

/// Quantises a position in `[0, 1)^d` to the grid cell at resolution `2^k`.
pub fn quantize<const D: usize>(grid: Grid<D>, pos: &[f64; D]) -> Point<D> {
    let side = grid.side() as f64;
    let max = (grid.side() - 1) as u32;
    let mut coords = [0u32; D];
    for (c, &p) in coords.iter_mut().zip(pos.iter()) {
        debug_assert!((0.0..1.0).contains(&p), "position out of unit cube: {p}");
        *c = ((p * side) as u32).min(max);
    }
    Point::new(coords)
}

/// The curve key of a body at resolution `2^k` under any curve.
pub fn body_key<const D: usize, C: SpaceFillingCurve<D>>(curve: &C, body: &Body<D>) -> CurveIndex {
    curve.index_of(quantize(curve.grid(), &body.pos))
}

/// The curve keys of a batch of bodies at resolution `2^k`: quantise all
/// positions, then encode through the curve's batch kernel
/// ([`SpaceFillingCurve::index_of_batch`]).
pub fn body_keys<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    bodies: &[Body<D>],
    out: &mut Vec<CurveIndex>,
) {
    let grid = curve.grid();
    let cells: Vec<Point<D>> = bodies.iter().map(|b| quantize(grid, &b.pos)).collect();
    curve.index_of_batch(&cells, out);
}

/// Sorts bodies in place by their curve key (the Warren–Salmon ordering
/// step). Ties (same cell) keep their relative order.
///
/// Keys come from the batch encoding kernel; the sort itself is a stable
/// comparison sort on the `(key, body)` pairs.
pub fn sort_by_curve<const D: usize, C: SpaceFillingCurve<D>>(curve: &C, bodies: &mut [Body<D>]) {
    let mut keys = Vec::new();
    body_keys(curve, bodies, &mut keys);
    let mut keyed: Vec<(CurveIndex, Body<D>)> =
        keys.into_iter().zip(bodies.iter().copied()).collect();
    keyed.sort_by_key(|(k, _)| *k);
    for (dst, (_, b)) in bodies.iter_mut().zip(keyed) {
        *dst = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sfc_core::ZCurve;

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(14)
    }

    #[test]
    fn uniform_bodies_land_in_cube() {
        let bodies: Vec<Body<3>> = sample_bodies(Distribution::Uniform, 200, &mut rng());
        assert_eq!(bodies.len(), 200);
        for b in &bodies {
            for a in 0..3 {
                assert!((0.0..1.0).contains(&b.pos[a]));
            }
            assert_eq!(b.mass, 1.0);
            assert_eq!(b.vel, [0.0; 3]);
        }
    }

    #[test]
    fn clustered_bodies_concentrate() {
        let bodies: Vec<Body<2>> = sample_bodies(
            Distribution::Clustered {
                clusters: 2,
                sigma: 0.01,
            },
            400,
            &mut rng(),
        );
        // With σ = 0.01 and 2 clusters, pairwise distances are bimodal:
        // most same-cluster distances are tiny.
        let mut close = 0;
        for i in 0..100 {
            for j in (i + 1)..100 {
                if bodies[i].dist_sq(&bodies[j]) < 0.01 {
                    close += 1;
                }
            }
        }
        assert!(close > 1000, "only {close} close pairs");
        for b in &bodies {
            for a in 0..2 {
                assert!((0.0..1.0).contains(&b.pos[a]));
            }
        }
    }

    #[test]
    fn quantize_maps_cube_onto_grid() {
        let grid = Grid::<2>::new(3).unwrap();
        assert_eq!(quantize(grid, &[0.0, 0.0]), Point::new([0, 0]));
        assert_eq!(quantize(grid, &[0.999, 0.999]), Point::new([7, 7]));
        assert_eq!(quantize(grid, &[0.5, 0.124]), Point::new([4, 0]));
        assert_eq!(quantize(grid, &[0.126, 0.51]), Point::new([1, 4]));
    }

    #[test]
    fn sort_by_curve_orders_keys() {
        let mut bodies: Vec<Body<2>> = sample_bodies(Distribution::Uniform, 300, &mut rng());
        let z = ZCurve::<2>::new(6).unwrap();
        sort_by_curve(&z, &mut bodies);
        let keys: Vec<u128> = bodies.iter().map(|b| body_key(&z, b)).collect();
        for w in keys.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn dist_sq_matches_hand_value() {
        let a = Body::<2>::at_rest([0.0, 0.0], 1.0);
        let b = Body::<2>::at_rest([0.3, 0.4], 1.0);
        assert!((a.dist_sq(&b) - 0.25).abs() < 1e-12);
    }
}
