//! Range-scan building blocks over raw sorted key slices.
//!
//! [`SfcIndex`](crate::SfcIndex) and any structure composed of several
//! sorted runs (e.g. an LSM-style store) share the same two scan shapes:
//! walking a precomputed list of exact curve intervals, and the Tropf &
//! Herzog BIGMIN jumping scan. Both are expressed here against plain
//! `&[CurveIndex]` / `&[Point]` columns so one implementation serves every
//! level of every structure; matches are surfaced as column positions
//! through a `visit` callback and work is accounted in a caller-supplied
//! [`QueryStats`].

use crate::bigmin::bigmin;
use crate::query::QueryStats;
use crate::region::BoxRegion;
use sfc_core::{CurveIndex, Point, ZCurve};

/// Scans a sorted key column for every entry inside the given curve
/// intervals (each `(lo, hi)` inclusive, as produced by
/// [`BoxRegion::curve_intervals`]), calling `visit` with the position of
/// each match.
///
/// One binary search per interval plus one sequential step per matching
/// entry; because the intervals are exact, every visited entry is a match
/// (`scanned == reported` for interval queries).
pub fn interval_scan(
    keys: &[CurveIndex],
    intervals: &[(CurveIndex, CurveIndex)],
    stats: &mut QueryStats,
    mut visit: impl FnMut(usize),
) {
    for &(lo, hi) in intervals {
        stats.seeks += 1;
        let mut i = keys.partition_point(|&k| k < lo);
        while i < keys.len() && keys[i] <= hi {
            stats.scanned += 1;
            visit(i);
            i += 1;
        }
    }
}

/// BIGMIN jumping scan of a sorted Morton-key column (Tropf & Herzog):
/// scan from `Z(lo)`, and whenever the scan meets an entry outside the
/// box, compute BIGMIN and restart the scan there with a binary search
/// over the remaining tail. Calls `visit` with the position of every entry
/// whose point lies in the box.
///
/// `points` must be the point column parallel to `keys`; only positions
/// under consideration are dereferenced.
pub fn bigmin_scan<const D: usize>(
    z: &ZCurve<D>,
    keys: &[CurveIndex],
    points: &[Point<D>],
    b: &BoxRegion<D>,
    stats: &mut QueryStats,
    mut visit: impl FnMut(usize),
) {
    debug_assert_eq!(keys.len(), points.len(), "column length mismatch");
    let zmin = z.encode(b.lo());
    let zmax = z.encode(b.hi());
    stats.seeks += 1;
    let mut i = keys.partition_point(|&k| k < zmin);
    while i < keys.len() {
        let key = keys[i];
        if key > zmax {
            break;
        }
        stats.scanned += 1;
        if b.contains(&points[i]) {
            visit(i);
            i += 1;
        } else {
            match bigmin(z, key, zmin, zmax) {
                Some(next) => {
                    stats.seeks += 1;
                    // `next > key >= keys[i]`, so searching the tail finds
                    // the same position as a fresh whole-column search.
                    i += keys[i..].partition_point(|&k| k < next);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{Grid, SpaceFillingCurve};

    #[test]
    fn interval_scan_visits_exactly_the_ranges() {
        let keys: Vec<CurveIndex> = vec![0, 2, 2, 5, 7, 9, 12];
        let mut stats = QueryStats::default();
        let mut hits = Vec::new();
        interval_scan(&keys, &[(2, 5), (9, 10)], &mut stats, |i| hits.push(i));
        assert_eq!(hits, vec![1, 2, 3, 5]);
        assert_eq!(stats.seeks, 2);
        assert_eq!(stats.scanned, 4);
    }

    #[test]
    fn bigmin_scan_matches_filtering_the_key_range() {
        let grid = Grid::<2>::new(3).unwrap();
        let z = ZCurve::over(grid);
        // All cells, sorted by key (the full curve order).
        let points: Vec<Point<2>> = z.traverse().collect();
        let keys: Vec<CurveIndex> = (0..grid.n()).collect();
        let b = BoxRegion::new(Point::new([2, 1]), Point::new([6, 5]));
        let mut stats = QueryStats::default();
        let mut hits = Vec::new();
        bigmin_scan(&z, &keys, &points, &b, &mut stats, |i| hits.push(i));
        let expected: Vec<usize> = (0..points.len())
            .filter(|&i| b.contains(&points[i]))
            .collect();
        assert_eq!(hits, expected);
        assert_eq!(
            stats.scanned as usize,
            hits.len() + stats.seeks as usize - 1
        );
    }
}
