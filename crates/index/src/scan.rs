//! Range-scan building blocks over raw sorted key slices.
//!
//! [`SfcIndex`](crate::SfcIndex) and any structure composed of several
//! sorted runs (e.g. an LSM-style store) share the same two scan shapes:
//! walking a precomputed list of exact curve intervals, and the Tropf &
//! Herzog BIGMIN jumping scan. Both are expressed here against plain
//! `&[CurveIndex]` / `&[Point]` columns so one implementation serves every
//! level of every structure; matches are surfaced as column positions
//! through a `visit` callback and work is accounted in a caller-supplied
//! [`QueryStats`].
//!
//! ## Zone-mapped fast paths
//!
//! The production scans exploit the run's [`ZoneMap`]:
//!
//! * [`interval_scan`] **gallops** forward from the previous interval's
//!   resting position instead of binary-searching the whole column per
//!   interval — intervals arrive sorted, so each seek is an exponential
//!   probe over the short gap to the next interval, cache-hot for the
//!   clustered queries a good curve produces.
//! * [`bigmin_scan`] makes whole-block decisions before touching keys:
//!   blocks whose point AABB misses the box are **skipped** without a
//!   single per-key test (`blocks_pruned`), blocks whose AABB lies inside
//!   the box are **bulk-visited** without per-point filtering, and BIGMIN
//!   jump landings resolve through the fence array (one small search, one
//!   in-block search) instead of a whole-tail binary search.
//!
//! The pre-zone-map variants are kept as [`interval_scan_plain`] and
//! [`bigmin_scan_plain`]: they are the reference the zone-mapped scans are
//! differential-tested against, and the baseline the benches measure the
//! speedup over.

use crate::bigmin::bigmin;
use crate::query::QueryStats;
use crate::region::BoxRegion;
use crate::zone::ZoneMap;
use sfc_core::{CurveIndex, Point, ZCurve};

/// First position in `keys[from..]` holding a key ≥ `target`, found by
/// galloping (exponential probes doubling outward from `from`, then a
/// binary search inside the bracketed gap). Equivalent to
/// `from + keys[from..].partition_point(|&k| k < target)` but `O(log gap)`
/// instead of `O(log remaining)` — and `O(1)` when already in position,
/// the common case for sorted interval lists.
fn gallop(keys: &[CurveIndex], from: usize, target: CurveIndex) -> usize {
    if from >= keys.len() || keys[from] >= target {
        return from;
    }
    // Invariant: keys[prev] < target.
    let mut prev = from;
    let mut step = 1usize;
    loop {
        let probe = match from.checked_add(step) {
            Some(p) if p < keys.len() => p,
            _ => break,
        };
        if keys[probe] >= target {
            break;
        }
        prev = probe;
        step <<= 1;
    }
    let end = (from + step).min(keys.len());
    prev + 1 + keys[prev + 1..end].partition_point(|&k| k < target)
}

/// Scans a sorted key column for every entry inside the given curve
/// intervals (each `(lo, hi)` inclusive, sorted ascending, as produced by
/// [`BoxRegion::curve_intervals`]), calling `visit` with the position of
/// each match.
///
/// One seek per interval plus one sequential step per matching entry;
/// because the intervals are exact, every visited entry is a match
/// (`scanned == reported` for interval queries). Seeks **gallop** forward
/// from the previous interval's resting position — see the module docs.
/// The cursor never rewinds, so the intervals **must** be sorted
/// ascending and disjoint (as [`BoxRegion::curve_intervals`] produces
/// them); unsorted input would silently drop matches, hence the debug
/// assertion.
pub fn interval_scan(
    keys: &[CurveIndex],
    intervals: &[(CurveIndex, CurveIndex)],
    stats: &mut QueryStats,
    mut visit: impl FnMut(usize),
) {
    debug_assert!(
        intervals.windows(2).all(|w| w[0].1 < w[1].0),
        "interval_scan requires ascending disjoint intervals"
    );
    let mut i = 0usize;
    for &(lo, hi) in intervals {
        stats.seeks += 1;
        i = gallop(keys, i, lo);
        while i < keys.len() && keys[i] <= hi {
            stats.scanned += 1;
            visit(i);
            i += 1;
        }
    }
}

/// The pre-zone-map interval scan: one whole-column binary search per
/// interval. Reference implementation for differential tests and the
/// baseline the benches compare [`interval_scan`] against.
pub fn interval_scan_plain(
    keys: &[CurveIndex],
    intervals: &[(CurveIndex, CurveIndex)],
    stats: &mut QueryStats,
    mut visit: impl FnMut(usize),
) {
    for &(lo, hi) in intervals {
        stats.seeks += 1;
        let mut i = keys.partition_point(|&k| k < lo);
        while i < keys.len() && keys[i] <= hi {
            stats.scanned += 1;
            visit(i);
            i += 1;
        }
    }
}

/// BIGMIN jumping scan of a sorted Morton-key column (Tropf & Herzog),
/// accelerated by the run's [`ZoneMap`]: scan from `Z(lo)`; at each block
/// boundary decide the whole block at once (skip if its AABB misses the
/// box, bulk-visit if contained); whenever the per-key scan meets an entry
/// outside the box, compute BIGMIN and land the jump through the fence
/// array. Calls `visit` with the position of every entry whose point lies
/// in the box — the exact same set [`bigmin_scan_plain`] visits.
///
/// `points` must be the point column parallel to `keys` and `zones` the
/// zone map built over them; only positions under consideration are
/// dereferenced.
pub fn bigmin_scan<const D: usize>(
    z: &ZCurve<D>,
    keys: &[CurveIndex],
    points: &[Point<D>],
    zones: &ZoneMap<D>,
    b: &BoxRegion<D>,
    stats: &mut QueryStats,
    mut visit: impl FnMut(usize),
) {
    debug_assert_eq!(keys.len(), points.len(), "column length mismatch");
    debug_assert_eq!(keys.len(), zones.len(), "zone map built over other columns");
    let zmin = z.encode(b.lo());
    let zmax = z.encode(b.hi());
    stats.seeks += 1;
    let mut i = zones.lower_bound(keys, zmin);
    while i < keys.len() {
        let block = zones.block_of(i);
        let range = zones.block_range(block);
        if i == range.start {
            // Block boundary: decide the whole block at once. The fence is
            // the block's smallest key, so fence > zmax ends the scan.
            if zones.fence(block) > zmax {
                return;
            }
            if zones.disjoint(block, b) {
                stats.blocks_pruned += 1;
                i = range.end;
                continue;
            }
            stats.blocks_scanned += 1;
            if zones.contained(block, b) {
                // Componentwise Morton monotonicity: AABB ⊆ box ⇒ every
                // key of the block lies in [Z(lo), Z(hi)] — visit all
                // slots without per-point tests.
                stats.scanned += range.len() as u64;
                for slot in range.clone() {
                    visit(slot);
                }
                i = range.end;
                continue;
            }
        }
        let key = keys[i];
        if key > zmax {
            return;
        }
        stats.scanned += 1;
        if b.contains(&points[i]) {
            visit(i);
            i += 1;
        } else {
            match bigmin(z, key, zmin, zmax) {
                Some(next) => {
                    stats.seeks += 1;
                    // `next > key`, so the fence-accelerated lower bound
                    // finds the same position as a whole-tail search.
                    i = zones.lower_bound(keys, next).max(i + 1);
                }
                None => return,
            }
        }
    }
}

/// The pre-zone-map BIGMIN scan: per-key box tests throughout and
/// whole-tail binary searches after each jump. Reference implementation
/// for differential tests and the baseline the benches compare
/// [`bigmin_scan`] against.
pub fn bigmin_scan_plain<const D: usize>(
    z: &ZCurve<D>,
    keys: &[CurveIndex],
    points: &[Point<D>],
    b: &BoxRegion<D>,
    stats: &mut QueryStats,
    mut visit: impl FnMut(usize),
) {
    debug_assert_eq!(keys.len(), points.len(), "column length mismatch");
    let zmin = z.encode(b.lo());
    let zmax = z.encode(b.hi());
    stats.seeks += 1;
    let mut i = keys.partition_point(|&k| k < zmin);
    while i < keys.len() {
        let key = keys[i];
        if key > zmax {
            break;
        }
        stats.scanned += 1;
        if b.contains(&points[i]) {
            visit(i);
            i += 1;
        } else {
            match bigmin(z, key, zmin, zmax) {
                Some(next) => {
                    stats.seeks += 1;
                    // `next > key >= keys[i]`, so searching the tail finds
                    // the same position as a fresh whole-column search.
                    i += keys[i..].partition_point(|&k| k < next);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{Grid, SpaceFillingCurve};

    #[test]
    fn gallop_agrees_with_partition_point() {
        let keys: Vec<CurveIndex> = vec![0, 2, 2, 5, 7, 9, 12, 12, 12, 40, 41, 100];
        for from in 0..=keys.len() {
            for target in 0..=101 {
                let want = from + keys[from..].partition_point(|&k| k < target);
                assert_eq!(gallop(&keys, from, target), want, "from={from} t={target}");
            }
        }
        assert_eq!(gallop(&[], 0, 7), 0);
    }

    #[test]
    fn interval_scan_visits_exactly_the_ranges() {
        let keys: Vec<CurveIndex> = vec![0, 2, 2, 5, 7, 9, 12];
        let mut stats = QueryStats::default();
        let mut hits = Vec::new();
        interval_scan(&keys, &[(2, 5), (9, 10)], &mut stats, |i| hits.push(i));
        assert_eq!(hits, vec![1, 2, 3, 5]);
        assert_eq!(stats.seeks, 2);
        assert_eq!(stats.scanned, 4);
        // The galloped scan visits exactly what the plain scan visits.
        let mut plain_stats = QueryStats::default();
        let mut plain_hits = Vec::new();
        interval_scan_plain(&keys, &[(2, 5), (9, 10)], &mut plain_stats, |i| {
            plain_hits.push(i)
        });
        assert_eq!(hits, plain_hits);
        assert_eq!(stats, plain_stats);
    }

    #[test]
    fn bigmin_scan_matches_filtering_the_key_range() {
        let grid = Grid::<2>::new(3).unwrap();
        let z = ZCurve::over(grid);
        // All cells, sorted by key (the full curve order).
        let points: Vec<Point<2>> = z.traverse().collect();
        let keys: Vec<CurveIndex> = (0..grid.n()).collect();
        let zones = ZoneMap::build(&keys, &points, |_| true);
        let b = BoxRegion::new(Point::new([2, 1]), Point::new([6, 5]));
        let mut stats = QueryStats::default();
        let mut hits = Vec::new();
        bigmin_scan(&z, &keys, &points, &zones, &b, &mut stats, |i| hits.push(i));
        let expected: Vec<usize> = (0..points.len())
            .filter(|&i| b.contains(&points[i]))
            .collect();
        assert_eq!(hits, expected);
    }

    #[test]
    fn zone_mapped_bigmin_visits_exactly_what_plain_does() {
        // Dense and sparse columns, many box shapes — the zone-mapped scan
        // must visit byte-identical positions to the plain scan while
        // pruning blocks.
        let grid = Grid::<2>::new(5).unwrap(); // 32×32
        let z = ZCurve::over(grid);
        for stride in [1u128, 3, 7] {
            let keys: Vec<CurveIndex> = (0..grid.n()).step_by(stride as usize).collect();
            let points: Vec<Point<2>> = keys.iter().map(|&k| z.point_of(k)).collect();
            let zones = ZoneMap::build(&keys, &points, |_| true);
            for (lo, hi) in [
                ((0, 0), (31, 31)),
                ((3, 5), (9, 8)),
                ((16, 0), (31, 15)),
                ((30, 30), (31, 31)),
                ((0, 17), (31, 18)),
            ] {
                let b = BoxRegion::new(Point::new([lo.0, lo.1]), Point::new([hi.0, hi.1]));
                let mut zs = QueryStats::default();
                let mut zone_hits = Vec::new();
                bigmin_scan(&z, &keys, &points, &zones, &b, &mut zs, |i| {
                    zone_hits.push(i)
                });
                let mut ps = QueryStats::default();
                let mut plain_hits = Vec::new();
                bigmin_scan_plain(&z, &keys, &points, &b, &mut ps, |i| plain_hits.push(i));
                assert_eq!(zone_hits, plain_hits, "stride={stride} box={b:?}");
                assert!(zs.scanned <= ps.scanned, "zone scan must not scan more");
            }
        }
    }

    #[test]
    fn full_grid_box_takes_the_contained_fast_path() {
        let grid = Grid::<2>::new(4).unwrap();
        let z = ZCurve::over(grid);
        let points: Vec<Point<2>> = z.traverse().collect();
        let keys: Vec<CurveIndex> = (0..grid.n()).collect();
        let zones = ZoneMap::build(&keys, &points, |_| true);
        let b = BoxRegion::new(Point::new([0, 0]), Point::new([15, 15]));
        let mut stats = QueryStats::default();
        let mut hits = 0usize;
        bigmin_scan(&z, &keys, &points, &zones, &b, &mut stats, |_| hits += 1);
        assert_eq!(hits, 256);
        assert_eq!(stats.blocks_scanned, zones.blocks() as u64);
        assert_eq!(stats.blocks_pruned, 0);
        assert_eq!(stats.seeks, 1, "no jump needed inside a contained box");
    }
}
