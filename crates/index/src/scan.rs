//! Range-scan building blocks over compressed block stores.
//!
//! [`SfcIndex`](crate::SfcIndex) and any structure composed of several
//! sorted runs (e.g. an LSM-style store) share the same two scan shapes:
//! walking a precomputed list of exact curve intervals, and the Tropf &
//! Herzog BIGMIN jumping scan. Both are expressed here against a run's
//! [`BlockStore`] so one implementation serves every level of every
//! structure; matches are surfaced as `(position, key, point)` through a
//! `visit` callback and work is accounted in a caller-supplied
//! [`QueryStats`].
//!
//! ## Lazy decode contract
//!
//! All pruning decisions — fence comparisons, AABB rejection/containment,
//! BIGMIN jump landings — run on the store's *uncompressed* per-block
//! metadata. Packed key/coordinate words are only run through the unpack
//! kernels (one [`BlockCursor`] decode per visited block, counted in
//! `QueryStats::blocks_decoded`) when a block survives pruning and its
//! slots must actually be examined or reported.
//!
//! ## Block-mapped fast paths
//!
//! * [`interval_scan`] **gallops** forward from the previous interval's
//!   resting position instead of binary-searching the whole column per
//!   interval, then filters each decoded block with the branch-free
//!   [`key_range_mask`](crate::kernels::key_range_mask) kernel and visits
//!   the hit bits.
//! * [`bigmin_scan`] makes whole-block decisions before touching keys:
//!   blocks whose point AABB misses the box are **skipped** without a
//!   single per-key test (`blocks_pruned`), blocks whose AABB lies inside
//!   the box are **bulk-visited** without per-point filtering, and BIGMIN
//!   jump landings resolve through the fence array (one small search, one
//!   in-block search) instead of a whole-tail binary search. Partial
//!   blocks are filtered with one per-axis
//!   [`axis_range_mask`](crate::kernels::axis_range_mask) pass.
//!
//! The pre-zone-map variants are kept as [`interval_scan_plain`] and
//! [`bigmin_scan_plain`]: they are the reference the block-mapped scans
//! are differential-tested against, and the baseline the benches measure
//! the speedup over. They binary-search whole columns and test per slot,
//! but read through the same single-slot decode accessors.

use crate::bigmin::bigmin;
use crate::block::{BlockCursor, BlockStore};
use crate::kernels;
use crate::query::QueryStats;
use crate::region::BoxRegion;
use sfc_core::{CurveIndex, Point, ZCurve};

/// First position in `blocks[from..]` holding a key ≥ `target`, found by
/// galloping (exponential probes doubling outward from `from`, then a
/// binary search inside the bracketed gap). Probes extract single packed
/// fields — no block decodes. Equivalent to a whole-tail lower bound but
/// `O(log gap)` instead of `O(log remaining)` — and `O(1)` when already
/// in position, the common case for sorted interval lists.
fn gallop<const D: usize>(blocks: &BlockStore<D>, from: usize, target: CurveIndex) -> usize {
    let len = blocks.len();
    if from >= len || blocks.key_at(from) >= target {
        return from;
    }
    // Invariant: key(prev) < target.
    let mut prev = from;
    let mut step = 1usize;
    loop {
        let probe = match from.checked_add(step) {
            Some(p) if p < len => p,
            _ => break,
        };
        if blocks.key_at(probe) >= target {
            break;
        }
        prev = probe;
        step <<= 1;
    }
    let end = (from + step).min(len);
    partition_point_in(blocks, prev + 1, end, target)
}

/// First position in `[from, to)` whose key is ≥ `target` (binary search
/// over single-slot key extractions), or `to` if none.
fn partition_point_in<const D: usize>(
    blocks: &BlockStore<D>,
    from: usize,
    to: usize,
    target: CurveIndex,
) -> usize {
    let (mut lo, mut hi) = (from, to);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if blocks.key_at(mid) < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Scans a run for every entry inside the given curve intervals (each
/// `(lo, hi)` inclusive, sorted ascending, as produced by
/// [`BoxRegion::curve_intervals`]), calling `visit` with the position,
/// key, and point of each match.
///
/// One seek per interval plus one mask-kernel pass per overlapped block;
/// because the intervals are exact, every visited entry is a match
/// (`scanned == reported` for interval queries). Seeks **gallop** forward
/// from the previous interval's resting position — see the module docs.
/// The cursor never rewinds, so the intervals **must** be sorted
/// ascending and disjoint (as [`BoxRegion::curve_intervals`] produces
/// them); unsorted input would silently drop matches, hence the debug
/// assertion.
pub fn interval_scan<const D: usize>(
    blocks: &BlockStore<D>,
    intervals: &[(CurveIndex, CurveIndex)],
    stats: &mut QueryStats,
    mut visit: impl FnMut(usize, CurveIndex, Point<D>),
) {
    debug_assert!(
        intervals.windows(2).all(|w| w[0].1 < w[1].0),
        "interval_scan requires ascending disjoint intervals"
    );
    let mut cur = BlockCursor::new(blocks);
    let mut i = 0usize;
    for &(lo, hi) in intervals {
        stats.seeks += 1;
        i = gallop(blocks, i, lo);
        while i < blocks.len() {
            // Cheap single-field guard: nothing left in this interval.
            if blocks.key_at(i) > hi {
                break;
            }
            let block = blocks.block_of(i);
            let range = blocks.block_range(block);
            let dec = cur.decoded(block);
            // Branch-free key-range filter over the decoded block. Keys
            // are sorted and key(i) ∈ [lo, hi], so the hit bits are the
            // contiguous matching run from slot i onward.
            let m = kernels::key_range_mask(&dec.keys, range.len(), lo, hi);
            stats.scanned += u64::from(m.count_ones());
            let mut bits = m;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                visit(range.start + j, dec.keys[j], dec.point(j));
            }
            if m >> (range.len() - 1) & 1 == 1 {
                // The block's last slot still matched — spill into the
                // next block.
                i = range.end;
            } else {
                // Rest one past the last match for the next gallop.
                i = range.start + (64 - m.leading_zeros()) as usize;
                break;
            }
        }
    }
    stats.blocks_decoded += cur.decodes;
}

/// The pre-zone-map interval scan: one whole-column binary search per
/// interval and one slot at a time. Reference implementation for
/// differential tests and the baseline the benches compare
/// [`interval_scan`] against.
pub fn interval_scan_plain<const D: usize>(
    blocks: &BlockStore<D>,
    intervals: &[(CurveIndex, CurveIndex)],
    stats: &mut QueryStats,
    mut visit: impl FnMut(usize, CurveIndex, Point<D>),
) {
    let mut cur = BlockCursor::new(blocks);
    let len = blocks.len();
    for &(lo, hi) in intervals {
        stats.seeks += 1;
        let mut i = partition_point_in(blocks, 0, len, lo);
        while i < len {
            let key = blocks.key_at(i);
            if key > hi {
                break;
            }
            stats.scanned += 1;
            visit(i, key, cur.point(i));
            i += 1;
        }
    }
    stats.blocks_decoded += cur.decodes;
}

/// BIGMIN jumping scan of a sorted Morton-key run (Tropf & Herzog),
/// accelerated by the block metadata: scan from `Z(lo)`; at each block
/// boundary decide the whole block at once (skip if its AABB misses the
/// box, bulk-visit if contained); whenever the per-slot scan meets an
/// entry outside the box, compute BIGMIN and land the jump through the
/// fence array. Partial blocks decode once and are filtered through the
/// per-axis mask kernel. Calls `visit` with the position, key, and point
/// of every entry whose point lies in the box — the exact same set
/// [`bigmin_scan_plain`] visits.
pub fn bigmin_scan<const D: usize>(
    z: &ZCurve<D>,
    blocks: &BlockStore<D>,
    b: &BoxRegion<D>,
    stats: &mut QueryStats,
    mut visit: impl FnMut(usize, CurveIndex, Point<D>),
) {
    let zmin = z.encode(b.lo());
    let zmax = z.encode(b.hi());
    stats.seeks += 1;
    let mut cur = BlockCursor::new(blocks);
    let mut i = blocks.lower_bound(zmin);
    // The partial-block box mask, rebuilt once per entered block.
    let mut mask_block = usize::MAX;
    let mut box_mask = 0u64;
    while i < blocks.len() {
        let block = blocks.block_of(i);
        let range = blocks.block_range(block);
        if i == range.start {
            // Block boundary: decide the whole block at once on the
            // uncompressed metadata. The fence is the block's smallest
            // key, so fence > zmax ends the scan.
            if blocks.fence(block) > zmax {
                break;
            }
            if blocks.disjoint(block, b) {
                stats.blocks_pruned += 1;
                i = range.end;
                continue;
            }
            stats.blocks_scanned += 1;
            if blocks.contained(block, b) {
                // Componentwise Morton monotonicity: AABB ⊆ box ⇒ every
                // key of the block lies in [Z(lo), Z(hi)] — visit all
                // slots without per-point tests (decode only to report).
                stats.scanned += range.len() as u64;
                let dec = cur.decoded(block);
                for j in 0..range.len() {
                    visit(range.start + j, dec.keys[j], dec.point(j));
                }
                i = range.end;
                continue;
            }
        }
        if mask_block != block {
            // First touch of a partial block: probe the single landing
            // slot through the packed-field accessors before paying for a
            // block decode — most BIGMIN landings bounce straight back
            // out, and a probe costs a handful of field extractions.
            let key = blocks.key_at(i);
            if key > zmax {
                break;
            }
            stats.scanned += 1;
            let p = blocks.point_at(i);
            if !b.contains(&p) {
                match bigmin(z, key, zmin, zmax) {
                    Some(next) => {
                        stats.seeks += 1;
                        i = blocks.lower_bound(next).max(i + 1);
                        continue;
                    }
                    None => break,
                }
            }
            // The landing slot matched — the block has real work in it,
            // so decode once and mask the rest of it.
            let dec = cur.decoded(block);
            let mut m = kernels::len_mask(range.len());
            for axis in 0..D {
                m &= kernels::axis_range_mask(
                    &dec.coords[axis],
                    b.lo().coord(axis),
                    b.hi().coord(axis),
                );
            }
            box_mask = m;
            mask_block = block;
            visit(i, key, p);
            i += 1;
            continue;
        }
        let dec = cur.decoded(block);
        let j = i - range.start;
        let key = dec.keys[j];
        if key > zmax {
            break;
        }
        stats.scanned += 1;
        if box_mask >> j & 1 == 1 {
            visit(i, key, dec.point(j));
            i += 1;
        } else {
            match bigmin(z, key, zmin, zmax) {
                Some(next) => {
                    stats.seeks += 1;
                    // `next > key`, so the fence-accelerated lower bound
                    // finds the same position as a whole-tail search.
                    i = blocks.lower_bound(next).max(i + 1);
                }
                None => break,
            }
        }
    }
    stats.blocks_decoded += cur.decodes;
}

/// The pre-zone-map BIGMIN scan: per-slot box tests throughout and
/// whole-tail binary searches after each jump. Reference implementation
/// for differential tests and the baseline the benches compare
/// [`bigmin_scan`] against.
pub fn bigmin_scan_plain<const D: usize>(
    z: &ZCurve<D>,
    blocks: &BlockStore<D>,
    b: &BoxRegion<D>,
    stats: &mut QueryStats,
    mut visit: impl FnMut(usize, CurveIndex, Point<D>),
) {
    let zmin = z.encode(b.lo());
    let zmax = z.encode(b.hi());
    stats.seeks += 1;
    let mut cur = BlockCursor::new(blocks);
    let len = blocks.len();
    let mut i = partition_point_in(blocks, 0, len, zmin);
    while i < len {
        let key = blocks.key_at(i);
        if key > zmax {
            break;
        }
        stats.scanned += 1;
        let point = cur.point(i);
        if b.contains(&point) {
            visit(i, key, point);
            i += 1;
        } else {
            match bigmin(z, key, zmin, zmax) {
                Some(next) => {
                    stats.seeks += 1;
                    // `next > key`, so searching the tail finds the same
                    // position as a fresh whole-column search.
                    i = partition_point_in(blocks, i, len, next);
                }
                None => break,
            }
        }
    }
    stats.blocks_decoded += cur.decodes;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{Grid, SpaceFillingCurve};

    fn store_of(keys: &[CurveIndex]) -> BlockStore<2> {
        let points = vec![Point::new([0, 0]); keys.len()];
        BlockStore::pack(keys, &points, |_| true)
    }

    #[test]
    fn gallop_agrees_with_partition_point() {
        let keys: Vec<CurveIndex> = vec![0, 2, 2, 5, 7, 9, 12, 12, 12, 40, 41, 100];
        let bs = store_of(&keys);
        for from in 0..=keys.len() {
            for target in 0..=101 {
                let want = from + keys[from..].partition_point(|&k| k < target);
                assert_eq!(gallop(&bs, from, target), want, "from={from} t={target}");
            }
        }
        assert_eq!(gallop(&store_of(&[]), 0, 7), 0);
    }

    #[test]
    fn interval_scan_visits_exactly_the_ranges() {
        let keys: Vec<CurveIndex> = vec![0, 2, 2, 5, 7, 9, 12];
        let bs = store_of(&keys);
        let mut stats = QueryStats::default();
        let mut hits = Vec::new();
        interval_scan(&bs, &[(2, 5), (9, 10)], &mut stats, |i, k, _| {
            assert_eq!(k, keys[i]);
            hits.push(i)
        });
        assert_eq!(hits, vec![1, 2, 3, 5]);
        assert_eq!(stats.seeks, 2);
        assert_eq!(stats.scanned, 4);
        // The galloped scan visits exactly what the plain scan visits.
        let mut plain_stats = QueryStats::default();
        let mut plain_hits = Vec::new();
        interval_scan_plain(&bs, &[(2, 5), (9, 10)], &mut plain_stats, |i, _, _| {
            plain_hits.push(i)
        });
        assert_eq!(hits, plain_hits);
        assert_eq!(stats, plain_stats);
    }

    #[test]
    fn interval_scan_spills_across_block_boundaries() {
        // One interval covering several whole blocks plus both tails.
        let keys: Vec<CurveIndex> = (0..300u128).map(|i| i * 2).collect();
        let bs = store_of(&keys);
        let mut stats = QueryStats::default();
        let mut hits = Vec::new();
        interval_scan(&bs, &[(31, 401)], &mut stats, |i, _, _| hits.push(i));
        let expected: Vec<usize> = (0..keys.len())
            .filter(|&i| (31..=401).contains(&keys[i]))
            .collect();
        assert_eq!(hits, expected);
        assert_eq!(stats.scanned, expected.len() as u64);
        assert!(stats.blocks_decoded > 0);
    }

    #[test]
    fn bigmin_scan_matches_filtering_the_key_range() {
        let grid = Grid::<2>::new(3).unwrap();
        let z = ZCurve::over(grid);
        // All cells, sorted by key (the full curve order).
        let points: Vec<Point<2>> = z.traverse().collect();
        let keys: Vec<CurveIndex> = (0..grid.n()).collect();
        let bs = BlockStore::pack(&keys, &points, |_| true);
        let b = BoxRegion::new(Point::new([2, 1]), Point::new([6, 5]));
        let mut stats = QueryStats::default();
        let mut hits = Vec::new();
        bigmin_scan(&z, &bs, &b, &mut stats, |i, k, p| {
            assert_eq!(k, keys[i]);
            assert_eq!(p, points[i]);
            hits.push(i)
        });
        let expected: Vec<usize> = (0..points.len())
            .filter(|&i| b.contains(&points[i]))
            .collect();
        assert_eq!(hits, expected);
    }

    #[test]
    fn block_mapped_bigmin_visits_exactly_what_plain_does() {
        // Dense and sparse columns, many box shapes — the block-mapped
        // scan must visit byte-identical positions to the plain scan
        // while pruning blocks.
        let grid = Grid::<2>::new(5).unwrap(); // 32×32
        let z = ZCurve::over(grid);
        for stride in [1u128, 3, 7] {
            let keys: Vec<CurveIndex> = (0..grid.n()).step_by(stride as usize).collect();
            let points: Vec<Point<2>> = keys.iter().map(|&k| z.point_of(k)).collect();
            let bs = BlockStore::pack(&keys, &points, |_| true);
            for (lo, hi) in [
                ((0, 0), (31, 31)),
                ((3, 5), (9, 8)),
                ((16, 0), (31, 15)),
                ((30, 30), (31, 31)),
                ((0, 17), (31, 18)),
            ] {
                let b = BoxRegion::new(Point::new([lo.0, lo.1]), Point::new([hi.0, hi.1]));
                let mut zs = QueryStats::default();
                let mut zone_hits = Vec::new();
                bigmin_scan(&z, &bs, &b, &mut zs, |i, _, _| zone_hits.push(i));
                let mut ps = QueryStats::default();
                let mut plain_hits = Vec::new();
                bigmin_scan_plain(&z, &bs, &b, &mut ps, |i, _, _| plain_hits.push(i));
                assert_eq!(zone_hits, plain_hits, "stride={stride} box={b:?}");
                assert!(zs.scanned <= ps.scanned, "zone scan must not scan more");
            }
        }
    }

    #[test]
    fn full_grid_box_takes_the_contained_fast_path() {
        let grid = Grid::<2>::new(4).unwrap();
        let z = ZCurve::over(grid);
        let points: Vec<Point<2>> = z.traverse().collect();
        let keys: Vec<CurveIndex> = (0..grid.n()).collect();
        let bs = BlockStore::pack(&keys, &points, |_| true);
        let b = BoxRegion::new(Point::new([0, 0]), Point::new([15, 15]));
        let mut stats = QueryStats::default();
        let mut hits = 0usize;
        bigmin_scan(&z, &bs, &b, &mut stats, |_, _, _| hits += 1);
        assert_eq!(hits, 256);
        assert_eq!(stats.blocks_scanned, bs.blocks() as u64);
        assert_eq!(stats.blocks_pruned, 0);
        assert_eq!(stats.seeks, 1, "no jump needed inside a contained box");
        assert_eq!(
            stats.blocks_decoded,
            bs.blocks() as u64,
            "contained blocks decode exactly once, to report"
        );
    }
}
