//! Branch-free pack / unpack / filter kernels over 64-slot blocks.
//!
//! Every kernel here works on one block of [`BLOCK_SLOTS`] fixed-width
//! bit-packed fields and is written as a straight-line loop over all 64
//! slots with no data-dependent branches, so the autovectorizer can turn
//! it into SIMD lanes. The kernels are the only code that touches the
//! packed representation; [`BlockStore`](crate::BlockStore) composes them.
//!
//! ## Soundness of the paired-word read
//!
//! [`unpack_fields`] and [`get_field`] read a `w`-bit field that may
//! straddle a word boundary by combining two consecutive words entirely
//! in 64-bit registers: the low part is `words[word] >> shift`, and the
//! straddling bits come down as `(words[word + 1] << 1) << (63 − shift)`
//! — two shifts of at most 63, which yield 0 when `shift == 0` instead
//! of the undefined-behaviour full-width shift, with no branch and no
//! `u128` arithmetic. For slot `j` of width `w ∈ 1..=64`, the field's
//! last bit is `j·w + w − 1 ≤ 64·w − 1`, so the highest word index ever
//! read is `⌊(64·w − 1)/64⌋ + 1 = w`. A full block packs into exactly `w`
//! words, blocks are laid out contiguously, and the store appends one
//! trailing pad word — therefore a slice starting at a block's word
//! offset always holds the `w + 1` readable words the kernels require,
//! and the extra word's bits are masked off before use. No `unsafe` is
//! involved anywhere (`#![forbid(unsafe_code)]` holds crate-wide); the
//! indices are provably in bounds, so the checks compile away.

use sfc_core::CurveIndex;

use crate::block::BLOCK_SLOTS;

/// Sentinel bit width marking a block whose key deltas exceed 64 bits:
/// the deltas are stored raw as two little-endian words per slot.
pub const WIDTH_RAW: u8 = 255;

/// The all-ones mask of a field width (`0` for width 0).
#[inline]
pub fn width_mask(width: u8) -> u64 {
    if width == 0 {
        0
    } else if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Bits needed to represent `v` (`0` for `v == 0`).
#[inline]
pub fn bits_for(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Mask with the low `len` bits set (`len ≤ 64`).
#[inline]
pub fn len_mask(len: usize) -> u64 {
    if len >= 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    }
}

/// Packs 64 `width`-bit values (`width ∈ 1..=64`) into exactly `width`
/// words appended to `words`. Values must fit in `width` bits.
pub fn pack_fields(values: &[u64; BLOCK_SLOTS], width: u8, words: &mut Vec<u64>) {
    let w = width as usize;
    debug_assert!((1..=64).contains(&w));
    let start = words.len();
    words.resize(start + w, 0);
    let out = &mut words[start..];
    for (j, &v) in values.iter().enumerate() {
        debug_assert!(w == 64 || v <= width_mask(width), "value wider than field");
        let bit = j * w;
        let word = bit >> 6;
        let shift = bit & 63;
        out[word] |= v << shift;
        if shift + w > 64 {
            // The spill word index is ≤ w − 1: the field's last bit is
            // 64·w − 1 at most, which lives in word w − 1.
            out[word + 1] |= v >> (64 - shift);
        }
    }
}

/// Unpacks 64 `width`-bit fields (`width ∈ 1..=64`) from `words` into
/// `out`. `words` must start at the block's word offset and extend at
/// least `width + 1` words (see the module docs).
///
/// The straddle read stays in 64-bit registers: the bits spilling into
/// the next word are brought down by a `64 − shift` shift performed as
/// two steps of at most 63 (`<< 1` then `<< (63 − shift)`), which yields
/// 0 when `shift == 0` instead of the undefined full-width shift — no
/// branch, no `u128` arithmetic.
#[inline]
pub fn unpack_fields(words: &[u64], width: u8, out: &mut [u64; BLOCK_SLOTS]) {
    let w = width as usize;
    debug_assert!((1..=64).contains(&w));
    let mask = width_mask(width);
    // One reslice up front: a block owns exactly `w` words and the column
    // ends in a pad word, so `word + 1 ≤ w` below is always in bounds.
    let words = &words[..w + 1];
    for (j, slot) in out.iter_mut().enumerate() {
        let bit = j * w;
        let word = bit >> 6;
        let shift = (bit & 63) as u32;
        let lo = words[word] >> shift;
        let hi = (words[word + 1] << 1) << (63 - shift);
        *slot = (lo | hi) & mask;
    }
}

/// Extracts the single `width`-bit field of slot `j` (`width ∈ 1..=64`).
/// Same slice contract and shift trick as [`unpack_fields`].
#[inline]
pub fn get_field(words: &[u64], width: u8, j: usize) -> u64 {
    let w = width as usize;
    debug_assert!((1..=64).contains(&w));
    let bit = j * w;
    let word = bit >> 6;
    let shift = (bit & 63) as u32;
    let lo = words[word] >> shift;
    let hi = (words[word + 1] << 1) << (63 - shift);
    (lo | hi) & width_mask(width)
}

/// Decodes a block's 64 keys: `base` (the block's fence key) plus the
/// per-slot delta stored at `width`. Width 0 means every key equals the
/// base; [`WIDTH_RAW`] means two raw words per slot.
#[inline]
pub fn unpack_keys(
    words: &[u64],
    width: u8,
    base: CurveIndex,
    out: &mut [CurveIndex; BLOCK_SLOTS],
) {
    match width {
        0 => out.fill(base),
        WIDTH_RAW => {
            for (j, slot) in out.iter_mut().enumerate() {
                let delta = (words[2 * j] as u128) | ((words[2 * j + 1] as u128) << 64);
                *slot = base + delta;
            }
        }
        _ => {
            let mut deltas = [0u64; BLOCK_SLOTS];
            unpack_fields(words, width, &mut deltas);
            for (slot, &delta) in out.iter_mut().zip(deltas.iter()) {
                *slot = base + delta as u128;
            }
        }
    }
}

/// Decodes one axis of a block's 64 coordinates: `base` (the block AABB
/// minimum along the axis) plus the per-slot offset stored at `width`
/// (`width ≤ 32`; width 0 means every coordinate equals the base).
#[inline]
pub fn unpack_axis(words: &[u64], width: u8, base: u32, out: &mut [u32; BLOCK_SLOTS]) {
    if width == 0 {
        out.fill(base);
        return;
    }
    let mut offsets = [0u64; BLOCK_SLOTS];
    unpack_fields(words, width, &mut offsets);
    for (slot, &off) in out.iter_mut().zip(offsets.iter()) {
        *slot = base + off as u32;
    }
}

/// Bitmask of the slots (bit `j` ⇔ slot `j`) whose key lies in the
/// inclusive range `[lo, hi]`, restricted to the block's first `len`
/// slots. Branch-free: one compare pair per slot.
#[inline]
pub fn key_range_mask(
    keys: &[CurveIndex; BLOCK_SLOTS],
    len: usize,
    lo: CurveIndex,
    hi: CurveIndex,
) -> u64 {
    let mut mask = 0u64;
    for (j, &key) in keys.iter().enumerate() {
        let inside = (key >= lo) & (key <= hi);
        mask |= (inside as u64) << j;
    }
    mask & len_mask(len)
}

/// Bitmask of the slots whose coordinate along one axis lies in the
/// inclusive range `[lo, hi]`. AND the per-axis masks together (and with
/// [`len_mask`]) to get a box-containment mask for a decoded block.
#[inline]
pub fn axis_range_mask(coords: &[u32; BLOCK_SLOTS], lo: u32, hi: u32) -> u64 {
    let mut mask = 0u64;
    for (j, &c) in coords.iter().enumerate() {
        let inside = (c >= lo) & (c <= hi);
        mask |= (inside as u64) << j;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips_every_width() {
        for width in 1u8..=64 {
            let mask = width_mask(width);
            let values: [u64; BLOCK_SLOTS] = std::array::from_fn(|j| {
                (j as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(j as u32)
                    & mask
            });
            let mut words = Vec::new();
            pack_fields(&values, width, &mut words);
            assert_eq!(words.len(), width as usize);
            words.push(0); // the store's pad word
            let mut out = [0u64; BLOCK_SLOTS];
            unpack_fields(&words, width, &mut out);
            assert_eq!(out, values, "width {width}");
            for (j, &v) in values.iter().enumerate() {
                assert_eq!(get_field(&words, width, j), v, "width {width} slot {j}");
            }
        }
    }

    #[test]
    fn key_decode_handles_zero_and_raw_widths() {
        let mut out = [0u128; BLOCK_SLOTS];
        unpack_keys(&[], 0, 42, &mut out);
        assert!(out.iter().all(|&k| k == 42));

        // Raw path: deltas wider than 64 bits.
        let deltas: Vec<u128> = (0..BLOCK_SLOTS as u128).map(|j| j << 70).collect();
        let mut words = Vec::new();
        for &d in &deltas {
            words.push(d as u64);
            words.push((d >> 64) as u64);
        }
        unpack_keys(&words, WIDTH_RAW, 7, &mut out);
        for (j, &k) in out.iter().enumerate() {
            assert_eq!(k, 7 + deltas[j]);
        }
    }

    #[test]
    fn range_masks_match_scalar_filters() {
        let keys: [CurveIndex; BLOCK_SLOTS] = std::array::from_fn(|j| (j as u128) * 3 + 5);
        for (lo, hi, len) in [
            (0, 200, 64),
            (11, 47, 64),
            (14, 14, 64),
            (50, 40, 64),
            (0, 200, 10),
        ] {
            let mask = key_range_mask(&keys, len, lo, hi);
            for (j, &k) in keys.iter().enumerate() {
                let want = j < len && k >= lo && k <= hi;
                assert_eq!(mask >> j & 1 == 1, want, "lo={lo} hi={hi} len={len} j={j}");
            }
        }
        let coords: [u32; BLOCK_SLOTS] = std::array::from_fn(|j| (j as u32 * 7) % 50);
        let mask = axis_range_mask(&coords, 10, 30);
        for (j, &c) in coords.iter().enumerate() {
            assert_eq!(mask >> j & 1 == 1, (10..=30).contains(&c));
        }
    }

    #[test]
    fn bits_for_and_masks() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
        assert_eq!(width_mask(0), 0);
        assert_eq!(width_mask(64), u64::MAX);
        assert_eq!(len_mask(64), u64::MAX);
        assert_eq!(len_mask(1), 1);
    }
}
