//! Axis-aligned query boxes.

use sfc_core::{CurveIndex, Grid, Point, SpaceFillingCurve};

/// An axis-aligned box `[lo, hi]` (inclusive corners) of grid cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoxRegion<const D: usize> {
    lo: Point<D>,
    hi: Point<D>,
}

impl<const D: usize> BoxRegion<D> {
    /// Creates the box with inclusive corners `lo` and `hi`.
    ///
    /// # Panics
    /// Panics if `lo` exceeds `hi` along any axis.
    pub fn new(lo: Point<D>, hi: Point<D>) -> Self {
        for axis in 0..D {
            assert!(
                lo.coord(axis) <= hi.coord(axis),
                "box corners inverted along axis {axis}"
            );
        }
        Self { lo, hi }
    }

    /// The box centered at `center` with Chebyshev radius `r`, clamped to
    /// the grid.
    pub fn chebyshev_ball(grid: Grid<D>, center: Point<D>, r: u32) -> Self {
        let max = (grid.side() - 1) as u32;
        let mut lo = [0u32; D];
        let mut hi = [0u32; D];
        for axis in 0..D {
            let c = center.coord(axis);
            lo[axis] = c.saturating_sub(r);
            hi[axis] = (c.saturating_add(r)).min(max);
        }
        Self::new(Point::new(lo), Point::new(hi))
    }

    /// Lower corner.
    pub fn lo(&self) -> Point<D> {
        self.lo
    }

    /// Upper corner.
    pub fn hi(&self) -> Point<D> {
        self.hi
    }

    /// `true` iff the point lies inside the box.
    #[inline]
    pub fn contains(&self, p: &Point<D>) -> bool {
        (0..D).all(|axis| {
            let c = p.coord(axis);
            self.lo.coord(axis) <= c && c <= self.hi.coord(axis)
        })
    }

    /// Number of cells in the box.
    pub fn volume(&self) -> u128 {
        (0..D)
            .map(|axis| u128::from(self.hi.coord(axis) - self.lo.coord(axis)) + 1)
            .product()
    }

    /// Iterates all cells of the box (odometer order).
    pub fn cells(&self) -> impl Iterator<Item = Point<D>> + '_ {
        let mut offsets = Some([0u32; D]);
        std::iter::from_fn(move || {
            let off = offsets?;
            let mut coords = self.lo.coords();
            for (c, o) in coords.iter_mut().zip(off.iter()) {
                *c += *o;
            }
            // Advance odometer.
            let mut next = off;
            let mut done = true;
            for (axis, slot) in next.iter_mut().enumerate() {
                let extent = self.hi.coord(axis) - self.lo.coord(axis);
                if *slot < extent {
                    *slot += 1;
                    done = false;
                    break;
                }
                *slot = 0;
            }
            offsets = if done { None } else { Some(next) };
            Some(Point::new(coords))
        })
    }

    /// The maximal runs of consecutive curve indices covering this box,
    /// sorted ascending. The number of intervals is exactly the clustering
    /// metric of the curve for this query (`sfc-metrics::clustering`).
    ///
    /// Cost: `O(volume · log volume)` — exact for any curve.
    pub fn curve_intervals<C: SpaceFillingCurve<D>>(
        &self,
        curve: &C,
    ) -> Vec<(CurveIndex, CurveIndex)> {
        let mut indices: Vec<CurveIndex> = self.cells().map(|c| curve.index_of(c)).collect();
        indices.sort_unstable();
        let mut intervals = Vec::new();
        let mut iter = indices.into_iter();
        let Some(first) = iter.next() else {
            return intervals;
        };
        let (mut start, mut end) = (first, first);
        for idx in iter {
            if idx == end + 1 {
                end = idx;
            } else {
                intervals.push((start, end));
                start = idx;
                end = idx;
            }
        }
        intervals.push((start, end));
        intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{Grid, HilbertCurve, ZCurve};

    #[test]
    fn contains_and_volume() {
        let b = BoxRegion::new(Point::new([1, 2]), Point::new([3, 5]));
        assert!(b.contains(&Point::new([1, 2])));
        assert!(b.contains(&Point::new([3, 5])));
        assert!(b.contains(&Point::new([2, 4])));
        assert!(!b.contains(&Point::new([0, 3])));
        assert!(!b.contains(&Point::new([2, 6])));
        assert_eq!(b.volume(), 3 * 4);
        assert_eq!(b.cells().count(), 12);
    }

    #[test]
    fn cells_cover_exactly_the_box() {
        let b = BoxRegion::new(Point::new([1, 0, 2]), Point::new([2, 1, 3]));
        let cells: Vec<_> = b.cells().collect();
        assert_eq!(cells.len() as u128, b.volume());
        for c in &cells {
            assert!(b.contains(c));
        }
        let set: std::collections::HashSet<_> = cells.iter().collect();
        assert_eq!(set.len(), cells.len());
    }

    #[test]
    fn single_cell_box() {
        let p = Point::new([4, 4]);
        let b = BoxRegion::new(p, p);
        assert_eq!(b.volume(), 1);
        assert_eq!(b.cells().collect::<Vec<_>>(), vec![p]);
    }

    #[test]
    fn chebyshev_ball_clamps_to_grid() {
        let grid = Grid::<2>::new(3).unwrap();
        let b = BoxRegion::chebyshev_ball(grid, Point::new([1, 6]), 2);
        assert_eq!(b.lo(), Point::new([0, 4]));
        assert_eq!(b.hi(), Point::new([3, 7]));
    }

    #[test]
    fn curve_intervals_cover_box_and_count_clusters() {
        let z = ZCurve::<2>::new(3).unwrap();
        let b = BoxRegion::new(Point::new([2, 2]), Point::new([5, 5]));
        let intervals = b.curve_intervals(&z);
        let covered: u128 = intervals.iter().map(|(a, b)| b - a + 1).sum();
        assert_eq!(covered, b.volume());
        // Intervals are sorted and disjoint with gaps.
        for w in intervals.windows(2) {
            assert!(w[0].1 + 1 < w[1].0);
        }
        // Hilbert clusters the same box into no more runs than Z
        // (Moon et al.).
        let h = HilbertCurve::<2>::new(3).unwrap();
        assert!(b.curve_intervals(&h).len() <= intervals.len());
    }

    #[test]
    fn aligned_quadrant_is_one_interval_for_z() {
        let z = ZCurve::<2>::new(3).unwrap();
        let b = BoxRegion::new(Point::new([4, 4]), Point::new([7, 7]));
        let intervals = b.curve_intervals(&z);
        assert_eq!(intervals.len(), 1);
        assert_eq!(intervals[0].1 - intervals[0].0 + 1, 16);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_box_is_rejected() {
        BoxRegion::new(Point::new([3, 1]), Point::new([2, 5]));
    }
}
