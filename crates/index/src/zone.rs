//! Block summaries (zone maps) over a sorted run's columns.
//!
//! A [`ZoneMap`] cuts a run into fixed-size blocks of [`BLOCK_SLOTS`]
//! consecutive slots and records, per block:
//!
//! * the **fence key** — the block's first (smallest) curve key, so a
//!   two-level binary search (fence array, then one block) replaces a
//!   whole-column search with two cache-resident ones;
//! * the per-dimension **AABB** of the block's points, so a scan can
//!   reject or wholesale-accept a block against a query box (or lower
//!   bound its distance to a kNN query) without decoding a single key;
//! * the **live count** — slots whose payload is not a tombstone, so
//!   scans that only want live records (kNN candidate collection) can
//!   skip all-dead blocks outright.
//!
//! The summaries are built once at run construction
//! ([`SfcIndex::from_sorted`](crate::SfcIndex::from_sorted) /
//! [`from_sorted_versions`](crate::SfcIndex::from_sorted_versions)) in one
//! sequential pass and are immutable afterwards, exactly like the run
//! itself. Memory cost is ~0.6 bytes per slot at `D = 2`.
//!
//! [`BLOCK_SLOTS`] is the tuning knob: smaller blocks prune more precisely
//! but cost more fence searches and memory; 64 slots keeps the whole fence
//! array of a million-record run (~16k entries) inside L2 while one block
//! spans exactly one or two cache lines of keys.

use sfc_core::{CurveIndex, Point};

use crate::region::BoxRegion;

/// Slots per zone-map block. See the module docs for the tradeoff.
pub const BLOCK_SLOTS: usize = 64;

/// Per-block summaries of one sorted run: fence keys, point AABBs, live
/// counts. Built by [`ZoneMap::build`]; immutable afterwards.
#[derive(Debug, Clone)]
pub struct ZoneMap<const D: usize> {
    /// Total slots summarised (the run length).
    len: usize,
    /// First key of each block, in block order (ascending).
    fences: Vec<CurveIndex>,
    /// Componentwise minimum of each block's points.
    lo: Vec<Point<D>>,
    /// Componentwise maximum of each block's points.
    hi: Vec<Point<D>>,
    /// Non-tombstone slots per block.
    live: Vec<u32>,
    /// Componentwise min over the whole run (meaningful iff `len > 0`).
    all_lo: Point<D>,
    /// Componentwise max over the whole run (meaningful iff `len > 0`).
    all_hi: Point<D>,
}

impl<const D: usize> ZoneMap<D> {
    /// Builds the summaries in one pass over parallel `keys` / `points`
    /// columns (sorted by key). `is_live` reports whether the slot at a
    /// given position holds a live payload (`|_| true` for indexes without
    /// tombstones).
    ///
    /// # Panics
    /// Panics if the columns have different lengths.
    pub fn build(
        keys: &[CurveIndex],
        points: &[Point<D>],
        mut is_live: impl FnMut(usize) -> bool,
    ) -> Self {
        assert_eq!(keys.len(), points.len(), "column length mismatch");
        let len = keys.len();
        let blocks = len.div_ceil(BLOCK_SLOTS);
        let mut fences = Vec::with_capacity(blocks);
        let mut lo = Vec::with_capacity(blocks);
        let mut hi = Vec::with_capacity(blocks);
        let mut live = Vec::with_capacity(blocks);
        let mut all_lo = [u32::MAX; D];
        let mut all_hi = [0u32; D];
        for block in 0..blocks {
            let start = block * BLOCK_SLOTS;
            let end = (start + BLOCK_SLOTS).min(len);
            let mut blk_lo = [u32::MAX; D];
            let mut blk_hi = [0u32; D];
            let mut blk_live = 0u32;
            for (slot, point) in points.iter().enumerate().take(end).skip(start) {
                for axis in 0..D {
                    let c = point.coord(axis);
                    blk_lo[axis] = blk_lo[axis].min(c);
                    blk_hi[axis] = blk_hi[axis].max(c);
                }
                blk_live += u32::from(is_live(slot));
            }
            for axis in 0..D {
                all_lo[axis] = all_lo[axis].min(blk_lo[axis]);
                all_hi[axis] = all_hi[axis].max(blk_hi[axis]);
            }
            fences.push(keys[start]);
            lo.push(Point::new(blk_lo));
            hi.push(Point::new(blk_hi));
            live.push(blk_live);
        }
        Self {
            len,
            fences,
            lo,
            hi,
            live,
            all_lo: Point::new(all_lo),
            all_hi: Point::new(all_hi),
        }
    }

    /// Total slots summarised.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the map summarises an empty run.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.fences.len()
    }

    /// The block containing slot `slot`.
    #[inline]
    pub fn block_of(&self, slot: usize) -> usize {
        slot / BLOCK_SLOTS
    }

    /// The slot range of block `block` (`start..end`, end-exclusive; the
    /// last block may be short).
    #[inline]
    pub fn block_range(&self, block: usize) -> std::ops::Range<usize> {
        let start = block * BLOCK_SLOTS;
        start..(start + BLOCK_SLOTS).min(self.len)
    }

    /// The block's first (smallest) key.
    #[inline]
    pub fn fence(&self, block: usize) -> CurveIndex {
        self.fences[block]
    }

    /// Non-tombstone slots in the block.
    #[inline]
    pub fn live(&self, block: usize) -> u32 {
        self.live[block]
    }

    /// `true` iff every slot of the block is a tombstone.
    #[inline]
    pub fn is_all_dead(&self, block: usize) -> bool {
        self.live[block] == 0
    }

    /// The block's point AABB as inclusive `(lo, hi)` corners.
    #[inline]
    pub fn aabb(&self, block: usize) -> (Point<D>, Point<D>) {
        (self.lo[block], self.hi[block])
    }

    /// `true` iff the block's AABB and the box share no cell — no slot of
    /// the block can possibly match the box.
    #[inline]
    pub fn disjoint(&self, block: usize, b: &BoxRegion<D>) -> bool {
        let (lo, hi) = (&self.lo[block], &self.hi[block]);
        (0..D)
            .any(|axis| hi.coord(axis) < b.lo().coord(axis) || lo.coord(axis) > b.hi().coord(axis))
    }

    /// `true` iff the block's AABB lies entirely inside the box — every
    /// slot of the block matches without a per-point test.
    #[inline]
    pub fn contained(&self, block: usize, b: &BoxRegion<D>) -> bool {
        let (lo, hi) = (&self.lo[block], &self.hi[block]);
        (0..D).all(|axis| {
            b.lo().coord(axis) <= lo.coord(axis) && hi.coord(axis) <= b.hi().coord(axis)
        })
    }

    /// Lower bound on the squared Euclidean distance from `q` to any point
    /// of the block (distance to the block's AABB; 0 if `q` is inside it).
    #[inline]
    pub fn min_dist_sq(&self, block: usize, q: &Point<D>) -> u64 {
        let (lo, hi) = (&self.lo[block], &self.hi[block]);
        let mut acc = 0u64;
        for axis in 0..D {
            let c = q.coord(axis);
            let d = if c < lo.coord(axis) {
                lo.coord(axis) - c
            } else if c > hi.coord(axis) {
                c - hi.coord(axis)
            } else {
                0
            };
            acc += u64::from(d) * u64::from(d);
        }
        acc
    }

    /// The whole run's point AABB, or `None` for an empty run.
    pub fn bounds(&self) -> Option<(Point<D>, Point<D>)> {
        (self.len > 0).then_some((self.all_lo, self.all_hi))
    }

    /// `true` iff the whole run's AABB misses the box (so every block
    /// does). `false` for an empty run (nothing to prune — scans of an
    /// empty run are free anyway).
    pub fn run_disjoint(&self, b: &BoxRegion<D>) -> bool {
        self.len > 0
            && (0..D).any(|axis| {
                self.all_hi.coord(axis) < b.lo().coord(axis)
                    || self.all_lo.coord(axis) > b.hi().coord(axis)
            })
    }

    /// First slot whose key is ≥ `key`: a binary search over the fence
    /// array followed by one inside a single block — both arrays small and
    /// cache-resident, unlike a whole-column search. `keys` must be the
    /// column this map was built over.
    pub fn lower_bound(&self, keys: &[CurveIndex], key: CurveIndex) -> usize {
        // First block whose fence is ≥ key; the answer can also sit in the
        // tail of the block before it (fence < key ≤ last key).
        let blk = self.fences.partition_point(|&f| f < key);
        let start = blk.saturating_sub(1) * BLOCK_SLOTS;
        let end = (start + BLOCK_SLOTS).min(self.len);
        let within = keys[start..end].partition_point(|&k| k < key);
        start + within
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{Grid, SpaceFillingCurve, ZCurve};

    fn sorted_columns(n: usize) -> (Vec<CurveIndex>, Vec<Point<2>>, ZCurve<2>) {
        let z = ZCurve::<2>::new(5).unwrap();
        let mut rows: Vec<(CurveIndex, Point<2>)> = (0..n)
            .map(|i| {
                let p = Point::new([(i as u32 * 7) % 32, (i as u32 * 13) % 32]);
                (z.index_of(p), p)
            })
            .collect();
        rows.sort_by_key(|&(k, _)| k);
        let (keys, points) = rows.into_iter().unzip();
        (keys, points, z)
    }

    #[test]
    fn build_covers_all_slots_and_counts_live() {
        let (keys, points, _) = sorted_columns(200);
        let zm = ZoneMap::build(&keys, &points, |slot| slot % 3 != 0);
        assert_eq!(zm.len(), 200);
        assert_eq!(zm.blocks(), 200usize.div_ceil(BLOCK_SLOTS));
        let mut covered = 0usize;
        let mut live = 0u32;
        for b in 0..zm.blocks() {
            let r = zm.block_range(b);
            assert_eq!(zm.fence(b), keys[r.start]);
            covered += r.len();
            live += zm.live(b);
            let (lo, hi) = zm.aabb(b);
            for slot in r {
                assert_eq!(zm.block_of(slot), b);
                for axis in 0..2 {
                    assert!(lo.coord(axis) <= points[slot].coord(axis));
                    assert!(points[slot].coord(axis) <= hi.coord(axis));
                }
            }
        }
        assert_eq!(covered, 200);
        assert_eq!(live, (0..200).filter(|s| s % 3 != 0).count() as u32);
        let (all_lo, all_hi) = zm.bounds().unwrap();
        for axis in 0..2 {
            assert!(points.iter().all(|p| p.coord(axis) >= all_lo.coord(axis)));
            assert!(points.iter().all(|p| p.coord(axis) <= all_hi.coord(axis)));
        }
    }

    #[test]
    fn lower_bound_matches_whole_column_search() {
        let (keys, points, _) = sorted_columns(500);
        let zm = ZoneMap::build(&keys, &points, |_| true);
        let grid = Grid::<2>::new(5).unwrap();
        for key in 0..grid.n() {
            assert_eq!(
                zm.lower_bound(&keys, key),
                keys.partition_point(|&k| k < key),
                "key {key}"
            );
        }
        // Past the last key.
        assert_eq!(zm.lower_bound(&keys, grid.n() + 10), keys.len());
    }

    #[test]
    fn disjoint_contained_and_distance_are_consistent_with_points() {
        let (keys, points, _) = sorted_columns(300);
        let zm = ZoneMap::build(&keys, &points, |_| true);
        let boxes = [
            BoxRegion::new(Point::new([0, 0]), Point::new([31, 31])),
            BoxRegion::new(Point::new([4, 9]), Point::new([11, 14])),
            BoxRegion::new(Point::new([30, 30]), Point::new([31, 31])),
        ];
        for b in &boxes {
            for block in 0..zm.blocks() {
                let slots = zm.block_range(block);
                let any_in = slots.clone().any(|s| b.contains(&points[s]));
                let all_in = slots.clone().all(|s| b.contains(&points[s]));
                if zm.disjoint(block, b) {
                    assert!(!any_in, "disjoint block {block} intersects {b:?}");
                }
                if zm.contained(block, b) {
                    assert!(all_in, "contained block {block} leaks out of {b:?}");
                }
                let q = Point::new([7, 21]);
                let bound = zm.min_dist_sq(block, &q);
                for s in slots {
                    assert!(bound <= q.euclidean_sq(&points[s]));
                }
            }
            // run_disjoint is AABB-level: it may report false while every
            // point still misses the box, but never the reverse.
            if zm.run_disjoint(b) {
                assert!(points.iter().all(|p| !b.contains(p)));
            }
        }
    }

    #[test]
    fn empty_zone_map() {
        let zm: ZoneMap<2> = ZoneMap::build(&[], &[], |_| true);
        assert!(zm.is_empty());
        assert_eq!(zm.blocks(), 0);
        assert!(zm.bounds().is_none());
        let b = BoxRegion::new(Point::new([0, 0]), Point::new([3, 3]));
        assert!(!zm.run_disjoint(&b));
        assert_eq!(zm.lower_bound(&[], 5), 0);
    }
}
