//! Query cost accounting.
//!
//! The experiment harness compares curve families by the *work* a query
//! does against the sorted key table, not wall-clock alone:
//!
//! * `seeks` — binary searches / scan restarts (disk seeks in the classic
//!   secondary-memory model of the paper's reference [9]);
//! * `scanned` — entries touched by the scan;
//! * `reported` — entries actually inside the query region;
//! * `blocks_scanned` / `blocks_pruned` — blocks a scan examined versus
//!   rejected wholesale from their uncompressed summaries (fence key,
//!   point AABB, live count) without touching a single entry — see
//!   [`BlockStore`](crate::BlockStore);
//! * `blocks_decoded` — blocks whose packed key/coordinate words were run
//!   through the unpack kernels; the gap to `blocks_scanned` shows how
//!   much decode work the lazy per-block contract avoided (contained
//!   blocks decode once for reporting; pruned blocks never decode).
//!
//! `scanned / reported` is the **overscan ratio**: 1.0 means the curve laid
//! the region out perfectly contiguously.

/// Work counters for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Binary searches / scan restarts performed.
    pub seeks: u64,
    /// Entries examined.
    pub scanned: u64,
    /// Entries matching the query.
    pub reported: u64,
    /// Blocks whose entries a scan examined.
    pub blocks_scanned: u64,
    /// Blocks rejected from their summaries alone — their entries were
    /// never touched.
    pub blocks_pruned: u64,
    /// Blocks run through the unpack kernels (each cached decode counted
    /// once, however many slots were then read from the buffer).
    pub blocks_decoded: u64,
}

impl QueryStats {
    /// `scanned / reported`, the overscan ratio (`∞` if nothing matched but
    /// entries were scanned; 1.0 for an empty scan).
    pub fn overscan(&self) -> f64 {
        if self.reported == 0 {
            if self.scanned == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.scanned as f64 / self.reported as f64
        }
    }

    /// Accumulates another query's counters into this one — the summation
    /// every multi-level and multi-shard query path uses, so per-part
    /// stats always add up to the reported total (see the shard-router
    /// audit tests).
    pub fn add(&mut self, other: &QueryStats) {
        self.seeks += other.seeks;
        self.scanned += other.scanned;
        self.reported += other.reported;
        self.blocks_scanned += other.blocks_scanned;
        self.blocks_pruned += other.blocks_pruned;
        self.blocks_decoded += other.blocks_decoded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overscan_ratios() {
        let q = QueryStats {
            seeks: 1,
            scanned: 20,
            reported: 10,
            ..Default::default()
        };
        assert_eq!(q.overscan(), 2.0);
        let empty = QueryStats::default();
        assert_eq!(empty.overscan(), 1.0);
        let miss = QueryStats {
            seeks: 1,
            scanned: 5,
            reported: 0,
            ..Default::default()
        };
        assert!(miss.overscan().is_infinite());
    }

    #[test]
    fn add_sums_every_counter() {
        let mut a = QueryStats {
            seeks: 1,
            scanned: 2,
            reported: 3,
            blocks_scanned: 4,
            blocks_pruned: 5,
            blocks_decoded: 6,
        };
        let b = QueryStats {
            seeks: 10,
            scanned: 20,
            reported: 30,
            blocks_scanned: 40,
            blocks_pruned: 50,
            blocks_decoded: 60,
        };
        a.add(&b);
        assert_eq!(
            a,
            QueryStats {
                seeks: 11,
                scanned: 22,
                reported: 33,
                blocks_scanned: 44,
                blocks_pruned: 55,
                blocks_decoded: 66,
            }
        );
    }
}
