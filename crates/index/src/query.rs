//! Query cost accounting.
//!
//! The experiment harness compares curve families by the *work* a query
//! does against the sorted key table, not wall-clock alone:
//!
//! * `seeks` — binary searches / scan restarts (disk seeks in the classic
//!   secondary-memory model of the paper's reference [9]);
//! * `scanned` — entries touched by the scan;
//! * `reported` — entries actually inside the query region.
//!
//! `scanned / reported` is the **overscan ratio**: 1.0 means the curve laid
//! the region out perfectly contiguously.

/// Work counters for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Binary searches / scan restarts performed.
    pub seeks: u64,
    /// Entries examined.
    pub scanned: u64,
    /// Entries matching the query.
    pub reported: u64,
}

impl QueryStats {
    /// `scanned / reported`, the overscan ratio (`∞` if nothing matched but
    /// entries were scanned; 1.0 for an empty scan).
    pub fn overscan(&self) -> f64 {
        if self.reported == 0 {
            if self.scanned == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.scanned as f64 / self.reported as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overscan_ratios() {
        let q = QueryStats {
            seeks: 1,
            scanned: 20,
            reported: 10,
        };
        assert_eq!(q.overscan(), 2.0);
        let empty = QueryStats::default();
        assert_eq!(empty.overscan(), 1.0);
        let miss = QueryStats {
            seeks: 1,
            scanned: 5,
            reported: 0,
        };
        assert!(miss.overscan().is_infinite());
    }
}
