//! Query cost accounting.
//!
//! The experiment harness compares curve families by the *work* a query
//! does against the sorted key table, not wall-clock alone:
//!
//! * `seeks` — binary searches / scan restarts (disk seeks in the classic
//!   secondary-memory model of the paper's reference [9]);
//! * `scanned` — entries touched by the scan;
//! * `reported` — entries actually inside the query region;
//! * `blocks_scanned` / `blocks_pruned` — blocks a scan examined versus
//!   rejected wholesale from their uncompressed summaries (fence key,
//!   point AABB, live count) without touching a single entry — see
//!   [`BlockStore`](crate::BlockStore);
//! * `blocks_decoded` — blocks whose packed key/coordinate words were run
//!   through the unpack kernels; the gap to `blocks_scanned` shows how
//!   much decode work the lazy per-block contract avoided (contained
//!   blocks decode once for reporting; pruned blocks never decode).
//!
//! `scanned / reported` is the **overscan ratio**: 1.0 means the curve laid
//! the region out perfectly contiguously.

/// Work counters for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Binary searches / scan restarts performed.
    pub seeks: u64,
    /// Entries examined.
    pub scanned: u64,
    /// Entries matching the query.
    pub reported: u64,
    /// Blocks whose entries a scan examined.
    pub blocks_scanned: u64,
    /// Blocks rejected from their summaries alone — their entries were
    /// never touched.
    pub blocks_pruned: u64,
    /// Blocks run through the unpack kernels (each cached decode counted
    /// once, however many slots were then read from the buffer).
    pub blocks_decoded: u64,
}

impl QueryStats {
    /// `scanned / reported`, the overscan ratio (`∞` if nothing matched but
    /// entries were scanned; 1.0 for an empty scan).
    pub fn overscan(&self) -> f64 {
        Self::overscan_ratio(self.scanned, self.reported)
    }

    /// The overscan ratio for a raw `scanned` / `reported` pair — the
    /// same edge-case convention as [`overscan`](Self::overscan), for
    /// callers that accumulate the two counters across many queries and
    /// would otherwise recompute the division (and its empty/miss cases)
    /// inline.
    pub fn overscan_ratio(scanned: u64, reported: u64) -> f64 {
        if reported == 0 {
            if scanned == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            scanned as f64 / reported as f64
        }
    }

    /// Accumulates another query's counters into this one — the summation
    /// every multi-level and multi-shard query path uses, so per-part
    /// stats always add up to the reported total (see the shard-router
    /// audit tests). Saturating: experiment drivers fold millions of
    /// queries into one accumulator, and a (pathological) overflow should
    /// pin at `u64::MAX` rather than wrap into a nonsense total.
    pub fn add(&mut self, other: &QueryStats) {
        self.seeks = self.seeks.saturating_add(other.seeks);
        self.scanned = self.scanned.saturating_add(other.scanned);
        self.reported = self.reported.saturating_add(other.reported);
        self.blocks_scanned = self.blocks_scanned.saturating_add(other.blocks_scanned);
        self.blocks_pruned = self.blocks_pruned.saturating_add(other.blocks_pruned);
        self.blocks_decoded = self.blocks_decoded.saturating_add(other.blocks_decoded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overscan_ratios() {
        let q = QueryStats {
            seeks: 1,
            scanned: 20,
            reported: 10,
            ..Default::default()
        };
        assert_eq!(q.overscan(), 2.0);
        let empty = QueryStats::default();
        assert_eq!(empty.overscan(), 1.0);
        let miss = QueryStats {
            seeks: 1,
            scanned: 5,
            reported: 0,
            ..Default::default()
        };
        assert!(miss.overscan().is_infinite());
    }

    #[test]
    fn add_sums_every_counter() {
        let mut a = QueryStats {
            seeks: 1,
            scanned: 2,
            reported: 3,
            blocks_scanned: 4,
            blocks_pruned: 5,
            blocks_decoded: 6,
        };
        let b = QueryStats {
            seeks: 10,
            scanned: 20,
            reported: 30,
            blocks_scanned: 40,
            blocks_pruned: 50,
            blocks_decoded: 60,
        };
        a.add(&b);
        assert_eq!(
            a,
            QueryStats {
                seeks: 11,
                scanned: 22,
                reported: 33,
                blocks_scanned: 44,
                blocks_pruned: 55,
                blocks_decoded: 66,
            }
        );
    }

    #[test]
    fn add_saturates_instead_of_wrapping() {
        let mut a = QueryStats {
            scanned: u64::MAX - 1,
            ..Default::default()
        };
        a.add(&QueryStats {
            scanned: 5,
            seeks: 1,
            ..Default::default()
        });
        assert_eq!(a.scanned, u64::MAX);
        assert_eq!(a.seeks, 1);
    }

    #[test]
    fn raw_pair_helper_matches_method() {
        assert_eq!(QueryStats::overscan_ratio(20, 10), 2.0);
        assert_eq!(QueryStats::overscan_ratio(0, 0), 1.0);
        assert!(QueryStats::overscan_ratio(5, 0).is_infinite());
    }
}
