//! Compressed columnar blocks: the physical format of a sorted run.
//!
//! A [`BlockStore`] cuts a run into fixed-size blocks of [`BLOCK_SLOTS`]
//! consecutive slots and stores, per block:
//!
//! * the **fence key** — the block's first (smallest) curve key, kept
//!   uncompressed so a two-level binary search (fence array, then one
//!   block) replaces a whole-column search with two cache-resident ones;
//! * the **keys** as frame-of-reference deltas from the fence key,
//!   bit-packed at the narrowest width that fits the block's largest
//!   delta (SFC-sorted keys make consecutive deltas tiny, so widths of
//!   8–16 bits are typical where raw keys cost 128);
//! * the per-dimension **point AABB** (`lo`/`hi` corners), doubling as
//!   the zone-map pruning summary *and* the frame of reference for the
//!   coordinates;
//! * the **coordinates** as per-axis offsets from the AABB minimum,
//!   bit-packed at the narrowest sufficient width per axis;
//! * a **tombstone bitmap** — one `u64` per block, bit `j` set iff slot
//!   `j` is live — replacing per-slot `Option` discriminants, plus a
//!   rank prefix sum so a slot's position in the dense payload column is
//!   a masked popcount away.
//!
//! Tail blocks are zero-padded to the full [`BLOCK_SLOTS`] width, so a
//! block's word count is exactly its bit width (per column) and all word
//! offsets are plain prefix sums. Padding costs at most one block's worth
//! of bits per run and keeps every decode kernel branch-free.
//!
//! Everything scans need *before* touching a block — fences, AABBs, live
//! counts — lives in the uncompressed per-block metadata, so pruning
//! decisions never decode. Decoding happens lazily, one block at a time,
//! through [`BlockStore::decode_into`] or a [`BlockCursor`] that caches
//! the most recent block and counts decode-kernel invocations for
//! [`QueryStats::blocks_decoded`](crate::QueryStats).

use sfc_core::{CurveIndex, Point};

use crate::kernels;
use crate::region::BoxRegion;

/// Slots per block. Fixed at 64 so the tombstone bitmap is exactly one
/// machine word per block and filter kernels produce one-word hit masks.
pub const BLOCK_SLOTS: usize = 64;

// The bitmap and mask kernels assume one u64 word per block.
const _: () = assert!(BLOCK_SLOTS == 64);

/// One decoded block's columns, the scratch target of the unpack kernels.
/// Slots past the block's length hold the fence key / AABB minimum (the
/// zero-delta padding); callers mask them off with the block's range.
#[derive(Debug, Clone)]
pub struct DecodedBlock<const D: usize> {
    /// Decoded curve keys.
    pub keys: [CurveIndex; BLOCK_SLOTS],
    /// Decoded coordinates, one lane array per axis.
    pub coords: [[u32; BLOCK_SLOTS]; D],
}

impl<const D: usize> Default for DecodedBlock<D> {
    fn default() -> Self {
        Self {
            keys: [0; BLOCK_SLOTS],
            coords: [[0; BLOCK_SLOTS]; D],
        }
    }
}

impl<const D: usize> DecodedBlock<D> {
    /// Reassembles the point at in-block slot `j` from the coordinate
    /// lanes.
    #[inline]
    pub fn point(&self, j: usize) -> Point<D> {
        Point::new(std::array::from_fn(|axis| self.coords[axis][j]))
    }
}

/// The compressed physical format of one sorted run: per-block metadata
/// (fences, AABBs, tombstone bitmap) plus bit-packed key and coordinate
/// words. Built once by [`BlockStore::pack`]; immutable afterwards.
#[derive(Debug, Clone)]
pub struct BlockStore<const D: usize> {
    /// Total slots stored (the run length, including tombstones).
    len: usize,
    /// First key of each block, in block order (ascending).
    fences: Vec<CurveIndex>,
    /// Componentwise minimum of each block's points (coordinate FOR base).
    lo: Vec<Point<D>>,
    /// Componentwise maximum of each block's points.
    hi: Vec<Point<D>>,
    /// Tombstone bitmap: bit `j` of word `block` set iff the slot is live.
    live_bits: Vec<u64>,
    /// Live slots in all blocks before each block (dense-payload rank base).
    live_prefix: Vec<u32>,
    /// Key delta width per block (0..=64, or [`kernels::WIDTH_RAW`]).
    key_widths: Vec<u8>,
    /// Coordinate offset width per block and axis (0..=32).
    coord_widths: Vec<[u8; D]>,
    /// Word offset of each block's key words in `key_words`.
    key_offsets: Vec<u32>,
    /// Word offset of each block's first axis words in `coord_words`.
    coord_offsets: Vec<u32>,
    /// Bit-packed key deltas, one trailing pad word.
    key_words: Vec<u64>,
    /// Bit-packed coordinate offsets (axis-major per block), one pad word.
    coord_words: Vec<u64>,
    /// Componentwise min over the whole run (meaningful iff `len > 0`).
    all_lo: Point<D>,
    /// Componentwise max over the whole run (meaningful iff `len > 0`).
    all_hi: Point<D>,
}

impl<const D: usize> BlockStore<D> {
    /// Packs parallel `keys` / `points` columns (sorted by key, possibly
    /// with duplicates) into compressed blocks. `is_live` reports whether
    /// the slot at a given position holds a live payload (`|_| true` for
    /// indexes without tombstones).
    ///
    /// # Panics
    /// Panics if the columns have different lengths or keys decrease.
    pub fn pack(
        keys: &[CurveIndex],
        points: &[Point<D>],
        mut is_live: impl FnMut(usize) -> bool,
    ) -> Self {
        assert_eq!(keys.len(), points.len(), "column length mismatch");
        let len = keys.len();
        let blocks = len.div_ceil(BLOCK_SLOTS);
        let mut store = Self {
            len,
            fences: Vec::with_capacity(blocks),
            lo: Vec::with_capacity(blocks),
            hi: Vec::with_capacity(blocks),
            live_bits: Vec::with_capacity(blocks),
            live_prefix: Vec::with_capacity(blocks),
            key_widths: Vec::with_capacity(blocks),
            coord_widths: Vec::with_capacity(blocks),
            key_offsets: Vec::with_capacity(blocks),
            coord_offsets: Vec::with_capacity(blocks),
            key_words: Vec::new(),
            coord_words: Vec::new(),
            all_lo: Point::new([u32::MAX; D]),
            all_hi: Point::new([0; D]),
        };
        let mut all_lo = [u32::MAX; D];
        let mut all_hi = [0u32; D];
        let mut live_total = 0u32;
        let mut deltas = [0u128; BLOCK_SLOTS];
        let mut fields = [0u64; BLOCK_SLOTS];
        for block in 0..blocks {
            let start = block * BLOCK_SLOTS;
            let end = (start + BLOCK_SLOTS).min(len);
            let fence = keys[start];

            // Metadata: AABB and tombstone bitmap.
            let mut blk_lo = [u32::MAX; D];
            let mut blk_hi = [0u32; D];
            let mut bits = 0u64;
            for (slot, p) in points.iter().enumerate().take(end).skip(start) {
                for axis in 0..D {
                    let c = p.coord(axis);
                    blk_lo[axis] = blk_lo[axis].min(c);
                    blk_hi[axis] = blk_hi[axis].max(c);
                }
                bits |= u64::from(is_live(slot)) << (slot - start);
            }
            for axis in 0..D {
                all_lo[axis] = all_lo[axis].min(blk_lo[axis]);
                all_hi[axis] = all_hi[axis].max(blk_hi[axis]);
            }
            store.fences.push(fence);
            store.lo.push(Point::new(blk_lo));
            store.hi.push(Point::new(blk_hi));
            store.live_bits.push(bits);
            store.live_prefix.push(live_total);
            live_total += bits.count_ones();

            // Keys: frame-of-reference deltas, zero-padded to 64 slots.
            let mut max_delta = 0u128;
            for j in 0..BLOCK_SLOTS {
                deltas[j] = if start + j < end {
                    let d = keys[start + j]
                        .checked_sub(fence)
                        .expect("keys must be sorted (non-decreasing)");
                    max_delta = max_delta.max(d);
                    d
                } else {
                    0
                };
            }
            store.key_offsets.push(store.key_words.len() as u32);
            if max_delta > u64::MAX as u128 {
                // Rare worst case: deltas wider than one word go in raw.
                store.key_widths.push(kernels::WIDTH_RAW);
                for &d in &deltas {
                    store.key_words.push(d as u64);
                    store.key_words.push((d >> 64) as u64);
                }
            } else {
                let width = kernels::bits_for(max_delta as u64);
                store.key_widths.push(width);
                if width > 0 {
                    for (f, &d) in fields.iter_mut().zip(deltas.iter()) {
                        *f = d as u64;
                    }
                    kernels::pack_fields(&fields, width, &mut store.key_words);
                }
            }

            // Coordinates: per-axis offsets from the AABB minimum,
            // zero-padded to 64 slots.
            store.coord_offsets.push(store.coord_words.len() as u32);
            let mut widths = [0u8; D];
            for (axis, w) in widths.iter_mut().enumerate() {
                let base = blk_lo[axis];
                let mut max_off = 0u32;
                for (j, f) in fields.iter_mut().enumerate() {
                    let off = if start + j < end {
                        points[start + j].coord(axis) - base
                    } else {
                        0
                    };
                    max_off = max_off.max(off);
                    *f = u64::from(off);
                }
                *w = kernels::bits_for(u64::from(max_off));
                if *w > 0 {
                    kernels::pack_fields(&fields, *w, &mut store.coord_words);
                }
            }
            store.coord_widths.push(widths);
        }
        // One pad word per column lets the unpack kernels read a straddling
        // word pair for the last field without a bounds branch.
        store.key_words.push(0);
        store.coord_words.push(0);
        if len > 0 {
            store.all_lo = Point::new(all_lo);
            store.all_hi = Point::new(all_hi);
        }
        store
    }

    /// Total slots stored (including tombstones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the store holds no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live (non-tombstone) slots across all blocks.
    pub fn live_len(&self) -> usize {
        match self.live_bits.last() {
            Some(last) => {
                *self.live_prefix.last().expect("parallel to live_bits") as usize
                    + last.count_ones() as usize
            }
            None => 0,
        }
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.fences.len()
    }

    /// The block containing slot `slot`.
    #[inline]
    pub fn block_of(&self, slot: usize) -> usize {
        slot / BLOCK_SLOTS
    }

    /// The slot range of block `block` (`start..end`, end-exclusive; the
    /// last block may be short).
    #[inline]
    pub fn block_range(&self, block: usize) -> std::ops::Range<usize> {
        let start = block * BLOCK_SLOTS;
        start..(start + BLOCK_SLOTS).min(self.len)
    }

    /// The block's first (smallest) key — stored uncompressed.
    #[inline]
    pub fn fence(&self, block: usize) -> CurveIndex {
        self.fences[block]
    }

    /// Non-tombstone slots in the block (a bitmap popcount).
    #[inline]
    pub fn live(&self, block: usize) -> u32 {
        self.live_bits[block].count_ones()
    }

    /// `true` iff every slot of the block is a tombstone.
    #[inline]
    pub fn is_all_dead(&self, block: usize) -> bool {
        self.live_bits[block] == 0
    }

    /// The block's live bitmap word (bit `j` ⇔ in-block slot `j` live).
    #[inline]
    pub fn live_word(&self, block: usize) -> u64 {
        self.live_bits[block]
    }

    /// `true` iff the slot holds a live payload.
    #[inline]
    pub fn is_live_slot(&self, slot: usize) -> bool {
        (self.live_bits[slot / BLOCK_SLOTS] >> (slot % BLOCK_SLOTS)) & 1 == 1
    }

    /// Live slots in the absolute slot range `slots`, which must lie
    /// within block `block`. A masked popcount.
    #[inline]
    pub fn live_in(&self, block: usize, slots: std::ops::Range<usize>) -> u32 {
        let start = block * BLOCK_SLOTS;
        debug_assert!(slots.start >= start && slots.end <= start + BLOCK_SLOTS);
        if slots.is_empty() {
            return 0;
        }
        let mask = kernels::len_mask(slots.end - start) & !kernels::len_mask(slots.start - start);
        (self.live_bits[block] & mask).count_ones()
    }

    /// The slot's position in the dense (live-only) payload column.
    /// Meaningful only for live slots.
    #[inline]
    pub fn rank(&self, slot: usize) -> usize {
        let block = slot / BLOCK_SLOTS;
        let before = self.live_bits[block] & !(u64::MAX << (slot % BLOCK_SLOTS));
        self.live_prefix[block] as usize + before.count_ones() as usize
    }

    /// The block's point AABB as inclusive `(lo, hi)` corners.
    #[inline]
    pub fn aabb(&self, block: usize) -> (Point<D>, Point<D>) {
        (self.lo[block], self.hi[block])
    }

    /// `true` iff the block's AABB and the box share no cell — no slot of
    /// the block can possibly match the box.
    #[inline]
    pub fn disjoint(&self, block: usize, b: &BoxRegion<D>) -> bool {
        let (lo, hi) = (&self.lo[block], &self.hi[block]);
        (0..D)
            .any(|axis| hi.coord(axis) < b.lo().coord(axis) || lo.coord(axis) > b.hi().coord(axis))
    }

    /// `true` iff the block's AABB lies entirely inside the box — every
    /// slot of the block matches without a per-point test.
    #[inline]
    pub fn contained(&self, block: usize, b: &BoxRegion<D>) -> bool {
        let (lo, hi) = (&self.lo[block], &self.hi[block]);
        (0..D).all(|axis| {
            b.lo().coord(axis) <= lo.coord(axis) && hi.coord(axis) <= b.hi().coord(axis)
        })
    }

    /// Lower bound on the squared Euclidean distance from `q` to any point
    /// of the block (distance to the block's AABB; 0 if `q` is inside it).
    #[inline]
    pub fn min_dist_sq(&self, block: usize, q: &Point<D>) -> u64 {
        let (lo, hi) = (&self.lo[block], &self.hi[block]);
        let mut acc = 0u64;
        for axis in 0..D {
            let c = q.coord(axis);
            let d = if c < lo.coord(axis) {
                lo.coord(axis) - c
            } else if c > hi.coord(axis) {
                c - hi.coord(axis)
            } else {
                0
            };
            acc += u64::from(d) * u64::from(d);
        }
        acc
    }

    /// The whole run's point AABB, or `None` for an empty run.
    pub fn bounds(&self) -> Option<(Point<D>, Point<D>)> {
        (self.len > 0).then_some((self.all_lo, self.all_hi))
    }

    /// `true` iff the whole run's AABB misses the box (so every block
    /// does). `false` for an empty run (nothing to prune — scans of an
    /// empty run are free anyway).
    pub fn run_disjoint(&self, b: &BoxRegion<D>) -> bool {
        self.len > 0
            && (0..D).any(|axis| {
                self.all_hi.coord(axis) < b.lo().coord(axis)
                    || self.all_lo.coord(axis) > b.hi().coord(axis)
            })
    }

    /// Decodes the single key at absolute slot `slot` (one field
    /// extraction; no full-block decode).
    #[inline]
    pub fn key_at(&self, slot: usize) -> CurveIndex {
        let block = slot / BLOCK_SLOTS;
        let j = slot % BLOCK_SLOTS;
        let base = self.fences[block];
        let off = self.key_offsets[block] as usize;
        match self.key_widths[block] {
            0 => base,
            kernels::WIDTH_RAW => {
                let lo = self.key_words[off + 2 * j] as u128;
                let hi = (self.key_words[off + 2 * j + 1] as u128) << 64;
                base + (lo | hi)
            }
            w => base + kernels::get_field(&self.key_words[off..], w, j) as u128,
        }
    }

    /// Decodes the single point at absolute slot `slot` (one field
    /// extraction per axis; no full-block decode).
    #[inline]
    pub fn point_at(&self, slot: usize) -> Point<D> {
        let block = slot / BLOCK_SLOTS;
        let j = slot % BLOCK_SLOTS;
        let widths = &self.coord_widths[block];
        let mut off = self.coord_offsets[block] as usize;
        Point::new(std::array::from_fn(|axis| {
            let w = widths[axis];
            let c = if w == 0 {
                self.lo[block].coord(axis)
            } else {
                self.lo[block].coord(axis)
                    + kernels::get_field(&self.coord_words[off..], w, j) as u32
            };
            off += w as usize;
            c
        }))
    }

    /// Decodes a whole block's keys and coordinate lanes into `out` via
    /// the branch-free unpack kernels. Pad slots past the block's length
    /// hold the fence / AABB minimum.
    pub fn decode_into(&self, block: usize, out: &mut DecodedBlock<D>) {
        let off = self.key_offsets[block] as usize;
        kernels::unpack_keys(
            &self.key_words[off..],
            self.key_widths[block],
            self.fences[block],
            &mut out.keys,
        );
        let mut coff = self.coord_offsets[block] as usize;
        for axis in 0..D {
            let w = self.coord_widths[block][axis];
            kernels::unpack_axis(
                &self.coord_words[coff..],
                w,
                self.lo[block].coord(axis),
                &mut out.coords[axis],
            );
            coff += w as usize;
        }
    }

    /// First slot whose key is ≥ `key`: a binary search over the
    /// uncompressed fence array followed by one inside a single block's
    /// packed keys (single-field extraction per probe — no block decode).
    pub fn lower_bound(&self, key: CurveIndex) -> usize {
        // First block whose fence is ≥ key; the answer can also sit in the
        // tail of the block before it (fence < key ≤ last key).
        let blk = self.fences.partition_point(|&f| f < key);
        if self.fences.is_empty() {
            return 0;
        }
        let range = self.block_range(blk.saturating_sub(1));
        let (mut lo, mut hi) = (range.start, range.end);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key_at(mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Bytes of heap memory held by the packed columns and metadata.
    pub fn heap_bytes(&self) -> usize {
        self.fences.len() * std::mem::size_of::<CurveIndex>()
            + (self.lo.len() + self.hi.len()) * std::mem::size_of::<Point<D>>()
            + self.live_bits.len() * 8
            + self.live_prefix.len() * 4
            + self.key_widths.len()
            + self.coord_widths.len() * D
            + (self.key_offsets.len() + self.coord_offsets.len()) * 4
            + (self.key_words.len() + self.coord_words.len()) * 8
    }
}

/// A lazy per-block decoder: caches the most recently decoded block so
/// sequential scans decode each visited block exactly once, and counts
/// decode-kernel invocations for
/// [`QueryStats::blocks_decoded`](crate::QueryStats).
#[derive(Debug)]
pub struct BlockCursor<'a, const D: usize> {
    store: &'a BlockStore<D>,
    buf: Box<DecodedBlock<D>>,
    current: usize,
    /// Blocks decoded through this cursor so far.
    pub decodes: u64,
}

impl<'a, const D: usize> BlockCursor<'a, D> {
    /// A cursor over `store` with nothing decoded yet.
    pub fn new(store: &'a BlockStore<D>) -> Self {
        Self {
            store,
            buf: Box::default(),
            current: usize::MAX,
            decodes: 0,
        }
    }

    /// The decoded columns of `block`, decoding only on a cache miss.
    #[inline]
    pub fn decoded(&mut self, block: usize) -> &DecodedBlock<D> {
        if self.current != block {
            self.store.decode_into(block, &mut self.buf);
            self.current = block;
            self.decodes += 1;
        }
        &self.buf
    }

    /// The key at absolute slot `slot`, through the block cache.
    #[inline]
    pub fn key(&mut self, slot: usize) -> CurveIndex {
        let block = slot / BLOCK_SLOTS;
        self.decoded(block).keys[slot % BLOCK_SLOTS]
    }

    /// The point at absolute slot `slot`, through the block cache.
    #[inline]
    pub fn point(&mut self, slot: usize) -> Point<D> {
        let block = slot / BLOCK_SLOTS;
        self.decoded(block).point(slot % BLOCK_SLOTS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{Grid, SpaceFillingCurve, ZCurve};

    fn sorted_columns(n: usize) -> (Vec<CurveIndex>, Vec<Point<2>>, ZCurve<2>) {
        let z = ZCurve::<2>::new(5).unwrap();
        let mut rows: Vec<(CurveIndex, Point<2>)> = (0..n)
            .map(|i| {
                let p = Point::new([(i as u32 * 7) % 32, (i as u32 * 13) % 32]);
                (z.index_of(p), p)
            })
            .collect();
        rows.sort_by_key(|&(k, _)| k);
        let (keys, points) = rows.into_iter().unzip();
        (keys, points, z)
    }

    fn decode_all<const D: usize>(bs: &BlockStore<D>) -> (Vec<CurveIndex>, Vec<Point<D>>) {
        let mut cur = BlockCursor::new(bs);
        let keys = (0..bs.len()).map(|i| cur.key(i)).collect();
        let points = (0..bs.len()).map(|i| cur.point(i)).collect();
        (keys, points)
    }

    #[test]
    fn pack_round_trips_columns_exactly() {
        let (keys, points, _) = sorted_columns(333);
        let bs = BlockStore::pack(&keys, &points, |slot| slot % 3 != 0);
        assert_eq!(bs.len(), 333);
        let (dk, dp) = decode_all(&bs);
        assert_eq!(dk, keys);
        assert_eq!(dp, points);
        // Single-slot accessors agree with the full-block kernels.
        for i in 0..bs.len() {
            assert_eq!(bs.key_at(i), keys[i]);
            assert_eq!(bs.point_at(i), points[i]);
            assert_eq!(bs.is_live_slot(i), i % 3 != 0);
        }
    }

    #[test]
    fn metadata_matches_the_columns() {
        let (keys, points, _) = sorted_columns(200);
        let bs = BlockStore::pack(&keys, &points, |slot| slot % 3 != 0);
        assert_eq!(bs.blocks(), 200usize.div_ceil(BLOCK_SLOTS));
        let mut covered = 0usize;
        let mut live = 0u32;
        for b in 0..bs.blocks() {
            let r = bs.block_range(b);
            assert_eq!(bs.fence(b), keys[r.start]);
            covered += r.len();
            live += bs.live(b);
            assert_eq!(bs.live(b), bs.live_in(b, r.clone()));
            let (lo, hi) = bs.aabb(b);
            for slot in r {
                assert_eq!(bs.block_of(slot), b);
                for axis in 0..2 {
                    assert!(lo.coord(axis) <= points[slot].coord(axis));
                    assert!(points[slot].coord(axis) <= hi.coord(axis));
                }
            }
        }
        assert_eq!(covered, 200);
        assert_eq!(live, (0..200).filter(|s| s % 3 != 0).count() as u32);
        assert_eq!(bs.live_len() as u32, live);
        let (all_lo, all_hi) = bs.bounds().unwrap();
        for axis in 0..2 {
            assert!(points.iter().all(|p| p.coord(axis) >= all_lo.coord(axis)));
            assert!(points.iter().all(|p| p.coord(axis) <= all_hi.coord(axis)));
        }
        assert!(bs.heap_bytes() > 0);
    }

    #[test]
    fn rank_indexes_the_dense_payload_column() {
        let (keys, points, _) = sorted_columns(150);
        let is_live = |slot: usize| slot % 4 != 1;
        let bs = BlockStore::pack(&keys, &points, is_live);
        let mut expected = 0usize;
        for slot in 0..bs.len() {
            if is_live(slot) {
                assert_eq!(bs.rank(slot), expected, "slot {slot}");
                expected += 1;
            }
        }
        assert_eq!(bs.live_len(), expected);
    }

    #[test]
    fn lower_bound_matches_whole_column_search() {
        let (keys, points, _) = sorted_columns(500);
        let bs = BlockStore::pack(&keys, &points, |_| true);
        let grid = Grid::<2>::new(5).unwrap();
        for key in 0..grid.n() {
            assert_eq!(
                bs.lower_bound(key),
                keys.partition_point(|&k| k < key),
                "key {key}"
            );
        }
        // Past the last key.
        assert_eq!(bs.lower_bound(grid.n() + 10), keys.len());
    }

    #[test]
    fn disjoint_contained_and_distance_are_consistent_with_points() {
        let (keys, points, _) = sorted_columns(300);
        let bs = BlockStore::pack(&keys, &points, |_| true);
        let boxes = [
            BoxRegion::new(Point::new([0, 0]), Point::new([31, 31])),
            BoxRegion::new(Point::new([4, 9]), Point::new([11, 14])),
            BoxRegion::new(Point::new([30, 30]), Point::new([31, 31])),
        ];
        for b in &boxes {
            for block in 0..bs.blocks() {
                let slots = bs.block_range(block);
                let any_in = slots.clone().any(|s| b.contains(&points[s]));
                let all_in = slots.clone().all(|s| b.contains(&points[s]));
                if bs.disjoint(block, b) {
                    assert!(!any_in, "disjoint block {block} intersects {b:?}");
                }
                if bs.contained(block, b) {
                    assert!(all_in, "contained block {block} leaks out of {b:?}");
                }
                let q = Point::new([7, 21]);
                let bound = bs.min_dist_sq(block, &q);
                for s in slots {
                    assert!(bound <= q.euclidean_sq(&points[s]));
                }
            }
            if bs.run_disjoint(b) {
                assert!(points.iter().all(|p| !b.contains(p)));
            }
        }
    }

    #[test]
    fn all_equal_keys_pack_at_width_zero() {
        let keys = vec![77u128; 130];
        let points = vec![Point::new([5, 9]); 130];
        let bs = BlockStore::pack(&keys, &points, |_| true);
        // Every block: zero key delta width, zero coordinate widths.
        assert_eq!(bs.key_words.len(), 1, "only the pad word");
        assert_eq!(bs.coord_words.len(), 1, "only the pad word");
        let (dk, dp) = decode_all(&bs);
        assert_eq!(dk, keys);
        assert_eq!(dp, points);
        assert_eq!(bs.lower_bound(77), 0);
        assert_eq!(bs.lower_bound(78), 130);
    }

    #[test]
    fn max_delta_keys_fall_back_to_raw_blocks() {
        // Deltas exceeding 64 bits force the raw two-word representation.
        let mut keys: Vec<CurveIndex> = vec![0];
        for j in 1..BLOCK_SLOTS + 3 {
            keys.push((j as u128) << 100);
        }
        let points: Vec<Point<2>> = (0..keys.len())
            .map(|i| Point::new([i as u32, 1000 - i as u32]))
            .collect();
        let bs = BlockStore::pack(&keys, &points, |_| true);
        assert_eq!(bs.key_widths[0], kernels::WIDTH_RAW);
        let (dk, dp) = decode_all(&bs);
        assert_eq!(dk, keys);
        assert_eq!(dp, points);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(bs.lower_bound(k), i);
        }
    }

    #[test]
    fn one_slot_tail_block_round_trips() {
        let (keys, points, _) = sorted_columns(BLOCK_SLOTS + 1);
        let bs = BlockStore::pack(&keys, &points, |_| true);
        assert_eq!(bs.blocks(), 2);
        assert_eq!(bs.block_range(1).len(), 1);
        let (dk, dp) = decode_all(&bs);
        assert_eq!(dk, keys);
        assert_eq!(dp, points);
    }

    #[test]
    fn all_tombstone_blocks_are_flagged_dead() {
        let (keys, points, _) = sorted_columns(3 * BLOCK_SLOTS);
        let bs = BlockStore::pack(&keys, &points, |slot| slot >= 2 * BLOCK_SLOTS);
        assert!(bs.is_all_dead(0));
        assert!(bs.is_all_dead(1));
        assert!(!bs.is_all_dead(2));
        assert_eq!(bs.live_len(), BLOCK_SLOTS);
        assert_eq!(bs.rank(2 * BLOCK_SLOTS), 0);
        // Decoding a dead block still round-trips its columns.
        let (dk, _) = decode_all(&bs);
        assert_eq!(dk, keys);
    }

    #[test]
    fn empty_block_store() {
        let bs: BlockStore<2> = BlockStore::pack(&[], &[], |_| true);
        assert!(bs.is_empty());
        assert_eq!(bs.blocks(), 0);
        assert_eq!(bs.live_len(), 0);
        assert!(bs.bounds().is_none());
        let b = BoxRegion::new(Point::new([0, 0]), Point::new([3, 3]));
        assert!(!bs.run_disjoint(&b));
        assert_eq!(bs.lower_bound(5), 0);
    }

    #[test]
    fn cursor_caches_decodes() {
        let (keys, points, _) = sorted_columns(200);
        let bs = BlockStore::pack(&keys, &points, |_| true);
        let mut cur = BlockCursor::new(&bs);
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(cur.key(i), *key);
        }
        assert_eq!(cur.decodes, bs.blocks() as u64, "one decode per block");
    }
}
