//! # sfc-index — spatial indexing over space filling curves
//!
//! The paper's database motivation (secondary-memory data structures [9],
//! associative searching [21] — the original Z-curve paper): store
//! multi-dimensional records in a plain one-dimensional ordered structure
//! keyed by curve index, and answer box and nearest-neighbor queries by
//! navigating key ranges. Proximity preservation is what makes this work —
//! a low-stretch curve keeps spatially close records in few contiguous key
//! runs.
//!
//! Components:
//!
//! * [`BoxRegion`] — an axis-aligned query box.
//! * [`bigmin`] — the Tropf–Herzog BIGMIN/LITMAX primitives on Morton
//!   codes, which let a range scan *skip* key gaps that leave the box.
//! * [`SfcIndex`] — a sorted key table over any curve, with three box-query
//!   strategies (full scan, interval decomposition, BIGMIN jumping) and a
//!   verified exact k-nearest-neighbor search whose cost directly reflects
//!   the curve's stretch.
//!
//! ## Storage layout and bulk load
//!
//! [`SfcIndex`] stores its records as a **structure of arrays**: three
//! parallel columns `keys` / `points` / `payloads`, sorted by curve key.
//! Key-range navigation (binary search, BIGMIN scans) walks only the
//! dense key column — 4 keys per cache line — and dereferences the other
//! columns just for matching rows, so range scans are bounded by key-column
//! bandwidth rather than record size. Rows are surfaced as zero-copy
//! [`EntryRef`] views.
//!
//! [`SfcIndex::build`] is a bulk loader: points are encoded through the
//! curve's batch kernel
//! ([`index_of_batch`](sfc_core::SpaceFillingCurve::index_of_batch)) and
//! sorted by a stable LSD **radix sort** over the `d·k` significant key
//! bits — linear passes with sequential memory traffic, replacing the
//! comparison sort a naive build would use. Already-sorted columns can be
//! adopted wholesale with [`SfcIndex::from_sorted`] (or
//! [`SfcIndex::from_sorted_versions`] when `None` payloads are
//! tombstones).
//!
//! ## Block summaries (zone maps)
//!
//! Every index additionally carries a [`ZoneMap`]: per block of
//! [`BLOCK_SLOTS`] consecutive slots, a fence key, the per-dimension AABB
//! of the block's points, and a live (non-tombstone) count, all built in
//! one pass at construction. Scans consult the summaries before touching
//! entries: the BIGMIN scan skips blocks whose AABB misses the query box
//! and bulk-accepts blocks whose AABB lies inside it, jump landings
//! resolve through the fence array, and kNN candidate collection in
//! multi-run stores skips all-dead blocks and lower-bounds block
//! distances. [`QueryStats::blocks_pruned`](QueryStats) /
//! [`blocks_scanned`](QueryStats) make the effect observable per query.
//!
//! ## Choosing a box-query strategy
//!
//! * `query_box_intervals` — exact interval decomposition; zero overscan,
//!   but `O(volume · log volume)` preprocessing per query. Best for small
//!   boxes on any curve.
//! * `query_box_bigmin` (Z curve only) — no preprocessing; **wins when the
//!   box is large or the table is dense**, because each BIGMIN jump skips
//!   a whole key gap with one binary search, and the number of jumps is
//!   bounded by the box's key-range "islands" rather than its volume.
//! * `query_box_full_scan` — the `O(n)` baseline.
//!
//! ## Building blocks for multi-run structures
//!
//! Everything the index does to one sorted run is also exposed as a
//! free-standing primitive over raw columns, so structures composed of
//! *several* sorted runs (the `sfc-store` LSM-style store) reuse the exact
//! same code per level:
//!
//! * [`sort_columns`] — batch-encode + stable radix sort: sorted-column
//!   construction from unsorted records;
//! * [`interval_scan`] / [`bigmin_scan`] — the two range-scan shapes over
//!   a bare key slice, with per-level [`QueryStats`] accounting
//!   (galloping seeks and zone-map block pruning respectively; the
//!   pre-zone-map reference versions survive as
//!   [`interval_scan_plain`] / [`bigmin_scan_plain`] for differential
//!   tests and baseline benches);
//! * [`SfcIndex::from_sorted`] / [`SfcIndex::into_columns`] — adopt and
//!   release column storage without re-sorting;
//! * [`SfcIndex::lower_bound`] / [`SfcIndex::find_key`] — key-column
//!   binary searches.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bigmin;
pub mod query;
pub mod region;
pub mod scan;
pub mod table;
pub mod zone;

pub use bigmin::{bigmin, litmax};
pub use query::QueryStats;
pub use region::BoxRegion;
pub use scan::{bigmin_scan, bigmin_scan_plain, interval_scan, interval_scan_plain};
pub use table::{sort_columns, EntryRef, SfcIndex};
pub use zone::{ZoneMap, BLOCK_SLOTS};
