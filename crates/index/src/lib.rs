//! # sfc-index — spatial indexing over space filling curves
//!
//! The paper's database motivation (secondary-memory data structures [9],
//! associative searching [21] — the original Z-curve paper): store
//! multi-dimensional records in a plain one-dimensional ordered structure
//! keyed by curve index, and answer box and nearest-neighbor queries by
//! navigating key ranges. Proximity preservation is what makes this work —
//! a low-stretch curve keeps spatially close records in few contiguous key
//! runs.
//!
//! Components:
//!
//! * [`BoxRegion`] — an axis-aligned query box.
//! * [`bigmin`] — the Tropf–Herzog BIGMIN/LITMAX primitives on Morton
//!   codes, which let a range scan *skip* key gaps that leave the box.
//! * [`SfcIndex`] — a sorted key table over any curve, with three box-query
//!   strategies (full scan, interval decomposition, BIGMIN jumping) and a
//!   verified exact k-nearest-neighbor search whose cost directly reflects
//!   the curve's stretch.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bigmin;
pub mod query;
pub mod region;
pub mod table;

pub use bigmin::{bigmin, litmax};
pub use query::QueryStats;
pub use region::BoxRegion;
pub use table::SfcIndex;
