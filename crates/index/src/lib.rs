//! # sfc-index — spatial indexing over space filling curves
//!
//! The paper's database motivation (secondary-memory data structures [9],
//! associative searching [21] — the original Z-curve paper): store
//! multi-dimensional records in a plain one-dimensional ordered structure
//! keyed by curve index, and answer box and nearest-neighbor queries by
//! navigating key ranges. Proximity preservation is what makes this work —
//! a low-stretch curve keeps spatially close records in few contiguous key
//! runs.
//!
//! Components:
//!
//! * [`BoxRegion`] — an axis-aligned query box.
//! * [`bigmin`] — the Tropf–Herzog BIGMIN/LITMAX primitives on Morton
//!   codes, which let a range scan *skip* key gaps that leave the box.
//! * [`BlockStore`] — the compressed physical run format, and
//!   [`kernels`] — the branch-free pack/unpack/filter loops over it.
//! * [`SfcIndex`] — a sorted key table over any curve, with three box-query
//!   strategies (full scan, interval decomposition, BIGMIN jumping) and a
//!   verified exact k-nearest-neighbor search whose cost directly reflects
//!   the curve's stretch.
//!
//! ## Physical layout: compressed columnar blocks
//!
//! [`SfcIndex`] stores its records sorted by curve key in blocks of
//! [`BLOCK_SLOTS`] slots ([`BlockStore`]). Per block:
//!
//! * **Keys** are frame-of-reference encoded: the block's first key is
//!   the uncompressed *fence*, every slot stores `key − fence` bit-packed
//!   at the narrowest width holding the block's largest delta. SFC
//!   sorting is what makes this pay: curve-adjacent keys differ in few
//!   low bits, so a 128-bit key typically packs into 8–16 bits. Deltas
//!   wider than 64 bits (possible across sparse regions) fall back to a
//!   raw two-words-per-slot block, flagged in the width byte.
//! * **Coordinates** are offsets from the block's per-dimension AABB
//!   minimum, bit-packed per axis at the narrowest sufficient width. The
//!   AABB corners are stored uncompressed — they are simultaneously the
//!   zone-map pruning summary and the coordinate frame of reference.
//! * **Tombstones** are a one-word bitmap (bit `j` ⇔ slot `j` live)
//!   instead of per-slot `Option` discriminants; payloads of live slots
//!   live in one **dense** column, indexed by rank-select over the
//!   bitmap (a masked popcount). A deletion marker costs one bit.
//! * Tail blocks are zero-padded to the full 64 slots, so word offsets
//!   are pure prefix sums and the decode kernels never branch on length.
//!
//! ### Lazy decode contract and kernel soundness
//!
//! Scans consult only the uncompressed metadata (fences, AABBs, bitmap)
//! to *decide* — skip, bulk-accept, jump, bound a kNN distance — and run
//! the unpack kernels only on blocks whose slots must be examined or
//! reported, at most once per block per scan via a caching
//! [`BlockCursor`] ([`QueryStats::blocks_decoded`](QueryStats) counts
//! exactly these kernel invocations). The kernels themselves are
//! straight-line 64-slot loops (`#![forbid(unsafe_code)]` holds; see
//! [`kernels`] for the paired-word read's bounds argument) producing
//! stack buffers and hit bitmasks — shapes the autovectorizer lowers to
//! SIMD lanes.
//!
//! ## Bulk load
//!
//! [`SfcIndex::build`] encodes points through the curve's batch kernel
//! ([`index_of_batch`](sfc_core::SpaceFillingCurve::index_of_batch)) and
//! sorts by a stable LSD **radix sort** over the `d·k` significant key
//! bits — linear passes with sequential memory traffic, replacing the
//! comparison sort a naive build would use. Already-sorted columns can be
//! adopted with [`SfcIndex::from_sorted`] (or
//! [`SfcIndex::from_sorted_versions`] when `None` slots are tombstones —
//! the constructor every LSM-style run goes through).
//!
//! ## Choosing a box-query strategy
//!
//! * `query_box_intervals` — exact interval decomposition; zero overscan,
//!   but `O(volume · log volume)` preprocessing per query. Best for small
//!   boxes on any curve.
//! * `query_box_bigmin` (Z curve only) — no preprocessing; **wins when the
//!   box is large or the table is dense**, because each BIGMIN jump skips
//!   a whole key gap with one binary search, and the number of jumps is
//!   bounded by the box's key-range "islands" rather than its volume.
//! * `query_box_full_scan` — the `O(n)` baseline.
//!
//! ## Building blocks for multi-run structures
//!
//! Everything the index does to one sorted run is also exposed as a
//! free-standing primitive over a run's [`BlockStore`], so structures
//! composed of *several* sorted runs (the `sfc-store` LSM-style store)
//! reuse the exact same code per level:
//!
//! * [`sort_columns`] — batch-encode + stable radix sort: sorted-column
//!   construction from unsorted records;
//! * [`interval_scan`] / [`bigmin_scan`] — the two range-scan shapes with
//!   per-level [`QueryStats`] accounting (galloping seeks, block pruning,
//!   mask-kernel filtering; the pre-zone-map reference versions survive
//!   as [`interval_scan_plain`] / [`bigmin_scan_plain`] for differential
//!   tests and baseline benches);
//! * [`SfcIndex::from_sorted_versions`] / [`SfcIndex::into_parts`] —
//!   adopt and release run storage without re-sorting;
//! * [`SfcIndex::lower_bound`] / [`SfcIndex::find_key`] — fence-array
//!   key searches over packed blocks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bigmin;
pub mod block;
pub mod kernels;
pub mod query;
pub mod region;
pub mod scan;
pub mod table;

pub use bigmin::{bigmin, litmax};
pub use block::{BlockCursor, BlockStore, DecodedBlock, BLOCK_SLOTS};
pub use query::QueryStats;
pub use region::BoxRegion;
pub use scan::{bigmin_scan, bigmin_scan_plain, interval_scan, interval_scan_plain};
pub use table::{sort_columns, EntryRef, SfcIndex};
