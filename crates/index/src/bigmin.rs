//! BIGMIN / LITMAX on Morton codes (Tropf & Herzog, 1981).
//!
//! When scanning a sorted table of Z keys over the range
//! `[Z(lo), Z(hi)]` of a query box, the scan may wander into long key runs
//! whose cells lie *outside* the box (the Z curve's characteristic "jumps").
//! `BIGMIN(z, box)` computes the smallest Morton code **greater than** `z`
//! that decodes into the box, letting the scan skip the entire gap with one
//! binary search; `LITMAX` is the mirror image for descending scans.
//!
//! The implementation walks the `d·k` key bits from most to least
//! significant, maintaining candidate box corners, exactly as in the
//! original paper — generalized to any dimension and to this crate's bit
//! convention (axis 0 most significant within each `d`-bit group, which is
//! irrelevant to the algorithm: all that matters is that bits of the same
//! axis are congruent modulo `d`).

use sfc_core::{CurveIndex, SpaceFillingCurve, ZCurve};

/// Sets bit `pos` of `v` to 1 and clears all lower bits of the same axis
/// (positions `pos − d`, `pos − 2d`, …): the "load 1000…" operation.
#[inline]
fn load_one_zeros(v: CurveIndex, pos: usize, d: usize) -> CurveIndex {
    let mut out = v | (1u128 << pos);
    let mut p = pos;
    while p >= d {
        p -= d;
        out &= !(1u128 << p);
    }
    out
}

/// Sets bit `pos` of `v` to 0 and sets all lower bits of the same axis
/// (the "load 0111…" operation).
#[inline]
fn load_zero_ones(v: CurveIndex, pos: usize, d: usize) -> CurveIndex {
    let mut out = v & !(1u128 << pos);
    let mut p = pos;
    while p >= d {
        p -= d;
        out |= 1u128 << p;
    }
    out
}

/// The smallest Morton code strictly greater than `zcode` whose cell lies
/// in the box with corner codes `zmin = Z(lo)` and `zmax = Z(hi)`, or
/// `None` if no such code exists.
///
/// `zmin`/`zmax` must be the codes of the box's lower/upper corners; for
/// the Z curve these are also the minimum and maximum codes over the box.
pub fn bigmin<const D: usize>(
    z: &ZCurve<D>,
    zcode: CurveIndex,
    mut zmin: CurveIndex,
    mut zmax: CurveIndex,
) -> Option<CurveIndex> {
    debug_assert!(zmin <= zmax);
    let total_bits = z.grid().k() as usize * D;
    let mut result: Option<CurveIndex> = None;
    for pos in (0..total_bits).rev() {
        let zb = (zcode >> pos) & 1;
        let minb = (zmin >> pos) & 1;
        let maxb = (zmax >> pos) & 1;
        match (zb, minb, maxb) {
            (0, 0, 0) => {}
            (0, 0, 1) => {
                result = Some(load_one_zeros(zmin, pos, D));
                zmax = load_zero_ones(zmax, pos, D);
            }
            (0, 1, 1) => return Some(zmin),
            (1, 0, 0) => return result,
            (1, 0, 1) => {
                zmin = load_one_zeros(zmin, pos, D);
            }
            (1, 1, 1) => {}
            // (0,1,0) and (1,1,0) mean zmin > zmax in this sub-box:
            // impossible for valid corner codes.
            _ => unreachable!("inconsistent box corner codes"),
        }
    }
    // zcode itself is in the box (all bits matched): the next code inside
    // could only have been recorded as `result`.
    result
}

/// The largest Morton code strictly smaller than `zcode` whose cell lies in
/// the box with corner codes `zmin`/`zmax`, or `None`.
pub fn litmax<const D: usize>(
    z: &ZCurve<D>,
    zcode: CurveIndex,
    mut zmin: CurveIndex,
    mut zmax: CurveIndex,
) -> Option<CurveIndex> {
    debug_assert!(zmin <= zmax);
    let total_bits = z.grid().k() as usize * D;
    let mut result: Option<CurveIndex> = None;
    for pos in (0..total_bits).rev() {
        let zb = (zcode >> pos) & 1;
        let minb = (zmin >> pos) & 1;
        let maxb = (zmax >> pos) & 1;
        match (zb, minb, maxb) {
            (1, 1, 1) => {}
            (1, 0, 1) => {
                result = Some(load_zero_ones(zmax, pos, D));
                zmin = load_one_zeros(zmin, pos, D);
            }
            (1, 0, 0) => return Some(zmax),
            (0, 1, 1) => return result,
            (0, 0, 1) => {
                zmax = load_zero_ones(zmax, pos, D);
            }
            (0, 0, 0) => {}
            _ => unreachable!("inconsistent box corner codes"),
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::BoxRegion;
    use sfc_core::{Point, SpaceFillingCurve};

    /// Brute-force reference: smallest code > zcode decoding into the box.
    fn bigmin_brute<const D: usize>(z: &ZCurve<D>, zcode: u128, b: &BoxRegion<D>) -> Option<u128> {
        (zcode + 1..z.grid().n()).find(|&c| b.contains(&z.decode(c)))
    }

    fn litmax_brute<const D: usize>(z: &ZCurve<D>, zcode: u128, b: &BoxRegion<D>) -> Option<u128> {
        (0..zcode).rev().find(|&c| b.contains(&z.decode(c)))
    }

    #[test]
    fn load_helpers() {
        // d = 2: same-axis bits of pos 5 are 3 and 1.
        assert_eq!(load_one_zeros(0b000000, 5, 2), 0b100000);
        assert_eq!(load_one_zeros(0b001010, 5, 2), 0b100000);
        assert_eq!(load_zero_ones(0b100000, 5, 2), 0b001010);
        assert_eq!(load_zero_ones(0b111111, 5, 2), 0b011111);
    }

    #[test]
    fn bigmin_matches_brute_force_exhaustively_2d() {
        let z = ZCurve::<2>::new(2).unwrap(); // 4×4, exhaustive over boxes & codes
        for lx in 0..4u32 {
            for ly in 0..4u32 {
                for hx in lx..4u32 {
                    for hy in ly..4u32 {
                        let b = BoxRegion::new(Point::new([lx, ly]), Point::new([hx, hy]));
                        let zmin = z.encode(b.lo());
                        let zmax = z.encode(b.hi());
                        for code in 0..16u128 {
                            let fast = bigmin(&z, code, zmin, zmax);
                            let brute = bigmin_brute(&z, code, &b);
                            assert_eq!(fast, brute, "box {b:?} code {code}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn litmax_matches_brute_force_exhaustively_2d() {
        let z = ZCurve::<2>::new(2).unwrap();
        for lx in 0..4u32 {
            for ly in 0..4u32 {
                for hx in lx..4u32 {
                    for hy in ly..4u32 {
                        let b = BoxRegion::new(Point::new([lx, ly]), Point::new([hx, hy]));
                        let zmin = z.encode(b.lo());
                        let zmax = z.encode(b.hi());
                        for code in 0..16u128 {
                            assert_eq!(
                                litmax(&z, code, zmin, zmax),
                                litmax_brute(&z, code, &b),
                                "box {b:?} code {code}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bigmin_matches_brute_force_sampled_3d() {
        use rand::{Rng, SeedableRng};
        let z = ZCurve::<3>::new(2).unwrap(); // 4×4×4
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        for _ in 0..300 {
            let mut lo = [0u32; 3];
            let mut hi = [0u32; 3];
            for a in 0..3 {
                let x = rng.gen_range(0..4u32);
                let y = rng.gen_range(0..4u32);
                lo[a] = x.min(y);
                hi[a] = x.max(y);
            }
            let b = BoxRegion::new(Point::new(lo), Point::new(hi));
            let zmin = z.encode(b.lo());
            let zmax = z.encode(b.hi());
            let code = rng.gen_range(0..64u128);
            assert_eq!(
                bigmin(&z, code, zmin, zmax),
                bigmin_brute(&z, code, &b),
                "box {b:?} code {code}"
            );
            assert_eq!(
                litmax(&z, code, zmin, zmax),
                litmax_brute(&z, code, &b),
                "box {b:?} code {code}"
            );
        }
    }

    #[test]
    fn bigmin_on_the_classic_tropf_example_shape() {
        // A box straddling the major quadrant boundary of an 8×8 grid: the
        // scan from inside the low quadrant must jump over the entire
        // out-of-box key run.
        let z = ZCurve::<2>::new(3).unwrap();
        let b = BoxRegion::new(Point::new([2, 2]), Point::new([5, 5]));
        let zmin = z.encode(b.lo());
        let zmax = z.encode(b.hi());
        // Walk the full box range; every bigmin jump must land in the box.
        let mut code = zmin;
        let mut visited = 0;
        loop {
            if b.contains(&z.decode(code)) {
                visited += 1;
                if code >= zmax {
                    break;
                }
                code += 1;
            } else {
                match bigmin(&z, code, zmin, zmax) {
                    Some(next) => {
                        assert!(next > code);
                        assert!(b.contains(&z.decode(next)), "bigmin left the box");
                        code = next;
                    }
                    None => break,
                }
            }
        }
        assert_eq!(visited, 16, "all box cells visited exactly once");
    }

    #[test]
    fn bigmin_does_not_wrap_at_end_of_keyspace_full_resolution() {
        // Regression guard for the end-of-keyspace edge: on a
        // full-resolution grid (2^32 × 2^32 — keys occupy all 64 bits), a
        // box containing the all-max corner has `zmax = n − 1`. BIGMIN
        // jumps near the maximum curve index must stay strictly
        // increasing, land inside the box, and terminate via `None` — a
        // wrap or overflow would either panic (debug) or jump backwards.
        let z = ZCurve::<2>::new(32).unwrap();
        let max = u32::MAX;
        let b = BoxRegion::new(Point::new([max - 2, max - 2]), Point::new([max, max]));
        let zmin = z.encode(b.lo());
        let zmax = z.encode(b.hi());
        assert_eq!(zmax, z.grid().n() - 1, "all-max corner is the last key");
        // Walk every box cell by repeated BIGMIN from just-outside codes.
        let mut code = zmin;
        let mut visited = 0u32;
        loop {
            if b.contains(&z.decode(code)) {
                visited += 1;
                if code >= zmax {
                    break;
                }
                code += 1;
            } else {
                match bigmin(&z, code, zmin, zmax) {
                    Some(next) => {
                        assert!(next > code, "bigmin wrapped: {next:#x} <= {code:#x}");
                        assert!(next <= zmax, "bigmin escaped the key range");
                        assert!(b.contains(&z.decode(next)), "bigmin left the box");
                        code = next;
                    }
                    None => break,
                }
            }
        }
        assert_eq!(visited, 9, "all 3×3 corner cells visited");
        assert_eq!(bigmin(&z, zmax, zmin, zmax), None, "nothing past the end");
        assert_eq!(litmax(&z, zmin, zmin, zmax), None);
    }

    #[test]
    fn bigmin_does_not_wrap_at_127_bit_key_cap() {
        // Same edge through the generic (non-LUT) dilation path, at the
        // largest grid the index type supports: d = 4, k = 31 → 124 key
        // bits.
        let z = ZCurve::<4>::new(31).unwrap();
        let max = (1u32 << 31) - 1;
        let b = BoxRegion::new(
            Point::new([max - 1, max - 1, max - 1, max - 1]),
            Point::new([max, max, max, max]),
        );
        let zmin = z.encode(b.lo());
        let zmax = z.encode(b.hi());
        assert_eq!(zmax, z.grid().n() - 1);
        assert_eq!(z.decode(zmax), b.hi());
        let mut code = zmin;
        let mut visited = 0u32;
        loop {
            if b.contains(&z.decode(code)) {
                visited += 1;
                if code >= zmax {
                    break;
                }
                code += 1;
            } else {
                match bigmin(&z, code, zmin, zmax) {
                    Some(next) => {
                        assert!(next > code, "bigmin wrapped");
                        assert!(b.contains(&z.decode(next)), "bigmin left the box");
                        code = next;
                    }
                    None => break,
                }
            }
        }
        assert_eq!(visited, 16, "all 2^4 corner cells visited");
        assert_eq!(bigmin(&z, zmax, zmin, zmax), None);
    }

    #[test]
    fn bigmin_returns_none_past_the_box() {
        let z = ZCurve::<2>::new(2).unwrap();
        let b = BoxRegion::new(Point::new([0, 0]), Point::new([1, 1]));
        let zmin = z.encode(b.lo());
        let zmax = z.encode(b.hi());
        assert_eq!(bigmin(&z, zmax, zmin, zmax), None);
        assert_eq!(bigmin(&z, 15, zmin, zmax), None);
        assert_eq!(litmax(&z, zmin, zmin, zmax), None);
        assert_eq!(litmax(&z, 0, zmin, zmax), None);
    }
}
