//! The sorted key table: a one-dimensional stand-in for a B-tree over
//! curve keys (the "UB-tree lite" of the paper's database motivation).

use crate::bigmin::bigmin;
use crate::query::QueryStats;
use crate::region::BoxRegion;
use sfc_core::{CurveIndex, Point, SpaceFillingCurve, ZCurve};

/// One record of the index.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry<const D: usize, T> {
    /// Curve key of the record's cell.
    pub key: CurveIndex,
    /// The record's cell.
    pub point: Point<D>,
    /// User payload.
    pub payload: T,
}

/// A spatial index: records sorted by curve key, queried through key-range
/// navigation.
///
/// Any [`SpaceFillingCurve`] works; the Z curve additionally unlocks the
/// BIGMIN jumping strategy ([`SfcIndex::query_box_bigmin`] on
/// `SfcIndex<D, T, ZCurve<D>>`).
#[derive(Debug, Clone)]
pub struct SfcIndex<const D: usize, T, C: SpaceFillingCurve<D>> {
    curve: C,
    entries: Vec<Entry<D, T>>,
}

impl<const D: usize, T, C: SpaceFillingCurve<D>> SfcIndex<D, T, C> {
    /// Builds the index from records; sorts by curve key (stable in input
    /// order for equal keys, so multiple records per cell are supported).
    pub fn build(curve: C, records: impl IntoIterator<Item = (Point<D>, T)>) -> Self {
        let grid = curve.grid();
        let mut entries: Vec<Entry<D, T>> = records
            .into_iter()
            .map(|(point, payload)| {
                assert!(grid.contains(&point), "record out of bounds: {point}");
                Entry {
                    key: curve.index_of(point),
                    point,
                    payload,
                }
            })
            .collect();
        entries.sort_by_key(|e| e.key);
        Self { curve, entries }
    }

    /// The curve backing this index.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// All entries, sorted by key.
    pub fn entries(&self) -> &[Entry<D, T>] {
        &self.entries
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the index holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// First entry position with key ≥ `key` (binary search).
    fn lower_bound(&self, key: CurveIndex) -> usize {
        self.entries.partition_point(|e| e.key < key)
    }

    /// All records at exactly the given cell.
    pub fn point_lookup(&self, p: Point<D>) -> &[Entry<D, T>] {
        let key = self.curve.index_of(p);
        let start = self.lower_bound(key);
        let end = start + self.entries[start..].partition_point(|e| e.key == key);
        &self.entries[start..end]
    }

    /// Box query by full scan of the table — the baseline every strategy
    /// must beat.
    pub fn query_box_full_scan(&self, b: &BoxRegion<D>) -> (Vec<&Entry<D, T>>, QueryStats) {
        let mut out = Vec::new();
        for e in &self.entries {
            if b.contains(&e.point) {
                out.push(e);
            }
        }
        let stats = QueryStats {
            seeks: 1,
            scanned: self.entries.len() as u64,
            reported: out.len() as u64,
        };
        (out, stats)
    }

    /// Box query via exact interval decomposition
    /// ([`BoxRegion::curve_intervals`]): one binary search per interval,
    /// zero overscan. Works for **any** curve; preprocessing costs
    /// `O(volume · log volume)`.
    pub fn query_box_intervals(&self, b: &BoxRegion<D>) -> (Vec<&Entry<D, T>>, QueryStats) {
        let intervals = b.curve_intervals(&self.curve);
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        for (lo, hi) in intervals {
            stats.seeks += 1;
            let mut i = self.lower_bound(lo);
            while i < self.entries.len() && self.entries[i].key <= hi {
                stats.scanned += 1;
                debug_assert!(b.contains(&self.entries[i].point));
                out.push(&self.entries[i]);
                i += 1;
            }
        }
        stats.reported = out.len() as u64;
        (out, stats)
    }
}

impl<const D: usize, T> SfcIndex<D, T, ZCurve<D>> {
    /// Box query by key-range scan with BIGMIN jumps (Tropf & Herzog): scan
    /// from `Z(lo)`; whenever the scan meets an entry outside the box,
    /// compute BIGMIN and restart the scan there with a binary search.
    ///
    /// Needs no per-query `O(volume)` preprocessing — the cost is driven by
    /// the number of box/key-range "islands", i.e. by the Z curve's
    /// clustering behaviour.
    pub fn query_box_bigmin(&self, b: &BoxRegion<D>) -> (Vec<&Entry<D, T>>, QueryStats) {
        let zmin = self.curve.encode(b.lo());
        let zmax = self.curve.encode(b.hi());
        let mut out = Vec::new();
        let mut stats = QueryStats { seeks: 1, ..Default::default() };
        let mut i = self.lower_bound(zmin);
        while i < self.entries.len() {
            let e = &self.entries[i];
            if e.key > zmax {
                break;
            }
            stats.scanned += 1;
            if b.contains(&e.point) {
                out.push(e);
                i += 1;
            } else {
                match bigmin(&self.curve, e.key, zmin, zmax) {
                    Some(next) => {
                        stats.seeks += 1;
                        i = self.lower_bound(next);
                    }
                    None => break,
                }
            }
        }
        stats.reported = out.len() as u64;
        (out, stats)
    }
}

impl<const D: usize, T, C: SpaceFillingCurve<D>> SfcIndex<D, T, C> {
    /// Exact k-nearest-neighbor query (Euclidean), verified.
    ///
    /// Strategy (the classic SFC-kNN of the paper's reference [5]):
    /// 1. take the `window` table entries nearest to the query's key on
    ///    each side — if the curve preserves proximity these are good
    ///    candidates;
    /// 2. compute the k-th best candidate distance `r`;
    /// 3. *verify* by box-querying the Chebyshev ball of radius `⌈r⌉`,
    ///    which contains the Euclidean ball, and re-rank.
    ///
    /// The returned stats count all entries examined; a lower-stretch curve
    /// yields a smaller verification ball and fewer touched entries.
    pub fn knn(&self, q: Point<D>, k: usize, window: usize) -> (Vec<&Entry<D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        if self.entries.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        let key = self.curve.index_of(q);
        let pos = self.lower_bound(key);
        let lo = pos.saturating_sub(window);
        let hi = (pos + window).min(self.entries.len());
        let mut candidates: Vec<&Entry<D, T>> = self.entries[lo..hi].iter().collect();
        let mut stats = QueryStats {
            seeks: 1,
            scanned: (hi - lo) as u64,
            ..Default::default()
        };
        // Rank candidates by true distance.
        candidates.sort_by(|a, b| {
            q.euclidean_sq(&a.point)
                .cmp(&q.euclidean_sq(&b.point))
                .then(a.key.cmp(&b.key))
        });
        candidates.truncate(k);
        // Verification radius: k-th candidate distance (or the whole grid
        // if the window produced fewer than k candidates).
        let radius = if candidates.len() == k {
            let worst = q.euclidean(&candidates[k - 1].point);
            worst.ceil() as u32
        } else {
            (self.curve.grid().side() - 1) as u32
        };
        let ball = BoxRegion::chebyshev_ball(self.curve.grid(), q, radius);
        let (verified, ball_stats) = self.query_box_intervals(&ball);
        stats.seeks += ball_stats.seeks;
        stats.scanned += ball_stats.scanned;
        let mut all: Vec<&Entry<D, T>> = verified;
        all.sort_by(|a, b| {
            q.euclidean_sq(&a.point)
                .cmp(&q.euclidean_sq(&b.point))
                .then(a.key.cmp(&b.key))
        });
        all.truncate(k);
        stats.reported = all.len() as u64;
        (all, stats)
    }

    /// Reference k-nearest-neighbor by linear scan (ground truth for
    /// tests).
    pub fn knn_linear(&self, q: Point<D>, k: usize) -> Vec<&Entry<D, T>> {
        let mut all: Vec<&Entry<D, T>> = self.entries.iter().collect();
        all.sort_by(|a, b| {
            q.euclidean_sq(&a.point)
                .cmp(&q.euclidean_sq(&b.point))
                .then(a.key.cmp(&b.key))
        });
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sfc_core::{Grid, HilbertCurve};

    fn random_records<const D: usize>(
        grid: Grid<D>,
        count: usize,
        seed: u64,
    ) -> Vec<(Point<D>, usize)> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..count)
            .map(|i| (grid.random_cell(&mut rng), i))
            .collect()
    }

    #[test]
    fn build_sorts_by_key() {
        let grid = Grid::<2>::new(3).unwrap();
        let idx = SfcIndex::build(ZCurve::over(grid), random_records(grid, 100, 1));
        assert_eq!(idx.len(), 100);
        for w in idx.entries().windows(2) {
            assert!(w[0].key <= w[1].key);
        }
    }

    #[test]
    fn point_lookup_finds_all_duplicates() {
        let grid = Grid::<2>::new(2).unwrap();
        let p = Point::new([1, 2]);
        let records = vec![(p, 10usize), (Point::new([0, 0]), 20), (p, 30)];
        let idx = SfcIndex::build(ZCurve::over(grid), records);
        let hits = idx.point_lookup(p);
        assert_eq!(hits.len(), 2);
        let payloads: Vec<usize> = hits.iter().map(|e| e.payload).collect();
        assert!(payloads.contains(&10) && payloads.contains(&30));
        assert!(idx.point_lookup(Point::new([3, 3])).is_empty());
    }

    #[test]
    fn all_three_box_strategies_agree() {
        let grid = Grid::<2>::new(3).unwrap();
        let idx = SfcIndex::build(ZCurve::over(grid), random_records(grid, 200, 2));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for _ in 0..50 {
            let a = grid.random_cell(&mut rng);
            let b = grid.random_cell(&mut rng);
            let lo = Point::new([a.coord(0).min(b.coord(0)), a.coord(1).min(b.coord(1))]);
            let hi = Point::new([a.coord(0).max(b.coord(0)), a.coord(1).max(b.coord(1))]);
            let bx = BoxRegion::new(lo, hi);
            let (full, fs) = idx.query_box_full_scan(&bx);
            let (ivals, is) = idx.query_box_intervals(&bx);
            let (bm, bs) = idx.query_box_bigmin(&bx);
            let key = |v: &Vec<&Entry<2, usize>>| {
                let mut ks: Vec<(u128, usize)> = v.iter().map(|e| (e.key, e.payload)).collect();
                ks.sort();
                ks
            };
            assert_eq!(key(&full), key(&ivals));
            assert_eq!(key(&full), key(&bm));
            assert_eq!(fs.reported, is.reported);
            assert_eq!(fs.reported, bs.reported);
            // Interval strategy never scans non-matching entries.
            assert_eq!(is.scanned, is.reported);
        }
    }

    #[test]
    fn bigmin_strategy_beats_full_scan_on_small_boxes() {
        let grid = Grid::<2>::new(4).unwrap(); // 16×16
        let idx = SfcIndex::build(ZCurve::over(grid), random_records(grid, 1_000, 4));
        let bx = BoxRegion::new(Point::new([3, 3]), Point::new([6, 6]));
        let (_, full) = idx.query_box_full_scan(&bx);
        let (_, bm) = idx.query_box_bigmin(&bx);
        assert!(
            bm.scanned < full.scanned / 4,
            "bigmin scanned {} vs full {}",
            bm.scanned,
            full.scanned
        );
    }

    #[test]
    fn interval_strategy_works_for_hilbert() {
        let grid = Grid::<2>::new(3).unwrap();
        let idx = SfcIndex::build(HilbertCurve::over(grid), random_records(grid, 150, 5));
        let bx = BoxRegion::new(Point::new([1, 1]), Point::new([5, 4]));
        let (hits, stats) = idx.query_box_intervals(&bx);
        let (full, _) = idx.query_box_full_scan(&bx);
        assert_eq!(hits.len(), full.len());
        assert_eq!(stats.overscan(), 1.0);
        for e in hits {
            assert!(bx.contains(&e.point));
        }
    }

    #[test]
    fn knn_matches_linear_scan_for_every_curve() {
        let grid = Grid::<2>::new(3).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let records = random_records(grid, 120, 7);
        macro_rules! check_curve {
            ($curve:expr) => {
                let idx = SfcIndex::build($curve, records.clone());
                for _ in 0..30 {
                    let q = grid.random_cell(&mut rng);
                    for k in [1usize, 3, 8] {
                        let (got, stats) = idx.knn(q, k, 4);
                        let want = idx.knn_linear(q, k);
                        let gd: Vec<u64> = got.iter().map(|e| q.euclidean_sq(&e.point)).collect();
                        let wd: Vec<u64> = want.iter().map(|e| q.euclidean_sq(&e.point)).collect();
                        assert_eq!(gd, wd, "k={k} q={q}");
                        assert_eq!(stats.reported, k.min(records.len()) as u64);
                    }
                }
            };
        }
        check_curve!(ZCurve::over(grid));
        check_curve!(HilbertCurve::over(grid));
        check_curve!(sfc_core::SimpleCurve::over(grid));
    }

    #[test]
    fn knn_with_fewer_records_than_k() {
        let grid = Grid::<2>::new(2).unwrap();
        let idx = SfcIndex::build(ZCurve::over(grid), vec![(Point::new([1, 1]), 0usize)]);
        let (got, _) = idx.knn(Point::new([0, 0]), 5, 2);
        assert_eq!(got.len(), 1);
        let empty: SfcIndex<2, usize, _> = SfcIndex::build(ZCurve::over(grid), vec![]);
        let (none, _) = empty.knn(Point::new([0, 0]), 3, 2);
        assert!(none.is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn lower_stretch_curve_needs_no_more_knn_work() {
        // The punchline experiment in miniature: average scanned entries for
        // kNN under Hilbert should not exceed the simple curve's (slab
        // layouts make distant cells key-adjacent).
        let grid = Grid::<2>::new(4).unwrap();
        let records = random_records(grid, 400, 8);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let queries: Vec<Point<2>> = (0..40).map(|_| grid.random_cell(&mut rng)).collect();
        let total = |idx: &SfcIndex<2, usize, _>| -> u64 {
            queries.iter().map(|q| idx.knn(*q, 5, 8).1.scanned).sum()
        };
        let hilbert = SfcIndex::build(HilbertCurve::over(grid), records.clone());
        let simple = SfcIndex::build(sfc_core::SimpleCurve::over(grid), records.clone());
        let th = queries
            .iter()
            .map(|q| hilbert.knn(*q, 5, 8).1.scanned)
            .sum::<u64>();
        let ts = total(&simple);
        assert!(th <= ts, "hilbert {th} > simple {ts}");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn build_rejects_out_of_bounds_records() {
        let grid = Grid::<2>::new(1).unwrap();
        SfcIndex::build(ZCurve::over(grid), vec![(Point::new([5, 5]), 0usize)]);
    }
}
