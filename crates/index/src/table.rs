//! The sorted key table: a one-dimensional stand-in for a B-tree over
//! curve keys (the "UB-tree lite" of the paper's database motivation).
//!
//! ## Layout: compressed columnar blocks
//!
//! Records are stored sorted by curve key in 64-slot compressed blocks
//! (see [`BlockStore`]): keys as frame-of-reference deltas from the
//! block's fence key, coordinates as offsets from the block's AABB
//! minimum, both bit-packed at per-block widths, and liveness as a
//! one-word-per-block tombstone bitmap. Payloads live in a **dense**
//! column holding only live slots, indexed through rank-select on the
//! bitmap — tombstones cost one bit, not a whole `Option<T>` slot.
//! Binary search and pruning decisions touch only the uncompressed
//! per-block metadata (fences, AABBs, bitmap); scans decode lazily, one
//! block at a time, through the branch-free kernels in
//! [`kernels`](crate::kernels).
//!
//! ## Bulk load: radix sort
//!
//! [`SfcIndex::build`] encodes all points through the curve's
//! [`index_of_batch`](SpaceFillingCurve::index_of_batch) kernel, then
//! sorts with an LSD radix sort over the `d·k` significant key bits —
//! `O(n · d·k/8)` with sequential memory traffic, instead of the
//! `O(n log n)` comparison sort with cache-hostile access the seed used.
//! The sort is stable, so records with equal keys keep input order,
//! exactly like the previous `sort_by_key`. Pre-sorted columns can skip
//! the sort entirely via [`SfcIndex::from_sorted`].

use crate::block::{BlockCursor, BlockStore};
use crate::query::QueryStats;
use crate::region::BoxRegion;
use crate::scan::{bigmin_scan, interval_scan};
use sfc_core::{CurveIndex, Point, SpaceFillingCurve, ZCurve};

/// A borrowed view of one record of the index.
///
/// The index stores packed columns, not structs; `EntryRef` is the row
/// view handed out by lookups and queries (key and point decoded from
/// their blocks, payload borrowed from the dense column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryRef<'a, const D: usize, T> {
    /// Curve key of the record's cell.
    pub key: CurveIndex,
    /// The record's cell.
    pub point: Point<D>,
    /// User payload.
    pub payload: &'a T,
}

/// A spatial index: records sorted by curve key in compressed columnar
/// blocks, queried through key-range navigation.
///
/// Any [`SpaceFillingCurve`] works; the Z curve additionally unlocks the
/// BIGMIN jumping strategy ([`SfcIndex::query_box_bigmin`] on
/// `SfcIndex<D, T, ZCurve<D>>`).
#[derive(Debug, Clone)]
pub struct SfcIndex<const D: usize, T, C: SpaceFillingCurve<D>> {
    curve: C,
    /// The compressed key/point columns plus all per-block metadata
    /// (fence keys, point AABBs, tombstone bitmap) — see [`BlockStore`].
    blocks: BlockStore<D>,
    /// Payloads of **live** slots only, in key order; a slot's payload
    /// index is [`BlockStore::rank`].
    payloads: Vec<T>,
}

/// An unsigned key type the radix sort can extract 8-bit digits from.
/// Narrowing the key to the smallest width that holds the grid's `d·k`
/// bits halves (or quarters) the memory each sorting pass moves — the
/// dominant cost at bulk-load scale.
trait RadixKey: Copy + Ord {
    fn digit(self, pass: u32) -> usize;
}

macro_rules! impl_radix_key {
    ($($t:ty),*) => {$(
        impl RadixKey for $t {
            #[inline]
            fn digit(self, pass: u32) -> usize {
                (self >> (pass * 8)) as usize & 0xFF
            }
        }
    )*};
}

impl_radix_key!(u32, u64, u128);

/// Stable LSD radix sort of `(key, original-index)` pairs, 8 bits per
/// pass, ping-pong between two buffers. A single prescan builds every
/// pass's histogram, and passes whose digit is constant across all keys
/// (the high digits of small grids) are skipped outright. Each executed
/// pass is one sequential read of the pair array — no random gathers.
fn radix_sort_pairs<K: RadixKey>(mut pairs: Vec<(K, u32)>, bits: u32) -> Vec<(K, u32)> {
    let n = pairs.len();
    let passes = bits.div_ceil(8);
    if n <= 1 || passes == 0 {
        return pairs;
    }
    let mut counts = vec![[0usize; 256]; passes as usize];
    for &(key, _) in &pairs {
        for (pass, count) in counts.iter_mut().enumerate() {
            count[key.digit(pass as u32)] += 1;
        }
    }
    let mut scratch = vec![pairs[0]; n];
    for (pass, count) in counts.iter().enumerate() {
        if count.contains(&n) {
            continue;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0usize;
        for (offset, &c) in offsets.iter_mut().zip(count.iter()) {
            *offset = acc;
            acc += c;
        }
        for &pair in &pairs {
            let digit = pair.0.digit(pass as u32);
            scratch[offsets[digit]] = pair;
            offsets[digit] += 1;
        }
        std::mem::swap(&mut pairs, &mut scratch);
    }
    pairs
}

/// Returns the stable permutation placing `keys` in non-decreasing order,
/// looking only at the low `bits` bits (the grid's `d·k`; everything above
/// is zero). Dispatches to the narrowest pair width that holds the keys.
fn radix_sort_perm(keys: &[CurveIndex], bits: u32) -> Vec<u32> {
    let n = keys.len();
    assert!(
        u32::try_from(n).is_ok(),
        "bulk load supports at most u32::MAX records"
    );
    // For tiny inputs the counting passes cost more than they save.
    if n < 64 {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_by_key(|&i| keys[i as usize]);
        return perm;
    }
    if bits <= 32 {
        let pairs: Vec<(u32, u32)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k as u32, i as u32))
            .collect();
        radix_sort_pairs(pairs, bits)
            .into_iter()
            .map(|(_, i)| i)
            .collect()
    } else if bits <= 64 {
        let pairs: Vec<(u64, u32)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k as u64, i as u32))
            .collect();
        radix_sort_pairs(pairs, bits)
            .into_iter()
            .map(|(_, i)| i)
            .collect()
    } else {
        let pairs: Vec<(u128, u32)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u32))
            .collect();
        radix_sort_pairs(pairs, bits)
            .into_iter()
            .map(|(_, i)| i)
            .collect()
    }
}

/// Sorted-column construction: encodes `points` through the curve's batch
/// kernel and radix-sorts all three columns by curve key, **stable** in
/// input order for equal keys. This is the bulk-load primitive shared by
/// [`SfcIndex::build`] and by multi-run structures that assemble their own
/// runs (e.g. an LSM-style store's initial load).
///
/// # Panics
/// Panics if any point lies outside the curve's grid or if `points` and
/// `payloads` have different lengths.
pub fn sort_columns<const D: usize, T, C: SpaceFillingCurve<D>>(
    curve: &C,
    points: Vec<Point<D>>,
    payloads: Vec<T>,
) -> (Vec<CurveIndex>, Vec<Point<D>>, Vec<T>) {
    let grid = curve.grid();
    assert_eq!(points.len(), payloads.len(), "column length mismatch");
    for point in &points {
        assert!(grid.contains(point), "record out of bounds: {point}");
    }
    let mut keys = Vec::new();
    curve.index_of_batch(&points, &mut keys);
    let bits = grid.k() * D as u32;
    let perm = radix_sort_perm(&keys, bits);
    let sorted_keys = perm.iter().map(|&i| keys[i as usize]).collect();
    let sorted_points = perm.iter().map(|&i| points[i as usize]).collect();
    let mut slots: Vec<Option<T>> = payloads.into_iter().map(Some).collect();
    let sorted_payloads = perm
        .iter()
        .map(|&i| {
            slots[i as usize]
                .take()
                .expect("radix permutation is a bijection")
        })
        .collect();
    (sorted_keys, sorted_points, sorted_payloads)
}

fn assert_sorted_columns<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    keys: &[CurveIndex],
    points: &[Point<D>],
) {
    assert_eq!(keys.len(), points.len(), "column length mismatch");
    assert!(
        keys.windows(2).all(|w| w[0] <= w[1]),
        "from_sorted requires keys in non-decreasing order"
    );
    debug_assert!(
        keys.iter()
            .zip(points.iter())
            .all(|(&key, &point)| curve.index_of(point) == key),
        "key column disagrees with curve encoding of the point column"
    );
}

impl<const D: usize, T, C: SpaceFillingCurve<D>> SfcIndex<D, T, C> {
    /// Builds the index from records: batch-encodes every point through
    /// the curve's [`index_of_batch`](SpaceFillingCurve::index_of_batch)
    /// kernel, then radix-sorts by curve key (see [`sort_columns`]),
    /// then packs the columns into compressed blocks. Stable in input
    /// order for equal keys, so multiple records per cell are supported.
    pub fn build(curve: C, records: impl IntoIterator<Item = (Point<D>, T)>) -> Self {
        let (points, payloads): (Vec<Point<D>>, Vec<T>) = records.into_iter().unzip();
        let (keys, points, payloads) = sort_columns(&curve, points, payloads);
        let blocks = BlockStore::pack(&keys, &points, |_| true);
        Self {
            curve,
            blocks,
            payloads,
        }
    }

    /// Builds the index from columns already sorted by key (e.g. the
    /// output of a previous [`build`](Self::build), a merge of sorted
    /// runs, or an external bulk loader). Skips encoding and sorting;
    /// only the block packing pass runs.
    ///
    /// # Panics
    /// Panics if the columns have different lengths or `keys` is not
    /// sorted; in debug builds also verifies every key matches its point.
    pub fn from_sorted(
        curve: C,
        keys: Vec<CurveIndex>,
        points: Vec<Point<D>>,
        payloads: Vec<T>,
    ) -> Self {
        assert_eq!(keys.len(), payloads.len(), "column length mismatch");
        assert_sorted_columns(&curve, &keys, &points);
        let blocks = BlockStore::pack(&keys, &points, |_| true);
        Self {
            curve,
            blocks,
            payloads,
        }
    }

    /// Builds a *versioned* run from columns already sorted by key, where
    /// a `None` slot is a tombstone. Tombstones are stored as cleared
    /// bits in the block bitmap — the dense payload column holds only the
    /// `Some` payloads — which is what lets multi-run structures skip
    /// all-dead blocks during candidate collection and pay one bit (not
    /// a discriminant word) per deleted slot. This is the constructor
    /// every LSM-style run goes through.
    ///
    /// # Panics
    /// Panics under the same conditions as [`from_sorted`](Self::from_sorted).
    pub fn from_sorted_versions(
        curve: C,
        keys: Vec<CurveIndex>,
        points: Vec<Point<D>>,
        slots: Vec<Option<T>>,
    ) -> Self {
        assert_eq!(keys.len(), slots.len(), "column length mismatch");
        assert_sorted_columns(&curve, &keys, &points);
        let blocks = BlockStore::pack(&keys, &points, |slot| slots[slot].is_some());
        let payloads: Vec<T> = slots.into_iter().flatten().collect();
        Self {
            curve,
            blocks,
            payloads,
        }
    }

    /// The curve backing this index.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// The compressed block store: packed key/point columns plus the
    /// per-block metadata (fence keys, point AABBs, tombstone bitmap)
    /// every pruning decision runs on.
    pub fn blocks(&self) -> &BlockStore<D> {
        &self.blocks
    }

    /// The dense payload column: payloads of live slots only, in key
    /// order. Slot `i`'s payload sits at [`BlockStore::rank`]`(i)` iff
    /// the slot is live.
    pub fn payloads(&self) -> &[T] {
        &self.payloads
    }

    /// Decodes the key at slot `i` (single-field extraction).
    #[inline]
    pub fn key_at(&self, i: usize) -> CurveIndex {
        self.blocks.key_at(i)
    }

    /// Decodes the point at slot `i` (single-field extraction per axis).
    #[inline]
    pub fn point_at(&self, i: usize) -> Point<D> {
        self.blocks.point_at(i)
    }

    /// `true` iff slot `i` holds a live payload (bitmap test).
    #[inline]
    pub fn is_live_slot(&self, i: usize) -> bool {
        self.blocks.is_live_slot(i)
    }

    /// The payload at slot `i`, or `None` for a tombstone. Rank-select on
    /// the block bitmap indexes the dense payload column.
    #[inline]
    pub fn payload_at(&self, i: usize) -> Option<&T> {
        self.blocks
            .is_live_slot(i)
            .then(|| &self.payloads[self.blocks.rank(i)])
    }

    /// Decodes the whole key column (test / interop helper — queries
    /// never materialize it).
    pub fn decode_keys(&self) -> Vec<CurveIndex> {
        let mut cur = BlockCursor::new(&self.blocks);
        (0..self.len()).map(|i| cur.key(i)).collect()
    }

    /// Decodes the whole point column (test / interop helper).
    pub fn decode_points(&self) -> Vec<Point<D>> {
        let mut cur = BlockCursor::new(&self.blocks);
        (0..self.len()).map(|i| cur.point(i)).collect()
    }

    /// Decomposes the index into the curve, the packed blocks, and the
    /// dense payload column — the handoff run-merging code uses to
    /// iterate a run without cloning payloads.
    pub fn into_parts(self) -> (C, BlockStore<D>, Vec<T>) {
        (self.curve, self.blocks, self.payloads)
    }

    /// The record at slot `i` of the key order.
    ///
    /// # Panics
    /// Panics if the slot is a tombstone (versioned runs are read through
    /// [`payload_at`](Self::payload_at) instead).
    pub fn entry(&self, i: usize) -> EntryRef<'_, D, T> {
        EntryRef {
            key: self.blocks.key_at(i),
            point: self.blocks.point_at(i),
            payload: self
                .payload_at(i)
                .expect("entry() reads live slots; tombstones go through payload_at()"),
        }
    }

    /// All records in key order (the successor of the old `entries()`
    /// slice access). Panics on tombstone slots like [`entry`](Self::entry).
    pub fn entries(&self) -> impl ExactSizeIterator<Item = EntryRef<'_, D, T>> + '_ {
        (0..self.len()).map(|i| self.entry(i))
    }

    /// Number of slots, tombstones included (a versioned run's physical
    /// length).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Number of live (non-tombstone) records.
    pub fn live_len(&self) -> usize {
        self.payloads.len()
    }

    /// `true` iff the index holds no slots.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Bytes of heap memory held by the compressed columns, metadata, and
    /// the dense payload column.
    pub fn heap_bytes(&self) -> usize {
        self.blocks.heap_bytes() + self.payloads.len() * std::mem::size_of::<T>()
    }

    /// First slot with key ≥ `key`: a fence-array search followed by one
    /// in-block search over packed fields — two small, cache-resident
    /// binary searches instead of one whole-column search (see
    /// [`BlockStore::lower_bound`]).
    pub fn lower_bound(&self, key: CurveIndex) -> usize {
        self.blocks.lower_bound(key)
    }

    /// Position of the first slot with exactly this key, or `None` if the
    /// key is absent.
    pub fn find_key(&self, key: CurveIndex) -> Option<usize> {
        let i = self.lower_bound(key);
        (i < self.len() && self.blocks.key_at(i) == key).then_some(i)
    }

    /// All records at exactly the given cell, in input order. One fence
    /// search, then a lazy walk of the matching row range.
    pub fn point_lookup(&self, p: Point<D>) -> impl ExactSizeIterator<Item = EntryRef<'_, D, T>> {
        let key = self.curve.index_of(p);
        let start = self.lower_bound(key);
        let mut end = start;
        while end < self.len() && self.blocks.key_at(end) == key {
            end += 1;
        }
        (start..end).map(|i| self.entry(i))
    }

    /// Box query by full scan of the table — the baseline every strategy
    /// must beat. Decodes every block once through the lazy cursor.
    pub fn query_box_full_scan(&self, b: &BoxRegion<D>) -> (Vec<EntryRef<'_, D, T>>, QueryStats) {
        let mut out = Vec::new();
        let mut cur = BlockCursor::new(&self.blocks);
        let mut matches = Vec::new();
        for i in 0..self.len() {
            if b.contains(&cur.point(i)) {
                matches.push(i);
            }
        }
        let decodes = cur.decodes;
        drop(cur);
        for i in matches {
            out.push(self.entry(i));
        }
        let stats = QueryStats {
            seeks: 1,
            scanned: self.len() as u64,
            reported: out.len() as u64,
            blocks_decoded: decodes,
            ..Default::default()
        };
        (out, stats)
    }

    /// Box query via exact interval decomposition
    /// ([`BoxRegion::curve_intervals`]): one galloped seek per interval,
    /// zero overscan. Works for **any** curve; preprocessing costs
    /// `O(volume · log volume)`.
    pub fn query_box_intervals(&self, b: &BoxRegion<D>) -> (Vec<EntryRef<'_, D, T>>, QueryStats) {
        let intervals = b.curve_intervals(&self.curve);
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        interval_scan(&self.blocks, &intervals, &mut stats, |i, key, point| {
            debug_assert!(b.contains(&point));
            out.push(EntryRef {
                key,
                point,
                payload: self
                    .payload_at(i)
                    .expect("index-level queries run on all-live indexes"),
            });
        });
        stats.reported = out.len() as u64;
        (out, stats)
    }
}

impl<const D: usize, T> SfcIndex<D, T, ZCurve<D>> {
    /// Box query by key-range scan with BIGMIN jumps (Tropf & Herzog): scan
    /// from `Z(lo)`; whenever the scan meets an entry outside the box,
    /// compute BIGMIN and restart the scan there with a binary search.
    ///
    /// Needs no per-query `O(volume)` preprocessing — the cost is driven by
    /// the number of box/key-range "islands", i.e. by the Z curve's
    /// clustering behaviour. Pruning decisions run on the uncompressed
    /// block metadata; surviving blocks decode once each.
    pub fn query_box_bigmin(&self, b: &BoxRegion<D>) -> (Vec<EntryRef<'_, D, T>>, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        bigmin_scan(&self.curve, &self.blocks, b, &mut stats, |i, key, point| {
            out.push(EntryRef {
                key,
                point,
                payload: self
                    .payload_at(i)
                    .expect("index-level queries run on all-live indexes"),
            });
        });
        stats.reported = out.len() as u64;
        (out, stats)
    }
}

impl<const D: usize, T, C: SpaceFillingCurve<D>> SfcIndex<D, T, C> {
    /// Exact k-nearest-neighbor query (Euclidean), verified.
    ///
    /// Strategy (the classic SFC-kNN of the paper's reference [5]):
    /// 1. take the `window` table entries nearest to the query's key on
    ///    each side — if the curve preserves proximity these are good
    ///    candidates;
    /// 2. compute the k-th best candidate distance `r`;
    /// 3. *verify* by box-querying the Chebyshev ball of radius `⌈r⌉`,
    ///    which contains the Euclidean ball, and re-rank.
    ///
    /// The returned stats count all entries examined; a lower-stretch curve
    /// yields a smaller verification ball and fewer touched entries.
    pub fn knn(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<EntryRef<'_, D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        if self.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        let key = self.curve.index_of(q);
        let pos = self.lower_bound(key);
        let lo = pos.saturating_sub(window);
        let hi = (pos + window).min(self.len());
        let mut cur = BlockCursor::new(&self.blocks);
        let mut candidates: Vec<(u64, CurveIndex, usize)> = (lo..hi)
            .map(|i| (q.euclidean_sq(&cur.point(i)), cur.key(i), i))
            .collect();
        let mut stats = QueryStats {
            seeks: 1,
            scanned: (hi - lo) as u64,
            blocks_decoded: cur.decodes,
            ..Default::default()
        };
        drop(cur);
        // (knn keeps the simple fixed-window candidate strategy at the
        // single-run level; the multi-level store's kNN is the one that
        // exploits the block metadata's live counts and distance bounds.)
        candidates.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        candidates.truncate(k);
        // Verification radius: k-th candidate distance (or the whole grid
        // if the window produced fewer than k candidates).
        let radius = if candidates.len() == k {
            let worst = (candidates[k - 1].0 as f64).sqrt();
            worst.ceil() as u32
        } else {
            (self.curve.grid().side() - 1) as u32
        };
        let ball = BoxRegion::chebyshev_ball(self.curve.grid(), q, radius);
        let (verified, ball_stats) = self.query_box_intervals(&ball);
        // `reported` is recomputed below, so summing it here is harmless.
        stats.add(&ball_stats);
        let mut all = verified;
        all.sort_by(|a, b| {
            q.euclidean_sq(&a.point)
                .cmp(&q.euclidean_sq(&b.point))
                .then(a.key.cmp(&b.key))
        });
        all.truncate(k);
        stats.reported = all.len() as u64;
        (all, stats)
    }

    /// Reference k-nearest-neighbor by linear scan (ground truth for
    /// tests).
    pub fn knn_linear(&self, q: Point<D>, k: usize) -> Vec<EntryRef<'_, D, T>> {
        let mut all: Vec<EntryRef<'_, D, T>> = self.entries().collect();
        all.sort_by(|a, b| {
            q.euclidean_sq(&a.point)
                .cmp(&q.euclidean_sq(&b.point))
                .then(a.key.cmp(&b.key))
        });
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sfc_core::{Grid, HilbertCurve};

    fn random_records<const D: usize>(
        grid: Grid<D>,
        count: usize,
        seed: u64,
    ) -> Vec<(Point<D>, usize)> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..count)
            .map(|i| (grid.random_cell(&mut rng), i))
            .collect()
    }

    #[test]
    fn build_sorts_by_key() {
        let grid = Grid::<2>::new(3).unwrap();
        let idx = SfcIndex::build(ZCurve::over(grid), random_records(grid, 100, 1));
        assert_eq!(idx.len(), 100);
        for w in idx.decode_keys().windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Columns are consistent rows.
        for e in idx.entries() {
            assert_eq!(idx.curve().index_of(e.point), e.key);
        }
    }

    #[test]
    fn radix_build_matches_comparison_sort_including_stability() {
        // The seed's build used a stable `sort_by_key`; the radix bulk
        // load must produce the identical entry order, duplicates
        // included.
        let grid = Grid::<2>::new(4).unwrap();
        let mut records = random_records(grid, 500, 42);
        // Force many duplicate keys.
        for i in 0..200 {
            records.push((records[i].0, 10_000 + i));
        }
        let idx = SfcIndex::build(ZCurve::over(grid), records.clone());
        let mut expected: Vec<(CurveIndex, usize)> = records
            .iter()
            .map(|&(p, payload)| (ZCurve::over(grid).index_of(p), payload))
            .collect();
        expected.sort_by_key(|&(key, _)| key); // stable
        let got: Vec<(CurveIndex, usize)> = idx.entries().map(|e| (e.key, *e.payload)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn from_sorted_round_trips_build_columns() {
        let grid = Grid::<2>::new(3).unwrap();
        let idx = SfcIndex::build(ZCurve::over(grid), random_records(grid, 80, 3));
        let rebuilt = SfcIndex::from_sorted(
            ZCurve::over(grid),
            idx.decode_keys(),
            idx.decode_points(),
            idx.payloads().to_vec(),
        );
        assert_eq!(rebuilt.len(), idx.len());
        assert_eq!(rebuilt.decode_keys(), idx.decode_keys());
        assert_eq!(rebuilt.decode_points(), idx.decode_points());
        let bx = BoxRegion::new(Point::new([1, 1]), Point::new([5, 6]));
        let (a, _) = idx.query_box_full_scan(&bx);
        let (b, _) = rebuilt.query_box_full_scan(&bx);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn versioned_runs_store_payloads_densely() {
        let grid = Grid::<2>::new(3).unwrap();
        let curve = ZCurve::over(grid);
        let mut rows: Vec<(CurveIndex, Point<2>)> = (0..100u32)
            .map(|i| {
                let p = Point::new([i % 8, (i / 8) % 8]);
                (curve.index_of(p), p)
            })
            .collect();
        rows.sort_by_key(|&(k, _)| k);
        let keys: Vec<CurveIndex> = rows.iter().map(|&(k, _)| k).collect();
        let points: Vec<Point<2>> = rows.iter().map(|&(_, p)| p).collect();
        let slots: Vec<Option<u64>> = (0..100u64).map(|i| (i % 3 != 0).then_some(i)).collect();
        let run = SfcIndex::from_sorted_versions(curve, keys.clone(), points.clone(), slots);
        assert_eq!(run.len(), 100);
        assert_eq!(run.live_len(), (0..100).filter(|i| i % 3 != 0).count());
        for i in 0..100usize {
            assert_eq!(run.is_live_slot(i), i % 3 != 0);
            assert_eq!(run.key_at(i), keys[i]);
            assert_eq!(run.point_at(i), points[i]);
            match run.payload_at(i) {
                Some(&v) => assert_eq!(v, i as u64),
                None => assert_eq!(i % 3, 0),
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_sorted_rejects_unsorted_keys() {
        let grid = Grid::<2>::new(2).unwrap();
        let points = vec![Point::new([1, 0]), Point::new([0, 0])];
        let curve = ZCurve::over(grid);
        let keys: Vec<CurveIndex> = points.iter().map(|&p| curve.index_of(p)).collect();
        let _ = SfcIndex::from_sorted(curve, keys, points, vec![0usize, 1]);
    }

    #[test]
    fn point_lookup_finds_all_duplicates() {
        let grid = Grid::<2>::new(2).unwrap();
        let p = Point::new([1, 2]);
        let records = vec![(p, 10usize), (Point::new([0, 0]), 20), (p, 30)];
        let idx = SfcIndex::build(ZCurve::over(grid), records);
        let hits = idx.point_lookup(p);
        assert_eq!(hits.len(), 2);
        let payloads: Vec<usize> = hits.map(|e| *e.payload).collect();
        assert!(payloads.contains(&10) && payloads.contains(&30));
        assert_eq!(idx.point_lookup(Point::new([3, 3])).len(), 0);
    }

    #[test]
    fn all_three_box_strategies_agree() {
        let grid = Grid::<2>::new(3).unwrap();
        let idx = SfcIndex::build(ZCurve::over(grid), random_records(grid, 200, 2));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for _ in 0..50 {
            let a = grid.random_cell(&mut rng);
            let b = grid.random_cell(&mut rng);
            let lo = Point::new([a.coord(0).min(b.coord(0)), a.coord(1).min(b.coord(1))]);
            let hi = Point::new([a.coord(0).max(b.coord(0)), a.coord(1).max(b.coord(1))]);
            let bx = BoxRegion::new(lo, hi);
            let (full, fs) = idx.query_box_full_scan(&bx);
            let (ivals, is) = idx.query_box_intervals(&bx);
            let (bm, bs) = idx.query_box_bigmin(&bx);
            let key = |v: &Vec<EntryRef<2, usize>>| {
                let mut ks: Vec<(u128, usize)> = v.iter().map(|e| (e.key, *e.payload)).collect();
                ks.sort();
                ks
            };
            assert_eq!(key(&full), key(&ivals));
            assert_eq!(key(&full), key(&bm));
            assert_eq!(fs.reported, is.reported);
            assert_eq!(fs.reported, bs.reported);
            // Interval strategy never scans non-matching entries.
            assert_eq!(is.scanned, is.reported);
        }
    }

    #[test]
    fn bigmin_strategy_beats_full_scan_on_small_boxes() {
        let grid = Grid::<2>::new(4).unwrap(); // 16×16
        let idx = SfcIndex::build(ZCurve::over(grid), random_records(grid, 1_000, 4));
        let bx = BoxRegion::new(Point::new([3, 3]), Point::new([6, 6]));
        let (_, full) = idx.query_box_full_scan(&bx);
        let (_, bm) = idx.query_box_bigmin(&bx);
        assert!(
            bm.scanned < full.scanned / 4,
            "bigmin scanned {} vs full {}",
            bm.scanned,
            full.scanned
        );
        assert!(
            bm.blocks_decoded <= full.blocks_decoded,
            "bigmin decoded {} blocks vs full scan's {}",
            bm.blocks_decoded,
            full.blocks_decoded
        );
    }

    #[test]
    fn interval_strategy_works_for_hilbert() {
        let grid = Grid::<2>::new(3).unwrap();
        let idx = SfcIndex::build(HilbertCurve::over(grid), random_records(grid, 150, 5));
        let bx = BoxRegion::new(Point::new([1, 1]), Point::new([5, 4]));
        let (hits, stats) = idx.query_box_intervals(&bx);
        let (full, _) = idx.query_box_full_scan(&bx);
        assert_eq!(hits.len(), full.len());
        assert_eq!(stats.overscan(), 1.0);
        for e in hits {
            assert!(bx.contains(&e.point));
        }
    }

    #[test]
    fn knn_matches_linear_scan_for_every_curve() {
        let grid = Grid::<2>::new(3).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let records = random_records(grid, 120, 7);
        macro_rules! check_curve {
            ($curve:expr) => {
                let idx = SfcIndex::build($curve, records.clone());
                for _ in 0..30 {
                    let q = grid.random_cell(&mut rng);
                    for k in [1usize, 3, 8] {
                        let (got, stats) = idx.knn(q, k, 4);
                        let want = idx.knn_linear(q, k);
                        let gd: Vec<u64> = got.iter().map(|e| q.euclidean_sq(&e.point)).collect();
                        let wd: Vec<u64> = want.iter().map(|e| q.euclidean_sq(&e.point)).collect();
                        assert_eq!(gd, wd, "k={k} q={q}");
                        assert_eq!(stats.reported, k.min(records.len()) as u64);
                    }
                }
            };
        }
        check_curve!(ZCurve::over(grid));
        check_curve!(HilbertCurve::over(grid));
        check_curve!(sfc_core::SimpleCurve::over(grid));
    }

    #[test]
    fn knn_with_fewer_records_than_k() {
        let grid = Grid::<2>::new(2).unwrap();
        let idx = SfcIndex::build(ZCurve::over(grid), vec![(Point::new([1, 1]), 0usize)]);
        let (got, _) = idx.knn(Point::new([0, 0]), 5, 2);
        assert_eq!(got.len(), 1);
        let empty: SfcIndex<2, usize, _> = SfcIndex::build(ZCurve::over(grid), vec![]);
        let (none, _) = empty.knn(Point::new([0, 0]), 3, 2);
        assert!(none.is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn lower_stretch_curve_needs_no_more_knn_work() {
        // The punchline experiment in miniature: average scanned entries for
        // kNN under Hilbert should not exceed the simple curve's (slab
        // layouts make distant cells key-adjacent).
        let grid = Grid::<2>::new(4).unwrap();
        let records = random_records(grid, 400, 8);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let queries: Vec<Point<2>> = (0..40).map(|_| grid.random_cell(&mut rng)).collect();
        let hilbert = SfcIndex::build(HilbertCurve::over(grid), records.clone());
        let simple = SfcIndex::build(sfc_core::SimpleCurve::over(grid), records.clone());
        let th = queries
            .iter()
            .map(|q| hilbert.knn(*q, 5, 8).1.scanned)
            .sum::<u64>();
        let ts = queries
            .iter()
            .map(|q| simple.knn(*q, 5, 8).1.scanned)
            .sum::<u64>();
        assert!(th <= ts, "hilbert {th} > simple {ts}");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn build_rejects_out_of_bounds_records() {
        let grid = Grid::<2>::new(1).unwrap();
        SfcIndex::build(ZCurve::over(grid), vec![(Point::new([5, 5]), 0usize)]);
    }

    #[test]
    fn compressed_format_shrinks_the_uncompressed_footprint() {
        // The headline claim in miniature: packed blocks + dense payloads
        // cost well under half the naive SoA bytes.
        let grid = Grid::<2>::new(6).unwrap(); // 64×64
        let idx = SfcIndex::build(ZCurve::over(grid), random_records(grid, 4_000, 11));
        let naive = idx.len()
            * (std::mem::size_of::<CurveIndex>()
                + std::mem::size_of::<Point<2>>()
                + std::mem::size_of::<usize>());
        assert!(
            idx.heap_bytes() * 2 <= naive,
            "compressed {} vs naive {naive}",
            idx.heap_bytes()
        );
    }

    #[test]
    fn radix_sort_perm_is_stable_and_correct_across_widths() {
        // Exercise multi-pass keys (> 8 bits) and the tiny-input fallback.
        for n in [0usize, 1, 5, 63, 64, 65, 1000] {
            let keys: Vec<CurveIndex> = (0..n)
                .map(|i| ((i as u128).wrapping_mul(0x9E37_79B9) >> 3) % 1021)
                .collect();
            let perm = radix_sort_perm(&keys, 32);
            assert_eq!(perm.len(), n);
            let mut seen = vec![false; n];
            for &i in &perm {
                assert!(!seen[i as usize], "duplicate index {i}");
                seen[i as usize] = true;
            }
            for w in perm.windows(2) {
                let (a, b) = (w[0] as usize, w[1] as usize);
                assert!(keys[a] <= keys[b], "order violated");
                if keys[a] == keys[b] {
                    assert!(a < b, "stability violated for equal keys");
                }
            }
        }
    }
}
