//! The diagonal (Cantor / boustrophedon-diagonal) curve.
//!
//! Cells are ordered by anti-diagonal `s = x₁ + x₂`, alternating the
//! direction of traversal within each diagonal (the two-dimensional
//! analogue of Cantor's pairing enumeration, restricted to the grid).
//! Another classical baseline from the comparative-study literature
//! (paper reference [1]). Diagonal neighbors along the walk are at
//! Manhattan distance 2, so the curve is *not* continuous, and its
//! stretch behaviour differs from both the row-major and recursive
//! families — a useful extra point in the survey.

use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::grid::Grid;
use crate::point::Point;
use crate::CurveIndex;

/// The two-dimensional diagonal (Cantor) curve on the grid of side `2^k`.
///
/// ```
/// use sfc_core::{DiagonalCurve, Point, SpaceFillingCurve};
/// let c = DiagonalCurve::new(1).unwrap();
/// // Diagonals: {(0,0)}, {(0,1),(1,0)} (walked downward), {(1,1)}.
/// assert_eq!(c.index_of(Point::new([0, 0])), 0);
/// assert_eq!(c.index_of(Point::new([0, 1])), 1);
/// assert_eq!(c.index_of(Point::new([1, 0])), 2);
/// assert_eq!(c.index_of(Point::new([1, 1])), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagonalCurve {
    grid: Grid<2>,
}

impl DiagonalCurve {
    /// Creates the diagonal curve over the grid of side `2^k`.
    pub fn new(k: u32) -> Result<Self, SfcError> {
        Ok(Self {
            grid: Grid::new(k)?,
        })
    }

    /// Creates the diagonal curve over an existing grid.
    pub fn over(grid: Grid<2>) -> Self {
        Self { grid }
    }

    /// Number of cells on anti-diagonal `s` (`0 ≤ s ≤ 2(side−1)`).
    #[inline]
    fn diag_len(&self, s: u128) -> u128 {
        let side = self.grid.side() as u128;
        if s < side {
            s + 1
        } else {
            2 * side - 1 - s
        }
    }

    /// Number of cells on diagonals before `s`.
    fn cells_before_diag(&self, s: u128) -> u128 {
        let side = self.grid.side() as u128;
        if s <= side {
            s * (s + 1) / 2
        } else {
            let n = self.grid.n();
            let rem = 2 * side - 1 - s; // diagonals s..2(side−1) mirror 0..
            n - rem * (rem + 1) / 2
        }
    }
}

impl SpaceFillingCurve<2> for DiagonalCurve {
    fn grid(&self) -> Grid<2> {
        self.grid
    }

    fn index_of(&self, p: Point<2>) -> CurveIndex {
        let side = self.grid.side() as u128;
        let x = u128::from(p.coord(0));
        let y = u128::from(p.coord(1));
        let s = x + y;
        // Position along the diagonal measured by x₂, from its minimum on
        // this diagonal.
        let y_min = s.saturating_sub(side - 1);
        let pos_up = y - y_min; // direction of increasing x₂
        let len = self.diag_len(s);
        let offset = if s % 2 == 0 { pos_up } else { len - 1 - pos_up };
        self.cells_before_diag(s) + offset
    }

    fn point_of(&self, idx: CurveIndex) -> Point<2> {
        let side = self.grid.side() as u128;
        // Binary search the diagonal.
        let mut lo = 0u128;
        let mut hi = 2 * (side - 1) + 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.cells_before_diag(mid) <= idx {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let s = lo;
        let len = self.diag_len(s);
        let offset = idx - self.cells_before_diag(s);
        let pos_up = if s.is_multiple_of(2) {
            offset
        } else {
            len - 1 - offset
        };
        let y_min = s.saturating_sub(side - 1);
        let y = y_min + pos_up;
        let x = s - y;
        Point::new([x as u32, y as u32])
    }

    fn name(&self) -> String {
        "diagonal".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_bijective() {
        for k in 0..=4u32 {
            DiagonalCurve::new(k).unwrap().validate_bijection().unwrap();
        }
    }

    #[test]
    fn four_by_four_traversal_zigzags() {
        let c = DiagonalCurve::new(2).unwrap();
        let order: Vec<_> = c.traverse().collect();
        assert_eq!(order[0], Point::new([0, 0]));
        // s = 1 (odd): walked with x₂ decreasing → (0,1) then (1,0).
        assert_eq!(order[1], Point::new([0, 1]));
        assert_eq!(order[2], Point::new([1, 0]));
        // s = 2 (even): x₂ increasing → (2,0), (1,1), (0,2).
        assert_eq!(order[3], Point::new([2, 0]));
        assert_eq!(order[4], Point::new([1, 1]));
        assert_eq!(order[5], Point::new([0, 2]));
        // Last cell.
        assert_eq!(order[15], Point::new([3, 3]));
    }

    #[test]
    fn diagonal_lengths_and_prefixes() {
        let c = DiagonalCurve::new(2).unwrap(); // side 4
        let lens: Vec<u128> = (0..=6).map(|s| c.diag_len(s)).collect();
        assert_eq!(lens, vec![1, 2, 3, 4, 3, 2, 1]);
        let total: u128 = lens.iter().sum();
        assert_eq!(total, 16);
        assert_eq!(c.cells_before_diag(0), 0);
        assert_eq!(c.cells_before_diag(4), 10);
        assert_eq!(c.cells_before_diag(6), 15);
    }

    #[test]
    fn consecutive_cells_are_at_manhattan_distance_at_most_two() {
        // The zig-zag makes successive cells either within one diagonal
        // (distance 2) or at a diagonal turn (distance 1).
        let c = DiagonalCurve::new(3).unwrap();
        let order: Vec<_> = c.traverse().collect();
        for w in order.windows(2) {
            let d = w[0].manhattan(&w[1]);
            assert!(d <= 2, "{} -> {} at distance {d}", w[0], w[1]);
        }
    }

    #[test]
    fn not_continuous_but_close() {
        assert!(!DiagonalCurve::new(2).unwrap().is_continuous());
    }
}
