//! Cells of the `d`-dimensional universe and the distances between them.
//!
//! The paper works with the Manhattan metric `Δ` (Section III) and, for the
//! all-pairs stretch, also the Euclidean metric `Δ_E` (Section V.B). Both are
//! provided here, plus Chebyshev distance (useful for box queries in
//! `sfc-index`).

use std::fmt;

/// A cell of the `d`-dimensional universe: a tuple `(x_1, …, x_d)` with
/// `0 ≤ x_i < 2^k`.
///
/// Axis `i` (0-based) corresponds to the paper's dimension `i+1`.
///
/// `Point` is `Copy` and stores its coordinates inline (`[u32; D]`), so the
/// hot metric loops never allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point<const D: usize> {
    coords: [u32; D],
}

// serde's derive does not support const-generic arrays (`Deserialize` is
// only provided for lengths 0..=32), so the impls are written by hand:
// a point serializes as a plain coordinate sequence.
#[cfg(feature = "serde")]
impl<const D: usize> serde::Serialize for Point<D> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeTuple;
        let mut tup = serializer.serialize_tuple(D)?;
        for c in &self.coords {
            tup.serialize_element(c)?;
        }
        tup.end()
    }
}

#[cfg(feature = "serde")]
impl<'de, const D: usize> serde::Deserialize<'de> for Point<D> {
    fn deserialize<De: serde::Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
        struct CoordsVisitor<const D: usize>;
        impl<'de, const D: usize> serde::de::Visitor<'de> for CoordsVisitor<D> {
            type Value = Point<D>;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "a sequence of {D} coordinates")
            }

            fn visit_seq<A: serde::de::SeqAccess<'de>>(
                self,
                mut seq: A,
            ) -> Result<Point<D>, A::Error> {
                let mut coords = [0u32; D];
                for (i, c) in coords.iter_mut().enumerate() {
                    *c = seq
                        .next_element()?
                        .ok_or_else(|| serde::de::Error::invalid_length(i, &self))?;
                }
                Ok(Point::new(coords))
            }
        }
        deserializer.deserialize_tuple(D, CoordsVisitor::<D>)
    }
}

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(coords: [u32; D]) -> Self {
        Self { coords }
    }

    /// The origin `(0, …, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Self { coords: [0; D] }
    }

    /// The coordinates as an array.
    #[inline]
    pub const fn coords(&self) -> [u32; D] {
        self.coords
    }

    /// The coordinate along `axis` (0-based; the paper's dimension `axis+1`).
    ///
    /// # Panics
    /// Panics if `axis >= D`.
    #[inline]
    pub fn coord(&self, axis: usize) -> u32 {
        self.coords[axis]
    }

    /// Returns a copy with the coordinate along `axis` replaced by `value`.
    #[inline]
    #[must_use]
    pub fn with_coord(mut self, axis: usize, value: u32) -> Self {
        self.coords[axis] = value;
        self
    }

    /// Returns the neighbor offset by `+1` along `axis`, or `None` on
    /// overflow of the coordinate type (grid bounds are checked by
    /// [`Grid`](crate::Grid), not here).
    #[inline]
    pub fn step_up(&self, axis: usize) -> Option<Self> {
        let c = self.coords[axis].checked_add(1)?;
        Some(self.with_coord(axis, c))
    }

    /// Returns the neighbor offset by `−1` along `axis`, or `None` if the
    /// coordinate is already `0`.
    #[inline]
    pub fn step_down(&self, axis: usize) -> Option<Self> {
        let c = self.coords[axis].checked_sub(1)?;
        Some(self.with_coord(axis, c))
    }

    /// Manhattan distance `Δ(α, β) = Σ_i |α_i − β_i|` (paper, Section III).
    #[inline]
    pub fn manhattan(&self, other: &Self) -> u64 {
        let mut sum = 0u64;
        for i in 0..D {
            sum += u64::from(self.coords[i].abs_diff(other.coords[i]));
        }
        sum
    }

    /// Squared Euclidean distance `Σ_i (α_i − β_i)²`, exact in `u64`.
    #[inline]
    pub fn euclidean_sq(&self, other: &Self) -> u64 {
        let mut sum = 0u64;
        for i in 0..D {
            let diff = u64::from(self.coords[i].abs_diff(other.coords[i]));
            sum += diff * diff;
        }
        sum
    }

    /// Euclidean distance `Δ_E(α, β)` (paper, Section V.B).
    #[inline]
    pub fn euclidean(&self, other: &Self) -> f64 {
        (self.euclidean_sq(other) as f64).sqrt()
    }

    /// Chebyshev (L∞) distance `max_i |α_i − β_i|`.
    #[inline]
    pub fn chebyshev(&self, other: &Self) -> u32 {
        let mut max = 0u32;
        for i in 0..D {
            max = max.max(self.coords[i].abs_diff(other.coords[i]));
        }
        max
    }

    /// `true` iff the two cells are nearest neighbors in the Manhattan
    /// metric, i.e. `Δ(α, β) = 1` (the paper's relation defining `N(α)` and
    /// the edge set `NN_d`).
    #[inline]
    pub fn is_nearest_neighbor_of(&self, other: &Self) -> bool {
        self.manhattan(other) == 1
    }

    /// The single axis along which two points differ, if they differ along
    /// exactly one axis (regardless of by how much); `None` otherwise.
    pub fn differing_axis(&self, other: &Self) -> Option<usize> {
        let mut found = None;
        for i in 0..D {
            if self.coords[i] != other.coords[i] {
                if found.is_some() {
                    return None;
                }
                found = Some(i);
            }
        }
        found
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl<const D: usize> From<[u32; D]> for Point<D> {
    #[inline]
    fn from(coords: [u32; D]) -> Self {
        Self::new(coords)
    }
}

impl<const D: usize> From<Point<D>> for [u32; D] {
    #[inline]
    fn from(p: Point<D>) -> Self {
        p.coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_matches_paper_example() {
        // Figure 2 of the paper: α = (1,1), β = (3,5) has Δ = 2 + 4 = 6.
        let a = Point::new([1, 1]);
        let b = Point::new([3, 5]);
        assert_eq!(a.manhattan(&b), 6);
        assert_eq!(b.manhattan(&a), 6);
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let a = Point::new([0, 0]);
        let b = Point::new([3, 4]);
        assert_eq!(a.euclidean_sq(&b), 25);
        assert!((a.euclidean(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_is_max_axis_difference() {
        let a = Point::new([1, 9, 4]);
        let b = Point::new([4, 7, 4]);
        assert_eq!(a.chebyshev(&b), 3);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new([5, 6, 7, 8]);
        assert_eq!(p.manhattan(&p), 0);
        assert_eq!(p.euclidean_sq(&p), 0);
        assert_eq!(p.chebyshev(&p), 0);
    }

    #[test]
    fn nearest_neighbor_predicate() {
        let p = Point::new([2, 2]);
        assert!(p.is_nearest_neighbor_of(&Point::new([3, 2])));
        assert!(p.is_nearest_neighbor_of(&Point::new([2, 1])));
        assert!(!p.is_nearest_neighbor_of(&Point::new([3, 3])));
        assert!(!p.is_nearest_neighbor_of(&p));
    }

    #[test]
    fn step_up_and_down() {
        let p = Point::new([0, 7]);
        assert_eq!(p.step_up(0), Some(Point::new([1, 7])));
        assert_eq!(p.step_down(0), None);
        assert_eq!(p.step_down(1), Some(Point::new([0, 6])));
        let m = Point::new([u32::MAX]);
        assert_eq!(m.step_up(0), None);
    }

    #[test]
    fn differing_axis_detects_single_axis() {
        let p = Point::new([1, 2, 3]);
        assert_eq!(p.differing_axis(&Point::new([1, 5, 3])), Some(1));
        assert_eq!(p.differing_axis(&Point::new([1, 2, 3])), None);
        assert_eq!(p.differing_axis(&Point::new([0, 2, 4])), None);
    }

    #[test]
    fn display_formats_tuple() {
        assert_eq!(Point::new([1, 2, 3]).to_string(), "(1, 2, 3)");
        assert_eq!(Point::new([9]).to_string(), "(9)");
    }

    #[test]
    fn conversions_roundtrip() {
        let arr = [4u32, 5, 6];
        let p: Point<3> = arr.into();
        let back: [u32; 3] = p.into();
        assert_eq!(arr, back);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip_as_coordinate_tuple() {
        use serde_test::{assert_tokens, Token};
        let p = Point::new([3u32, 7, 11]);
        assert_tokens(
            &p,
            &[
                Token::Tuple { len: 3 },
                Token::U32(3),
                Token::U32(7),
                Token::U32(11),
                Token::TupleEnd,
            ],
        );
    }

    #[test]
    fn euclidean_le_manhattan_and_manhattan_le_sqrt_d_euclidean() {
        // Standard norm inequalities used implicitly in the paper's
        // Proposition 3 proof: Δ_E ≤ Δ ≤ √d · Δ_E.
        let a = Point::new([1, 2, 3]);
        let b = Point::new([4, 0, 9]);
        let man = a.manhattan(&b) as f64;
        let euc = a.euclidean(&b);
        assert!(euc <= man + 1e-12);
        assert!(man <= 3f64.sqrt() * euc + 1e-12);
    }
}
