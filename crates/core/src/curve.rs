//! The space filling curve abstraction.
//!
//! The paper defines an SFC as **any bijection** `π : U → {0, …, n−1}`
//! (Section III) — including self-intersecting orders such as Figure 1's
//! `π₂`. [`SpaceFillingCurve`] captures exactly that contract; bijectivity
//! of an implementation can be checked exhaustively with
//! [`SpaceFillingCurve::validate_bijection`].

use crate::error::SfcError;
use crate::grid::Grid;
use crate::point::Point;
use crate::{index_distance, CurveIndex};
use std::fmt;

/// A space filling curve: a bijection from the cells of a [`Grid`] onto
/// `{0, 1, …, n−1}`.
///
/// Implementations must satisfy, for every in-bounds point `p` and every
/// index `i < n`:
///
/// * `point_of(index_of(p)) == p` and `index_of(point_of(i)) == i`
///   (bijectivity);
/// * `index_of(p) < n`.
///
/// Out-of-bounds inputs may panic or return arbitrary values; callers are
/// expected to stay within [`Self::grid`].
pub trait SpaceFillingCurve<const D: usize> {
    /// The universe this curve fills.
    fn grid(&self) -> Grid<D>;

    /// The curve index (the paper's `π(α)`) of a cell.
    fn index_of(&self, p: Point<D>) -> CurveIndex;

    /// The cell at a given curve position (the inverse bijection `π⁻¹`).
    fn point_of(&self, idx: CurveIndex) -> Point<D>;

    /// Encodes a batch of points, appending one index per point to `out`
    /// (after clearing it).
    ///
    /// Semantically identical to mapping [`Self::index_of`] over `points`;
    /// implementations override it with table-driven kernels that amortize
    /// per-call overhead and keep the loop free of per-element branches
    /// (see [`ZCurve`](crate::ZCurve) and
    /// [`HilbertCurve`](crate::HilbertCurve)). This is the entry point all
    /// bulk workloads (index build, metric sweeps, n-body decomposition)
    /// go through.
    fn index_of_batch(&self, points: &[Point<D>], out: &mut Vec<CurveIndex>) {
        out.clear();
        out.reserve(points.len());
        out.extend(points.iter().map(|&p| self.index_of(p)));
    }

    /// Decodes a batch of indices, appending one point per index to `out`
    /// (after clearing it). Semantically identical to mapping
    /// [`Self::point_of`] over `indices`.
    fn point_of_batch(&self, indices: &[CurveIndex], out: &mut Vec<Point<D>>) {
        out.clear();
        out.reserve(indices.len());
        out.extend(indices.iter().map(|&i| self.point_of(i)));
    }

    /// A short human-readable name ("Z", "Hilbert", …) used in reports.
    fn name(&self) -> String {
        "unnamed".to_string()
    }

    /// The Morton order backing this curve, if this *is* the Z curve
    /// (possibly behind a reference or smart pointer).
    ///
    /// Generic code uses this to unlock Morton-only machinery — BIGMIN
    /// range jumps, `Z(lo)..Z(hi)` key-range bounds — at runtime without
    /// needing a `ZCurve`-specialised impl block. Every other curve keeps
    /// the default `None` and falls back to curve-agnostic strategies.
    fn as_morton(&self) -> Option<&crate::morton::ZCurve<D>> {
        None
    }

    /// The paper's `Δπ(α, β) = |π(α) − π(β)|`: the distance between two
    /// cells *along the curve*.
    #[inline]
    fn curve_distance(&self, a: Point<D>, b: Point<D>) -> CurveIndex {
        index_distance(self.index_of(a), self.index_of(b))
    }

    /// Iterates all cells in curve order (`π⁻¹(0), π⁻¹(1), …`).
    fn traverse(&self) -> CurveOrderIter<'_, D, Self>
    where
        Self: Sized,
    {
        CurveOrderIter {
            curve: self,
            next: 0,
            n: self.grid().n(),
        }
    }

    /// Exhaustively verifies that this curve is a bijection onto
    /// `{0, …, n−1}`. Intended for tests and for validating user-supplied
    /// curves; cost is `O(n)` time and `O(n)` bits of memory.
    fn validate_bijection(&self) -> Result<(), SfcError> {
        let n = self.grid().n();
        let n_usize = usize::try_from(n).map_err(|_| SfcError::TooManyCells { n })?;
        let mut seen = vec![false; n_usize];
        for p in self.grid().cells() {
            let idx = self.index_of(p);
            if idx >= n {
                return Err(SfcError::NotABijection {
                    detail: format!("index_of({p}) = {idx} out of range (n = {n})"),
                });
            }
            let slot = &mut seen[idx as usize];
            if *slot {
                return Err(SfcError::NotABijection {
                    detail: format!("index {idx} assigned to more than one cell"),
                });
            }
            *slot = true;
            let back = self.point_of(idx);
            if back != p {
                return Err(SfcError::NotABijection {
                    detail: format!("point_of(index_of({p})) = {back} ≠ {p}"),
                });
            }
        }
        Ok(())
    }

    /// `true` iff consecutive curve positions are always nearest neighbors
    /// in the grid — the classical "continuous curve" property. The paper's
    /// general definition does **not** require this (e.g. the Z curve and
    /// Figure 1's `π₂` violate it); Hilbert and snake satisfy it.
    ///
    /// Cost is `O(n)`; intended for tests and small grids.
    fn is_continuous(&self) -> bool {
        let n = self.grid().n();
        let mut prev = self.point_of(0);
        let mut idx = 1u128;
        while idx < n {
            let cur = self.point_of(idx);
            if prev.manhattan(&cur) != 1 {
                return false;
            }
            prev = cur;
            idx += 1;
        }
        true
    }
}

/// Iterator over the cells of a curve in curve order.
pub struct CurveOrderIter<'a, const D: usize, C: SpaceFillingCurve<D> + ?Sized> {
    curve: &'a C,
    next: CurveIndex,
    n: u128,
}

impl<const D: usize, C: SpaceFillingCurve<D> + ?Sized> fmt::Debug for CurveOrderIter<'_, D, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CurveOrderIter")
            .field("next", &self.next)
            .field("n", &self.n)
            .finish()
    }
}

impl<const D: usize, C: SpaceFillingCurve<D> + ?Sized> Iterator for CurveOrderIter<'_, D, C> {
    type Item = Point<D>;

    fn next(&mut self) -> Option<Point<D>> {
        if self.next >= self.n {
            return None;
        }
        let p = self.curve.point_of(self.next);
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = usize::try_from(self.n - self.next).ok();
        (rem.unwrap_or(usize::MAX), rem)
    }
}

/// A heap-allocated, dynamically dispatched curve. Useful when sweeping over
/// several curve families with one code path (as the experiment harness
/// does).
pub type BoxedCurve<const D: usize> = Box<dyn SpaceFillingCurve<D> + Send + Sync>;

/// A reference-counted, dynamically dispatched curve: cheap to clone, so
/// one curve instance can back many structures at once (e.g. every sorted
/// run of an LSM-style store).
pub type SharedCurve<const D: usize> = std::sync::Arc<dyn SpaceFillingCurve<D> + Send + Sync>;

macro_rules! impl_curve_for_smart_pointer {
    ($($ptr:ident :: $name:ident),*) => {$(
        impl<const D: usize, C: SpaceFillingCurve<D> + ?Sized> SpaceFillingCurve<D>
            for std::$ptr::$name<C>
        {
            fn grid(&self) -> Grid<D> {
                (**self).grid()
            }
            fn index_of(&self, p: Point<D>) -> CurveIndex {
                (**self).index_of(p)
            }
            fn point_of(&self, idx: CurveIndex) -> Point<D> {
                (**self).point_of(idx)
            }
            fn index_of_batch(&self, points: &[Point<D>], out: &mut Vec<CurveIndex>) {
                (**self).index_of_batch(points, out)
            }
            fn point_of_batch(&self, indices: &[CurveIndex], out: &mut Vec<Point<D>>) {
                (**self).point_of_batch(indices, out)
            }
            fn name(&self) -> String {
                (**self).name()
            }
            fn as_morton(&self) -> Option<&crate::morton::ZCurve<D>> {
                (**self).as_morton()
            }
        }
    )*};
}

// `Arc<C>` / `Rc<C>` delegate like `&C` does: clone-shareable curve handles
// satisfy the same bound as the curve itself, which is what lets multi-run
// structures hold "one curve per run" without duplicating table state.
impl_curve_for_smart_pointer!(sync::Arc, rc::Rc);

impl<const D: usize> SpaceFillingCurve<D> for BoxedCurve<D> {
    fn grid(&self) -> Grid<D> {
        (**self).grid()
    }
    fn index_of(&self, p: Point<D>) -> CurveIndex {
        (**self).index_of(p)
    }
    fn point_of(&self, idx: CurveIndex) -> Point<D> {
        (**self).point_of(idx)
    }
    fn index_of_batch(&self, points: &[Point<D>], out: &mut Vec<CurveIndex>) {
        (**self).index_of_batch(points, out)
    }
    fn point_of_batch(&self, indices: &[CurveIndex], out: &mut Vec<Point<D>>) {
        (**self).point_of_batch(indices, out)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn as_morton(&self) -> Option<&crate::morton::ZCurve<D>> {
        (**self).as_morton()
    }
}

impl<const D: usize, C: SpaceFillingCurve<D> + ?Sized> SpaceFillingCurve<D> for &C {
    fn grid(&self) -> Grid<D> {
        (**self).grid()
    }
    fn index_of(&self, p: Point<D>) -> CurveIndex {
        (**self).index_of(p)
    }
    fn point_of(&self, idx: CurveIndex) -> Point<D> {
        (**self).point_of(idx)
    }
    fn index_of_batch(&self, points: &[Point<D>], out: &mut Vec<CurveIndex>) {
        (**self).index_of_batch(points, out)
    }
    fn point_of_batch(&self, indices: &[CurveIndex], out: &mut Vec<Point<D>>) {
        (**self).point_of_batch(indices, out)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn as_morton(&self) -> Option<&crate::morton::ZCurve<D>> {
        (**self).as_morton()
    }
}

/// The analytic curve families shipped with this crate.
///
/// [`CurveKind::build`] constructs a boxed instance, which is how the
/// experiment harness sweeps "every curve" uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CurveKind {
    /// The Z curve / Morton order (paper, Section IV.B).
    Z,
    /// The paper's "simple curve" (Eq. 8): row-major order.
    Simple,
    /// Boustrophedon (snake) order: row-major with alternating direction.
    Snake,
    /// The Gray-code curve of Faloutsos.
    Gray,
    /// The d-dimensional Hilbert curve.
    Hilbert,
}

impl CurveKind {
    /// All analytic curve kinds, in the order reports present them.
    pub const ALL: [CurveKind; 5] = [
        CurveKind::Z,
        CurveKind::Simple,
        CurveKind::Snake,
        CurveKind::Gray,
        CurveKind::Hilbert,
    ];

    /// Constructs the curve of this kind over the grid of side `2^k`.
    pub fn build<const D: usize>(self, k: u32) -> Result<BoxedCurve<D>, SfcError> {
        Ok(match self {
            CurveKind::Z => Box::new(crate::morton::ZCurve::<D>::new(k)?),
            CurveKind::Simple => Box::new(crate::simple::SimpleCurve::<D>::new(k)?),
            CurveKind::Snake => Box::new(crate::snake::SnakeCurve::<D>::new(k)?),
            CurveKind::Gray => Box::new(crate::gray::GrayCurve::<D>::new(k)?),
            CurveKind::Hilbert => Box::new(crate::hilbert::HilbertCurve::<D>::new(k)?),
        })
    }

    /// The display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            CurveKind::Z => "Z",
            CurveKind::Simple => "simple",
            CurveKind::Snake => "snake",
            CurveKind::Gray => "gray",
            CurveKind::Hilbert => "hilbert",
        }
    }
}

impl fmt::Display for CurveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::ZCurve;
    use crate::simple::SimpleCurve;

    #[test]
    fn every_builtin_curve_is_a_bijection_on_small_grids() {
        for kind in CurveKind::ALL {
            for k in 0..=3 {
                let c2 = kind.build::<2>(k).unwrap();
                c2.validate_bijection()
                    .unwrap_or_else(|e| panic!("{kind} d=2 k={k}: {e}"));
                let c3 = kind.build::<3>(k.min(2)).unwrap();
                c3.validate_bijection()
                    .unwrap_or_else(|e| panic!("{kind} d=3: {e}"));
            }
        }
    }

    #[test]
    fn traverse_visits_cells_in_index_order() {
        let z = ZCurve::<2>::new(2).unwrap();
        for (i, p) in z.traverse().enumerate() {
            assert_eq!(z.index_of(p), i as u128);
        }
        assert_eq!(z.traverse().count(), 16);
    }

    #[test]
    fn traverse_size_hint() {
        let z = ZCurve::<2>::new(1).unwrap();
        let mut it = z.traverse();
        assert_eq!(it.size_hint(), (4, Some(4)));
        it.next();
        assert_eq!(it.size_hint(), (3, Some(3)));
    }

    #[test]
    fn curve_distance_is_symmetric() {
        let z = ZCurve::<2>::new(3).unwrap();
        let a = Point::new([1, 5]);
        let b = Point::new([6, 2]);
        assert_eq!(z.curve_distance(a, b), z.curve_distance(b, a));
        assert_eq!(z.curve_distance(a, a), 0);
    }

    #[test]
    fn continuity_classification_matches_theory() {
        // Snake and Hilbert are continuous; Z, simple (for k≥1, d≥2) and
        // gray are not.
        assert!(CurveKind::Snake.build::<2>(3).unwrap().is_continuous());
        assert!(CurveKind::Hilbert.build::<2>(3).unwrap().is_continuous());
        assert!(CurveKind::Hilbert.build::<3>(2).unwrap().is_continuous());
        assert!(!CurveKind::Z.build::<2>(2).unwrap().is_continuous());
        assert!(!CurveKind::Simple.build::<2>(2).unwrap().is_continuous());
        // In one dimension every monotone order is continuous.
        assert!(CurveKind::Simple.build::<1>(4).unwrap().is_continuous());
    }

    #[test]
    fn boxed_curve_delegates() {
        let boxed: BoxedCurve<2> = Box::new(SimpleCurve::<2>::new(2).unwrap());
        assert_eq!(boxed.grid().n(), 16);
        let p = Point::new([3, 1]);
        assert_eq!(boxed.index_of(p), 7);
        assert_eq!(boxed.point_of(7), p);
        assert_eq!(boxed.name(), "simple");
        boxed.validate_bijection().unwrap();
    }

    #[test]
    fn reference_to_curve_implements_trait() {
        let z = ZCurve::<2>::new(2).unwrap();
        fn takes_curve<C: SpaceFillingCurve<2>>(c: C) -> u128 {
            c.index_of(Point::new([0, 0]))
        }
        assert_eq!(takes_curve(z), 0);
    }

    #[test]
    fn shared_curve_handles_delegate() {
        let shared: SharedCurve<2> = std::sync::Arc::new(ZCurve::<2>::new(2).unwrap());
        let clone = shared.clone();
        assert_eq!(shared.grid().n(), 16);
        let p = Point::new([2, 3]);
        assert_eq!(clone.index_of(p), shared.index_of(p));
        assert_eq!(clone.point_of(13), shared.point_of(13));
        assert_eq!(shared.name(), "Z");
        let rc = std::rc::Rc::new(SimpleCurve::<2>::new(2).unwrap());
        assert_eq!(rc.index_of(Point::new([3, 1])), 7);
        let mut out = Vec::new();
        rc.index_of_batch(&[Point::new([3, 1])], &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn curve_kind_display_names() {
        assert_eq!(CurveKind::Z.to_string(), "Z");
        assert_eq!(CurveKind::Hilbert.to_string(), "hilbert");
        assert_eq!(CurveKind::ALL.len(), 5);
    }
}
