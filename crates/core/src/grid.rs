//! The universe: a `d`-dimensional grid of side `2^k` with `n = 2^{kd}` cells.
//!
//! Provides cell iteration (row-major), nearest-neighbor iteration (the
//! paper's `N(α)`), iteration over the edge set `NN_d`, and boundary
//! predicates used in the paper's `H₂` / `U₂` boundary analyses.

use crate::error::SfcError;
use crate::point::Point;
use rand::Rng;

/// The `d`-dimensional universe of side `2^k`.
///
/// `Grid` is a tiny `Copy` value (just `k`); all geometry is derived.
///
/// ```
/// use sfc_core::Grid;
/// let g = Grid::<2>::new(3).unwrap(); // the paper's 8×8 running example
/// assert_eq!(g.side(), 8);
/// assert_eq!(g.n(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Grid<const D: usize> {
    k: u32,
}

impl<const D: usize> Grid<D> {
    /// Creates the universe with side `2^k`.
    ///
    /// Fails if `D == 0`, if `k > 32` (coordinates are `u32`), or if the
    /// grid needs more than 127 index bits.
    pub fn new(k: u32) -> Result<Self, SfcError> {
        if D == 0 {
            return Err(SfcError::ZeroDimensions);
        }
        if k > 32 || (k as usize) * D > 127 {
            return Err(SfcError::GridTooLarge { k, d: D });
        }
        Ok(Self { k })
    }

    /// Creates the universe from its side length, which must be a power of
    /// two (the model's `d√n = 2^k` assumption).
    pub fn from_side(side: u64) -> Result<Self, SfcError> {
        if side == 0 || !side.is_power_of_two() {
            return Err(SfcError::SideNotPowerOfTwo { side });
        }
        Self::new(side.trailing_zeros())
    }

    /// Bits per coordinate (`k`).
    #[inline]
    pub const fn k(&self) -> u32 {
        self.k
    }

    /// The number of dimensions `d`.
    #[inline]
    pub const fn d(&self) -> usize {
        D
    }

    /// Side length `2^k` (the paper's `d√n`).
    #[inline]
    pub const fn side(&self) -> u64 {
        1u64 << self.k
    }

    /// Number of cells `n = 2^{kd}`.
    #[inline]
    pub const fn n(&self) -> u128 {
        1u128 << (self.k as usize * D)
    }

    /// `true` iff the point lies inside the universe.
    #[inline]
    pub fn contains(&self, p: &Point<D>) -> bool {
        let side = self.side();
        p.coords().iter().all(|&c| u64::from(c) < side)
    }

    /// `true` iff the cell lies on the boundary of the universe, i.e. some
    /// coordinate is `0` or `2^k − 1`. These are the cells of the paper's
    /// set `U₂` (Theorem 3 proof); interior cells form `U₁`.
    #[inline]
    pub fn is_boundary(&self, p: &Point<D>) -> bool {
        let max = (self.side() - 1) as u32;
        p.coords().iter().any(|&c| c == 0 || c == max)
    }

    /// Number of nearest neighbors `|N(α)|`. The paper notes
    /// `d ≤ |N(α)| ≤ 2d`; interior cells have exactly `2d`.
    #[inline]
    pub fn neighbor_count(&self, p: &Point<D>) -> usize {
        let max = (self.side() - 1) as u32;
        let mut count = 0;
        for &c in p.coords().iter() {
            if c > 0 {
                count += 1;
            }
            if c < max {
                count += 1;
            }
        }
        count
    }

    /// Iterates the nearest neighbors `N(α)` of a cell (Manhattan distance
    /// exactly 1, in-bounds).
    #[inline]
    pub fn neighbors(&self, p: Point<D>) -> NeighborIter<D> {
        NeighborIter {
            grid: *self,
            center: p,
            axis: 0,
            up: false,
        }
    }

    /// Iterates all cells in row-major order (axis 0 fastest).
    #[inline]
    pub fn cells(&self) -> CellIter<D> {
        CellIter {
            grid: *self,
            next: Some(Point::origin()),
            remaining: self.n(),
        }
    }

    /// Iterates the unordered nearest-neighbor pairs `NN_d` — the "edges of
    /// length 1" of the universe. Each edge is yielded once as
    /// `(α, β, axis)` with `β = α + e_axis`.
    #[inline]
    pub fn nn_edges(&self) -> NnEdgeIter<D> {
        NnEdgeIter {
            cells: self.cells(),
            current: None,
            axis: 0,
        }
    }

    /// Total number of unordered nearest-neighbor pairs:
    /// `|NN_d| = d · (2^k − 1) · 2^{k(d−1)}`.
    pub fn nn_edge_count(&self) -> u128 {
        let per_axis = (self.side() as u128 - 1) * (self.n() / self.side() as u128);
        per_axis * D as u128
    }

    /// The row-major rank of a cell (what [`SimpleCurve`](crate::SimpleCurve)
    /// uses as its curve index): `Σ_i x_i · (2^k)^{i}` with axis 0 least
    /// significant — exactly the paper's Eq. 8 under the axis convention.
    #[inline]
    pub fn row_major_rank(&self, p: &Point<D>) -> u128 {
        let mut rank = 0u128;
        for axis in (0..D).rev() {
            rank = (rank << self.k) | u128::from(p.coord(axis));
        }
        rank
    }

    /// Inverse of [`row_major_rank`](Self::row_major_rank).
    #[inline]
    pub fn point_from_row_major(&self, mut rank: u128) -> Point<D> {
        let mask = (1u128 << self.k) - 1;
        let mut coords = [0u32; D];
        for c in coords.iter_mut() {
            *c = (rank & mask) as u32;
            rank >>= self.k;
        }
        Point::new(coords)
    }

    /// A uniformly random cell.
    pub fn random_cell<R: Rng + ?Sized>(&self, rng: &mut R) -> Point<D> {
        let side = self.side();
        let mut coords = [0u32; D];
        for c in coords.iter_mut() {
            *c = rng.gen_range(0..side) as u32;
        }
        Point::new(coords)
    }

    /// A uniformly random unordered nearest-neighbor pair `(α, β) ∈ NN_d`,
    /// returned as `(α, β, axis)` with `β = α + e_axis`.
    pub fn random_nn_edge<R: Rng + ?Sized>(&self, rng: &mut R) -> (Point<D>, Point<D>, usize) {
        let side = self.side();
        let axis = rng.gen_range(0..D);
        let mut coords = [0u32; D];
        for (i, c) in coords.iter_mut().enumerate() {
            if i == axis {
                *c = rng.gen_range(0..side - 1) as u32;
            } else {
                *c = rng.gen_range(0..side) as u32;
            }
        }
        let a = Point::new(coords);
        let b = a.step_up(axis).expect("in-bounds by construction");
        (a, b, axis)
    }

    /// A uniformly random ordered pair of *distinct* cells (an element of the
    /// paper's set `A'`).
    pub fn random_distinct_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> (Point<D>, Point<D>) {
        let a = self.random_cell(rng);
        loop {
            let b = self.random_cell(rng);
            if b != a {
                return (a, b);
            }
        }
    }
}

/// Iterator over all cells of a grid in row-major order.
#[derive(Debug, Clone)]
pub struct CellIter<const D: usize> {
    grid: Grid<D>,
    next: Option<Point<D>>,
    remaining: u128,
}

impl<const D: usize> Iterator for CellIter<D> {
    type Item = Point<D>;

    fn next(&mut self) -> Option<Point<D>> {
        let current = self.next?;
        self.remaining -= 1;
        // Odometer increment, axis 0 fastest.
        let max = (self.grid.side() - 1) as u32;
        let mut coords = current.coords();
        let mut carried = true;
        for c in coords.iter_mut() {
            if *c < max {
                *c += 1;
                carried = false;
                break;
            }
            *c = 0;
        }
        self.next = if carried {
            None
        } else {
            Some(Point::new(coords))
        };
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (r, usize::try_from(self.remaining).ok())
    }
}

/// Iterator over the nearest neighbors `N(α)` of a cell.
#[derive(Debug, Clone)]
pub struct NeighborIter<const D: usize> {
    grid: Grid<D>,
    center: Point<D>,
    axis: usize,
    up: bool,
}

impl<const D: usize> Iterator for NeighborIter<D> {
    type Item = Point<D>;

    fn next(&mut self) -> Option<Point<D>> {
        let max = (self.grid.side() - 1) as u32;
        while self.axis < D {
            let axis = self.axis;
            if !self.up {
                self.up = true;
                if self.center.coord(axis) > 0 {
                    return self.center.step_down(axis);
                }
            } else {
                self.axis += 1;
                self.up = false;
                if self.center.coord(axis) < max {
                    return self.center.step_up(axis);
                }
            }
        }
        None
    }
}

/// Iterator over the unordered nearest-neighbor edge set `NN_d`.
///
/// Yields `(α, β, axis)` with `β = α + e_axis`; each edge appears exactly
/// once.
#[derive(Debug, Clone)]
pub struct NnEdgeIter<const D: usize> {
    cells: CellIter<D>,
    current: Option<Point<D>>,
    axis: usize,
}

impl<const D: usize> Iterator for NnEdgeIter<D> {
    type Item = (Point<D>, Point<D>, usize);

    fn next(&mut self) -> Option<Self::Item> {
        let max = (self.cells.grid.side() - 1) as u32;
        loop {
            let cell = match self.current {
                Some(c) => c,
                None => {
                    self.current = Some(self.cells.next()?);
                    self.axis = 0;
                    self.current.unwrap()
                }
            };
            while self.axis < D {
                let axis = self.axis;
                self.axis += 1;
                if cell.coord(axis) < max {
                    let up = cell.step_up(axis).expect("in-bounds");
                    return Some((cell, up, axis));
                }
            }
            self.current = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grid_basic_geometry() {
        let g = Grid::<3>::new(2).unwrap();
        assert_eq!(g.side(), 4);
        assert_eq!(g.n(), 64);
        assert_eq!(g.d(), 3);
        assert_eq!(g.k(), 2);
    }

    #[test]
    fn from_side_accepts_only_powers_of_two() {
        assert!(Grid::<2>::from_side(8).is_ok());
        assert_eq!(Grid::<2>::from_side(8).unwrap().k(), 3);
        assert!(matches!(
            Grid::<2>::from_side(6),
            Err(SfcError::SideNotPowerOfTwo { side: 6 })
        ));
        assert!(matches!(
            Grid::<2>::from_side(0),
            Err(SfcError::SideNotPowerOfTwo { side: 0 })
        ));
    }

    #[test]
    fn oversized_grid_is_rejected() {
        assert!(matches!(
            Grid::<2>::new(64),
            Err(SfcError::GridTooLarge { .. })
        ));
        // k is capped at 32 by the u32 coordinate type.
        assert!(Grid::<1>::new(32).is_ok());
        assert!(Grid::<1>::new(33).is_err());
        // And k·d is capped at 127 index bits.
        assert!(Grid::<4>::new(31).is_ok());
        assert!(Grid::<4>::new(32).is_err());
    }

    #[test]
    fn k_zero_grid_is_a_single_cell() {
        let g = Grid::<3>::new(0).unwrap();
        assert_eq!(g.n(), 1);
        assert_eq!(g.cells().count(), 1);
        assert_eq!(g.neighbors(Point::origin()).count(), 0);
        assert_eq!(g.nn_edges().count(), 0);
        assert_eq!(g.nn_edge_count(), 0);
    }

    #[test]
    fn cells_visit_every_cell_once_row_major() {
        let g = Grid::<2>::new(2).unwrap();
        let cells: Vec<_> = g.cells().collect();
        assert_eq!(cells.len(), 16);
        let set: HashSet<_> = cells.iter().copied().collect();
        assert_eq!(set.len(), 16);
        // Row-major: axis 0 fastest.
        assert_eq!(cells[0], Point::new([0, 0]));
        assert_eq!(cells[1], Point::new([1, 0]));
        assert_eq!(cells[4], Point::new([0, 1]));
        assert_eq!(cells[15], Point::new([3, 3]));
    }

    #[test]
    fn neighbor_count_bounds_match_paper() {
        // The paper: d ≤ |N(α)| ≤ 2d for every cell.
        let g = Grid::<2>::new(2).unwrap();
        for cell in g.cells() {
            let count = g.neighbors(cell).count();
            assert_eq!(count, g.neighbor_count(&cell));
            assert!((2..=4).contains(&count), "cell {cell} has {count}");
        }
        // Corner has exactly d, interior exactly 2d.
        assert_eq!(g.neighbor_count(&Point::new([0, 0])), 2);
        assert_eq!(g.neighbor_count(&Point::new([1, 1])), 4);
    }

    #[test]
    fn neighbors_are_exactly_manhattan_distance_one() {
        let g = Grid::<3>::new(1).unwrap();
        for cell in g.cells() {
            for nb in g.neighbors(cell) {
                assert!(g.contains(&nb));
                assert_eq!(cell.manhattan(&nb), 1);
            }
            // Cross-check against brute force.
            let brute: HashSet<_> = g
                .cells()
                .filter(|other| cell.manhattan(other) == 1)
                .collect();
            let iter: HashSet<_> = g.neighbors(cell).collect();
            assert_eq!(brute, iter);
        }
    }

    #[test]
    fn nn_edges_enumerates_each_edge_once() {
        let g = Grid::<2>::new(2).unwrap();
        let edges: Vec<_> = g.nn_edges().collect();
        assert_eq!(edges.len() as u128, g.nn_edge_count());
        // 2 axes × 3 steps × 4 rows = 24 edges on a 4×4 grid.
        assert_eq!(edges.len(), 24);
        let set: HashSet<_> = edges.iter().map(|(a, b, _)| (*a, *b)).collect();
        assert_eq!(set.len(), edges.len());
        for (a, b, axis) in edges {
            assert_eq!(a.manhattan(&b), 1);
            assert_eq!(b.coord(axis), a.coord(axis) + 1);
        }
    }

    #[test]
    fn nn_edge_count_formula_in_three_dims() {
        let g = Grid::<3>::new(2).unwrap();
        // d · (side−1) · side^{d−1} = 3 · 3 · 16 = 144.
        assert_eq!(g.nn_edge_count(), 144);
        assert_eq!(g.nn_edges().count(), 144);
    }

    #[test]
    fn boundary_predicate() {
        let g = Grid::<2>::new(2).unwrap();
        assert!(g.is_boundary(&Point::new([0, 2])));
        assert!(g.is_boundary(&Point::new([3, 1])));
        assert!(!g.is_boundary(&Point::new([1, 2])));
        // Count of boundary cells: n − (side−2)^d = 16 − 4 = 12.
        let boundary = g.cells().filter(|c| g.is_boundary(c)).count();
        assert_eq!(boundary, 12);
    }

    #[test]
    fn row_major_rank_roundtrips() {
        let g = Grid::<3>::new(2).unwrap();
        for (expected, cell) in g.cells().enumerate() {
            let rank = g.row_major_rank(&cell);
            assert_eq!(rank, expected as u128);
            assert_eq!(g.point_from_row_major(rank), cell);
        }
    }

    #[test]
    fn random_cells_and_edges_are_in_bounds() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let g = Grid::<3>::new(3).unwrap();
        for _ in 0..200 {
            let c = g.random_cell(&mut rng);
            assert!(g.contains(&c));
            let (a, b, axis) = g.random_nn_edge(&mut rng);
            assert!(g.contains(&a) && g.contains(&b));
            assert_eq!(a.manhattan(&b), 1);
            assert_eq!(b.coord(axis), a.coord(axis) + 1);
            let (x, y) = g.random_distinct_pair(&mut rng);
            assert_ne!(x, y);
            assert!(g.contains(&x) && g.contains(&y));
        }
    }

    #[test]
    fn cell_iter_size_hint_is_exact() {
        let g = Grid::<2>::new(2).unwrap();
        let mut iter = g.cells();
        assert_eq!(iter.size_hint(), (16, Some(16)));
        iter.next();
        assert_eq!(iter.size_hint(), (15, Some(15)));
    }
}
