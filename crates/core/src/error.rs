//! Error type shared by the `sfc-core` constructors.

use std::fmt;

/// Errors raised when constructing grids or curves.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SfcError {
    /// The requested grid side is not a power of two (the model requires
    /// side `2^k`).
    SideNotPowerOfTwo {
        /// The offending side length.
        side: u64,
    },
    /// The grid would need more than 127 index bits (`k·d > 127`), which the
    /// `u128` [`CurveIndex`](crate::CurveIndex) cannot represent.
    GridTooLarge {
        /// Bits per coordinate.
        k: u32,
        /// Number of dimensions.
        d: usize,
    },
    /// The grid has more cells than can be materialised in memory
    /// (table-driven curves need `n ≤ usize::MAX` and practically far less).
    TooManyCells {
        /// Number of cells requested.
        n: u128,
    },
    /// A candidate mapping is not a bijection onto `{0, …, n−1}`.
    NotABijection {
        /// A human-readable description of the first violation found.
        detail: String,
    },
    /// The number of dimensions must be at least 1.
    ZeroDimensions,
    /// A permutation of the axes had the wrong length or repeated entries.
    InvalidAxisPermutation {
        /// A human-readable description of the problem.
        detail: String,
    },
}

impl fmt::Display for SfcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SfcError::SideNotPowerOfTwo { side } => {
                write!(f, "grid side {side} is not a power of two")
            }
            SfcError::GridTooLarge { k, d } => write!(
                f,
                "grid with k = {k} bits per axis in d = {d} dimensions needs {} index bits (max 127)",
                (*k as usize) * d
            ),
            SfcError::TooManyCells { n } => {
                write!(f, "grid with {n} cells is too large to materialise")
            }
            SfcError::NotABijection { detail } => {
                write!(f, "mapping is not a bijection: {detail}")
            }
            SfcError::ZeroDimensions => write!(f, "dimension d must be at least 1"),
            SfcError::InvalidAxisPermutation { detail } => {
                write!(f, "invalid axis permutation: {detail}")
            }
        }
    }
}

impl std::error::Error for SfcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SfcError::SideNotPowerOfTwo { side: 3 };
        assert!(e.to_string().contains("power of two"));
        let e = SfcError::GridTooLarge { k: 64, d: 3 };
        assert!(e.to_string().contains("192 index bits"));
        let e = SfcError::TooManyCells { n: 1 << 70 };
        assert!(e.to_string().contains("too large"));
        let e = SfcError::NotABijection {
            detail: "index 3 repeated".into(),
        };
        assert!(e.to_string().contains("index 3 repeated"));
        assert!(SfcError::ZeroDimensions.to_string().contains("at least 1"));
    }
}
