//! The paper's "simple curve" (Section IV.C, Eq. 8): row-major order.
//!
//! `S(α) = Σ_{i=1}^{d} x_i · (d√n)^{i−1}` — coordinate 1 varies fastest.
//! Despite its triviality, Theorem 3 shows it matches the Z curve's
//! average-average nearest-neighbor stretch `~ (1/d)·n^{1−1/d}`, and
//! Proposition 2 shows its average-maximum stretch is exactly `n^{1−1/d}`.

use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::grid::Grid;
use crate::point::Point;
use crate::CurveIndex;

/// The paper's simple curve: `S(α) = Σ_i x_i · side^{i−1}` (row-major,
/// axis 0 fastest).
///
/// ```
/// use sfc_core::{Point, SimpleCurve, SpaceFillingCurve};
/// let s = SimpleCurve::<2>::new(3).unwrap();
/// // S((x1, x2)) = x1 + 8·x2 on an 8×8 grid.
/// assert_eq!(s.index_of(Point::new([3, 5])), 3 + 8 * 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimpleCurve<const D: usize> {
    grid: Grid<D>,
}

impl<const D: usize> SimpleCurve<D> {
    /// Creates the simple curve over the grid of side `2^k`.
    pub fn new(k: u32) -> Result<Self, SfcError> {
        Ok(Self {
            grid: Grid::new(k)?,
        })
    }

    /// Creates the simple curve over an existing grid.
    pub fn over(grid: Grid<D>) -> Self {
        Self { grid }
    }
}

impl<const D: usize> SpaceFillingCurve<D> for SimpleCurve<D> {
    fn grid(&self) -> Grid<D> {
        self.grid
    }

    #[inline]
    fn index_of(&self, p: Point<D>) -> CurveIndex {
        self.grid.row_major_rank(&p)
    }

    #[inline]
    fn point_of(&self, idx: CurveIndex) -> Point<D> {
        self.grid.point_from_row_major(idx)
    }

    fn name(&self) -> String {
        "simple".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_eq_8_of_the_paper() {
        // S(α) = Σ x_i side^{i−1}; d = 3, side = 4.
        let s = SimpleCurve::<3>::new(2).unwrap();
        let p = Point::new([3, 1, 2]);
        assert_eq!(s.index_of(p), 3 + 4 + 2 * 16);
        assert_eq!(s.point_of(39), p);
    }

    #[test]
    fn is_bijective() {
        SimpleCurve::<2>::new(3)
            .unwrap()
            .validate_bijection()
            .unwrap();
        SimpleCurve::<4>::new(1)
            .unwrap()
            .validate_bijection()
            .unwrap();
        SimpleCurve::<1>::new(6)
            .unwrap()
            .validate_bijection()
            .unwrap();
    }

    #[test]
    fn neighbor_distance_along_axis_is_power_of_side() {
        // Neighbors along the paper's dimension i are at curve distance
        // side^{i−1}; in particular along dimension d the distance is
        // side^{d−1} = n^{1−1/d} (used in Proposition 2).
        let s = SimpleCurve::<3>::new(2).unwrap();
        let p = Point::new([1, 1, 1]);
        assert_eq!(s.curve_distance(p, p.step_up(0).unwrap()), 1);
        assert_eq!(s.curve_distance(p, p.step_up(1).unwrap()), 4);
        assert_eq!(s.curve_distance(p, p.step_up(2).unwrap()), 16);
        // n^{1−1/d} = 64^{2/3} = 16.
        let n = s.grid().n() as f64;
        assert_eq!(16f64, n.powf(1.0 - 1.0 / 3.0).round());
    }

    #[test]
    fn figure_4_traversal_8x8() {
        // Figure 4: the simple curve sweeps each row left-to-right, rows
        // bottom-to-top.
        let s = SimpleCurve::<2>::new(3).unwrap();
        let order: Vec<_> = s.traverse().collect();
        assert_eq!(order[0], Point::new([0, 0]));
        assert_eq!(order[7], Point::new([7, 0]));
        assert_eq!(order[8], Point::new([0, 1]));
        assert_eq!(order[63], Point::new([7, 7]));
    }
}
