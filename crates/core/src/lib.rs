//! # sfc-core — space filling curves over power-of-two grids
//!
//! This crate implements the model of
//! *Xu & Tirthapura, "A Lower Bound on Proximity Preservation by Space
//! Filling Curves", IEEE IPDPS 2012* and every curve the paper analyses or
//! cites, plus the d-dimensional Hilbert curve (the subject of the paper's
//! open question).
//!
//! ## The model (paper, Section III)
//!
//! The **universe** is the `d`-dimensional grid of side `2^k`, containing
//! `n = 2^{kd}` **cells**. A **space filling curve** (SFC) is any *bijection*
//! `π : U → {0, 1, …, n−1}`. Note this is deliberately more general than the
//! usual notion of a non-self-intersecting curve: every lower bound proved on
//! this class also applies to the classical curves.
//!
//! The crate provides:
//!
//! * [`Point`] — a cell of the universe, with Manhattan / Euclidean /
//!   Chebyshev distances ([`Point::manhattan`], …).
//! * [`Grid`] — the universe itself: cell iteration, nearest-neighbor
//!   iteration, boundary predicates.
//! * [`SpaceFillingCurve`] — the bijection trait, with curve-order iteration
//!   and bijectivity validation.
//! * Concrete curves: [`ZCurve`] (Morton order, exactly the paper's bit
//!   convention), [`SimpleCurve`] (the paper's Eq. 8), [`SnakeCurve`],
//!   [`GrayCurve`], [`HilbertCurve`], and table-driven
//!   [`PermutationCurve`]s (including uniformly random bijections and the
//!   two worked curves of the paper's Figure 1).
//! * [`transform`] — axis-permutation / reflection adaptors, formalising the
//!   paper's remark that "different Z curves are possible by taking the
//!   dimensions in a different order".
//!
//! ## Batch API
//!
//! Every curve also exposes
//! [`index_of_batch`](SpaceFillingCurve::index_of_batch) and
//! [`point_of_batch`](SpaceFillingCurve::point_of_batch) — semantically a
//! `map` of the scalar calls, but overridden with table-driven kernels
//! where it pays:
//!
//! * [`ZCurve`] encodes through 256-entry dilation LUTs
//!   ([`bits::DILATE2_LUT`] / [`bits::DILATE3_LUT`]);
//! * [`HilbertCurve`] (2-D/3-D) transduces the Morton key through
//!   precomputed state-transition tables, a byte at a time — an order of
//!   magnitude faster than the per-bit Skilling transpose it replaces;
//! * [`GrayCurve`] rides the Morton kernel and applies the Gray inverse
//!   in place.
//!
//! Bulk workloads (index construction in `sfc-index`, metric sweeps in
//! `sfc-metrics`, n-body decomposition in `sfc-nbody`) all route through
//! this API. Quickstart:
//!
//! ```
//! use sfc_core::{HilbertCurve, Point, SpaceFillingCurve};
//!
//! let h = HilbertCurve::<2>::new(16).unwrap();
//! let points: Vec<Point<2>> = (0..1000).map(|i| Point::new([i, i * 7 % 65_536])).collect();
//!
//! // One call encodes the whole batch through the table kernel …
//! let mut keys = Vec::new();
//! h.index_of_batch(&points, &mut keys);
//!
//! // … bit-identically to the scalar path.
//! assert_eq!(keys[3], h.index_of(points[3]));
//!
//! // And back again.
//! let mut roundtrip = Vec::new();
//! h.point_of_batch(&keys, &mut roundtrip);
//! assert_eq!(roundtrip, points);
//! ```
//!
//! ## Conventions
//!
//! * Dimensions are indexed `1..=d` in the paper; in code, **axis `i`**
//!   (`0`-based) corresponds to the paper's dimension `i+1`.
//! * Curve indices are [`CurveIndex`] = `u128`; all index arithmetic is
//!   exact. Grids are limited to `k·d ≤ 127` bits.
//!
//! ## Quick example
//!
//! ```
//! use sfc_core::{Grid, Point, SpaceFillingCurve, ZCurve};
//!
//! // The paper's worked example: d = 3, k = 3, Z(101, 010, 011) = 100011101.
//! let z = ZCurve::<3>::new(3).unwrap();
//! let p = Point::new([0b101, 0b010, 0b011]);
//! assert_eq!(z.index_of(p), 0b100011101);
//! assert_eq!(z.point_of(0b100011101), p);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bits;
pub mod curve;
pub mod diagonal;
pub mod error;
pub mod gray;
pub mod grid;
pub mod hilbert;
mod hilbert_tables;
pub mod morton;
pub mod permutation;
pub mod point;
pub mod simple;
pub mod snake;
pub mod spiral;
pub mod transform;
pub mod viz;

pub use curve::{BoxedCurve, CurveKind, CurveOrderIter, SharedCurve, SpaceFillingCurve};
pub use diagonal::DiagonalCurve;
pub use error::SfcError;
pub use gray::GrayCurve;
pub use grid::{CellIter, Grid, NeighborIter, NnEdgeIter};
pub use hilbert::HilbertCurve;
pub use morton::ZCurve;
pub use permutation::PermutationCurve;
pub use point::Point;
pub use simple::SimpleCurve;
pub use snake::SnakeCurve;
pub use spiral::SpiralCurve;

/// A position along a space filling curve: an integer in `{0, …, n−1}`.
///
/// `u128` keeps all index arithmetic exact for every grid this crate can
/// represent (`k·d ≤ 127`).
pub type CurveIndex = u128;

/// Absolute difference of two curve indices: the paper's
/// `Δπ(α, β) = |π(α) − π(β)|`.
#[inline]
pub fn index_distance(a: CurveIndex, b: CurveIndex) -> CurveIndex {
    a.abs_diff(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_distance_is_symmetric_and_zero_on_diagonal() {
        assert_eq!(index_distance(3, 10), 7);
        assert_eq!(index_distance(10, 3), 7);
        assert_eq!(index_distance(42, 42), 0);
        assert_eq!(index_distance(0, u128::MAX), u128::MAX);
    }
}
