//! The Gray-code curve (Faloutsos [9, 10] in the paper's bibliography).
//!
//! The Gray-code curve orders cells so that the *interleaved* bit
//! representation of consecutive cells differs in exactly one bit: cell `x`
//! receives index `π(x)` with `gray(π(x)) = Z(x)`, where `Z` is the Morton
//! interleaving (with the paper's bit convention) and `gray` is the binary-
//! reflected Gray code.
//!
//! The paper compares against this curve as one of the "popularly used"
//! SFCs (Section I); it is included here so the stretch experiments can
//! sweep it alongside Z, Hilbert, simple and snake.

use crate::bits::{gray, gray_inverse};
use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::grid::Grid;
use crate::morton::ZCurve;
use crate::point::Point;
use crate::CurveIndex;

/// The `d`-dimensional Gray-code curve on the grid of side `2^k`.
///
/// ```
/// use sfc_core::{GrayCurve, Point, SpaceFillingCurve};
/// let g = GrayCurve::<2>::new(1).unwrap();
/// // On a 2×2 grid the Gray curve visits interleaved keys in Gray-code
/// // order 00, 01, 11, 10.
/// let order: Vec<_> = g.traverse().collect();
/// assert_eq!(order[0], Point::new([0, 0]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrayCurve<const D: usize> {
    morton: ZCurve<D>,
}

impl<const D: usize> GrayCurve<D> {
    /// Creates the Gray-code curve over the grid of side `2^k`.
    pub fn new(k: u32) -> Result<Self, SfcError> {
        Ok(Self {
            morton: ZCurve::new(k)?,
        })
    }

    /// Creates the Gray-code curve over an existing grid.
    pub fn over(grid: Grid<D>) -> Self {
        Self {
            morton: ZCurve::over(grid),
        }
    }
}

impl<const D: usize> SpaceFillingCurve<D> for GrayCurve<D> {
    fn grid(&self) -> Grid<D> {
        self.morton.grid()
    }

    #[inline]
    fn index_of(&self, p: Point<D>) -> CurveIndex {
        gray_inverse(self.morton.encode(p))
    }

    #[inline]
    fn point_of(&self, idx: CurveIndex) -> Point<D> {
        self.morton.decode(gray(idx))
    }

    /// Batch encode: the Morton LUT kernel, then the Gray inverse on each
    /// key in place.
    fn index_of_batch(&self, points: &[Point<D>], out: &mut Vec<CurveIndex>) {
        self.morton.index_of_batch(points, out);
        for key in out.iter_mut() {
            *key = gray_inverse(*key);
        }
    }

    fn point_of_batch(&self, indices: &[CurveIndex], out: &mut Vec<Point<D>>) {
        out.clear();
        out.reserve(indices.len());
        out.extend(indices.iter().map(|&i| self.morton.decode(gray(i))));
    }

    fn name(&self) -> String {
        "gray".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_bijective() {
        GrayCurve::<1>::new(5)
            .unwrap()
            .validate_bijection()
            .unwrap();
        GrayCurve::<2>::new(3)
            .unwrap()
            .validate_bijection()
            .unwrap();
        GrayCurve::<3>::new(2)
            .unwrap()
            .validate_bijection()
            .unwrap();
        GrayCurve::<4>::new(1)
            .unwrap()
            .validate_bijection()
            .unwrap();
    }

    #[test]
    fn consecutive_cells_differ_in_one_interleaved_bit() {
        let g = GrayCurve::<2>::new(3).unwrap();
        let z = ZCurve::<2>::new(3).unwrap();
        let order: Vec<_> = g.traverse().collect();
        for pair in order.windows(2) {
            let ka = z.encode(pair[0]);
            let kb = z.encode(pair[1]);
            assert_eq!((ka ^ kb).count_ones(), 1, "{} -> {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn one_bit_interleaved_difference_means_one_coordinate_bit_flip() {
        // A single interleaved-bit difference flips exactly one bit of one
        // coordinate, so consecutive Gray-curve cells differ along exactly
        // one axis by a power of two.
        let g = GrayCurve::<3>::new(2).unwrap();
        let order: Vec<_> = g.traverse().collect();
        for pair in order.windows(2) {
            let axis = pair[0].differing_axis(&pair[1]).expect("single axis");
            let diff = pair[0].coord(axis).abs_diff(pair[1].coord(axis));
            assert!(diff.is_power_of_two(), "{} -> {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn two_by_two_traversal() {
        let g = GrayCurve::<2>::new(1).unwrap();
        let order: Vec<_> = g.traverse().collect();
        // Interleaved keys visited in Gray order 00, 01, 11, 10; with the
        // paper convention key = (x1 bit, x2 bit):
        assert_eq!(
            order,
            vec![
                Point::new([0, 0]), // key 00
                Point::new([0, 1]), // key 01
                Point::new([1, 1]), // key 11
                Point::new([1, 0]), // key 10
            ]
        );
    }

    #[test]
    fn gray_is_identity_composed_with_gray_inverse_of_z() {
        let g = GrayCurve::<2>::new(2).unwrap();
        let z = ZCurve::<2>::new(2).unwrap();
        for p in g.grid().cells() {
            assert_eq!(gray(g.index_of(p)), z.index_of(p));
        }
    }
}
