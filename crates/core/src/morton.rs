//! The Z curve (Morton order), with exactly the paper's bit convention.
//!
//! The paper (Section IV.B) defines the key of a cell `x = (x₁, …, x_d)` as
//! the binary string
//! `x₁¹ x₂¹ ⋯ x_d¹  x₁² x₂² ⋯ x_d²  ⋯  x₁ᵏ x₂ᵏ ⋯ x_dᵏ`,
//! where `x_iʲ` is the *j-th most significant* bit of coordinate `x_i`.
//! In other words coordinate bits are interleaved most-significant group
//! first, and within a group **dimension 1 is most significant**.
//!
//! In code, axis `a` (0-based) is the paper's dimension `a+1`, so bit `b`
//! (0 = LSB) of axis `a` lands at key bit `b·d + (d−1−a)`.
//!
//! The paper's worked example `d = 3, k = 3`:
//! `Z(101, 010, 011) = 100011101` — verified in the tests below and in the
//! crate-level docs.

use crate::bits::{
    dilate, dilate2, dilate2_lut, dilate3, dilate3_lut, undilate, undilate2, undilate3,
};
use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::grid::Grid;
use crate::point::Point;
use crate::CurveIndex;

/// The `d`-dimensional Z curve (Morton order) on the grid of side `2^k`.
///
/// ```
/// use sfc_core::{Point, SpaceFillingCurve, ZCurve};
/// let z = ZCurve::<2>::new(3).unwrap();
/// // Figure 3 of the paper: cell (x1, x2) = (010, 001) has key 001001... let's
/// // check one: key of (011, 010) interleaves to 001110 = 14? Work it out:
/// // bits MSB-first: (0,0),(1,1),(1,0) → 00 11 10 = 0b001110.
/// assert_eq!(z.index_of(Point::new([0b011, 0b010])), 0b001110);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZCurve<const D: usize> {
    grid: Grid<D>,
}

impl<const D: usize> ZCurve<D> {
    /// Creates the Z curve over the grid of side `2^k`.
    pub fn new(k: u32) -> Result<Self, SfcError> {
        Ok(Self {
            grid: Grid::new(k)?,
        })
    }

    /// Creates the Z curve over an existing grid.
    pub fn over(grid: Grid<D>) -> Self {
        Self { grid }
    }

    /// Encodes a point into its Morton key (the paper's `Z(x)`).
    #[inline]
    pub fn encode(&self, p: Point<D>) -> CurveIndex {
        let k = self.grid.k();
        let coords = p.coords();
        // Monomorphized fast paths; the branches are resolved at compile
        // time because `D` is const.
        if D == 2 && k <= 32 {
            let hi = u128::from(dilate2(coords[0])) << 1;
            let lo = u128::from(dilate2(coords[1]));
            return hi | lo;
        }
        if D == 3 && k <= 21 {
            let a = u128::from(dilate3(coords[0])) << 2;
            let b = u128::from(dilate3(coords[1])) << 1;
            let c = u128::from(dilate3(coords[2]));
            return a | b | c;
        }
        let mut key = 0u128;
        for (axis, &c) in coords.iter().enumerate() {
            key |= dilate(c, D, k) << (D - 1 - axis);
        }
        key
    }

    /// Decodes a Morton key back into a point.
    #[inline]
    pub fn decode(&self, key: CurveIndex) -> Point<D> {
        let k = self.grid.k();
        if D == 2 && k <= 32 {
            let x0 = undilate2((key >> 1) as u64 & 0x5555_5555_5555_5555);
            let x1 = undilate2(key as u64 & 0x5555_5555_5555_5555);
            let mut coords = [0u32; D];
            coords[0] = x0;
            coords[1] = x1;
            return Point::new(coords);
        }
        if D == 3 && k <= 21 {
            let mut coords = [0u32; D];
            coords[0] = undilate3((key >> 2) as u64 & 0x1249_2492_4924_9249);
            coords[1] = undilate3((key >> 1) as u64 & 0x1249_2492_4924_9249);
            coords[2] = undilate3(key as u64 & 0x1249_2492_4924_9249);
            return Point::new(coords);
        }
        let mut coords = [0u32; D];
        for (axis, c) in coords.iter_mut().enumerate() {
            *c = undilate(key >> (D - 1 - axis), D, k);
        }
        Point::new(coords)
    }

    /// Table-driven encode: identical output to [`encode`](Self::encode),
    /// using the 256-entry dilation LUTs ([`crate::bits::DILATE2_LUT`] /
    /// [`crate::bits::DILATE3_LUT`]) instead of the magic-mask ladder.
    ///
    /// This is the kernel behind
    /// [`index_of_batch`](SpaceFillingCurve::index_of_batch): over a batch
    /// the tables stay L1-resident and the loop body is branch-free, so
    /// the compiler can keep the pipeline full.
    #[inline]
    pub fn encode_lut(&self, p: Point<D>) -> CurveIndex {
        let k = self.grid.k();
        let coords = p.coords();
        if D == 2 && k <= 32 {
            let hi = u128::from(dilate2_lut(coords[0])) << 1;
            let lo = u128::from(dilate2_lut(coords[1]));
            return hi | lo;
        }
        if D == 3 && k <= 21 {
            let a = u128::from(dilate3_lut(coords[0])) << 2;
            let b = u128::from(dilate3_lut(coords[1])) << 1;
            let c = u128::from(dilate3_lut(coords[2]));
            return a | b | c;
        }
        self.encode(p)
    }

    /// The exact curve distance between the two endpoints of a
    /// nearest-neighbor edge along `axis` whose lower coordinate is `c`.
    ///
    /// This is the quantity analysed in the paper's Lemma 5: if the paper's
    /// dimension is `i = axis + 1` and `c` ends in `j−1` one-bits, then
    /// `Δ_Z = 2^{jd−i} − Σ_{ℓ=1}^{j−1} 2^{ℓd−i}`.
    pub fn nn_edge_distance(&self, axis: usize, c: u32) -> CurveIndex {
        debug_assert!(u64::from(c) + 1 < self.grid.side());
        let i = axis + 1; // paper's dimension index
        let j = (c.trailing_ones() + 1) as usize;
        let mut dist: i128 = 1i128 << (j * D - i);
        for l in 1..j {
            dist -= 1i128 << (l * D - i);
        }
        debug_assert!(dist > 0);
        dist as u128
    }
}

impl<const D: usize> SpaceFillingCurve<D> for ZCurve<D> {
    fn grid(&self) -> Grid<D> {
        self.grid
    }

    #[inline]
    fn index_of(&self, p: Point<D>) -> CurveIndex {
        self.encode(p)
    }

    #[inline]
    fn point_of(&self, idx: CurveIndex) -> Point<D> {
        self.decode(idx)
    }

    fn index_of_batch(&self, points: &[Point<D>], out: &mut Vec<CurveIndex>) {
        out.clear();
        out.reserve(points.len());
        // `extend` from an exact-size iterator keeps the loop free of
        // per-element capacity checks; `encode_lut` is branch-free for the
        // monomorphized d = 2, 3 fast paths.
        out.extend(points.iter().map(|&p| self.encode_lut(p)));
    }

    fn point_of_batch(&self, indices: &[CurveIndex], out: &mut Vec<Point<D>>) {
        out.clear();
        out.reserve(indices.len());
        out.extend(indices.iter().map(|&i| self.decode(i)));
    }

    fn name(&self) -> String {
        "Z".to_string()
    }

    fn as_morton(&self) -> Option<&ZCurve<D>> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_worked_example_d3_k3() {
        // Z(101, 010, 011) = 100011101 (paper, Section IV.B).
        let z = ZCurve::<3>::new(3).unwrap();
        let p = Point::new([0b101, 0b010, 0b011]);
        assert_eq!(z.index_of(p), 0b100011101);
        assert_eq!(z.point_of(0b100011101), p);
    }

    #[test]
    fn figure_3_key_layout_8x8() {
        // Figure 3: the cell in the bottom-left corner has key 000000, its
        // right neighbor (x1=001, x2=000) has key 000010 (dim 1 is the
        // higher bit in each pair), and its upper neighbor (x1=000, x2=001)
        // has key 000001.
        let z = ZCurve::<2>::new(3).unwrap();
        assert_eq!(z.index_of(Point::new([0, 0])), 0b000000);
        assert_eq!(z.index_of(Point::new([1, 0])), 0b000010);
        assert_eq!(z.index_of(Point::new([0, 1])), 0b000001);
        // Top-right cell of the figure: (111, 111) → 111111.
        assert_eq!(z.index_of(Point::new([7, 7])), 0b111111);
        // A mid-grid cell from the figure: (011, 101) → the key whose pairs
        // are (0,1),(1,0),(1,1) = 01 10 11.
        assert_eq!(z.index_of(Point::new([0b011, 0b101])), 0b011011);
    }

    #[test]
    fn z_is_bijective_for_various_d_and_k() {
        macro_rules! check {
            ($d:literal, $k:expr) => {
                ZCurve::<$d>::new($k).unwrap().validate_bijection().unwrap();
            };
        }
        check!(1, 5);
        check!(2, 3);
        check!(3, 2);
        check!(4, 2);
        check!(5, 1);
        check!(6, 1);
    }

    #[test]
    fn generic_path_matches_fast_path_d2() {
        // Force the generic path by comparing against hand-dilated values on
        // a grid with k > 32 impossible; instead compare fast-path results
        // with the definition for all cells of an 8×8 grid.
        let z = ZCurve::<2>::new(3).unwrap();
        for p in z.grid().cells() {
            let mut expected = 0u128;
            for (axis, &c) in p.coords().iter().enumerate() {
                expected |= dilate(c, 2, 3) << (1 - axis);
            }
            assert_eq!(z.encode(p), expected, "at {p}");
        }
    }

    #[test]
    fn generic_path_matches_fast_path_d3() {
        let z = ZCurve::<3>::new(2).unwrap();
        for p in z.grid().cells() {
            let mut expected = 0u128;
            for (axis, &c) in p.coords().iter().enumerate() {
                expected |= dilate(c, 3, 2) << (2 - axis);
            }
            assert_eq!(z.encode(p), expected, "at {p}");
        }
    }

    #[test]
    fn lut_encode_and_batch_match_scalar() {
        let z2 = ZCurve::<2>::new(3).unwrap();
        let pts2: Vec<Point<2>> = z2.grid().cells().collect();
        let mut keys = Vec::new();
        z2.index_of_batch(&pts2, &mut keys);
        for (p, &key) in pts2.iter().zip(&keys) {
            assert_eq!(key, z2.index_of(*p), "at {p}");
            assert_eq!(z2.encode_lut(*p), z2.encode(*p), "at {p}");
        }
        let mut back = Vec::new();
        z2.point_of_batch(&keys, &mut back);
        assert_eq!(back, pts2);

        let z3 = ZCurve::<3>::new(2).unwrap();
        let pts3: Vec<Point<3>> = z3.grid().cells().collect();
        z3.index_of_batch(&pts3, &mut keys);
        for (p, &key) in pts3.iter().zip(&keys) {
            assert_eq!(key, z3.index_of(*p), "at {p}");
        }
        // Generic dimension falls back to the scalar path.
        let z5 = ZCurve::<5>::new(1).unwrap();
        let pts5: Vec<Point<5>> = z5.grid().cells().collect();
        z5.index_of_batch(&pts5, &mut keys);
        for (p, &key) in pts5.iter().zip(&keys) {
            assert_eq!(key, z5.index_of(*p), "at {p}");
        }
    }

    #[test]
    fn lsb_neighbor_distance_is_2_pow_d_minus_i() {
        // Lemma 5, base case: neighbors along the paper's dimension i whose
        // lower coordinate has LSB 0 are at curve distance 2^{d−i}.
        let z = ZCurve::<3>::new(3).unwrap();
        for axis in 0..3 {
            let i = axis + 1;
            let a = Point::new([2, 4, 6]); // all even coordinates
            let b = a.step_up(axis).unwrap();
            assert_eq!(z.curve_distance(a, b), 1 << (3 - i), "axis {axis}");
        }
    }

    #[test]
    fn nn_edge_distance_formula_matches_measured() {
        let z2 = ZCurve::<2>::new(4).unwrap();
        for axis in 0..2 {
            for c in 0..15u32 {
                let mut coords = [5u32, 9];
                coords[axis] = c;
                let a = Point::new(coords);
                let b = a.step_up(axis).unwrap();
                assert_eq!(
                    z2.curve_distance(a, b),
                    z2.nn_edge_distance(axis, c),
                    "d=2 axis={axis} c={c}"
                );
            }
        }
        let z3 = ZCurve::<3>::new(3).unwrap();
        for axis in 0..3 {
            for c in 0..7u32 {
                let mut coords = [3u32, 1, 6];
                coords[axis] = c;
                let a = Point::new(coords);
                let b = a.step_up(axis).unwrap();
                assert_eq!(
                    z3.curve_distance(a, b),
                    z3.nn_edge_distance(axis, c),
                    "d=3 axis={axis} c={c}"
                );
            }
        }
    }

    #[test]
    fn edge_distance_is_independent_of_other_coordinates() {
        // ΔZ for a NN edge depends only on the axis and the coordinate along
        // that axis — the other coordinates' interleaved bits are identical
        // in both keys and cancel.
        let z = ZCurve::<2>::new(3).unwrap();
        for c in 0..7u32 {
            let mut seen = None;
            for other in 0..8u32 {
                let a = Point::new([c, other]);
                let b = a.step_up(0).unwrap();
                let dist = z.curve_distance(a, b);
                if let Some(s) = seen {
                    assert_eq!(s, dist);
                } else {
                    seen = Some(dist);
                }
            }
        }
    }

    #[test]
    fn single_dimension_z_is_identity() {
        let z = ZCurve::<1>::new(6).unwrap();
        for p in z.grid().cells() {
            assert_eq!(z.index_of(p), u128::from(p.coord(0)));
        }
    }

    #[test]
    fn large_coordinate_roundtrip_d2() {
        // Exercise the k = 32 fast-path boundary.
        let z = ZCurve::<2>::new(32).unwrap();
        for &x in &[0u32, 1, u32::MAX, 0xDEAD_BEEF, 0x1234_5678] {
            for &y in &[0u32, u32::MAX, 0x0F0F_0F0F] {
                let p = Point::new([x, y]);
                assert_eq!(z.decode(z.encode(p)), p);
            }
        }
    }

    #[test]
    fn large_coordinate_roundtrip_high_d_generic() {
        let z = ZCurve::<6>::new(21).unwrap();
        let p = Point::new([0x1F_FFFF, 0, 0x15_5555, 0x0A_AAAA, 1, 0x10_0000]);
        assert_eq!(z.decode(z.encode(p)), p);
    }

    proptest! {
        #[test]
        fn roundtrip_d2(x in 0u32..(1 << 16), y in 0u32..(1 << 16)) {
            let z = ZCurve::<2>::new(16).unwrap();
            let p = Point::new([x, y]);
            prop_assert_eq!(z.decode(z.encode(p)), p);
        }

        #[test]
        fn roundtrip_d4(coords in proptest::array::uniform4(0u32..(1 << 8))) {
            let z = ZCurve::<4>::new(8).unwrap();
            let p = Point::new(coords);
            prop_assert_eq!(z.decode(z.encode(p)), p);
        }

        #[test]
        fn key_order_matches_interleaved_msb_comparison(
            a in proptest::array::uniform2(0u32..256),
            b in proptest::array::uniform2(0u32..256),
        ) {
            // The Z order compares points by the most significant differing
            // interleaved bit; an equivalent formulation is comparing
            // (max XOR-significance axis first). Here we just verify keys are
            // consistent with direct bit interleaving.
            let z = ZCurve::<2>::new(8).unwrap();
            let pa = Point::new(a);
            let pb = Point::new(b);
            let mut ka = 0u128;
            let mut kb = 0u128;
            for bit in (0..8).rev() {
                for axis in 0..2 {
                    ka = (ka << 1) | u128::from((a[axis] >> bit) & 1);
                    kb = (kb << 1) | u128::from((b[axis] >> bit) & 1);
                }
            }
            prop_assert_eq!(z.encode(pa), ka);
            prop_assert_eq!(z.encode(pb), kb);
            prop_assert_eq!(z.encode(pa) < z.encode(pb), ka < kb);
        }
    }
}
