//! The spiral (onion) curve: concentric boundary rings walked outside-in.
//!
//! A classical two-dimensional order used as a baseline in SFC comparisons
//! (e.g. Abel & Mark's comparative study, reference [1] of the paper). The
//! spiral is *continuous* — consecutive indices are always grid
//! neighbors — yet its average NN-stretch is still `Θ(n^{1/2})`: radial
//! neighbors on adjacent rings are nearly a full ring-perimeter apart
//! along the curve. The `more-curves` experiment measures its constant
//! against the Theorem 1 bound.
//!
//! Ring `r` (`0 ≤ r < side/2`) is the boundary of the square
//! `[r, side−1−r]²`, walked counter-clockwise starting at `(r, r)`:
//! right along the bottom edge, up the right edge, left along the top
//! edge, down the left edge. The walk ends at `(r, r+1)`, which is a grid
//! neighbor of ring `r+1`'s start `(r+1, r+1)`.

use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::grid::Grid;
use crate::point::Point;
use crate::CurveIndex;

/// The two-dimensional spiral curve on the grid of side `2^k`.
///
/// ```
/// use sfc_core::{Point, SpaceFillingCurve, SpiralCurve};
/// let s = SpiralCurve::new(1).unwrap();
/// // 2×2 traversal: (0,0) → (1,0) → (1,1) → (0,1).
/// let order: Vec<_> = s.traverse().collect();
/// assert_eq!(order[0], Point::new([0, 0]));
/// assert_eq!(order[3], Point::new([0, 1]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpiralCurve {
    grid: Grid<2>,
}

impl SpiralCurve {
    /// Creates the spiral curve over the grid of side `2^k`.
    pub fn new(k: u32) -> Result<Self, SfcError> {
        Ok(Self {
            grid: Grid::new(k)?,
        })
    }

    /// Creates the spiral curve over an existing grid.
    pub fn over(grid: Grid<2>) -> Self {
        Self { grid }
    }

    /// The ring index of a cell: distance to the nearest grid edge.
    #[inline]
    fn ring(&self, p: Point<2>) -> u32 {
        let max = (self.grid.side() - 1) as u32;
        let x = p.coord(0);
        let y = p.coord(1);
        x.min(y).min(max - x).min(max - y)
    }

    /// Number of cells in all rings before ring `r`:
    /// `n − (side − 2r)²`.
    #[inline]
    fn cells_before_ring(&self, r: u32) -> u128 {
        let inner = self.grid.side() as u128 - 2 * u128::from(r);
        self.grid.n() - inner * inner
    }
}

impl SpaceFillingCurve<2> for SpiralCurve {
    fn grid(&self) -> Grid<2> {
        self.grid
    }

    fn index_of(&self, p: Point<2>) -> CurveIndex {
        let side = self.grid.side() as u128;
        let r = self.ring(p);
        let lo = u128::from(r);
        let hi = side - 1 - lo; // largest coordinate on this ring
        let edge = hi - lo; // ring side length minus 1
        let x = u128::from(p.coord(0));
        let y = u128::from(p.coord(1));
        let base = self.cells_before_ring(r);
        // Walk: bottom (y = lo, x: lo→hi), right (x = hi, y: lo+1→hi),
        // top (y = hi, x: hi−1→lo), left (x = lo, y: hi−1→lo+1).
        let offset = if y == lo {
            x - lo
        } else if x == hi {
            edge + (y - lo)
        } else if y == hi {
            2 * edge + (hi - x)
        } else {
            3 * edge + (hi - y)
        };
        base + offset
    }

    fn point_of(&self, idx: CurveIndex) -> Point<2> {
        let side = self.grid.side() as u128;
        // Find the ring by inverting cells_before_ring (at most side/2
        // rings; binary search keeps this O(log side)).
        let mut lo_r = 0u128;
        let mut hi_r = side / 2; // exclusive upper bound on ring index
        while lo_r + 1 < hi_r {
            let mid = (lo_r + hi_r) / 2;
            if self.cells_before_ring(mid as u32) <= idx {
                lo_r = mid;
            } else {
                hi_r = mid;
            }
        }
        let r = lo_r;
        let lo = r;
        let hi = side - 1 - r;
        let edge = hi - lo;
        let mut offset = idx - self.cells_before_ring(r as u32);
        if edge == 0 {
            // 1×1 inner ring cannot occur (side is even), but a 2×2 core
            // has edge = 1; guard anyway for robustness.
            return Point::new([lo as u32, lo as u32]);
        }
        if offset < edge {
            return Point::new([(lo + offset) as u32, lo as u32]);
        }
        offset -= edge;
        if offset < edge {
            return Point::new([hi as u32, (lo + offset) as u32]);
        }
        offset -= edge;
        if offset < edge {
            return Point::new([(hi - offset) as u32, hi as u32]);
        }
        offset -= edge;
        Point::new([lo as u32, (hi - offset) as u32])
    }

    fn name(&self) -> String {
        "spiral".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_bijective() {
        for k in 0..=4u32 {
            SpiralCurve::new(k).unwrap().validate_bijection().unwrap();
        }
    }

    #[test]
    fn is_continuous() {
        for k in 1..=4u32 {
            assert!(SpiralCurve::new(k).unwrap().is_continuous(), "k={k}");
        }
    }

    #[test]
    fn four_by_four_traversal() {
        let s = SpiralCurve::new(2).unwrap();
        let order: Vec<_> = s.traverse().collect();
        // Outer ring: 12 cells counter-clockwise from (0,0)…
        assert_eq!(order[0], Point::new([0, 0]));
        assert_eq!(order[3], Point::new([3, 0]));
        assert_eq!(order[6], Point::new([3, 3]));
        assert_eq!(order[9], Point::new([0, 3]));
        assert_eq!(order[11], Point::new([0, 1]));
        // …then the 2×2 core.
        assert_eq!(order[12], Point::new([1, 1]));
        assert_eq!(order[15], Point::new([1, 2]));
    }

    #[test]
    fn ring_structure() {
        let s = SpiralCurve::new(2).unwrap();
        assert_eq!(s.ring(Point::new([0, 2])), 0);
        assert_eq!(s.ring(Point::new([1, 2])), 1);
        assert_eq!(s.ring(Point::new([3, 3])), 0);
        assert_eq!(s.cells_before_ring(0), 0);
        assert_eq!(s.cells_before_ring(1), 12);
    }

    #[test]
    fn starts_at_origin_every_size() {
        for k in 1..=5u32 {
            assert_eq!(SpiralCurve::new(k).unwrap().point_of(0), Point::origin());
        }
    }

    #[test]
    fn radial_neighbors_are_nearly_a_ring_apart() {
        // The stretch driver: (x, 0) and (x, 1) for interior x sit on
        // adjacent rings, separated by almost the outer ring's remaining
        // perimeter.
        let s = SpiralCurve::new(4).unwrap(); // 16×16
        let a = Point::new([8, 0]); // outer ring
        let b = Point::new([8, 1]); // ring 1
        let dist = s.curve_distance(a, b);
        assert!(dist > 40, "expected Θ(side) separation, got {dist}");
    }
}
