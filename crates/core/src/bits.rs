//! Bit-manipulation primitives for curve key construction.
//!
//! The Z curve interleaves coordinate bits ("dilated integers"); the Gray
//! curve additionally applies the binary-reflected Gray code to the
//! interleaved key. The generic routines here work for any dimension `d`;
//! magic-mask fast paths are provided for the ubiquitous `d = 2, 3` cases
//! and are verified against the generic path in the tests.

/// Spreads the low `k` bits of `x` so that bit `j` of `x` lands at bit `j·d`
/// of the result (a "dilated integer" with stride `d`).
///
/// `dilate(x, d, k)` places zeros between consecutive bits, leaving room for
/// the other `d − 1` coordinates' bits.
#[inline]
pub fn dilate(x: u32, d: usize, k: u32) -> u128 {
    debug_assert!(d >= 1 && (k as usize) * d <= 128);
    let mut out = 0u128;
    for j in 0..k {
        let bit = u128::from((x >> j) & 1);
        out |= bit << (j as usize * d);
    }
    out
}

/// Inverse of [`dilate`]: collects every `d`-th bit of `x` (starting at bit
/// 0) into a compact integer.
#[inline]
pub fn undilate(x: u128, d: usize, k: u32) -> u32 {
    debug_assert!(d >= 1 && (k as usize) * d <= 128);
    let mut out = 0u32;
    for j in 0..k {
        let bit = ((x >> (j as usize * d)) & 1) as u32;
        out |= bit << j;
    }
    out
}

/// Magic-mask dilation for `d = 2`: spreads the low 32 bits of `x` into the
/// even bit positions of a `u64`.
///
/// This is the classical "Part1By1" routine; validated against the generic
/// [`dilate`] in tests.
#[inline]
pub fn dilate2(x: u32) -> u64 {
    let mut x = u64::from(x);
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`dilate2`].
#[inline]
pub fn undilate2(x: u64) -> u32 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Magic-mask dilation for `d = 3`: spreads the low 21 bits of `x` with
/// stride 3 into a `u64` ("Part1By2").
#[inline]
pub fn dilate3(x: u32) -> u64 {
    debug_assert!(x < (1 << 21), "dilate3 supports at most 21 bits");
    let mut x = u64::from(x) & 0x1F_FFFF;
    x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`dilate3`].
#[inline]
pub fn undilate3(x: u64) -> u32 {
    let mut x = x & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x001F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x001F_0000_0000_FFFF;
    x = (x | (x >> 32)) & 0x0000_0000_001F_FFFF;
    x as u32
}

/// 256-entry dilation table for `d = 2`: `DILATE2_LUT[b]` spreads the 8
/// bits of `b` into the even bit positions of a `u16`.
///
/// Byte-at-a-time table dilation turns a 32-bit coordinate into its
/// dilated form with 4 loads and 3 shifts — fewer dependent operations
/// than the 5-step magic-mask ladder — and, crucially for the batch
/// kernels, the loads from a 512-byte table stay L1-resident across a
/// whole batch.
pub const DILATE2_LUT: [u16; 256] = {
    let mut lut = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut v = 0u16;
        let mut j = 0;
        while j < 8 {
            v |= (((b >> j) & 1) as u16) << (2 * j);
            j += 1;
        }
        lut[b] = v;
        b += 1;
    }
    lut
};

/// 256-entry inverse of [`DILATE2_LUT`]: compacts the even bits of a byte
/// into a nibble (odd bits are ignored, so the caller need not mask).
pub const UNDILATE2_LUT: [u8; 256] = {
    let mut lut = [0u8; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut v = 0u8;
        let mut j = 0;
        while j < 4 {
            v |= (((b >> (2 * j)) & 1) as u8) << j;
            j += 1;
        }
        lut[b] = v;
        b += 1;
    }
    lut
};

/// 256-entry dilation table for `d = 3`: `DILATE3_LUT[b]` spreads the 8
/// bits of `b` with stride 3 into the low 22 bits of a `u32`.
pub const DILATE3_LUT: [u32; 256] = {
    let mut lut = [0u32; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut v = 0u32;
        let mut j = 0;
        while j < 8 {
            v |= (((b >> j) & 1) as u32) << (3 * j);
            j += 1;
        }
        lut[b] = v;
        b += 1;
    }
    lut
};

/// Table-driven [`dilate2`]: byte-at-a-time via [`DILATE2_LUT`].
#[inline]
pub fn dilate2_lut(x: u32) -> u64 {
    let b = x.to_le_bytes();
    u64::from(DILATE2_LUT[b[0] as usize])
        | u64::from(DILATE2_LUT[b[1] as usize]) << 16
        | u64::from(DILATE2_LUT[b[2] as usize]) << 32
        | u64::from(DILATE2_LUT[b[3] as usize]) << 48
}

/// Table-driven [`undilate2`]: byte-at-a-time via [`UNDILATE2_LUT`].
#[inline]
pub fn undilate2_lut(x: u64) -> u32 {
    let b = x.to_le_bytes();
    u32::from(UNDILATE2_LUT[b[0] as usize])
        | u32::from(UNDILATE2_LUT[b[1] as usize]) << 4
        | u32::from(UNDILATE2_LUT[b[2] as usize]) << 8
        | u32::from(UNDILATE2_LUT[b[3] as usize]) << 12
        | u32::from(UNDILATE2_LUT[b[4] as usize]) << 16
        | u32::from(UNDILATE2_LUT[b[5] as usize]) << 20
        | u32::from(UNDILATE2_LUT[b[6] as usize]) << 24
        | u32::from(UNDILATE2_LUT[b[7] as usize]) << 28
}

/// Table-driven [`dilate3`]: byte-at-a-time via [`DILATE3_LUT`]
/// (21-bit input, like `dilate3`).
#[inline]
pub fn dilate3_lut(x: u32) -> u64 {
    debug_assert!(x < (1 << 21), "dilate3_lut supports at most 21 bits");
    let b = x.to_le_bytes();
    u64::from(DILATE3_LUT[b[0] as usize])
        | u64::from(DILATE3_LUT[b[1] as usize]) << 24
        | u64::from(DILATE3_LUT[b[2] as usize]) << 48
}

/// Binary-reflected Gray code: `gray(i) = i ^ (i >> 1)`.
#[inline]
pub fn gray(i: u128) -> u128 {
    i ^ (i >> 1)
}

/// Inverse of the binary-reflected Gray code (prefix-XOR).
#[inline]
pub fn gray_inverse(mut g: u128) -> u128 {
    let mut shift = 1;
    while shift < 128 {
        g ^= g >> shift;
        shift <<= 1;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dilate_places_bits_at_stride_d() {
        assert_eq!(dilate(0b1011, 1, 4), 0b1011);
        assert_eq!(dilate(0b1011, 2, 4), 0b1000101);
        assert_eq!(dilate(0b11, 3, 2), 0b1001);
        assert_eq!(dilate(0, 5, 10), 0);
    }

    #[test]
    fn undilate_inverts_dilate_for_all_small_inputs() {
        for d in 1..=5 {
            for k in 0..=6 {
                for x in 0u32..(1 << k) {
                    let dil = dilate(x, d, k);
                    assert_eq!(undilate(dil, d, k), x, "d={d} k={k} x={x}");
                }
            }
        }
    }

    #[test]
    fn dilate2_matches_generic() {
        for x in (0u32..=65_535).step_by(37) {
            assert_eq!(u128::from(dilate2(x)), dilate(x, 2, 32));
            assert_eq!(undilate2(dilate2(x)), x);
        }
        assert_eq!(u128::from(dilate2(u32::MAX)), dilate(u32::MAX, 2, 32));
    }

    #[test]
    fn dilate3_matches_generic() {
        for x in (0u32..(1 << 21)).step_by(997) {
            assert_eq!(u128::from(dilate3(x)), dilate(x, 3, 21));
            assert_eq!(undilate3(dilate3(x)), x);
        }
        let max = (1u32 << 21) - 1;
        assert_eq!(u128::from(dilate3(max)), dilate(max, 3, 21));
    }

    #[test]
    fn lut_dilation_matches_magic_masks() {
        for x in (0u32..=65_535).step_by(31) {
            assert_eq!(dilate2_lut(x), dilate2(x), "dilate2 x={x}");
            assert_eq!(undilate2_lut(dilate2(x)), x, "undilate2 x={x}");
        }
        assert_eq!(dilate2_lut(u32::MAX), dilate2(u32::MAX));
        assert_eq!(undilate2_lut(dilate2(u32::MAX)), u32::MAX);
        // undilate2_lut must ignore the odd (other-axis) bits.
        assert_eq!(undilate2_lut(u64::MAX), u32::MAX);
        assert_eq!(undilate2_lut(0xAAAA_AAAA_AAAA_AAAA), 0);
        for x in (0u32..(1 << 21)).step_by(641) {
            assert_eq!(dilate3_lut(x), dilate3(x), "dilate3 x={x}");
        }
        let max3 = (1u32 << 21) - 1;
        assert_eq!(dilate3_lut(max3), dilate3(max3));
    }

    #[test]
    fn gray_code_roundtrips_and_adjacent_codes_differ_in_one_bit() {
        for i in 0u128..1024 {
            assert_eq!(gray_inverse(gray(i)), i);
            assert_eq!(gray(gray_inverse(i)), i);
        }
        for i in 0u128..1023 {
            let diff = gray(i) ^ gray(i + 1);
            assert_eq!(diff.count_ones(), 1, "gray({i}) vs gray({})", i + 1);
        }
    }

    #[test]
    fn gray_inverse_handles_high_bits() {
        let big = 1u128 << 120;
        assert_eq!(gray_inverse(gray(big)), big);
        assert_eq!(gray(gray_inverse(u128::MAX)), u128::MAX);
    }
}
