//! Table-driven space filling curves: arbitrary bijections `U → {0,…,n−1}`.
//!
//! The paper's lower bounds (Theorem 1, Propositions 1 and 3) hold for the
//! class of **all** bijections, including self-intersecting orders. This
//! module provides that full generality:
//!
//! * [`PermutationCurve::random`] — a uniformly random bijection, used by
//!   the experiments to probe the lower bound over the whole class;
//! * [`PermutationCurve::figure1_pi1`] / [`figure1_pi2`]
//!   (on `PermutationCurve<2>`) — the two worked curves of the paper's
//!   Figure 1;
//! * [`PermutationCurve::from_curve`] — materialisation of any analytic
//!   curve into a table (used to cross-check analytic implementations);
//! * [`PermutationCurve::swap_positions`] — the local move used by the
//!   simulated-annealing optimal-curve search in `sfc-metrics`.

use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::grid::Grid;
use crate::point::Point;
use crate::CurveIndex;
use rand::seq::SliceRandom;
use rand::Rng;

/// An explicit, table-driven bijection from grid cells to `{0, …, n−1}`.
///
/// Storage is two `Vec<u64>`s of length `n` (forward and inverse), so this
/// is only usable for grids that fit in memory — which is exactly the regime
/// where exhaustive stretch metrics are computable anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermutationCurve<const D: usize> {
    grid: Grid<D>,
    /// `forward[row_major_rank(p)] = π(p)`.
    forward: Vec<u64>,
    /// `inverse[π(p)] = row_major_rank(p)`.
    inverse: Vec<u64>,
    name: String,
}

impl<const D: usize> PermutationCurve<D> {
    fn n_usize(grid: Grid<D>) -> Result<usize, SfcError> {
        usize::try_from(grid.n()).map_err(|_| SfcError::TooManyCells { n: grid.n() })
    }

    /// Builds a curve from a function assigning an index to every cell.
    /// The mapping is validated to be a bijection.
    pub fn from_index_fn(
        grid: Grid<D>,
        name: impl Into<String>,
        mut f: impl FnMut(Point<D>) -> CurveIndex,
    ) -> Result<Self, SfcError> {
        let n = Self::n_usize(grid)?;
        let mut forward = vec![u64::MAX; n];
        let mut inverse = vec![u64::MAX; n];
        for p in grid.cells() {
            let rank = grid.row_major_rank(&p) as u64;
            let idx = f(p);
            if idx >= grid.n() {
                return Err(SfcError::NotABijection {
                    detail: format!("index {idx} for cell {p} out of range"),
                });
            }
            if inverse[idx as usize] != u64::MAX {
                return Err(SfcError::NotABijection {
                    detail: format!("index {idx} assigned twice (second time to {p})"),
                });
            }
            forward[rank as usize] = idx as u64;
            inverse[idx as usize] = rank;
        }
        Ok(Self {
            grid,
            forward,
            inverse,
            name: name.into(),
        })
    }

    /// Builds a curve from the complete list of cells *in curve order*
    /// (`order[i]` is the cell with index `i`).
    pub fn from_order(
        grid: Grid<D>,
        name: impl Into<String>,
        order: &[Point<D>],
    ) -> Result<Self, SfcError> {
        let n = Self::n_usize(grid)?;
        if order.len() != n {
            return Err(SfcError::NotABijection {
                detail: format!("order has {} cells, grid has {n}", order.len()),
            });
        }
        let mut forward = vec![u64::MAX; n];
        let mut inverse = vec![u64::MAX; n];
        for (idx, p) in order.iter().enumerate() {
            if !grid.contains(p) {
                return Err(SfcError::NotABijection {
                    detail: format!("cell {p} out of bounds"),
                });
            }
            let rank = grid.row_major_rank(p) as usize;
            if forward[rank] != u64::MAX {
                return Err(SfcError::NotABijection {
                    detail: format!("cell {p} listed twice"),
                });
            }
            forward[rank] = idx as u64;
            inverse[idx] = rank as u64;
        }
        Ok(Self {
            grid,
            forward,
            inverse,
            name: name.into(),
        })
    }

    /// Materialises any curve into a table (useful for cross-checking
    /// analytic implementations and as a starting state for local search).
    pub fn from_curve<C: SpaceFillingCurve<D>>(curve: &C) -> Result<Self, SfcError> {
        let grid = curve.grid();
        Self::from_index_fn(grid, curve.name(), |p| curve.index_of(p))
    }

    /// A uniformly random bijection (Fisher–Yates over the identity order).
    pub fn random<R: Rng + ?Sized>(grid: Grid<D>, rng: &mut R) -> Result<Self, SfcError> {
        let n = Self::n_usize(grid)?;
        let mut forward: Vec<u64> = (0..n as u64).collect();
        forward.shuffle(rng);
        let mut inverse = vec![0u64; n];
        for (rank, &idx) in forward.iter().enumerate() {
            inverse[idx as usize] = rank as u64;
        }
        Ok(Self {
            grid,
            forward,
            inverse,
            name: "random".to_string(),
        })
    }

    /// The identity (row-major) permutation — equal to the paper's simple
    /// curve, as a mutable table.
    pub fn identity(grid: Grid<D>) -> Result<Self, SfcError> {
        let n = Self::n_usize(grid)?;
        let table: Vec<u64> = (0..n as u64).collect();
        Ok(Self {
            grid,
            forward: table.clone(),
            inverse: table,
            name: "identity".to_string(),
        })
    }

    /// Renames the curve (names appear in experiment reports).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Swaps the cells at curve positions `i` and `j` — the elementary move
    /// of the simulated-annealing search for low-stretch curves.
    pub fn swap_positions(&mut self, i: CurveIndex, j: CurveIndex) {
        if i == j {
            return;
        }
        let (i, j) = (i as usize, j as usize);
        let rank_i = self.inverse[i];
        let rank_j = self.inverse[j];
        self.inverse.swap(i, j);
        self.forward.swap(rank_i as usize, rank_j as usize);
    }

    /// The cells in curve order, as a vector.
    pub fn order(&self) -> Vec<Point<D>> {
        self.inverse
            .iter()
            .map(|&rank| self.grid.point_from_row_major(u128::from(rank)))
            .collect()
    }
}

impl PermutationCurve<2> {
    /// Figure 1 (left): the curve `π₁` ordering the 2×2 cells as
    /// `C, A, B, D`, where the figure's layout is
    /// `A = (0,1), C = (1,1), D = (0,0), B = (1,0)`.
    ///
    /// The paper computes `D^avg(π₁) = 1.5` and `D^max(π₁) = 2`.
    pub fn figure1_pi1() -> Self {
        let grid = Grid::<2>::new(1).expect("2x2 grid");
        let c = Point::new([1, 1]);
        let a = Point::new([0, 1]);
        let b = Point::new([1, 0]);
        let d = Point::new([0, 0]);
        Self::from_order(grid, "pi1", &[c, a, b, d]).expect("valid order")
    }

    /// Figure 1 (right): the self-intersecting curve `π₂` ordering the 2×2
    /// cells as `A, B, C, D`.
    ///
    /// The paper computes `D^avg(π₂) = 2` and `D^max(π₂) = 2.5`.
    pub fn figure1_pi2() -> Self {
        let grid = Grid::<2>::new(1).expect("2x2 grid");
        let c = Point::new([1, 1]);
        let a = Point::new([0, 1]);
        let b = Point::new([1, 0]);
        let d = Point::new([0, 0]);
        Self::from_order(grid, "pi2", &[a, b, c, d]).expect("valid order")
    }
}

impl<const D: usize> SpaceFillingCurve<D> for PermutationCurve<D> {
    fn grid(&self) -> Grid<D> {
        self.grid
    }

    #[inline]
    fn index_of(&self, p: Point<D>) -> CurveIndex {
        u128::from(self.forward[self.grid.row_major_rank(&p) as usize])
    }

    #[inline]
    fn point_of(&self, idx: CurveIndex) -> Point<D> {
        self.grid
            .point_from_row_major(u128::from(self.inverse[idx as usize]))
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn figure1_curves_are_bijections() {
        PermutationCurve::figure1_pi1()
            .validate_bijection()
            .unwrap();
        PermutationCurve::figure1_pi2()
            .validate_bijection()
            .unwrap();
    }

    #[test]
    fn figure1_pi1_order_is_c_a_b_d() {
        let pi1 = PermutationCurve::figure1_pi1();
        assert_eq!(pi1.point_of(0), Point::new([1, 1])); // C
        assert_eq!(pi1.point_of(1), Point::new([0, 1])); // A
        assert_eq!(pi1.point_of(2), Point::new([1, 0])); // B
        assert_eq!(pi1.point_of(3), Point::new([0, 0])); // D
        assert_eq!(pi1.name(), "pi1");
    }

    #[test]
    fn random_curves_are_bijections() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for _ in 0..10 {
            let grid = Grid::<2>::new(2).unwrap();
            let c = PermutationCurve::random(grid, &mut rng).unwrap();
            c.validate_bijection().unwrap();
        }
        let grid3 = Grid::<3>::new(1).unwrap();
        PermutationCurve::random(grid3, &mut rng)
            .unwrap()
            .validate_bijection()
            .unwrap();
    }

    #[test]
    fn from_curve_reproduces_the_original() {
        let z = crate::morton::ZCurve::<2>::new(2).unwrap();
        let table = PermutationCurve::from_curve(&z).unwrap();
        for p in z.grid().cells() {
            assert_eq!(table.index_of(p), z.index_of(p));
        }
        for i in 0..16u128 {
            assert_eq!(table.point_of(i), z.point_of(i));
        }
        assert_eq!(table.name(), "Z");
    }

    #[test]
    fn identity_matches_simple_curve() {
        let grid = Grid::<3>::new(1).unwrap();
        let id = PermutationCurve::identity(grid).unwrap();
        let simple = crate::simple::SimpleCurve::<3>::over(grid);
        for p in grid.cells() {
            assert_eq!(id.index_of(p), simple.index_of(p));
        }
    }

    #[test]
    fn swap_positions_keeps_bijectivity() {
        let grid = Grid::<2>::new(2).unwrap();
        let mut c = PermutationCurve::identity(grid).unwrap();
        let p5 = c.point_of(5);
        let p9 = c.point_of(9);
        c.swap_positions(5, 9);
        c.validate_bijection().unwrap();
        assert_eq!(c.point_of(5), p9);
        assert_eq!(c.point_of(9), p5);
        assert_eq!(c.index_of(p5), 9);
        assert_eq!(c.index_of(p9), 5);
        // Self-swap is a no-op.
        c.swap_positions(3, 3);
        c.validate_bijection().unwrap();
    }

    #[test]
    fn from_order_rejects_bad_input() {
        let grid = Grid::<2>::new(1).unwrap();
        let a = Point::new([0, 0]);
        let b = Point::new([1, 0]);
        let c = Point::new([0, 1]);
        // Too short.
        assert!(PermutationCurve::from_order(grid, "bad", &[a, b, c]).is_err());
        // Duplicate cell.
        assert!(PermutationCurve::from_order(grid, "bad", &[a, b, c, a]).is_err());
        // Out of bounds.
        let far = Point::new([9, 9]);
        assert!(PermutationCurve::from_order(grid, "bad", &[a, b, c, far]).is_err());
    }

    #[test]
    fn from_index_fn_rejects_non_bijections() {
        let grid = Grid::<2>::new(1).unwrap();
        // Constant function: not injective.
        assert!(matches!(
            PermutationCurve::from_index_fn(grid, "const", |_| 0),
            Err(SfcError::NotABijection { .. })
        ));
        // Out of range.
        assert!(matches!(
            PermutationCurve::from_index_fn(grid, "oob", |_| 99),
            Err(SfcError::NotABijection { .. })
        ));
    }

    #[test]
    fn order_lists_cells_in_curve_order() {
        let pi2 = PermutationCurve::figure1_pi2();
        let order = pi2.order();
        assert_eq!(order.len(), 4);
        for (i, p) in order.iter().enumerate() {
            assert_eq!(pi2.index_of(*p), i as u128);
        }
    }
}
