//! The `d`-dimensional Hilbert curve.
//!
//! The paper lists the average NN-stretch of the Hilbert curve as an open
//! question (Section VI); this implementation lets the experiment harness
//! *measure* it alongside the curves the paper analyses exactly.
//!
//! The implementation is John Skilling's transpose algorithm
//! (*"Programming the Hilbert curve"*, AIP Conf. Proc. 707, 2004), which
//! maps between axis coordinates and the "transpose" form of the Hilbert
//! index in `O(d·k)` bit operations, for any dimension. The transpose form
//! is then packed into a single [`CurveIndex`] with the same interleaving
//! convention as the Z curve (axis 0 most significant within each group).
//!
//! Unlike the Z curve, the Hilbert curve is *continuous*: cells at
//! consecutive indices are always nearest neighbors — a property the tests
//! verify exhaustively on small grids in 2, 3 and 4 dimensions.

use crate::bits::{dilate, dilate2_lut, dilate3_lut, undilate, undilate2_lut, undilate3};
use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::grid::Grid;
use crate::hilbert_tables::{tables_2d, tables_3d};
use crate::point::Point;
use crate::CurveIndex;

/// The `d`-dimensional Hilbert curve on the grid of side `2^k`.
///
/// ```
/// use sfc_core::{HilbertCurve, Point, SpaceFillingCurve};
/// let h = HilbertCurve::<2>::new(1).unwrap();
/// // The first-order 2-D Hilbert curve starts at the origin and is a
/// // Hamiltonian path on the 2×2 grid.
/// assert_eq!(h.point_of(0), Point::new([0, 0]));
/// let order: Vec<_> = h.traverse().collect();
/// for pair in order.windows(2) {
///     assert_eq!(pair[0].manhattan(&pair[1]), 1);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HilbertCurve<const D: usize> {
    grid: Grid<D>,
}

impl<const D: usize> HilbertCurve<D> {
    /// Creates the Hilbert curve over the grid of side `2^k`.
    pub fn new(k: u32) -> Result<Self, SfcError> {
        Ok(Self {
            grid: Grid::new(k)?,
        })
    }

    /// Creates the Hilbert curve over an existing grid.
    pub fn over(grid: Grid<D>) -> Self {
        Self { grid }
    }

    /// Skilling's `AxestoTranspose`: converts grid coordinates into the
    /// transpose form of the Hilbert index.
    ///
    /// Internal arithmetic is `u64` so the bit masks stay in range even at
    /// the maximum `k = 32`.
    fn axes_to_transpose(&self, coords: [u32; D]) -> [u32; D] {
        let k = self.grid.k();
        let mut x = [0u64; D];
        for (xi, &c) in x.iter_mut().zip(coords.iter()) {
            *xi = u64::from(c);
        }
        if k == 0 {
            return coords;
        }
        let m = 1u64 << (k - 1);
        // Inverse undo.
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            for i in 0..D {
                if x[i] & q != 0 {
                    x[0] ^= p; // invert low bits of x[0]
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q >>= 1;
        }
        // Gray encode.
        for i in 1..D {
            x[i] ^= x[i - 1];
        }
        let mut t = 0u64;
        let mut q = m;
        while q > 1 {
            if x[D - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        let mut out = [0u32; D];
        for (o, xi) in out.iter_mut().zip(x.iter()) {
            *o = (*xi ^ t) as u32;
        }
        out
    }

    /// Skilling's `TransposetoAxes`: inverse of
    /// [`axes_to_transpose`](Self::axes_to_transpose).
    fn transpose_to_axes(&self, transpose: [u32; D]) -> [u32; D] {
        let k = self.grid.k();
        if k == 0 {
            return transpose;
        }
        let mut x = [0u64; D];
        for (xi, &c) in x.iter_mut().zip(transpose.iter()) {
            *xi = u64::from(c);
        }
        let m = 1u64 << k;
        // Gray decode by H ^ (H/2).
        let t = x[D - 1] >> 1;
        for i in (1..D).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;
        // Undo excess work.
        let mut q = 2u64;
        while q != m {
            let p = q - 1;
            for i in (0..D).rev() {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q <<= 1;
        }
        let mut out = [0u32; D];
        for (o, xi) in out.iter_mut().zip(x.iter()) {
            *o = *xi as u32;
        }
        out
    }

    /// Packs the transpose form into a single index: bit `j` of transpose
    /// word `i` becomes bit `j·d + (d−1−i)` of the index (the same layout as
    /// the Z curve key).
    fn pack(&self, transpose: [u32; D]) -> CurveIndex {
        let k = self.grid.k();
        let mut key = 0u128;
        for (axis, &w) in transpose.iter().enumerate() {
            key |= dilate(w, D, k) << (D - 1 - axis);
        }
        key
    }

    /// Inverse of [`pack`](Self::pack).
    fn unpack(&self, key: CurveIndex) -> [u32; D] {
        let k = self.grid.k();
        let mut transpose = [0u32; D];
        for (axis, w) in transpose.iter_mut().enumerate() {
            *w = undilate(key >> (D - 1 - axis), D, k);
        }
        transpose
    }
}

impl<const D: usize> SpaceFillingCurve<D> for HilbertCurve<D> {
    fn grid(&self) -> Grid<D> {
        self.grid
    }

    fn index_of(&self, p: Point<D>) -> CurveIndex {
        self.pack(self.axes_to_transpose(p.coords()))
    }

    fn point_of(&self, idx: CurveIndex) -> Point<D> {
        Point::new(self.transpose_to_axes(self.unpack(idx)))
    }

    /// Batch encode via the byte-at-a-time state-transition tables
    /// ([`crate::hilbert_tables`]): LUT-dilate each point to its Morton
    /// key, then transduce Morton → Hilbert a byte (2-D) or 6 bits (3-D)
    /// per table lookup. Identical output to the scalar Skilling path,
    /// verified exhaustively at table-construction time and by the
    /// workspace property tests.
    fn index_of_batch(&self, points: &[Point<D>], out: &mut Vec<CurveIndex>) {
        let k = self.grid.k();
        out.clear();
        out.reserve(points.len());
        if D == 2 && k <= 32 {
            let t = tables_2d();
            out.extend(points.iter().map(|p| {
                let c = p.coords();
                let m = dilate2_lut(c[0]) << 1 | dilate2_lut(c[1]);
                u128::from(t.encode(m, k))
            }));
        } else if D == 3 && k <= 21 {
            let t = tables_3d();
            out.extend(points.iter().map(|p| {
                let c = p.coords();
                let m = dilate3_lut(c[0]) << 2 | dilate3_lut(c[1]) << 1 | dilate3_lut(c[2]);
                u128::from(t.encode(m, k))
            }));
        } else {
            out.extend(points.iter().map(|&p| self.index_of(p)));
        }
    }

    /// Batch decode: the inverse transduction (Hilbert → Morton), then
    /// LUT undilation.
    fn point_of_batch(&self, indices: &[CurveIndex], out: &mut Vec<Point<D>>) {
        let k = self.grid.k();
        out.clear();
        out.reserve(indices.len());
        if D == 2 && k <= 32 {
            let t = tables_2d();
            out.extend(indices.iter().map(|&idx| {
                let m = t.decode(idx as u64, k);
                let mut coords = [0u32; D];
                coords[0] = undilate2_lut(m >> 1);
                coords[1] = undilate2_lut(m);
                Point::new(coords)
            }));
        } else if D == 3 && k <= 21 {
            let t = tables_3d();
            out.extend(indices.iter().map(|&idx| {
                let m = t.decode(idx as u64, k);
                let mut coords = [0u32; D];
                coords[0] = undilate3((m >> 2) & 0x1249_2492_4924_9249);
                coords[1] = undilate3((m >> 1) & 0x1249_2492_4924_9249);
                coords[2] = undilate3(m & 0x1249_2492_4924_9249);
                Point::new(coords)
            }));
        } else {
            out.extend(indices.iter().map(|&i| self.point_of(i)));
        }
    }

    fn name(&self) -> String {
        "hilbert".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn is_bijective() {
        HilbertCurve::<1>::new(4)
            .unwrap()
            .validate_bijection()
            .unwrap();
        HilbertCurve::<2>::new(1)
            .unwrap()
            .validate_bijection()
            .unwrap();
        HilbertCurve::<2>::new(2)
            .unwrap()
            .validate_bijection()
            .unwrap();
        HilbertCurve::<2>::new(3)
            .unwrap()
            .validate_bijection()
            .unwrap();
        HilbertCurve::<2>::new(4)
            .unwrap()
            .validate_bijection()
            .unwrap();
        HilbertCurve::<3>::new(1)
            .unwrap()
            .validate_bijection()
            .unwrap();
        HilbertCurve::<3>::new(2)
            .unwrap()
            .validate_bijection()
            .unwrap();
        HilbertCurve::<3>::new(3)
            .unwrap()
            .validate_bijection()
            .unwrap();
        HilbertCurve::<4>::new(1)
            .unwrap()
            .validate_bijection()
            .unwrap();
        HilbertCurve::<4>::new(2)
            .unwrap()
            .validate_bijection()
            .unwrap();
        HilbertCurve::<5>::new(1)
            .unwrap()
            .validate_bijection()
            .unwrap();
    }

    #[test]
    fn is_continuous_in_every_tested_dimension() {
        // The defining Hilbert property: a Hamiltonian path on the grid.
        assert!(HilbertCurve::<2>::new(1).unwrap().is_continuous());
        assert!(HilbertCurve::<2>::new(2).unwrap().is_continuous());
        assert!(HilbertCurve::<2>::new(3).unwrap().is_continuous());
        assert!(HilbertCurve::<2>::new(4).unwrap().is_continuous());
        assert!(HilbertCurve::<2>::new(5).unwrap().is_continuous());
        assert!(HilbertCurve::<3>::new(1).unwrap().is_continuous());
        assert!(HilbertCurve::<3>::new(2).unwrap().is_continuous());
        assert!(HilbertCurve::<3>::new(3).unwrap().is_continuous());
        assert!(HilbertCurve::<4>::new(1).unwrap().is_continuous());
        assert!(HilbertCurve::<4>::new(2).unwrap().is_continuous());
        assert!(HilbertCurve::<5>::new(1).unwrap().is_continuous());
    }

    #[test]
    fn starts_at_origin() {
        assert_eq!(
            HilbertCurve::<2>::new(3).unwrap().point_of(0),
            Point::origin()
        );
        assert_eq!(
            HilbertCurve::<3>::new(2).unwrap().point_of(0),
            Point::origin()
        );
        assert_eq!(
            HilbertCurve::<4>::new(2).unwrap().point_of(0),
            Point::origin()
        );
    }

    #[test]
    fn one_dimension_is_identity() {
        let h = HilbertCurve::<1>::new(5).unwrap();
        for p in h.grid().cells() {
            assert_eq!(h.index_of(p), u128::from(p.coord(0)));
        }
    }

    #[test]
    fn order_one_2d_curve_is_the_classic_u_shape() {
        let h = HilbertCurve::<2>::new(1).unwrap();
        let order: Vec<_> = h.traverse().collect();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], Point::new([0, 0]));
        // A U-shape: the last cell is adjacent to the first's row or column;
        // all consecutive steps are unit steps.
        for pair in order.windows(2) {
            assert_eq!(pair[0].manhattan(&pair[1]), 1);
        }
        // Visits all 4 cells.
        let set: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn nested_structure_quadrant_locality() {
        // Hilbert visits each quadrant of the grid in one contiguous index
        // range: for an 8×8 grid, indices 0..16 lie in a single 4×4
        // quadrant, etc.
        let h = HilbertCurve::<2>::new(3).unwrap();
        for q in 0..4u128 {
            let cells: Vec<_> = (q * 16..(q + 1) * 16).map(|i| h.point_of(i)).collect();
            let min_x = cells.iter().map(|p| p.coord(0)).min().unwrap();
            let max_x = cells.iter().map(|p| p.coord(0)).max().unwrap();
            let min_y = cells.iter().map(|p| p.coord(1)).min().unwrap();
            let max_y = cells.iter().map(|p| p.coord(1)).max().unwrap();
            assert!(max_x - min_x <= 3 && max_y - min_y <= 3, "quadrant {q}");
            assert!(min_x % 4 == 0 && min_y % 4 == 0, "quadrant {q}");
        }
    }

    proptest! {
        #[test]
        fn roundtrip_d2(x in 0u32..(1 << 10), y in 0u32..(1 << 10)) {
            let h = HilbertCurve::<2>::new(10).unwrap();
            let p = Point::new([x, y]);
            prop_assert_eq!(h.point_of(h.index_of(p)), p);
        }

        #[test]
        fn roundtrip_d3(coords in proptest::array::uniform3(0u32..(1 << 7))) {
            let h = HilbertCurve::<3>::new(7).unwrap();
            let p = Point::new(coords);
            prop_assert_eq!(h.point_of(h.index_of(p)), p);
        }

        #[test]
        fn consecutive_indices_are_grid_neighbors_d2(i in 0u128..((1u128 << 12) - 1)) {
            let h = HilbertCurve::<2>::new(6).unwrap();
            let a = h.point_of(i);
            let b = h.point_of(i + 1);
            prop_assert_eq!(a.manhattan(&b), 1);
        }
    }
}
