//! Symmetry adaptors: axis permutations and reflections of a curve.
//!
//! The paper remarks (Section IV.B) that "different Z curves are possible by
//! taking the dimensions in a different order during interleaving, but these
//! are all equivalent … at least for the metrics that we consider". These
//! adaptors make that statement *testable*: wrap a curve in an
//! [`AxisPermuted`] or [`Reflected`] adaptor and verify the stretch metrics
//! are unchanged (the `sfc-metrics` tests do exactly this).

use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::grid::Grid;
use crate::point::Point;
use crate::CurveIndex;

/// A curve composed with a permutation of the coordinate axes:
/// `π'(x) = π(x ∘ σ)`.
#[derive(Debug, Clone)]
pub struct AxisPermuted<const D: usize, C> {
    inner: C,
    /// `perm[i]` is the axis of the inner curve fed by axis `i` of the
    /// outer curve.
    perm: [usize; D],
}

impl<const D: usize, C: SpaceFillingCurve<D>> AxisPermuted<D, C> {
    /// Wraps `inner`, routing outer axis `i` to inner axis `perm[i]`.
    ///
    /// Fails unless `perm` is a permutation of `0..D`.
    pub fn new(inner: C, perm: [usize; D]) -> Result<Self, SfcError> {
        let mut seen = [false; D];
        for &axis in &perm {
            if axis >= D {
                return Err(SfcError::InvalidAxisPermutation {
                    detail: format!("axis {axis} out of range for d = {D}"),
                });
            }
            if seen[axis] {
                return Err(SfcError::InvalidAxisPermutation {
                    detail: format!("axis {axis} repeated"),
                });
            }
            seen[axis] = true;
        }
        Ok(Self { inner, perm })
    }

    /// The wrapped curve.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    fn apply(&self, p: Point<D>) -> Point<D> {
        let mut coords = [0u32; D];
        for (outer, &inner_axis) in self.perm.iter().enumerate() {
            coords[inner_axis] = p.coord(outer);
        }
        Point::new(coords)
    }

    fn unapply(&self, p: Point<D>) -> Point<D> {
        let mut coords = [0u32; D];
        for (outer, &inner_axis) in self.perm.iter().enumerate() {
            coords[outer] = p.coord(inner_axis);
        }
        Point::new(coords)
    }
}

impl<const D: usize, C: SpaceFillingCurve<D>> SpaceFillingCurve<D> for AxisPermuted<D, C> {
    fn grid(&self) -> Grid<D> {
        self.inner.grid()
    }

    fn index_of(&self, p: Point<D>) -> CurveIndex {
        self.inner.index_of(self.apply(p))
    }

    fn point_of(&self, idx: CurveIndex) -> Point<D> {
        self.unapply(self.inner.point_of(idx))
    }

    fn name(&self) -> String {
        format!("{}∘σ{:?}", self.inner.name(), self.perm)
    }
}

/// A curve composed with reflections of selected axes:
/// `π'(x)_i = π(… , 2^k − 1 − x_i, …)` for each reflected axis `i`.
#[derive(Debug, Clone)]
pub struct Reflected<const D: usize, C> {
    inner: C,
    reflect: [bool; D],
}

impl<const D: usize, C: SpaceFillingCurve<D>> Reflected<D, C> {
    /// Wraps `inner`, reflecting every axis `i` with `reflect[i] == true`.
    pub fn new(inner: C, reflect: [bool; D]) -> Self {
        Self { inner, reflect }
    }

    /// The wrapped curve.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    fn mirror(&self, p: Point<D>) -> Point<D> {
        let max = (self.inner.grid().side() - 1) as u32;
        let mut coords = p.coords();
        for (c, &flip) in coords.iter_mut().zip(self.reflect.iter()) {
            if flip {
                *c = max - *c;
            }
        }
        Point::new(coords)
    }
}

impl<const D: usize, C: SpaceFillingCurve<D>> SpaceFillingCurve<D> for Reflected<D, C> {
    fn grid(&self) -> Grid<D> {
        self.inner.grid()
    }

    fn index_of(&self, p: Point<D>) -> CurveIndex {
        self.inner.index_of(self.mirror(p))
    }

    fn point_of(&self, idx: CurveIndex) -> Point<D> {
        self.mirror(self.inner.point_of(idx))
    }

    fn name(&self) -> String {
        format!("{}·refl", self.inner.name())
    }
}

/// A curve traversed backwards: `π'(x) = n − 1 − π(x)`.
///
/// Reversal preserves every stretch metric exactly
/// (`|π'(α) − π'(β)| = |π(α) − π(β)|`), which the metric tests exploit.
#[derive(Debug, Clone)]
pub struct Reversed<C> {
    inner: C,
}

impl<C> Reversed<C> {
    /// Wraps `inner`, reversing its traversal order.
    pub fn new(inner: C) -> Self {
        Self { inner }
    }

    /// The wrapped curve.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<const D: usize, C: SpaceFillingCurve<D>> SpaceFillingCurve<D> for Reversed<C> {
    fn grid(&self) -> Grid<D> {
        self.inner.grid()
    }

    fn index_of(&self, p: Point<D>) -> CurveIndex {
        self.inner.grid().n() - 1 - self.inner.index_of(p)
    }

    fn point_of(&self, idx: CurveIndex) -> Point<D> {
        self.inner.point_of(self.inner.grid().n() - 1 - idx)
    }

    fn name(&self) -> String {
        format!("{}·rev", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::ZCurve;
    use crate::simple::SimpleCurve;

    #[test]
    fn axis_permuted_curve_is_a_bijection() {
        let z = ZCurve::<3>::new(2).unwrap();
        let p = AxisPermuted::new(z, [2, 0, 1]).unwrap();
        p.validate_bijection().unwrap();
    }

    #[test]
    fn axis_permutation_validation() {
        let z = ZCurve::<3>::new(1).unwrap();
        assert!(AxisPermuted::new(z, [0, 1, 2]).is_ok());
        assert!(matches!(
            AxisPermuted::new(z, [0, 0, 2]),
            Err(SfcError::InvalidAxisPermutation { .. })
        ));
        assert!(matches!(
            AxisPermuted::new(z, [0, 1, 3]),
            Err(SfcError::InvalidAxisPermutation { .. })
        ));
    }

    #[test]
    fn identity_permutation_is_transparent() {
        let z = ZCurve::<2>::new(3).unwrap();
        let wrapped = AxisPermuted::new(z, [0, 1]).unwrap();
        for p in z.grid().cells() {
            assert_eq!(wrapped.index_of(p), z.index_of(p));
        }
    }

    #[test]
    fn swapping_axes_of_z_swaps_interleave_roles() {
        let z = ZCurve::<2>::new(1).unwrap();
        let sw = AxisPermuted::new(z, [1, 0]).unwrap();
        // Under the swap, the outer point (1, 0) maps to inner (0, 1):
        // key = 01.
        assert_eq!(sw.index_of(Point::new([1, 0])), 0b01);
        assert_eq!(sw.index_of(Point::new([0, 1])), 0b10);
        sw.validate_bijection().unwrap();
    }

    #[test]
    fn reflected_curve_is_a_bijection() {
        let s = SimpleCurve::<2>::new(2).unwrap();
        let r = Reflected::new(s, [true, false]);
        r.validate_bijection().unwrap();
        // Reflecting axis 0: cell (0, y) now has the index (3, y) had.
        assert_eq!(
            r.index_of(Point::new([0, 1])),
            s.index_of(Point::new([3, 1]))
        );
    }

    #[test]
    fn double_reflection_is_identity() {
        let z = ZCurve::<2>::new(2).unwrap();
        let rr = Reflected::new(Reflected::new(z, [true, true]), [true, true]);
        for p in z.grid().cells() {
            assert_eq!(rr.index_of(p), z.index_of(p));
        }
    }

    #[test]
    fn reversed_curve_is_a_bijection_preserving_distances() {
        let z = ZCurve::<2>::new(2).unwrap();
        let rev = Reversed::new(z);
        rev.validate_bijection().unwrap();
        for a in z.grid().cells() {
            for b in z.grid().cells() {
                assert_eq!(rev.curve_distance(a, b), z.curve_distance(a, b));
            }
        }
    }

    #[test]
    fn names_compose() {
        let z = ZCurve::<2>::new(1).unwrap();
        assert!(Reversed::new(z).name().contains("rev"));
        assert!(Reflected::new(z, [true, false]).name().contains("refl"));
        assert!(AxisPermuted::new(z, [1, 0]).unwrap().name().contains("σ"));
    }
}
