//! Plain-text visualisation of two-dimensional curves.
//!
//! [`render_traversal`] draws the curve's path on a character canvas in
//! the paper's figure orientation (dimension 1 rightward, dimension 2
//! upward, origin bottom-left), connecting consecutive indices that are
//! grid neighbors and counting the "jumps" where they are not — exactly
//! the discontinuities visible in the paper's Figure 3 (the Z curve's
//! characteristic shape) versus Figure 4 (the simple curve's sweep).

use crate::curve::SpaceFillingCurve;
use crate::point::Point;

/// A rendered traversal: the drawing plus discontinuity statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rendering {
    /// The character canvas, rows top to bottom.
    pub canvas: String,
    /// Number of consecutive-index pairs that are not grid neighbors
    /// (drawn as gaps).
    pub jumps: u64,
    /// The largest Manhattan distance between consecutive cells.
    pub longest_jump: u64,
}

impl std::fmt::Display for Rendering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.canvas)?;
        if self.jumps > 0 {
            write!(
                f,
                "({} jumps not drawn, longest Δ = {})",
                self.jumps, self.longest_jump
            )?;
        }
        Ok(())
    }
}

/// Renders a 2-D curve's traversal as ASCII art.
///
/// Cells are `o` at even canvas positions; unit steps between consecutive
/// indices are drawn with `-` / `|`; non-adjacent consecutive indices are
/// left blank and counted in [`Rendering::jumps`].
///
/// Intended for small grids (`side ≤ 64`); the canvas is
/// `(2·side−1)²` characters.
pub fn render_traversal<C: SpaceFillingCurve<2>>(curve: &C) -> Rendering {
    let side = curve.grid().side();
    assert!(
        side <= 64,
        "render_traversal is for small grids (side ≤ 64)"
    );
    let dim = (2 * side - 1) as usize;
    let mut canvas = vec![vec![b' '; dim]; dim];

    let pos = |p: Point<2>| -> (usize, usize) {
        // (row, col); dimension 2 points up.
        let col = 2 * p.coord(0) as usize;
        let row = dim - 1 - 2 * p.coord(1) as usize;
        (row, col)
    };

    let mut jumps = 0u64;
    let mut longest = 0u64;
    let mut prev: Option<Point<2>> = None;
    for p in curve.traverse() {
        let (row, col) = pos(p);
        canvas[row][col] = b'o';
        if let Some(q) = prev {
            let dist = p.manhattan(&q);
            if dist == 1 {
                let (prow, pcol) = pos(q);
                let mrow = (row + prow) / 2;
                let mcol = (col + pcol) / 2;
                canvas[mrow][mcol] = if mrow == row { b'-' } else { b'|' };
            } else {
                jumps += 1;
                longest = longest.max(dist);
            }
        }
        prev = Some(p);
    }

    let mut out = String::with_capacity(dim * (dim + 1));
    for row in canvas {
        // Trim trailing spaces per row for tidy output.
        let line = String::from_utf8(row).expect("ascii canvas");
        out.push_str(line.trim_end());
        out.push('\n');
    }
    Rendering {
        canvas: out,
        jumps,
        longest_jump: longest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagonal::DiagonalCurve;
    use crate::hilbert::HilbertCurve;
    use crate::morton::ZCurve;
    use crate::simple::SimpleCurve;
    use crate::snake::SnakeCurve;
    use crate::spiral::SpiralCurve;

    #[test]
    fn snake_renders_without_jumps() {
        let r = render_traversal(&SnakeCurve::<2>::new(2).unwrap());
        assert_eq!(r.jumps, 0);
        assert_eq!(r.longest_jump, 0);
        assert_eq!(r.canvas.matches('o').count(), 16);
    }

    #[test]
    fn hilbert_and_spiral_are_jump_free() {
        assert_eq!(
            render_traversal(&HilbertCurve::<2>::new(3).unwrap()).jumps,
            0
        );
        assert_eq!(render_traversal(&SpiralCurve::new(3).unwrap()).jumps, 0);
    }

    #[test]
    fn z_curve_has_jumps() {
        let r = render_traversal(&ZCurve::<2>::new(2).unwrap());
        // A 4×4 Z curve jumps between each 2×2 block beyond unit steps:
        // 16 cells, 15 steps, of which the diagonal "z" moves are jumps.
        assert!(r.jumps > 0);
        assert!(r.longest_jump >= 2);
        assert!(r.to_string().contains("jumps not drawn"));
    }

    #[test]
    fn simple_curve_jumps_at_row_ends() {
        let r = render_traversal(&SimpleCurve::<2>::new(2).unwrap());
        // 3 row-to-row returns, each of Manhattan length 4 (3 back + 1 up).
        assert_eq!(r.jumps, 3);
        assert_eq!(r.longest_jump, 4);
    }

    #[test]
    fn snake_2x2_snapshot() {
        let r = render_traversal(&SnakeCurve::<2>::new(1).unwrap());
        // (0,0)→(1,0)→(1,1)→(0,1): bottom edge, right edge, top edge.
        let expected = "o-o\n  |\no-o\n";
        assert_eq!(r.canvas, expected);
    }

    #[test]
    fn diagonal_curve_renders() {
        let r = render_traversal(&DiagonalCurve::new(2).unwrap());
        assert_eq!(r.canvas.matches('o').count(), 16);
        // Within-diagonal steps are distance 2: all jumps.
        assert!(r.jumps > 0);
        assert_eq!(r.longest_jump, 2);
    }

    #[test]
    #[should_panic(expected = "small grids")]
    fn large_canvas_rejected() {
        render_traversal(&ZCurve::<2>::new(7).unwrap());
    }
}
