//! The snake (boustrophedon) curve: row-major order with alternating
//! direction, generalized to `d` dimensions.
//!
//! The snake curve is the classical *continuous* relative of the paper's
//! simple curve: consecutive curve positions are always nearest neighbors in
//! the grid. It serves as a baseline showing that continuity alone does not
//! improve the average NN-stretch asymptotics (it shares the simple curve's
//! `Θ(n^{1−1/d})` behaviour).
//!
//! Construction: the reflected mixed-radix (m-ary Gray) code. Writing the
//! curve index in base `m = 2^k` as digits `t_{d−1} … t_0` (most significant
//! digit drives axis `d−1`), the coordinate along axis `i` is traversed in
//! increasing order iff `⌊index / m^{i+1}⌋` is even. Because `m` is even,
//! that parity equals the parity of the single digit `t_{i+1}`, which makes
//! both directions of the mapping a simple digit scan.

use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::grid::Grid;
use crate::point::Point;
use crate::CurveIndex;

/// The `d`-dimensional boustrophedon curve on the grid of side `2^k`.
///
/// ```
/// use sfc_core::{Point, SnakeCurve, SpaceFillingCurve};
/// let s = SnakeCurve::<2>::new(1).unwrap();
/// // 2×2 traversal: (0,0) → (1,0) → (1,1) → (0,1).
/// let order: Vec<_> = s.traverse().collect();
/// assert_eq!(order, vec![
///     Point::new([0, 0]),
///     Point::new([1, 0]),
///     Point::new([1, 1]),
///     Point::new([0, 1]),
/// ]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnakeCurve<const D: usize> {
    grid: Grid<D>,
}

impl<const D: usize> SnakeCurve<D> {
    /// Creates the snake curve over the grid of side `2^k`.
    pub fn new(k: u32) -> Result<Self, SfcError> {
        Ok(Self {
            grid: Grid::new(k)?,
        })
    }

    /// Creates the snake curve over an existing grid.
    pub fn over(grid: Grid<D>) -> Self {
        Self { grid }
    }
}

impl<const D: usize> SpaceFillingCurve<D> for SnakeCurve<D> {
    fn grid(&self) -> Grid<D> {
        self.grid
    }

    fn index_of(&self, p: Point<D>) -> CurveIndex {
        let side = self.grid.side() as u128;
        let max = (side - 1) as u32;
        // Emit digits from the most significant axis down; axis i is
        // reflected iff the digit just emitted for axis i+1 is odd.
        let mut index = 0u128;
        let mut prev_digit = 0u32; // digit of axis D (virtual): even
        for axis in (0..D).rev() {
            let raw = p.coord(axis);
            let digit = if prev_digit & 1 == 0 { raw } else { max - raw };
            index = index * side + u128::from(digit);
            prev_digit = digit;
        }
        index
    }

    fn point_of(&self, idx: CurveIndex) -> Point<D> {
        let side = self.grid.side() as u128;
        let max = (side - 1) as u32;
        // Extract digits most significant first, un-reflecting each axis
        // with the parity of the digit one position up.
        let mut digits = [0u32; D];
        let mut rem = idx;
        for axis in 0..D {
            let place = side.pow((D - 1 - axis) as u32);
            digits[D - 1 - axis] = (rem / place) as u32;
            rem %= place;
        }
        let mut coords = [0u32; D];
        let mut prev_digit = 0u32;
        for axis in (0..D).rev() {
            let digit = digits[axis];
            coords[axis] = if prev_digit & 1 == 0 {
                digit
            } else {
                max - digit
            };
            prev_digit = digit;
        }
        Point::new(coords)
    }

    fn name(&self) -> String {
        "snake".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_bijective() {
        SnakeCurve::<1>::new(5)
            .unwrap()
            .validate_bijection()
            .unwrap();
        SnakeCurve::<2>::new(3)
            .unwrap()
            .validate_bijection()
            .unwrap();
        SnakeCurve::<3>::new(2)
            .unwrap()
            .validate_bijection()
            .unwrap();
        SnakeCurve::<4>::new(1)
            .unwrap()
            .validate_bijection()
            .unwrap();
    }

    #[test]
    fn is_continuous_hamiltonian_path() {
        // The defining property: consecutive indices are grid neighbors.
        assert!(SnakeCurve::<2>::new(3).unwrap().is_continuous());
        assert!(SnakeCurve::<3>::new(2).unwrap().is_continuous());
        assert!(SnakeCurve::<4>::new(1).unwrap().is_continuous());
        assert!(SnakeCurve::<1>::new(4).unwrap().is_continuous());
    }

    #[test]
    fn two_dim_traversal_4x4() {
        let s = SnakeCurve::<2>::new(2).unwrap();
        let order: Vec<_> = s.traverse().collect();
        // Row 0 left→right, row 1 right→left, etc.
        assert_eq!(order[0], Point::new([0, 0]));
        assert_eq!(order[3], Point::new([3, 0]));
        assert_eq!(order[4], Point::new([3, 1]));
        assert_eq!(order[7], Point::new([0, 1]));
        assert_eq!(order[8], Point::new([0, 2]));
        assert_eq!(order[15], Point::new([0, 3]));
    }

    #[test]
    fn one_dim_snake_is_identity() {
        let s = SnakeCurve::<1>::new(4).unwrap();
        for p in s.grid().cells() {
            assert_eq!(s.index_of(p), u128::from(p.coord(0)));
        }
    }

    #[test]
    fn matches_simple_curve_on_even_rows() {
        use crate::simple::SimpleCurve;
        let snake = SnakeCurve::<2>::new(3).unwrap();
        let simple = SimpleCurve::<2>::new(3).unwrap();
        for p in snake.grid().cells() {
            if p.coord(1) % 2 == 0 {
                assert_eq!(snake.index_of(p), simple.index_of(p), "at {p}");
            }
        }
    }
}
