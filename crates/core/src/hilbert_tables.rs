//! Precomputed state-transition tables for the Hilbert curve's batch
//! kernels.
//!
//! Skilling's transpose algorithm ([`crate::HilbertCurve`]) costs `O(d·k)`
//! *dependent* bit operations per point — every level's output feeds the
//! next level's input, so the CPU pipeline stalls on a long serial chain.
//! But the Hilbert curve is exactly self-similar: at every level of the
//! recursion, the curve inside a subcube is the base curve composed with a
//! *signed axis permutation* (an element of the hyperoctahedral group).
//! That makes encoding a finite-state transduction over the Morton digits
//! of a point: `state × d-bit group → d-bit output × next state`.
//!
//! This module derives those tables **from the scalar implementation
//! itself** at construction time (orders 1 and 2 determine the base
//! orientation of each subcube; a breadth-first closure enumerates the
//! reachable states), then verifies the derived machine against the scalar
//! code exhaustively at orders 3 and 4. Nothing is hand-transcribed, so the
//! tables cannot drift from the scalar curve they accelerate.
//!
//! On top of the per-level table, a *wide* table processes several levels
//! per lookup (4 levels = one byte of Morton key for `d = 2`; 2 levels = 6
//! bits for `d = 3`), which is where the batch speedup comes from: one
//! table load replaces 8–12 dependent ALU ops, and the tables (a few KiB)
//! stay L1-resident across a batch.
//!
//! Table derivation is done once per dimension and cached in a
//! [`OnceLock`]; only `d = 2` and `d = 3` are materialised (other
//! dimensions fall back to the scalar path).

use crate::curve::SpaceFillingCurve;
use crate::hilbert::HilbertCurve;
use crate::point::Point;
use std::collections::HashMap;
use std::sync::OnceLock;

/// A signed axis permutation: output axis `i` reads input axis `perm[i]`,
/// XOR-flipped iff bit `i` of `flip` is set. Acting on subcube corners
/// (one bit per axis), these are exactly the orientations a Hilbert
/// subcube can take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SignedPerm<const D: usize> {
    perm: [u8; D],
    flip: u32,
}

impl<const D: usize> SignedPerm<D> {
    fn identity() -> Self {
        let mut perm = [0u8; D];
        for (i, p) in perm.iter_mut().enumerate() {
            *p = i as u8;
        }
        Self { perm, flip: 0 }
    }

    /// Applies to a corner (axis-indexed bitmask).
    fn apply(&self, c: u32) -> u32 {
        let mut out = 0u32;
        for i in 0..D {
            out |= ((c >> self.perm[i]) & 1) << i;
        }
        out ^ self.flip
    }

    /// `self ∘ other`: first `other`, then `self`.
    fn compose(&self, other: &Self) -> Self {
        let mut perm = [0u8; D];
        let mut flip = self.flip;
        for (i, slot) in perm.iter_mut().enumerate() {
            *slot = other.perm[self.perm[i] as usize];
            flip ^= ((other.flip >> self.perm[i]) & 1) << i;
        }
        Self { perm, flip }
    }
}

/// Reconstructs the signed permutation from its corner map `m`
/// (`m[corner] = image corner`), panicking if `m` is not one — which would
/// mean the scalar curve is not self-similar and the whole table approach
/// is invalid.
fn fit_signed_perm<const D: usize>(m: &[u32]) -> SignedPerm<D> {
    let flip = m[0];
    let mut perm = [u8::MAX; D];
    for j in 0..D {
        let t = m[1 << j] ^ flip;
        assert_eq!(
            t.count_ones(),
            1,
            "hilbert subcube map is not a signed permutation"
        );
        perm[t.trailing_zeros() as usize] = j as u8;
    }
    let fitted = SignedPerm { perm, flip };
    for (c, &want) in m.iter().enumerate() {
        assert_eq!(
            fitted.apply(c as u32),
            want,
            "hilbert subcube map disagrees with fitted signed permutation"
        );
    }
    fitted
}

/// The derived transition tables for one dimension.
///
/// Entry encoding for all four tables: `low byte = output bits`,
/// `high byte = next state`. Inputs and outputs use the *packed group*
/// convention of the curve key: within a `d`-bit group, axis 0 is the most
/// significant bit.
#[derive(Debug)]
pub(crate) struct HilbertTables {
    d: u32,
    /// Levels consumed per wide-table lookup.
    wide_levels: u32,
    /// `[state << d | morton_group]` → hilbert group + next state.
    level_enc: Vec<u16>,
    /// `[state << d | hilbert_group]` → morton group + next state.
    level_dec: Vec<u16>,
    /// `[state << (wide_levels·d) | morton_bits]` → hilbert bits + next.
    wide_enc: Vec<u16>,
    /// `[state << (wide_levels·d) | hilbert_bits]` → morton bits + next.
    wide_dec: Vec<u16>,
}

/// Packed group (axis 0 most significant) → axis-indexed corner mask.
fn packed_to_mask<const D: usize>(g: u32) -> u32 {
    let mut c = 0u32;
    for a in 0..D {
        c |= ((g >> (D - 1 - a)) & 1) << a;
    }
    c
}

fn build_tables<const D: usize>(wide_levels: u32) -> HilbertTables {
    let h1 = HilbertCurve::<D>::new(1).expect("order-1 grid");
    let h2 = HilbertCurve::<D>::new(2).expect("order-2 grid");
    let corners = 1usize << D;

    // Base data: the order-1 curve gives each top-level subcube's rank;
    // the order-2 curve reveals each subcube's internal orientation.
    let mut h_base = vec![0u32; corners];
    let mut h1_inv = vec![0u32; corners];
    for (c, rank) in h_base.iter_mut().enumerate() {
        let mut coords = [0u32; D];
        for (i, x) in coords.iter_mut().enumerate() {
            *x = (c as u32 >> i) & 1;
        }
        let idx = h1.index_of(Point::new(coords)) as u32;
        *rank = idx;
        h1_inv[idx as usize] = c as u32;
    }
    let mut sub_orient: Vec<SignedPerm<D>> = Vec::with_capacity(corners);
    for (w, &rank) in h_base.iter().enumerate() {
        let mut corner_map = vec![0u32; corners];
        for (y, slot) in corner_map.iter_mut().enumerate() {
            let mut coords = [0u32; D];
            for (i, x) in coords.iter_mut().enumerate() {
                *x = ((w as u32 >> i) & 1) << 1 | (y as u32 >> i) & 1;
            }
            let z = h2.index_of(Point::new(coords));
            assert_eq!(
                (z >> D) as u32,
                rank,
                "hilbert top-level rank disagrees between orders 1 and 2"
            );
            *slot = h1_inv[(z as u32 & (corners as u32 - 1)) as usize];
        }
        sub_orient.push(fit_signed_perm::<D>(&corner_map));
    }

    // Breadth-first closure over reachable states. For state T and input
    // corner c: the curve visits subcube T(c) of the base orientation, so
    // the output group is h_base[T(c)] and the next state is the subcube's
    // own orientation composed with T.
    let mut states: Vec<SignedPerm<D>> = vec![SignedPerm::identity()];
    let mut ids: HashMap<SignedPerm<D>, usize> = HashMap::new();
    ids.insert(states[0], 0);
    let mut level_enc: Vec<u16> = Vec::new();
    let mut s = 0usize;
    while s < states.len() {
        let t = states[s];
        for g in 0..corners as u32 {
            let tv = t.apply(packed_to_mask::<D>(g));
            let h = h_base[tv as usize];
            let next = sub_orient[tv as usize].compose(&t);
            let next_id = *ids.entry(next).or_insert_with(|| {
                states.push(next);
                states.len() - 1
            });
            debug_assert!(next_id < 256, "state id exceeds one byte");
            level_enc.push(h as u16 | (next_id as u16) << 8);
        }
        s += 1;
    }
    let n_states = states.len();

    let mut level_dec = vec![0u16; n_states << D];
    for state in 0..n_states {
        for g in 0..corners as u32 {
            let e = level_enc[state << D | g as usize];
            let (h, next) = (e & 0xFF, e >> 8);
            level_dec[state << D | h as usize] = g as u16 | next << 8;
        }
    }

    // Wide tables: `wide_levels` composed steps of the level table.
    let group_bits = (wide_levels * D as u32) as usize;
    let wide_inputs = 1usize << group_bits;
    let mut wide_enc = vec![0u16; n_states * wide_inputs];
    let mut wide_dec = vec![0u16; n_states * wide_inputs];
    for state in 0..n_states {
        for bits in 0..wide_inputs {
            let mut st = state;
            let mut out = 0u16;
            for lvl in (0..wide_levels).rev() {
                let g = (bits >> (lvl * D as u32)) & (corners - 1);
                let e = level_enc[st << D | g];
                out = out << D | (e & 0xFF);
                st = (e >> 8) as usize;
            }
            wide_enc[(state << group_bits) | bits] = out | (st as u16) << 8;
            debug_assert!(group_bits <= 8 && st < 256);
        }
        for bits in 0..wide_inputs {
            let e = wide_enc[(state << group_bits) | bits];
            let (h, next) = (e & 0xFF, e >> 8);
            wide_dec[(state << group_bits) | h as usize] = bits as u16 | next << 8;
        }
    }

    let tables = HilbertTables {
        d: D as u32,
        wide_levels,
        level_enc,
        level_dec,
        wide_enc,
        wide_dec,
    };

    // Exhaustive verification against the scalar algorithm at deeper
    // orders: if the scalar curve were not exactly self-similar the
    // derivation above would be wrong, and this catches it at first use.
    let max_verify = if D == 2 { 4 } else { 3 };
    for k in 1..=max_verify {
        let h = HilbertCurve::<D>::new(k).expect("verification grid");
        let z = crate::morton::ZCurve::<D>::new(k).expect("verification grid");
        for p in h.grid().cells() {
            let want = h.index_of(p);
            let got = tables.encode(z.encode(p) as u64, k);
            assert_eq!(
                got, want as u64,
                "hilbert state machine disagrees with scalar at d={D} k={k} p={p}"
            );
            let back = tables.decode(got, k);
            assert_eq!(back, z.encode(p) as u64, "decode mismatch d={D} k={k}");
        }
    }
    tables
}

impl HilbertTables {
    /// Transduces a Morton key (`d·k` bits in a `u64`) into the Hilbert
    /// index, consuming `wide_levels` levels per table lookup.
    #[inline]
    pub(crate) fn encode(&self, morton: u64, k: u32) -> u64 {
        let d = self.d;
        let group_bits = self.wide_levels * d;
        let mut state = 0usize;
        let mut out = 0u64;
        let mut level = k;
        // Leading levels that don't fill a wide group go one at a time.
        while !level.is_multiple_of(self.wide_levels) {
            level -= 1;
            let g = (morton >> (level * d)) as usize & ((1 << d) - 1);
            let e = self.level_enc[state << d | g];
            out = out << d | u64::from(e & 0xFF);
            state = (e >> 8) as usize;
        }
        while level > 0 {
            level -= self.wide_levels;
            let bits = (morton >> (level * d)) as usize & ((1 << group_bits) - 1);
            let e = self.wide_enc[(state << group_bits) | bits];
            out = out << group_bits | u64::from(e & 0xFF);
            state = (e >> 8) as usize;
        }
        out
    }

    /// Inverse of [`encode`](Self::encode): Hilbert index → Morton key.
    #[inline]
    pub(crate) fn decode(&self, hilbert: u64, k: u32) -> u64 {
        let d = self.d;
        let group_bits = self.wide_levels * d;
        let mut state = 0usize;
        let mut out = 0u64;
        let mut level = k;
        while !level.is_multiple_of(self.wide_levels) {
            level -= 1;
            let h = (hilbert >> (level * d)) as usize & ((1 << d) - 1);
            let e = self.level_dec[state << d | h];
            out = out << d | u64::from(e & 0xFF);
            state = (e >> 8) as usize;
        }
        while level > 0 {
            level -= self.wide_levels;
            let bits = (hilbert >> (level * d)) as usize & ((1 << group_bits) - 1);
            let e = self.wide_dec[(state << group_bits) | bits];
            out = out << group_bits | u64::from(e & 0xFF);
            state = (e >> 8) as usize;
        }
        out
    }
}

/// The `d = 2` tables: 4 levels (one Morton byte) per wide lookup.
pub(crate) fn tables_2d() -> &'static HilbertTables {
    static TABLES: OnceLock<HilbertTables> = OnceLock::new();
    TABLES.get_or_init(|| build_tables::<2>(4))
}

/// The `d = 3` tables: 2 levels (6 Morton bits) per wide lookup.
pub(crate) fn tables_3d() -> &'static HilbertTables {
    static TABLES: OnceLock<HilbertTables> = OnceLock::new();
    TABLES.get_or_init(|| build_tables::<3>(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::ZCurve;

    #[test]
    fn tables_build_and_self_verify() {
        // Construction itself verifies orders 1..=4 (2-D) and 1..=3 (3-D)
        // exhaustively; reaching here means the machine matches Skilling.
        let t2 = tables_2d();
        assert_eq!(t2.d, 2);
        let t3 = tables_3d();
        assert_eq!(t3.d, 3);
    }

    #[test]
    fn two_d_state_count_is_the_classical_four() {
        // The 2-D Hilbert curve needs exactly the 4 classical orientations.
        let t = tables_2d();
        assert_eq!(t.level_enc.len() >> 2, 4);
    }

    #[test]
    fn three_d_state_count_is_bounded_by_hyperoctahedral_group() {
        let t = tables_3d();
        let states = t.level_enc.len() >> 3;
        assert!(states <= 48, "3-D states {states} exceed |B₃| = 48");
    }

    #[test]
    fn deep_grid_matches_scalar_spot_checks() {
        // Beyond the orders the builder verifies exhaustively.
        let k = 13;
        let h = HilbertCurve::<2>::new(k).unwrap();
        let z = ZCurve::<2>::new(k).unwrap();
        let t = tables_2d();
        for seed in 0u32..500 {
            let x = seed.wrapping_mul(0x9E37_79B9) % (1 << k);
            let y = seed.wrapping_mul(0x85EB_CA6B) % (1 << k);
            let p = Point::new([x, y]);
            let m = z.encode(p) as u64;
            assert_eq!(t.encode(m, k), h.index_of(p) as u64, "at {p}");
            assert_eq!(t.decode(t.encode(m, k), k), m, "at {p}");
        }
        let k3 = 9;
        let h3 = HilbertCurve::<3>::new(k3).unwrap();
        let z3 = ZCurve::<3>::new(k3).unwrap();
        let t3 = tables_3d();
        for seed in 0u32..500 {
            let x = seed.wrapping_mul(0x9E37_79B9) % (1 << k3);
            let y = seed.wrapping_mul(0x85EB_CA6B) % (1 << k3);
            let w = seed.wrapping_mul(0xC2B2_AE35) % (1 << k3);
            let p = Point::new([x, y, w]);
            let m = z3.encode(p) as u64;
            assert_eq!(t3.encode(m, k3), h3.index_of(p) as u64, "at {p}");
            assert_eq!(t3.decode(t3.encode(m, k3), k3), m, "at {p}");
        }
    }
}
