//! # sfc-store — a mutable LSM-style spatial store over SFC-sorted runs
//!
//! Every static workload in this workspace rebuilds its [`SfcIndex`] from
//! scratch when the data changes. This crate lifts that restriction: a
//! [`SfcStore`] is a *mutable* spatial map keyed by curve index (one live
//! record per grid cell) that absorbs inserts, updates, and deletes while
//! staying queryable through the same key-range machinery — BIGMIN scans,
//! exact interval decomposition, verified kNN — applied per level and
//! merged.
//!
//! ## Lifecycle of a write
//!
//! The store is organised like a log-structured merge tree whose sorted
//! runs are exactly the SoA column triples of `sfc-index`:
//!
//! 1. **Memtable.** Every `insert`/`delete` lands in a sorted in-memory
//!    table (a `BTreeMap` keyed by curve index). A delete writes a
//!    *tombstone* — a versioned "this cell is now empty" marker — because
//!    older levels may still hold a record for the cell.
//! 2. **Flush.** When the memtable reaches its capacity (or [`SfcStore::flush`]
//!    is called) it is drained, in key order, into a new immutable **run**:
//!    an [`SfcIndex`] with `Option<T>` payloads adopted via
//!    [`SfcIndex::from_sorted`] — no re-sorting, no re-encoding. Runs are
//!    stacked oldest → newest; within a run every key is unique.
//! 3. **Compaction.** After each flush, size-tiered merging restores the
//!    invariant that each run is at least twice the size of the run above
//!    it: adjacent runs violating the ratio are k-way merged
//!    (newest version of each key wins, superseded versions are dropped).
//!    Tombstones are dropped only when a merge produces the *bottom* run —
//!    below it there is nothing left to shadow. [`SfcStore::compact`]
//!    forces a full merge into a single tombstone-free run.
//! 4. **Queries** span all levels: each level is scanned with the shared
//!    primitives from `sfc-index` ([`interval_scan`](sfc_index::interval_scan),
//!    [`bigmin_scan`](sfc_index::bigmin_scan)), per-level work is summed
//!    into one [`QueryStats`](sfc_index::QueryStats), and results are
//!    merged newest-wins with tombstones suppressing older versions.
//!    [`SfcStore::iter`] exposes the same merged view as a snapshot
//!    iterator in curve order.
//!
//! ## Zone maps and the adaptive query planner
//!
//! Every run carries the block summaries of
//! [`sfc_index::ZoneMap`] — per 64-slot block, a fence key, the point
//! AABB, and a live (non-tombstone) count — built once at flush/merge
//! time. The query paths lean on them end-to-end:
//!
//! * **Run pruning.** A run whose key range misses the query's curve span,
//!   or whose AABB misses the box, is skipped without a single seek
//!   (`QueryStats::blocks_pruned` counts what was skipped).
//! * **Block pruning.** Inside a BIGMIN scan, blocks whose AABB misses
//!   the box are stepped over and blocks contained in the box are
//!   bulk-accepted — no per-key decode or filter either way; interval
//!   seeks gallop forward from the previous interval's position instead
//!   of re-searching the whole column.
//! * **kNN.** Candidate collection skips all-dead blocks, stops a walk at
//!   blocks whose AABB distance lower bound cannot tighten the current
//!   k-th best (a thread-local top-k distance heap replaces per-query
//!   candidate vectors), and the verification ball runs through the box
//!   planner.
//! * **The planner.** [`SfcStore::query_box`] picks intervals-vs-BIGMIN
//!   **per level** from run statistics instead of forcing one strategy
//!   store-wide: non-Morton curves always decompose; Morton boxes larger
//!   than [`INTERVAL_VOLUME_CUTOFF`] cells skip decomposition and jump;
//!   otherwise a run holding fewer slots inside the box's key span than
//!   there are intervals is jump-scanned while bigger runs gallop the
//!   interval list. [`SfcStore::plan_box_query`] exposes the chosen
//!   [`QueryPlan`]; `examples/query_planner.rs` prints it live. The
//!   sharded router makes the decompose decision once, clips intervals
//!   per shard, and lets every shard plan its own levels.
//!
//! The fixed-strategy entry points (`query_box_intervals`,
//! `query_box_bigmin`) remain for callers that know their workload; the
//! pre-zone-map implementations survive as hidden `*_plain` methods used
//! by the differential tests and as the benchmark baseline.
//!
//! Amortised write cost is `O(log² n)` comparisons per update (memtable
//! insert plus a geometric cascade of sequential merges); the run count is
//! bounded by `O(log n)`, which bounds per-query overhead. Streaming 100k
//! updates into a million-record store this way is orders of magnitude
//! cheaper than 100k-record-batched full rebuilds — see
//! `crates/bench/benches/store.rs`.
//!
//! ## Scaling out: shards and snapshots
//!
//! A single [`SfcStore`] is **single-writer, single-reader** (`&mut self`
//! writes, `&self` reads, no internal synchronisation). Two layers on top
//! lift that limit without touching the core write path:
//!
//! **Sharding** ([`ShardedSfcStore`]). The keyspace `0..n` is cut into
//! contiguous curve-index ranges by a
//! [`Partition`](sfc_partition::Partition) — the paper's SFC
//! domain-decomposition structure, reused verbatim as a shard router.
//! Boundary semantics are **half-open**: shard `j` owns
//! `boundaries[j] .. boundaries[j+1]`, so every curve key routes to
//! exactly one shard. Writes touch one shard; box queries compute their
//! curve intervals once, clip them per shard, and fan out to only the
//! shards whose range intersects them; results concatenate in shard order
//! (which *is* curve order) with per-shard [`QueryStats`] summed. Every
//! read is byte-identical to a single store holding the same records.
//! Observed per-cell write weights
//! ([`TrafficWeights`](sfc_partition::TrafficWeights)) feed
//! [`ShardedSfcStore::rebalance`], which recomputes min-bottleneck
//! boundaries from live traffic and migrates records — the paper's load
//! balancer closing the loop over a running store.
//!
//! **Snapshots** ([`StoreSnapshot`] / [`ShardedSnapshot`]). Runs are held
//! behind `Arc`, so [`SfcStore::snapshot`] can freeze the current run
//! stack by cloning pointers (the memtable is flushed first so the
//! snapshot is complete). The snapshot is an owned `Send + Sync` value:
//! readers — on other threads, if desired — keep querying the frozen
//! state while the writer absorbs new writes into fresh memtables and
//! runs. A compaction that wants to consume a pinned run copies it out of
//! its `Arc` instead (copy-on-write; the reason the write path requires
//! `T: Clone`), leaving every outstanding snapshot intact.
//!
//! **Migration path.** Code written against the single store upgrades
//! mechanically: construct a `ShardedSfcStore` with the same curve plus a
//! shard count, and the read/write API is unchanged. True parallel
//! fan-out needs only real `rayon` over
//! [`shards()`](ShardedSfcStore::shards) — the vendored stand-in runs the
//! same code sequentially (see ROADMAP "Open items").
//!
//! [`QueryStats`]: sfc_index::QueryStats
//! [`SfcIndex`]: sfc_index::SfcIndex
//! [`SfcIndex::from_sorted`]: sfc_index::SfcIndex::from_sorted

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod merge;
mod shard;
mod snapshot;
mod store;
mod view;

pub use shard::{ShardedSfcStore, ShardedSnapshot};
pub use snapshot::StoreSnapshot;
pub use store::{SfcStore, StoreEntryRef, DEFAULT_MEMTABLE_CAPACITY};
pub use view::{LevelStrategy, QueryPlan, SnapshotIter, INTERVAL_VOLUME_CUTOFF};
