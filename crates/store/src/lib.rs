//! # sfc-store — a mutable LSM-style spatial store over SFC-sorted runs
//!
//! Every static workload in this workspace rebuilds its [`SfcIndex`] from
//! scratch when the data changes. This crate lifts that restriction: a
//! [`SfcStore`] is a *mutable* spatial map keyed by curve index (one live
//! record per grid cell) that absorbs inserts, updates, and deletes while
//! staying queryable through the same key-range machinery — BIGMIN scans,
//! exact interval decomposition, verified kNN — applied per level and
//! merged.
//!
//! ## Lifecycle of a write
//!
//! The store is organised like a log-structured merge tree whose sorted
//! runs are exactly the SoA column triples of `sfc-index`:
//!
//! 1. **Memtable.** Every `insert`/`delete` lands in a sorted in-memory
//!    table (a `BTreeMap` keyed by curve index). A delete writes a
//!    *tombstone* — a versioned "this cell is now empty" marker — because
//!    older levels may still hold a record for the cell.
//! 2. **Flush.** When the memtable reaches its capacity (or [`SfcStore::flush`]
//!    is called) it is drained, in key order, into a new immutable **run**:
//!    an [`SfcIndex`] with `Option<T>` payloads adopted via
//!    [`SfcIndex::from_sorted`] — no re-sorting, no re-encoding. Runs are
//!    stacked oldest → newest; within a run every key is unique.
//! 3. **Compaction.** After each flush, size-tiered merging restores the
//!    invariant that each run is at least twice the size of the run above
//!    it: adjacent runs violating the ratio are k-way merged
//!    (newest version of each key wins, superseded versions are dropped).
//!    Tombstones are dropped only when a merge produces the *bottom* run —
//!    below it there is nothing left to shadow. [`SfcStore::compact`]
//!    forces a full merge into a single tombstone-free run.
//! 4. **Queries** span all levels: each level is scanned with the shared
//!    primitives from `sfc-index` ([`interval_scan`](sfc_index::interval_scan),
//!    [`bigmin_scan`](sfc_index::bigmin_scan)), per-level work is summed
//!    into one [`QueryStats`](sfc_index::QueryStats), and results are
//!    merged newest-wins with tombstones suppressing older versions.
//!    [`SfcStore::iter`] exposes the same merged view as a snapshot
//!    iterator in curve order.
//!
//! Amortised write cost is `O(log² n)` comparisons per update (memtable
//! insert plus a geometric cascade of sequential merges); the run count is
//! bounded by `O(log n)`, which bounds per-query overhead. Streaming 100k
//! updates into a million-record store this way is orders of magnitude
//! cheaper than 100k-record-batched full rebuilds — see
//! `crates/bench/benches/store.rs`.
//!
//! ## Concurrency
//!
//! The store is **single-writer, single-reader** (`&mut self` writes, `&self`
//! reads, no internal synchronisation). Sharding across stores and an
//! epoch-based concurrent reader path are the designated follow-on work —
//! see ROADMAP "Open items".
//!
//! [`SfcIndex`]: sfc_index::SfcIndex
//! [`SfcIndex::from_sorted`]: sfc_index::SfcIndex::from_sorted

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod merge;
mod store;

pub use store::{SfcStore, SnapshotIter, StoreEntryRef, DEFAULT_MEMTABLE_CAPACITY};
