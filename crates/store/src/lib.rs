//! # sfc-store — a mutable LSM-style spatial store over SFC-sorted runs
//!
//! Every static workload in this workspace rebuilds its [`SfcIndex`] from
//! scratch when the data changes. This crate lifts that restriction: a
//! [`SfcStore`] is a *mutable* spatial map keyed by curve index (one live
//! record per grid cell) that absorbs inserts, updates, and deletes while
//! staying queryable through the same key-range machinery — BIGMIN scans,
//! exact interval decomposition, verified kNN — applied per level and
//! merged.
//!
//! ## Lifecycle of a write
//!
//! The store is organised like a log-structured merge tree whose sorted
//! runs are exactly the SoA column triples of `sfc-index`:
//!
//! 1. **Memtable.** Every `insert`/`delete` lands in a sorted in-memory
//!    table — an [`SfcMemtable`](memtable::SfcMemtable), the
//!    locality-aware B+tree described below. A delete writes a
//!    *tombstone* — a versioned "this cell is now empty" marker — because
//!    older levels may still hold a record for the cell.
//! 2. **Flush.** When the memtable reaches its capacity (or [`SfcStore::flush`]
//!    is called) it is drained, in key order, into a new immutable **run**:
//!    an [`SfcIndex`] with `Option<T>` payloads adopted via
//!    [`SfcIndex::from_sorted`] — no re-sorting, no re-encoding. Runs are
//!    stacked oldest → newest; within a run every key is unique.
//! 3. **Compaction.** After each flush, size-tiered merging restores the
//!    invariant that each run is at least twice the size of the run above
//!    it: adjacent runs violating the ratio are k-way merged
//!    (newest version of each key wins, superseded versions are dropped).
//!    Tombstones are dropped only when a merge produces the *bottom* run —
//!    below it there is nothing left to shadow. [`SfcStore::compact`]
//!    forces a full merge into a single tombstone-free run.
//! 4. **Queries** span all levels: each level is scanned with the shared
//!    primitives from `sfc-index` ([`interval_scan`](sfc_index::interval_scan),
//!    [`bigmin_scan`](sfc_index::bigmin_scan)), per-level work is summed
//!    into one [`QueryStats`](sfc_index::QueryStats), and results are
//!    merged newest-wins with tombstones suppressing older versions.
//!    [`SfcStore::iter`] exposes the same merged view as a snapshot
//!    iterator in curve order.
//!
//! ## The memtable: a locality-aware B+tree
//!
//! Every layer above holds its in-memory tail in an
//! [`SfcMemtable`](memtable::SfcMemtable) — an opaque wrapper (no
//! engine layer can name the backing map) over the B+tree in
//! [`memtable::bptree`]:
//!
//! * **Large leaves.** Leaves hold
//!   [`DEFAULT_LEAF_CAPACITY`](memtable::bptree::DEFAULT_LEAF_CAPACITY)
//!   (64) entries in parallel sorted key/value arrays, so one leaf spans
//!   a whole curve neighborhood contiguously; leaves are doubly linked
//!   for ordered iteration both ways, and heap accounting
//!   ([`heap_bytes`](memtable::SfcMemtable::heap_bytes), surfaced as the
//!   `memtable.bytes` gauge and the store's `heap_bytes()`) is `O(1)`
//!   because every leaf allocation is capacity-fixed.
//! * **A last-accessed-leaf hint.** Each seek records the leaf it landed
//!   in (a relaxed atomic, so shared readers refresh it too); the next
//!   operation checks the hinted leaf's key bounds before descending
//!   from the root. Curve-local upsert streams — the order the paper's
//!   SFC sorting produces by construction — resolve almost every write
//!   through the hint, which is why the `memtable_ingest` bench gates
//!   the B+tree at ≥ 1× `BTreeMap` on the curve-local stream (measured
//!   3.6× on the ascending sweep; see `BENCH_store.json`).
//! * **Owned cursors valid across mutation.** A
//!   [`Cursor`](memtable::Cursor) stores `(key, leaf, slot)` and borrows
//!   nothing: each access revalidates the cached slot in `O(1)` (does
//!   this leaf still hold this key here?) and re-seeks by key only when
//!   mutation moved it. After its entry is removed,
//!   [`value`](memtable::Cursor::value) reports `None` while
//!   [`next`](memtable::Cursor::next)/[`prev`](memtable::Cursor::prev)
//!   keep walking from the remembered key.
//! * **Drain protocol.** Removal frees empty nodes but never rebalances
//!   underfull ones; instead the flush drain —
//!   [`retain`](memtable::SfcMemtable::retain), one linked-leaf walk
//!   that compacts survivors in place and rebuilds the inner levels
//!   bulk-load-style — restores density wholesale. The concurrent
//!   shard drains exactly `seq < high_water` with it, and the capture
//!   path extracts a query's key span with a bounded range walk
//!   bulk-loaded via [`from_sorted`](memtable::SfcMemtable::from_sorted).
//!
//! The old `BTreeMap` backing survives behind the `memtable-btreemap`
//! feature as a differential reference: the full engine test suite run
//! with `--features sfc-store/memtable-btreemap` must behave
//! identically, and CI runs exactly that.
//!
//! ## Zone maps and the adaptive query planner
//!
//! Every run carries the block summaries of
//! [`sfc_index::ZoneMap`] — per 64-slot block, a fence key, the point
//! AABB, and a live (non-tombstone) count — built once at flush/merge
//! time. The query paths lean on them end-to-end:
//!
//! * **Run pruning.** A run whose key range misses the query's curve span,
//!   or whose AABB misses the box, is skipped without a single seek
//!   (`QueryStats::blocks_pruned` counts what was skipped).
//! * **Block pruning.** Inside a BIGMIN scan, blocks whose AABB misses
//!   the box are stepped over and blocks contained in the box are
//!   bulk-accepted — no per-key decode or filter either way; interval
//!   seeks gallop forward from the previous interval's position instead
//!   of re-searching the whole column.
//! * **kNN.** Candidate collection skips all-dead blocks, stops a walk at
//!   blocks whose AABB distance lower bound cannot tighten the current
//!   k-th best (a thread-local top-k distance heap replaces per-query
//!   candidate vectors), and the verification ball runs through the box
//!   planner.
//! * **The planner.** [`SfcStore::query_box`] picks intervals-vs-BIGMIN
//!   **per level** from run statistics instead of forcing one strategy
//!   store-wide: non-Morton curves always decompose; Morton boxes larger
//!   than [`INTERVAL_VOLUME_CUTOFF`] cells skip decomposition and jump;
//!   otherwise a run holding fewer slots inside the box's key span than
//!   there are intervals is jump-scanned while bigger runs gallop the
//!   interval list. [`SfcStore::plan_box_query`] exposes the chosen
//!   [`QueryPlan`]; `examples/query_planner.rs` prints it live. The
//!   sharded router makes the decompose decision once, clips intervals
//!   per shard, and lets every shard plan its own levels.
//!
//! The fixed-strategy entry points (`query_box_intervals`,
//! `query_box_bigmin`) remain for callers that know their workload; the
//! pre-zone-map implementations survive as hidden `*_plain` methods used
//! by the differential tests and as the benchmark baseline.
//!
//! Amortised write cost is `O(log² n)` comparisons per update (memtable
//! insert plus a geometric cascade of sequential merges); the run count is
//! bounded by `O(log n)`, which bounds per-query overhead. Streaming 100k
//! updates into a million-record store this way is orders of magnitude
//! cheaper than 100k-record-batched full rebuilds — see
//! `crates/bench/benches/store.rs`.
//!
//! ## Scaling out: the concurrent sharded engine
//!
//! A single [`SfcStore`] is **single-writer** (`&mut self` writes, no
//! internal synchronisation) — the simple building block. The
//! [`ShardedSfcStore`] on top of it is a genuinely **concurrent engine**:
//! every operation, including `insert`/`delete`/`flush`/`compact`/
//! `snapshot`/`rebalance`, takes `&self`, and the store is `Send + Sync`.
//!
//! **Sharding** — the keyspace `0..n` is cut into contiguous curve-index
//! ranges by a [`Partition`](sfc_partition::Partition) — the paper's SFC
//! domain-decomposition structure, reused verbatim as a shard router.
//! Boundary semantics are **half-open**: shard `j` owns
//! `boundaries[j] .. boundaries[j+1]`, so every curve key routes to
//! exactly one shard. Curve contiguity is what makes the concurrency
//! design work: each shard's mutable tail (a seq-numbered memtable plus
//! its live count) sits behind its **own mutex**, so concurrent writers
//! to different shards never contend — the paper's locality argument,
//! turned into a lock-partitioning argument.
//!
//! **Epoch publication** — each shard's frozen run stack is published
//! through an atomically swapped `Arc` (a hand-rolled arc-swap; see the
//! `epoch` module). Queries *capture* a shard — one microscopic lock to
//! clone the memtable range the query spans and pin the current epoch —
//! and then scan entirely lock-free; flushes and compactions build the
//! next run stack off to the side and swap it in whole, so **readers
//! never block maintenance and maintenance never blocks readers**. A
//! flush publishes the new run *before* draining the memtable
//! (per-entry sequence numbers make the drain race-free), so no reader
//! can ever observe a write in neither place. Because query results can
//! no longer borrow from behind a lock, sharded queries return owned
//! [`StoreEntry`] values (payloads cloned per reported hit).
//!
//! **Lock order** — `partition RwLock → shard maint → shard mem →
//! { epoch cell / traffic stripe | shard persist → manifest → commit
//! queue }`; the durable chain appears only on stores opened with
//! [`ShardedSfcStore::open_durable`], the commit-queue mutex is the last
//! lock on every path, and multiple shards are only locked together (in
//! ascending index order) under the partition's write guard.
//!
//! **Traffic and rebalancing** — per-cell write weights accumulate in a
//! striped [`ConcurrentTraffic`](sfc_partition::ConcurrentTraffic)
//! (one stripe per shard, per-stripe atomic sampling counters — a hot
//! shard's sample rate cannot be skewed by other shards' writes).
//! [`ShardedSfcStore::rebalance`] is the engine's one **stop-the-world**
//! operation: it holds the partition's write guard for its whole
//! duration (excluding all writers and router-level readers), flushes
//! every shard, recomputes min-bottleneck boundaries from the drained
//! traffic, and migrates records as pre-sorted bottom runs.
//!
//! **Batched writes** — both store flavours accept a whole batch of
//! upserts/deletes in one call ([`SfcStore::apply_batch`] /
//! [`ShardedSfcStore::apply_batch`], ops as [`BatchOp`] values). The
//! router keys every op, takes the partition read guard **once**,
//! routes the batch into per-shard slices, stably sorts each slice by
//! curve index (duplicate cells keep submission order — the last write
//! wins, exactly as one-by-one), and applies each slice under a
//! **single** memtable-lock hold, where the ascending keys ride the
//! B+tree's last-leaf insertion hint instead of paying a root descent
//! per record. The per-record costs that remain — lock acquires, WAL
//! frames, commit-queue tickets — are amortised over the batch.
//!
//! **Snapshots** ([`StoreSnapshot`] / [`ShardedSnapshot`]) — runs are
//! held behind `Arc`, so a snapshot pins the published epochs by cloning
//! pointers (each shard is flushed first so the snapshot is complete).
//! The snapshot is an owned `Send + Sync` value that never touches a
//! lock after creation: readers on any thread keep querying the frozen
//! state while writers continue. A compaction that wants to consume a
//! pinned run copies it out of its `Arc` instead (copy-on-write; the
//! reason the write path requires `T: Clone`), leaving every
//! outstanding snapshot — and every published epoch — intact.
//!
//! **Parallel fan-out** — the sharded query paths have
//! `*_par` twins (`query_box_par`, `query_box_intervals_par`,
//! `query_box_bigmin_par`, `knn_par`, on both the store and its
//! snapshots) that distribute the per-shard scans across
//! `std::thread::scope` worker threads; per-shard results join in shard
//! order, so parallel results are byte-identical to sequential ones.
//! The vendored rayon stand-in spawns real threads too, so
//! `par_iter()`-style fan-outs over snapshot shards distribute as well.
//!
//! ## Durability: write-ahead log, group commit, crash recovery
//!
//! Everything above is volatile; [`ShardedSfcStore::open_durable`] makes
//! the sharded engine crash-safe (see the [`wal`] module for the full
//! contract). The design rides the structure the engine already has
//! rather than adding a second ordering domain:
//!
//! * **Logging.** Every write appends one length-prefixed, CRC32C-checked
//!   frame to its shard's append-only segment log, carrying the *same
//!   sequence number* the memtable stamped on the entry. Writers never
//!   touch a file: frames land on an in-memory commit queue and a
//!   dedicated committer thread batches them — one fsync per shard per
//!   **group**, where a group accumulates across drains up to
//!   [`WalConfig::fsync_every`] records while no writer waits on an ack
//!   (a waiter, a barrier, or shutdown fsyncs immediately;
//!   [`WalConfig::max_batch_delay`] optionally lingers for fuller
//!   groups) — before acking. [`WalConfig::fsync_bytes`] adds a byte
//!   bound so bursts of large frames close groups early.
//!   [`ShardedSfcStore::sync`] is the explicit durability barrier for
//!   the `*_nosync` write variants.
//! * **Frame coalescing (format v2).** A batched write logs each
//!   shard's slice as one multi-record frame — a batch tag, the record
//!   count, and the packed records under a **single** CRC32C and a
//!   single commit-queue ticket. Because the checksum covers the whole
//!   body, recovery replays a batch frame all-or-nothing: a torn batch
//!   tail never resurrects half a slice. A one-record batch emits the
//!   v1 frame byte-for-byte, so batched and unbatched logs intermix
//!   freely in one segment.
//! * **Parallel recovery.** Shards recover from disjoint directories
//!   and share nothing, so reopening fans the per-shard segment scans
//!   and replays across threads (serial with
//!   [`WalConfig::recovery_threads`]`(1)`); [`RecoveryStats::shards`]
//!   reports each shard's replay breakdown and
//!   [`RecoveryStats::replay_threads`] the fan-out used. The recovered
//!   store is identical either way.
//! * **Acked vs applied.** A write is *applied* (visible to queries and
//!   to later writes) the moment its memtable lock drops, and *acked*
//!   (durable) only when its group's fsync completes. The synchronous
//!   write paths return after both; on error the write is applied but
//!   may be lost by a crash.
//! * **Checkpoints.** A flush persists its published runs as run files,
//!   writes a checkpoint naming them plus the flush's sequence
//!   high-water `H`, and flips the root `MANIFEST`
//!   (write-temp → fsync → rename → fsync-dir — the single commit
//!   point). Reopening loads the checkpointed runs and replays exactly
//!   the frames with `seq >= H`; segments wholly below `H` are pruned by
//!   the committer after the next group commit, off the writer path.
//!   A torn frame at the newest segment's tail (only ever an unacked
//!   write) is discarded; damage anywhere else is a typed
//!   [`WalError::Corrupt`] — never a panic, never a silent skip.
//! * **Background maintenance.** [`ShardedSfcStore::start_maintenance`]
//!   moves size-triggered flushes and tiered-compaction scheduling onto
//!   a per-store thread with an optional token-bucket [`RateLimit`], so
//!   writers never stall behind a major merge ([`MaintenanceConfig`]).
//!
//! ## Observability
//!
//! Both store flavours can report into a shared
//! [`MetricsRegistry`](sfc_obs::MetricsRegistry): attach an
//! [`EngineMetrics`] (see the [`obs`] module) and every
//! insert/delete/get/flush/compact/rebalance feeds per-shard counters,
//! sampled latency histograms, and level gauges, while every query folds
//! its [`QueryStats`] into engine-wide counters and its wall time into a
//! per-operation histogram. Queries crossing a configurable threshold
//! leave a [`QueryTrace`] — the chosen plan's per-level strategies plus
//! the work counters — in a bounded slow-query ring. Attachment is
//! opt-in; an unattached store pays one `Option` check per operation.
//!
//! [`QueryStats`]: sfc_index::QueryStats
//! [`SfcIndex`]: sfc_index::SfcIndex
//! [`SfcIndex::from_sorted`]: sfc_index::SfcIndex::from_sorted

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod epoch;
mod maintenance;
pub mod memtable;
mod merge;
pub mod obs;
mod shard;
mod snapshot;
mod store;
mod view;
pub mod wal;

pub use maintenance::{MaintenanceConfig, RateLimit};
pub use obs::{EngineMetrics, QueryTrace};
pub use shard::{ShardedSfcStore, ShardedSnapshot};
pub use snapshot::StoreSnapshot;
pub use store::{BatchOp, SfcStore, StoreEntry, StoreEntryRef, DEFAULT_MEMTABLE_CAPACITY};
pub use view::{
    LevelStrategy, QueryPlan, SnapshotIter, INTERVAL_VOLUME_CUTOFF, KNN_BALL_INTERVALS_CUTOFF,
};
pub use wal::{RecoveryStats, ShardRecoveryStats, WalConfig, WalError, WalPayload};
