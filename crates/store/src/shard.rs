//! The sharded store: a `Partition` over curve-index ranges routing
//! writes to independent [`SfcStore`] shards.
//!
//! This is the bridge from the paper's partitioner to the serving layer:
//! the same curve-range [`Partition`] that balances work across processors
//! in SFC domain decomposition balances a keyspace across store shards.
//! Each shard owns one **half-open** curve-index range
//! (`boundaries[j] .. boundaries[j+1]`) and is a complete single-writer
//! [`SfcStore`]; the router above them
//!
//! * sends every upsert/delete to the shard owning the record's curve key
//!   (recording per-cell write weight as it goes),
//! * fans box queries out to **only** the shards whose range intersects
//!   the query's curve intervals, clipping the interval list per shard,
//! * concatenates per-shard results — shard ranges are ascending and
//!   disjoint, so shard-order concatenation *is* curve order — and sums
//!   the per-shard [`QueryStats`],
//! * recomputes boundaries from the observed weights on demand
//!   ([`ShardedSfcStore::rebalance`], backed by
//!   [`partition_min_bottleneck_sparse`](sfc_partition::partition_min_bottleneck_sparse))
//!   and migrates records to their new shards.

use std::fmt;

use sfc_core::{CurveIndex, Point, SpaceFillingCurve, ZCurve};
use sfc_index::{BoxRegion, QueryStats};
use sfc_partition::{Partition, TrafficWeights};

use crate::snapshot::StoreSnapshot;
use crate::store::{SfcStore, StoreEntryRef, DEFAULT_MEMTABLE_CAPACITY};
use crate::view::{
    radius_from_heap, rank_by_distance, should_decompose, with_knn_heap, LevelsView,
};

/// Clips sorted inclusive intervals to the half-open range `start..end`,
/// keeping only the non-empty intersections.
fn clip_intervals(
    intervals: &[(CurveIndex, CurveIndex)],
    range: &std::ops::Range<CurveIndex>,
) -> Vec<(CurveIndex, CurveIndex)> {
    intervals
        .iter()
        .filter(|&&(lo, hi)| hi >= range.start && lo < range.end)
        .map(|&(lo, hi)| (lo.max(range.start), hi.min(range.end - 1)))
        .collect()
}

/// The borrowed fan-out engine shared by [`ShardedSfcStore`] and
/// [`ShardedSnapshot`]: a partition plus one [`LevelsView`] per shard.
/// Exactly as [`LevelsView`] holds the merged multi-level algorithms once
/// for store and snapshot, this holds the clip/route/concatenate
/// algorithms once for their sharded counterparts.
struct ShardsView<'a, const D: usize, T, C: SpaceFillingCurve<D>> {
    curve: &'a C,
    partition: &'a Partition,
    shards: Vec<LevelsView<'a, D, T, C>>,
}

impl<'a, const D: usize, T, C: SpaceFillingCurve<D>> ShardsView<'a, D, T, C> {
    /// Interval query fanned out to only the shards whose range
    /// intersects the (sorted, inclusive) intervals, each handed the list
    /// clipped to its own range. Shard-order concatenation = curve order.
    fn query_intervals(
        &self,
        intervals: &[(CurveIndex, CurveIndex)],
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        for (j, shard) in self.shards.iter().enumerate() {
            let range = self.partition.range(j);
            if range.is_empty() {
                continue;
            }
            let clipped = clip_intervals(intervals, &range);
            if clipped.is_empty() {
                continue;
            }
            let (hits, shard_stats) = shard.query_intervals(&clipped);
            out.extend(hits);
            stats.add(&shard_stats);
        }
        stats.reported = out.len() as u64;
        (out, stats)
    }

    /// Box query via exact interval decomposition (intervals computed
    /// once for the whole fan-out).
    fn query_box_intervals(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        self.query_intervals(&b.curve_intervals(self.curve))
    }

    /// Box query through the adaptive planner: the decompose-or-not
    /// decision (and the decomposition itself) happens **once** at the
    /// router, each intersecting shard receives the interval list clipped
    /// to its range and plans its own levels from its own run statistics —
    /// the bottom-heavy shard may gallop intervals while a freshly
    /// rebalanced neighbor BIGMIN-scans its small runs.
    fn query_box(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let intervals =
            should_decompose(self.curve, b.volume()).then(|| b.curve_intervals(self.curve));
        let zrange = self
            .curve
            .as_morton()
            .map(|z| (z.encode(b.lo()), z.encode(b.hi())));
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        for (j, shard) in self.shards.iter().enumerate() {
            let range = self.partition.range(j);
            if range.is_empty() {
                continue;
            }
            if let Some((zmin, zmax)) = zrange {
                if range.start > zmax || range.end <= zmin {
                    continue;
                }
            }
            let clipped = intervals.as_ref().map(|iv| clip_intervals(iv, &range));
            if let Some(civ) = &clipped {
                if civ.is_empty() {
                    continue;
                }
            }
            let plan = shard.plan_box_with(b, clipped);
            let (hits, shard_stats) = shard.execute_plan(b, &plan);
            out.extend(hits);
            stats.add(&shard_stats);
        }
        stats.reported = out.len() as u64;
        (out, stats)
    }

    /// Exact kNN: live candidates gathered per shard into the shared
    /// top-k distance heap (zone-map live counts and AABB distance bounds
    /// sharpen each shard's walk), the k-th best bounds the verification
    /// radius, and the Chebyshev ball fans out through the planner.
    fn knn(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let key = self.curve.index_of(q);
        let mut stats = QueryStats::default();
        let radius = with_knn_heap(|heap| {
            for shard in &self.shards {
                shard.knn_collect(q, key, k, window, heap, &mut stats);
            }
            radius_from_heap(self.curve.grid(), heap, k)
        });
        let ball = BoxRegion::chebyshev_ball(self.curve.grid(), q, radius);
        let (all, ball_stats) = self.query_box(&ball);
        stats.add(&ball_stats);
        let all = rank_by_distance(all, q, k);
        stats.reported = all.len() as u64;
        (all, stats)
    }
}

impl<'a, const D: usize, T> ShardsView<'a, D, T, ZCurve<D>> {
    /// BIGMIN box query fanned out to only the shards whose range
    /// intersects the box's Morton key range `[Z(lo), Z(hi)]`.
    fn query_box_bigmin(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let zmin = self.curve.encode(b.lo());
        let zmax = self.curve.encode(b.hi());
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        for (j, shard) in self.shards.iter().enumerate() {
            let range = self.partition.range(j);
            if range.is_empty() || range.start > zmax || range.end <= zmin {
                continue;
            }
            let (hits, shard_stats) = shard.query_box_bigmin(b);
            out.extend(hits);
            stats.add(&shard_stats);
        }
        stats.reported = out.len() as u64;
        (out, stats)
    }
}

/// A mutable spatial store sharded by curve-index range.
///
/// Reads and queries return results byte-identical to a single
/// [`SfcStore`] holding the same records; writes route through a
/// [`Partition`] and touch exactly one shard. See the module docs for the
/// architecture and [`ShardedSfcStore::rebalance`] for the feedback loop
/// from observed traffic back into the partition.
pub struct ShardedSfcStore<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    curve: C,
    /// Shard `j` owns the half-open curve range `partition.range(j)`.
    partition: Partition,
    shards: Vec<SfcStore<D, T, C>>,
    /// Observed per-cell write weight since the last rebalance.
    traffic: TrafficWeights,
    /// Record 1 in `sample_every` writes (with weight `sample_every`) to
    /// bound the accumulator's footprint — see
    /// [`set_traffic_sampling`](Self::set_traffic_sampling) for the
    /// stride-aliasing caveat.
    sample_every: u64,
    /// Writes since construction, driving the deterministic sampler.
    write_count: u64,
    memtable_cap: usize,
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> fmt::Debug for ShardedSfcStore<D, T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedSfcStore")
            .field("curve", &self.curve.name())
            .field("parts", &self.partition.parts())
            .field("boundaries", &self.partition.boundaries())
            .field("shard_lens", &self.shard_lens())
            .finish()
    }
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> ShardedSfcStore<D, T, C> {
    /// An empty store with `parts` shards over a keyspace-uniform
    /// partition and the default per-shard memtable capacity.
    pub fn new(curve: C, parts: usize) -> Self {
        Self::with_memtable_capacity(curve, parts, DEFAULT_MEMTABLE_CAPACITY)
    }

    /// An empty store with `parts` shards, each flushing its memtable at
    /// `capacity` entries.
    pub fn with_memtable_capacity(curve: C, parts: usize, capacity: usize) -> Self {
        let partition = Partition::uniform(curve.grid().n(), parts);
        Self::with_partition(curve, partition, capacity)
    }

    /// An empty store over explicit shard boundaries (e.g. precomputed
    /// from a known workload with
    /// [`partition_min_bottleneck`](sfc_partition::partition_min_bottleneck)).
    ///
    /// # Panics
    /// Panics unless the partition covers exactly the curve's keyspace
    /// (`partition.n() == curve.grid().n()`).
    pub fn with_partition(curve: C, partition: Partition, capacity: usize) -> Self {
        let n = curve.grid().n();
        assert_eq!(
            partition.n(),
            n,
            "partition must cover the curve's keyspace 0..{n}"
        );
        let shards = (0..partition.parts())
            .map(|_| SfcStore::with_memtable_capacity(curve.clone(), capacity))
            .collect();
        Self {
            curve,
            partition,
            shards,
            traffic: TrafficWeights::new(n),
            sample_every: 1,
            write_count: 0,
            memtable_cap: capacity.max(1),
        }
    }

    /// Builds a sharded store from a batch of records (uniform partition,
    /// one bulk-loaded bottom run per shard). Records sharing a cell
    /// collapse newest-wins, exactly like [`SfcStore::bulk_load`].
    pub fn bulk_load(
        curve: C,
        parts: usize,
        records: impl IntoIterator<Item = (Point<D>, T)>,
    ) -> Self {
        let partition = Partition::uniform(curve.grid().n(), parts);
        let mut buckets: Vec<Vec<(Point<D>, T)>> = (0..parts).map(|_| Vec::new()).collect();
        for (p, v) in records {
            let key = curve.index_of(p);
            buckets[partition.part_of(key)].push((p, v));
        }
        let shards = buckets
            .into_iter()
            .map(|bucket| SfcStore::bulk_load(curve.clone(), bucket))
            .collect();
        let traffic = TrafficWeights::new(curve.grid().n());
        Self {
            curve,
            partition,
            shards,
            traffic,
            sample_every: 1,
            write_count: 0,
            memtable_cap: DEFAULT_MEMTABLE_CAPACITY,
        }
    }

    /// The curve backing this store.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// The current shard partition (half-open curve-index ranges).
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of shards.
    pub fn parts(&self) -> usize {
        self.shards.len()
    }

    /// The shards themselves, in curve order. Read-only: per-shard
    /// queries through this slice are the fan-out primitive parallel
    /// runtimes (rayon) distribute.
    pub fn shards(&self) -> &[SfcStore<D, T, C>] {
        &self.shards
    }

    /// Live records per shard, in curve order.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(SfcStore::len).collect()
    }

    /// The observed per-cell write weights accumulated since the last
    /// [`rebalance`](Self::rebalance).
    pub fn traffic(&self) -> &TrafficWeights {
        &self.traffic
    }

    /// Samples write-weight recording down to 1 in `every` writes, each
    /// carrying weight `every`. Sampling bounds the accumulator's memory
    /// and takes the `O(log observed)` bookkeeping off the per-write hot
    /// path; `1` (the default) records every write exactly.
    ///
    /// The sampler strides deterministically through the write sequence,
    /// which is an unbiased load estimator as long as the workload is not
    /// phase-locked to the stride: a write stream whose per-cell pattern
    /// repeats with a period sharing a factor with `every` (e.g. strict
    /// A,B,A,B alternation with `every = 2`) aliases, systematically
    /// over- or under-counting those cells. Pick a stride coprime to any
    /// known workload periodicity, or keep `1` when in doubt.
    pub fn set_traffic_sampling(&mut self, every: u64) {
        self.sample_every = every.max(1);
    }

    /// One write happened at `key`: count it, recording only sampled
    /// writes.
    fn observe_write(&mut self, key: CurveIndex) {
        if self.write_count.is_multiple_of(self.sample_every) {
            self.traffic.record(key, self.sample_every as f64);
        }
        self.write_count += 1;
    }

    /// Total number of live records across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(SfcStore::len).sum()
    }

    /// `true` iff no shard holds a live record.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(SfcStore::is_empty)
    }

    /// The live payload at cell `p`, if any — routed to the one shard
    /// owning the cell's curve key.
    pub fn get(&self, p: Point<D>) -> Option<&T> {
        if !self.curve.grid().contains(&p) {
            return None;
        }
        let key = self.curve.index_of(p);
        self.shards[self.partition.part_of(key)].get(p)
    }

    /// All live records in curve order: shard ranges are ascending and
    /// disjoint, so chaining the per-shard merged iterators *is* the
    /// global curve order.
    pub fn iter(&self) -> impl Iterator<Item = StoreEntryRef<'_, D, T>> {
        self.shards.iter().flat_map(SfcStore::iter)
    }

    /// The borrowed fan-out view all sharded queries run against.
    fn shards_view(&self) -> ShardsView<'_, D, T, C> {
        ShardsView {
            curve: &self.curve,
            partition: &self.partition,
            shards: self.shards.iter().map(SfcStore::view).collect(),
        }
    }

    /// Box query through the adaptive planner, fanned out to intersecting
    /// shards only: the decompose decision happens once at the router,
    /// each shard receives its clipped interval list and plans its own
    /// levels — see [`SfcStore::query_box`].
    pub fn query_box(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.shards_view().query_box(b)
    }

    /// Box query via exact interval decomposition: the intervals are
    /// computed **once**, clipped to each shard's range, and only shards
    /// whose range intersects them are consulted. Results concatenate in
    /// shard order (= curve order); per-shard work is summed.
    pub fn query_box_intervals(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.shards_view().query_box_intervals(b)
    }

    /// Queries the shards for keys inside the given inclusive curve-index
    /// intervals (sorted ascending), fanning out only to intersecting
    /// shards.
    pub fn query_intervals(
        &self,
        intervals: &[(CurveIndex, CurveIndex)],
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.shards_view().query_intervals(intervals)
    }

    /// Exact k-nearest-neighbor query over all shards: live candidates
    /// are gathered per shard with the same widened per-level windows as
    /// [`SfcStore::knn`], the k-th best bounds the verification radius,
    /// and the Chebyshev ball is fanned out as an interval query.
    pub fn knn(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        if self.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        self.shards_view().knn(q, k, window)
    }

    /// Reference k-nearest-neighbor by linear scan of the merged view
    /// (ground truth for tests).
    pub fn knn_linear(&self, q: Point<D>, k: usize) -> Vec<StoreEntryRef<'_, D, T>> {
        rank_by_distance(self.iter().collect(), q, k)
    }
}

impl<const D: usize, T: Clone, C: SpaceFillingCurve<D> + Clone> ShardedSfcStore<D, T, C> {
    /// Inserts or updates the record at cell `p`, routed to the owning
    /// shard; records one unit of write weight for the cell. Returns
    /// `true` if a live record was replaced.
    pub fn insert(&mut self, p: Point<D>, payload: T) -> bool {
        assert!(self.curve.grid().contains(&p), "record out of bounds: {p}");
        let key = self.curve.index_of(p);
        self.observe_write(key);
        self.shards[self.partition.part_of(key)].insert(p, payload)
    }

    /// Deletes the record at cell `p`, routed to the owning shard; records
    /// one unit of write weight for the cell. Returns `true` if a live
    /// record was removed.
    pub fn delete(&mut self, p: Point<D>) -> bool {
        assert!(self.curve.grid().contains(&p), "record out of bounds: {p}");
        let key = self.curve.index_of(p);
        self.observe_write(key);
        self.shards[self.partition.part_of(key)].delete(p)
    }

    /// Adds explicit weight for cell `p` to the traffic feedback without
    /// writing — e.g. to make read-heavy cells count toward the next
    /// [`rebalance`](Self::rebalance).
    pub fn record_weight(&mut self, p: Point<D>, weight: f64) {
        assert!(self.curve.grid().contains(&p), "cell out of bounds: {p}");
        self.traffic.record(self.curve.index_of(p), weight);
    }

    /// Flushes every shard's memtable.
    pub fn flush(&mut self) {
        for shard in &mut self.shards {
            shard.flush();
        }
    }

    /// Major compaction of every shard (each collapses to a single
    /// tombstone-free run).
    pub fn compact(&mut self) {
        for shard in &mut self.shards {
            shard.compact();
        }
    }

    /// Freezes the whole sharded store into an owned
    /// [`ShardedSnapshot`]: each shard is flushed and its run stack
    /// pinned (see [`SfcStore::snapshot`]), so readers keep querying this
    /// exact state — from other threads if they like — while writes
    /// continue.
    pub fn snapshot(&mut self) -> ShardedSnapshot<D, T, C> {
        ShardedSnapshot {
            curve: self.curve.clone(),
            partition: self.partition.clone(),
            shards: self.shards.iter_mut().map(SfcStore::snapshot).collect(),
        }
    }

    /// Recomputes the shard boundaries with the sparse min-bottleneck
    /// partitioner over the write weights observed since the last
    /// rebalance, and migrates records to their new shards. Returns
    /// `true` if the boundaries changed (a no-op rebalance keeps every
    /// shard untouched).
    ///
    /// The observed weights are consumed either way: each rebalance
    /// reacts to the traffic of its own epoch.
    ///
    /// Shards whose range is unchanged are kept as-is (run stacks and
    /// all); only records in shards whose range moved are gathered and
    /// redistributed — the shards partition the keyspace disjointly, so
    /// a record can only change owner if its old owner's range changed.
    /// Migrated records are adopted as pre-sorted bottom runs: no
    /// re-sorting or re-encoding.
    pub fn rebalance(&mut self, rel_tol: f64) -> bool {
        let new = self.traffic.partition_min_bottleneck(self.parts(), rel_tol);
        self.traffic.clear();
        if new == self.partition {
            return false;
        }
        // Keep shards whose range survived; gather the rest's records in
        // curve order (changed ranges are ascending, like the shards).
        let mut kept: Vec<Option<SfcStore<D, T, C>>> = Vec::with_capacity(self.parts());
        let mut moved: Vec<(CurveIndex, Point<D>, Option<T>)> = Vec::new();
        for (j, shard) in std::mem::take(&mut self.shards).into_iter().enumerate() {
            if new.range(j) == self.partition.range(j) {
                kept.push(Some(shard));
            } else {
                for e in shard.iter() {
                    moved.push((e.key, e.point, Some(e.payload.clone())));
                }
                kept.push(None);
            }
        }
        let mut shards = Vec::with_capacity(new.parts());
        let mut records = moved.into_iter().peekable();
        for (j, kept_shard) in kept.into_iter().enumerate() {
            if let Some(shard) = kept_shard {
                debug_assert!(
                    records
                        .peek()
                        .is_none_or(|&(k, _, _)| !new.range(j).contains(&k)),
                    "no migrated record may land in an unchanged shard"
                );
                shards.push(shard);
                continue;
            }
            let end = new.range(j).end;
            let mut keys = Vec::new();
            let mut points = Vec::new();
            let mut payloads = Vec::new();
            while records.peek().is_some_and(|&(k, _, _)| k < end) {
                let (k, p, v) = records.next().expect("peeked");
                keys.push(k);
                points.push(p);
                payloads.push(v);
            }
            let mut shard = SfcStore::from_sorted_run(self.curve.clone(), keys, points, payloads);
            shard.set_memtable_capacity(self.memtable_cap);
            shards.push(shard);
        }
        debug_assert!(records.next().is_none(), "every record migrated");
        self.shards = shards;
        self.partition = new;
        true
    }
}

impl<const D: usize, T> ShardedSfcStore<D, T, ZCurve<D>> {
    /// Box query by BIGMIN-jumping key-range scans, fanned out to only
    /// the shards whose range intersects the box's Morton key range
    /// `[Z(lo), Z(hi)]`. Z curve only.
    pub fn query_box_bigmin(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.shards_view().query_box_bigmin(b)
    }
}

/// A frozen, queryable view of a whole [`ShardedSfcStore`] at snapshot
/// time: one pinned [`StoreSnapshot`] per shard plus the partition that
/// routed them. `Send + Sync` whenever the payload and curve are.
#[derive(Debug, Clone)]
pub struct ShardedSnapshot<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    curve: C,
    partition: Partition,
    shards: Vec<StoreSnapshot<D, T, C>>,
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> ShardedSnapshot<D, T, C> {
    /// The curve backing this snapshot.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// The shard partition at snapshot time.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The per-shard snapshots, in curve order.
    pub fn shards(&self) -> &[StoreSnapshot<D, T, C>] {
        &self.shards
    }

    /// Total number of live records visible in the snapshot.
    pub fn len(&self) -> usize {
        self.shards.iter().map(StoreSnapshot::len).sum()
    }

    /// `true` iff the snapshot holds no live records.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(StoreSnapshot::is_empty)
    }

    /// The live payload at cell `p` as of snapshot time, if any.
    pub fn get(&self, p: Point<D>) -> Option<&T> {
        if !self.curve.grid().contains(&p) {
            return None;
        }
        let key = self.curve.index_of(p);
        self.shards[self.partition.part_of(key)].get(p)
    }

    /// All live records in curve order.
    pub fn iter(&self) -> impl Iterator<Item = StoreEntryRef<'_, D, T>> {
        self.shards.iter().flat_map(StoreSnapshot::iter)
    }

    /// The borrowed fan-out view all sharded queries run against.
    fn shards_view(&self) -> ShardsView<'_, D, T, C> {
        ShardsView {
            curve: &self.curve,
            partition: &self.partition,
            shards: self.shards.iter().map(StoreSnapshot::view).collect(),
        }
    }

    /// Box query through the adaptive planner, fanned out to intersecting
    /// shards only — see [`ShardedSfcStore::query_box`].
    pub fn query_box(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.shards_view().query_box(b)
    }

    /// Box query via exact interval decomposition, fanned out to
    /// intersecting shards only — see
    /// [`ShardedSfcStore::query_box_intervals`].
    pub fn query_box_intervals(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.shards_view().query_box_intervals(b)
    }

    /// Exact k-nearest-neighbor query over the frozen shards — see
    /// [`ShardedSfcStore::knn`].
    pub fn knn(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        if self.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        self.shards_view().knn(q, k, window)
    }
}

impl<const D: usize, T> ShardedSnapshot<D, T, ZCurve<D>> {
    /// Box query by BIGMIN-jumping key-range scans over the frozen
    /// shards. Z curve only.
    pub fn query_box_bigmin(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.shards_view().query_box_bigmin(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use sfc_core::{Grid, HilbertCurve};

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn flat<'a, const D: usize>(
        v: impl IntoIterator<Item = StoreEntryRef<'a, D, u32>>,
    ) -> Vec<(CurveIndex, Point<D>, u32)> {
        v.into_iter()
            .map(|e| (e.key, e.point, *e.payload))
            .collect()
    }

    /// Drives the same random workload into a sharded store and a single
    /// store, returning both.
    fn paired_stores(
        parts: usize,
        ops: usize,
        seed: u64,
    ) -> (
        ShardedSfcStore<2, u32, ZCurve<2>>,
        SfcStore<2, u32, ZCurve<2>>,
    ) {
        let grid = Grid::<2>::new(5).unwrap();
        let mut rng = rng(seed);
        let mut sharded = ShardedSfcStore::with_memtable_capacity(ZCurve::over(grid), parts, 16);
        let mut single = SfcStore::with_memtable_capacity(ZCurve::over(grid), 16);
        for i in 0..ops as u32 {
            let p = grid.random_cell(&mut rng);
            match i % 10 {
                0..=6 => {
                    assert_eq!(sharded.insert(p, i), single.insert(p, i), "insert({p})");
                }
                7..=8 => {
                    assert_eq!(sharded.delete(p), single.delete(p), "delete({p})");
                }
                _ => {
                    sharded.flush();
                    single.flush();
                }
            }
        }
        (sharded, single)
    }

    #[test]
    fn routed_writes_land_in_the_owning_shard() {
        let grid = Grid::<2>::new(3).unwrap();
        let mut store = ShardedSfcStore::new(ZCurve::over(grid), 4);
        assert_eq!(store.parts(), 4);
        let p = Point::new([7, 7]); // last cell → last shard
        store.insert(p, 9u32);
        assert_eq!(store.shard_lens(), vec![0, 0, 0, 1]);
        assert_eq!(store.get(p), Some(&9));
        assert_eq!(store.len(), 1);
        assert!(store.delete(p));
        assert!(store.is_empty());
        assert_eq!(store.traffic().observed(), 1, "write weight recorded");
    }

    #[test]
    fn sharded_queries_are_byte_identical_to_single_store() {
        for parts in [1usize, 2, 3, 4, 7] {
            let (sharded, single) = paired_stores(parts, 800, 42 + parts as u64);
            assert_eq!(sharded.len(), single.len());
            assert_eq!(flat(sharded.iter()), flat(single.iter()), "iter");
            let grid = *sharded.curve();
            let mut rng = rng(99);
            for _ in 0..25 {
                let a = grid.grid().random_cell(&mut rng);
                let c = grid.grid().random_cell(&mut rng);
                let lo = Point::new([a.coord(0).min(c.coord(0)), a.coord(1).min(c.coord(1))]);
                let hi = Point::new([a.coord(0).max(c.coord(0)), a.coord(1).max(c.coord(1))]);
                let b = BoxRegion::new(lo, hi);
                assert_eq!(
                    flat(sharded.query_box_intervals(&b).0),
                    flat(single.query_box_intervals(&b).0),
                    "intervals, parts={parts}"
                );
                assert_eq!(
                    flat(sharded.query_box_bigmin(&b).0),
                    flat(single.query_box_bigmin(&b).0),
                    "bigmin, parts={parts}"
                );
                let q = grid.grid().random_cell(&mut rng);
                for k in [1usize, 4] {
                    assert_eq!(
                        flat(sharded.knn(q, k, 3).0),
                        flat(single.knn(q, k, 3).0),
                        "knn k={k}, parts={parts}"
                    );
                }
                assert_eq!(sharded.get(q), single.get(q));
            }
        }
    }

    #[test]
    fn fan_out_skips_non_intersecting_shards() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut store = ShardedSfcStore::with_memtable_capacity(ZCurve::over(grid), 4, 8);
        let mut rng = rng(3);
        for i in 0..300u32 {
            store.insert(grid.random_cell(&mut rng), i);
        }
        // The first Z quadrant [0,8)² is exactly the first quarter of the
        // keyspace: a box inside it must not touch the other shards.
        let b = BoxRegion::new(Point::new([0, 0]), Point::new([7, 7]));
        let (hits, stats) = store.query_box_bigmin(&b);
        let (single_hits, single_stats) = store.shards()[0].query_box_bigmin(&b);
        assert_eq!(flat(hits), flat(single_hits));
        assert_eq!(stats.seeks, single_stats.seeks, "only shard 0 consulted");
    }

    #[test]
    fn rebalance_follows_skewed_traffic() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut store = ShardedSfcStore::with_memtable_capacity(ZCurve::over(grid), 4, 16);
        let mut rng = rng(17);
        // Hammer the first Z quadrant: uniform boundaries leave shard 0
        // with nearly all the load.
        for i in 0..600u32 {
            let p = Point::new([rng.gen_range(0..8u32), rng.gen_range(0..8u32)]);
            store.insert(p, i);
        }
        // A bit of background traffic elsewhere.
        for i in 0..60u32 {
            store.insert(grid.random_cell(&mut rng), 10_000 + i);
        }
        let before = flat(store.iter());
        let skew_before: Vec<usize> = store.shard_lens();
        assert!(
            *skew_before.iter().max().unwrap() > store.len() / 2,
            "workload should be skewed before rebalance: {skew_before:?}"
        );
        assert!(store.rebalance(1e-9), "skewed traffic must move boundaries");
        // Contents are untouched and queries still agree.
        assert_eq!(flat(store.iter()), before, "rebalance lost records");
        let skew_after = store.shard_lens();
        assert!(
            *skew_after.iter().max().unwrap() < *skew_before.iter().max().unwrap(),
            "bottleneck shard should shrink: {skew_before:?} → {skew_after:?}"
        );
        // Writes keep routing correctly under the new boundaries.
        let p = Point::new([1, 2]);
        store.insert(p, 77_777);
        assert_eq!(store.get(p), Some(&77_777));
        // Traffic was consumed; an immediate rebalance with no new
        // observations falls back to uniform boundaries (a real change
        // from the skewed cut, so it reports true) and still loses
        // nothing.
        let before = flat(store.iter());
        store.rebalance(1e-9);
        assert_eq!(flat(store.iter()), before);
    }

    #[test]
    fn traffic_sampling_is_an_unbiased_estimator() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut exact = ShardedSfcStore::new(ZCurve::over(grid), 2);
        let mut sampled = ShardedSfcStore::new(ZCurve::over(grid), 2);
        sampled.set_traffic_sampling(8);
        let mut rng = rng(41);
        for i in 0..4_000u32 {
            let p = grid.random_cell(&mut rng);
            exact.insert(p, i);
            sampled.insert(p, i);
        }
        assert_eq!(exact.traffic().total(), 4_000.0, "every write counted");
        assert_eq!(
            sampled.traffic().total(),
            4_000.0,
            "sampled weight is scaled back to the true write count"
        );
        assert!(
            sampled.traffic().observed() < exact.traffic().observed(),
            "sampling shrinks the accumulator"
        );
        // Sampled feedback still rebalances sensibly: boundaries move off
        // uniform under the same skew that moves them with exact weights.
        let mut skewed = ShardedSfcStore::new(ZCurve::over(grid), 2);
        skewed.set_traffic_sampling(4);
        for i in 0..2_000u32 {
            skewed.insert(Point::new([i % 4, (i / 4) % 4]), i);
        }
        assert!(skewed.rebalance(1e-9));
    }

    #[test]
    fn rebalance_without_traffic_is_a_noop() {
        let grid = Grid::<2>::new(3).unwrap();
        let mut store: ShardedSfcStore<2, u32, _> = ShardedSfcStore::new(ZCurve::over(grid), 3);
        assert!(!store.rebalance(1e-9), "uniform → uniform: no change");
    }

    #[test]
    fn sharded_snapshot_freezes_all_shards() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut store = ShardedSfcStore::with_memtable_capacity(ZCurve::over(grid), 3, 8);
        let mut rng = rng(23);
        for i in 0..250u32 {
            store.insert(grid.random_cell(&mut rng), i);
        }
        let frozen = store.snapshot();
        let frozen_entries = flat(frozen.iter());
        assert_eq!(frozen.len(), store.len());
        // Writer churns, compacts, and even rebalances.
        for i in 0..300u32 {
            let p = grid.random_cell(&mut rng);
            if i % 3 == 0 {
                store.delete(p);
            } else {
                store.insert(p, 5_000 + i);
            }
        }
        store.compact();
        store.rebalance(1e-9);
        assert_eq!(flat(frozen.iter()), frozen_entries, "snapshot drifted");
        // Snapshot queries match a fresh query of the frozen contents.
        let b = BoxRegion::new(Point::new([2, 2]), Point::new([12, 9]));
        let want: Vec<_> = frozen_entries
            .iter()
            .filter(|&&(_, p, _)| b.contains(&p))
            .copied()
            .collect();
        assert_eq!(flat(frozen.query_box_intervals(&b).0), want);
        assert_eq!(flat(frozen.query_box_bigmin(&b).0), want);
        let q = Point::new([5, 5]);
        assert_eq!(flat(frozen.knn(q, 3, 2).0), {
            let mut all = frozen_entries.clone();
            all.sort_by_key(|&(key, p, _)| (q.euclidean_sq(&p), key));
            all.truncate(3);
            all
        });
        fn assert_send_sync<X: Send + Sync>() {}
        assert_send_sync::<ShardedSnapshot<2, u32, ZCurve<2>>>();
    }

    #[test]
    fn hilbert_sharded_store_works_without_bigmin() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut rng = rng(31);
        let mut store = ShardedSfcStore::with_memtable_capacity(HilbertCurve::over(grid), 3, 8);
        let mut single = SfcStore::with_memtable_capacity(HilbertCurve::over(grid), 8);
        for i in 0..400u32 {
            let p = grid.random_cell(&mut rng);
            if i % 5 == 4 {
                store.delete(p);
                single.delete(p);
            } else {
                store.insert(p, i);
                single.insert(p, i);
            }
        }
        let b = BoxRegion::new(Point::new([3, 1]), Point::new([11, 13]));
        assert_eq!(
            flat(store.query_box_intervals(&b).0),
            flat(single.query_box_intervals(&b).0)
        );
        let q = Point::new([9, 2]);
        assert_eq!(flat(store.knn(q, 5, 3).0), flat(single.knn(q, 5, 3).0));
    }

    #[test]
    fn bulk_load_routes_and_collapses_newest_wins() {
        let grid = Grid::<2>::new(3).unwrap();
        let p = Point::new([6, 6]);
        let store = ShardedSfcStore::bulk_load(
            ZCurve::over(grid),
            4,
            vec![(p, 1u32), (Point::new([0, 0]), 2), (p, 3)],
        );
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(p), Some(&3));
        assert_eq!(store.shard_lens().iter().sum::<usize>(), 2);
    }

    #[test]
    fn empty_sharded_store_behaviour() {
        let grid = Grid::<2>::new(3).unwrap();
        let mut store: ShardedSfcStore<2, u32, _> = ShardedSfcStore::new(ZCurve::over(grid), 5);
        assert!(store.is_empty());
        assert_eq!(store.iter().count(), 0);
        let b = BoxRegion::new(Point::new([0, 0]), Point::new([7, 7]));
        assert!(store.query_box_intervals(&b).0.is_empty());
        assert!(store.query_box_bigmin(&b).0.is_empty());
        assert!(store.knn(Point::new([1, 1]), 3, 2).0.is_empty());
        store.flush();
        store.compact();
        let frozen = store.snapshot();
        assert!(frozen.is_empty());
        assert!(frozen.query_box_intervals(&b).0.is_empty());
    }

    /// Satellite audit: the router's reported [`QueryStats`] must be the
    /// exact sum of the per-shard stats it fanned out to — seeks, scanned,
    /// reported, and the zone-map block counters — for every query path.
    #[test]
    fn router_stats_are_the_sum_of_per_shard_stats() {
        let (sharded, _) = paired_stores(4, 900, 77);
        let grid = sharded.curve().grid();
        let mut rng = rng(5);
        for _ in 0..20 {
            let a = grid.random_cell(&mut rng);
            let c = grid.random_cell(&mut rng);
            let lo = Point::new([a.coord(0).min(c.coord(0)), a.coord(1).min(c.coord(1))]);
            let hi = Point::new([a.coord(0).max(c.coord(0)), a.coord(1).max(c.coord(1))]);
            let b = BoxRegion::new(lo, hi);

            // BIGMIN path: the router consults exactly the shards whose
            // range intersects [Z(lo), Z(hi)].
            let z = sharded.curve();
            let (zmin, zmax) = (z.encode(b.lo()), z.encode(b.hi()));
            let (_, router) = sharded.query_box_bigmin(&b);
            let mut manual = QueryStats::default();
            for (j, shard) in sharded.shards().iter().enumerate() {
                let range = sharded.partition().range(j);
                if range.is_empty() || range.start > zmax || range.end <= zmin {
                    continue;
                }
                let (_, s) = shard.query_box_bigmin(&b);
                manual.add(&s);
            }
            // The router recomputes `reported` from the concatenated hits;
            // the per-shard reported counts must sum to the same number.
            assert_eq!(router.reported, manual.reported, "reported sum, bigmin");
            assert_eq!(router, manual, "bigmin stats drifted on {b:?}");

            // Interval path: the router hands each shard its clipped list.
            let intervals = b.curve_intervals(z);
            let (_, router) = sharded.query_box_intervals(&b);
            let mut manual = QueryStats::default();
            let mut manual_reported = 0u64;
            for (j, shard) in sharded.shards().iter().enumerate() {
                let range = sharded.partition().range(j);
                if range.is_empty() {
                    continue;
                }
                let clipped = clip_intervals(&intervals, &range);
                if clipped.is_empty() {
                    continue;
                }
                let (hits, s) = shard.query_intervals(&clipped);
                manual_reported += hits.len() as u64;
                manual.add(&s);
            }
            assert_eq!(router.reported, manual.reported, "reported sum, intervals");
            assert_eq!(router, manual, "interval stats drifted on {b:?}");
            assert_eq!(
                router.reported, manual_reported,
                "per-shard reported counts must sum to the router's"
            );
            // Overscan is consistent with the summed counters.
            assert_eq!(router.overscan(), manual.overscan());

            // Planner path: replicate the router's per-shard plan+execute.
            let (_, router) = sharded.query_box(&b);
            let decomposed =
                crate::view::should_decompose(z, b.volume()).then(|| b.curve_intervals(z));
            let mut manual = QueryStats::default();
            for (j, shard) in sharded.shards().iter().enumerate() {
                let range = sharded.partition().range(j);
                if range.is_empty() || range.start > zmax || range.end <= zmin {
                    continue;
                }
                let clipped = decomposed.as_ref().map(|iv| clip_intervals(iv, &range));
                if let Some(civ) = &clipped {
                    if civ.is_empty() {
                        continue;
                    }
                }
                let view = shard.view();
                let plan = view.plan_box_with(&b, clipped);
                let (_, s) = view.execute_plan(&b, &plan);
                manual.add(&s);
            }
            assert_eq!(router.reported, manual.reported, "reported sum, planner");
            assert_eq!(router, manual, "planner stats drifted on {b:?}");
        }
    }

    #[test]
    fn sharded_planner_is_byte_identical_to_single_store() {
        for parts in [1usize, 3, 5] {
            let (sharded, single) = paired_stores(parts, 700, 120 + parts as u64);
            let grid = sharded.curve().grid();
            let mut rng = rng(8);
            for _ in 0..20 {
                let a = grid.random_cell(&mut rng);
                let c = grid.random_cell(&mut rng);
                let lo = Point::new([a.coord(0).min(c.coord(0)), a.coord(1).min(c.coord(1))]);
                let hi = Point::new([a.coord(0).max(c.coord(0)), a.coord(1).max(c.coord(1))]);
                let b = BoxRegion::new(lo, hi);
                assert_eq!(
                    flat(sharded.query_box(&b).0),
                    flat(single.query_box(&b).0),
                    "planner, parts={parts}"
                );
                assert_eq!(
                    flat(sharded.query_box(&b).0),
                    flat(single.query_box_intervals(&b).0),
                    "planner vs fixed intervals, parts={parts}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "partition must cover")]
    fn with_partition_rejects_mismatched_domain() {
        let grid = Grid::<2>::new(3).unwrap();
        let partition = Partition::uniform(32, 2); // grid has 64 cells
        let _: ShardedSfcStore<2, u32, _> =
            ShardedSfcStore::with_partition(ZCurve::over(grid), partition, 16);
    }
}
