//! The concurrent sharded store: a `Partition` over curve-index ranges
//! routing `&self` writes to independently locked [`Shard`]s, with
//! epoch-published frozen state for lock-free readers and
//! `std::thread::scope`-based parallel query fan-out.
//!
//! This is the bridge from the paper's partitioner to the serving layer:
//! the same curve-range [`Partition`] that balances work across processors
//! in SFC domain decomposition balances a keyspace across store shards —
//! and because curve-contiguous shards make concurrent writers land on
//! *disjoint* locks, the paper's locality argument is exactly what makes
//! the per-shard write locks contention-free. Each shard owns one
//! **half-open** curve-index range (`boundaries[j] .. boundaries[j+1]`)
//! and consists of a mutex-guarded memtable plus an atomically swapped
//! frozen run stack (see the [`epoch`](crate::epoch) module for the
//! publication protocol). The router above them
//!
//! * sends every upsert/delete to the shard owning the record's curve key
//!   under a shared [`RwLock`] read guard on the partition (recording
//!   per-shard write weight through striped atomic counters —
//!   [`ConcurrentTraffic`]),
//! * answers queries by **capturing** each shard — a microscopic lock to
//!   clone the relevant memtable range and pin the current epoch — and
//!   then scanning the captures entirely lock-free; the per-shard
//!   clip/route/concatenate algorithms ([`ShardsView`]) are shared with
//!   [`ShardedSnapshot`] and unchanged from the single-writer design,
//! * fans the per-shard scans out across [`std::thread::scope`] worker
//!   threads in the `*_par` variants (results are concatenated in shard
//!   order, so parallel results are byte-identical to sequential ones),
//! * treats [`rebalance`](ShardedSfcStore::rebalance) as **stop the
//!   world**: it takes the partition's write guard (excluding every
//!   writer and router-level reader), flushes all shards, recomputes
//!   min-bottleneck boundaries from the drained traffic, and migrates
//!   records — after which concurrency resumes.
//!
//! **Lock order** (deadlock freedom): `partition RwLock → shard maint →
//! shard mem → { epoch cell / traffic stripe | shard persist →
//! manifest → commit queue }` — the durable chain exists only on stores
//! opened with [`open_durable`](ShardedSfcStore::open_durable), and the
//! commit-queue mutex is the last lock on every path. Shards are only
//! ever locked in ascending index order when more than one is held
//! (migration), and only under the partition write guard.
//!
//! Because query results can no longer borrow from state behind a lock,
//! the concurrent store returns **owned** [`StoreEntry`] values (payloads
//! cloned per reported hit); snapshots still hand out borrowed
//! [`StoreEntryRef`]s.

use std::collections::BinaryHeap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::time::Instant;

use sfc_core::{CurveIndex, Point, SpaceFillingCurve, ZCurve};
use sfc_index::{BoxRegion, QueryStats};
use sfc_obs::MetricsRegistry;
use sfc_partition::{ConcurrentTraffic, Partition, TrafficWeights};

use crate::epoch::{Shard, ShardCapture};
use crate::maintenance::{wait_tick, MaintenanceConfig, MaintenanceHandle, TokenBucket};
use crate::obs::{EngineMetrics, QueryOp, QueryTrace};
use crate::snapshot::StoreSnapshot;
use crate::store::{
    sorted_unique_columns, BatchOp, StoreEntry, StoreEntryRef, DEFAULT_MEMTABLE_CAPACITY,
};
use crate::view::{
    distance_key_order, interval_hull, offer, radius_from_heap, rank_by_distance, should_decompose,
    with_knn_heap, LevelsView, QueryPlan,
};
use crate::wal::{self, RecoveryStats, WalConfig, WalEngine, WalError, WalPayload, WalShard};

/// An inclusive curve-index interval.
type Interval = (CurveIndex, CurveIndex);

/// Clips sorted inclusive intervals to the half-open range `start..end`,
/// keeping only the non-empty intersections.
fn clip_intervals(intervals: &[Interval], range: &std::ops::Range<CurveIndex>) -> Vec<Interval> {
    intervals
        .iter()
        .filter(|&&(lo, hi)| hi >= range.start && lo < range.end)
        .map(|&(lo, hi)| (lo.max(range.start), hi.min(range.end - 1)))
        .collect()
}

/// Converts borrowed hits into owned entries (payloads cloned).
fn owned<const D: usize, T: Clone>(hits: Vec<StoreEntryRef<'_, D, T>>) -> Vec<StoreEntry<D, T>> {
    hits.into_iter().map(|e| e.to_owned()).collect()
}

/// The one capture-and-query sequence every sharded query runs: capture
/// all shards for `span` (microscopic per-shard locks, guard released
/// before scanning), assemble the borrowed [`ShardsView`] over the
/// captures, run `$body` against it, and clone the reported hits into
/// owned entries. A macro rather than a closure-taking method because the
/// view borrows locals whose lifetime a closure signature cannot name.
macro_rules! with_shards_view {
    ($store:expr, $span:expr, |$sv:ident| $body:expr) => {{
        let (partition, caps) = $store.capture_all($span);
        let views: Vec<_> = caps.iter().map(|c| c.view(&$store.curve)).collect();
        let $sv = ShardsView {
            curve: &$store.curve,
            partition: &partition,
            shards: views,
        };
        let (hits, stats) = $body;
        (owned(hits), stats)
    }};
}

/// The borrowed fan-out engine shared by [`ShardedSfcStore`] (over
/// per-query shard captures) and [`ShardedSnapshot`] (over pinned
/// snapshots): a partition plus one [`LevelsView`] per shard. Exactly as
/// [`LevelsView`] holds the merged multi-level algorithms once for store
/// and snapshot, this holds the clip/route/concatenate algorithms once
/// for their sharded counterparts — including the scoped-thread parallel
/// dispatch of the `*_par` entry points.
struct ShardsView<'a, const D: usize, T, C: SpaceFillingCurve<D>> {
    curve: &'a C,
    partition: &'a Partition,
    shards: Vec<LevelsView<'a, D, T, C>>,
}

impl<'a, const D: usize, T, C: SpaceFillingCurve<D>> ShardsView<'a, D, T, C> {
    /// Interval query fanned out to only the shards whose range
    /// intersects the (sorted, inclusive) intervals, each handed the list
    /// clipped to its own range. Shard-order concatenation = curve order.
    fn query_intervals(
        &self,
        intervals: &[Interval],
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        for (j, shard) in self.shards.iter().enumerate() {
            let range = self.partition.range(j);
            if range.is_empty() {
                continue;
            }
            let clipped = clip_intervals(intervals, &range);
            if clipped.is_empty() {
                continue;
            }
            let (hits, shard_stats) = shard.query_intervals(&clipped);
            out.extend(hits);
            stats.add(&shard_stats);
        }
        stats.reported = out.len() as u64;
        (out, stats)
    }

    /// Box query via exact interval decomposition (intervals computed
    /// once for the whole fan-out).
    fn query_box_intervals(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        self.query_intervals(&b.curve_intervals(self.curve))
    }

    /// Box query through the adaptive planner, adopting an
    /// already-decomposed interval list (`None` = the planner decided
    /// against decomposition): the decompose decision happens **once**
    /// upstream, each intersecting shard receives the interval list
    /// clipped to its range and plans its own levels from its own run
    /// statistics — the bottom-heavy shard may gallop intervals while a
    /// freshly rebalanced neighbor BIGMIN-scans its small runs.
    fn query_box_with(
        &self,
        b: &BoxRegion<D>,
        intervals: Option<Vec<Interval>>,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let zrange = self
            .curve
            .as_morton()
            .map(|z| (z.encode(b.lo()), z.encode(b.hi())));
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        for (j, shard) in self.shards.iter().enumerate() {
            let range = self.partition.range(j);
            if range.is_empty() {
                continue;
            }
            if let Some((zmin, zmax)) = zrange {
                if range.start > zmax || range.end <= zmin {
                    continue;
                }
            }
            let clipped = intervals.as_ref().map(|iv| clip_intervals(iv, &range));
            if let Some(civ) = &clipped {
                if civ.is_empty() {
                    continue;
                }
            }
            let plan = shard.plan_box_with(b, clipped);
            let (hits, shard_stats) = shard.execute_plan(b, &plan);
            out.extend(hits);
            stats.add(&shard_stats);
        }
        stats.reported = out.len() as u64;
        (out, stats)
    }

    /// Box query through the adaptive planner (decompose decision made
    /// here) — see [`query_box_with`](Self::query_box_with).
    fn query_box(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let intervals =
            should_decompose(self.curve, b.volume()).then(|| b.curve_intervals(self.curve));
        self.query_box_with(b, intervals)
    }

    /// Exact kNN: live candidates gathered per shard into the shared
    /// top-k distance heap (zone-map live counts and AABB distance bounds
    /// sharpen each shard's walk), the k-th best bounds the verification
    /// radius, and the Chebyshev ball fans out through the planner.
    fn knn(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let key = self.curve.index_of(q);
        let mut stats = QueryStats::default();
        let radius = with_knn_heap(|heap| {
            for shard in &self.shards {
                shard.knn_collect(q, key, k, window, heap, &mut stats);
            }
            radius_from_heap(self.curve.grid(), heap, k)
        });
        let ball = BoxRegion::chebyshev_ball(self.curve.grid(), q, radius);
        let (all, ball_stats) = self.query_box(&ball);
        stats.add(&ball_stats);
        let all = rank_by_distance(all, q, k);
        stats.reported = all.len() as u64;
        (all, stats)
    }
}

/// The scoped-thread parallel dispatch: each per-shard scan runs on its
/// own worker thread; joining in shard order makes the concatenation —
/// and therefore the full result — byte-identical to the sequential
/// fan-out.
impl<'a, const D: usize, T: Send + Sync, C: SpaceFillingCurve<D> + Send + Sync>
    ShardsView<'a, D, T, C>
{
    /// Runs `work(j, shard_view)` for every shard passing `keep`, on one
    /// scoped thread per participating shard, and returns the per-shard
    /// results in shard order.
    fn dispatch<R: Send>(
        &self,
        keep: impl Fn(usize, &std::ops::Range<CurveIndex>) -> bool,
        work: impl Fn(usize, &LevelsView<'a, D, T, C>) -> R + Sync,
    ) -> Vec<R> {
        std::thread::scope(|scope| {
            let work = &work;
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(j, shard)| {
                    let range = self.partition.range(j);
                    (!range.is_empty() && keep(j, &range))
                        .then(|| scope.spawn(move || work(j, shard)))
                })
                .collect();
            handles
                .into_iter()
                .flatten()
                .map(|h| h.join().expect("shard query worker panicked"))
                .collect()
        })
    }

    /// Parallel [`query_intervals`](Self::query_intervals): byte-identical
    /// results, per-shard scans on worker threads.
    fn query_intervals_par(
        &self,
        intervals: &[Interval],
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let clipped: Vec<Vec<Interval>> = (0..self.shards.len())
            .map(|j| {
                let range = self.partition.range(j);
                if range.is_empty() {
                    Vec::new()
                } else {
                    clip_intervals(intervals, &range)
                }
            })
            .collect();
        let per_shard = self.dispatch(
            |j, _| !clipped[j].is_empty(),
            |j, shard| shard.query_intervals(&clipped[j]),
        );
        Self::concat(per_shard)
    }

    /// Parallel [`query_box_with`](Self::query_box_with): byte-identical
    /// results, per-shard plan+execute on worker threads.
    fn query_box_with_par(
        &self,
        b: &BoxRegion<D>,
        intervals: Option<Vec<Interval>>,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let zrange = self
            .curve
            .as_morton()
            .map(|z| (z.encode(b.lo()), z.encode(b.hi())));
        // Participation and the interval clip are both decided once per
        // shard, before dispatch: `None` = skipped, `Some(None)` =
        // participates without decomposition, `Some(Some(civ))` =
        // participates with its clipped interval list.
        let prepared: Vec<Option<Option<Vec<Interval>>>> = (0..self.shards.len())
            .map(|j| {
                let range = self.partition.range(j);
                if range.is_empty() {
                    return None;
                }
                if let Some((zmin, zmax)) = zrange {
                    if range.start > zmax || range.end <= zmin {
                        return None;
                    }
                }
                match &intervals {
                    None => Some(None),
                    Some(iv) => {
                        let clipped = clip_intervals(iv, &range);
                        (!clipped.is_empty()).then_some(Some(clipped))
                    }
                }
            })
            .collect();
        let per_shard = self.dispatch(
            |j, _| prepared[j].is_some(),
            |j, shard| {
                let clipped = prepared[j].clone().expect("kept shards are prepared");
                let plan = shard.plan_box_with(b, clipped);
                shard.execute_plan(b, &plan)
            },
        );
        Self::concat(per_shard)
    }

    /// Parallel kNN: per-shard candidate collection on worker threads
    /// (each into its own local heap — merged afterwards, the k-th best
    /// of the union bounds the radius), then a parallel ball query. The
    /// final ranked result is byte-identical to the sequential kNN: any
    /// radius derived from k genuine live candidates yields a ball
    /// containing the true k nearest, and `rank_by_distance` breaks ties
    /// deterministically by curve key.
    fn knn_par(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let key = self.curve.index_of(q);
        let per_shard: Vec<(Vec<u64>, QueryStats)> = self.dispatch(
            |_, _| true,
            |_, shard| {
                let mut heap = BinaryHeap::new();
                let mut stats = QueryStats::default();
                shard.knn_collect(q, key, k, window, &mut heap, &mut stats);
                (heap.into_sorted_vec(), stats)
            },
        );
        let mut stats = QueryStats::default();
        let radius = with_knn_heap(|heap| {
            for (dists, shard_stats) in &per_shard {
                stats.add(shard_stats);
                for &d in dists {
                    offer(heap, k, d);
                }
            }
            radius_from_heap(self.curve.grid(), heap, k)
        });
        let ball = BoxRegion::chebyshev_ball(self.curve.grid(), q, radius);
        let intervals =
            should_decompose(self.curve, ball.volume()).then(|| ball.curve_intervals(self.curve));
        let (all, ball_stats) = self.query_box_with_par(&ball, intervals);
        stats.add(&ball_stats);
        let all = rank_by_distance(all, q, k);
        stats.reported = all.len() as u64;
        (all, stats)
    }

    /// Concatenates per-shard results in shard order and sums the stats.
    fn concat(
        per_shard: Vec<(Vec<StoreEntryRef<'a, D, T>>, QueryStats)>,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        for (hits, shard_stats) in per_shard {
            out.extend(hits);
            stats.add(&shard_stats);
        }
        stats.reported = out.len() as u64;
        (out, stats)
    }
}

impl<'a, const D: usize, T> ShardsView<'a, D, T, ZCurve<D>> {
    /// BIGMIN box query fanned out to only the shards whose range
    /// intersects the box's Morton key range `[Z(lo), Z(hi)]`.
    fn query_box_bigmin(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let zmin = self.curve.encode(b.lo());
        let zmax = self.curve.encode(b.hi());
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        for (j, shard) in self.shards.iter().enumerate() {
            let range = self.partition.range(j);
            if range.is_empty() || range.start > zmax || range.end <= zmin {
                continue;
            }
            let (hits, shard_stats) = shard.query_box_bigmin(b);
            out.extend(hits);
            stats.add(&shard_stats);
        }
        stats.reported = out.len() as u64;
        (out, stats)
    }
}

impl<'a, const D: usize, T: Send + Sync> ShardsView<'a, D, T, ZCurve<D>> {
    /// Parallel [`query_box_bigmin`](Self::query_box_bigmin):
    /// byte-identical results, per-shard scans on worker threads.
    fn query_box_bigmin_par(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let zmin = self.curve.encode(b.lo());
        let zmax = self.curve.encode(b.hi());
        let per_shard = self.dispatch(
            |_, range| range.start <= zmax && range.end > zmin,
            |_, shard| shard.query_box_bigmin(b),
        );
        Self::concat(per_shard)
    }
}

/// A concurrently writable spatial store sharded by curve-index range.
///
/// All mutating operations take `&self`: writes route through the
/// partition's read guard to the one shard owning the record's curve key
/// and contend only with same-shard writers; queries capture each shard
/// (a microscopic lock) and scan lock-free; `rebalance` is stop-the-world
/// under the partition's write guard. Against any quiesced state, reads
/// and queries return results byte-identical to a single
/// [`SfcStore`](crate::SfcStore) holding the same records — as owned
/// [`StoreEntry`] values, since borrowed results cannot escape the shard
/// locks. While writers are in flight, multi-shard queries carry the
/// same per-shard-consistency caveat as [`iter`](Self::iter): shards are
/// captured in sequence, so a racing writer's effects may appear in a
/// later-captured shard and not an earlier one. See the module docs for
/// the architecture and lock order.
pub struct ShardedSfcStore<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    curve: C,
    /// Shard `j` owns the half-open curve range `partition.range(j)`.
    /// Writers and router-level readers hold the read guard; `rebalance`
    /// holds the write guard — the explicit stop-the-world exclusion.
    partition: RwLock<Partition>,
    shards: Box<[Shard<D, T, C>]>,
    /// Observed per-cell write weight since the last rebalance, striped
    /// one-to-one with the shards.
    traffic: ConcurrentTraffic,
    /// Engine-level metric handles, when observability is attached
    /// ([`ShardedSfcStore::attach_metrics`]); the per-shard bundles live
    /// inside the shards themselves.
    metrics: Option<Arc<EngineMetrics>>,
    /// Durability engine (committer thread + manifest state) when the
    /// store was opened with [`open_durable`](Self::open_durable).
    wal: Option<Arc<WalEngine>>,
    /// What the most recent [`open_durable`](Self::open_durable) did.
    recovery: Option<RecoveryStats>,
    /// Handle to the background maintenance thread, when running.
    maintenance: Mutex<Option<MaintenanceHandle>>,
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> fmt::Debug for ShardedSfcStore<D, T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedSfcStore")
            .field("curve", &self.curve.name())
            .field("parts", &self.shards.len())
            .field(
                "boundaries",
                &self
                    .partition
                    .read()
                    .expect("partition poisoned")
                    .boundaries()
                    .to_vec(),
            )
            .field(
                "shard_lens",
                &self.shards.iter().map(Shard::live).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<const D: usize, T: Clone, C: SpaceFillingCurve<D> + Clone> ShardedSfcStore<D, T, C> {
    /// An empty store with `parts` shards over a keyspace-uniform
    /// partition and the default per-shard memtable capacity.
    pub fn new(curve: C, parts: usize) -> Self {
        Self::with_memtable_capacity(curve, parts, DEFAULT_MEMTABLE_CAPACITY)
    }

    /// An empty store with `parts` shards, each flushing its memtable at
    /// `capacity` entries.
    pub fn with_memtable_capacity(curve: C, parts: usize, capacity: usize) -> Self {
        let partition = Partition::uniform(curve.grid().n(), parts);
        Self::with_partition(curve, partition, capacity)
    }

    /// An empty store over explicit shard boundaries (e.g. precomputed
    /// from a known workload with
    /// [`partition_min_bottleneck`](sfc_partition::partition_min_bottleneck)).
    ///
    /// # Panics
    /// Panics unless the partition covers exactly the curve's keyspace
    /// (`partition.n() == curve.grid().n()`).
    pub fn with_partition(curve: C, partition: Partition, capacity: usize) -> Self {
        let n = curve.grid().n();
        assert_eq!(
            partition.n(),
            n,
            "partition must cover the curve's keyspace 0..{n}"
        );
        let parts = partition.parts();
        let shards = (0..parts).map(|_| Shard::new(capacity)).collect();
        Self {
            curve,
            partition: RwLock::new(partition),
            shards,
            traffic: ConcurrentTraffic::new(n, parts),
            metrics: None,
            wal: None,
            recovery: None,
            maintenance: Mutex::new(None),
        }
    }

    /// Builds a sharded store from a batch of records (uniform partition,
    /// one bulk-loaded bottom run per shard). Records sharing a cell
    /// collapse newest-wins, exactly like
    /// [`SfcStore::bulk_load`](crate::SfcStore::bulk_load).
    pub fn bulk_load(
        curve: C,
        parts: usize,
        records: impl IntoIterator<Item = (Point<D>, T)>,
    ) -> Self {
        let partition = Partition::uniform(curve.grid().n(), parts);
        let mut buckets: Vec<Vec<(Point<D>, T)>> = (0..parts.max(1)).map(|_| Vec::new()).collect();
        for (p, v) in records {
            let key = curve.index_of(p);
            buckets[partition.part_of(key)].push((p, v));
        }
        let shards = buckets
            .into_iter()
            .map(|bucket| {
                let (keys, points, payloads) = sorted_unique_columns(&curve, bucket);
                Shard::from_bottom_run(&curve, keys, points, payloads, DEFAULT_MEMTABLE_CAPACITY)
            })
            .collect();
        let n = curve.grid().n();
        Self {
            curve,
            partition: RwLock::new(partition),
            shards,
            traffic: ConcurrentTraffic::new(n, parts),
            metrics: None,
            wal: None,
            recovery: None,
            maintenance: Mutex::new(None),
        }
    }

    /// Attaches observability: every shard gets its bundle from
    /// `metrics` (prefixes `shard0`, `shard1`, …) and the router feeds
    /// the engine-level query metrics — see the [`obs`](crate::obs)
    /// module docs. Takes `&mut self` because attachment happens before
    /// the store is shared across threads; the level gauges are primed
    /// from each shard's current state.
    ///
    /// # Panics
    /// Panics unless `metrics` was built for this shard count
    /// ([`EngineMetrics::for_shards`] with `parts()`).
    pub fn attach_metrics(&mut self, metrics: Arc<EngineMetrics>) {
        assert_eq!(
            metrics.shard_count(),
            self.shards.len(),
            "EngineMetrics must be built for this store's shard count"
        );
        for (j, shard) in self.shards.iter_mut().enumerate() {
            shard.set_metrics(metrics.shard(j).clone());
        }
        if let Some(engine) = &self.wal {
            engine.committer.set_metrics(metrics.wal().clone());
        }
        self.metrics = Some(metrics);
    }

    /// Convenience [`attach_metrics`](Self::attach_metrics): builds a
    /// fresh registry and a matching [`EngineMetrics`], attaches it, and
    /// returns it (reach the registry via
    /// [`EngineMetrics::registry`]).
    pub fn enable_metrics(&mut self) -> Arc<EngineMetrics> {
        let metrics =
            EngineMetrics::for_shards(Arc::new(MetricsRegistry::new()), self.shards.len());
        self.attach_metrics(metrics.clone());
        metrics
    }

    /// The attached metrics bundle, if any.
    pub fn metrics(&self) -> Option<&Arc<EngineMetrics>> {
        self.metrics.as_ref()
    }

    /// The curve backing this store.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// The current shard partition (half-open curve-index ranges), as an
    /// owned copy — the live partition sits behind the router's lock.
    pub fn partition(&self) -> Partition {
        self.partition.read().expect("partition poisoned").clone()
    }

    /// Number of shards.
    pub fn parts(&self) -> usize {
        self.shards.len()
    }

    /// Live records per shard, in curve order.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(Shard::live).collect()
    }

    /// Sizes of each shard's published immutable runs, oldest first —
    /// the per-shard observability `shards()` used to provide before the
    /// shards moved behind their locks.
    pub fn shard_run_lens(&self) -> Vec<Vec<usize>> {
        self.shards.iter().map(Shard::run_lens).collect()
    }

    /// Buffered (unflushed) memtable entries per shard.
    pub fn shard_memtable_lens(&self) -> Vec<usize> {
        self.shards.iter().map(Shard::memtable_len).collect()
    }

    /// Heap bytes held by each shard's memtable structure (node slabs of
    /// the B+tree backing, free nodes included), in curve order — `O(1)`
    /// per shard. The same figures feed the per-shard `memtable.bytes`
    /// gauges when metrics are attached.
    pub fn shard_memtable_heap_bytes(&self) -> Vec<usize> {
        self.shards.iter().map(Shard::memtable_heap_bytes).collect()
    }

    /// A consistent copy of the per-cell write weights observed since the
    /// last [`rebalance`](Self::rebalance), merged across the per-shard
    /// stripes.
    pub fn traffic(&self) -> TrafficWeights {
        self.traffic.merged()
    }

    /// Samples write-weight recording down to 1 in `every` writes **per
    /// shard**, each carrying weight `every` (`1`, the default, records
    /// every write exactly). Sampling bounds the accumulator's memory and
    /// takes the map bookkeeping off the per-write hot path; because
    /// every shard strides its own write stream through its own atomic
    /// counter, a hot shard's sample rate is independent of traffic to
    /// other shards — concurrent writers cannot skew it the way a single
    /// shared stride counter could.
    pub fn set_traffic_sampling(&self, every: u64) {
        self.traffic.set_sample_every(every);
    }

    /// Total number of live records across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::live).sum()
    }

    /// `true` iff no shard holds a live record.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.live() == 0)
    }

    /// The live payload at cell `p`, if any — routed to the one shard
    /// owning the cell's curve key. Returns an owned clone (the record
    /// itself lives behind the shard's lock).
    pub fn get(&self, p: Point<D>) -> Option<T> {
        if !self.curve.grid().contains(&p) {
            return None;
        }
        let key = self.curve.index_of(p);
        let part = self.partition.read().expect("partition poisoned");
        self.shards[part.part_of(key)].get(key)
    }

    /// All live records in curve order, as owned entries: shard ranges
    /// are ascending and disjoint, so per-shard concatenation *is* the
    /// global curve order. Each shard's contribution is a consistent
    /// point-in-time capture, but shards are captured in sequence — a
    /// writer racing this call may land in an earlier-captured shard
    /// after its capture and a later-captured shard before its capture.
    /// Quiesce writers (or use [`snapshot`](Self::snapshot), which has
    /// the same per-shard granularity but yields a reusable frozen view)
    /// when cross-shard atomicity matters.
    pub fn iter(&self) -> std::vec::IntoIter<StoreEntry<D, T>> {
        let (_, caps) = self.capture_all(None);
        let mut out = Vec::new();
        for cap in &caps {
            out.extend(cap.view(&self.curve).iter().map(|e| e.to_owned()));
        }
        out.into_iter()
    }

    /// Captures every shard under the partition's read guard: the
    /// memtable image clipped to `span` plus the pinned epoch, per shard.
    /// The guard is released before any scanning happens.
    fn capture_all(&self, span: Option<Interval>) -> (Partition, Vec<ShardCapture<D, T, C>>) {
        let part = self.partition.read().expect("partition poisoned");
        let caps = self.shards.iter().map(|s| s.capture(span)).collect();
        (part.clone(), caps)
    }

    /// The curve span a box query can touch: the Morton key range when
    /// the curve is Morton-ordered, else the hull of the decomposed
    /// intervals. Used to clip the memtable captures; runs are pruned by
    /// the planner regardless.
    fn box_span(&self, b: &BoxRegion<D>, intervals: Option<&[Interval]>) -> Option<Interval> {
        match self.curve.as_morton() {
            Some(z) => Some((z.encode(b.lo()), z.encode(b.hi()))),
            // Non-Morton curves always decompose; an empty hull captures
            // nothing (lo > hi sentinel).
            None => Some(intervals.and_then(interval_hull).unwrap_or((1, 0))),
        }
    }

    /// Box query through the adaptive planner, fanned out to intersecting
    /// shards only: the decompose decision happens once at the router,
    /// each shard receives its clipped interval list and plans its own
    /// levels — see [`SfcStore::query_box`](crate::SfcStore::query_box).
    pub fn query_box(&self, b: &BoxRegion<D>) -> (Vec<StoreEntry<D, T>>, QueryStats) {
        let start = self.metrics.as_deref().map(|_| Instant::now());
        let intervals =
            should_decompose(&self.curve, b.volume()).then(|| b.curve_intervals(&self.curve));
        let span = self.box_span(b, intervals.as_deref());
        let (hits, stats) = with_shards_view!(self, span, |sv| sv.query_box_with(b, intervals));
        if let (Some(m), Some(start)) = (self.metrics.as_deref(), start) {
            m.note_query(QueryOp::Box, start, &stats, |wall| {
                // The executed per-shard plans lived on the fan-out's
                // stack; re-derive them advisorily for the trace (only
                // paid for queries slow enough to be admitted).
                let plans = self.plan_box_query(b);
                QueryTrace::from_shard_plans("query_box", b.volume(), &plans, stats, wall)
            });
        }
        (hits, stats)
    }

    /// The per-level plan each shard would choose for this box right now
    /// — the sharded analogue of
    /// [`SfcStore::plan_box_query`](crate::SfcStore::plan_box_query), one
    /// [`QueryPlan`] per shard in shard order. For observability and
    /// tuning; executing the query later plans afresh.
    pub fn plan_box_query(&self, b: &BoxRegion<D>) -> Vec<QueryPlan> {
        let intervals =
            should_decompose(&self.curve, b.volume()).then(|| b.curve_intervals(&self.curve));
        let span = self.box_span(b, intervals.as_deref());
        let (partition, caps) = self.capture_all(span);
        caps.iter()
            .enumerate()
            .map(|(j, cap)| {
                let range = partition.range(j);
                let clipped = intervals.as_ref().map(|iv| clip_intervals(iv, &range));
                cap.view(&self.curve).plan_box_with(b, clipped)
            })
            .collect()
    }

    /// Box query via exact interval decomposition: the intervals are
    /// computed **once**, clipped to each shard's range, and only shards
    /// whose range intersects them are consulted. Results concatenate in
    /// shard order (= curve order); per-shard work is summed.
    pub fn query_box_intervals(&self, b: &BoxRegion<D>) -> (Vec<StoreEntry<D, T>>, QueryStats) {
        self.query_intervals_named(&b.curve_intervals(&self.curve), "query_box_intervals")
    }

    /// Queries the shards for keys inside the given inclusive curve-index
    /// intervals (sorted ascending), fanning out only to intersecting
    /// shards.
    pub fn query_intervals(&self, intervals: &[Interval]) -> (Vec<StoreEntry<D, T>>, QueryStats) {
        self.query_intervals_named(intervals, "query_intervals")
    }

    fn query_intervals_named(
        &self,
        intervals: &[Interval],
        op: &'static str,
    ) -> (Vec<StoreEntry<D, T>>, QueryStats) {
        let start = self.metrics.as_deref().map(|_| Instant::now());
        let span = interval_hull(intervals).unwrap_or((1, 0));
        let (hits, stats) = with_shards_view!(self, Some(span), |sv| sv.query_intervals(intervals));
        if let (Some(m), Some(start)) = (self.metrics.as_deref(), start) {
            let shards = self.shards.len();
            m.note_query(QueryOp::Intervals, start, &stats, |wall| {
                let mut t = QueryTrace::bare(op, stats, wall);
                t.intervals = Some(intervals.len());
                t.shards = Some(shards);
                t
            });
        }
        (hits, stats)
    }

    /// Exact k-nearest-neighbor query over all shards: live candidates
    /// are gathered per shard with the same widened per-level windows as
    /// [`SfcStore::knn`](crate::SfcStore::knn), the k-th best bounds the
    /// verification radius, and the Chebyshev ball is fanned out through
    /// the planner.
    pub fn knn(&self, q: Point<D>, k: usize, window: usize) -> (Vec<StoreEntry<D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        if self.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        let start = self.metrics.as_deref().map(|_| Instant::now());
        let (hits, stats) = with_shards_view!(self, None, |sv| sv.knn(q, k, window));
        if let (Some(m), Some(start)) = (self.metrics.as_deref(), start) {
            let shards = self.shards.len();
            m.note_query(QueryOp::Knn, start, &stats, |wall| {
                let mut t = QueryTrace::bare("knn", stats, wall);
                t.shards = Some(shards);
                t
            });
        }
        (hits, stats)
    }

    /// Reference k-nearest-neighbor by linear scan of the merged view
    /// (ground truth for tests).
    pub fn knn_linear(&self, q: Point<D>, k: usize) -> Vec<StoreEntry<D, T>> {
        let mut all: Vec<StoreEntry<D, T>> = self.iter().collect();
        all.sort_by(|a, b| distance_key_order(&q, (&a.point, a.key), (&b.point, b.key)));
        all.truncate(k);
        all
    }

    /// Inserts or updates the record at cell `p` (`&self`: concurrent
    /// writers to different shards never contend), routed to the owning
    /// shard; records one unit of write weight on the shard's traffic
    /// stripe. Returns `true` if a live record was replaced.
    ///
    /// On a durable store this blocks for the group-commit ack — the
    /// write is both *applied* and *durable* when it returns (see
    /// [`try_insert`](Self::try_insert) for the acked-vs-applied
    /// contract) — and panics if the log has failed; use
    /// [`try_insert`](Self::try_insert) to handle [`WalError`] instead.
    pub fn insert(&self, p: Point<D>, payload: T) -> bool {
        self.try_insert(p, payload)
            .unwrap_or_else(|e| panic!("durable insert failed: {e}"))
    }

    /// Deletes the record at cell `p` (`&self`), routed to the owning
    /// shard; records one unit of write weight on the shard's traffic
    /// stripe. Returns `true` if a live record was removed.
    ///
    /// On a durable store this blocks for the group-commit ack and
    /// panics if the log has failed; use
    /// [`try_delete`](Self::try_delete) to handle [`WalError`] instead.
    pub fn delete(&self, p: Point<D>) -> bool {
        self.try_delete(p)
            .unwrap_or_else(|e| panic!("durable delete failed: {e}"))
    }

    /// [`insert`](Self::insert) with the durability failure surfaced.
    ///
    /// **Acked vs applied.** The write is *applied* — visible to queries
    /// and to subsequent writes — the moment the shard's memtable lock
    /// drops, and *acknowledged* (durable) only when the committer's
    /// group fsync covering it completes; this call returns `Ok` after
    /// both. On `Err` the write **is applied but not acknowledged**: it
    /// remains visible in this process and may be lost by a crash. On an
    /// in-memory store there is no ack and this never fails.
    pub fn try_insert(&self, p: Point<D>, payload: T) -> Result<bool, WalError> {
        self.insert_at(p, payload, true)
    }

    /// [`delete`](Self::delete) with the durability failure surfaced —
    /// same acked-vs-applied contract as [`try_insert`](Self::try_insert)
    /// (an `Err` tombstone is applied but not acknowledged).
    pub fn try_delete(&self, p: Point<D>) -> Result<bool, WalError> {
        self.delete_at(p, true)
    }

    /// [`insert`](Self::insert) without waiting for the durable ack: the
    /// frame is handed to the group committer and the call returns as
    /// soon as the write is applied. Pair with [`sync`](Self::sync) —
    /// the write is durable only once a later `sync` (or awaited write)
    /// returns `Ok`. Panics if the log has already failed (the sticky
    /// committer error).
    pub fn insert_nosync(&self, p: Point<D>, payload: T) -> bool {
        self.insert_at(p, payload, false)
            .unwrap_or_else(|e| panic!("durable insert failed: {e}"))
    }

    /// [`delete`](Self::delete) without waiting for the durable ack; see
    /// [`insert_nosync`](Self::insert_nosync).
    pub fn delete_nosync(&self, p: Point<D>) -> bool {
        self.delete_at(p, false)
            .unwrap_or_else(|e| panic!("durable delete failed: {e}"))
    }

    fn insert_at(&self, p: Point<D>, payload: T, wait: bool) -> Result<bool, WalError> {
        assert!(self.curve.grid().contains(&p), "record out of bounds: {p}");
        let key = self.curve.index_of(p);
        let part = self.partition.read().expect("partition poisoned");
        let j = part.part_of(key);
        self.traffic.record_write(j, key);
        self.shards[j].insert(&self.curve, key, p, payload, wait)
    }

    fn delete_at(&self, p: Point<D>, wait: bool) -> Result<bool, WalError> {
        assert!(self.curve.grid().contains(&p), "record out of bounds: {p}");
        let key = self.curve.index_of(p);
        let part = self.partition.read().expect("partition poisoned");
        let j = part.part_of(key);
        self.traffic.record_write(j, key);
        self.shards[j].delete(&self.curve, key, p, wait)
    }

    /// Applies a batch of upserts and deletes across shards, equivalent
    /// to issuing the ops one-by-one in slice order (for a cell written
    /// twice, the later op wins) but with the per-record costs
    /// amortised: the whole batch is routed under **one** partition
    /// read-guard acquisition, each shard's slice is stably sorted by
    /// curve index and applied under a **single** memtable-lock hold
    /// (the sorted keys ride the B+tree's last-leaf hint), and on a
    /// durable store each slice is logged as coalesced multi-record WAL
    /// frames — one commit-queue ticket and one checksum per frame.
    ///
    /// Durability: returns after one barrier covering every shard's
    /// frames, so the whole batch is durable on `Ok`. Crash atomicity is
    /// **per shard frame**: recovery replays each shard's slice
    /// all-or-nothing (a torn frame discards that slice's tail in one
    /// piece), but an unacked crash can persist one shard's slice and
    /// not another's — exactly the guarantee of issuing per-shard
    /// `sync`-less writes followed by one `sync`. Panics if the log has
    /// failed; use [`try_apply_batch`](Self::try_apply_batch) to handle
    /// [`WalError`].
    pub fn apply_batch(&self, ops: &[BatchOp<D, T>]) {
        self.try_apply_batch(ops)
            .unwrap_or_else(|e| panic!("durable batch apply failed: {e}"));
    }

    /// [`apply_batch`](Self::apply_batch) with the durability failure
    /// surfaced. An `Err` means some ops may be applied (visible to
    /// queries) but not acknowledged — the acked-vs-applied contract of
    /// [`try_insert`](Self::try_insert), batch-wide.
    pub fn try_apply_batch(&self, ops: &[BatchOp<D, T>]) -> Result<(), WalError> {
        self.apply_batch_at(ops)?;
        // One barrier instead of per-shard waits: every shard's frames
        // were accepted before this call, so the barrier covers them all.
        self.sync()
    }

    /// [`apply_batch`](Self::apply_batch) without waiting for the
    /// durable ack — the batch rides the group committer and is durable
    /// only once a later [`sync`](Self::sync) (or awaited write) returns
    /// `Ok`. Panics if the log has already failed.
    pub fn apply_batch_nosync(&self, ops: &[BatchOp<D, T>]) {
        self.apply_batch_at(ops)
            .unwrap_or_else(|e| panic!("durable batch apply failed: {e}"));
    }

    fn apply_batch_at(&self, ops: &[BatchOp<D, T>]) -> Result<(), WalError> {
        if ops.is_empty() {
            return Ok(());
        }
        // Key and validate before taking the guard.
        let keyed: Vec<(CurveIndex, &BatchOp<D, T>)> = ops
            .iter()
            .map(|op| {
                let p = op.point();
                assert!(self.curve.grid().contains(p), "record out of bounds: {p}");
                (self.curve.index_of(*p), op)
            })
            .collect();
        // One partition read-guard acquisition for the whole batch; held
        // across the shard applies so no rebalance can re-route a suffix
        // of the batch mid-way.
        let part = self.partition.read().expect("partition poisoned");
        let parts = part.parts();
        let mut buckets: Vec<Vec<(CurveIndex, Point<D>, Option<T>)>> =
            (0..parts).map(|_| Vec::new()).collect();
        for (key, op) in keyed {
            let j = part.part_of(key);
            self.traffic.record_write(j, key);
            buckets[j].push(match op {
                BatchOp::Insert(p, payload) => (key, *p, Some(payload.clone())),
                BatchOp::Delete(p) => (key, *p, None),
            });
        }
        for (j, mut bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            // Stable sort: duplicate keys keep submission order, so the
            // last write to a cell lands last and wins.
            bucket.sort_by_key(|&(k, _, _)| k);
            self.shards[j].apply_batch(&self.curve, bucket, false)?;
        }
        Ok(())
    }

    /// The durability barrier: returns once every write accepted before
    /// this call is fsynced (skipping the group linger for the final
    /// batch). The barrier for [`insert_nosync`](Self::insert_nosync) /
    /// [`delete_nosync`](Self::delete_nosync) streams; an immediate
    /// `Ok(())` on an in-memory store.
    pub fn sync(&self) -> Result<(), WalError> {
        match &self.wal {
            Some(engine) => engine.committer.sync(),
            None => Ok(()),
        }
    }

    /// Adds explicit weight for cell `p` to the traffic feedback without
    /// writing — e.g. to make read-heavy cells count toward the next
    /// [`rebalance`](Self::rebalance).
    pub fn record_weight(&self, p: Point<D>, weight: f64) {
        assert!(self.curve.grid().contains(&p), "cell out of bounds: {p}");
        let key = self.curve.index_of(p);
        let part = self.partition.read().expect("partition poisoned");
        self.traffic.record(part.part_of(key), key, weight);
    }

    /// Flushes every shard's memtable (each publishes a fresh epoch).
    /// On a durable store each flush also persists its runs and
    /// checkpoint; panics if persistence fails (use
    /// [`try_flush`](Self::try_flush) to handle [`WalError`]).
    pub fn flush(&self) {
        self.try_flush()
            .unwrap_or_else(|e| panic!("durable flush failed: {e}"));
    }

    /// [`flush`](Self::flush) with the durability failure surfaced.
    pub fn try_flush(&self) -> Result<(), WalError> {
        let _part = self.partition.read().expect("partition poisoned");
        for shard in self.shards.iter() {
            shard.flush(&self.curve)?;
        }
        Ok(())
    }

    /// Major compaction of every shard (each collapses to a single
    /// tombstone-free run). Readers are never blocked: each shard's merge
    /// builds the next epoch off to the side and swaps it in whole.
    /// Panics if a durable store fails to persist the result (use
    /// [`try_compact`](Self::try_compact) to handle [`WalError`]).
    pub fn compact(&self) {
        self.try_compact()
            .unwrap_or_else(|e| panic!("durable compaction failed: {e}"));
    }

    /// [`compact`](Self::compact) with the durability failure surfaced.
    pub fn try_compact(&self) -> Result<(), WalError> {
        let _part = self.partition.read().expect("partition poisoned");
        for shard in self.shards.iter() {
            shard.compact(&self.curve)?;
        }
        Ok(())
    }

    /// Freezes the sharded store into an owned [`ShardedSnapshot`]: each
    /// shard is flushed and its published epoch pinned, and after
    /// creation the snapshot never touches a lock again — readers keep
    /// querying the frozen state from any thread while writes continue.
    ///
    /// Consistency is **per shard**: shards are pinned in sequence under
    /// the partition's read guard (which excludes rebalances, not
    /// writers), so each shard's view is complete for every write that
    /// reached that shard before it was pinned, but a writer racing this
    /// call across *multiple* shards may be captured in a later shard
    /// and not an earlier one. Quiesce writers around `snapshot()` when
    /// a single global linearization point is required.
    pub fn snapshot(&self) -> ShardedSnapshot<D, T, C> {
        let part = self.partition.read().expect("partition poisoned");
        ShardedSnapshot {
            curve: self.curve.clone(),
            partition: part.clone(),
            shards: self
                .shards
                .iter()
                .map(|s| {
                    s.snapshot(&self.curve)
                        .unwrap_or_else(|e| panic!("durable flush failed: {e}"))
                })
                .collect(),
        }
    }

    /// Recomputes the shard boundaries with the sparse min-bottleneck
    /// partitioner over the write weights observed since the last
    /// rebalance, and migrates records to their new shards. Returns
    /// `true` if the boundaries changed (a no-op rebalance keeps every
    /// shard untouched).
    ///
    /// This is the store's one **stop-the-world** operation: it holds the
    /// partition's write guard for its whole duration, excluding every
    /// writer and router-level reader (outstanding [`ShardedSnapshot`]s
    /// keep serving, untouched). The observed weights are consumed either
    /// way: each rebalance reacts to the traffic of its own epoch.
    ///
    /// Shards whose range is unchanged are kept as-is (run stacks and
    /// all); only records in shards whose range moved are gathered and
    /// redistributed as pre-sorted bottom runs — no re-sorting or
    /// re-encoding.
    pub fn rebalance(&self, rel_tol: f64) -> bool {
        let start = Instant::now();
        let mut part = self.partition.write().expect("partition poisoned");
        let traffic = self.traffic.drain();
        let new = traffic.partition_min_bottleneck(self.parts(), rel_tol);
        if new == *part {
            // No boundary moved: don't stall the world any longer — in
            // particular, don't force a flush + tiny-run publish on
            // every shard for nothing.
            return false;
        }
        // Everything into the epochs before migrating: memtables empty
        // from here on, so the changed-shard captures below are pure
        // run-stack walks and unchanged shards keep their state as-is.
        for shard in self.shards.iter() {
            shard
                .flush(&self.curve)
                .unwrap_or_else(|e| panic!("durable flush failed: {e}"));
        }
        // Gather the records of shards whose range moved, in curve order
        // (changed ranges are ascending, like the shards).
        let changed: Vec<bool> = (0..self.shards.len())
            .map(|j| new.range(j) != part.range(j))
            .collect();
        let mut moved: Vec<(CurveIndex, Point<D>, Option<T>)> = Vec::new();
        for (j, shard) in self.shards.iter().enumerate() {
            if !changed[j] {
                continue;
            }
            let cap = shard.capture(None);
            for e in cap.view(&self.curve).iter() {
                moved.push((e.key, e.point, Some(e.payload.clone())));
            }
        }
        let mut records = moved.into_iter().peekable();
        // Durable stores defer the per-install manifest flips: run files
        // and checkpoints are written here, but the root manifest — the
        // single commit point — is replaced once below, carrying the new
        // boundaries *and* every bumped generation together, so a crash
        // mid-rebalance rolls back to the consistent pre-rebalance cut.
        let defer = self.wal.is_some();
        for (j, shard) in self.shards.iter().enumerate() {
            if !changed[j] {
                debug_assert!(
                    records
                        .peek()
                        .is_none_or(|&(k, _, _)| !new.range(j).contains(&k)),
                    "no migrated record may land in an unchanged shard"
                );
                continue;
            }
            let end = new.range(j).end;
            let mut keys = Vec::new();
            let mut points = Vec::new();
            let mut payloads = Vec::new();
            while records.peek().is_some_and(|&(k, _, _)| k < end) {
                let (k, p, v) = records.next().expect("peeked");
                keys.push(k);
                points.push(p);
                payloads.push(v);
            }
            shard
                .install_bottom_run(&self.curve, keys, points, payloads, defer)
                .unwrap_or_else(|e| panic!("durable rebalance install failed: {e}"));
        }
        debug_assert!(records.next().is_none(), "every record migrated");
        if let Some(engine) = &self.wal {
            engine
                .commit_boundaries(new.boundaries().to_vec())
                .unwrap_or_else(|e| panic!("durable rebalance commit failed: {e}"));
            for (j, shard) in self.shards.iter().enumerate() {
                if changed[j] {
                    shard
                        .finish_durable_commit()
                        .unwrap_or_else(|e| panic!("durable rebalance cleanup failed: {e}"));
                }
            }
        }
        *part = new;
        if let Some(m) = self.metrics.as_deref() {
            m.note_rebalance(start);
        }
        true
    }

    /// What the [`open_durable`](Self::open_durable) that produced this
    /// store did — `None` on an in-memory store.
    pub fn recovery_stats(&self) -> Option<&RecoveryStats> {
        self.recovery.as_ref()
    }

    /// `true` when this store persists through a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Consumes the store as a power cut would: the maintenance thread
    /// is stopped, then the committer is killed **without** draining its
    /// queue or issuing a final fsync — in-flight unacknowledged writes
    /// are abandoned exactly as a real crash abandons them. The
    /// directory can be reopened with [`open_durable`](Self::open_durable)
    /// afterwards; only acknowledged writes are guaranteed back. For the
    /// crash-recovery tests and anyone else rehearsing failure.
    pub fn simulate_crash(self) {
        self.stop_maintenance();
        if let Some(engine) = &self.wal {
            engine.committer.abort();
        }
        // The normal Drop runs next; shutdown after abort is a no-op.
    }
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> ShardedSfcStore<D, T, C> {
    /// Stops the background maintenance thread (no-op if none is
    /// running) and restores inline capacity flushes on the writer
    /// paths. Called automatically on drop.
    pub fn stop_maintenance(&self) {
        let handle = self
            .maintenance
            .lock()
            .expect("maintenance handle poisoned")
            .take();
        if let Some(mut h) = handle {
            {
                let (lock, cv) = &*h.stop;
                *lock.lock().expect("maintenance stop signal poisoned") = true;
                cv.notify_all();
            }
            if let Some(join) = h.handle.take() {
                // The maintenance thread itself can drop the last strong
                // reference (its `Weak` upgrade raced the owner's drop);
                // it must not join itself.
                if join.thread().id() != std::thread::current().id() {
                    let _ = join.join();
                }
            }
            for shard in self.shards.iter() {
                shard.set_inline_flush(true);
            }
        }
    }
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> Drop for ShardedSfcStore<D, T, C> {
    /// Clean shutdown: stop maintenance, then drain every accepted
    /// append to disk before the committer thread exits (writes that
    /// were applied but not yet fsynced become durable — only
    /// [`simulate_crash`](Self::simulate_crash) abandons them).
    fn drop(&mut self) {
        self.stop_maintenance();
        if let Some(engine) = &self.wal {
            engine.committer.shutdown();
        }
    }
}

/// Opening a durable store. The payload must implement [`WalPayload`]
/// (the log's byte codec) — the one place the bound appears.
impl<const D: usize, T, C> ShardedSfcStore<D, T, C>
where
    T: WalPayload + Clone + Send + Sync + 'static,
    C: SpaceFillingCurve<D> + Clone + Send + Sync + 'static,
{
    /// Opens (or creates) a durable store rooted at `config.dir`: loads
    /// the manifest-referenced checkpoints and runs, replays the WAL
    /// tail into the memtables, garbage-collects debris from any
    /// interrupted flush or rebalance, and starts the group-commit
    /// thread. The shard boundaries come from the manifest (the last
    /// committed [`rebalance`](Self::rebalance) wins); a fresh directory
    /// starts uniform.
    ///
    /// Returns [`WalError::Mismatch`] if the directory holds a store
    /// with a different shard count, dimensionality, or curve domain,
    /// and [`WalError::Corrupt`] if referenced state is damaged (a torn
    /// log tail is *not* damage — see the [`wal`](crate::wal) module).
    pub fn open_durable(
        curve: C,
        parts: usize,
        capacity: usize,
        config: WalConfig,
    ) -> Result<Self, WalError> {
        assert!(parts >= 1, "need at least one shard");
        let recovered = wal::recover::<D, T, C>(&config, &curve, parts)?;
        let partition = Partition::from_boundaries(recovered.manifest.boundaries.clone());
        let logs = recovered.shards.iter().map(|s| s.log.clone()).collect();
        let committer = wal::Committer::spawn(&config, D as u8, logs);
        let engine = Arc::new(WalEngine::new(
            &config,
            D as u8,
            committer,
            recovered.manifest,
        ));
        let n = curve.grid().n();
        let mut shards = Vec::with_capacity(parts);
        for (j, rs) in recovered.shards.into_iter().enumerate() {
            let runs = rs.runs.iter().map(|(r, _)| Arc::clone(r)).collect();
            let mut shard = Shard::recovered(
                &curve,
                capacity,
                runs,
                rs.epoch_live,
                rs.high_water,
                rs.records,
            );
            shard.set_wal(Arc::new(WalShard::new(
                j,
                wal::shard_dir(&config.dir, j),
                Arc::clone(&engine),
                rs.gen,
                rs.high_water,
                rs.runs,
            )));
            shards.push(shard);
        }
        Ok(Self {
            curve,
            partition: RwLock::new(partition),
            shards: shards.into_boxed_slice(),
            traffic: ConcurrentTraffic::new(n, parts),
            metrics: None,
            wal: Some(engine),
            recovery: Some(recovered.stats),
            maintenance: Mutex::new(None),
        })
    }
}

/// Background maintenance: a per-store thread owning size-triggered
/// flushes and tiered-compaction scheduling — see the
/// [`maintenance`](crate::maintenance) module.
impl<const D: usize, T, C> ShardedSfcStore<D, T, C>
where
    T: Clone + Send + Sync + 'static,
    C: SpaceFillingCurve<D> + Clone + Send + Sync + 'static,
{
    /// Starts the background maintenance thread and turns off inline
    /// capacity flushes on the writer paths: from here until
    /// [`stop_maintenance`](Self::stop_maintenance) (or drop), writers
    /// never flush or merge — the thread polls every
    /// [`MaintenanceConfig::interval`], flushes shards at capacity, and
    /// compacts shards whose run stack reached
    /// [`MaintenanceConfig::compact_at_runs`], optionally throttled by
    /// the token-bucket [`RateLimit`](crate::RateLimit). Works on
    /// durable and in-memory stores alike.
    ///
    /// # Panics
    /// Panics if maintenance is already running.
    pub fn start_maintenance(self: &Arc<Self>, config: MaintenanceConfig) {
        let mut slot = self
            .maintenance
            .lock()
            .expect("maintenance handle poisoned");
        assert!(slot.is_none(), "maintenance thread already running");
        for shard in self.shards.iter() {
            shard.set_inline_flush(false);
        }
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let weak: Weak<Self> = Arc::downgrade(self);
        let handle = std::thread::Builder::new()
            .name("sfc-maintenance".into())
            .spawn(move || {
                let mut bucket = config.rate_limit.clone().map(TokenBucket::new);
                loop {
                    if wait_tick(&thread_stop, config.interval) {
                        break;
                    }
                    // Weak: the thread must not keep a dropped store
                    // alive; the upgrade failing is the other stop
                    // signal.
                    let Some(store) = weak.upgrade() else { break };
                    store.maintenance_tick(&config, &mut bucket, &thread_stop);
                }
            })
            .expect("spawn maintenance thread");
        *slot = Some(MaintenanceHandle {
            stop,
            handle: Some(handle),
        });
    }

    /// One maintenance pass over all shards, run by the background
    /// thread.
    fn maintenance_tick(
        &self,
        config: &MaintenanceConfig,
        bucket: &mut Option<TokenBucket>,
        stop: &crate::maintenance::StopSignal,
    ) {
        let m = self.metrics.as_deref();
        if let Some(m) = m {
            m.maintenance_ticks.inc();
        }
        // The read guard excludes rebalances (which flush for
        // themselves), never writers.
        let _part = self.partition.read().expect("partition poisoned");
        for shard in self.shards.iter() {
            if *stop.0.lock().expect("maintenance stop signal poisoned") {
                return;
            }
            if shard.over_capacity() {
                if let Some(b) = bucket.as_mut() {
                    let waited = b.acquire(shard.memtable_heap_bytes() as u64, stop);
                    if let Some(m) = m {
                        m.maintenance_throttle_ns.record(waited.as_nanos() as u64);
                    }
                }
                if shard.flush(&self.curve).is_ok() {
                    if let Some(m) = m {
                        m.maintenance_flushes.inc();
                    }
                }
            }
            let run_lens = shard.run_lens();
            if run_lens.len() >= config.compact_at_runs.max(2) {
                if let Some(b) = bucket.as_mut() {
                    // Merge cost scales with the records rewritten; the
                    // exact byte volume is unknowable up front, so
                    // charge a flat per-entry estimate.
                    let est = run_lens.iter().sum::<usize>() as u64 * 64;
                    let waited = b.acquire(est, stop);
                    if let Some(m) = m {
                        m.maintenance_throttle_ns.record(waited.as_nanos() as u64);
                    }
                }
                if shard.compact(&self.curve).is_ok() {
                    if let Some(m) = m {
                        m.maintenance_compactions.inc();
                    }
                }
            }
        }
    }
}

/// The thread-parallel query fan-out: per-shard scans distributed across
/// [`std::thread::scope`] workers, results byte-identical to the
/// sequential entry points (per-shard results join in shard order).
impl<const D: usize, T, C> ShardedSfcStore<D, T, C>
where
    T: Clone + Send + Sync,
    C: SpaceFillingCurve<D> + Clone + Send + Sync,
{
    /// Parallel [`query_box`](Self::query_box).
    pub fn query_box_par(&self, b: &BoxRegion<D>) -> (Vec<StoreEntry<D, T>>, QueryStats) {
        let start = self.metrics.as_deref().map(|_| Instant::now());
        let intervals =
            should_decompose(&self.curve, b.volume()).then(|| b.curve_intervals(&self.curve));
        let span = self.box_span(b, intervals.as_deref());
        let (hits, stats) = with_shards_view!(self, span, |sv| sv.query_box_with_par(b, intervals));
        if let (Some(m), Some(start)) = (self.metrics.as_deref(), start) {
            m.note_query(QueryOp::Box, start, &stats, |wall| {
                let plans = self.plan_box_query(b);
                QueryTrace::from_shard_plans("query_box_par", b.volume(), &plans, stats, wall)
            });
        }
        (hits, stats)
    }

    /// Parallel [`query_box_intervals`](Self::query_box_intervals).
    pub fn query_box_intervals_par(&self, b: &BoxRegion<D>) -> (Vec<StoreEntry<D, T>>, QueryStats) {
        let start = self.metrics.as_deref().map(|_| Instant::now());
        let intervals = b.curve_intervals(&self.curve);
        let span = interval_hull(&intervals).unwrap_or((1, 0));
        let (hits, stats) =
            with_shards_view!(self, Some(span), |sv| sv.query_intervals_par(&intervals));
        if let (Some(m), Some(start)) = (self.metrics.as_deref(), start) {
            let shards = self.shards.len();
            m.note_query(QueryOp::Intervals, start, &stats, |wall| {
                let mut t = QueryTrace::bare("query_box_intervals_par", stats, wall);
                t.volume = Some(b.volume());
                t.intervals = Some(intervals.len());
                t.shards = Some(shards);
                t
            });
        }
        (hits, stats)
    }

    /// Parallel [`knn`](Self::knn): candidate collection and the
    /// verification ball both fan out across worker threads.
    pub fn knn_par(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntry<D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        if self.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        let start = self.metrics.as_deref().map(|_| Instant::now());
        let (hits, stats) = with_shards_view!(self, None, |sv| sv.knn_par(q, k, window));
        if let (Some(m), Some(start)) = (self.metrics.as_deref(), start) {
            let shards = self.shards.len();
            m.note_query(QueryOp::Knn, start, &stats, |wall| {
                let mut t = QueryTrace::bare("knn_par", stats, wall);
                t.shards = Some(shards);
                t
            });
        }
        (hits, stats)
    }
}

impl<const D: usize, T: Clone> ShardedSfcStore<D, T, ZCurve<D>> {
    /// Box query by BIGMIN-jumping key-range scans, fanned out to only
    /// the shards whose range intersects the box's Morton key range
    /// `[Z(lo), Z(hi)]`. Z curve only.
    pub fn query_box_bigmin(&self, b: &BoxRegion<D>) -> (Vec<StoreEntry<D, T>>, QueryStats) {
        let start = self.metrics.as_deref().map(|_| Instant::now());
        let span = (self.curve.encode(b.lo()), self.curve.encode(b.hi()));
        let (hits, stats) = with_shards_view!(self, Some(span), |sv| sv.query_box_bigmin(b));
        if let (Some(m), Some(start)) = (self.metrics.as_deref(), start) {
            let shards = self.shards.len();
            m.note_query(QueryOp::Bigmin, start, &stats, |wall| {
                let mut t = QueryTrace::bare("query_box_bigmin", stats, wall);
                t.volume = Some(b.volume());
                t.shards = Some(shards);
                t
            });
        }
        (hits, stats)
    }
}

impl<const D: usize, T: Clone + Send + Sync> ShardedSfcStore<D, T, ZCurve<D>> {
    /// Parallel [`query_box_bigmin`](Self::query_box_bigmin).
    pub fn query_box_bigmin_par(&self, b: &BoxRegion<D>) -> (Vec<StoreEntry<D, T>>, QueryStats) {
        let start = self.metrics.as_deref().map(|_| Instant::now());
        let span = (self.curve.encode(b.lo()), self.curve.encode(b.hi()));
        let (hits, stats) = with_shards_view!(self, Some(span), |sv| sv.query_box_bigmin_par(b));
        if let (Some(m), Some(start)) = (self.metrics.as_deref(), start) {
            let shards = self.shards.len();
            m.note_query(QueryOp::Bigmin, start, &stats, |wall| {
                let mut t = QueryTrace::bare("query_box_bigmin_par", stats, wall);
                t.volume = Some(b.volume());
                t.shards = Some(shards);
                t
            });
        }
        (hits, stats)
    }
}

/// A frozen, queryable view of a whole [`ShardedSfcStore`] at snapshot
/// time: one pinned [`StoreSnapshot`] per shard plus the partition that
/// routed them. `Send + Sync` whenever the payload and curve are; after
/// creation it never touches a lock, so snapshot reads are wait-free with
/// respect to every writer.
#[derive(Debug, Clone)]
pub struct ShardedSnapshot<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    curve: C,
    partition: Partition,
    shards: Vec<StoreSnapshot<D, T, C>>,
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> ShardedSnapshot<D, T, C> {
    /// The curve backing this snapshot.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// The shard partition at snapshot time.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The per-shard snapshots, in curve order.
    pub fn shards(&self) -> &[StoreSnapshot<D, T, C>] {
        &self.shards
    }

    /// Total number of live records visible in the snapshot.
    pub fn len(&self) -> usize {
        self.shards.iter().map(StoreSnapshot::len).sum()
    }

    /// `true` iff the snapshot holds no live records.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(StoreSnapshot::is_empty)
    }

    /// The live payload at cell `p` as of snapshot time, if any.
    pub fn get(&self, p: Point<D>) -> Option<&T> {
        if !self.curve.grid().contains(&p) {
            return None;
        }
        let key = self.curve.index_of(p);
        self.shards[self.partition.part_of(key)].get(p)
    }

    /// All live records in curve order.
    pub fn iter(&self) -> impl Iterator<Item = StoreEntryRef<'_, D, T>> {
        self.shards.iter().flat_map(StoreSnapshot::iter)
    }

    /// The borrowed fan-out view all sharded queries run against.
    fn shards_view(&self) -> ShardsView<'_, D, T, C> {
        ShardsView {
            curve: &self.curve,
            partition: &self.partition,
            shards: self.shards.iter().map(StoreSnapshot::view).collect(),
        }
    }

    /// Box query through the adaptive planner, fanned out to intersecting
    /// shards only — see [`ShardedSfcStore::query_box`].
    pub fn query_box(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.shards_view().query_box(b)
    }

    /// Box query via exact interval decomposition, fanned out to
    /// intersecting shards only — see
    /// [`ShardedSfcStore::query_box_intervals`].
    pub fn query_box_intervals(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.shards_view().query_box_intervals(b)
    }

    /// Exact k-nearest-neighbor query over the frozen shards — see
    /// [`ShardedSfcStore::knn`].
    pub fn knn(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        if self.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        self.shards_view().knn(q, k, window)
    }
}

impl<const D: usize, T: Send + Sync, C: SpaceFillingCurve<D> + Clone + Send + Sync>
    ShardedSnapshot<D, T, C>
{
    /// Parallel [`query_box`](Self::query_box): per-shard scans on
    /// scoped worker threads, byte-identical results.
    pub fn query_box_par(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        let sv = self.shards_view();
        let intervals =
            should_decompose(&self.curve, b.volume()).then(|| b.curve_intervals(&self.curve));
        // The view borrows from `self`, which outlives this call frame.
        let (hits, stats) = sv.query_box_with_par(b, intervals);
        (hits, stats)
    }

    /// Parallel [`query_box_intervals`](Self::query_box_intervals).
    pub fn query_box_intervals_par(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        let intervals = b.curve_intervals(&self.curve);
        self.shards_view().query_intervals_par(&intervals)
    }

    /// Parallel [`knn`](Self::knn).
    pub fn knn_par(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        if self.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        self.shards_view().knn_par(q, k, window)
    }
}

impl<const D: usize, T> ShardedSnapshot<D, T, ZCurve<D>> {
    /// Box query by BIGMIN-jumping key-range scans over the frozen
    /// shards. Z curve only.
    pub fn query_box_bigmin(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.shards_view().query_box_bigmin(b)
    }
}

impl<const D: usize, T: Send + Sync> ShardedSnapshot<D, T, ZCurve<D>> {
    /// Parallel [`query_box_bigmin`](Self::query_box_bigmin).
    pub fn query_box_bigmin_par(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.shards_view().query_box_bigmin_par(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SfcStore;
    use rand::{Rng, SeedableRng};
    use sfc_core::{Grid, HilbertCurve};

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn flat<const D: usize>(
        v: impl IntoIterator<Item = StoreEntry<D, u32>>,
    ) -> Vec<(CurveIndex, Point<D>, u32)> {
        v.into_iter().map(|e| (e.key, e.point, e.payload)).collect()
    }

    fn flat_ref<'a, const D: usize>(
        v: impl IntoIterator<Item = StoreEntryRef<'a, D, u32>>,
    ) -> Vec<(CurveIndex, Point<D>, u32)> {
        v.into_iter()
            .map(|e| (e.key, e.point, *e.payload))
            .collect()
    }

    /// Drives the same random workload into a sharded store and a single
    /// store, returning both.
    fn paired_stores(
        parts: usize,
        ops: usize,
        seed: u64,
    ) -> (
        ShardedSfcStore<2, u32, ZCurve<2>>,
        SfcStore<2, u32, ZCurve<2>>,
    ) {
        let grid = Grid::<2>::new(5).unwrap();
        let mut rng = rng(seed);
        let sharded = ShardedSfcStore::with_memtable_capacity(ZCurve::over(grid), parts, 16);
        let mut single = SfcStore::with_memtable_capacity(ZCurve::over(grid), 16);
        for i in 0..ops as u32 {
            let p = grid.random_cell(&mut rng);
            match i % 10 {
                0..=6 => {
                    assert_eq!(sharded.insert(p, i), single.insert(p, i), "insert({p})");
                }
                7..=8 => {
                    assert_eq!(sharded.delete(p), single.delete(p), "delete({p})");
                }
                _ => {
                    sharded.flush();
                    single.flush();
                }
            }
        }
        (sharded, single)
    }

    #[test]
    fn sharded_store_is_send_and_sync() {
        fn assert_send_sync<X: Send + Sync>() {}
        assert_send_sync::<ShardedSfcStore<2, u32, ZCurve<2>>>();
        assert_send_sync::<ShardedSnapshot<2, u32, ZCurve<2>>>();
    }

    #[test]
    fn routed_writes_land_in_the_owning_shard() {
        let grid = Grid::<2>::new(3).unwrap();
        let store = ShardedSfcStore::new(ZCurve::over(grid), 4);
        assert_eq!(store.parts(), 4);
        let p = Point::new([7, 7]); // last cell → last shard
        store.insert(p, 9u32);
        assert_eq!(store.shard_lens(), vec![0, 0, 0, 1]);
        assert_eq!(store.get(p), Some(9));
        assert_eq!(store.len(), 1);
        assert!(store.delete(p));
        assert!(store.is_empty());
        assert_eq!(store.traffic().observed(), 1, "write weight recorded");
    }

    #[test]
    fn all_write_and_maintenance_ops_take_shared_self() {
        // The concurrency contract, statically: a shared reference is
        // enough for the full write/maintenance API.
        let grid = Grid::<2>::new(3).unwrap();
        let store = ShardedSfcStore::new(ZCurve::over(grid), 2);
        let by_ref: &ShardedSfcStore<2, u32, _> = &store;
        by_ref.insert(Point::new([1, 1]), 1);
        by_ref.delete(Point::new([1, 1]));
        by_ref.flush();
        by_ref.compact();
        by_ref.set_traffic_sampling(2);
        by_ref.record_weight(Point::new([2, 2]), 1.0);
        let _snap = by_ref.snapshot();
        by_ref.rebalance(1e-9);
    }

    #[test]
    fn sharded_queries_are_byte_identical_to_single_store() {
        for parts in [1usize, 2, 3, 4, 7] {
            let (sharded, single) = paired_stores(parts, 800, 42 + parts as u64);
            assert_eq!(sharded.len(), single.len());
            assert_eq!(flat(sharded.iter()), flat_ref(single.iter()), "iter");
            let grid = *sharded.curve();
            let mut rng = rng(99);
            for _ in 0..25 {
                let a = grid.grid().random_cell(&mut rng);
                let c = grid.grid().random_cell(&mut rng);
                let lo = Point::new([a.coord(0).min(c.coord(0)), a.coord(1).min(c.coord(1))]);
                let hi = Point::new([a.coord(0).max(c.coord(0)), a.coord(1).max(c.coord(1))]);
                let b = BoxRegion::new(lo, hi);
                assert_eq!(
                    flat(sharded.query_box_intervals(&b).0),
                    flat_ref(single.query_box_intervals(&b).0),
                    "intervals, parts={parts}"
                );
                assert_eq!(
                    flat(sharded.query_box_bigmin(&b).0),
                    flat_ref(single.query_box_bigmin(&b).0),
                    "bigmin, parts={parts}"
                );
                let q = grid.grid().random_cell(&mut rng);
                for k in [1usize, 4] {
                    assert_eq!(
                        flat(sharded.knn(q, k, 3).0),
                        flat_ref(single.knn(q, k, 3).0),
                        "knn k={k}, parts={parts}"
                    );
                }
                assert_eq!(sharded.get(q), single.get(q).copied());
            }
        }
    }

    /// Satellite: the `*_par` fan-outs must be byte-identical to the
    /// sequential fan-outs — across shard counts, multi-level shards, and
    /// every parallel entry point. With the thread-spawning rayon
    /// stand-in and the scoped-thread dispatch these really do cross
    /// thread boundaries (this test used to be impossible to state
    /// non-tautologically: the old `*_par` hook ran the sequential code).
    #[test]
    fn par_queries_are_byte_identical_to_sequential() {
        for parts in [1usize, 3, 5] {
            let (sharded, single) = paired_stores(parts, 900, 7 + parts as u64);
            let snap = sharded.snapshot();
            let grid = sharded.curve().grid();
            let mut rng = rng(17);
            for _ in 0..15 {
                let a = grid.random_cell(&mut rng);
                let c = grid.random_cell(&mut rng);
                let lo = Point::new([a.coord(0).min(c.coord(0)), a.coord(1).min(c.coord(1))]);
                let hi = Point::new([a.coord(0).max(c.coord(0)), a.coord(1).max(c.coord(1))]);
                let b = BoxRegion::new(lo, hi);
                let want = flat_ref(single.query_box_intervals(&b).0);
                assert_eq!(
                    flat(sharded.query_box_par(&b).0),
                    want,
                    "store planner par, parts={parts}"
                );
                assert_eq!(
                    flat(sharded.query_box_intervals_par(&b).0),
                    want,
                    "store intervals par, parts={parts}"
                );
                assert_eq!(
                    flat(sharded.query_box_bigmin_par(&b).0),
                    want,
                    "store bigmin par, parts={parts}"
                );
                assert_eq!(
                    flat_ref(snap.query_box_par(&b).0),
                    want,
                    "snapshot planner par, parts={parts}"
                );
                assert_eq!(
                    flat_ref(snap.query_box_intervals_par(&b).0),
                    want,
                    "snapshot intervals par, parts={parts}"
                );
                assert_eq!(
                    flat_ref(snap.query_box_bigmin_par(&b).0),
                    want,
                    "snapshot bigmin par, parts={parts}"
                );
                let q = grid.random_cell(&mut rng);
                for k in [1usize, 5] {
                    let want = flat(sharded.knn(q, k, 3).0);
                    assert_eq!(
                        flat(sharded.knn_par(q, k, 3).0),
                        want,
                        "store knn par k={k}, parts={parts}"
                    );
                    assert_eq!(
                        flat_ref(snap.knn_par(q, k, 3).0),
                        want,
                        "snapshot knn par k={k}, parts={parts}"
                    );
                }
            }
        }
    }

    #[test]
    fn concurrent_writers_to_disjoint_shards_match_sequential_replay() {
        // 4 writer threads, each confined to one Z quadrant (= one shard
        // of the uniform 4-partition): the final state must equal a
        // sequential replay of the same per-thread op streams (disjoint
        // ranges ⇒ no cross-thread write conflicts to order).
        let grid = Grid::<2>::new(4).unwrap();
        let z = ZCurve::over(grid);
        let store = ShardedSfcStore::with_memtable_capacity(z, 4, 8);
        let mut replay = SfcStore::with_memtable_capacity(z, 8);
        let ops_of = |quadrant: u32| -> Vec<(Point<2>, Option<u32>)> {
            let mut rng = rng(1000 + u64::from(quadrant));
            // Quadrant origin in Z order: [0,8)² tiles shifted.
            let (ox, oy) = [(0, 0), (8, 0), (0, 8), (8, 8)][quadrant as usize];
            (0..400u32)
                .map(|i| {
                    let p = Point::new([ox + rng.gen_range(0..8u32), oy + rng.gen_range(0..8u32)]);
                    if i % 5 == 4 {
                        (p, None)
                    } else {
                        (p, Some(quadrant * 1_000 + i))
                    }
                })
                .collect()
        };
        std::thread::scope(|scope| {
            for quadrant in 0..4u32 {
                let store = &store;
                let ops = ops_of(quadrant);
                scope.spawn(move || {
                    for (p, op) in ops {
                        match op {
                            Some(v) => {
                                store.insert(p, v);
                            }
                            None => {
                                store.delete(p);
                            }
                        }
                    }
                });
            }
        });
        for quadrant in 0..4u32 {
            for (p, op) in ops_of(quadrant) {
                match op {
                    Some(v) => {
                        replay.insert(p, v);
                    }
                    None => {
                        replay.delete(p);
                    }
                }
            }
        }
        assert_eq!(store.len(), replay.len());
        assert_eq!(flat(store.iter()), flat_ref(replay.iter()));
    }

    #[test]
    fn fan_out_skips_non_intersecting_shards() {
        let grid = Grid::<2>::new(4).unwrap();
        let store = ShardedSfcStore::with_memtable_capacity(ZCurve::over(grid), 4, 8);
        let mut rng = rng(3);
        for i in 0..300u32 {
            store.insert(grid.random_cell(&mut rng), i);
        }
        // The first Z quadrant [0,8)² is exactly the first quarter of the
        // keyspace: a box inside it must not touch the other shards. The
        // snapshot exposes the per-shard readers the router fans out to.
        let snap = store.snapshot();
        let b = BoxRegion::new(Point::new([0, 0]), Point::new([7, 7]));
        let (hits, stats) = snap.query_box_bigmin(&b);
        let (single_hits, single_stats) = snap.shards()[0].query_box_bigmin(&b);
        assert_eq!(flat_ref(hits), flat_ref(single_hits));
        assert_eq!(stats.seeks, single_stats.seeks, "only shard 0 consulted");
        // The live store agrees with its own snapshot (memtables are
        // empty right after snapshot() flushed them).
        let (live_hits, live_stats) = store.query_box_bigmin(&b);
        assert_eq!(flat(live_hits), flat_ref(snap.query_box_bigmin(&b).0));
        assert_eq!(live_stats.seeks, stats.seeks);
    }

    #[test]
    fn rebalance_follows_skewed_traffic() {
        let grid = Grid::<2>::new(4).unwrap();
        let store = ShardedSfcStore::with_memtable_capacity(ZCurve::over(grid), 4, 16);
        let mut rng = rng(17);
        // Hammer the first Z quadrant: uniform boundaries leave shard 0
        // with nearly all the load.
        for i in 0..600u32 {
            let p = Point::new([rng.gen_range(0..8u32), rng.gen_range(0..8u32)]);
            store.insert(p, i);
        }
        // A bit of background traffic elsewhere.
        for i in 0..60u32 {
            store.insert(grid.random_cell(&mut rng), 10_000 + i);
        }
        let before = flat(store.iter());
        let skew_before: Vec<usize> = store.shard_lens();
        assert!(
            *skew_before.iter().max().unwrap() > store.len() / 2,
            "workload should be skewed before rebalance: {skew_before:?}"
        );
        assert!(store.rebalance(1e-9), "skewed traffic must move boundaries");
        // Contents are untouched and queries still agree.
        assert_eq!(flat(store.iter()), before, "rebalance lost records");
        let skew_after = store.shard_lens();
        assert!(
            *skew_after.iter().max().unwrap() < *skew_before.iter().max().unwrap(),
            "bottleneck shard should shrink: {skew_before:?} → {skew_after:?}"
        );
        // Writes keep routing correctly under the new boundaries.
        let p = Point::new([1, 2]);
        store.insert(p, 77_777);
        assert_eq!(store.get(p), Some(77_777));
        // Traffic was consumed; an immediate rebalance with no new
        // observations falls back to uniform boundaries (a real change
        // from the skewed cut, so it reports true) and still loses
        // nothing.
        let before = flat(store.iter());
        store.rebalance(1e-9);
        assert_eq!(flat(store.iter()), before);
    }

    #[test]
    fn traffic_sampling_is_per_shard_and_tracks_write_counts() {
        let grid = Grid::<2>::new(4).unwrap();
        let exact = ShardedSfcStore::new(ZCurve::over(grid), 2);
        let sampled = ShardedSfcStore::new(ZCurve::over(grid), 2);
        sampled.set_traffic_sampling(8);
        let mut rng = rng(41);
        for i in 0..4_000u32 {
            let p = grid.random_cell(&mut rng);
            exact.insert(p, i);
            sampled.insert(p, i);
        }
        assert_eq!(exact.traffic().total(), 4_000.0, "every write counted");
        // Per-shard striding: each stripe records ceil(writes_j / 8)
        // samples of weight 8, so the total tracks the true count to
        // within (every − 1) per stripe.
        let total = sampled.traffic().total();
        assert!(
            (total - 4_000.0).abs() <= 8.0 * 2.0,
            "sampled weight total {total} drifted from 4000"
        );
        assert!(
            sampled.traffic().observed() < exact.traffic().observed(),
            "sampling shrinks the accumulator"
        );
        // Sampled feedback still rebalances sensibly: boundaries move off
        // uniform under the same skew that moves them with exact weights.
        let skewed = ShardedSfcStore::new(ZCurve::over(grid), 2);
        skewed.set_traffic_sampling(4);
        for i in 0..2_000u32 {
            skewed.insert(Point::new([i % 4, (i / 4) % 4]), i);
        }
        assert!(skewed.rebalance(1e-9));
    }

    #[test]
    fn rebalance_without_traffic_is_a_noop() {
        let grid = Grid::<2>::new(3).unwrap();
        let store: ShardedSfcStore<2, u32, _> = ShardedSfcStore::new(ZCurve::over(grid), 3);
        assert!(!store.rebalance(1e-9), "uniform → uniform: no change");
    }

    #[test]
    fn sharded_snapshot_freezes_all_shards() {
        let grid = Grid::<2>::new(4).unwrap();
        let store = ShardedSfcStore::with_memtable_capacity(ZCurve::over(grid), 3, 8);
        let mut rng = rng(23);
        for i in 0..250u32 {
            store.insert(grid.random_cell(&mut rng), i);
        }
        let frozen = store.snapshot();
        let frozen_entries = flat_ref(frozen.iter());
        assert_eq!(frozen.len(), store.len());
        // Writer churns, compacts, and even rebalances.
        for i in 0..300u32 {
            let p = grid.random_cell(&mut rng);
            if i % 3 == 0 {
                store.delete(p);
            } else {
                store.insert(p, 5_000 + i);
            }
        }
        store.compact();
        store.rebalance(1e-9);
        assert_eq!(flat_ref(frozen.iter()), frozen_entries, "snapshot drifted");
        // Snapshot queries match a fresh query of the frozen contents.
        let b = BoxRegion::new(Point::new([2, 2]), Point::new([12, 9]));
        let want: Vec<_> = frozen_entries
            .iter()
            .filter(|&&(_, p, _)| b.contains(&p))
            .copied()
            .collect();
        assert_eq!(flat_ref(frozen.query_box_intervals(&b).0), want);
        assert_eq!(flat_ref(frozen.query_box_bigmin(&b).0), want);
        let q = Point::new([5, 5]);
        assert_eq!(flat_ref(frozen.knn(q, 3, 2).0), {
            let mut all = frozen_entries.clone();
            all.sort_by_key(|&(key, p, _)| (q.euclidean_sq(&p), key));
            all.truncate(3);
            all
        });
    }

    #[test]
    fn hilbert_sharded_store_works_without_bigmin() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut rng = rng(31);
        let store = ShardedSfcStore::with_memtable_capacity(HilbertCurve::over(grid), 3, 8);
        let mut single = SfcStore::with_memtable_capacity(HilbertCurve::over(grid), 8);
        for i in 0..400u32 {
            let p = grid.random_cell(&mut rng);
            if i % 5 == 4 {
                store.delete(p);
                single.delete(p);
            } else {
                store.insert(p, i);
                single.insert(p, i);
            }
        }
        let b = BoxRegion::new(Point::new([3, 1]), Point::new([11, 13]));
        assert_eq!(
            flat(store.query_box_intervals(&b).0),
            flat_ref(single.query_box_intervals(&b).0)
        );
        assert_eq!(
            flat(store.query_box_intervals_par(&b).0),
            flat_ref(single.query_box_intervals(&b).0)
        );
        let q = Point::new([9, 2]);
        assert_eq!(flat(store.knn(q, 5, 3).0), flat_ref(single.knn(q, 5, 3).0));
        assert_eq!(
            flat(store.knn_par(q, 5, 3).0),
            flat_ref(single.knn(q, 5, 3).0)
        );
    }

    #[test]
    fn bulk_load_routes_and_collapses_newest_wins() {
        let grid = Grid::<2>::new(3).unwrap();
        let p = Point::new([6, 6]);
        let store = ShardedSfcStore::bulk_load(
            ZCurve::over(grid),
            4,
            vec![(p, 1u32), (Point::new([0, 0]), 2), (p, 3)],
        );
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(p), Some(3));
        assert_eq!(store.shard_lens().iter().sum::<usize>(), 2);
    }

    #[test]
    fn empty_sharded_store_behaviour() {
        let grid = Grid::<2>::new(3).unwrap();
        let store: ShardedSfcStore<2, u32, _> = ShardedSfcStore::new(ZCurve::over(grid), 5);
        assert!(store.is_empty());
        assert_eq!(store.iter().count(), 0);
        let b = BoxRegion::new(Point::new([0, 0]), Point::new([7, 7]));
        assert!(store.query_box_intervals(&b).0.is_empty());
        assert!(store.query_box_bigmin(&b).0.is_empty());
        assert!(store.knn(Point::new([1, 1]), 3, 2).0.is_empty());
        store.flush();
        store.compact();
        let frozen = store.snapshot();
        assert!(frozen.is_empty());
        assert!(frozen.query_box_intervals(&b).0.is_empty());
    }

    /// Satellite audit: the router's reported [`QueryStats`] must be the
    /// exact sum of the per-shard stats it fanned out to — seeks, scanned,
    /// reported, and the zone-map block counters — for every query path.
    /// Audited on a snapshot, whose per-shard readers execute the same
    /// `ShardsView` fan-out as the live store's captures.
    #[test]
    fn router_stats_are_the_sum_of_per_shard_stats() {
        let (sharded_live, _) = paired_stores(4, 900, 77);
        let sharded = sharded_live.snapshot();
        let grid = sharded.curve().grid();
        let mut rng = rng(5);
        for _ in 0..20 {
            let a = grid.random_cell(&mut rng);
            let c = grid.random_cell(&mut rng);
            let lo = Point::new([a.coord(0).min(c.coord(0)), a.coord(1).min(c.coord(1))]);
            let hi = Point::new([a.coord(0).max(c.coord(0)), a.coord(1).max(c.coord(1))]);
            let b = BoxRegion::new(lo, hi);

            // BIGMIN path: the router consults exactly the shards whose
            // range intersects [Z(lo), Z(hi)].
            let z = sharded.curve();
            let (zmin, zmax) = (z.encode(b.lo()), z.encode(b.hi()));
            let (_, router) = sharded.query_box_bigmin(&b);
            let mut manual = QueryStats::default();
            for (j, shard) in sharded.shards().iter().enumerate() {
                let range = sharded.partition().range(j);
                if range.is_empty() || range.start > zmax || range.end <= zmin {
                    continue;
                }
                let (_, s) = shard.query_box_bigmin(&b);
                manual.add(&s);
            }
            // The router recomputes `reported` from the concatenated hits;
            // the per-shard reported counts must sum to the same number.
            assert_eq!(router.reported, manual.reported, "reported sum, bigmin");
            assert_eq!(router, manual, "bigmin stats drifted on {b:?}");
            // The parallel fan-out sums the same per-shard stats.
            let (_, par) = sharded.query_box_bigmin_par(&b);
            assert_eq!(par, router, "par bigmin stats drifted on {b:?}");

            // Interval path: the router hands each shard its clipped list.
            let intervals = b.curve_intervals(z);
            let (_, router) = sharded.query_box_intervals(&b);
            let mut manual = QueryStats::default();
            let mut manual_reported = 0u64;
            for (j, shard) in sharded.shards().iter().enumerate() {
                let range = sharded.partition().range(j);
                if range.is_empty() {
                    continue;
                }
                let clipped = clip_intervals(&intervals, &range);
                if clipped.is_empty() {
                    continue;
                }
                let (hits, s) = shard.query_intervals(&clipped);
                manual_reported += hits.len() as u64;
                manual.add(&s);
            }
            assert_eq!(router.reported, manual.reported, "reported sum, intervals");
            assert_eq!(router, manual, "interval stats drifted on {b:?}");
            assert_eq!(
                router.reported, manual_reported,
                "per-shard reported counts must sum to the router's"
            );
            // Overscan is consistent with the summed counters.
            assert_eq!(router.overscan(), manual.overscan());

            // Planner path: replicate the router's per-shard plan+execute.
            let (_, router) = sharded.query_box(&b);
            let decomposed =
                crate::view::should_decompose(z, b.volume()).then(|| b.curve_intervals(z));
            let mut manual = QueryStats::default();
            for (j, shard) in sharded.shards().iter().enumerate() {
                let range = sharded.partition().range(j);
                if range.is_empty() || range.start > zmax || range.end <= zmin {
                    continue;
                }
                let clipped = decomposed.as_ref().map(|iv| clip_intervals(iv, &range));
                if let Some(civ) = &clipped {
                    if civ.is_empty() {
                        continue;
                    }
                }
                let view = shard.view();
                let plan = view.plan_box_with(&b, clipped);
                let (_, s) = view.execute_plan(&b, &plan);
                manual.add(&s);
            }
            assert_eq!(router.reported, manual.reported, "reported sum, planner");
            assert_eq!(router, manual, "planner stats drifted on {b:?}");
            let (_, par) = sharded.query_box_par(&b);
            assert_eq!(par, router, "par planner stats drifted on {b:?}");
        }
    }

    #[test]
    fn sharded_planner_is_byte_identical_to_single_store() {
        for parts in [1usize, 3, 5] {
            let (sharded, single) = paired_stores(parts, 700, 120 + parts as u64);
            let grid = sharded.curve().grid();
            let mut rng = rng(8);
            for _ in 0..20 {
                let a = grid.random_cell(&mut rng);
                let c = grid.random_cell(&mut rng);
                let lo = Point::new([a.coord(0).min(c.coord(0)), a.coord(1).min(c.coord(1))]);
                let hi = Point::new([a.coord(0).max(c.coord(0)), a.coord(1).max(c.coord(1))]);
                let b = BoxRegion::new(lo, hi);
                assert_eq!(
                    flat(sharded.query_box(&b).0),
                    flat_ref(single.query_box(&b).0),
                    "planner, parts={parts}"
                );
                assert_eq!(
                    flat(sharded.query_box(&b).0),
                    flat_ref(single.query_box_intervals(&b).0),
                    "planner vs fixed intervals, parts={parts}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "partition must cover")]
    fn with_partition_rejects_mismatched_domain() {
        let grid = Grid::<2>::new(3).unwrap();
        let partition = Partition::uniform(32, 2); // grid has 64 cells
        let _: ShardedSfcStore<2, u32, _> =
            ShardedSfcStore::with_partition(ZCurve::over(grid), partition, 16);
    }

    #[test]
    fn metrics_count_sharded_operations() {
        let grid = Grid::<2>::new(5).unwrap();
        let mut store: ShardedSfcStore<2, u32, _> =
            ShardedSfcStore::with_memtable_capacity(ZCurve::over(grid), 2, 8);
        let metrics = store.enable_metrics();
        metrics.set_slow_query_threshold(std::time::Duration::ZERO);
        let mut rng = rng(11);
        for i in 0..200u32 {
            store.insert(grid.random_cell(&mut rng), i);
        }
        store.delete(Point::new([0, 0]));
        store.get(Point::new([1, 1]));
        store.compact();
        let b = BoxRegion::new(Point::new([0, 0]), Point::new([15, 15]));
        let (hits, stats) = store.query_box(&b);
        let snap = metrics.registry().snapshot();
        let inserts: u64 = (0..2)
            .map(|j| snap.counter(&format!("shard{j}.insert.count")).unwrap())
            .sum();
        assert_eq!(inserts, 200, "per-shard insert counts sum to the driver's");
        assert_eq!(
            (0..2)
                .map(|j| snap.counter(&format!("shard{j}.delete.count")).unwrap())
                .sum::<u64>(),
            1
        );
        assert!(
            snap.counter("shard0.epoch_publish.count").unwrap()
                + snap.counter("shard1.epoch_publish.count").unwrap()
                > 0,
            "flushes must publish epochs"
        );
        assert_eq!(snap.counter("engine.query.count"), Some(1));
        assert_eq!(
            snap.counter("engine.query.reported"),
            Some(hits.len() as u64)
        );
        assert_eq!(snap.counter("engine.query.scanned"), Some(stats.scanned));
        assert_eq!(
            snap.histogram("engine.query_box.ns").unwrap().count(),
            1,
            "query wall time lands in the box histogram"
        );
        // Zero threshold: the query must be traced, with per-shard plans.
        let slow = metrics.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].detail.op, "query_box");
        assert_eq!(slow[0].detail.shards, Some(2));
        assert_eq!(slow[0].detail.stats, stats);
        // Gauges reflect the compacted state: one run per non-empty shard,
        // empty memtables, live records summing to the store's len.
        let live: i64 = (0..2)
            .map(|j| snap.gauge(&format!("shard{j}.live")).unwrap())
            .sum();
        assert_eq!(live as usize, store.len());
        for j in 0..2 {
            assert_eq!(snap.gauge(&format!("shard{j}.memtable.len")), Some(0));
        }
    }

    #[test]
    fn metrics_survive_rebalance_and_count_it() {
        let grid = Grid::<2>::new(5).unwrap();
        let mut store: ShardedSfcStore<2, u32, _> =
            ShardedSfcStore::with_memtable_capacity(ZCurve::over(grid), 4, 8);
        let metrics = store.enable_metrics();
        let mut rng = rng(12);
        // Skewed writes into one corner to force a boundary move.
        for i in 0..300u32 {
            let p = grid.random_cell(&mut rng);
            let p = Point::new([p.coord(0) / 4, p.coord(1) / 4]);
            store.insert(p, i);
        }
        let moved = store.rebalance(0.01);
        let snap = metrics.registry().snapshot();
        assert_eq!(
            snap.counter("engine.rebalance.count"),
            Some(u64::from(moved))
        );
        if moved {
            assert_eq!(snap.histogram("engine.rebalance.ns").unwrap().count(), 1);
        }
        // The store keeps working and counting after migration.
        store.insert(Point::new([31, 31]), 1);
        let snap = metrics.registry().snapshot();
        let inserts: u64 = (0..4)
            .map(|j| snap.counter(&format!("shard{j}.insert.count")).unwrap())
            .sum();
        assert_eq!(inserts, 301);
    }
}
