//! Engine instrumentation: per-shard operation metrics, query
//! accounting, and the slow-query trace log — the store-side wiring of
//! [`sfc_obs`].
//!
//! An [`EngineMetrics`] bundles cached handles into one
//! [`MetricsRegistry`]: a [`ShardMetrics`] per shard (write/maintenance
//! counters, latency histograms, level gauges) plus engine-wide query
//! metrics (per-operation latency histograms and the [`QueryStats`]
//! work counters folded into registry counters). Attach one with
//! [`SfcStore::attach_metrics`](crate::SfcStore::attach_metrics) or
//! [`ShardedSfcStore::enable_metrics`](crate::ShardedSfcStore::enable_metrics);
//! an unattached store pays nothing (one `Option` check per operation).
//!
//! **Hot-path cost discipline.** Writes increment striped counters and
//! set two gauges — a handful of relaxed atomics against a memtable
//! insert that costs hundreds of nanoseconds. Wall-clock timing of
//! writes and point gets is *sampled* (one call in
//! [`DEFAULT_TIMING_SAMPLE`] takes the `Instant` pair; tune with
//! [`EngineMetrics::set_timing_sampling`]). Queries and maintenance are
//! µs-scale and timed unconditionally. The bench harness gates the
//! instrumented ingest path at ≤5% over the uninstrumented baseline.
//!
//! **Slow-query log.** Every timed query is offered to a bounded
//! [`SlowLog`]; queries at or above the threshold (default
//! [`DEFAULT_SLOW_QUERY_NS`]) retain a [`QueryTrace`] — the operation,
//! the chosen plan's per-level strategies, the work counters, and the
//! wall time. Below the threshold the trace is never even built. Sharded
//! box-query traces re-derive the per-shard plans advisorily at
//! admission time (the executed plans live on worker stacks); the
//! single-store path traces the exact executed plan.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sfc_index::QueryStats;
use sfc_obs::{Counter, Gauge, Histogram, MetricsRegistry, Sampler, SlowEntry, SlowLog};

use crate::view::{LevelStrategy, QueryPlan};

/// Default write/get timing decimation: one operation in this many gets
/// the `Instant` pair around it.
pub const DEFAULT_TIMING_SAMPLE: u64 = 64;

/// Default slow-query threshold in nanoseconds (1 ms).
pub const DEFAULT_SLOW_QUERY_NS: u64 = 1_000_000;

/// Retained slow-query entries before the ring evicts the oldest.
pub const SLOW_QUERY_LOG_CAPACITY: usize = 64;

/// Cached metric handles for one shard (or for a whole single-writer
/// store, prefix `store`): write/maintenance counters, latency
/// histograms, and level gauges, all named `<prefix>.<metric>` in the
/// owning registry.
#[derive(Debug)]
pub struct ShardMetrics {
    pub(crate) inserts: Counter,
    pub(crate) deletes: Counter,
    pub(crate) gets: Counter,
    pub(crate) flushes: Counter,
    pub(crate) compactions: Counter,
    pub(crate) epoch_publishes: Counter,
    pub(crate) insert_ns: Histogram,
    pub(crate) delete_ns: Histogram,
    pub(crate) get_ns: Histogram,
    pub(crate) flush_ns: Histogram,
    pub(crate) compact_ns: Histogram,
    pub(crate) memtable_len: Gauge,
    pub(crate) memtable_bytes: Gauge,
    pub(crate) run_count: Gauge,
    pub(crate) live: Gauge,
    pub(crate) sampler: Sampler,
}

impl ShardMetrics {
    fn register(registry: &MetricsRegistry, prefix: &str) -> Arc<Self> {
        let name = |metric: &str| format!("{prefix}.{metric}");
        Arc::new(ShardMetrics {
            inserts: registry.counter(&name("insert.count")),
            deletes: registry.counter(&name("delete.count")),
            gets: registry.counter(&name("get.count")),
            flushes: registry.counter(&name("flush.count")),
            compactions: registry.counter(&name("compact.count")),
            epoch_publishes: registry.counter(&name("epoch_publish.count")),
            insert_ns: registry.histogram(&name("insert.ns")),
            delete_ns: registry.histogram(&name("delete.ns")),
            get_ns: registry.histogram(&name("get.ns")),
            flush_ns: registry.histogram(&name("flush.ns")),
            compact_ns: registry.histogram(&name("compact.ns")),
            memtable_len: registry.gauge(&name("memtable.len")),
            memtable_bytes: registry.gauge(&name("memtable.bytes")),
            run_count: registry.gauge(&name("runs")),
            live: registry.gauge(&name("live")),
            sampler: Sampler::new(DEFAULT_TIMING_SAMPLE),
        })
    }
}

/// Cached handles for the write-ahead log's committer (see
/// [`crate::wal`]): registered by every [`EngineMetrics`] under the
/// `wal.` prefix, driven only when the store is durable.
#[derive(Debug)]
pub struct WalMetrics {
    /// `wal.records` — records appended to the log.
    pub(crate) records: Counter,
    /// `wal.bytes` — framed bytes appended.
    pub(crate) bytes: Counter,
    /// `wal.groups` — group commits (one fsync per touched shard each).
    pub(crate) groups: Counter,
    /// `wal.segments.pruned` — segment files reclaimed by truncation.
    pub(crate) prunes: Counter,
    /// `wal.segments` — live segment files across all shards.
    pub(crate) segments: Gauge,
    /// `wal.append.ns` — writer-side append latency (queue push, plus
    /// the durability wait for synchronous writes).
    pub(crate) append_ns: Histogram,
    /// `wal.fsync.ns` — committer-side write+fsync latency per group.
    pub(crate) fsync_ns: Histogram,
    /// `wal.group_size` — records amortised per group commit.
    pub(crate) group_size: Histogram,
}

impl WalMetrics {
    fn register(registry: &MetricsRegistry) -> Arc<Self> {
        Arc::new(WalMetrics {
            records: registry.counter("wal.records"),
            bytes: registry.counter("wal.bytes"),
            groups: registry.counter("wal.groups"),
            prunes: registry.counter("wal.segments.pruned"),
            segments: registry.gauge("wal.segments"),
            append_ns: registry.histogram("wal.append.ns"),
            fsync_ns: registry.histogram("wal.fsync.ns"),
            group_size: registry.histogram("wal.group_size"),
        })
    }
}

/// Which query family an operation belongs to — selects the latency
/// histogram it reports into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueryOp {
    Box,
    Intervals,
    Bigmin,
    Knn,
}

/// The whole engine's cached metric handles: one [`ShardMetrics`] per
/// shard plus engine-wide query accounting and the slow-query log.
/// Cheaply shareable behind an `Arc`; every method takes `&self`.
#[derive(Debug)]
pub struct EngineMetrics {
    registry: Arc<MetricsRegistry>,
    shards: Vec<Arc<ShardMetrics>>,
    query_count: Counter,
    slow_count: Counter,
    box_ns: Histogram,
    intervals_ns: Histogram,
    bigmin_ns: Histogram,
    knn_ns: Histogram,
    q_seeks: Counter,
    q_scanned: Counter,
    q_reported: Counter,
    q_blocks_scanned: Counter,
    q_blocks_pruned: Counter,
    q_blocks_decoded: Counter,
    rebalances: Counter,
    rebalance_ns: Histogram,
    wal: Arc<WalMetrics>,
    pub(crate) maintenance_ticks: Counter,
    pub(crate) maintenance_flushes: Counter,
    pub(crate) maintenance_compactions: Counter,
    pub(crate) maintenance_throttle_ns: Histogram,
    slow: SlowLog<QueryTrace>,
}

impl EngineMetrics {
    fn new(registry: Arc<MetricsRegistry>, prefixes: &[String]) -> Arc<Self> {
        let shards = prefixes
            .iter()
            .map(|p| ShardMetrics::register(&registry, p))
            .collect();
        let em = EngineMetrics {
            query_count: registry.counter("engine.query.count"),
            slow_count: registry.counter("engine.slow_query.count"),
            box_ns: registry.histogram("engine.query_box.ns"),
            intervals_ns: registry.histogram("engine.query_intervals.ns"),
            bigmin_ns: registry.histogram("engine.query_bigmin.ns"),
            knn_ns: registry.histogram("engine.knn.ns"),
            q_seeks: registry.counter("engine.query.seeks"),
            q_scanned: registry.counter("engine.query.scanned"),
            q_reported: registry.counter("engine.query.reported"),
            q_blocks_scanned: registry.counter("engine.query.blocks_scanned"),
            q_blocks_pruned: registry.counter("engine.query.blocks_pruned"),
            q_blocks_decoded: registry.counter("engine.query.blocks_decoded"),
            rebalances: registry.counter("engine.rebalance.count"),
            rebalance_ns: registry.histogram("engine.rebalance.ns"),
            wal: WalMetrics::register(&registry),
            maintenance_ticks: registry.counter("engine.maintenance.ticks"),
            maintenance_flushes: registry.counter("engine.maintenance.flushes"),
            maintenance_compactions: registry.counter("engine.maintenance.compactions"),
            maintenance_throttle_ns: registry.histogram("engine.maintenance.throttle.ns"),
            slow: SlowLog::new(
                SLOW_QUERY_LOG_CAPACITY,
                Duration::from_nanos(DEFAULT_SLOW_QUERY_NS),
            ),
            shards,
            registry,
        };
        Arc::new(em)
    }

    /// Metrics for a single-writer [`SfcStore`](crate::SfcStore): one
    /// shard bundle under the prefix `store`.
    pub fn for_store(registry: Arc<MetricsRegistry>) -> Arc<Self> {
        Self::new(registry, &["store".to_string()])
    }

    /// Metrics for a [`ShardedSfcStore`](crate::ShardedSfcStore) with
    /// `parts` shards: one bundle per shard under `shard0`, `shard1`, …
    pub fn for_shards(registry: Arc<MetricsRegistry>, parts: usize) -> Arc<Self> {
        let prefixes: Vec<String> = (0..parts).map(|j| format!("shard{j}")).collect();
        Self::new(registry, &prefixes)
    }

    /// The registry all handles report into — snapshot/render/export it
    /// at any time without pausing the engine.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Number of per-shard bundles (1 for a single-writer store).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn shard(&self, j: usize) -> &Arc<ShardMetrics> {
        &self.shards[j]
    }

    /// The write-ahead-log handles (registered under `wal.*`; driven
    /// only when the store is durable).
    pub(crate) fn wal(&self) -> &Arc<WalMetrics> {
        &self.wal
    }

    /// Changes the write/get timing decimation on every shard
    /// (0 disables timing, 1 times everything).
    pub fn set_timing_sampling(&self, every: u64) {
        for s in &self.shards {
            s.sampler.set_every(every);
        }
    }

    /// Replaces the slow-query threshold (default 1 ms).
    pub fn set_slow_query_threshold(&self, threshold: Duration) {
        self.slow.set_threshold(threshold);
    }

    /// The retained slow-query traces, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowEntry<QueryTrace>> {
        self.slow.entries()
    }

    /// Queries ever admitted to the slow log (including evicted ones).
    pub fn slow_queries_admitted(&self) -> u64 {
        self.slow.admitted()
    }

    /// Folds one finished query into the registry: the per-op latency
    /// histogram, the engine-wide work counters, and — if the query was
    /// slow — a trace built by `make_trace` (not evaluated otherwise).
    pub(crate) fn note_query(
        &self,
        op: QueryOp,
        start: Instant,
        stats: &QueryStats,
        make_trace: impl FnOnce(u64) -> QueryTrace,
    ) {
        let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.query_count.inc();
        match op {
            QueryOp::Box => &self.box_ns,
            QueryOp::Intervals => &self.intervals_ns,
            QueryOp::Bigmin => &self.bigmin_ns,
            QueryOp::Knn => &self.knn_ns,
        }
        .record(wall_ns);
        self.q_seeks.add(stats.seeks);
        self.q_scanned.add(stats.scanned);
        self.q_reported.add(stats.reported);
        self.q_blocks_scanned.add(stats.blocks_scanned);
        self.q_blocks_pruned.add(stats.blocks_pruned);
        self.q_blocks_decoded.add(stats.blocks_decoded);
        if self.slow.observe(wall_ns, || make_trace(wall_ns)) {
            self.slow_count.inc();
        }
    }

    /// Folds one rebalance into the registry.
    pub(crate) fn note_rebalance(&self, start: Instant) {
        self.rebalances.inc();
        self.rebalance_ns.record_since(start);
    }
}

/// One slow query's retained context: the operation, the plan the
/// engine chose (per-level strategies), the work counters, and the wall
/// time. Stored in the engine's slow-query ring; render with `Display`
/// or read the fields.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// The public entry point that ran (`"query_box"`, `"knn"`, …).
    pub op: &'static str,
    /// Cells in the query box, when the operation had one.
    pub volume: Option<u128>,
    /// Shards the trace spans (`None` for a single-writer store).
    pub shards: Option<usize>,
    /// Curve intervals the box decomposed into (summed across shards),
    /// or `None` if the planner skipped decomposition.
    pub intervals: Option<usize>,
    /// The memtable level's strategy, when the plan had one.
    pub memtable: Option<LevelStrategy>,
    /// Per-run strategies, oldest run first (sharded traces concatenate
    /// the shards' runs in shard order).
    pub runs: Vec<LevelStrategy>,
    /// The query's work counters (seeks, overscan, blocks pruned and
    /// decoded — [`QueryStats::overscan`] gives the ratio directly).
    pub stats: QueryStats,
    /// Wall time in nanoseconds.
    pub wall_ns: u64,
}

impl QueryTrace {
    /// A trace carrying a single store's executed plan.
    pub fn from_plan(op: &'static str, plan: &QueryPlan, stats: QueryStats, wall_ns: u64) -> Self {
        QueryTrace {
            op,
            volume: Some(plan.volume),
            shards: None,
            intervals: plan.interval_count(),
            memtable: plan.memtable,
            runs: plan.runs.clone(),
            stats,
            wall_ns,
        }
    }

    /// A trace over per-shard plans (the sharded router's view): run
    /// strategies concatenate in shard order, interval counts sum.
    pub fn from_shard_plans(
        op: &'static str,
        volume: u128,
        plans: &[QueryPlan],
        stats: QueryStats,
        wall_ns: u64,
    ) -> Self {
        let intervals = plans
            .iter()
            .filter_map(QueryPlan::interval_count)
            .reduce(|a, b| a + b);
        QueryTrace {
            op,
            volume: Some(volume),
            shards: Some(plans.len()),
            intervals,
            memtable: None,
            runs: plans.iter().flat_map(|p| p.runs.iter().copied()).collect(),
            stats,
            wall_ns,
        }
    }

    /// A plan-less trace (kNN, raw interval queries).
    pub fn bare(op: &'static str, stats: QueryStats, wall_ns: u64) -> Self {
        QueryTrace {
            op,
            volume: None,
            shards: None,
            intervals: None,
            memtable: None,
            runs: Vec::new(),
            stats,
            wall_ns,
        }
    }
}

impl fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.op, sfc_obs::fmt_ns(self.wall_ns))?;
        if let Some(v) = self.volume {
            write!(f, " volume={v}")?;
        }
        if let Some(s) = self.shards {
            write!(f, " shards={s}")?;
        }
        match self.intervals {
            Some(n) => write!(f, " intervals={n}")?,
            None => write!(f, " intervals=-")?,
        }
        if let Some(m) = self.memtable {
            write!(f, " memtable={m}")?;
        }
        if !self.runs.is_empty() {
            write!(f, " runs=[")?;
            for (i, s) in self.runs.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, "]")?;
        }
        write!(
            f,
            " seeks={} scanned={} reported={} pruned={} decoded={}",
            self.stats.seeks,
            self.stats.scanned,
            self.stats.reported,
            self.stats.blocks_pruned,
            self.stats.blocks_decoded
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_metrics_register_expected_names() {
        let em = EngineMetrics::for_shards(Arc::new(MetricsRegistry::new()), 2);
        assert_eq!(em.shard_count(), 2);
        em.shard(0).inserts.inc();
        em.shard(1).inserts.add(2);
        let snap = em.registry().snapshot();
        assert_eq!(snap.counter("shard0.insert.count"), Some(1));
        assert_eq!(snap.counter("shard1.insert.count"), Some(2));
        assert_eq!(snap.counter("engine.query.count"), Some(0));
        assert!(snap.histogram("engine.query_box.ns").is_some());
    }

    #[test]
    fn note_query_folds_stats_and_feeds_slow_log() {
        let em = EngineMetrics::for_store(Arc::new(MetricsRegistry::new()));
        em.set_slow_query_threshold(Duration::ZERO); // everything is slow
        let stats = QueryStats {
            seeks: 2,
            scanned: 10,
            reported: 4,
            blocks_scanned: 3,
            blocks_pruned: 5,
            blocks_decoded: 1,
        };
        em.note_query(QueryOp::Knn, Instant::now(), &stats, |wall| {
            QueryTrace::bare("knn", stats, wall)
        });
        let snap = em.registry().snapshot();
        assert_eq!(snap.counter("engine.query.count"), Some(1));
        assert_eq!(snap.counter("engine.query.scanned"), Some(10));
        assert_eq!(snap.counter("engine.slow_query.count"), Some(1));
        assert_eq!(snap.histogram("engine.knn.ns").unwrap().count(), 1);
        let slow = em.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].detail.op, "knn");
        assert_eq!(slow[0].detail.stats, stats);
    }

    #[test]
    fn fast_queries_never_build_a_trace() {
        let em = EngineMetrics::for_store(Arc::new(MetricsRegistry::new()));
        em.set_slow_query_threshold(Duration::from_secs(3600));
        em.note_query(QueryOp::Box, Instant::now(), &QueryStats::default(), |_| {
            unreachable!("fast query must not build its trace")
        });
        assert!(em.slow_queries().is_empty());
        assert_eq!(
            em.registry().snapshot().counter("engine.query.count"),
            Some(1)
        );
    }

    #[test]
    fn trace_display_is_readable() {
        let plan_trace = QueryTrace {
            op: "query_box",
            volume: Some(64),
            shards: Some(2),
            intervals: Some(9),
            memtable: Some(LevelStrategy::Intervals),
            runs: vec![LevelStrategy::Bigmin, LevelStrategy::Pruned],
            stats: QueryStats::default(),
            wall_ns: 1_500,
        };
        let s = plan_trace.to_string();
        assert!(s.contains("query_box 1.5µs"));
        assert!(s.contains("runs=[bigmin,pruned]"));
        assert!(s.contains("shards=2"));
    }
}
