//! K-way merge of immutable sorted runs.

use std::sync::Arc;

use sfc_core::{CurveIndex, Point, SpaceFillingCurve};
use sfc_index::{BlockStore, DecodedBlock, SfcIndex, BLOCK_SLOTS};

use crate::view::Run;

/// A forward-only cursor over one run's compressed blocks, decoding one
/// block at a time as the merge advances. Dense payloads are consumed
/// through the vector's `IntoIter`, advanced exactly on live slots, so
/// merging moves every payload exactly once and never clones.
struct Cursor<const D: usize, T> {
    blocks: BlockStore<D>,
    payloads: std::vec::IntoIter<T>,
    /// Decode buffer holding block `dec_block` (`usize::MAX` = none yet).
    dec: Box<DecodedBlock<D>>,
    dec_block: usize,
    pos: usize,
}

impl<const D: usize, T> Cursor<D, T> {
    /// Ensures the block holding `pos` is decoded into the buffer.
    fn fill(&mut self) {
        let block = self.blocks.block_of(self.pos);
        if self.dec_block != block {
            self.blocks.decode_into(block, &mut self.dec);
            self.dec_block = block;
        }
    }

    fn head(&mut self) -> Option<CurveIndex> {
        if self.pos >= self.blocks.len() {
            return None;
        }
        self.fill();
        Some(self.dec.keys[self.pos % BLOCK_SLOTS])
    }

    fn take(&mut self) -> (Point<D>, Option<T>) {
        self.fill();
        let point = self.dec.point(self.pos % BLOCK_SLOTS);
        let slot = self.blocks.is_live_slot(self.pos).then(|| {
            self.payloads
                .next()
                .expect("dense payload column parallel to live bitmap")
        });
        self.pos += 1;
        (point, slot)
    }
}

/// Merges `runs` (ordered oldest → newest, each with unique keys) into a
/// single run. For keys present in several runs the **newest** version
/// survives and superseded versions are dropped. Tombstones (`None`
/// payloads) are kept as tombstones unless `drop_tombstones` is set, which
/// is only sound when the merged run becomes the bottom of the stack.
///
/// Runs arrive behind [`Arc`]s because snapshots may pin them: a uniquely
/// owned run is consumed in place (no payload is copied); a run still
/// pinned by a snapshot is cloned out of its `Arc` first, leaving the
/// snapshot's view untouched.
pub(crate) fn merge_runs<const D: usize, T: Clone, C: SpaceFillingCurve<D> + Clone>(
    curve: &C,
    runs: Vec<Run<D, T, C>>,
    drop_tombstones: bool,
) -> SfcIndex<D, T, C> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut cursors: Vec<Cursor<D, T>> = runs
        .into_iter()
        .map(|run| {
            // Copy-on-write: only snapshot-pinned runs are cloned.
            let run = Arc::try_unwrap(run).unwrap_or_else(|shared| (*shared).clone());
            let (_, blocks, payloads) = run.into_parts();
            Cursor {
                blocks,
                payloads: payloads.into_iter(),
                dec: Box::default(),
                dec_block: usize::MAX,
                pos: 0,
            }
        })
        .collect();
    let mut keys = Vec::with_capacity(total);
    let mut points = Vec::with_capacity(total);
    let mut payloads: Vec<Option<T>> = Vec::with_capacity(total);
    while let Some(min) = cursors.iter_mut().filter_map(Cursor::head).min() {
        // Advance every cursor holding the minimum key; cursors are ordered
        // oldest → newest, so the last writer is the newest version.
        let mut winner: Option<(Point<D>, Option<T>)> = None;
        for cursor in cursors.iter_mut() {
            if cursor.head() == Some(min) {
                winner = Some(cursor.take());
            }
        }
        let (point, slot) = winner.expect("min key came from some cursor");
        if slot.is_some() || !drop_tombstones {
            keys.push(min);
            points.push(point);
            payloads.push(slot);
        }
    }
    // `from_sorted_versions` repacks the merged columns into compressed
    // blocks, folding the tombstones into the live bitmap.
    SfcIndex::from_sorted_versions(curve.clone(), keys, points, payloads)
}

/// Restores the size-tier invariant on a run stack: while an older run is
/// less than twice the size of the run stacked on it, the pair is merged
/// (newest wins; tombstones drop only when the merge produces the bottom
/// run). Shared by the single-writer [`SfcStore`](crate::SfcStore) and
/// the concurrent shard engine, which applies it to a *copy* of the
/// published run stack before swapping the next epoch in.
pub(crate) fn restore_size_tiers<const D: usize, T: Clone, C: SpaceFillingCurve<D> + Clone>(
    curve: &C,
    runs: &mut Vec<Run<D, T, C>>,
) {
    while runs.len() >= 2 {
        let n = runs.len();
        if runs[n - 2].len() < 2 * runs[n - 1].len() {
            let newer = runs.pop().expect("len >= 2");
            let older = runs.pop().expect("len >= 2");
            let drop_tombstones = runs.is_empty();
            runs.push(Arc::new(merge_runs(
                curve,
                vec![older, newer],
                drop_tombstones,
            )));
        } else {
            break;
        }
    }
    if runs.len() == 1 && runs[0].is_empty() {
        runs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{Grid, ZCurve};

    fn run_of(curve: ZCurve<2>, cells: &[(u32, u32, Option<u32>)]) -> Run<2, u32, ZCurve<2>> {
        let mut rows: Vec<(CurveIndex, Point<2>, Option<u32>)> = cells
            .iter()
            .map(|&(x, y, v)| {
                let p = Point::new([x, y]);
                (curve.index_of(p), p, v)
            })
            .collect();
        rows.sort_by_key(|&(k, _, _)| k);
        let (keys, rest): (Vec<_>, Vec<_>) = rows.into_iter().map(|(k, p, v)| (k, (p, v))).unzip();
        let (points, payloads) = rest.into_iter().unzip();
        Arc::new(SfcIndex::from_sorted_versions(
            curve, keys, points, payloads,
        ))
    }

    #[test]
    fn newest_version_wins_and_tombstones_drop_at_bottom() {
        let curve = ZCurve::over(Grid::<2>::new(3).unwrap());
        let old = run_of(curve, &[(0, 0, Some(1)), (1, 1, Some(2)), (2, 2, Some(3))]);
        let new = run_of(curve, &[(1, 1, Some(20)), (2, 2, None), (3, 3, Some(4))]);

        let kept = merge_runs(&curve, vec![old.clone(), new.clone()], false);
        assert_eq!(kept.len(), 4); // tombstone for (2,2) is retained
        assert_eq!(kept.live_len(), 3);
        let vals = kept.payloads();
        assert!(vals.contains(&20) && !vals.contains(&2));

        // `old` and `new` are still pinned by this test (cloned above), so
        // the second merge exercises the copy-on-write path — and the
        // pinned runs remain readable afterwards.
        let bottom = merge_runs(&curve, vec![old.clone(), new.clone()], true);
        assert_eq!(bottom.len(), 3); // (0,0)=1, (1,1)=20, (3,3)=4
        assert_eq!(bottom.live_len(), bottom.len());
        assert_eq!(old.len(), 3);
        assert_eq!(new.len(), 3);
    }

    #[test]
    fn merge_of_empty_inputs_is_empty() {
        let curve = ZCurve::over(Grid::<2>::new(2).unwrap());
        let merged = merge_runs::<2, u32, _>(&curve, vec![run_of(curve, &[])], true);
        assert!(merged.is_empty());
    }
}
