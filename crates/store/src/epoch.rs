//! The concurrent shard engine: per-shard write locks and epoch-published
//! frozen run stacks.
//!
//! One [`Shard`] is the unit of write concurrency in a
//! [`ShardedSfcStore`](crate::ShardedSfcStore). Its state is split along
//! the mutability boundary the LSM design already draws:
//!
//! * **Mutable tail** — the seq-numbered memtable plus the shard's live
//!   count, behind the shard's [`Mutex`] (`mem`). Writers hold it for one
//!   map operation; readers hold it just long enough to clone the key
//!   range a query needs. Writers to *different* shards touch disjoint
//!   locks and never contend.
//! * **Frozen run stack** — published through an atomically swapped
//!   [`Arc`] (an [`EpochCell`], a hand-rolled arc-swap over
//!   `Mutex<Arc<_>>` whose critical section is a single refcount bump).
//!   Readers load the current epoch and scan it without any further
//!   synchronisation; maintenance builds the *next* run stack off-lock
//!   and swaps it in whole. No reader ever blocks on a flush, merge, or
//!   compaction, and no flush ever waits for a reader.
//! * **Maintenance guard** (`maint`) — serialises the epoch *writers*
//!   (flush, compaction, migration) against each other. Plain writes and
//!   reads never take it.
//!
//! ## The flush protocol (publish before drain)
//!
//! A flush must move memtable entries into a new immutable run without a
//! window in which readers see the entries in *neither* place. The
//! protocol:
//!
//! 1. Under `mem`, clone the memtable image and note the current
//!    sequence-number high-water mark.
//! 2. Off-lock (serialised by `maint`), build the new run, restore the
//!    size-tier invariant, and **publish** the new epoch.
//! 3. Under `mem` again, drain exactly the entries the clone covered —
//!    those whose sequence number is below the high-water mark. Entries
//!    written concurrently with step 2 carry newer sequence numbers and
//!    stay.
//!
//! Between steps 2 and 3 a reader may see a flushed entry twice — once in
//! the memtable image, once in the new run — with identical key, point,
//! and payload; the newest-wins level merge collapses the duplicate, so
//! the anomaly is invisible. The sequence numbers (not value comparison)
//! make step 3 sound when a concurrent writer *updates* a key mid-flush:
//! the update's newer sequence number keeps it in the memtable, where it
//! correctly shadows the just-flushed older version.
//!
//! ## Durability hook
//!
//! A shard of a durable store carries an `Option<Arc<dyn
//! DurabilityHook>>` (see [`crate::wal`]). The hook is consulted at
//! exactly three points — none of them on the reader path:
//!
//! * **Per write**, *after* the `mem` lock is released: the record goes
//!   to the group-commit queue under the same sequence number the
//!   memtable just stamped (the payload is byte-encoded *before* the
//!   lock, since the value moves into the table inside it). A write is
//!   *applied* (visible to readers) the moment the lock drops and
//!   *acked* (durable) when its group is fsynced; synchronous writes
//!   block between the two.
//! * **Per epoch publish** (flush / compact / migration): the new run
//!   stack is persisted and the WAL replay floor advances to the
//!   publish's sequence high-water, which also lets the committer prune
//!   dead segments.
//! * **Per rebalance**, via the deferred-manifest variant — all shards'
//!   persisted states flip in a single manifest commit.
//!
//! ## Lock order
//!
//! `partition (RwLock, router level) → maint → mem → { EpochCell |
//! persist → manifest → commit queue }` — every acquisition path in
//! this crate follows it; the `EpochCell` mutex is a leaf, and the
//! durability locks (see [`crate::wal`]) chain strictly after `mem`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sfc_core::{CurveIndex, Point, SpaceFillingCurve};
use sfc_index::SfcIndex;

use crate::merge::{merge_runs, restore_size_tiers};
use crate::obs::ShardMetrics;
use crate::snapshot::StoreSnapshot;
use crate::view::{Memtable, Run};
use crate::wal::{DurabilityHook, WalError, WalRecord};

/// One published generation of a shard's frozen state: the immutable run
/// stack (oldest first) plus the number of live records visible in it.
/// Epochs are immutable once published; readers pin one with an `Arc`
/// clone and scan it at leisure.
#[derive(Debug)]
pub(crate) struct RunsEpoch<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    /// Immutable sorted runs, oldest first (the same stack shape as
    /// [`SfcStore`](crate::SfcStore)'s).
    pub(crate) runs: Vec<Run<D, T, C>>,
    /// Live (visible, non-tombstoned) records in `runs` alone.
    pub(crate) live: usize,
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> RunsEpoch<D, T, C> {
    fn empty() -> Self {
        Self {
            runs: Vec::new(),
            live: 0,
        }
    }

    /// `true` iff the newest version of `key` in the run stack is live.
    fn is_live(&self, key: CurveIndex) -> bool {
        for run in self.runs.iter().rev() {
            if let Some(i) = run.find_key(key) {
                return run.is_live_slot(i);
            }
        }
        false
    }

    /// The newest version of `key` in the run stack (`None` for both
    /// "absent" and "tombstoned").
    fn get(&self, key: CurveIndex) -> Option<T>
    where
        T: Clone,
    {
        for run in self.runs.iter().rev() {
            if let Some(i) = run.find_key(key) {
                return run.payload_at(i).cloned();
            }
        }
        None
    }
}

/// A hand-rolled arc-swap: the current epoch behind a mutex whose
/// critical section is one `Arc` clone (load) or one pointer swap
/// (publish). Readers and writers pass through in nanoseconds; the heavy
/// work of building the next epoch happens entirely outside.
#[derive(Debug)]
pub(crate) struct EpochCell<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    current: Mutex<Arc<RunsEpoch<D, T, C>>>,
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> EpochCell<D, T, C> {
    fn new(epoch: RunsEpoch<D, T, C>) -> Self {
        Self {
            current: Mutex::new(Arc::new(epoch)),
        }
    }

    /// Pins and returns the current epoch.
    pub(crate) fn load(&self) -> Arc<RunsEpoch<D, T, C>> {
        self.current.lock().expect("epoch cell poisoned").clone()
    }

    /// Atomically replaces the current epoch.
    fn publish(&self, epoch: Arc<RunsEpoch<D, T, C>>) {
        *self.current.lock().expect("epoch cell poisoned") = epoch;
    }
}

/// The memtable entry: cell, payload-or-tombstone, and the write sequence
/// number that makes the flush drain race-free.
type SeqSlot<const D: usize, T> = (Point<D>, Option<T>, u64);

/// The shard's seq-stamped memtable — the same opaque
/// [`SfcMemtable`](crate::memtable::SfcMemtable) as the single-writer
/// store's, with the sequence number folded into the value.
type SeqTable<const D: usize, T> = crate::memtable::SfcMemtable<SeqSlot<D, T>>;

/// The mutable tail of one shard, guarded by the shard's `mem` lock.
#[derive(Debug)]
struct MemState<const D: usize, T> {
    /// Newest level: key → (cell, payload-or-tombstone, seq).
    table: SeqTable<D, T>,
    /// Monotonic per-shard write counter stamping every memtable entry.
    next_seq: u64,
    /// Live records of the whole shard (memtable *and* published runs),
    /// maintained incrementally by insert/delete.
    live: usize,
    /// Entries buffered before an automatic flush.
    cap: usize,
}

/// A point-in-time capture of one shard for a single query: the memtable
/// image (cloned under the `mem` lock, restricted to the key span the
/// query can touch) plus the pinned epoch. All the heavy scanning runs
/// against the capture with no shard lock held.
#[derive(Debug)]
pub(crate) struct ShardCapture<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    /// `None` when the captured span of the memtable was empty — the
    /// capture then behaves exactly like a snapshot level-wise (and
    /// charges no phantom memtable seeks to the query stats).
    mem: Option<Memtable<D, T>>,
    epoch: Arc<RunsEpoch<D, T, C>>,
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> ShardCapture<D, T, C> {
    /// The borrowed multi-level view the query engine runs against.
    pub(crate) fn view<'a>(&'a self, curve: &'a C) -> crate::view::LevelsView<'a, D, T, C> {
        crate::view::LevelsView {
            curve,
            memtable: self.mem.as_ref(),
            runs: &self.epoch.runs,
        }
    }
}

/// One concurrently writable shard: see the module docs for the locking
/// and publication protocol.
#[derive(Debug)]
pub(crate) struct Shard<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    /// Serialises flush/compact/migration and their epoch swaps.
    maint: Mutex<()>,
    mem: Mutex<MemState<D, T>>,
    epoch: EpochCell<D, T, C>,
    /// Cached metric handles, set before the store is shared (see
    /// [`ShardedSfcStore::attach_metrics`](crate::ShardedSfcStore::attach_metrics));
    /// `None` costs one check per operation.
    metrics: Option<Arc<ShardMetrics>>,
    /// Durability hook of a durable store (`None` = in-memory, one
    /// pointer check per operation). Set before the store is shared.
    wal: Option<Arc<dyn DurabilityHook<D, T, C>>>,
    /// Whether a capacity-full memtable flushes on the writer's own
    /// thread. The background maintenance thread clears this while it
    /// runs, moving flush work off every writer's latency path.
    inline_flush: AtomicBool,
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> Shard<D, T, C> {
    /// An empty shard flushing its memtable at `cap` entries.
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            maint: Mutex::new(()),
            mem: Mutex::new(MemState {
                table: SeqTable::new(),
                next_seq: 0,
                live: 0,
                cap: cap.max(1),
            }),
            epoch: EpochCell::new(RunsEpoch::empty()),
            metrics: None,
            wal: None,
            inline_flush: AtomicBool::new(true),
        }
    }

    /// A shard rebuilt by crash recovery: the checkpointed run stack as
    /// its epoch and the WAL's replayable records (sorted by seq, all
    /// `>= high_water`) re-applied to a fresh memtable with their
    /// original sequence numbers — exactly the state an in-memory shard
    /// would hold right after the checkpointed flush plus those writes.
    pub(crate) fn recovered(
        curve: &C,
        cap: usize,
        runs: Vec<Run<D, T, C>>,
        epoch_live: usize,
        high_water: u64,
        records: Vec<WalRecord<D, T>>,
    ) -> Self {
        let shard = Self::new(cap);
        let epoch = Arc::new(RunsEpoch {
            runs,
            live: epoch_live,
        });
        {
            let mut mem = shard.mem.lock().expect("shard mem poisoned");
            mem.live = epoch_live;
            mem.next_seq = high_water;
            for rec in records {
                debug_assert!(rec.seq >= high_water, "replay below the floor");
                let key = curve.index_of(rec.point);
                let was_live = match mem.table.get(&key) {
                    Some((_, slot, _)) => slot.is_some(),
                    None => epoch.is_live(key),
                };
                let now_live = rec.slot.is_some();
                mem.table.insert(key, (rec.point, rec.slot, rec.seq));
                match (was_live, now_live) {
                    (false, true) => mem.live += 1,
                    (true, false) => mem.live -= 1,
                    _ => {}
                }
                mem.next_seq = mem.next_seq.max(rec.seq + 1);
            }
        }
        shard.epoch.publish(epoch);
        shard
    }

    /// Installs the durability hook. Needs `&mut self` — hooks attach
    /// during open, before the store is shared across threads.
    pub(crate) fn set_wal(&mut self, hook: Arc<dyn DurabilityHook<D, T, C>>) {
        self.wal = Some(hook);
    }

    /// Turns writer-thread capacity flushes on or off (see
    /// [`Self::over_capacity`]; maintenance turns them off while it
    /// owns flushing).
    pub(crate) fn set_inline_flush(&self, inline: bool) {
        self.inline_flush.store(inline, Ordering::Relaxed);
    }

    /// `true` when the memtable has reached its flush capacity.
    pub(crate) fn over_capacity(&self) -> bool {
        let mem = self.mem.lock().expect("shard mem poisoned");
        mem.table.len() >= mem.cap
    }

    /// Installs the shard's metric handles and primes the level gauges
    /// from the current state. Needs `&mut self` — the router attaches
    /// metrics before the store is shared across threads.
    pub(crate) fn set_metrics(&mut self, metrics: Arc<ShardMetrics>) {
        {
            let mem = self.mem.lock().expect("shard mem poisoned");
            metrics.memtable_len.set(mem.table.len() as i64);
            metrics.memtable_bytes.set(mem.table.heap_bytes() as i64);
            metrics.live.set(mem.live as i64);
        }
        metrics.run_count.set(self.epoch.load().runs.len() as i64);
        self.metrics = Some(metrics);
    }

    /// A shard adopting pre-sorted columns (strictly increasing keys, all
    /// slots `Some`) as its single bottom run.
    pub(crate) fn from_bottom_run(
        curve: &C,
        keys: Vec<CurveIndex>,
        points: Vec<Point<D>>,
        payloads: Vec<Option<T>>,
        cap: usize,
    ) -> Self {
        let shard = Self::new(cap);
        shard
            .install_bottom_run(curve, keys, points, payloads, false)
            .expect("no durability hook attached yet");
        shard
    }

    /// Live records in the shard (memtable and runs merged).
    pub(crate) fn live(&self) -> usize {
        self.mem.lock().expect("shard mem poisoned").live
    }

    /// Buffered memtable entries (live and tombstone).
    pub(crate) fn memtable_len(&self) -> usize {
        self.mem.lock().expect("shard mem poisoned").table.len()
    }

    /// Heap bytes held by the memtable structure, in `O(1)`.
    pub(crate) fn memtable_heap_bytes(&self) -> usize {
        self.mem
            .lock()
            .expect("shard mem poisoned")
            .table
            .heap_bytes()
    }

    /// Sizes of the published immutable runs, oldest first.
    pub(crate) fn run_lens(&self) -> Vec<usize> {
        self.epoch.load().runs.iter().map(|r| r.len()).collect()
    }

    /// Captures the shard for one query: the memtable image clipped to
    /// `span` (inclusive; `None` captures the whole memtable) plus the
    /// pinned epoch, both under one brief `mem` lock so they are mutually
    /// consistent. See the module docs for why a concurrent flush cannot
    /// open a gap between the two.
    pub(crate) fn capture(&self, span: Option<(CurveIndex, CurveIndex)>) -> ShardCapture<D, T, C>
    where
        T: Clone,
    {
        let mem = self.mem.lock().expect("shard mem poisoned");
        // A cursor-bounded extract: the ordered range walk emits the
        // span's entries already sorted, so the image is assembled by
        // bulk load (leaves fill left-to-right, no comparisons) instead
        // of per-entry map insertion.
        let image: Memtable<D, T> = match span {
            Some((lo, hi)) if lo <= hi => Memtable::from_sorted(
                mem.table
                    .range_iter(lo, hi)
                    .map(|(k, (p, s, _))| (k, (*p, s.clone()))),
            ),
            Some(_) => Memtable::new(),
            None => {
                Memtable::from_sorted(mem.table.iter().map(|(k, (p, s, _))| (k, (*p, s.clone()))))
            }
        };
        let epoch = self.epoch.load();
        ShardCapture {
            mem: (!image.is_empty()).then_some(image),
            epoch,
        }
    }

    /// The live payload at `key`, if any (memtable first, then the
    /// pinned epoch).
    pub(crate) fn get(&self, key: CurveIndex) -> Option<T>
    where
        T: Clone,
    {
        let m = self.metrics.as_deref();
        let timer = m.and_then(|m| {
            m.gets.inc();
            m.sampler.sampled_start()
        });
        let hit = {
            let mem = self.mem.lock().expect("shard mem poisoned");
            if let Some((_, slot, _)) = mem.table.get(&key) {
                slot.clone()
            } else {
                let epoch = self.epoch.load();
                drop(mem);
                epoch.get(key)
            }
        };
        if let (Some(m), Some(start)) = (m, timer) {
            m.get_ns.record_since(start);
        }
        hit
    }
}

impl<const D: usize, T: Clone, C: SpaceFillingCurve<D> + Clone> Shard<D, T, C> {
    /// Upserts the record at `key`; returns `true` if a live record was
    /// replaced. Flushes the memtable when it reaches capacity (unless
    /// background maintenance owns flushing).
    ///
    /// On a durable shard the write is logged under its memtable
    /// sequence number after the lock drops; with `wait` the call blocks
    /// until the group commit makes it durable. An `Err` means the write
    /// is *applied but not acked* — readers may already see it, and it
    /// can be lost on crash.
    pub(crate) fn insert(
        &self,
        curve: &C,
        key: CurveIndex,
        p: Point<D>,
        payload: T,
        wait: bool,
    ) -> Result<bool, WalError> {
        let m = self.metrics.as_deref();
        let timer = m.and_then(|m| {
            m.inserts.inc();
            m.sampler.sampled_start()
        });
        // Encode before the lock: the payload moves into the table
        // inside it, and byte-encoding under `mem` would serialise all
        // writers behind it.
        let payload_bytes = self.wal.as_deref().map(|w| w.encode_payload(&payload));
        let needs_flush;
        let was_live;
        let seq;
        let (mem_len, mem_bytes, live);
        {
            let mut mem = self.mem.lock().expect("shard mem poisoned");
            was_live = match mem.table.get(&key) {
                Some((_, slot, _)) => slot.is_some(),
                None => self.epoch.load().is_live(key),
            };
            seq = mem.next_seq;
            mem.next_seq += 1;
            mem.table.insert(key, (p, Some(payload), seq));
            if !was_live {
                mem.live += 1;
            }
            needs_flush = mem.table.len() >= mem.cap && self.inline_flush.load(Ordering::Relaxed);
            mem_len = mem.table.len();
            mem_bytes = mem.table.heap_bytes();
            live = mem.live;
        }
        if let Some(w) = self.wal.as_deref() {
            w.log_write(seq, &p, payload_bytes, wait)?;
        }
        if needs_flush {
            self.flush(curve)?;
        }
        if let Some(m) = m {
            if let Some(start) = timer {
                m.insert_ns.record_since(start);
            }
            // A flush just refreshed the gauges from post-drain state;
            // don't overwrite them with the pre-flush capture.
            if !needs_flush {
                m.memtable_len.set(mem_len as i64);
                m.memtable_bytes.set(mem_bytes as i64);
                m.live.set(live as i64);
            }
        }
        Ok(was_live)
    }

    /// Deletes the record at `key`; returns `true` if a live record was
    /// removed. Always writes a tombstone — with concurrent flushes in
    /// flight, an already-cloned-but-not-yet-published run may hold an
    /// older live version this delete must shadow, so the "no runs below,
    /// just remove the entry" shortcut of the single-writer store is not
    /// sound here. Tombstones that turn out to shadow nothing are dropped
    /// when a flush builds the bottom run.
    ///
    /// Durability semantics match [`Self::insert`].
    pub(crate) fn delete(
        &self,
        curve: &C,
        key: CurveIndex,
        p: Point<D>,
        wait: bool,
    ) -> Result<bool, WalError> {
        let m = self.metrics.as_deref();
        let timer = m.and_then(|m| {
            m.deletes.inc();
            m.sampler.sampled_start()
        });
        let needs_flush;
        let was_live;
        let seq;
        let (mem_len, mem_bytes, live);
        {
            let mut mem = self.mem.lock().expect("shard mem poisoned");
            was_live = match mem.table.get(&key) {
                Some((_, slot, _)) => slot.is_some(),
                None => self.epoch.load().is_live(key),
            };
            seq = mem.next_seq;
            mem.next_seq += 1;
            mem.table.insert(key, (p, None, seq));
            if was_live {
                mem.live -= 1;
            }
            needs_flush = mem.table.len() >= mem.cap && self.inline_flush.load(Ordering::Relaxed);
            mem_len = mem.table.len();
            mem_bytes = mem.table.heap_bytes();
            live = mem.live;
        }
        if let Some(w) = self.wal.as_deref() {
            w.log_write(seq, &p, None, wait)?;
        }
        if needs_flush {
            self.flush(curve)?;
        }
        if let Some(m) = m {
            if let Some(start) = timer {
                m.delete_ns.record_since(start);
            }
            if !needs_flush {
                m.memtable_len.set(mem_len as i64);
                m.memtable_bytes.set(mem_bytes as i64);
                m.live.set(live as i64);
            }
        }
        Ok(was_live)
    }

    /// Applies a pre-routed, key-sorted batch slice (`Some` payload =
    /// upsert, `None` = tombstone) under **one** mem-lock hold: one lock
    /// acquire instead of N, and the sorted keys ride the memtable's
    /// last-leaf insertion hint instead of paying N root descents. Ops
    /// take a contiguous block of sequence numbers in slice order, so a
    /// later duplicate key wins exactly as it would one-by-one.
    ///
    /// On a durable shard the whole slice is logged as coalesced
    /// multi-record WAL frames after the lock drops — one commit-queue
    /// ticket and one checksum per frame. With `wait`, blocks until the
    /// group commit covers the slice. Error semantics match
    /// [`Self::insert`]: an `Err` means applied but not acked.
    pub(crate) fn apply_batch(
        &self,
        curve: &C,
        ops: Vec<(CurveIndex, Point<D>, Option<T>)>,
        wait: bool,
    ) -> Result<(), WalError> {
        if ops.is_empty() {
            return Ok(());
        }
        debug_assert!(
            ops.windows(2).all(|w| w[0].0 <= w[1].0),
            "batch slices arrive key-sorted"
        );
        let m = self.metrics.as_deref();
        let timer = m.and_then(|m| {
            let inserts = ops.iter().filter(|(_, _, s)| s.is_some()).count() as u64;
            m.inserts.add(inserts);
            m.deletes.add(ops.len() as u64 - inserts);
            m.sampler.sampled_start()
        });
        // Encode payloads before the lock, exactly as `insert` does; the
        // sequence numbers are filled in once the lock assigns them.
        let mut log: Vec<(u64, Point<D>, Option<Vec<u8>>)> = match self.wal.as_deref() {
            Some(w) => ops
                .iter()
                .map(|(_, p, s)| (0, *p, s.as_ref().map(|t| w.encode_payload(t))))
                .collect(),
            None => Vec::new(),
        };
        let needs_flush;
        let first_seq;
        let (mem_len, mem_bytes, live);
        {
            let mut mem = self.mem.lock().expect("shard mem poisoned");
            first_seq = mem.next_seq;
            let mut seq = first_seq;
            // The epoch is pinned lazily and at most once: the mem lock
            // is held for the whole slice, so no flush can drain between
            // ops, and a key absent from the table has the same liveness
            // in every epoch publishable meanwhile.
            let mut pinned: Option<Arc<RunsEpoch<D, T, C>>> = None;
            for (key, p, slot) in ops {
                let was_live = match mem.table.get(&key) {
                    Some((_, s, _)) => s.is_some(),
                    None => pinned.get_or_insert_with(|| self.epoch.load()).is_live(key),
                };
                let now_live = slot.is_some();
                mem.table.insert(key, (p, slot, seq));
                seq += 1;
                match (was_live, now_live) {
                    (false, true) => mem.live += 1,
                    (true, false) => mem.live -= 1,
                    _ => {}
                }
            }
            mem.next_seq = seq;
            needs_flush = mem.table.len() >= mem.cap && self.inline_flush.load(Ordering::Relaxed);
            mem_len = mem.table.len();
            mem_bytes = mem.table.heap_bytes();
            live = mem.live;
        }
        if let Some(w) = self.wal.as_deref() {
            for (i, entry) in log.iter_mut().enumerate() {
                entry.0 = first_seq + i as u64;
            }
            w.log_batch(&log, wait)?;
        }
        if needs_flush {
            self.flush(curve)?;
        }
        if let Some(m) = m {
            if let Some(start) = timer {
                m.insert_ns.record_since(start);
            }
            if !needs_flush {
                m.memtable_len.set(mem_len as i64);
                m.memtable_bytes.set(mem_bytes as i64);
                m.live.set(live as i64);
            }
        }
        Ok(())
    }

    /// Drains the memtable into a new published run (see the module docs
    /// for the publish-before-drain protocol), then restores the
    /// size-tier invariant. A no-op on an empty memtable.
    ///
    /// On a durable shard the publish also persists the new run stack
    /// and advances the WAL replay floor to the flush's high-water.
    pub(crate) fn flush(&self, curve: &C) -> Result<(), WalError> {
        let _maint = self.maint.lock().expect("shard maint poisoned");
        self.flush_locked(curve)
    }

    fn flush_locked(&self, curve: &C) -> Result<(), WalError> {
        let start = Instant::now();
        // Step 1: clone the memtable image under a brief mem lock.
        let (entries, high_water, live_at) = {
            let mem = self.mem.lock().expect("shard mem poisoned");
            if mem.table.is_empty() {
                return Ok(());
            }
            let entries: Vec<(CurveIndex, Point<D>, Option<T>)> = mem
                .table
                .iter()
                .map(|(k, (p, s, _))| (k, *p, s.clone()))
                .collect();
            (entries, mem.next_seq, mem.live)
        };
        // Step 2: build the next epoch off-lock (`maint` keeps other
        // epoch writers out; readers keep the old epoch).
        let old = self.epoch.load();
        let drop_tombstones = old.runs.is_empty();
        let mut keys = Vec::with_capacity(entries.len());
        let mut points = Vec::with_capacity(entries.len());
        let mut payloads = Vec::with_capacity(entries.len());
        for (key, point, slot) in entries {
            if slot.is_none() && drop_tombstones {
                continue;
            }
            keys.push(key);
            points.push(point);
            payloads.push(slot);
        }
        let mut runs = old.runs.clone();
        if !keys.is_empty() {
            runs.push(Arc::new(SfcIndex::from_sorted_versions(
                curve.clone(),
                keys,
                points,
                payloads,
            )));
            restore_size_tiers(curve, &mut runs);
        }
        // `live_at` was captured together with the memtable image: after
        // the flush, everything that was visible then lives in `runs`.
        let run_count = runs.len();
        let published = Arc::new(RunsEpoch {
            runs,
            live: live_at,
        });
        self.epoch.publish(Arc::clone(&published));
        // Step 3: drain exactly the flushed entries; concurrent writes
        // carry seq >= high_water and stay. `retain` is one ordered
        // cursor walk down the leaf chain — survivors compact in place,
        // no clone, no per-entry tree surgery.
        let (mem_len, mem_bytes, live) = {
            let mut mem = self.mem.lock().expect("shard mem poisoned");
            mem.table.retain(|_, &(_, _, seq)| seq >= high_water);
            (mem.table.len(), mem.table.heap_bytes(), mem.live)
        };
        // Persist the publish and advance the WAL replay floor: every
        // record with seq < high_water is now covered by the run files.
        if let Some(w) = self.wal.as_deref() {
            w.persist_epoch(&published.runs, published.live, Some(high_water), false)?;
        }
        if let Some(m) = self.metrics.as_deref() {
            m.flushes.inc();
            m.epoch_publishes.inc();
            m.flush_ns.record_since(start);
            m.memtable_len.set(mem_len as i64);
            m.memtable_bytes.set(mem_bytes as i64);
            m.run_count.set(run_count as i64);
            m.live.set(live as i64);
        }
        Ok(())
    }

    /// Major compaction: flush, then merge all runs into a single
    /// tombstone-free run and publish it as the next epoch.
    pub(crate) fn compact(&self, curve: &C) -> Result<(), WalError> {
        let start = Instant::now();
        let _maint = self.maint.lock().expect("shard maint poisoned");
        self.flush_locked(curve)?;
        let old = self.epoch.load();
        let mut published = None;
        if old.runs.len() > 1 {
            let merged = merge_runs(curve, old.runs.clone(), true);
            let runs = if merged.is_empty() {
                Vec::new()
            } else {
                vec![Arc::new(merged)]
            };
            debug_assert_eq!(
                runs.iter().map(|r| r.len()).sum::<usize>(),
                old.live,
                "after compaction every stored record is live"
            );
            published = Some(runs.len());
            let epoch = Arc::new(RunsEpoch {
                runs,
                live: old.live,
            });
            self.epoch.publish(Arc::clone(&epoch));
            // Compaction republishes existing data under a merged run:
            // the replay floor is unchanged (`None` keeps the stored
            // high-water — the memtable may hold live records above it).
            if let Some(w) = self.wal.as_deref() {
                w.persist_epoch(&epoch.runs, epoch.live, None, false)?;
            }
        }
        if let Some(m) = self.metrics.as_deref() {
            m.compactions.inc();
            m.compact_ns.record_since(start);
            if let Some(run_count) = published {
                m.epoch_publishes.inc();
                m.run_count.set(run_count as i64);
            }
        }
        Ok(())
    }

    /// Freezes the shard into an owned [`StoreSnapshot`]: flush, then pin
    /// the published epoch. The snapshot is complete with respect to
    /// every write that happened before this call; after creation it
    /// never touches a shard lock again.
    pub(crate) fn snapshot(&self, curve: &C) -> Result<StoreSnapshot<D, T, C>, WalError> {
        self.flush(curve)?;
        let epoch = self.epoch.load();
        Ok(StoreSnapshot::new(
            curve.clone(),
            epoch.runs.clone(),
            epoch.live,
        ))
    }
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> Shard<D, T, C> {
    /// Replaces the shard's entire contents with one bottom run — the
    /// migration primitive `rebalance` uses while it holds the router's
    /// exclusive guard (no writer or reader can be in flight).
    ///
    /// On a durable shard the install persists with its replay floor at
    /// the current `next_seq` (every prior record is either in the new
    /// run or migrated to another shard). With `defer_manifest` the
    /// manifest flip waits for the engine-level
    /// [`commit_boundaries`](crate::wal::WalEngine::commit_boundaries) —
    /// a crash mid-rebalance then rolls every shard back together.
    pub(crate) fn install_bottom_run(
        &self,
        curve: &C,
        keys: Vec<CurveIndex>,
        points: Vec<Point<D>>,
        payloads: Vec<Option<T>>,
        defer_manifest: bool,
    ) -> Result<(), WalError> {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "bottom run keys must be strictly increasing"
        );
        debug_assert!(
            payloads.iter().all(Option::is_some),
            "bottom run must be tombstone-free"
        );
        let _maint = self.maint.lock().expect("shard maint poisoned");
        let mut mem = self.mem.lock().expect("shard mem poisoned");
        let live = keys.len();
        let high_water = mem.next_seq;
        mem.table.clear();
        mem.live = live;
        let runs = if keys.is_empty() {
            Vec::new()
        } else {
            vec![Arc::new(SfcIndex::from_sorted_versions(
                curve.clone(),
                keys,
                points,
                payloads,
            ))]
        };
        let epoch = Arc::new(RunsEpoch { runs, live });
        self.epoch.publish(Arc::clone(&epoch));
        if let Some(w) = self.wal.as_deref() {
            w.persist_epoch(&epoch.runs, live, Some(high_water), defer_manifest)?;
        }
        if let Some(m) = self.metrics.as_deref() {
            m.epoch_publishes.inc();
            m.memtable_len.set(0);
            m.memtable_bytes.set(mem.table.heap_bytes() as i64);
            m.live.set(live as i64);
            m.run_count.set(i64::from(live > 0));
        }
        Ok(())
    }

    /// Completes this shard's deferred durable commit after the
    /// engine-level manifest write (no-op without a hook or a deferral).
    pub(crate) fn finish_durable_commit(&self) -> Result<(), WalError> {
        match self.wal.as_deref() {
            Some(w) => w.finish_commit(),
            None => Ok(()),
        }
    }
}
