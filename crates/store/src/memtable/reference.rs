//! `BTreeMap` reference backing for the memtable, kept behind the
//! `memtable-btreemap` feature as the differential baseline: building
//! the workspace with `--features sfc-store/memtable-btreemap` runs the
//! entire engine — every store/sharded/snapshot differential suite —
//! against the old map, so any behavioral divergence introduced by the
//! B+tree shows up as a cross-feature test failure rather than a silent
//! semantics change.

use std::collections::BTreeMap;

use sfc_core::CurveIndex;

/// The `BTreeMap`-backed memtable, mirroring the inherent API of
/// [`BPlusTreeMap`](super::bptree::BPlusTreeMap) that the engine layers
/// compile against.
#[derive(Debug, Clone)]
pub struct BTreeBacking<V> {
    map: BTreeMap<CurveIndex, V>,
}

impl<V> Default for BTreeBacking<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> BTreeBacking<V> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            map: BTreeMap::new(),
        }
    }

    /// Leaf capacity is meaningless for `BTreeMap`; accepted and ignored
    /// so callers stay backing-agnostic.
    pub fn with_leaf_capacity(_leaf_cap: usize) -> Self {
        Self::new()
    }

    /// Builds from ascending `(key, value)` pairs.
    pub fn from_sorted(iter: impl IntoIterator<Item = (CurveIndex, V)>) -> Self {
        Self {
            map: iter.into_iter().collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: &CurveIndex) -> Option<&V> {
        self.map.get(key)
    }

    /// `true` iff `key` is present.
    pub fn contains_key(&self, key: &CurveIndex) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts or replaces, returning the previous value.
    pub fn insert(&mut self, key: CurveIndex, val: V) -> Option<V> {
        self.map.insert(key, val)
    }

    /// Removes the entry at `key`, returning its value.
    pub fn remove(&mut self, key: &CurveIndex) -> Option<V> {
        self.map.remove(key)
    }

    /// Keeps only entries `f` approves.
    pub fn retain(&mut self, mut f: impl FnMut(CurveIndex, &V) -> bool) {
        self.map.retain(|&k, v| f(k, v));
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// The coarse per-entry estimate the store used before the B+tree
    /// (node overhead is invisible through `BTreeMap`'s API).
    pub fn heap_bytes(&self) -> usize {
        self.map.len() * std::mem::size_of::<(CurveIndex, V)>()
    }

    /// Ascending iteration over all entries as `(key, &value)`.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            inner: self.map.range(..),
        }
    }

    /// Ascending iteration over the inclusive span `[lo, hi]`.
    pub fn range_iter(&self, lo: CurveIndex, hi: CurveIndex) -> Iter<'_, V> {
        if lo > hi {
            // An empty iterator with the same type; `lo..=hi` would panic.
            use std::ops::Bound;
            return Iter {
                inner: self
                    .map
                    .range((Bound::Excluded(CurveIndex::MAX), Bound::Unbounded)),
            };
        }
        Iter {
            inner: self.map.range(lo..=hi),
        }
    }

    /// Ascending iteration from `key` (inclusive) to the end.
    pub fn iter_from(&self, key: CurveIndex) -> Iter<'_, V> {
        Iter {
            inner: self.map.range(key..),
        }
    }

    /// Descending iteration over keys strictly below `key`.
    pub fn iter_rev_below(&self, key: CurveIndex) -> RevIter<'_, V> {
        RevIter {
            inner: self.map.range(..key),
        }
    }
}

/// Ascending borrowed iterator over a [`BTreeBacking`].
#[derive(Debug)]
pub struct Iter<'a, V> {
    inner: std::collections::btree_map::Range<'a, CurveIndex, V>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (CurveIndex, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(&k, v)| (k, v))
    }
}

/// Descending borrowed iterator over a [`BTreeBacking`].
#[derive(Debug)]
pub struct RevIter<'a, V> {
    inner: std::collections::btree_map::Range<'a, CurveIndex, V>,
}

impl<'a, V> Iterator for RevIter<'a, V> {
    type Item = (CurveIndex, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next_back().map(|(&k, v)| (k, v))
    }
}

/// Owned ascending iterator over a [`BTreeBacking`].
#[derive(Debug)]
pub struct IntoIter<V> {
    inner: std::collections::btree_map::IntoIter<CurveIndex, V>,
}

impl<V> Iterator for IntoIter<V> {
    type Item = (CurveIndex, V);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

impl<V> IntoIterator for BTreeBacking<V> {
    type Item = (CurveIndex, V);
    type IntoIter = IntoIter<V>;

    fn into_iter(self) -> Self::IntoIter {
        IntoIter {
            inner: self.map.into_iter(),
        }
    }
}
